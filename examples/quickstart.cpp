// Quickstart: run the Circles protocol through the circles::sim session
// API and watch it elect the plurality color.
//
//   $ ./build/examples/quickstart
//
// This is the README example. The SessionBuilder names a protocol from the
// ProtocolRegistry, describes the workload declaratively, and runs the
// trials through the BatchRunner — the same path every experiment binary
// uses.
#include <cstdio>

#include "sim/sim.hpp"

int main() {
  using namespace circles;

  // Three colors; color 2 has the strict plurality (3 of 7 votes).
  // The paper's protocol: k^3 states, always correct under weak fairness.
  const sim::SpecResult result = sim::SessionBuilder()
                                     .protocol("circles")
                                     .counts({2, 2, 3})
                                     .scheduler("uniform")
                                     .trials(5)
                                     .seed(42)
                                     .circles_stats()
                                     .run();

  std::printf("spec: %s\n", result.spec.to_string().c_str());
  std::printf("correct trials: %u/%u (silent: %u)\n", result.correct,
              result.trial_count, result.silent);
  std::printf("mean interactions to silence: %.0f (p90 %.0f)\n",
              result.interactions.mean, result.interactions.p90);
  std::printf("mean ket exchanges: %.1f\n", result.ket_exchanges.mean);

  // Lemma 3.6: the stable bra-kets are exactly the greedy-set circles —
  // a pure function of the vote counts, independent of the schedule. The
  // circles_stats instrumentation verified that in every trial:
  std::printf("Lemma 3.6 decomposition verified in %u/%u trials\n",
              result.decomposition_matches, result.trial_count);

  for (const auto& rec : result.trials) {
    std::printf("  trial seed %llu -> every agent announces c%u\n",
                static_cast<unsigned long long>(rec.seed),
                rec.outcome.consensus.value_or(999));
  }
  return result.all_correct() ? 0 : 1;
}
