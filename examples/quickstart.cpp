// Quickstart: run the Circles protocol on a small population and watch it
// elect the plurality color.
//
//   $ ./build/examples/quickstart
//
// This is the README example; every public API it touches is documented in
// the corresponding header.
#include <cstdio>
#include <vector>

#include "core/circles_protocol.hpp"
#include "core/decomposition.hpp"
#include "pp/engine.hpp"
#include "pp/scheduler.hpp"

int main() {
  using namespace circles;

  // Three colors; color 2 has the strict plurality (3 of 7 votes).
  const std::uint32_t k = 3;
  const std::vector<pp::ColorId> votes{0, 0, 1, 2, 2, 2, 1};

  // The paper's protocol: k^3 states, always correct under weak fairness.
  core::CirclesProtocol protocol(k);
  std::printf("Circles with k=%u colors: %llu states (k^3)\n", k,
              static_cast<unsigned long long>(protocol.num_states()));

  // Every agent starts in ⟨i|i⟩ with output i.
  pp::Population population(protocol, votes);
  std::printf("initial configuration: %s\n",
              population.to_string(protocol).c_str());

  // The classic uniform-random scheduler (weakly fair with probability 1).
  auto scheduler = pp::make_scheduler(pp::SchedulerKind::kUniformRandom,
                                      static_cast<std::uint32_t>(votes.size()),
                                      /*seed=*/42);

  // Run until the configuration is provably silent: no pair of agents can
  // change any state, so outputs are stable forever.
  pp::Engine engine;
  const pp::RunResult result = engine.run(protocol, population, *scheduler);

  std::printf("silent after %llu interactions (%llu state changes)\n",
              static_cast<unsigned long long>(result.interactions),
              static_cast<unsigned long long>(result.state_changes));
  std::printf("final configuration:   %s\n",
              population.to_string(protocol).c_str());

  for (pp::OutputSymbol c = 0; c < k; ++c) {
    if (result.consensus_on(c)) {
      std::printf("=> every agent outputs color %u (expected winner: 2)\n", c);
    }
  }

  // Lemma 3.6: the stable bra-kets are exactly the greedy-set circles —
  // a pure function of the vote counts, independent of the schedule.
  const std::vector<std::uint64_t> counts{2, 2, 3};
  const auto check = core::verify_decomposition(population, protocol, counts);
  std::printf("Lemma 3.6 decomposition check: %s\n",
              check.matches ? "exact match" : check.describe().c_str());
  return check.matches ? 0 : 1;
}
