// Using the library as a population-protocol framework: implement your own
// protocol against pp::Protocol and get the scheduler zoo, the exact
// silence detection, monitors and the trial harness for free.
//
// The protocol here is a textbook leader-election-with-token dynamics:
// every agent starts as a leader; when two leaders meet the responder is
// demoted. We verify the classic invariant (exactly one leader survives)
// using only public library APIs.
#include <cstdio>

#include "pp/engine.hpp"
#include "pp/scheduler.hpp"
#include "pp/trace.hpp"

namespace {

using namespace circles;

class LeaderElection final : public pp::Protocol {
 public:
  static constexpr pp::StateId kLeader = 0;
  static constexpr pp::StateId kFollower = 1;

  std::uint64_t num_states() const override { return 2; }
  std::uint32_t num_colors() const override { return 1; }
  pp::StateId input(pp::ColorId) const override { return kLeader; }
  pp::OutputSymbol output(pp::StateId state) const override {
    return state == kLeader ? 0 : 0;
  }
  pp::Transition transition(pp::StateId initiator,
                            pp::StateId responder) const override {
    if (initiator == kLeader && responder == kLeader) {
      return {kLeader, kFollower};
    }
    return {initiator, responder};
  }
  std::string name() const override { return "leader_election"; }
  std::string state_name(pp::StateId state) const override {
    return state == kLeader ? "L" : "f";
  }
};

}  // namespace

int main() {
  using namespace circles;

  LeaderElection protocol;
  const std::uint32_t n = 64;
  std::vector<pp::ColorId> colors(n, 0);
  pp::Population population(protocol, colors);

  auto scheduler =
      pp::make_scheduler(pp::SchedulerKind::kUniformRandom, n, /*seed=*/9);

  pp::StateChangeCounter counter;
  pp::Monitor* monitors[] = {&counter};
  pp::Engine engine;
  const auto result = engine.run(protocol, population, *scheduler,
                                 std::span<pp::Monitor* const>(monitors, 1));

  std::printf("silent: %s after %llu interactions\n",
              result.silent ? "yes" : "no",
              static_cast<unsigned long long>(result.interactions));
  std::printf("demotions observed: %llu (must be n-1 = %u)\n",
              static_cast<unsigned long long>(counter.changes()), n - 1);
  std::printf("final leaders: %llu (must be 1)\n",
              static_cast<unsigned long long>(
                  population.count(LeaderElection::kLeader)));
  std::printf("final configuration: %s\n",
              population.to_string(protocol).c_str());
  return population.count(LeaderElection::kLeader) == 1 ? 0 : 1;
}
