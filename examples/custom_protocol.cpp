// Using the library as a population-protocol framework: implement your own
// protocol against pp::Protocol, register it in a ProtocolRegistry, and get
// the scheduler zoo, exact silence detection, per-agent grading and the
// parallel trial harness for free.
//
// The protocol here is a textbook leader-election-with-token dynamics:
// every agent starts as a leader; when two leaders meet the responder is
// demoted. We verify the classic invariant (exactly one leader survives)
// with a RunSpec grader over many trials at once.
#include <cstdio>

#include "sim/sim.hpp"

namespace {

using namespace circles;

class LeaderElection final : public pp::Protocol {
 public:
  static constexpr pp::StateId kLeader = 0;
  static constexpr pp::StateId kFollower = 1;

  std::uint64_t num_states() const override { return 2; }
  std::uint32_t num_colors() const override { return 1; }
  pp::StateId input(pp::ColorId) const override { return kLeader; }
  pp::OutputSymbol output(pp::StateId) const override { return 0; }
  pp::Transition transition(pp::StateId initiator,
                            pp::StateId responder) const override {
    if (initiator == kLeader && responder == kLeader) {
      return {kLeader, kFollower};
    }
    return {initiator, responder};
  }
  std::string name() const override { return "leader_election"; }
  std::string state_name(pp::StateId state) const override {
    return state == kLeader ? "L" : "f";
  }
};

}  // namespace

int main() {
  using namespace circles;

  // A registry with the builtins plus our own protocol.
  sim::ProtocolRegistry registry = sim::ProtocolRegistry::with_builtins();
  registry.register_protocol("leader_election", [](const sim::ProtocolParams&) {
    return std::make_unique<LeaderElection>();
  });

  const std::uint32_t n = 64;
  sim::RunSpec spec = sim::SessionBuilder()
                          .protocol("leader_election")
                          .k(1)
                          .counts({n})
                          .trials(10)
                          .seed(9)
                          .build();
  // Custom invariant: exactly one leader must survive, in every trial.
  spec.grader = [](const pp::Protocol&, const analysis::Workload&,
                   std::span<const pp::ColorId>,
                   const pp::Population& population, const pp::RunResult& run) {
    return run.silent && population.count(LeaderElection::kLeader) == 1;
  };

  const sim::SpecResult result = sim::BatchRunner({}, registry).run_one(spec);

  std::printf("protocol: leader_election over n=%u agents, %u trials\n", n,
              result.trial_count);
  std::printf("silent runs: %u/%u\n", result.silent, result.trial_count);
  std::printf("one-leader invariant held: %u/%u\n", result.correct,
              result.trial_count);
  std::printf("mean demotions per run: %.0f (must be n-1 = %u)\n",
              result.state_changes.mean, n - 1);
  return result.all_correct() &&
                 result.state_changes.mean == static_cast<double>(n - 1)
             ? 0
             : 1;
}
