// Tie handling (paper §4): the brief announcement sketches three semantics —
// tie report, tie break, tie share. This example demonstrates all three:
//
//  * TieReportProtocol — the O(k^3) retractor construction layered on
//    Circles (our concretization of the paper's "special state" sketch),
//    run declaratively with tie-aware grading;
//  * TieAwarePairwise  — exact pairwise-game prototypes for report/break/
//    share semantics (exponential states, small k; see DESIGN.md), graded
//    per input color via sim::run_trial_keep_population.
#include <cstdio>
#include <vector>

#include "extensions/tie_aware_pairwise.hpp"
#include "extensions/tie_report.hpp"
#include "sim/sim.hpp"

namespace {

using namespace circles;

void demo_tie_report(const std::vector<std::uint64_t>& counts,
                     const char* label) {
  const sim::SpecResult result = sim::SessionBuilder()
                                     .protocol("tie_report")
                                     .counts(counts)
                                     .grading(sim::Grading::kTieAware)
                                     .seed(31337)
                                     .run();
  const auto& rec = result.trials.front();
  const auto protocol = sim::ProtocolRegistry::global().create(
      "tie_report", {.k = static_cast<std::uint32_t>(counts.size())});
  std::printf("  %-28s counts=%s -> all agents output %s (%s)\n", label,
              rec.workload.to_string().c_str(),
              rec.outcome.consensus.has_value()
                  ? protocol->output_name(*rec.outcome.consensus).c_str()
                  : "<no consensus>",
              rec.outcome.correct ? "correct" : "WRONG");
}

void demo_semantics(const analysis::Workload& w) {
  std::printf("  counts=%s:\n", w.to_string().c_str());
  for (const auto semantics : {ext::TieSemantics::kReport,
                               ext::TieSemantics::kBreak,
                               ext::TieSemantics::kShare}) {
    sim::ProtocolParams params;
    params.k = w.k();
    params.semantics = semantics;
    const auto protocol =
        sim::ProtocolRegistry::global().create("tie_aware_pairwise", params);

    // Grade per agent (share semantics differ by input color), so keep the
    // final population and the color assignment the trial used.
    sim::TrialOptions options;
    options.seed = 99;
    std::unique_ptr<pp::Population> population;
    std::vector<pp::ColorId> colors;
    sim::run_trial_keep_population(*protocol, w, options, {}, std::nullopt,
                                   &population, &colors);

    // Summarize what each input color's agents now announce.
    std::printf("    %-7s:", to_string(semantics).c_str());
    for (pp::ColorId c = 0; c < w.k(); ++c) {
      if (w.counts[c] == 0) continue;
      // Find one agent with that input color and read its output.
      for (std::size_t i = 0; i < colors.size(); ++i) {
        if (colors[i] == c) {
          std::printf("  c%u agents say %s", c,
                      protocol->output_name(
                          protocol->output(population->state(
                              static_cast<pp::AgentId>(i)))).c_str());
          break;
        }
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace circles;
  util::Rng rng(1);

  std::printf("== TieReport: Circles + retractors, 2k^2(k+1) states ==\n");
  demo_tie_report({5, 3, 2}, "unique winner");
  demo_tie_report({4, 4, 2}, "two-way tie");
  demo_tie_report({3, 3, 3}, "three-way tie");
  {
    const analysis::Workload near = analysis::close_margin(rng, 11, 3);
    demo_tie_report(near.counts, "margin-1 near-tie (no tie!)");
  }

  std::printf("\n== Tie semantics on a two-way tie (pairwise prototypes) ==\n");
  analysis::Workload tie;
  tie.counts = {4, 4, 1};
  demo_semantics(tie);

  std::printf("\n'share' lets each winning color keep its own agents while "
              "losers adopt a winner;\n'break' makes everyone agree on one "
              "winner; 'report' surfaces the tie itself.\n");
  return 0;
}
