// Tie handling (paper §4): the brief announcement sketches three semantics —
// tie report, tie break, tie share. This example demonstrates all three:
//
//  * TieReportProtocol — the O(k^3) retractor construction layered on
//    Circles (our concretization of the paper's "special state" sketch);
//  * TieAwarePairwise  — exact pairwise-game prototypes for report/break/
//    share semantics (exponential states, small k; see DESIGN.md).
#include <cstdio>
#include <vector>

#include "analysis/trial.hpp"
#include "analysis/workload.hpp"
#include "extensions/tie_aware_pairwise.hpp"
#include "extensions/tie_report.hpp"
#include "pp/engine.hpp"
#include "util/table.hpp"

namespace {

using namespace circles;

void demo_tie_report(const analysis::Workload& w, const char* label) {
  ext::TieReportProtocol protocol(w.k());
  analysis::TrialOptions options;
  options.seed = 31337;
  const auto winner = w.winner();
  const pp::OutputSymbol expected =
      winner.has_value() ? *winner : protocol.tie_symbol();
  const auto outcome = analysis::run_trial(protocol, w, options, {}, expected);
  std::printf("  %-28s counts=%s -> all agents output %s (%s)\n", label,
              w.to_string().c_str(),
              outcome.consensus.has_value()
                  ? protocol.output_name(*outcome.consensus).c_str()
                  : "<no consensus>",
              outcome.correct ? "correct" : "WRONG");
}

void demo_semantics(const analysis::Workload& w) {
  std::printf("  counts=%s:\n", w.to_string().c_str());
  for (const auto semantics : {ext::TieSemantics::kReport,
                               ext::TieSemantics::kBreak,
                               ext::TieSemantics::kShare}) {
    ext::TieAwarePairwise protocol(w.k(), semantics);
    util::Rng rng(99);
    const auto colors = w.agent_colors(rng);
    pp::Population population(protocol, colors);
    auto scheduler = pp::make_scheduler(
        pp::SchedulerKind::kUniformRandom,
        static_cast<std::uint32_t>(colors.size()), rng());
    pp::Engine engine;
    engine.run(protocol, population, *scheduler);
    // Summarize what each input color's agents now announce.
    std::printf("    %-7s:", to_string(semantics).c_str());
    for (pp::ColorId c = 0; c < w.k(); ++c) {
      if (w.counts[c] == 0) continue;
      // Find one agent with that input color and read its output.
      for (std::size_t i = 0; i < colors.size(); ++i) {
        if (colors[i] == c) {
          std::printf("  c%u agents say %s", c,
                      protocol.output_name(
                          protocol.output(population.state(
                              static_cast<pp::AgentId>(i)))).c_str());
          break;
        }
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace circles;
  util::Rng rng(1);

  std::printf("== TieReport: Circles + retractors, 2k^2(k+1) states ==\n");
  {
    analysis::Workload no_tie;
    no_tie.counts = {5, 3, 2};
    demo_tie_report(no_tie, "unique winner");
  }
  {
    analysis::Workload two_way;
    two_way.counts = {4, 4, 2};
    demo_tie_report(two_way, "two-way tie");
  }
  {
    analysis::Workload all_tied;
    all_tied.counts = {3, 3, 3};
    demo_tie_report(all_tied, "three-way tie");
  }
  {
    const analysis::Workload near = analysis::close_margin(rng, 11, 3);
    demo_tie_report(near, "margin-1 near-tie (no tie!)");
  }

  std::printf("\n== Tie semantics on a two-way tie (pairwise prototypes) ==\n");
  analysis::Workload tie;
  tie.counts = {4, 4, 1};
  demo_semantics(tie);

  std::printf("\n'share' lets each winning color keep its own agents while "
              "losers adopt a winner;\n'break' makes everyone agree on one "
              "winner; 'report' surfaces the tie itself.\n");
  return 0;
}
