// Sensor-network scenario (the model's original motivation: Angluin et al.'s
// passively mobile finite-state sensors): 200 sensors each observed one of 5
// failure codes and must agree on the most frequent code, using 125 states
// of memory each — no ids, no routing, just chance pairwise radio contacts.
//
// Two deployments are compared:
//  * well-mixed: any two sensors may meet (uniform scheduler);
//  * two-room:  sensors are split across two rooms; only 1% of contacts
//               cross the corridor (clustered scheduler). Information mixes
//               slowly, but weak fairness still holds, so Circles still
//               converges to the right answer — it just takes longer.
// Both deployments are RunSpecs on the same explicit workload.
#include <cstdio>

#include "sim/sim.hpp"
#include "util/table.hpp"

int main() {
  using namespace circles;

  const std::uint32_t k = 5;
  const std::uint64_t n = 200;

  util::Rng rng(2025);
  const analysis::Workload readings = analysis::zipf(rng, n, k, 1.1);
  std::printf("failure-code histogram: %s\n", readings.to_string().c_str());
  std::printf("ground-truth plurality code: %u\n", *readings.winner());
  std::printf("per-sensor memory: %llu states (= k^3)\n\n",
              static_cast<unsigned long long>(std::uint64_t{k} * k * k));

  std::vector<sim::RunSpec> specs;
  for (const auto kind : {pp::SchedulerKind::kUniformRandom,
                          pp::SchedulerKind::kClustered}) {
    specs.push_back(sim::SessionBuilder()
                        .protocol("circles")
                        .counts(readings.counts)
                        .scheduler(kind)
                        .seed(rng())
                        .circles_stats()
                        .build());
  }
  const auto results = sim::BatchRunner().run(specs);

  util::Table table({"deployment", "correct", "interactions to silence",
                     "ket exchanges"});
  for (const sim::SpecResult& r : results) {
    const auto& rec = r.trials.front();
    table.add_row({r.spec.scheduler == pp::SchedulerKind::kUniformRandom
                       ? "well-mixed"
                       : "two-room",
                   r.all_correct() ? "yes" : "NO",
                   util::Table::num(rec.outcome.run.interactions),
                   util::Table::num(rec.ket_exchanges)});
    if (!r.all_correct()) return 1;
  }
  table.print("sensor-network plurality consensus");
  std::printf("\nNote: Lemma 3.6 fixes the stable configuration regardless of "
              "topology;\nthe deployment only changes how long the scheduler "
              "takes to find the\nproductive meetings (and along which path "
              "the kets travel there).\n");
  return 0;
}
