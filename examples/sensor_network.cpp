// Sensor-network scenario (the model's original motivation: Angluin et al.'s
// passively mobile finite-state sensors): 200 sensors each observed one of 5
// failure codes and must agree on the most frequent code, using 125 states
// of memory each — no ids, no routing, just chance pairwise radio contacts.
//
// Two deployments are compared:
//  * well-mixed: any two sensors may meet (uniform scheduler);
//  * two-room:  sensors are split across two rooms; only 1% of contacts
//               cross the corridor (clustered scheduler). Information mixes
//               slowly, but weak fairness still holds, so Circles still
//               converges to the right answer — it just takes longer.
#include <cstdio>

#include "analysis/trial.hpp"
#include "analysis/workload.hpp"
#include "core/circles_protocol.hpp"
#include "util/table.hpp"

int main() {
  using namespace circles;

  const std::uint32_t k = 5;
  const std::uint64_t n = 200;
  core::CirclesProtocol protocol(k);

  util::Rng rng(2025);
  const analysis::Workload readings = analysis::zipf(rng, n, k, 1.1);
  std::printf("failure-code histogram: %s\n", readings.to_string().c_str());
  std::printf("ground-truth plurality code: %u\n", *readings.winner());
  std::printf("per-sensor memory: %llu states (= k^3)\n\n",
              static_cast<unsigned long long>(protocol.num_states()));

  util::Table table({"deployment", "correct", "interactions to silence",
                     "ket exchanges"});
  for (const auto kind : {pp::SchedulerKind::kUniformRandom,
                          pp::SchedulerKind::kClustered}) {
    analysis::TrialOptions options;
    options.scheduler = kind;
    options.seed = rng();
    const auto outcome = analysis::run_circles_trial(protocol, readings,
                                                     options);
    table.add_row({kind == pp::SchedulerKind::kUniformRandom ? "well-mixed"
                                                             : "two-room",
                   outcome.trial.correct ? "yes" : "NO",
                   util::Table::num(outcome.trial.run.interactions),
                   util::Table::num(outcome.ket_exchanges)});
    if (!outcome.trial.correct) return 1;
  }
  table.print("sensor-network plurality consensus");
  std::printf("\nNote: Lemma 3.6 fixes the stable configuration regardless of "
              "topology;\nthe deployment only changes how long the scheduler "
              "takes to find the\nproductive meetings (and along which path "
              "the kets travel there).\n");
  return 0;
}
