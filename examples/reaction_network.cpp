// Circles as a chemical reaction network, in continuous time.
//
// Prints the reaction network induced by a small Circles instance (species =
// states, bimolecular reactions = non-null transitions) and then simulates
// it with exact stochastic (Gillespie) kinetics: every ordered molecule pair
// collides at rate 1/n, so the chemical clock advances by Exp(n−1) between
// collisions. The embedded jump chain is exactly the uniform scheduler, so
// all of the paper's guarantees carry over verbatim — the CRN view only adds
// physical time.
#include <cstdio>

#include "analysis/workload.hpp"
#include "core/circles_protocol.hpp"
#include "crn/gillespie.hpp"
#include "util/table.hpp"

int main() {
  using namespace circles;

  // A tiny universe so the network is printable.
  core::CirclesProtocol protocol(2);
  const std::vector<pp::ColorId> inputs{0, 1};
  std::printf("reaction network reachable from {⟨0|0⟩, ⟨1|1⟩} (k=2):\n");
  for (const auto& reaction : crn::reactions(protocol, inputs)) {
    std::printf("  %s\n", reaction.to_string(protocol).c_str());
  }

  // Now a real vessel in continuous time.
  const std::uint32_t k = 6;
  const std::uint64_t n = 300;
  core::CirclesProtocol big(k);
  util::Rng rng(11);
  const analysis::Workload mix = analysis::zipf(rng, n, k, 1.25);
  const auto colors = mix.agent_colors(rng);

  std::printf("\nsimulating n=%llu molecules, k=%u species, counts=%s\n",
              static_cast<unsigned long long>(n), k,
              mix.to_string().c_str());
  const crn::GillespieResult result = crn::run_gillespie(big, colors, rng());

  util::Table table({"quantity", "value"});
  table.add_row({"collisions simulated",
                 util::Table::num(result.run.interactions)});
  table.add_row({"reactions (state changes)",
                 util::Table::num(result.run.state_changes)});
  table.add_row({"chemical stabilization time",
                 util::Table::num(result.stabilization_time, 3)});
  table.add_row({"chemical convergence time (outputs settled)",
                 util::Table::num(result.convergence_time, 3)});
  table.add_row({"parallel time (interactions / n)",
                 util::Table::num(result.parallel_time, 3)});
  table.add_row({"silent (outputs frozen forever)",
                 result.run.silent ? "yes" : "no"});
  table.add_row({"winner announced by all molecules",
                 "c" + std::to_string(*mix.winner())});
  table.print("continuous-time run");

  return result.run.silent && result.run.consensus_on(*mix.winner()) ? 0 : 1;
}
