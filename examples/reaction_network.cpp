// Circles as a chemical reaction network, in continuous time.
//
// Prints the reaction network induced by a small Circles instance (species =
// states, bimolecular reactions = non-null transitions) and then simulates
// it with exact stochastic (Gillespie) kinetics: every ordered molecule pair
// collides at rate 1/n, so the chemical clock advances by Exp(n−1) between
// collisions. The embedded jump chain is exactly the uniform scheduler, so
// all of the paper's guarantees carry over verbatim — the CRN view only adds
// physical time. The vessel run is a chemical_time RunSpec.
#include <cstdio>

#include "crn/gillespie.hpp"
#include "sim/sim.hpp"
#include "util/table.hpp"

int main() {
  using namespace circles;

  // A tiny universe so the network is printable.
  const auto tiny =
      sim::ProtocolRegistry::global().create("circles", {.k = 2});
  const std::vector<pp::ColorId> inputs{0, 1};
  std::printf("reaction network reachable from {⟨0|0⟩, ⟨1|1⟩} (k=2):\n");
  for (const auto& reaction : crn::reactions(*tiny, inputs)) {
    std::printf("  %s\n", reaction.to_string(*tiny).c_str());
  }

  // Now a real vessel in continuous time.
  const std::uint32_t k = 6;
  const std::uint64_t n = 300;
  util::Rng rng(11);
  const analysis::Workload mix = analysis::zipf(rng, n, k, 1.25);

  std::printf("\nsimulating n=%llu molecules, k=%u species, counts=%s\n",
              static_cast<unsigned long long>(n), k,
              mix.to_string().c_str());
  const sim::SpecResult result = sim::SessionBuilder()
                                     .protocol("circles")
                                     .counts(mix.counts)
                                     .chemical_time()
                                     .seed(rng())
                                     .run();
  const auto& rec = result.trials.front();

  util::Table table({"quantity", "value"});
  table.add_row({"collisions simulated",
                 util::Table::num(rec.outcome.run.interactions)});
  table.add_row({"reactions (state changes)",
                 util::Table::num(rec.outcome.run.state_changes)});
  table.add_row({"chemical stabilization time",
                 util::Table::num(rec.stabilization_time, 3)});
  table.add_row({"chemical convergence time (outputs settled)",
                 util::Table::num(rec.convergence_time, 3)});
  table.add_row({"parallel time (interactions / n)",
                 util::Table::num(
                     static_cast<double>(rec.outcome.run.interactions) /
                         static_cast<double>(n),
                     3)});
  table.add_row({"silent (outputs frozen forever)",
                 rec.outcome.run.silent ? "yes" : "no"});
  table.add_row({"winner announced by all molecules",
                 "c" + std::to_string(*mix.winner())});
  table.print("continuous-time run");

  return result.all_correct() ? 0 : 1;
}
