// Chemical-reaction-network view of Circles: the paper's design is
// "inspired by energy minimization in chemical settings" — agents are
// molecules, the bra-ket is a molecule's conformation, its weight is the
// conformation's energy, and an interaction is a bimolecular collision that
// only fires when it strictly lowers the local minimum energy.
//
// This example traces the energy landscape of one reaction vessel:
//  * the ordinal potential (sorted energy spectrum) descends at every
//    reaction — the system provably cannot oscillate (Theorem 3.4);
//  * the *total* energy is NOT monotone — single collisions may raise it,
//    which is exactly why the paper needs the ordinal potential;
//  * the final mixture is the unique minimum-energy configuration predicted
//    by the greedy independent sets (Lemma 3.6).
//
// It drives the engine directly with a custom monitor stack (the layer the
// sim API builds on): registry-constructed protocol + sim::run_trial with
// an EnergyTraceMonitor plugged in.
#include <array>
#include <cstdio>
#include <vector>

#include "core/decomposition.hpp"
#include "core/invariants.hpp"
#include "sim/sim.hpp"
#include "util/table.hpp"

int main() {
  using namespace circles;

  const std::uint32_t k = 8;       // molecular species
  const std::uint64_t n = 120;     // molecules in the vessel
  const auto protocol =
      sim::ProtocolRegistry::global().create("circles", {.k = k});
  const auto& circles =
      dynamic_cast<const core::CirclesProtocol&>(*protocol);

  util::Rng rng(7);
  const analysis::Workload mix = analysis::zipf(rng, n, k, 1.2);
  std::printf("species abundances: %s (plurality species: %u)\n",
              mix.to_string().c_str(), *mix.winner());

  core::CirclesBraKetView view(circles);
  core::EnergyTraceMonitor energy(view);
  core::PotentialDescentMonitor potential(view);
  std::array<pp::Monitor*, 2> monitors{&energy, &potential};

  sim::TrialOptions options;
  options.seed = rng();
  std::unique_ptr<pp::Population> vessel;
  const sim::TrialOutcome outcome = sim::run_trial_keep_population(
      circles, mix, options,
      std::span<pp::Monitor* const>(monitors.data(), monitors.size()),
      std::nullopt, &vessel);

  std::printf("reactions (ket exchanges): %llu; collisions simulated: %llu\n",
              static_cast<unsigned long long>(potential.exchanges()),
              static_cast<unsigned long long>(outcome.run.interactions));
  std::printf("ordinal potential violations: %llu (Theorem 3.4 says 0)\n",
              static_cast<unsigned long long>(
                  potential.descent_violations()));
  std::printf("collisions that RAISED total energy: %llu "
              "(> 0: total energy is not a Lyapunov function)\n",
              static_cast<unsigned long long>(
                  potential.scalar_energy_increases()));

  // Print ~12 evenly spaced samples of the energy trajectory.
  util::Table table({"reaction#", "total energy", "min conformer energy"});
  const auto& samples = energy.samples();
  const std::size_t stride = samples.empty() ? 1 : (samples.size() + 11) / 12;
  for (std::size_t i = 0; i < samples.size(); i += stride) {
    table.add_row({util::Table::num(static_cast<std::uint64_t>(i)),
                   util::Table::num(samples[i].total_energy),
                   util::Table::num(std::uint64_t{samples[i].min_weight})});
  }
  if (!samples.empty()) {
    const auto& last = samples.back();
    table.add_row({util::Table::num(static_cast<std::uint64_t>(samples.size() - 1)),
                   util::Table::num(last.total_energy),
                   util::Table::num(std::uint64_t{last.min_weight})});
  }
  table.print("energy trajectory");

  const auto check = core::verify_decomposition(*vessel, circles, mix.counts);
  std::printf("\nfinal mixture is the predicted minimum-energy state: %s\n",
              check.matches ? "yes" : "NO");
  std::printf("stable conformations: %s\n",
              core::braket_multiset(*vessel, circles).to_string().c_str());
  return check.matches && outcome.run.silent ? 0 : 1;
}
