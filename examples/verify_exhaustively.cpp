// Exhaustive verification from the public API: model-check a protocol
// instance instead of sampling schedules.
//
// Simulation can only sample weakly fair schedules; the model checker visits
// every reachable configuration and decides safety (all silent
// configurations are correct) and liveness (correct silence stays reachable)
// exactly. This example verifies Circles and the TieReport layer on small
// instances — and then shows the checker refuting the 3-state approximate
// majority protocol, which can stabilize on the minority. Protocols come
// from the registry, so swapping the protocol under verification is a
// one-string change.
#include <cstdio>
#include <vector>

#include "mc/model_checker.hpp"
#include "sim/sim.hpp"

namespace {

using namespace circles;

std::vector<pp::ColorId> colors_from_counts(
    const std::vector<std::uint64_t>& counts) {
  std::vector<pp::ColorId> colors;
  for (pp::ColorId c = 0; c < counts.size(); ++c) {
    colors.insert(colors.end(), counts[c], c);
  }
  return colors;
}

}  // namespace

int main() {
  using namespace circles;
  const auto& registry = sim::ProtocolRegistry::global();
  bool ok = true;

  {
    const auto protocol = registry.create("circles", {.k = 3});
    const auto result =
        mc::check(*protocol, colors_from_counts({3, 2, 1}), /*expected=*/0u);
    std::printf("Circles, counts (3,2,1): %llu reachable configurations, "
                "%llu silent -> %s\n",
                static_cast<unsigned long long>(result.reachable),
                static_cast<unsigned long long>(result.silent),
                result.always_correct() ? "VERIFIED always-correct"
                                        : "VIOLATION");
    ok = ok && result.always_correct();
  }

  {
    const auto protocol = registry.create("tie_report", {.k = 3});
    const auto result = mc::check(*protocol, colors_from_counts({2, 2, 1}),
                                  /*expected=*/3u);  // TIE symbol = k
    std::printf("TieReport, tied counts (2,2,1): %llu configurations -> %s\n",
                static_cast<unsigned long long>(result.reachable),
                result.always_correct() ? "VERIFIED: all agents report TIE"
                                        : "VIOLATION");
    ok = ok && result.always_correct();
  }

  {
    const auto protocol = registry.create("approx_majority_3state", {.k = 2});
    const auto result =
        mc::check(*protocol, colors_from_counts({3, 2}), /*expected=*/0u);
    std::printf("ApproxMajority, counts (3,2): %llu configurations -> ",
                static_cast<unsigned long long>(result.reachable));
    if (result.incorrect_silent_count > 0) {
      std::printf("REFUTED as expected; e.g. reachable wrong outcome %s\n",
                  mc::config_to_string(*protocol, result.incorrect_silent[0])
                      .c_str());
    } else {
      std::printf("unexpectedly verified?!\n");
      ok = false;
    }
  }

  std::printf("\n%s\n", ok ? "all verdicts as expected"
                           : "verdict mismatch — investigate");
  return ok ? 0 : 1;
}
