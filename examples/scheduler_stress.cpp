// "All possible sequences of interactions": Circles' correctness claim
// quantifies over every weakly fair schedule. This example runs the same
// election under all five schedulers in the zoo — including an adversary
// that actively delays progress — and shows that
//   (a) every run converges to the same winner, and
//   (b) every run stabilizes to the *identical* bra-ket multiset
//       (Lemma 3.6: the stable configuration depends only on the counts).
// The sweep is one RunSpec per scheduler through the BatchRunner.
#include <cstdio>
#include <vector>

#include "core/decomposition.hpp"
#include "core/greedy_sets.hpp"
#include "sim/sim.hpp"
#include "util/table.hpp"

int main() {
  using namespace circles;

  const std::vector<std::uint64_t> counts{7, 5, 6, 2};  // winner: color 0
  std::printf("counts=(7,5,6,2); predicted stable bra-kets: %s\n\n",
              core::predict_stable_brakets(counts).to_string().c_str());

  std::vector<sim::RunSpec> specs;
  for (const pp::SchedulerKind kind : pp::kAllSchedulerKinds) {
    specs.push_back(sim::SessionBuilder()
                        .protocol("circles")
                        .counts(counts)
                        .scheduler(kind)
                        .seed(4242)
                        .circles_stats()
                        .build());
  }
  const auto results = sim::BatchRunner().run(specs);

  util::Table table({"scheduler", "winner", "interactions", "ket exchanges",
                     "decomposition"});
  bool all_ok = true;
  for (const sim::SpecResult& r : results) {
    const auto& rec = r.trials.front();
    all_ok = all_ok && r.all_correct() && rec.decomposition_matches;
    table.add_row(
        {pp::to_string(r.spec.scheduler),
         rec.outcome.consensus.has_value()
             ? "c" + std::to_string(*rec.outcome.consensus)
             : "<none>",
         util::Table::num(rec.outcome.run.interactions),
         util::Table::num(rec.ket_exchanges),
         rec.decomposition_matches ? "exact" : "MISMATCH"});
  }
  table.print("one election, five schedulers");
  std::printf("\nThe adversarial scheduler prefers null interactions and only "
              "honors weak\nfairness through forced round-robin steps — "
              "Circles still cannot be fooled.\n");
  return all_ok ? 0 : 1;
}
