// "All possible sequences of interactions": Circles' correctness claim
// quantifies over every weakly fair schedule. This example runs the same
// election under all five schedulers in the zoo — including an adversary
// that actively delays progress — and shows that
//   (a) every run converges to the same winner, and
//   (b) every run stabilizes to the *identical* bra-ket multiset
//       (Lemma 3.6: the stable configuration depends only on the counts).
#include <cstdio>

#include "analysis/trial.hpp"
#include "analysis/workload.hpp"
#include "core/circles_protocol.hpp"
#include "core/decomposition.hpp"
#include "core/greedy_sets.hpp"
#include "util/table.hpp"

int main() {
  using namespace circles;

  const std::uint32_t k = 4;
  core::CirclesProtocol protocol(k);
  analysis::Workload w;
  w.counts = {7, 5, 6, 2};  // winner: color 0

  std::printf("counts=%s; predicted stable bra-kets: %s\n\n",
              w.to_string().c_str(),
              core::predict_stable_brakets(w.counts).to_string().c_str());

  util::Table table({"scheduler", "winner", "interactions", "ket exchanges",
                     "decomposition"});
  bool all_ok = true;
  for (const pp::SchedulerKind kind : pp::kAllSchedulerKinds) {
    analysis::TrialOptions options;
    options.scheduler = kind;
    options.seed = 4242;
    const auto outcome = analysis::run_circles_trial(protocol, w, options);
    all_ok = all_ok && outcome.trial.correct && outcome.decomposition_matches;
    table.add_row(
        {pp::to_string(kind),
         outcome.trial.consensus.has_value()
             ? "c" + std::to_string(*outcome.trial.consensus)
             : "<none>",
         util::Table::num(outcome.trial.run.interactions),
         util::Table::num(outcome.ket_exchanges),
         outcome.decomposition_matches ? "exact" : "MISMATCH"});
  }
  table.print("one election, five schedulers");
  std::printf("\nThe adversarial scheduler prefers null interactions and only "
              "honors weak\nfairness through forced round-robin steps — "
              "Circles still cannot be fooled.\n");
  return all_ok ? 0 : 1;
}
