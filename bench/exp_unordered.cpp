// E10 — paper §4 unordered setting: the 2k^4-state restart composition of
// ordering + Circles. The paper's full version promises an always-correct
// undo mechanism; the restart composition implemented here is weaker, and
// this experiment MEASURES the gap honestly instead of asserting it away:
// per cell it reports correct consensus, wrong consensus, and unresolved
// (budget-exhausted / non-silent) rates.
#include <algorithm>
#include <vector>

#include "exp_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<std::uint32_t>(
      cli.int_flag("trials", 20, "trials per cell"));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_flag("seed", 10, "rng seed"));
  const auto budget = static_cast<std::uint64_t>(
      cli.int_flag("budget", 3'000'000, "interaction budget per trial"));
  const auto batch = bench::batch_options(cli, seed);
  cli.finish();

  bench::print_header("E10",
                      "paper §4 — unordered Circles (restart composition, "
                      "2k^4 states): measured correctness, not a claim");

  std::vector<sim::RunSpec> specs;
  for (const std::uint32_t k : {2u, 3u, 4u}) {
    for (const std::uint64_t n : {10ull, 20ull, 40ull}) {
      sim::RunSpec spec;
      spec.protocol = "unordered_circles";
      spec.params.k = k;
      spec.n = n;
      spec.trials = trials;
      spec.engine.max_interactions = budget;
      specs.push_back(std::move(spec));
    }
  }

  const auto results = sim::BatchRunner(batch).run(specs);

  util::Table table({"k", "n", "trials", "correct", "wrong consensus",
                     "unresolved"});
  double worst_correct_rate = 1.0;
  for (const sim::SpecResult& r : results) {
    // wrong = silent consensus on a non-winner; unresolved = the rest.
    const std::uint32_t wrong = r.consensus - r.correct;
    const std::uint32_t unresolved = r.trial_count - r.consensus;
    worst_correct_rate = std::min(worst_correct_rate, r.correct_rate());
    table.add_row({util::Table::num(std::uint64_t{r.spec.params.k}),
                   util::Table::num(r.spec.n),
                   util::Table::num(std::uint64_t{r.trial_count}),
                   util::Table::percent(r.correct_rate(), 0),
                   util::Table::percent(double(wrong) / r.trial_count, 0),
                   util::Table::percent(double(unresolved) / r.trial_count,
                                        0)});
  }
  table.print("restart-composition outcomes (uniform scheduler)");
  std::printf("\nfailure modes are stale kets surviving a label change "
              "(DESIGN.md §5.4): they can\nfabricate or destroy diagonals. "
              "The paper's undo mechanism exists to close exactly\nthis "
              "gap; reproducing it needs the unpublished full version.\n");
  // The composition is KNOWN to be imperfect (that is the finding); the
  // verdict only guards against a collapse that would indicate an
  // implementation bug rather than the documented semantic gap.
  return bench::verdict(
      worst_correct_rate >= 0.25,
      "worst-cell correct rate " + util::Table::percent(worst_correct_rate, 0) +
          " — imperfect by design (restart, not undo); see DESIGN.md §5.4");
}
