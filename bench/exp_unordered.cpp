// E10 — paper §4 unordered setting: the 2k^4-state restart composition of
// ordering + Circles. The paper's full version promises an always-correct
// undo mechanism; the restart composition implemented here is weaker, and
// this experiment MEASURES the gap honestly instead of asserting it away:
// per cell it reports correct consensus, wrong consensus, and unresolved
// (budget-exhausted / non-silent) rates.
#include "analysis/trial.hpp"
#include "analysis/workload.hpp"
#include "exp_common.hpp"
#include "extensions/unordered_circles.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<int>(cli.int_flag("trials", 20, "trials per cell"));
  const auto seed = static_cast<std::uint64_t>(cli.int_flag("seed", 10, "rng seed"));
  const auto budget = static_cast<std::uint64_t>(
      cli.int_flag("budget", 3'000'000, "interaction budget per trial"));
  cli.finish();

  bench::print_header("E10",
                      "paper §4 — unordered Circles (restart composition, "
                      "2k^4 states): measured correctness, not a claim");

  util::Rng rng(seed);
  util::Table table({"k", "n", "trials", "correct", "wrong consensus",
                     "unresolved"});
  double worst_correct_rate = 1.0;

  for (const std::uint32_t k : {2u, 3u, 4u}) {
    ext::UnorderedCirclesProtocol protocol(k);
    for (const std::uint64_t n : {10ull, 20ull, 40ull}) {
      int correct = 0, wrong = 0, unresolved = 0;
      for (int t = 0; t < trials; ++t) {
        const analysis::Workload w = analysis::random_unique_winner(rng, n, k);
        analysis::TrialOptions options;
        options.seed = rng();
        options.engine.max_interactions = budget;
        const auto outcome = analysis::run_trial(protocol, w, options);
        if (outcome.correct) {
          ++correct;
        } else if (outcome.run.silent && outcome.consensus.has_value()) {
          ++wrong;
        } else {
          ++unresolved;
        }
      }
      worst_correct_rate =
          std::min(worst_correct_rate, double(correct) / trials);
      table.add_row({util::Table::num(std::uint64_t{k}), util::Table::num(n),
                     util::Table::num(std::int64_t{trials}),
                     util::Table::percent(double(correct) / trials, 0),
                     util::Table::percent(double(wrong) / trials, 0),
                     util::Table::percent(double(unresolved) / trials, 0)});
    }
  }
  table.print("restart-composition outcomes (uniform scheduler)");
  std::printf("\nfailure modes are stale kets surviving a label change "
              "(DESIGN.md §5.4): they can\nfabricate or destroy diagonals. "
              "The paper's undo mechanism exists to close exactly\nthis "
              "gap; reproducing it needs the unpublished full version.\n");
  // The composition is KNOWN to be imperfect (that is the finding); the
  // verdict only guards against a collapse that would indicate an
  // implementation bug rather than the documented semantic gap.
  return bench::verdict(
      worst_correct_rate >= 0.25,
      "worst-cell correct rate " + util::Table::percent(worst_correct_rate, 0) +
          " — imperfect by design (restart, not undo); see DESIGN.md §5.4");
}
