// E16 — exhaustive verification: model-check every reachable configuration
// of small instances instead of sampling runs. For each protocol/instance:
// reachable configuration count, silent configurations, and the verdict of
// the safety (all silent configs correct) + liveness (correct silence
// always reachable) analysis. The approximate-majority row is the negative
// control: the checker must FIND its minority-win silent configuration.
// Protocols are constructed through the registry; the exact-vs-simulated
// cross-check runs its sampled trials through the BatchRunner.
#include <memory>
#include <optional>
#include <vector>

#include "exp_common.hpp"
#include "mc/hitting_time.hpp"
#include "mc/model_checker.hpp"
#include "util/table.hpp"

namespace {

using namespace circles;

std::vector<pp::ColorId> colors_from_counts(
    const std::vector<std::uint64_t>& counts) {
  std::vector<pp::ColorId> colors;
  for (pp::ColorId c = 0; c < counts.size(); ++c) {
    colors.insert(colors.end(), counts[c], c);
  }
  return colors;
}

std::string counts_str(const std::vector<std::uint64_t>& counts) {
  std::string out = "(";
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(counts[i]);
  }
  return out + ")";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto cap = static_cast<std::uint64_t>(
      cli.int_flag("max_configs", 500000, "configuration exploration cap"));
  const auto batch = bench::batch_options(cli, 123);
  cli.finish();

  bench::print_header("E16",
                      "exhaustive verification — model checking every "
                      "reachable configuration of small instances");

  mc::Options options;
  options.max_configurations = cap;

  util::Table table({"protocol", "counts", "expected", "configs", "silent",
                     "transitions", "verdict"});
  bool pass = true;

  struct Case {
    std::string label;
    std::string protocol;
    std::uint32_t k;
    std::vector<std::uint64_t> counts;
    std::optional<pp::OutputSymbol> expected;
    bool expect_correct;
    std::string expected_label;
  };

  // tie symbol for tie_report at k colors is k itself.
  const std::vector<Case> cases{
      {"circles", "circles", 2, {5, 3}, 0u, true, "c0"},
      {"circles", "circles", 2, {2, 6}, 1u, true, "c1"},
      {"circles", "circles", 3, {3, 2, 1}, 0u, true, "c0"},
      {"circles", "circles", 3, {1, 2, 4}, 2u, true, "c2"},
      {"circles", "circles", 4, {2, 1, 2, 3}, 3u, true, "c3"},
      {"circles (tie)", "circles", 3, {2, 2, 1}, std::nullopt, true,
       "silence"},
      {"tie_report", "tie_report", 2, {3, 2}, 0u, true, "c0"},
      {"tie_report", "tie_report", 2, {3, 3}, 2u, true, "TIE"},
      {"tie_report", "tie_report", 3, {2, 2, 1}, 3u, true, "TIE"},
      {"tie_report", "tie_report", 3, {3, 1, 1}, 0u, true, "c0"},
      {"exact_majority_4state", "exact_majority_4state", 2, {5, 4}, 0u, true,
       "c0"},
      {"approx_majority_3state (neg ctrl)", "approx_majority_3state", 2,
       {3, 2}, 0u, false, "c0"},
      {"pairwise_plurality", "pairwise_plurality", 3, {2, 1, 1}, 0u, true,
       "c0"},
  };

  const auto& registry = sim::ProtocolRegistry::global();
  for (const auto& c : cases) {
    const auto protocol = registry.create(c.protocol, {.k = c.k});
    const auto result = mc::check(*protocol, colors_from_counts(c.counts),
                                  c.expected, options);
    const bool correct = result.always_correct();
    const bool row_ok = result.explored_fully && correct == c.expect_correct;
    pass = pass && row_ok;
    std::string verdict_text;
    if (!result.explored_fully) {
      verdict_text = "TRUNCATED";
    } else if (correct) {
      verdict_text = "verified";
    } else {
      verdict_text = "violations: " +
                     std::to_string(result.incorrect_silent_count) +
                     " wrong-silent, " + std::to_string(result.stuck_count) +
                     " stuck" + (c.expect_correct ? "" : " (expected!)");
    }
    table.add_row({c.label, counts_str(c.counts), c.expected_label,
                   util::Table::num(result.reachable),
                   util::Table::num(result.silent),
                   util::Table::num(result.transitions), verdict_text});
  }
  table.print("exhaustive configuration-space verification");
  std::printf("\n'verified' = every reachable silent configuration announces "
              "the expected output\nAND correct silence is reachable from "
              "every reachable configuration.\n");

  // Exact expected convergence times: the absorbing-chain linear system
  // gives the number the E2/E6 simulations estimate, with no sampling error.
  // The simulated side runs through the BatchRunner.
  {
    util::Table exact_table({"protocol", "counts", "configs",
                             "exact E[interactions to silence]",
                             "simulated mean (200 runs)"});
    struct ExactCase {
      std::string protocol;
      std::uint32_t k;
      std::vector<std::uint64_t> counts;
    };
    const std::vector<ExactCase> exact_cases{
        {"circles", 2, {3, 2}},
        {"circles", 2, {4, 1}},
        {"circles", 3, {2, 2, 1}},
        {"exact_majority_4state", 2, {3, 2}},
    };
    for (const auto& c : exact_cases) {
      const auto protocol = registry.create(c.protocol, {.k = c.k});
      const auto colors = colors_from_counts(c.counts);
      const auto exact =
          mc::expected_interactions_to_silence(*protocol, colors);
      if (!exact.computed) continue;

      sim::RunSpec spec;
      spec.protocol = c.protocol;
      spec.params.k = c.k;
      spec.workload = sim::WorkloadSpec::explicit_counts(c.counts);
      spec.trials = 200;
      const auto result = sim::BatchRunner(batch).run_one(spec);
      double total = 0.0;
      for (const auto& rec : result.trials) {
        total += static_cast<double>(rec.outcome.run.last_change_step + 1);
      }
      exact_table.add_row({c.protocol, counts_str(c.counts),
                           util::Table::num(exact.reachable),
                           util::Table::num(exact.expected_interactions, 2),
                           util::Table::num(total / result.trial_count, 2)});
    }
    exact_table.print("exact vs simulated expected interactions "
                      "(uniform scheduler, absorbing-chain solve)");
  }
  return bench::verdict(pass,
                        pass ? "all positive cases verified exhaustively; the "
                               "negative control was correctly refuted"
                             : "a verification verdict disagreed with "
                               "expectation");
}
