// E16 — exhaustive verification: model-check every reachable configuration
// of small instances instead of sampling runs. For each protocol/instance:
// reachable configuration count, silent configurations, and the verdict of
// the safety (all silent configs correct) + liveness (correct silence
// always reachable) analysis. The approximate-majority row is the negative
// control: the checker must FIND its minority-win silent configuration.
#include <optional>
#include <vector>

#include "baselines/approx_majority_3state.hpp"
#include "baselines/exact_majority_4state.hpp"
#include "baselines/pairwise_plurality.hpp"
#include "core/circles_protocol.hpp"
#include "exp_common.hpp"
#include "extensions/tie_report.hpp"
#include "mc/hitting_time.hpp"
#include "mc/model_checker.hpp"
#include "pp/engine.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace circles;

std::vector<pp::ColorId> colors_from_counts(
    const std::vector<std::uint64_t>& counts) {
  std::vector<pp::ColorId> colors;
  for (pp::ColorId c = 0; c < counts.size(); ++c) {
    colors.insert(colors.end(), counts[c], c);
  }
  return colors;
}

std::string counts_str(const std::vector<std::uint64_t>& counts) {
  std::string out = "(";
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(counts[i]);
  }
  return out + ")";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto cap = static_cast<std::uint64_t>(
      cli.int_flag("max_configs", 500000, "configuration exploration cap"));
  cli.finish();

  bench::print_header("E16",
                      "exhaustive verification — model checking every "
                      "reachable configuration of small instances");

  mc::Options options;
  options.max_configurations = cap;

  util::Table table({"protocol", "counts", "expected", "configs", "silent",
                     "transitions", "verdict"});
  bool pass = true;

  struct Case {
    std::string protocol_name;
    const pp::Protocol* protocol;
    std::vector<std::uint64_t> counts;
    std::optional<pp::OutputSymbol> expected;
    bool expect_correct;
    std::string expected_label;
  };

  core::CirclesProtocol circles2(2), circles3(3), circles4(4);
  ext::TieReportProtocol tie2(2), tie3(3);
  baselines::ExactMajority4State majority;
  baselines::ApproxMajority3State approx;
  baselines::PairwisePlurality pairwise3(3);

  const std::vector<Case> cases{
      {"circles", &circles2, {5, 3}, 0u, true, "c0"},
      {"circles", &circles2, {2, 6}, 1u, true, "c1"},
      {"circles", &circles3, {3, 2, 1}, 0u, true, "c0"},
      {"circles", &circles3, {1, 2, 4}, 2u, true, "c2"},
      {"circles", &circles4, {2, 1, 2, 3}, 3u, true, "c3"},
      {"circles (tie)", &circles3, {2, 2, 1}, std::nullopt, true, "silence"},
      {"tie_report", &tie2, {3, 2}, 0u, true, "c0"},
      {"tie_report", &tie2, {3, 3}, tie2.tie_symbol(), true, "TIE"},
      {"tie_report", &tie3, {2, 2, 1}, tie3.tie_symbol(), true, "TIE"},
      {"tie_report", &tie3, {3, 1, 1}, 0u, true, "c0"},
      {"exact_majority_4state", &majority, {5, 4}, 0u, true, "c0"},
      {"approx_majority_3state (neg ctrl)", &approx, {3, 2}, 0u, false, "c0"},
      {"pairwise_plurality", &pairwise3, {2, 1, 1}, 0u, true, "c0"},
  };

  for (const auto& c : cases) {
    const auto result =
        mc::check(*c.protocol, colors_from_counts(c.counts), c.expected,
                  options);
    const bool correct = result.always_correct();
    const bool row_ok = result.explored_fully && correct == c.expect_correct;
    pass = pass && row_ok;
    std::string verdict_text;
    if (!result.explored_fully) {
      verdict_text = "TRUNCATED";
    } else if (correct) {
      verdict_text = "verified";
    } else {
      verdict_text = "violations: " +
                     std::to_string(result.incorrect_silent_count) +
                     " wrong-silent, " + std::to_string(result.stuck_count) +
                     " stuck" + (c.expect_correct ? "" : " (expected!)");
    }
    table.add_row({c.protocol_name, counts_str(c.counts), c.expected_label,
                   util::Table::num(result.reachable),
                   util::Table::num(result.silent),
                   util::Table::num(result.transitions), verdict_text});
  }
  table.print("exhaustive configuration-space verification");
  std::printf("\n'verified' = every reachable silent configuration announces "
              "the expected output\nAND correct silence is reachable from "
              "every reachable configuration.\n");

  // Exact expected convergence times: the absorbing-chain linear system
  // gives the number the E2/E6 simulations estimate, with no sampling error.
  {
    util::Table exact_table({"protocol", "counts", "configs",
                             "exact E[interactions to silence]",
                             "simulated mean (200 runs)"});
    struct ExactCase {
      std::string name;
      const pp::Protocol* protocol;
      std::vector<std::uint64_t> counts;
    };
    const std::vector<ExactCase> exact_cases{
        {"circles", &circles2, {3, 2}},
        {"circles", &circles2, {4, 1}},
        {"circles", &circles3, {2, 2, 1}},
        {"exact_majority_4state", &majority, {3, 2}},
    };
    for (const auto& c : exact_cases) {
      const auto colors = colors_from_counts(c.counts);
      const auto exact = mc::expected_interactions_to_silence(*c.protocol,
                                                              colors);
      if (!exact.computed) continue;
      util::Rng rng(123);
      double total = 0.0;
      const int runs = 200;
      for (int t = 0; t < runs; ++t) {
        pp::Population population(*c.protocol, colors);
        auto scheduler = pp::make_scheduler(
            pp::SchedulerKind::kUniformRandom,
            static_cast<std::uint32_t>(colors.size()), rng());
        pp::Engine engine;
        const auto run = engine.run(*c.protocol, population, *scheduler);
        total += static_cast<double>(run.last_change_step + 1);
      }
      exact_table.add_row({c.name, counts_str(c.counts),
                           util::Table::num(exact.reachable),
                           util::Table::num(exact.expected_interactions, 2),
                           util::Table::num(total / runs, 2)});
    }
    exact_table.print("exact vs simulated expected interactions "
                      "(uniform scheduler, absorbing-chain solve)");
  }
  return bench::verdict(pass,
                        pass ? "all positive cases verified exhaustively; the "
                               "negative control was correctly refuted"
                             : "a verification verdict disagreed with "
                               "expectation");
}
