// E3 — Lemma 3.6: after stabilization the bra-ket multiset equals
// ∪_p f(G_p), the greedy-set circles — for every schedule. The stable
// configuration is therefore a pure function of the input counts. This
// experiment verifies exact multiset equality across schedulers, color
// counts and workload shapes, including tied inputs (the lemma does not
// need a unique winner).
#include <vector>

#include "exp_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<std::uint32_t>(
      cli.int_flag("trials", 8, "trials per cell"));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_flag("seed", 3, "rng seed"));
  const auto batch = bench::batch_options(cli, seed);
  cli.finish();

  bench::print_header("E3",
                      "Lemma 3.6 — the stable bra-ket multiset equals the "
                      "greedy-set circles, schedule-independently");

  const std::vector<std::pair<const char*, sim::WorkloadSpec>> shapes{
      {"random", sim::WorkloadSpec::unique_winner()},
      {"tied", sim::WorkloadSpec::exact_tie(2)},
      {"zipf", sim::WorkloadSpec::zipf(1.4)},
  };

  std::vector<sim::RunSpec> specs;
  for (const pp::SchedulerKind kind : pp::kAllSchedulerKinds) {
    const std::uint64_t n =
        kind == pp::SchedulerKind::kAdversarialDelay ? 14 : 48;
    for (const std::uint32_t k : {3u, 6u, 12u}) {
      for (const auto& [label, workload] : shapes) {
        sim::RunSpec spec;
        spec.protocol = "circles";
        spec.params.k = k;
        spec.n = n;
        spec.workload = workload;
        spec.scheduler = kind;
        spec.trials = trials;
        spec.circles_stats = true;
        spec.label = label;
        specs.push_back(std::move(spec));
      }
    }
  }

  const auto results = sim::BatchRunner(batch).run(specs);

  util::Table table({"scheduler", "k", "workload", "trials", "exact matches"});
  std::uint64_t mismatches = 0;
  for (const sim::SpecResult& r : results) {
    std::uint32_t matches = 0;
    for (const auto& rec : r.trials) {
      matches += (rec.decomposition_matches && rec.outcome.run.silent) ? 1 : 0;
    }
    mismatches += r.trial_count - matches;
    table.add_row({pp::to_string(r.spec.scheduler),
                   util::Table::num(std::uint64_t{r.spec.params.k}),
                   r.spec.label,
                   util::Table::num(std::uint64_t{r.trial_count}),
                   util::Table::percent(double(matches) / r.trial_count, 0)});
  }
  table.print("decomposition verification (expected: 100% everywhere)");
  return bench::verdict(
      mismatches == 0,
      mismatches == 0
          ? "every stable configuration matched predict_stable_brakets() "
            "bit-exactly"
          : std::to_string(mismatches) + " mismatches");
}
