// E3 — Lemma 3.6: after stabilization the bra-ket multiset equals
// ∪_p f(G_p), the greedy-set circles — for every schedule. The stable
// configuration is therefore a pure function of the input counts. This
// experiment verifies exact multiset equality across schedulers, color
// counts and workload shapes, including tied inputs (the lemma does not
// need a unique winner).
#include "analysis/trial.hpp"
#include "analysis/workload.hpp"
#include "core/circles_protocol.hpp"
#include "exp_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<int>(cli.int_flag("trials", 8, "trials per cell"));
  const auto seed = static_cast<std::uint64_t>(cli.int_flag("seed", 3, "rng seed"));
  cli.finish();

  bench::print_header("E3",
                      "Lemma 3.6 — the stable bra-ket multiset equals the "
                      "greedy-set circles, schedule-independently");

  util::Rng rng(seed);
  util::Table table({"scheduler", "k", "workload", "trials", "exact matches"});
  std::uint64_t mismatches = 0;

  for (const pp::SchedulerKind kind : pp::kAllSchedulerKinds) {
    const std::uint64_t n =
        kind == pp::SchedulerKind::kAdversarialDelay ? 14 : 48;
    for (const std::uint32_t k : {3u, 6u, 12u}) {
      core::CirclesProtocol protocol(k);
      for (const char* shape : {"random", "tied", "zipf"}) {
        int matches = 0;
        for (int t = 0; t < trials; ++t) {
          analysis::Workload w;
          if (std::string(shape) == "random") {
            w = analysis::random_unique_winner(rng, n, k);
          } else if (std::string(shape) == "tied") {
            w = analysis::exact_tie(rng, n, k, 2);
          } else {
            w = analysis::zipf(rng, n, k, 1.4);
          }
          analysis::TrialOptions options;
          options.scheduler = kind;
          options.seed = rng();
          const auto outcome =
              analysis::run_circles_trial(protocol, w, options);
          if (outcome.decomposition_matches && outcome.trial.run.silent) {
            ++matches;
          }
        }
        mismatches += static_cast<std::uint64_t>(trials - matches);
        table.add_row({pp::to_string(kind), util::Table::num(std::uint64_t{k}),
                       shape, util::Table::num(std::int64_t{trials}),
                       util::Table::percent(double(matches) / trials, 0)});
      }
    }
  }
  table.print("decomposition verification (expected: 100% everywhere)");
  return bench::verdict(
      mismatches == 0,
      mismatches == 0
          ? "every stable configuration matched predict_stable_brakets() "
            "bit-exactly"
          : std::to_string(mismatches) + " mismatches");
}
