// E2 — Theorem 3.4: the number of ket exchanges is finite; how does it
// scale? The theorem gives finiteness via an ordinal potential but no
// bound; this experiment measures exchanges and interactions-to-silence
// as n grows (k fixed) and as k grows (n fixed), reporting the empirical
// log-log slope of the scaling.
#include <vector>

#include "analysis/trial.hpp"
#include "analysis/workload.hpp"
#include "core/circles_protocol.hpp"
#include "exp_common.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<int>(cli.int_flag("trials", 5, "trials per cell"));
  const auto seed = static_cast<std::uint64_t>(cli.int_flag("seed", 2, "rng seed"));
  cli.finish();

  bench::print_header("E2",
                      "Theorem 3.4 — stabilization: ket exchanges are finite; "
                      "empirical scaling in n and k");

  util::Rng rng(seed);
  bool all_silent = true;

  auto run_cell = [&](std::uint32_t k, std::uint64_t n, double* mean_exch,
                      double* mean_inter) {
    core::CirclesProtocol protocol(k);
    std::vector<double> exchanges;
    std::vector<double> interactions;
    for (int t = 0; t < trials; ++t) {
      const analysis::Workload w = analysis::random_unique_winner(rng, n, k);
      analysis::TrialOptions options;
      options.seed = rng();
      const auto outcome = analysis::run_circles_trial(protocol, w, options);
      all_silent = all_silent && outcome.trial.run.silent;
      exchanges.push_back(static_cast<double>(outcome.ket_exchanges));
      interactions.push_back(
          static_cast<double>(outcome.trial.run.interactions));
    }
    const auto ex = util::summarize(exchanges);
    const auto in = util::summarize(interactions);
    *mean_exch = ex.mean;
    *mean_inter = in.mean;
    return std::pair{ex, in};
  };

  {
    util::Table table({"n (k=8)", "mean exchanges", "p90 exchanges",
                       "mean interactions to silence"});
    std::vector<double> xs, ys;
    for (const std::uint64_t n : {8ull, 16ull, 32ull, 64ull, 128ull, 256ull,
                                  512ull}) {
      double me = 0, mi = 0;
      const auto [ex, in] = run_cell(8, n, &me, &mi);
      xs.push_back(static_cast<double>(n));
      ys.push_back(me > 0 ? me : 0.1);
      table.add_row({util::Table::num(n), util::Table::num(ex.mean, 1),
                     util::Table::num(ex.p90, 1),
                     util::Table::num(in.mean, 0)});
    }
    table.print("exchanges vs population size");
    std::printf("log-log slope of exchanges vs n: %.2f "
                "(~1 expected: all n initial diagonals except the surviving "
                "margin must break, and one exchange breaks at most two)\n",
                util::loglog_slope(xs, ys));
  }

  {
    util::Table table({"k (n=128)", "mean exchanges", "p90 exchanges",
                       "mean interactions to silence"});
    std::vector<double> xs, ys;
    for (const std::uint32_t k : {2u, 4u, 8u, 16u, 32u}) {
      double me = 0, mi = 0;
      const auto [ex, in] = run_cell(k, 128, &me, &mi);
      xs.push_back(static_cast<double>(k));
      ys.push_back(me > 0 ? me : 0.1);
      table.add_row({util::Table::num(std::uint64_t{k}),
                     util::Table::num(ex.mean, 1),
                     util::Table::num(ex.p90, 1),
                     util::Table::num(in.mean, 0)});
    }
    table.print("exchanges vs number of colors");
    std::printf("log-log slope of exchanges vs k: %.2f\n",
                util::loglog_slope(xs, ys));
  }

  return bench::verdict(all_silent,
                        all_silent ? "every run stabilized (finite exchanges, "
                                     "exact silence certificate)"
                                   : "a run failed to stabilize");
}
