// E2 — Theorem 3.4: the number of ket exchanges is finite; how does it
// scale? The theorem gives finiteness via an ordinal potential but no
// bound; this experiment measures exchanges and interactions-to-silence
// as n grows (k fixed) and as k grows (n fixed), reporting the empirical
// log-log slope of the scaling.
#include <vector>

#include "exp_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<std::uint32_t>(
      cli.int_flag("trials", 5, "trials per cell"));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_flag("seed", 2, "rng seed"));
  const auto batch = bench::batch_options(cli, seed);
  cli.finish();

  bench::print_header("E2",
                      "Theorem 3.4 — stabilization: ket exchanges are finite; "
                      "empirical scaling in n and k");

  const auto make_spec = [&](std::uint32_t k, std::uint64_t n) {
    sim::RunSpec spec;
    spec.protocol = "circles";
    spec.params.k = k;
    spec.n = n;
    spec.trials = trials;
    spec.circles_stats = true;
    return spec;
  };

  const std::vector<std::uint64_t> n_axis{8, 16, 32, 64, 128, 256, 512};
  const std::vector<std::uint32_t> k_axis{2, 4, 8, 16, 32};
  std::vector<sim::RunSpec> specs;
  for (const std::uint64_t n : n_axis) specs.push_back(make_spec(8, n));
  for (const std::uint32_t k : k_axis) specs.push_back(make_spec(k, 128));

  const auto results = sim::BatchRunner(batch).run(specs);
  bool all_silent = true;
  for (const auto& r : results) all_silent = all_silent && r.all_silent();

  {
    util::Table table({"n (k=8)", "mean exchanges", "p90 exchanges",
                       "mean interactions to silence"});
    std::vector<double> xs, ys;
    for (std::size_t i = 0; i < n_axis.size(); ++i) {
      const sim::SpecResult& r = results[i];
      xs.push_back(static_cast<double>(n_axis[i]));
      ys.push_back(r.ket_exchanges.mean > 0 ? r.ket_exchanges.mean : 0.1);
      table.add_row({util::Table::num(n_axis[i]),
                     util::Table::num(r.ket_exchanges.mean, 1),
                     util::Table::num(r.ket_exchanges.p90, 1),
                     util::Table::num(r.interactions.mean, 0)});
    }
    table.print("exchanges vs population size");
    std::printf("log-log slope of exchanges vs n: %.2f "
                "(~1 expected: all n initial diagonals except the surviving "
                "margin must break, and one exchange breaks at most two)\n",
                util::loglog_slope(xs, ys));
  }

  {
    util::Table table({"k (n=128)", "mean exchanges", "p90 exchanges",
                       "mean interactions to silence"});
    std::vector<double> xs, ys;
    for (std::size_t i = 0; i < k_axis.size(); ++i) {
      const sim::SpecResult& r = results[n_axis.size() + i];
      xs.push_back(static_cast<double>(k_axis[i]));
      ys.push_back(r.ket_exchanges.mean > 0 ? r.ket_exchanges.mean : 0.1);
      table.add_row({util::Table::num(std::uint64_t{k_axis[i]}),
                     util::Table::num(r.ket_exchanges.mean, 1),
                     util::Table::num(r.ket_exchanges.p90, 1),
                     util::Table::num(r.interactions.mean, 0)});
    }
    table.print("exchanges vs number of colors");
    std::printf("log-log slope of exchanges vs k: %.2f\n",
                util::loglog_slope(xs, ys));
  }

  return bench::verdict(all_silent,
                        all_silent ? "every run stabilized (finite exchanges, "
                                     "exact silence certificate)"
                                   : "a run failed to stabilize");
}
