// E11 — implementation quality: raw transition throughput and end-to-end
// simulation throughput (interactions/second) for every protocol family,
// single- and multi-threaded.
//
// The end-to-end section runs fixed-budget RunSpecs (silence stop off, so
// items processed = the budget) through the BatchRunner twice: once with
// one worker thread and once with --threads (default: hardware). Results
// are bitwise identical either way; only the wall clock changes. On a
// >= 4-core machine the multi-threaded pass is expected to be > 2x faster.
#include <chrono>
#include <thread>
#include <vector>

#include <algorithm>

#include "bench_report.hpp"
#include "exp_common.hpp"
#include "kernel/compiled_protocol.hpp"
#include "metrics/metrics.hpp"
#include "pp/transition_cache.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace circles;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Raw transition-function calls over a pseudo-random state stream.
double transitions_per_second(const pp::Protocol& protocol,
                              std::uint64_t calls) {
  util::Rng rng(1);
  const auto num_states = protocol.num_states();
  std::vector<pp::StateId> stream(4096);
  for (auto& s : stream) {
    s = static_cast<pp::StateId>(rng.uniform_below(num_states));
  }
  // Fold the results into a checksum so the loop cannot be optimized away.
  volatile std::uint64_t checksum = 0;
  const auto start = Clock::now();
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < calls; ++i) {
    const pp::StateId a = stream[i & 4095];
    const pp::StateId b = stream[(i + 1) & 4095];
    const pp::Transition t = protocol.transition(a, b);
    acc += t.initiator + t.responder;
  }
  const double elapsed = seconds_since(start);
  checksum = acc;
  (void)checksum;
  return elapsed > 0 ? static_cast<double>(calls) / elapsed : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  // --smoke shrinks every size so the whole binary finishes in seconds on a
  // CI runner; the determinism/correctness checks still bind but the
  // wall-clock ratio requirements (thread speedup, kernel gain, urn/fluid
  // margins) do not — small sizes cannot amortize anything.
  const bool smoke = cli.bool_flag(
      "smoke", false,
      "CI sizes: identity/correctness checks only, perf ratios reported but "
      "not required");
  const std::string json_path = cli.string_flag(
      "json", "",
      "write the schema-stable throughput report (BENCH_throughput.json) "
      "to this path");
  const auto trials = static_cast<std::uint32_t>(cli.int_flag(
      "trials", smoke ? 4 : 32, "fixed-budget runs per engine spec"));
  const auto budget = static_cast<std::uint64_t>(cli.int_flag(
      "budget", smoke ? 1 << 12 : 1 << 16,
      "interactions per fixed-budget run"));
  const auto calls = static_cast<std::uint64_t>(cli.int_flag(
      "transition_calls", smoke ? 200'000 : 2'000'000,
      "calls per raw transition benchmark"));
  const auto dense_n = static_cast<std::uint64_t>(cli.int_flag(
      "dense_n", smoke ? 2'000 : 10'000,
      "population size for the backend comparison"));
  const auto dense_trials = static_cast<std::uint32_t>(cli.int_flag(
      "dense_trials", smoke ? 2 : 3, "runs-to-silence per backend"));
  const auto urn_n = static_cast<std::uint64_t>(cli.int_flag(
      "urn_n", smoke ? 20'000 : 1'000'000,
      "population size for the clustered urn-vs-agent comparison"));
  const auto urn_bridge = cli.double_flag(
      "urn_bridge", 0.001, "bridge probability of the clustered comparison");
  const auto urn_budget = static_cast<std::uint64_t>(cli.int_flag(
      "urn_budget", smoke ? 200'000 : 20'000'000,
      "interaction budget for the agent-engine rate measurement"));
  const auto parallel_n = static_cast<std::uint64_t>(cli.int_flag(
      "parallel_n", smoke ? 50'000 : 10'000'000,
      "population size for the uniform (single-urn) intra-run parallelism "
      "case"));
  const auto run_threads_flag = static_cast<std::uint32_t>(cli.int_flag(
      "run-threads", 0,
      "worker threads INSIDE each dense run for the non-sweep sections "
      "(0 = auto-budget; the parallel_run section sweeps 1/2/4/8 "
      "regardless; the OUTER across-trial pool is --threads)"));
  const auto fluid_n = static_cast<std::uint64_t>(cli.int_flag(
      "fluid_n", smoke ? 1'000'000 : 1'000'000'000,
      "population size for the fluid run-to-convergence comparison"));
  const auto fluid_sample_budget = static_cast<std::uint64_t>(cli.int_flag(
      "fluid_sample_budget", smoke ? 500'000 : 50'000'000,
      "interaction budget for the dense_batched rate measurement at fluid_n"));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_flag("seed", 2, "rng seed"));
  const bool progress = cli.bool_flag(
      "progress", false,
      "stderr heartbeat every 2s: trials done, interactions/sec");
  auto batch = bench::batch_options(cli, seed);
  cli.finish();
  if (batch.threads == 0) {
    batch.threads = std::thread::hardware_concurrency();
    if (batch.threads == 0) batch.threads = 1;
  }
  if (progress) {
    batch.progress = [](const sim::BatchProgress& p) {
      std::fprintf(stderr,
                   "progress: %llu/%llu trials, %u/%u specs, %.0f "
                   "interactions/s, %.1fs elapsed\n",
                   static_cast<unsigned long long>(p.trials_done),
                   static_cast<unsigned long long>(p.trials_total),
                   p.specs_done, p.specs_total, p.interactions_per_s(),
                   p.elapsed_s);
    };
  }

  // Batch-wide telemetry: every BatchRunner below flushes engine counters,
  // kernel stats and phase timers here; the snapshot rides along in the
  // JSON report.
  metrics::MetricsRegistry metrics_registry;
  batch.metrics = &metrics_registry;
  bench::Report report("throughput");
  metrics::RunManifest manifest = metrics::RunManifest::collect();
  manifest.spec = smoke ? "bench_throughput --smoke" : "bench_throughput";
  manifest.backend = "mixed";
  manifest.kernel = "per-spec";
  manifest.seed = seed;
  manifest.trials = trials;
  manifest.threads = batch.threads;
  manifest.run_threads = run_threads_flag;
  const auto t_program = Clock::now();

  bench::print_header("E11",
                      "implementation quality — transition and engine "
                      "throughput, single- vs multi-threaded");

  {
    util::Table table({"protocol", "raw transitions/sec"});
    const auto& registry = sim::ProtocolRegistry::global();
    struct RawCase {
      std::string label;
      std::string protocol;
      std::uint32_t k;
    };
    const std::vector<RawCase> raw_cases{
        {"circles k=4", "circles", 4},
        {"circles k=16", "circles", 16},
        {"circles k=64", "circles", 64},
        {"tie_report k=4", "tie_report", 4},
        {"tie_report k=16", "tie_report", 16},
        {"pairwise k=3", "pairwise_plurality", 3},
        {"pairwise k=5", "pairwise_plurality", 5},
        {"unordered k=4", "unordered_circles", 4},
        {"unordered k=8", "unordered_circles", 8},
    };
    for (const auto& c : raw_cases) {
      const auto protocol = registry.create(c.protocol, {.k = c.k});
      const double rate = transitions_per_second(*protocol, calls);
      table.add_row({c.label, util::Table::num(rate, 0)});
      report.add_cell()
          .set("section", "raw_transitions")
          .set("protocol", c.protocol)
          .set("k", static_cast<std::uint64_t>(c.k))
          .set("ops_per_sec", rate);
    }
    // Dense transition caching: the pairwise baseline's transitions decode
    // O(k^2) digits; the cached variant is one array load.
    {
      const auto base = registry.create("pairwise_plurality", {.k = 4});
      pp::CachedProtocol cached(*base);
      table.add_row({"pairwise k=4 (cached)",
                     util::Table::num(transitions_per_second(cached, calls),
                                      0)});
    }
    table.print("raw transition-function throughput");
  }

  // End-to-end engine throughput via the BatchRunner.
  std::vector<sim::RunSpec> specs;
  struct EngineCase {
    std::string protocol;
    std::uint32_t k;
    std::uint64_t n;
  };
  const std::vector<EngineCase> engine_cases{
      {"circles", 8, 256},        {"circles", 8, 4096},
      {"circles", 32, 1024},      {"exact_majority_4state", 2, 1024},
      {"approx_majority_3state", 2, 1024}, {"pairwise_plurality", 4, 256},
  };
  for (const auto& c : engine_cases) {
    sim::RunSpec spec;
    spec.protocol = c.protocol;
    spec.params.k = c.k;
    spec.n = c.n;
    spec.trials = trials;
    spec.engine.max_interactions = budget;
    spec.engine.stop_when_silent = false;
    specs.push_back(std::move(spec));
  }

  // Keep per-trial records so the determinism check below can compare
  // seeds and outcomes trial by trial, not just aggregate means.
  auto single_options = batch;
  single_options.threads = 1;
  auto pooled_options = batch;

  const auto t1 = Clock::now();
  const auto single = sim::BatchRunner(single_options).run(specs);
  const double single_seconds = seconds_since(t1);

  const auto t2 = Clock::now();
  const auto pooled = sim::BatchRunner(pooled_options).run(specs);
  const double pooled_seconds = seconds_since(t2);

  double total_interactions = 0;
  bool identical = true;
  util::Table table({"protocol", "k", "n", "interactions",
                     "mean state changes"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const sim::SpecResult& r = pooled[i];
    identical = identical &&
                single[i].interactions.mean == r.interactions.mean &&
                single[i].state_changes.mean == r.state_changes.mean &&
                single[i].correct == r.correct &&
                single[i].silent == r.silent &&
                single[i].consensus == r.consensus &&
                single[i].trials.size() == r.trials.size();
    for (std::size_t t = 0; identical && t < r.trials.size(); ++t) {
      identical =
          single[i].trials[t].seed == r.trials[t].seed &&
          single[i].trials[t].outcome.run.interactions ==
              r.trials[t].outcome.run.interactions &&
          single[i].trials[t].outcome.run.state_changes ==
              r.trials[t].outcome.run.state_changes &&
          single[i].trials[t].outcome.consensus ==
              r.trials[t].outcome.consensus;
    }
    total_interactions += r.interactions.mean * r.trial_count;
    table.add_row({r.spec.protocol,
                   util::Table::num(std::uint64_t{r.spec.params.k}),
                   util::Table::num(r.spec.n),
                   util::Table::num(r.interactions.mean * r.trial_count, 0),
                   util::Table::num(r.state_changes.mean, 0)});
  }
  table.print("fixed-budget engine workload (" + std::to_string(trials) +
              " trials x " + std::to_string(budget) + " interactions)");

  const double single_rate =
      single_seconds > 0 ? total_interactions / single_seconds : 0;
  const double pooled_rate =
      pooled_seconds > 0 ? total_interactions / pooled_seconds : 0;
  const double speedup =
      pooled_seconds > 0 ? single_seconds / pooled_seconds : 0;
  std::printf("\n1 thread : %8.2fs  (%12.0f interactions/sec)\n",
              single_seconds, single_rate);
  std::printf("%u threads: %8.2fs  (%12.0f interactions/sec)  speedup %.2fx\n",
              batch.threads, pooled_seconds, pooled_rate, speedup);
  std::printf("(aggregated results bitwise identical across thread counts: "
              "%s)\n",
              identical ? "yes" : "NO");
  bench::print_kernel_stats(pooled);
  report.add_cell()
      .set("section", "fixed_budget")
      .set("backend", "agent")
      .set("threads", 1)
      .set("trials", static_cast<std::uint64_t>(trials))
      .set("interactions", total_interactions)
      .set("wall_ms", single_seconds * 1000.0)
      .set("ops_per_sec", single_rate);
  report.add_cell()
      .set("section", "fixed_budget")
      .set("backend", "agent")
      .set("threads", static_cast<std::uint64_t>(batch.threads))
      .set("trials", static_cast<std::uint64_t>(trials))
      .set("interactions", total_interactions)
      .set("wall_ms", pooled_seconds * 1000.0)
      .set("ops_per_sec", pooled_rate)
      .set("speedup_vs_single", speedup);

  // Virtual dispatch vs compiled kernel, per backend: the same pinned-seed
  // specs run to silence twice, once on the legacy virtual transition()
  // loops (kernel=off) and once through the spec's shared
  // kernel::CompiledProtocol. Results are bitwise identical; the wall-clock
  // ratio is the kernel's end-to-end gain.
  double best_kernel_speedup = 0.0;
  double worst_kernel_speedup = 1e300;
  bool kernel_identical = true;
  {
    struct KernelCase {
      std::string protocol;
      std::uint32_t k;
      sim::EngineKind backend;
      std::uint64_t n;
      std::uint32_t trials;
    };
    // Sized so the one-time per-spec compile amortizes the way it does in
    // real sweeps (many trials share one kernel).
    const std::vector<KernelCase> kernel_cases{
        {"pairwise_plurality", 4, sim::EngineKind::kAgentArray, 1'024, 8},
        {"circles", 3, sim::EngineKind::kAgentArray, 2'000, 8},
        {"circles", 3, sim::EngineKind::kDense, 3'000, 3},
        {"circles", 3, sim::EngineKind::kDenseBatched, 10'000, 3},
    };
    util::Table table({"protocol", "backend", "n", "trials", "kernel",
                       "virtual s", "compiled s", "speedup"});
    for (const auto& c : kernel_cases) {
      sim::RunSpec spec;
      spec.protocol = c.protocol;
      spec.params.k = c.k;
      spec.n = c.n;
      spec.trials = c.trials;
      spec.seed = sim::mix_seed(seed, 0xC0DE + c.n);
      spec.backend = c.backend;
      spec.engine.max_interactions = ~std::uint64_t{0};
      auto options = batch;
      // Keep trials so the on/off passes can be compared record by record.
      options.keep_trials = true;

      spec.use_kernel = false;
      const auto t_off = Clock::now();
      const auto off = sim::BatchRunner(options).run_one(spec);
      const double off_seconds = seconds_since(t_off);

      spec.use_kernel = true;
      const auto t_on = Clock::now();
      const auto on = sim::BatchRunner(options).run_one(spec);
      const double on_seconds = seconds_since(t_on);

      kernel_identical =
          kernel_identical && off.trials.size() == on.trials.size();
      for (std::size_t t = 0;
           kernel_identical && t < on.trials.size(); ++t) {
        kernel_identical =
            off.trials[t].seed == on.trials[t].seed &&
            off.trials[t].outcome.run.interactions ==
                on.trials[t].outcome.run.interactions &&
            off.trials[t].outcome.run.state_changes ==
                on.trials[t].outcome.run.state_changes &&
            off.trials[t].outcome.run.final_outputs ==
                on.trials[t].outcome.run.final_outputs;
      }
      const double speedup = on_seconds > 0 ? off_seconds / on_seconds : 0.0;
      best_kernel_speedup = std::max(best_kernel_speedup, speedup);
      worst_kernel_speedup = std::min(worst_kernel_speedup, speedup);
      const double on_interactions = on.interactions.mean * on.trial_count;
      report.add_cell()
          .set("section", "kernel")
          .set("protocol", c.protocol)
          .set("k", static_cast<std::uint64_t>(c.k))
          .set("backend", sim::to_string(c.backend))
          .set("n", c.n)
          .set("trials", static_cast<std::uint64_t>(c.trials))
          .set("kernel", kernel::to_string(on.kernel_stats.kind))
          .set("interactions", on_interactions)
          .set("wall_ms", on_seconds * 1000.0)
          .set("ops_per_sec",
               on_seconds > 0 ? on_interactions / on_seconds : 0.0)
          .set("virtual_wall_ms", off_seconds * 1000.0)
          .set("speedup_vs_virtual", speedup);
      table.add_row({c.protocol, sim::to_string(c.backend),
                     util::Table::num(c.n),
                     util::Table::num(std::uint64_t{c.trials}),
                     kernel::to_string(on.kernel_stats.kind),
                     util::Table::num(off_seconds, 2),
                     util::Table::num(on_seconds, 2),
                     util::Table::num(speedup, 1)});
    }
    table.print(
        "virtual dispatch vs compiled kernel, run to silence (bitwise "
        "identical results: " +
        std::string(kernel_identical ? "yes" : "NO") + ")");
  }

  // Dense vs agent-array backends: identical specs (same pinned seed, so
  // identical per-trial workloads) run to silence on every backend; the
  // wall-clock ratio is the number this binary exists to track.
  double agent_seconds = 0.0, batched_seconds = 0.0;
  {
    util::Table dense_table({"backend", "trials", "mean interactions",
                             "mean state changes", "wall s",
                             "interactions/s", "speedup vs agent"});
    struct BackendRun {
      sim::EngineKind backend;
      double seconds = 0.0;
      sim::SpecResult result;
    };
    std::vector<BackendRun> runs;
    for (const auto backend :
         {sim::EngineKind::kAgentArray, sim::EngineKind::kDense,
          sim::EngineKind::kDenseBatched}) {
      sim::RunSpec spec;
      spec.protocol = "circles";
      spec.params.k = 3;
      spec.n = dense_n;
      spec.trials = dense_trials;
      spec.seed = sim::mix_seed(seed, 0xDE45E);
      spec.backend = backend;
      spec.run_threads = run_threads_flag;
      // Generous cap: circles' interactions-to-silence are strongly
      // superlinear in n; never let "hit the budget" pollute the timing.
      spec.engine.max_interactions = ~std::uint64_t{0};
      auto options = batch;
      options.keep_trials = false;
      const auto start = Clock::now();
      BackendRun run;
      run.result = sim::BatchRunner(options).run_one(spec);
      run.seconds = seconds_since(start);
      run.backend = backend;
      runs.push_back(std::move(run));
    }
    agent_seconds = runs.front().seconds;
    batched_seconds = runs.back().seconds;
    for (const BackendRun& run : runs) {
      const double total =
          run.result.interactions.mean * run.result.trial_count;
      report.add_cell()
          .set("section", "run_to_silence")
          .set("protocol", "circles")
          .set("k", 3)
          .set("backend", sim::to_string(run.backend))
          .set("n", dense_n)
          .set("trials", static_cast<std::uint64_t>(run.result.trial_count))
          .set("interactions", total)
          .set("wall_ms", run.seconds * 1000.0)
          .set("ops_per_sec", run.seconds > 0 ? total / run.seconds : 0.0)
          .set("speedup_vs_agent",
               run.seconds > 0 ? agent_seconds / run.seconds : 0.0);
      dense_table.add_row(
          {sim::to_string(run.backend),
           util::Table::num(std::uint64_t{run.result.trial_count}),
           util::Table::num(run.result.interactions.mean, 0),
           util::Table::num(run.result.state_changes.mean, 0),
           util::Table::num(run.seconds, 2),
           util::Table::num(run.seconds > 0 ? total / run.seconds : 0.0, 0),
           util::Table::num(
               run.seconds > 0 ? agent_seconds / run.seconds : 0.0, 1)});
    }
    dense_table.print("backend comparison — circles k=3, n=" +
                      std::to_string(dense_n) + ", run to silence");
  }

  // Clustered topology at scale: the dense-urn backend runs a two-cluster
  // dumbbell to silence at n = urn_n, while the agent engine (the only
  // alternative for non-uniform schedulers before the urn engine existed)
  // is timed on a fixed budget and extrapolated to the same interaction
  // count — running it to silence outright would take hours, which is the
  // point. The speedup requirement (>= 10x) binds at n >= 10^6.
  double urn_speedup = 0.0;
  bool urn_identical_grading = true;
  {
    sim::RunSpec urn_spec;
    urn_spec.protocol = "circles";
    urn_spec.params.k = 3;
    urn_spec.n = urn_n;
    urn_spec.trials = 1;
    urn_spec.seed = sim::mix_seed(seed, 0x09B);
    urn_spec.scheduler = pp::SchedulerKind::kClustered;
    urn_spec.clusters = 2;
    urn_spec.bridge = urn_bridge;
    urn_spec.backend = sim::EngineKind::kDenseBatched;
    urn_spec.run_threads = run_threads_flag;
    urn_spec.engine.max_interactions = ~std::uint64_t{0};
    auto options = batch;
    options.keep_trials = false;

    const auto t_urn = Clock::now();
    const auto urn = sim::BatchRunner(options).run_one(urn_spec);
    const double urn_seconds = seconds_since(t_urn);
    urn_identical_grading = urn.all_correct() && urn.all_silent();
    const double urn_interactions = urn.interactions.mean;

    sim::RunSpec agent_spec = urn_spec;
    agent_spec.backend = sim::EngineKind::kAgentArray;
    agent_spec.engine.max_interactions = urn_budget;
    agent_spec.engine.stop_when_silent = false;
    const auto t_agent = Clock::now();
    (void)sim::BatchRunner(options).run_one(agent_spec);
    const double agent_seconds = seconds_since(t_agent);
    const double agent_rate =
        agent_seconds > 0 ? static_cast<double>(urn_budget) / agent_seconds
                          : 0.0;
    // Seconds the agent engine would need for the urn run's interactions.
    const double agent_extrapolated_seconds =
        agent_rate > 0 ? urn_interactions / agent_rate : 0.0;
    urn_speedup =
        urn_seconds > 0 ? agent_extrapolated_seconds / urn_seconds : 0.0;

    report.add_cell()
        .set("section", "urn")
        .set("protocol", "circles")
        .set("k", 3)
        .set("backend", "dense_batched")
        .set("n", urn_n)
        .set("bridge", urn_bridge)
        .set("interactions", urn_interactions)
        .set("wall_ms", urn_seconds * 1000.0)
        .set("ops_per_sec",
             urn_seconds > 0 ? urn_interactions / urn_seconds : 0.0)
        .set("speedup_vs_agent", urn_speedup);
    report.add_cell()
        .set("section", "urn")
        .set("protocol", "circles")
        .set("k", 3)
        .set("backend", "agent")
        .set("n", urn_n)
        .set("bridge", urn_bridge)
        .set("interactions", static_cast<double>(urn_budget))
        .set("wall_ms", agent_seconds * 1000.0)
        .set("ops_per_sec", agent_rate)
        .set("note", "fixed-budget sample, extrapolated");
    util::Table urn_table({"engine", "interactions", "wall s",
                           "interactions/s", "speedup"});
    urn_table.add_row(
        {"dense_batched (urn), to silence",
         util::Table::num(urn_interactions, 0),
         util::Table::num(urn_seconds, 2),
         util::Table::num(
             urn_seconds > 0 ? urn_interactions / urn_seconds : 0.0, 0),
         util::Table::num(urn_speedup, 1) + "x"});
    urn_table.add_row(
        {"agent (" + std::to_string(urn_budget) + "-interaction sample)",
         util::Table::num(urn_interactions, 0) + " (target)",
         util::Table::num(agent_extrapolated_seconds, 0) + " (extrapolated)",
         util::Table::num(agent_rate, 0), "1.0x"});
    urn_table.print(
        "clustered dumbbell, 2 clusters, bridge " +
        util::Table::num(urn_bridge, 4) + ", circles k=3, n=" +
        std::to_string(urn_n) +
        " — urn backend to silence vs agent engine extrapolation");
  }

  // Fluid tier at the top of the ladder: the mean-field engine runs circles
  // k=3 at n = fluid_n to convergence (silent consensus) in wall-clock time
  // independent of n, while even the batched dense engine pays per
  // interaction; it is timed on a fixed budget and extrapolated to the fluid
  // run's interaction count. Counts are well separated on purpose — a
  // near-tied sub-race would measure the ODE's slow manifold, not its
  // throughput (see src/fluid/fluid_engine.hpp).
  double fluid_speedup = 0.0;
  double fluid_seconds = 0.0;
  bool fluid_converged = false;
  {
    sim::RunSpec fluid_spec;
    fluid_spec.protocol = "circles";
    fluid_spec.params.k = 3;
    fluid_spec.workload = sim::WorkloadSpec::explicit_counts(
        {fluid_n / 2, 3 * fluid_n / 10, fluid_n - fluid_n / 2 - 3 * fluid_n / 10});
    fluid_spec.trials = 1;
    fluid_spec.seed = sim::mix_seed(seed, 0xF1D);
    fluid_spec.backend = sim::EngineKind::kFluid;
    // The default budget is interaction-denominated and would be a fraction
    // of one chemical-time unit at n = 1e9; circles converges near t = 84,
    // so 200 units of horizon is convergence with slack.
    fluid_spec.engine.max_interactions = 200 * fluid_n;
    auto options = batch;
    options.keep_trials = false;

    const auto t_fluid = Clock::now();
    const auto fluid = sim::BatchRunner(options).run_one(fluid_spec);
    fluid_seconds = seconds_since(t_fluid);
    fluid_converged = fluid.all_correct() && fluid.all_silent();
    const double fluid_interactions = fluid.interactions.mean;

    sim::RunSpec batched_spec = fluid_spec;
    batched_spec.backend = sim::EngineKind::kDenseBatched;
    batched_spec.run_threads = run_threads_flag;
    batched_spec.engine.max_interactions = fluid_sample_budget;
    batched_spec.engine.stop_when_silent = false;
    const auto t_batched = Clock::now();
    (void)sim::BatchRunner(options).run_one(batched_spec);
    const double batched_seconds = seconds_since(t_batched);
    const double batched_rate =
        batched_seconds > 0
            ? static_cast<double>(fluid_sample_budget) / batched_seconds
            : 0.0;
    const double batched_extrapolated_seconds =
        batched_rate > 0 ? fluid_interactions / batched_rate : 0.0;
    fluid_speedup = fluid_seconds > 0
                        ? batched_extrapolated_seconds / fluid_seconds
                        : 0.0;

    report.add_cell()
        .set("section", "fluid")
        .set("protocol", "circles")
        .set("k", 3)
        .set("backend", "fluid")
        .set("n", fluid_n)
        .set("interactions", fluid_interactions)
        .set("wall_ms", fluid_seconds * 1000.0)
        .set("ops_per_sec",
             fluid_seconds > 0 ? fluid_interactions / fluid_seconds : 0.0)
        .set("speedup_vs_dense_batched", fluid_speedup);
    report.add_cell()
        .set("section", "fluid")
        .set("protocol", "circles")
        .set("k", 3)
        .set("backend", "dense_batched")
        .set("n", fluid_n)
        .set("interactions", static_cast<double>(fluid_sample_budget))
        .set("wall_ms", batched_seconds * 1000.0)
        .set("ops_per_sec", batched_rate)
        .set("note", "fixed-budget sample, extrapolated");
    util::Table fluid_table({"engine", "interactions", "wall s",
                             "interactions/s", "speedup"});
    fluid_table.add_row(
        {"fluid (mean-field), to convergence",
         util::Table::num(fluid_interactions, 0),
         util::Table::num(fluid_seconds, 3),
         util::Table::num(
             fluid_seconds > 0 ? fluid_interactions / fluid_seconds : 0.0, 0),
         util::Table::num(fluid_speedup, 0) + "x"});
    fluid_table.add_row(
        {"dense_batched (" + std::to_string(fluid_sample_budget) +
             "-interaction sample)",
         util::Table::num(fluid_interactions, 0) + " (target)",
         util::Table::num(batched_extrapolated_seconds, 0) +
             " (extrapolated)",
         util::Table::num(batched_rate, 0), "1.0x"});
    fluid_table.print("fluid vs dense_batched — circles k=3, n=" +
                      std::to_string(fluid_n) +
                      ", run to convergence vs extrapolation");
  }

  // Intra-run parallelism: the same dense workload re-run at inner thread
  // counts 1/2/4/8 (spec run_threads, the knob INSIDE one run — the outer
  // --threads pool stays at one worker since each case is a single trial).
  // Results must be bitwise identical at every width; the wall clock is the
  // point. Task parallelism scales with the number of urn blocks, so the
  // >= 4x requirement binds on the 8-cluster case (64 blocks), not the
  // dumbbell (4 blocks) or the uniform single-urn case (no fan-out at all:
  // that row checks the flat hot path did not regress and that run_threads
  // is an exact no-op without urn structure).
  double parallel_speedup8 = 0.0;
  bool parallel_identical = true;
  const unsigned hw_cores = std::max(1u, std::thread::hardware_concurrency());
  {
    struct ParallelCase {
      std::string label;
      sim::RunSpec spec;
      bool scales = false;  // counts toward the 8-thread speedup requirement
    };
    std::vector<ParallelCase> cases;
    {
      sim::RunSpec dumbbell;
      dumbbell.protocol = "circles";
      dumbbell.params.k = 3;
      dumbbell.n = urn_n;
      dumbbell.trials = 1;
      dumbbell.seed = sim::mix_seed(seed, 0x9A7A);
      dumbbell.scheduler = pp::SchedulerKind::kClustered;
      dumbbell.clusters = 2;
      dumbbell.bridge = urn_bridge;
      dumbbell.backend = sim::EngineKind::kDenseBatched;
      dumbbell.engine.max_interactions = ~std::uint64_t{0};
      cases.push_back({"dumbbell n=" + std::to_string(urn_n), dumbbell,
                       false});

      sim::RunSpec clustered = dumbbell;
      clustered.clusters = 8;
      clustered.seed = sim::mix_seed(seed, 0x9A7B);
      cases.push_back({"clustered-8 n=" + std::to_string(urn_n), clustered,
                       true});

      sim::RunSpec uniform;
      uniform.protocol = "circles";
      uniform.params.k = 3;
      uniform.n = parallel_n;
      uniform.trials = 1;
      uniform.seed = sim::mix_seed(seed, 0x9A7C);
      uniform.backend = sim::EngineKind::kDenseBatched;
      uniform.engine.max_interactions = smoke ? 200'000 : 20'000'000;
      uniform.engine.stop_when_silent = false;
      cases.push_back({"uniform n=" + std::to_string(parallel_n), uniform,
                       false});
    }
    util::Table table({"case", "run_threads", "interactions", "wall s",
                       "interactions/s", "speedup vs 1"});
    for (ParallelCase& c : cases) {
      auto options = batch;
      options.keep_trials = true;
      sim::SpecResult serial;
      double serial_seconds = 0.0;
      for (const std::uint32_t width : {1u, 2u, 4u, 8u}) {
        c.spec.run_threads = width;
        const auto start = Clock::now();
        const auto run = sim::BatchRunner(options).run_one(c.spec);
        const double run_seconds = seconds_since(start);
        if (width == 1) {
          serial = run;
          serial_seconds = run_seconds;
        }
        // Bitwise identity against the 1-thread pass, record by record.
        parallel_identical =
            parallel_identical && run.trials.size() == serial.trials.size();
        for (std::size_t t = 0;
             parallel_identical && t < run.trials.size(); ++t) {
          parallel_identical =
              run.trials[t].seed == serial.trials[t].seed &&
              run.trials[t].outcome.run.interactions ==
                  serial.trials[t].outcome.run.interactions &&
              run.trials[t].outcome.run.state_changes ==
                  serial.trials[t].outcome.run.state_changes &&
              run.trials[t].outcome.run.final_outputs ==
                  serial.trials[t].outcome.run.final_outputs;
        }
        const double total = run.interactions.mean * run.trial_count;
        const double rate = run_seconds > 0 ? total / run_seconds : 0.0;
        const double case_speedup =
            run_seconds > 0 ? serial_seconds / run_seconds : 0.0;
        if (c.scales && width == 8) parallel_speedup8 = case_speedup;
        report.add_cell()
            .set("section", "parallel_run")
            .set("case", c.label)
            .set("protocol", "circles")
            .set("k", 3)
            .set("backend", "dense_batched")
            .set("n", c.spec.n)
            .set("run_threads", static_cast<std::uint64_t>(width))
            .set("interactions", total)
            .set("wall_ms", run_seconds * 1000.0)
            .set("ops_per_sec", rate)
            .set("speedup_vs_serial", case_speedup);
        table.add_row({c.label, util::Table::num(std::uint64_t{width}),
                       util::Table::num(total, 0),
                       util::Table::num(run_seconds, 2),
                       util::Table::num(rate, 0),
                       util::Table::num(case_speedup, 2) + "x"});
      }
    }
    table.print("intra-run parallelism — dense_batched, run_threads sweep "
                "(outer pool fixed at 1 worker)");
    std::printf("(parallel runs bitwise identical across thread counts: "
                "%s)\n",
                parallel_identical ? "yes" : "NO");
  }

  // Span-tracing overhead: the clustered dumbbell from the urn section
  // (dense_batched, n = urn_n) re-run to silence with and without a
  // trace::Tracer attached. The tracing contract is observation-only —
  // results must stay bitwise identical record by record — and the
  // decimated spans must stay under 2% wall-clock overhead. Each mode takes
  // the best of several passes so the 2% bound measures tracing, not
  // scheduler noise.
  double spans_overhead = 0.0;
  bool spans_identical = true;
  std::uint64_t spans_events = 0;
  {
    sim::RunSpec spec;
    spec.protocol = "circles";
    spec.params.k = 3;
    spec.n = urn_n;
    spec.trials = 1;
    spec.seed = sim::mix_seed(seed, 0x59A2);
    spec.scheduler = pp::SchedulerKind::kClustered;
    spec.clusters = 2;
    spec.bridge = urn_bridge;
    spec.backend = sim::EngineKind::kDenseBatched;
    spec.run_threads = run_threads_flag;
    spec.engine.max_interactions = ~std::uint64_t{0};
    auto options = batch;
    options.keep_trials = true;
    const int passes = smoke ? 1 : 3;

    double off_seconds = 1e300;
    sim::SpecResult off;
    for (int pass = 0; pass < passes; ++pass) {
      const auto start = Clock::now();
      off = sim::BatchRunner(options).run_one(spec);
      off_seconds = std::min(off_seconds, seconds_since(start));
    }

    double on_seconds = 1e300;
    sim::SpecResult on;
    for (int pass = 0; pass < passes; ++pass) {
      // Fresh tracer per pass: ring buffers start empty, like a real run.
      trace::Tracer tracer;
      auto traced = options;
      traced.tracer = &tracer;
      const auto start = Clock::now();
      on = sim::BatchRunner(traced).run_one(spec);
      on_seconds = std::min(on_seconds, seconds_since(start));
      spans_events = tracer.drain().size();
    }

    spans_identical = off.trials.size() == on.trials.size();
    for (std::size_t t = 0; spans_identical && t < on.trials.size(); ++t) {
      spans_identical =
          off.trials[t].seed == on.trials[t].seed &&
          off.trials[t].outcome.run.interactions ==
              on.trials[t].outcome.run.interactions &&
          off.trials[t].outcome.run.state_changes ==
              on.trials[t].outcome.run.state_changes &&
          off.trials[t].outcome.run.final_outputs ==
              on.trials[t].outcome.run.final_outputs;
    }
    spans_overhead =
        off_seconds > 0 ? on_seconds / off_seconds - 1.0 : 0.0;

    report.add_cell()
        .set("section", "spans_overhead")
        .set("protocol", "circles")
        .set("k", 3)
        .set("backend", "dense_batched")
        .set("n", urn_n)
        .set("bridge", urn_bridge)
        .set("wall_ms", on_seconds * 1000.0)
        .set("baseline_wall_ms", off_seconds * 1000.0)
        .set("overhead", spans_overhead)
        .set("events", spans_events);
    util::Table spans_table({"mode", "wall s", "events", "overhead"});
    spans_table.add_row({"spans off", util::Table::num(off_seconds, 3), "-",
                         "baseline"});
    spans_table.add_row(
        {"spans on", util::Table::num(on_seconds, 3),
         util::Table::num(spans_events),
         util::Table::num(spans_overhead * 100.0, 2) + "%"});
    spans_table.print(
        "span-tracing overhead — clustered dumbbell, dense_batched, n=" +
        std::to_string(urn_n) + ", run to silence (bitwise identical "
        "results: " +
        std::string(spans_identical ? "yes" : "NO") + ")");
  }

  // Emit the machine-readable perf trajectory before the verdict so a FAIL
  // run still leaves its numbers behind for diagnosis.
  if (!json_path.empty()) {
    manifest.finished_utc = metrics::utc_timestamp_now();
    manifest.wall_ms = seconds_since(t_program) * 1000.0;
    report.set_manifest(manifest);
    report.add_metrics(metrics_registry);
    report.write(json_path);
  }

  // The speedup requirement only binds where the hardware can deliver it —
  // and never under --smoke, whose sizes are too small to amortize anything
  // (the identity/correctness checks still bind there).
  const bool speedup_ok = smoke || batch.threads < 4 || speedup > 2.0;
  const bool urn_ok =
      urn_identical_grading &&
      (smoke || urn_n < 1'000'000 || urn_speedup >= 10.0);
  // The fluid engine's whole value proposition: silent consensus at huge n
  // for less wall clock than the dense ladder could ever spend. The margin
  // requirement binds once extrapolation is meaningful (n >= 10^8).
  const bool fluid_ok =
      fluid_converged &&
      (smoke || fluid_n < 100'000'000 || fluid_speedup >= 100.0);
  const bool dense_ok = smoke || batched_seconds <= agent_seconds;
  // Inner-pool scaling needs cores to scale onto; the identity half of the
  // check binds everywhere, --smoke included.
  const bool parallel_ok =
      parallel_identical &&
      (smoke || hw_cores < 8 || parallel_speedup8 >= 4.0);
  // The compiled kernel must pay for itself: a >= 2x end-to-end win on at
  // least one (protocol, backend) pair and no real regression anywhere
  // (0.7 allows wall-clock noise on near-parity cells).
  const bool kernel_ok =
      kernel_identical &&
      (smoke || (best_kernel_speedup >= 2.0 && worst_kernel_speedup >= 0.7));
  // Tracing is observation-only by contract: identical results always, and
  // at real sizes the decimated spans must cost under 2% wall clock.
  const bool spans_ok =
      spans_identical && (smoke || spans_overhead < 0.02);
  const bool pass = identical && single_rate > 0 && speedup_ok && dense_ok &&
                    kernel_ok && urn_ok && fluid_ok && parallel_ok &&
                    spans_ok;
  std::string failure;
  if (!identical) {
    failure = "thread count changed the results";
  } else if (single_rate <= 0) {
    failure = "single-threaded throughput measured as zero";
  } else if (!speedup_ok) {
    failure = "multi-threaded speedup below expectation";
  } else if (!parallel_identical) {
    failure = "inner run_threads width changed the results";
  } else if (!parallel_ok) {
    failure = "intra-run 8-thread speedup below the 4x requirement (" +
              std::to_string(parallel_speedup8) + "x on " +
              std::to_string(hw_cores) + " cores)";
  } else if (!dense_ok) {
    failure = "dense backend slower than the agent array";
  } else if (!kernel_identical) {
    failure = "compiled kernel changed the results";
  } else if (!kernel_ok) {
    failure = "compiled-kernel speedup below expectation (best " +
              std::to_string(best_kernel_speedup) + "x, worst " +
              std::to_string(worst_kernel_speedup) + "x)";
  } else if (!urn_identical_grading) {
    failure = "clustered urn run failed to reach silent consensus";
  } else if (!urn_ok) {
    failure = "clustered urn speedup below the 10x requirement (" +
              std::to_string(urn_speedup) + "x at n=" +
              std::to_string(urn_n) + ")";
  } else if (!spans_identical) {
    failure = "span tracing changed the results";
  } else if (!spans_ok) {
    failure = "span-tracing overhead above the 2% requirement (" +
              std::to_string(spans_overhead * 100.0) + "%)";
  } else if (!fluid_converged) {
    failure = "fluid run failed to reach silent consensus at n=" +
              std::to_string(fluid_n);
  } else {
    failure = "fluid speedup below the 100x requirement (" +
              std::to_string(fluid_speedup) + "x at n=" +
              std::to_string(fluid_n) + ")";
  }
  return bench::verdict(
      pass, pass ? "throughput measured; deterministic results at every "
                   "thread count; dense backend at least matches the agent "
                   "array; compiled kernels beat virtual dispatch; clustered "
                   "urn backend beats the agent engine by " +
                       util::Table::num(urn_speedup, 0) + "x at n=" +
                       std::to_string(urn_n) +
                       "; fluid tier reaches consensus at n=" +
                       std::to_string(fluid_n) + " " +
                       util::Table::num(fluid_speedup, 0) +
                       "x faster than the dense extrapolation"
                 : failure);
}
