// E11 — implementation quality: raw transition throughput and end-to-end
// simulation throughput (interactions/second) for every protocol family.
// google-benchmark; items processed = interactions, so the report reads
// directly in interactions/sec.
#include <benchmark/benchmark.h>

#include <vector>

#include "analysis/workload.hpp"
#include "baselines/approx_majority_3state.hpp"
#include "baselines/exact_majority_4state.hpp"
#include "baselines/pairwise_plurality.hpp"
#include "core/circles_protocol.hpp"
#include "extensions/tie_report.hpp"
#include "extensions/unordered_circles.hpp"
#include "pp/engine.hpp"
#include "pp/silence.hpp"
#include "pp/transition_cache.hpp"

namespace {

using namespace circles;

/// Raw transition-function calls over a pseudo-random state stream.
void run_transition_bench(benchmark::State& state,
                          const pp::Protocol& protocol) {
  util::Rng rng(1);
  const auto num_states = protocol.num_states();
  std::vector<pp::StateId> stream(4096);
  for (auto& s : stream) {
    s = static_cast<pp::StateId>(rng.uniform_below(num_states));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const pp::StateId a = stream[i & 4095];
    const pp::StateId b = stream[(i + 1) & 4095];
    benchmark::DoNotOptimize(protocol.transition(a, b));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_TransitionCircles(benchmark::State& state) {
  core::CirclesProtocol protocol(static_cast<std::uint32_t>(state.range(0)));
  run_transition_bench(state, protocol);
}
BENCHMARK(BM_TransitionCircles)->Arg(4)->Arg(16)->Arg(64);

void BM_TransitionTieReport(benchmark::State& state) {
  ext::TieReportProtocol protocol(static_cast<std::uint32_t>(state.range(0)));
  run_transition_bench(state, protocol);
}
BENCHMARK(BM_TransitionTieReport)->Arg(4)->Arg(16);

void BM_TransitionPairwise(benchmark::State& state) {
  baselines::PairwisePlurality protocol(
      static_cast<std::uint32_t>(state.range(0)));
  run_transition_bench(state, protocol);
}
BENCHMARK(BM_TransitionPairwise)->Arg(3)->Arg(5);

void BM_TransitionUnordered(benchmark::State& state) {
  ext::UnorderedCirclesProtocol protocol(
      static_cast<std::uint32_t>(state.range(0)));
  run_transition_bench(state, protocol);
}
BENCHMARK(BM_TransitionUnordered)->Arg(4)->Arg(8);

/// End-to-end engine throughput: fixed interaction budget, silence stop off.
void run_engine_bench(benchmark::State& state, const pp::Protocol& protocol,
                      std::uint32_t n) {
  util::Rng rng(2);
  analysis::Workload w =
      analysis::random_unique_winner(rng, n, protocol.num_colors());
  const auto colors = w.agent_colors(rng);
  constexpr std::uint64_t kBatch = 1 << 16;
  for (auto _ : state) {
    state.PauseTiming();
    pp::Population population(protocol, colors);
    auto scheduler =
        pp::make_scheduler(pp::SchedulerKind::kUniformRandom, n, rng());
    pp::EngineOptions options;
    options.max_interactions = kBatch;
    options.stop_when_silent = false;
    pp::Engine engine(options);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        engine.run(protocol, population, *scheduler));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kBatch));
}

void BM_EngineCircles(benchmark::State& state) {
  core::CirclesProtocol protocol(static_cast<std::uint32_t>(state.range(0)));
  run_engine_bench(state, protocol,
                   static_cast<std::uint32_t>(state.range(1)));
}
BENCHMARK(BM_EngineCircles)->Args({8, 256})->Args({8, 4096})->Args({32, 1024});

void BM_EngineFourState(benchmark::State& state) {
  baselines::ExactMajority4State protocol;
  run_engine_bench(state, protocol,
                   static_cast<std::uint32_t>(state.range(0)));
}
BENCHMARK(BM_EngineFourState)->Arg(1024);

void BM_EngineApproxMajority(benchmark::State& state) {
  baselines::ApproxMajority3State protocol;
  run_engine_bench(state, protocol,
                   static_cast<std::uint32_t>(state.range(0)));
}
BENCHMARK(BM_EngineApproxMajority)->Arg(1024);

void BM_EnginePairwise(benchmark::State& state) {
  baselines::PairwisePlurality protocol(
      static_cast<std::uint32_t>(state.range(0)));
  run_engine_bench(state, protocol, 256);
}
BENCHMARK(BM_EnginePairwise)->Arg(4);

// Dense transition caching (pp::CachedProtocol): the pairwise baseline's
// transitions decode O(k^2) digits; the cached variant is one array load.
void BM_EnginePairwiseCached(benchmark::State& state) {
  baselines::PairwisePlurality base(
      static_cast<std::uint32_t>(state.range(0)));
  pp::CachedProtocol protocol(base);
  run_engine_bench(state, protocol, 256);
}
BENCHMARK(BM_EnginePairwiseCached)->Arg(4);

void BM_EngineCirclesCached(benchmark::State& state) {
  core::CirclesProtocol base(static_cast<std::uint32_t>(state.range(0)));
  pp::CachedProtocol protocol(base);
  run_engine_bench(state, protocol,
                   static_cast<std::uint32_t>(state.range(1)));
}
BENCHMARK(BM_EngineCirclesCached)->Args({8, 256});

/// Silence-check cost in isolation (it gates the engine's stop decision).
void BM_SilenceCheck(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  core::CirclesProtocol protocol(k);
  util::Rng rng(3);
  analysis::Workload w = analysis::random_unique_winner(rng, 512, k);
  const auto colors = w.agent_colors(rng);
  pp::Population population(protocol, colors);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pp::is_silent(population, protocol));
  }
}
BENCHMARK(BM_SilenceCheck)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
