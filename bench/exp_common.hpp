// Shared boilerplate for the experiment binaries (bench/exp_*.cpp).
//
// Every experiment binary prints a header naming the claim it reproduces,
// one or more tables, and a PASS/FAIL verdict line that EXPERIMENTS.md
// references. Binaries accept --trials/--seed style flags for deeper runs
// but default to settings that finish in seconds.
//
// All experiments run through the circles::sim session API: protocols are
// constructed by the ProtocolRegistry, sweeps are RunSpec grids, and the
// BatchRunner executes them across a thread pool (--threads). Results are
// bitwise identical for any thread count.
#pragma once

#include <cstdio>
#include <set>
#include <span>
#include <string>

#include "sim/sim.hpp"
#include "util/cli.hpp"

namespace circles::bench {

inline void print_header(const std::string& id, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), claim.c_str());
  std::printf("================================================================\n");
}

inline int verdict(bool pass, const std::string& summary) {
  std::printf("\n[%s] %s\n", pass ? "PASS" : "FAIL", summary.c_str());
  return pass ? 0 : 1;
}

/// The standard kernel-stats line, printed identically by every binary: one
/// line per distinct (protocol, k, table kind, entries) across the results
/// (build time is the first compile's — repeats differ only in noise), e.g.
///   kernel: circles k=3 — dense 729 entries, 7.1 KiB, built in 0.01 ms
inline void print_kernel_stats(std::span<const sim::SpecResult> results) {
  std::set<std::string> seen;
  for (const sim::SpecResult& result : results) {
    if (!result.kernel_compiled) continue;
    char head[64];
    std::snprintf(head, sizeof head, "%s k=%u", result.spec.protocol.c_str(),
                  result.spec.params.k);
    const std::string key = std::string(head) + "/" +
                            kernel::to_string(result.kernel_stats.kind) + "/" +
                            std::to_string(result.kernel_stats.entries);
    if (!seen.insert(key).second) continue;
    std::printf("kernel: %s — %s\n", head,
                result.kernel_stats.to_string().c_str());
  }
}

/// Declares the standard --threads flag and builds the BatchRunner options.
inline sim::BatchOptions batch_options(util::Cli& cli,
                                       std::uint64_t base_seed) {
  sim::BatchOptions options;
  options.threads = static_cast<std::uint32_t>(cli.int_flag(
      "threads", 0,
      "OUTER worker threads, across trials (batch runner pool; 0 = "
      "hardware). The INNER inside-a-run knob is --run-threads"));
  options.base_seed = base_seed;
  return options;
}

}  // namespace circles::bench
