// Shared boilerplate for the experiment binaries (bench/exp_*.cpp).
//
// Every experiment binary prints a header naming the claim it reproduces,
// one or more tables, and a PASS/FAIL verdict line that EXPERIMENTS.md
// references. Binaries accept --trials/--seed style flags for deeper runs
// but default to settings that finish in seconds.
#pragma once

#include <cstdio>
#include <string>

namespace circles::bench {

inline void print_header(const std::string& id, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), claim.c_str());
  std::printf("================================================================\n");
}

inline int verdict(bool pass, const std::string& summary) {
  std::printf("\n[%s] %s\n", pass ? "PASS" : "FAIL", summary.c_str());
  return pass ? 0 : 1;
}

}  // namespace circles::bench
