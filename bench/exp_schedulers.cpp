// E7 — scheduler robustness: the paper quantifies over ALL weakly fair
// schedules. One fixed workload is run under every scheduler in the zoo;
// the winner and the stable decomposition must be identical everywhere,
// while time-to-silence varies by orders of magnitude (the scheduler owns
// the clock, not the correctness).
#include "analysis/trial.hpp"
#include "analysis/workload.hpp"
#include "core/circles_protocol.hpp"
#include "exp_common.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<int>(cli.int_flag("trials", 5, "trials per scheduler"));
  const auto seed = static_cast<std::uint64_t>(cli.int_flag("seed", 7, "rng seed"));
  cli.finish();

  bench::print_header("E7",
                      "scheduler robustness — same answer under every weakly "
                      "fair scheduler, different clocks");

  util::Rng rng(seed);
  const std::uint32_t k = 6;
  core::CirclesProtocol protocol(k);

  util::Table table({"scheduler", "n", "correct", "decomposition",
                     "mean interactions", "p90 interactions",
                     "mean exchanges"});
  bool all_ok = true;

  for (const pp::SchedulerKind kind : pp::kAllSchedulerKinds) {
    const std::uint64_t n =
        kind == pp::SchedulerKind::kAdversarialDelay ? 16 : 48;
    const analysis::Workload w = analysis::random_unique_winner(rng, n, k);
    int correct = 0, matches = 0;
    std::vector<double> interactions;
    double exchanges = 0;
    for (int t = 0; t < trials; ++t) {
      analysis::TrialOptions options;
      options.scheduler = kind;
      options.seed = rng();
      const auto outcome = analysis::run_circles_trial(protocol, w, options);
      correct += outcome.trial.correct ? 1 : 0;
      matches += outcome.decomposition_matches ? 1 : 0;
      interactions.push_back(
          static_cast<double>(outcome.trial.run.interactions));
      exchanges += static_cast<double>(outcome.ket_exchanges);
    }
    all_ok = all_ok && correct == trials && matches == trials;
    const auto s = util::summarize(interactions);
    table.add_row({pp::to_string(kind), util::Table::num(n),
                   util::Table::percent(double(correct) / trials, 0),
                   util::Table::percent(double(matches) / trials, 0),
                   util::Table::num(s.mean, 0), util::Table::num(s.p90, 0),
                   util::Table::num(exchanges / trials, 1)});
  }
  table.print("one protocol, five schedulers (k=6)");
  return bench::verdict(all_ok,
                        all_ok ? "correctness and decomposition held under "
                                 "every scheduler including the adversary"
                               : "a scheduler broke correctness");
}
