// E7 — scheduler robustness: the paper quantifies over ALL weakly fair
// schedules. One fixed workload is run under every scheduler in the zoo;
// the winner and the stable decomposition must be identical everywhere,
// while time-to-silence varies by orders of magnitude (the scheduler owns
// the clock, not the correctness).
#include <vector>

#include "exp_common.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<std::uint32_t>(
      cli.int_flag("trials", 5, "trials per scheduler"));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_flag("seed", 7, "rng seed"));
  const auto batch = bench::batch_options(cli, seed);
  cli.finish();

  bench::print_header("E7",
                      "scheduler robustness — same answer under every weakly "
                      "fair scheduler, different clocks");

  const std::uint32_t k = 6;
  util::Rng rng(seed);
  std::vector<sim::RunSpec> specs;
  for (const pp::SchedulerKind kind : pp::kAllSchedulerKinds) {
    const std::uint64_t n =
        kind == pp::SchedulerKind::kAdversarialDelay ? 16 : 48;
    // One fixed workload per scheduler; trials only vary the schedule.
    const analysis::Workload workload = analysis::random_unique_winner(rng, n, k);
    sim::RunSpec spec;
    spec.protocol = "circles";
    spec.params.k = k;
    spec.workload = sim::WorkloadSpec::explicit_counts(workload.counts);
    spec.scheduler = kind;
    spec.trials = trials;
    spec.circles_stats = true;
    specs.push_back(std::move(spec));
  }

  const auto results = sim::BatchRunner(batch).run(specs);

  util::Table table({"scheduler", "n", "correct", "decomposition",
                     "mean interactions", "p90 interactions",
                     "mean exchanges"});
  bool all_ok = true;
  for (const sim::SpecResult& r : results) {
    all_ok = all_ok && r.all_correct() &&
             r.decomposition_matches == r.trial_count;
    table.add_row({pp::to_string(r.spec.scheduler),
                   util::Table::num(r.spec.effective_n()),
                   util::Table::percent(r.correct_rate(), 0),
                   util::Table::percent(r.decomposition_rate(), 0),
                   util::Table::num(r.interactions.mean, 0),
                   util::Table::num(r.interactions.p90, 0),
                   util::Table::num(r.ket_exchanges.mean, 1)});
  }
  table.print("one protocol, five schedulers (k=6)");
  return bench::verdict(all_ok,
                        all_ok ? "correctness and decomposition held under "
                                 "every scheduler including the adversary"
                               : "a scheduler broke correctness");
}
