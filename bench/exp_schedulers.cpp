// E7 — scheduler robustness: the paper quantifies over ALL weakly fair
// schedules. One fixed workload is run under every scheduler in the zoo;
// the winner and the stable decomposition must be identical everywhere,
// while time-to-silence varies by orders of magnitude (the scheduler owns
// the clock, not the correctness).
//
// Second section (E7b): the lumpable schedulers (uniform, clustered) also
// run on the count-level urn backends. Correctness must be 100% on every
// backend and the stabilization-time distributions must agree with the
// agent engine (two-sample KS test at alpha = 0.001) — the agent-vs-urn
// agreement check CI asserts on.
#include <cmath>
#include <vector>

#include "exp_common.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

std::vector<double> last_change_samples(const circles::sim::SpecResult& r) {
  std::vector<double> out;
  out.reserve(r.trials.size());
  for (const auto& rec : r.trials) {
    out.push_back(static_cast<double>(rec.outcome.run.last_change_step));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const bool smoke =
      cli.bool_flag("smoke", false, "fast CI subset (fewer/smaller cells)");
  const auto trials = static_cast<std::uint32_t>(
      cli.int_flag("trials", 5, "trials per scheduler"));
  const auto urn_trials = static_cast<std::uint32_t>(cli.int_flag(
      "urn_trials", smoke ? 24 : 40, "trials per backend in the urn section"));
  const auto urn_n = static_cast<std::uint64_t>(cli.int_flag(
      "urn_n", smoke ? 300 : 1000, "population size for the urn section"));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_flag("seed", 7, "rng seed"));
  const auto batch = bench::batch_options(cli, seed);
  cli.finish();

  bench::print_header("E7",
                      "scheduler robustness — same answer under every weakly "
                      "fair scheduler, different clocks");

  const std::uint32_t k = 6;
  util::Rng rng(seed);
  std::vector<sim::RunSpec> specs;
  for (const pp::SchedulerKind kind : pp::kAllSchedulerKinds) {
    const std::uint64_t n =
        kind == pp::SchedulerKind::kAdversarialDelay ? 16 : 48;
    // One fixed workload per scheduler; trials only vary the schedule.
    const analysis::Workload workload = analysis::random_unique_winner(rng, n, k);
    sim::RunSpec spec;
    spec.protocol = "circles";
    spec.params.k = k;
    spec.workload = sim::WorkloadSpec::explicit_counts(workload.counts);
    spec.scheduler = kind;
    spec.trials = trials;
    spec.circles_stats = true;
    specs.push_back(std::move(spec));
  }

  const auto results = sim::BatchRunner(batch).run(specs);

  util::Table table({"scheduler", "n", "correct", "decomposition",
                     "mean interactions", "p90 interactions",
                     "mean exchanges"});
  bool all_ok = true;
  for (const sim::SpecResult& r : results) {
    all_ok = all_ok && r.all_correct() &&
             r.decomposition_matches == r.trial_count;
    table.add_row({pp::to_string(r.spec.scheduler),
                   util::Table::num(r.spec.effective_n()),
                   util::Table::percent(r.correct_rate(), 0),
                   util::Table::percent(r.decomposition_rate(), 0),
                   util::Table::num(r.interactions.mean, 0),
                   util::Table::num(r.interactions.p90, 0),
                   util::Table::num(r.ket_exchanges.mean, 1)});
  }
  table.print("one protocol, five schedulers (k=6)");
  bench::print_kernel_stats(results);

  // --- E7b: dense-urn backends on the lumpable schedulers ------------------
  const std::uint32_t urn_k = 3;
  const analysis::Workload urn_workload =
      analysis::random_unique_winner(rng, urn_n, urn_k);
  const sim::EngineKind backends[] = {sim::EngineKind::kAgentArray,
                                      sim::EngineKind::kDense,
                                      sim::EngineKind::kDenseBatched};
  std::vector<sim::RunSpec> urn_specs;
  for (const pp::SchedulerKind kind :
       {pp::SchedulerKind::kUniformRandom, pp::SchedulerKind::kClustered}) {
    for (const sim::EngineKind backend : backends) {
      sim::RunSpec spec;
      spec.protocol = "circles";
      spec.params.k = urn_k;
      spec.workload = sim::WorkloadSpec::explicit_counts(urn_workload.counts);
      spec.scheduler = kind;
      if (kind == pp::SchedulerKind::kClustered) {
        spec.clusters = 2;
        spec.bridge = 0.02;
      }
      spec.backend = backend;
      spec.trials = urn_trials;
      // One pinned seed per scheduler: every backend sees identical
      // per-trial workloads, only the (equally distributed) schedule
      // streams differ.
      spec.seed = sim::mix_seed(seed, static_cast<std::uint64_t>(kind));
      urn_specs.push_back(std::move(spec));
    }
  }
  const auto urn_results = sim::BatchRunner(batch).run(urn_specs);

  // KS critical value at alpha = 0.001 for two samples of urn_trials.
  const double ks_crit =
      1.95 * std::sqrt(2.0 / static_cast<double>(urn_trials));
  util::Table urn_table({"scheduler", "backend", "correct", "silent",
                         "mean interactions", "KS vs agent"});
  bool urn_ok = true;
  for (std::size_t s = 0; s < urn_results.size(); s += 3) {
    const sim::SpecResult& agent = urn_results[s];
    const auto agent_samples = last_change_samples(agent);
    for (std::size_t b = 0; b < 3; ++b) {
      const sim::SpecResult& r = urn_results[s + b];
      urn_ok = urn_ok && r.all_correct() && r.all_silent();
      double ks = 0.0;
      if (b > 0) {
        ks = util::ks_distance(agent_samples, last_change_samples(r));
        urn_ok = urn_ok && ks < ks_crit;
      }
      urn_table.add_row(
          {pp::to_string(r.spec.scheduler), sim::to_string(r.backend_resolved),
           util::Table::percent(r.correct_rate(), 0),
           util::Table::percent(r.silent_rate(), 0),
           util::Table::num(r.interactions.mean, 0),
           b == 0 ? "—" : util::Table::num(ks, 3)});
    }
  }
  urn_table.print("count-level (urn) backends on lumpable schedulers (k=" +
                  std::to_string(urn_k) + ", n=" + std::to_string(urn_n) +
                  ", " + std::to_string(urn_trials) +
                  " trials, KS critical " + util::Table::num(ks_crit, 3) +
                  ")");
  std::printf("\nagent-vs-urn agreement: %s\n", urn_ok ? "PASS" : "FAIL");

  all_ok = all_ok && urn_ok;
  return bench::verdict(all_ok,
                        all_ok ? "correctness and decomposition held under "
                                 "every scheduler including the adversary; "
                                 "urn backends agree with the agent engine "
                                 "on every lumpable scheduler"
                               : "a scheduler or backend broke correctness "
                                 "or agreement");
}
