// E17 — fault injection (beyond the paper): transient resets.
//
// A transient fault resets an agent to its own *input* state ⟨c|c⟩ (the
// natural sensor-reboot model: the agent remembers its reading, loses its
// working memory). Bras are unharmed (the bra always equals the input
// color), but the reset rewrites the agent's ket, so the global bra-ket
// conservation of Lemma 3.3 — an initialization invariant — is violated
// from that point on. Theorem 3.4 still guarantees stabilization from any
// configuration; what is lost, and how often, is correctness. Fault
// injection is first-class in RunSpec (reboot_faults), so this experiment
// is a plain spec grid.
#include <vector>

#include "exp_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<std::uint32_t>(
      cli.int_flag("trials", 30, "trials per cell"));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_flag("seed", 17, "rng seed"));
  const auto batch = bench::batch_options(cli, seed);
  cli.finish();

  bench::print_header("E17",
                      "fault injection (beyond the paper) — reboot-to-input "
                      "faults vs correctness");

  std::vector<sim::RunSpec> specs;
  for (const std::uint32_t faults : {0u, 1u, 2u, 4u, 8u}) {
    sim::RunSpec spec;
    spec.protocol = "circles";
    spec.params.k = 4;
    spec.n = 32;
    spec.trials = trials;
    spec.reboot_faults = faults;
    specs.push_back(std::move(spec));
  }

  const auto results = sim::BatchRunner(batch).run(specs);

  util::Table table({"faults injected", "trials", "silent", "correct",
                     "wrong consensus", "split outputs"});
  bool zero_fault_perfect = true;
  for (const sim::SpecResult& r : results) {
    // silent runs decompose into: correct consensus, consensus on a wrong
    // color, or frozen with split outputs.
    const std::uint32_t wrong = r.consensus - r.correct;
    const std::uint32_t split = r.silent - r.consensus;
    if (r.spec.reboot_faults == 0) zero_fault_perfect = r.all_correct();
    table.add_row({util::Table::num(std::uint64_t{r.spec.reboot_faults}),
                   util::Table::num(std::uint64_t{r.trial_count}),
                   util::Table::percent(r.silent_rate(), 0),
                   util::Table::percent(r.correct_rate(), 0),
                   util::Table::percent(double(wrong) / r.trial_count, 0),
                   util::Table::percent(double(split) / r.trial_count, 0)});
  }
  table.print("reboot faults vs outcome (k=4, n=32, uniform scheduler)");
  std::printf("\nStabilization survives every fault load (Theorem 3.4 is "
              "initialization-free);\ncorrectness decays because a reboot "
              "rewrites the agent's ket and breaks the\nLemma 3.3 "
              "conservation that the decomposition rests on. Self-stabilizing "
              "\nrelative majority would need extra machinery the paper does "
              "not claim.\n");
  return bench::verdict(zero_fault_perfect,
                        zero_fault_perfect
                            ? "0-fault baseline 100% correct; degradation "
                              "under faults quantified above"
                            : "0-fault baseline failed — harness bug");
}
