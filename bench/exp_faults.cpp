// E17 — fault injection (beyond the paper): transient resets.
//
// A transient fault resets an agent to its own *input* state ⟨c|c⟩ (the
// natural sensor-reboot model: the agent remembers its reading, loses its
// working memory). Bras are unharmed (the bra always equals the input
// color), but the reset rewrites the agent's ket, so the global bra-ket
// conservation of Lemma 3.3 — an initialization invariant — is violated
// from that point on. Theorem 3.4 still guarantees stabilization from any
// configuration; what is lost, and how often, is correctness. This
// experiment injects j faults at random times and measures survival.
#include <vector>

#include "analysis/workload.hpp"
#include "core/circles_protocol.hpp"
#include "exp_common.hpp"
#include "pp/engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<int>(cli.int_flag("trials", 30, "trials per cell"));
  const auto seed = static_cast<std::uint64_t>(cli.int_flag("seed", 17, "rng seed"));
  cli.finish();

  bench::print_header("E17",
                      "fault injection (beyond the paper) — reboot-to-input "
                      "faults vs correctness");

  util::Rng rng(seed);
  const std::uint32_t k = 4;
  const std::uint32_t n = 32;
  core::CirclesProtocol protocol(k);

  util::Table table({"faults injected", "trials", "silent", "correct",
                     "wrong consensus", "split outputs"});
  bool zero_fault_perfect = true;

  for (const std::uint32_t faults : {0u, 1u, 2u, 4u, 8u}) {
    int silent = 0, correct = 0, wrong = 0, split = 0;
    for (int t = 0; t < trials; ++t) {
      const analysis::Workload w = analysis::random_unique_winner(rng, n, k);
      util::Rng trial_rng(rng());
      const auto colors = w.agent_colors(trial_rng);
      pp::Population population(protocol, colors);
      auto scheduler = pp::make_scheduler(pp::SchedulerKind::kUniformRandom,
                                          n, trial_rng());

      // Run in bursts; between bursts, reboot one random agent to its input.
      pp::EngineOptions burst;
      burst.max_interactions = 200 + trial_rng.uniform_below(400);
      burst.stop_when_silent = false;
      for (std::uint32_t f = 0; f < faults; ++f) {
        pp::Engine engine(burst);
        engine.run(protocol, population, *scheduler);
        const auto victim =
            static_cast<pp::AgentId>(trial_rng.uniform_below(n));
        population.set_state(victim, protocol.input(colors[victim]));
      }
      pp::Engine engine;  // now run to silence
      const auto result = engine.run(protocol, population, *scheduler);
      silent += result.silent ? 1 : 0;
      if (result.silent &&
          population.output_consensus(protocol, *w.winner())) {
        ++correct;
      } else if (result.silent) {
        bool consensus_on_other = false;
        for (pp::OutputSymbol c = 0; c < k; ++c) {
          if (c != *w.winner() && population.output_consensus(protocol, c)) {
            consensus_on_other = true;
          }
        }
        (consensus_on_other ? wrong : split) += 1;
      }
    }
    if (faults == 0) zero_fault_perfect = correct == trials;
    table.add_row({util::Table::num(std::uint64_t{faults}),
                   util::Table::num(std::int64_t{trials}),
                   util::Table::percent(double(silent) / trials, 0),
                   util::Table::percent(double(correct) / trials, 0),
                   util::Table::percent(double(wrong) / trials, 0),
                   util::Table::percent(double(split) / trials, 0)});
  }
  table.print("reboot faults vs outcome (k=4, n=32, uniform scheduler)");
  std::printf("\nStabilization survives every fault load (Theorem 3.4 is "
              "initialization-free);\ncorrectness decays because a reboot "
              "rewrites the agent's ket and breaks the\nLemma 3.3 "
              "conservation that the decomposition rests on. Self-stabilizing "
              "\nrelative majority would need extra machinery the paper does "
              "not claim.\n");
  return bench::verdict(zero_fault_perfect,
                        zero_fault_perfect
                            ? "0-fault baseline 100% correct; degradation "
                              "under faults quantified above"
                            : "0-fault baseline failed — harness bug");
}
