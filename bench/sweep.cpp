// Generic sweep driver: any protocol x k x n x scheduler grid straight from
// the command line, no code changes. The whole binary is specs_from_flags +
// BatchRunner + a table:
//
//   $ ./build/bench/sweep --protocol=circles,tie_report --k=2,4 \
//       --n=100,1000 --scheduler=uniform,shuffled --trials=10 --threads=8
//
// Prints one row per grid cell with correctness, silence and interaction
// stats. Exit code 0 iff every cell was 100% correct (use --workload=tie:2
// with tie-capable protocols and --tie_aware for tie grading).
#include <stdexcept>

#include "exp_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) try {
  using namespace circles;
  util::Cli cli(argc, argv);
  auto sweep = sim::specs_from_flags(cli);
  const bool tie_aware = cli.bool_flag(
      "tie_aware", false, "grade ties against the TIE symbol (= k)");
  const bool kernel = cli.bool_flag(
      "kernel", true,
      "compile protocol kernels (off = legacy virtual-dispatch loops)");
  const auto batch = bench::batch_options(cli, sweep.base_seed);
  cli.finish();

  if (tie_aware) {
    for (auto& spec : sweep.specs) spec.grading = sim::Grading::kTieAware;
  }
  if (!kernel) {
    for (auto& spec : sweep.specs) spec.use_kernel = false;
  }

  bench::print_header("SWEEP", "declarative protocol sweep (" +
                                   std::to_string(sweep.specs.size()) +
                                   " grid cells)");

  const auto results = sim::BatchRunner(batch).run(sweep.specs);

  util::Table table({"protocol", "k", "n", "scheduler", "backend", "workload",
                     "trials", "correct", "silent", "mean interactions",
                     "p90 interactions", "kernel"});
  bool all_correct = true;
  for (const sim::SpecResult& r : results) {
    all_correct = all_correct && r.all_correct();
    // Kernel kind + one-time compile cost, so table-build time is visible
    // next to the simulation numbers instead of hiding inside them.
    const std::string kernel_cell =
        r.kernel_compiled
            ? kernel::to_string(r.kernel_stats.kind) + " " +
                  util::Table::num(r.kernel_stats.build_ms, 2) + "ms"
            : "off";
    table.add_row({r.spec.protocol,
                   util::Table::num(std::uint64_t{r.spec.params.k}),
                   util::Table::num(r.spec.effective_n()),
                   pp::to_string(r.spec.scheduler),
                   sim::to_string(r.spec.backend),
                   r.spec.workload.to_string(),
                   util::Table::num(std::uint64_t{r.trial_count}),
                   util::Table::percent(r.correct_rate(), 0),
                   util::Table::percent(r.silent_rate(), 0),
                   util::Table::num(r.interactions.mean, 0),
                   util::Table::num(r.interactions.p90, 0),
                   kernel_cell});
  }
  table.print("sweep results");
  return bench::verdict(all_correct, all_correct
                                         ? "every cell 100% correct"
                                         : "some cells had failures");
} catch (const std::invalid_argument& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
