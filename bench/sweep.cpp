// Generic sweep driver: any protocol x k x n x scheduler grid straight from
// the command line, no code changes. The whole binary is specs_from_flags +
// BatchRunner + a table:
//
//   $ ./build/bench/sweep --protocol=circles,tie_report --k=2,4 \
//       --n=100,1000 --scheduler=uniform,shuffled --trials=10 --threads=8
//
// Prints one row per grid cell with correctness, silence and interaction
// stats. Exit code 0 iff every cell was 100% correct (use --workload=tie:2
// with tie-capable protocols and --tie_aware for tie grading).
//
// Trajectory recording (obs::): --trace attaches probes to every cell, e.g.
//   --trace=energy@log:256,counts --trace-out=traces/
// writes one cross-trial envelope per (cell, probe) as CSV + JSONL under
// traces/. --sample-points=0.1,0.5,0.9 overrides every probe's grid with
// explicit horizon fractions.
#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include "exp_common.hpp"
#include "obs/obs.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) try {
  using namespace circles;
  util::Cli cli(argc, argv);
  auto sweep = sim::specs_from_flags(cli);
  const bool tie_aware = cli.bool_flag(
      "tie_aware", false, "grade ties against the TIE symbol (= k)");
  const bool kernel = cli.bool_flag(
      "kernel", true,
      "compile protocol kernels (off = legacy virtual-dispatch loops)");
  const std::string trace_flag = cli.string_flag(
      "trace", "",
      "comma-separated count-trajectory probes per cell (counts, states, "
      "energy, active, convergence; optional @grid like energy@log:256) — "
      "for Chrome-trace span timelines use --spans-out instead");
  const std::string trace_out = cli.string_flag(
      "trace-out", "", "directory for per-cell trace envelopes (CSV + JSONL)");
  const std::string spans_out = cli.string_flag(
      "spans-out", "",
      "directory for per-cell span timelines (spec<i>.trace.json, Chrome "
      "Trace Event Format; open in chrome://tracing or ui.perfetto.dev) — "
      "span timelines, not the --trace count probes; failing trials also "
      "dump flight-recorder REPRO lines to stderr");
  const std::string repro_spec = cli.string_flag(
      "spec", "",
      "replay exactly one trial from a full RunSpec string (as printed by "
      "REPRO lines); needs --trial-seed and ignores the sweep grid");
  const std::string repro_seed_text = cli.string_flag(
      "trial-seed", "",
      "the replayed trial's exact seed, copied from the REPRO line");
  const std::vector<double> sample_points = cli.double_list_flag(
      "sample-points", "",
      "explicit sample fractions of the budget overriding every probe grid");
  const std::string metrics_out = cli.string_flag(
      "metrics-out", "",
      "directory for per-cell telemetry: spec<i>.jsonl counters/timers plus "
      "spec<i>.manifest.json provenance");
  const bool progress = cli.bool_flag(
      "progress", false,
      "stderr heartbeat every 2s: trials done, interactions/sec");
  auto batch = bench::batch_options(cli, sweep.base_seed);
  cli.finish();

  // Seed-exact replay of one (spec, trial): the flight recorder's REPRO
  // lines point here. Prints the verdict and final counts in the dump's
  // exact format so a failure and its replay diff cleanly.
  if (!repro_spec.empty() || !repro_seed_text.empty()) {
    if (repro_spec.empty() || repro_seed_text.empty()) {
      throw std::invalid_argument(
          "--spec and --trial-seed go together: both come from one REPRO "
          "line");
    }
    char* end = nullptr;
    const std::uint64_t seed = std::strtoull(repro_seed_text.c_str(), &end, 10);
    if (end == repro_seed_text.c_str() || *end != '\0') {
      throw std::invalid_argument(
          "--trial-seed expects the unsigned integer from the REPRO line");
    }
    const sim::RunSpec spec = sim::RunSpec::parse(repro_spec);
    if (spec.backend == sim::EngineKind::kAuto) {
      throw std::invalid_argument(
          "--spec replay needs a concrete backend= (REPRO lines bake the "
          "resolved one in); backend=auto would leave the engine choice to "
          "the batch runner");
    }
    const auto protocol =
        sim::ProtocolRegistry::global().create(spec.protocol, spec.params);
    const sim::TrialRecord rec =
        sim::BatchRunner::execute_trial(*protocol, spec, seed);
    bench::print_header("SWEEP REPRO",
                        "seed-exact single-trial replay of a REPRO line");
    std::printf("spec: %s\n", spec.to_string().c_str());
    std::printf("backend: %s\n", sim::to_string(spec.backend).c_str());
    std::printf("seed: %llu\n", static_cast<unsigned long long>(seed));
    std::printf("verdict: correct=%d silent=%d budget_exhausted=%d "
                "interactions=%llu state_changes=%llu\n",
                rec.outcome.correct ? 1 : 0, rec.outcome.run.silent ? 1 : 0,
                rec.outcome.run.budget_exhausted ? 1 : 0,
                static_cast<unsigned long long>(rec.outcome.run.interactions),
                static_cast<unsigned long long>(
                    rec.outcome.run.state_changes));
    std::printf("final outputs:");
    for (const std::uint64_t count : rec.outcome.run.final_outputs) {
      std::printf(" %llu", static_cast<unsigned long long>(count));
    }
    std::printf("\n");
    return bench::verdict(rec.outcome.correct,
                          rec.outcome.correct
                              ? "replayed trial graded correct"
                              : "replayed trial reproduced the failure");
  }

  // --trace splits on commas, but frac: grids legitimately contain commas
  // ("energy@frac:0.1,0.9"): a purely numeric token continues the previous
  // probe's grid (no probe kind is a number), everything else starts one.
  std::vector<std::string> probe_texts;
  for (const std::string& token : util::split_commas(trace_flag)) {
    char* end = nullptr;
    (void)std::strtod(token.c_str(), &end);
    const bool numeric = end != token.c_str() && *end == '\0';
    if (numeric && !probe_texts.empty()) {
      probe_texts.back() += "," + token;
    } else {
      probe_texts.push_back(token);
    }
  }
  std::vector<obs::ProbeSpec> probes;
  for (const std::string& text : probe_texts) {
    probes.push_back(obs::ProbeSpec::parse(text));
  }
  if (!sample_points.empty()) {
    if (probes.empty()) {
      throw std::invalid_argument("--sample-points needs --trace probes");
    }
    for (const double f : sample_points) {
      // Same domain GridSpec::parse enforces for frac: grids, so the spec
      // still round-trips through to_string()/parse().
      if (!(f > 0.0) || f > 1.0) {
        throw std::invalid_argument(
            "--sample-points fractions must lie in (0, 1]");
      }
    }
    for (auto& probe : probes) probe.grid.fractions = sample_points;
  }
  if (!trace_out.empty() && probes.empty()) {
    throw std::invalid_argument("--trace-out needs --trace probes");
  }

  if (tie_aware) {
    for (auto& spec : sweep.specs) spec.grading = sim::Grading::kTieAware;
  }
  if (!kernel) {
    for (auto& spec : sweep.specs) spec.use_kernel = false;
  }
  for (auto& spec : sweep.specs) spec.probes = probes;

  if (!metrics_out.empty()) {
    std::filesystem::create_directories(metrics_out);
    for (std::size_t i = 0; i < sweep.specs.size(); ++i) {
      sweep.specs[i].metrics_out =
          metrics_out + "/spec" + std::to_string(i) + ".jsonl";
    }
  }
  if (!spans_out.empty()) {
    std::filesystem::create_directories(spans_out);
    for (std::size_t i = 0; i < sweep.specs.size(); ++i) {
      sweep.specs[i].spans_out =
          spans_out + "/spec" + std::to_string(i) + ".trace.json";
    }
  }
  if (progress) {
    batch.progress = [](const sim::BatchProgress& p) {
      std::fprintf(stderr,
                   "progress: %llu/%llu trials, %u/%u specs, %.0f "
                   "interactions/s, %.1fs elapsed\n",
                   static_cast<unsigned long long>(p.trials_done),
                   static_cast<unsigned long long>(p.trials_total),
                   p.specs_done, p.specs_total, p.interactions_per_s(),
                   p.elapsed_s);
    };
  }

  bench::print_header("SWEEP", "declarative protocol sweep (" +
                                   std::to_string(sweep.specs.size()) +
                                   " grid cells)");

  const auto results = sim::BatchRunner(batch).run(sweep.specs);

  util::Table table({"protocol", "k", "n", "scheduler", "backend", "workload",
                     "trials", "correct", "silent", "mean interactions",
                     "p90 interactions", "kernel"});
  bool all_correct = true;
  for (const sim::SpecResult& r : results) {
    all_correct = all_correct && r.all_correct();
    const std::string kernel_cell =
        r.kernel_compiled ? kernel::to_string(r.kernel_stats.kind) : "off";
    // auto cells show what the runner actually picked.
    const std::string backend_cell =
        r.spec.backend == sim::EngineKind::kAuto
            ? "auto:" + sim::to_string(r.backend_resolved)
            : sim::to_string(r.backend_resolved);
    table.add_row({r.spec.protocol,
                   util::Table::num(std::uint64_t{r.spec.params.k}),
                   util::Table::num(r.spec.effective_n()),
                   pp::to_string(r.spec.scheduler),
                   backend_cell,
                   r.spec.workload.to_string(),
                   util::Table::num(std::uint64_t{r.trial_count}),
                   util::Table::percent(r.correct_rate(), 0),
                   util::Table::percent(r.silent_rate(), 0),
                   util::Table::num(r.interactions.mean, 0),
                   util::Table::num(r.interactions.p90, 0),
                   kernel_cell});
  }
  table.print("sweep results");
  // One-time compile cost per distinct kernel, so table-build time is
  // visible next to the simulation numbers instead of hiding inside them.
  bench::print_kernel_stats(results);

  if (!metrics_out.empty()) {
    std::printf("\nwrote %zu metric sinks (+manifests) to %s\n",
                results.size(), metrics_out.c_str());
  }
  if (!spans_out.empty()) {
    std::printf("\nwrote %zu span timelines to %s (chrome://tracing / "
                "ui.perfetto.dev)\n",
                results.size(), spans_out.c_str());
  }

  if (!trace_out.empty()) {
    std::filesystem::create_directories(trace_out);
    std::size_t written = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const sim::SpecResult& r = results[i];
      for (std::size_t j = 0; j < r.trace_envelopes.size(); ++j) {
        const std::string stem =
            trace_out + "/spec" + std::to_string(i) + "_probe" +
            std::to_string(j) + "_" + obs::to_string(r.spec.probes[j].kind);
        r.trace_envelopes[j].write_csv(stem + ".csv");
        r.trace_envelopes[j].write_jsonl(stem + ".jsonl");
        written += 2;
      }
    }
    std::printf("\nwrote %zu trace envelope files to %s\n", written,
                trace_out.c_str());
  }

  return bench::verdict(all_correct, all_correct
                                         ? "every cell 100% correct"
                                         : "some cells had failures");
} catch (const std::invalid_argument& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
