// E18 — scaling: the dense (count-based) backends reproduce the agent-array
// stabilization curves and extend them to population sizes the agent array
// cannot reach.
//
// For every (protocol, n) cell the same pinned seed is used across backends,
// so all backends see identical per-trial workloads; the schedule randomness
// differs, but the stabilization statistics are identical in distribution
// (the count process is exactly lumpable). The verdict checks that where the
// agent array and the dense backends overlap, their mean state-change counts
// agree within a tolerance band, and that every run reached exact silence.
//
// The default grid finishes in about a minute (random workloads can hand the
// fluid tier slow near-tied loser races; see src/fluid/fluid_engine.hpp); the
// full curves are one flag away:
//   exp_scaling --n=10000,100000 --big_n=1000000,10000000,100000000
// (big_n sizes run on the batched dense backend only; circles' empirical
// interactions-to-silence grow superlinearly, so its biggest cells are real
// compute even on the dense backend). fluid_n sizes additionally run on the
// mean-field fluid backend, whose cost is independent of n — big_n cells get
// a fluid twin too, so the curves overlap where both tiers can run.
// --smoke shrinks the grid for CI.
#include <chrono>
#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "exp_common.hpp"
#include "kernel/compiled_protocol.hpp"
#include "metrics/metrics.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace circles;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct CellResult {
  sim::RunSpec spec;
  sim::SpecResult result;
  double seconds = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool smoke = cli.bool_flag(
      "smoke", false, "tiny grid for CI (overrides --n/--big_n/--trials)");
  auto ns = cli.int_list_flag(
      "n", "10000", "population sizes for all backends");
  auto big_ns = cli.int_list_flag(
      "big_n", "1000000", "extra sizes for the batched dense backend only");
  auto fluid_ns = cli.int_list_flag(
      "fluid_n", "1000000000",
      "extra sizes for the mean-field fluid backend only");
  const auto protocols = cli.string_list_flag(
      "protocol", "circles,approx_majority_3state",
      "protocols to sweep (baselines default to their fixed k)");
  const auto k = static_cast<std::uint32_t>(
      cli.int_flag("k", 3, "colors for protocols with variable k"));
  auto trials =
      static_cast<std::uint32_t>(cli.int_flag("trials", 5, "trials per cell"));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_flag("seed", 7, "base rng seed"));
  auto agent_cap = static_cast<std::uint64_t>(cli.int_flag(
      "agent_cap", 200'000,
      "largest n simulated on the agent-array backend (wall clock guard)"));
  auto perstep_cap = static_cast<std::uint64_t>(cli.int_flag(
      "perstep_cap", 200'000,
      "largest n simulated on the per-step dense backend"));
  const auto budget = static_cast<std::uint64_t>(cli.int_flag(
      "budget", 0,
      "interaction budget per run (0 = auto: scales with n ln n so every "
      "size can reach silence)"));
  const std::string json_path = cli.string_flag(
      "json", "",
      "write the schema-stable scaling report (BENCH_scaling.json) to this "
      "path");
  const bool progress = cli.bool_flag(
      "progress", false,
      "stderr heartbeat every 2s: trials done, interactions/sec");
  auto batch = bench::batch_options(cli, seed);
  cli.finish();
  if (progress) {
    batch.progress = [](const sim::BatchProgress& p) {
      std::fprintf(stderr,
                   "progress: %llu/%llu trials, %u/%u specs, %.0f "
                   "interactions/s, %.1fs elapsed\n",
                   static_cast<unsigned long long>(p.trials_done),
                   static_cast<unsigned long long>(p.trials_total),
                   p.specs_done, p.specs_total, p.interactions_per_s(),
                   p.elapsed_s);
    };
  }

  if (smoke) {
    ns = {1'000, 10'000};
    big_ns = {100'000};
    fluid_ns = {10'000'000};
    trials = 3;
    agent_cap = 10'000;
    perstep_cap = 10'000;
  }

  bench::print_header(
      "E18",
      "scaling — dense batch simulation reproduces the agent-array "
      "stabilization curves and extends them beyond the agent array's reach");

  struct Cell {
    std::string protocol;
    std::uint64_t n;
    sim::EngineKind backend;
  };
  std::vector<Cell> cells;
  for (const auto& protocol : protocols) {
    for (const auto n : ns) {
      const auto un = static_cast<std::uint64_t>(n);
      if (un <= agent_cap) {
        cells.push_back({protocol, un, sim::EngineKind::kAgentArray});
      }
      if (un <= perstep_cap) {
        cells.push_back({protocol, un, sim::EngineKind::kDense});
      }
      cells.push_back({protocol, un, sim::EngineKind::kDenseBatched});
    }
    for (const auto n : big_ns) {
      cells.push_back({protocol, static_cast<std::uint64_t>(n),
                       sim::EngineKind::kDenseBatched});
      // Fluid twin: same seed, same per-trial workloads, so the state-change
      // curves line up with the batched cell directly above.
      cells.push_back({protocol, static_cast<std::uint64_t>(n),
                       sim::EngineKind::kFluid});
    }
    for (const auto n : fluid_ns) {
      cells.push_back({protocol, static_cast<std::uint64_t>(n),
                       sim::EngineKind::kFluid});
    }
  }

  // Run cells one at a time so each gets its own wall clock. Trials within
  // a cell still use the BatchRunner's thread pool.
  metrics::MetricsRegistry metrics_registry;
  sim::BatchOptions options = batch;
  options.keep_trials = false;
  options.metrics = &metrics_registry;
  const sim::BatchRunner runner(options);
  const auto t_program = Clock::now();

  std::vector<CellResult> results;
  for (const Cell& cell : cells) {
    const auto& registry = sim::ProtocolRegistry::global();
    sim::RunSpec spec;
    spec.protocol = cell.protocol;
    // Baselines with fixed k reject other values; probe with k first.
    spec.params.k = k;
    try {
      (void)registry.create(cell.protocol, spec.params);
    } catch (const std::invalid_argument&) {
      spec.params.k = 2;  // the binary baselines
    }
    spec.n = cell.n;
    spec.backend = cell.backend;
    spec.trials = trials;
    if (budget > 0) {
      spec.engine.max_interactions = budget;
    } else {
      // Circles' empirical interactions-to-silence grow like ~n^2/30 (with
      // large workload-to-workload spread); budget n^2/2 so "hit the
      // budget" never masquerades as a scaling datapoint.
      const double nd = static_cast<double>(cell.n);
      const double cap = std::min(0.5 * nd * nd, 9.0e18);
      spec.engine.max_interactions = std::max<std::uint64_t>(
          500'000'000, static_cast<std::uint64_t>(cap));
    }
    // Same seed for every backend of a (protocol, n) cell: identical
    // per-trial workloads, so the curves are directly comparable. FNV-1a on
    // the name keeps the seed platform-independent (std::hash is not).
    std::uint64_t name_hash = 1469598103934665603ull;
    for (const char c : cell.protocol) {
      name_hash = (name_hash ^ static_cast<unsigned char>(c)) *
                  1099511628211ull;
    }
    spec.seed = sim::mix_seed(seed, sim::mix_seed(cell.n, name_hash));

    const auto start = Clock::now();
    CellResult r;
    r.result = runner.run_one(spec);
    r.seconds = seconds_since(start);
    r.spec = spec;
    results.push_back(std::move(r));
  }

  util::Table table({"protocol", "k", "n", "backend", "trials", "silent",
                     "mean state changes", "mean interactions", "wall s",
                     "interactions/s"});
  bool all_silent = true;
  std::vector<sim::SpecResult> spec_results;
  spec_results.reserve(results.size());
  for (const CellResult& r : results) {
    const auto& sr = r.result;
    all_silent = all_silent && sr.all_silent();
    const double total_interactions = sr.interactions.mean * sr.trial_count;
    table.add_row(
        {r.spec.protocol, util::Table::num(std::uint64_t{r.spec.params.k}),
         util::Table::num(r.spec.n), sim::to_string(r.spec.backend),
         util::Table::num(std::uint64_t{sr.trial_count}),
         util::Table::percent(sr.silent_rate(), 0),
         util::Table::num(sr.state_changes.mean, 0),
         util::Table::num(sr.interactions.mean, 0),
         util::Table::num(r.seconds, 2),
         util::Table::num(
             r.seconds > 0 ? total_interactions / r.seconds : 0.0, 0)});
    spec_results.push_back(sr);
  }
  table.print("interactions to silence and wall clock, per backend");
  // Kernel compiles happen once per cell and their build time is part of
  // that cell's wall clock; the standard stats line keeps it from being
  // silently attributed to simulation throughput.
  bench::print_kernel_stats(spec_results);

  // Cross-backend agreement: state changes have the *same* distribution on
  // every backend (unlike raw interactions, where the agent array includes
  // its silence-detection overhead), so their means must agree up to
  // sampling noise.
  bool curves_agree = true;
  util::Table agree({"protocol", "n", "dense/agent state changes",
                     "batched/agent state changes", "agent s", "batched s",
                     "speedup"});
  for (const CellResult& a : results) {
    if (a.spec.backend != sim::EngineKind::kAgentArray) continue;
    const CellResult* dense = nullptr;
    const CellResult* batched = nullptr;
    for (const CellResult& b : results) {
      if (b.spec.protocol != a.spec.protocol || b.spec.n != a.spec.n) continue;
      if (b.spec.backend == sim::EngineKind::kDense) dense = &b;
      if (b.spec.backend == sim::EngineKind::kDenseBatched) batched = &b;
    }
    if (batched == nullptr) continue;
    // Ratio of mean state changes vs the agent cell; cells that did not run
    // render as "-" and do not vote on the verdict.
    const auto ratio = [&](const CellResult* r) -> std::optional<double> {
      if (r == nullptr || a.result.state_changes.mean <= 0) {
        return std::nullopt;
      }
      return r->result.state_changes.mean / a.result.state_changes.mean;
    };
    const auto in_band = [](std::optional<double> r) {
      return !r.has_value() || (*r > 0.5 && *r < 2.0);
    };
    const auto render = [](std::optional<double> r) {
      return r.has_value() ? util::Table::num(*r, 3) : std::string("-");
    };
    const auto dense_ratio = ratio(dense);
    const auto batched_ratio = ratio(batched);
    // Generous band: few trials of a concentrated statistic.
    curves_agree =
        curves_agree && in_band(dense_ratio) && in_band(batched_ratio);
    agree.add_row(
        {a.spec.protocol, util::Table::num(a.spec.n), render(dense_ratio),
         render(batched_ratio),
         util::Table::num(a.seconds, 2), util::Table::num(batched->seconds, 2),
         util::Table::num(
             batched->seconds > 0 ? a.seconds / batched->seconds : 0.0, 1)});
  }
  agree.print("agent-array vs dense agreement (state-change ratio ~ 1)");

  // Emit the machine-readable scaling trajectory before the verdict so a
  // FAIL run still leaves its numbers behind for diagnosis.
  if (!json_path.empty()) {
    bench::Report report("scaling");
    metrics::RunManifest manifest = metrics::RunManifest::collect();
    manifest.spec = smoke ? "exp_scaling --smoke" : "exp_scaling";
    manifest.backend = "mixed";
    manifest.kernel = "per-spec";
    manifest.seed = seed;
    manifest.trials = trials;
    manifest.threads = batch.threads;
    manifest.finished_utc = metrics::utc_timestamp_now();
    manifest.wall_ms = seconds_since(t_program) * 1000.0;
    report.set_manifest(manifest);
    for (const CellResult& r : results) {
      const auto& sr = r.result;
      const double total = sr.interactions.mean * sr.trial_count;
      report.add_cell()
          .set("section", "scaling")
          .set("protocol", r.spec.protocol)
          .set("k", static_cast<std::uint64_t>(r.spec.params.k))
          .set("n", r.spec.n)
          .set("backend", sim::to_string(sr.backend_resolved))
          .set("trials", static_cast<std::uint64_t>(sr.trial_count))
          .set("silent_rate", sr.silent_rate())
          .set("interactions", sr.interactions.mean)
          .set("state_changes", sr.state_changes.mean)
          .set("wall_ms", r.seconds * 1000.0)
          .set("ops_per_sec", r.seconds > 0 ? total / r.seconds : 0.0)
          .set("trial_ms_p50", sr.trial_ms.p50)
          .set("trial_ms_p90", sr.trial_ms.p90);
    }
    report.add_metrics(metrics_registry);
    report.write(json_path);
  }

  // Dense-only invocations (agent_cap below every n) have no overlap cells;
  // the agreement requirement binds only when agent cells ran.
  bool any_agent = false;
  for (const CellResult& r : results) {
    any_agent = any_agent || r.spec.backend == sim::EngineKind::kAgentArray;
  }
  const bool pass =
      all_silent && curves_agree && (!any_agent || agree.rows() > 0);
  return bench::verdict(
      pass,
      pass ? "dense backends reproduce the agent-array stabilization curves "
             "and extend them to larger n"
           : (all_silent ? "cross-backend stabilization curves diverged"
                         : "some runs failed to reach silence"));
}
