// E14 — beyond the paper: restricted interaction topologies.
//
// Definition 1.2's weak fairness requires EVERY pair to interact infinitely
// often; none of the paper's proofs apply when interactions are confined to
// the edges of a graph. This experiment measures what actually happens, and
// the answer is instructive: on sparse graphs Circles can fail to reach
// silence at all — e.g. on a star, two diagonal agents of different colors
// never meet, so the hub's output is re-flipped forever. Weak fairness over
// all pairs is load-bearing, not a proof convenience. We therefore grade
// three levels per topology:
//   edge-silent      — no schedulable interaction changes state (frozen);
//   silent & correct — frozen with unanimous correct outputs;
//   correct at cutoff — unanimous correct outputs when the budget ends
//                       (outputs may still be flipping).
// Complete-graph cells reproduce the paper's model and must be 100%.
// Each topology is a RunSpec with a scheduler_factory building the
// graph-restricted scheduler.
// Second section: the clustered ("dumbbell") topology IS weakly fair — and
// it is exactly urn-lumpable, so the dense urn backend simulates it on
// per-cluster counts at populations the agent array cannot touch. The dense
// cells measure how time-to-silence blows up as the bridge thins, at
// n = 20'000 by default (dense-urn only; extend with --dense_n).
#include <vector>

#include "exp_common.hpp"
#include "pp/graph.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const bool smoke =
      cli.bool_flag("smoke", false, "fast CI subset (smaller dense cells)");
  const auto trials = static_cast<std::uint32_t>(
      cli.int_flag("trials", 8, "trials per cell"));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_flag("seed", 13, "rng seed"));
  const auto budget = static_cast<std::uint64_t>(
      cli.int_flag("budget", 2'000'000, "interaction budget per trial"));
  const auto dense_n = static_cast<std::uint64_t>(cli.int_flag(
      "dense_n", smoke ? 4'000 : 20'000,
      "population size for the dense clustered cells"));
  const auto dense_trials = static_cast<std::uint32_t>(cli.int_flag(
      "dense_trials", smoke ? 3 : 5, "trials per dense clustered cell"));
  const auto batch = bench::batch_options(cli, seed);
  cli.finish();

  bench::print_header("E14",
                      "beyond the paper — Circles on restricted interaction "
                      "topologies (edge-fairness only)");

  const std::uint32_t k = 4;
  const std::uint32_t n = 24;

  const std::vector<pp::InteractionGraph> graphs{
      pp::InteractionGraph::complete(n), pp::InteractionGraph::ring(n),
      pp::InteractionGraph::star(n), pp::InteractionGraph::grid(4, 6),
      pp::InteractionGraph::random_regular(n, 3, seed)};

  std::vector<sim::RunSpec> specs;
  for (const auto& graph : graphs) {
    sim::RunSpec spec;
    spec.protocol = "circles";
    spec.params.k = k;
    spec.n = n;
    spec.trials = trials;
    spec.engine.max_interactions = budget;
    spec.label = graph.name;
    spec.scheduler_factory = [graph](std::uint32_t,
                                     std::uint64_t scheduler_seed) {
      return std::make_unique<pp::GraphScheduler>(
          graph, pp::GraphSchedulerMode::kShuffledSweep, scheduler_seed);
    };
    specs.push_back(std::move(spec));
  }

  const auto results = sim::BatchRunner(batch).run(specs);

  util::Table table({"topology", "edges", "edge-silent", "silent&correct",
                     "correct at cutoff", "mean interactions"});
  bool complete_ok = true;
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    const sim::SpecResult& r = results[g];
    std::uint32_t correct_at_end = 0;
    for (const auto& rec : r.trials) {
      // Unanimous winner outputs at cutoff, silent or not.
      if (rec.workload.winner().has_value() &&
          rec.outcome.consensus == rec.workload.winner()) {
        ++correct_at_end;
      }
    }
    if (graphs[g].name == "complete") complete_ok = r.all_correct();
    table.add_row(
        {graphs[g].name,
         util::Table::num(static_cast<std::uint64_t>(graphs[g].edges.size())),
         util::Table::percent(r.silent_rate(), 0),
         util::Table::percent(r.correct_rate(), 0),
         util::Table::percent(double(correct_at_end) / r.trial_count, 0),
         util::Table::num(r.interactions.mean, 0)});
  }
  table.print("Circles on graphs (k=4, n=24, budget " +
              std::to_string(budget) + ")");

  // --- dense-urn cells: the weakly fair clustered topology at scale -------
  // Unlike the graph-restricted schedulers above, the clustered pattern
  // keeps all-pairs weak fairness (every bridge probability is positive),
  // so Circles must still stabilize correctly — just slower as the bridge
  // thins. The urn backend simulates the exact lumped chain on per-cluster
  // counts, which is what makes these n >= 10^4 cells (and their n >= 10^6
  // cousins in bench_throughput) affordable.
  const std::vector<double> bridges = smoke
                                          ? std::vector<double>{0.01, 0.001}
                                          : std::vector<double>{0.01, 0.001,
                                                                0.0001};
  std::vector<sim::RunSpec> dense_specs;
  {
    sim::RunSpec uniform;
    uniform.protocol = "circles";
    uniform.params.k = 3;
    uniform.n = dense_n;
    uniform.trials = dense_trials;
    uniform.backend = sim::EngineKind::kDenseBatched;
    uniform.seed = sim::mix_seed(seed, 0xD0);
    // A thin bridge multiplies interactions-to-silence by orders of
    // magnitude, but the urn engine's geometric fast-forward makes wall
    // clock scale with state *changes* — an uncapped budget stays cheap.
    uniform.engine.max_interactions = ~std::uint64_t{0};
    uniform.label = "complete (uniform)";
    dense_specs.push_back(uniform);
    for (const double bridge : bridges) {
      sim::RunSpec spec = uniform;
      spec.scheduler = pp::SchedulerKind::kClustered;
      spec.clusters = 2;
      spec.bridge = bridge;
      spec.label = "dumbbell bridge=" + util::Table::num(bridge, 4);
      dense_specs.push_back(std::move(spec));
    }
  }
  const auto dense_results = sim::BatchRunner(batch).run(dense_specs);
  util::Table dense_table({"topology", "backend", "correct", "silent",
                           "mean interactions", "p90 interactions",
                           "slowdown vs complete"});
  bool dense_ok = true;
  const double complete_mean = dense_results[0].interactions.mean;
  for (const sim::SpecResult& r : dense_results) {
    dense_ok = dense_ok && r.all_correct() && r.all_silent();
    dense_table.add_row(
        {r.spec.label, sim::to_string(r.backend_resolved),
         util::Table::percent(r.correct_rate(), 0),
         util::Table::percent(r.silent_rate(), 0),
         util::Table::num(r.interactions.mean, 0),
         util::Table::num(r.interactions.p90, 0),
         util::Table::num(complete_mean > 0
                              ? r.interactions.mean / complete_mean
                              : 0.0,
                          1) +
             "x"});
  }
  dense_table.print("clustered topology on the dense-urn backend (k=3, n=" +
                    std::to_string(dense_n) + ", run to silence)");
  std::printf("\nfinding: restricted topologies do not merely slow Circles "
              "down — they break it.\nSurviving diagonal 'pretenders' in "
              "different regions either freeze a wrong/mixed\nconfiguration "
              "(ring/grid) or re-flip outputs forever (star, 0%% edge-"
              "silent).\nDefinition 1.2's all-pairs weak fairness is "
              "essential to Theorem 3.7, not a\nproof convenience. The "
              "clustered dumbbell sits on the other side of the line:\nweak "
              "fairness holds, so correctness survives every bridge "
              "probability — only the\nclock pays, and the dense-urn "
              "backend is what makes measuring that affordable.\n");
  const bool ok = complete_ok && dense_ok;
  return bench::verdict(
      ok, ok ? "complete-graph cells reproduce the paper's model at 100%; "
               "restricted cells reported above; clustered dense-urn cells "
               "all silent and correct"
             : complete_ok
                   ? "a clustered dense-urn cell failed"
                   : "complete-graph cell failed — engine bug");
}
