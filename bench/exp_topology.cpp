// E14 — beyond the paper: restricted interaction topologies.
//
// Definition 1.2's weak fairness requires EVERY pair to interact infinitely
// often; none of the paper's proofs apply when interactions are confined to
// the edges of a graph. This experiment measures what actually happens, and
// the answer is instructive: on sparse graphs Circles can fail to reach
// silence at all — e.g. on a star, two diagonal agents of different colors
// never meet, so the hub's output is re-flipped forever. Weak fairness over
// all pairs is load-bearing, not a proof convenience. We therefore grade
// three levels per topology:
//   edge-silent      — no schedulable interaction changes state (frozen);
//   silent & correct — frozen with unanimous correct outputs;
//   correct at cutoff — unanimous correct outputs when the budget ends
//                       (outputs may still be flipping).
// Complete-graph cells reproduce the paper's model and must be 100%.
// Each topology is a RunSpec with a scheduler_factory building the
// graph-restricted scheduler.
#include <vector>

#include "exp_common.hpp"
#include "pp/graph.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<std::uint32_t>(
      cli.int_flag("trials", 8, "trials per cell"));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_flag("seed", 13, "rng seed"));
  const auto budget = static_cast<std::uint64_t>(
      cli.int_flag("budget", 2'000'000, "interaction budget per trial"));
  const auto batch = bench::batch_options(cli, seed);
  cli.finish();

  bench::print_header("E14",
                      "beyond the paper — Circles on restricted interaction "
                      "topologies (edge-fairness only)");

  const std::uint32_t k = 4;
  const std::uint32_t n = 24;

  const std::vector<pp::InteractionGraph> graphs{
      pp::InteractionGraph::complete(n), pp::InteractionGraph::ring(n),
      pp::InteractionGraph::star(n), pp::InteractionGraph::grid(4, 6),
      pp::InteractionGraph::random_regular(n, 3, seed)};

  std::vector<sim::RunSpec> specs;
  for (const auto& graph : graphs) {
    sim::RunSpec spec;
    spec.protocol = "circles";
    spec.params.k = k;
    spec.n = n;
    spec.trials = trials;
    spec.engine.max_interactions = budget;
    spec.label = graph.name;
    spec.scheduler_factory = [graph](std::uint32_t,
                                     std::uint64_t scheduler_seed) {
      return std::make_unique<pp::GraphScheduler>(
          graph, pp::GraphSchedulerMode::kShuffledSweep, scheduler_seed);
    };
    specs.push_back(std::move(spec));
  }

  const auto results = sim::BatchRunner(batch).run(specs);

  util::Table table({"topology", "edges", "edge-silent", "silent&correct",
                     "correct at cutoff", "mean interactions"});
  bool complete_ok = true;
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    const sim::SpecResult& r = results[g];
    std::uint32_t correct_at_end = 0;
    for (const auto& rec : r.trials) {
      // Unanimous winner outputs at cutoff, silent or not.
      if (rec.workload.winner().has_value() &&
          rec.outcome.consensus == rec.workload.winner()) {
        ++correct_at_end;
      }
    }
    if (graphs[g].name == "complete") complete_ok = r.all_correct();
    table.add_row(
        {graphs[g].name,
         util::Table::num(static_cast<std::uint64_t>(graphs[g].edges.size())),
         util::Table::percent(r.silent_rate(), 0),
         util::Table::percent(r.correct_rate(), 0),
         util::Table::percent(double(correct_at_end) / r.trial_count, 0),
         util::Table::num(r.interactions.mean, 0)});
  }
  table.print("Circles on graphs (k=4, n=24, budget " +
              std::to_string(budget) + ")");
  std::printf("\nfinding: restricted topologies do not merely slow Circles "
              "down — they break it.\nSurviving diagonal 'pretenders' in "
              "different regions either freeze a wrong/mixed\nconfiguration "
              "(ring/grid) or re-flip outputs forever (star, 0%% edge-"
              "silent).\nDefinition 1.2's all-pairs weak fairness is "
              "essential to Theorem 3.7, not a\nproof convenience.\n");
  return bench::verdict(complete_ok,
                        complete_ok
                            ? "complete-graph cells reproduce the paper's "
                              "model at 100%; restricted cells reported above"
                            : "complete-graph cell failed — engine bug");
}
