// E14 — beyond the paper: restricted interaction topologies.
//
// Definition 1.2's weak fairness requires EVERY pair to interact infinitely
// often; none of the paper's proofs apply when interactions are confined to
// the edges of a graph. This experiment measures what actually happens, and
// the answer is instructive: on sparse graphs Circles can fail to reach
// silence at all — e.g. on a star, two diagonal agents of different colors
// never meet, so the hub's output is re-flipped forever. Weak fairness over
// all pairs is load-bearing, not a proof convenience. We therefore grade
// three levels per topology:
//   edge-silent      — no schedulable interaction changes state (frozen);
//   silent & correct — frozen with unanimous correct outputs;
//   correct at cutoff — unanimous correct outputs when the budget ends
//                       (outputs may still be flipping).
// Complete-graph cells reproduce the paper's model and must be 100%.
#include <vector>

#include "analysis/workload.hpp"
#include "core/circles_protocol.hpp"
#include "exp_common.hpp"
#include "pp/engine.hpp"
#include "pp/graph.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<int>(cli.int_flag("trials", 8, "trials per cell"));
  const auto seed = static_cast<std::uint64_t>(cli.int_flag("seed", 13, "rng seed"));
  const auto budget = static_cast<std::uint64_t>(
      cli.int_flag("budget", 2'000'000, "interaction budget per trial"));
  cli.finish();

  bench::print_header("E14",
                      "beyond the paper — Circles on restricted interaction "
                      "topologies (edge-fairness only)");

  util::Rng rng(seed);
  const std::uint32_t k = 4;
  const std::uint32_t n = 24;
  core::CirclesProtocol protocol(k);

  util::Table table({"topology", "edges", "edge-silent", "silent&correct",
                     "correct at cutoff", "mean interactions"});
  bool complete_ok = true;

  const std::vector<pp::InteractionGraph> graphs{
      pp::InteractionGraph::complete(n), pp::InteractionGraph::ring(n),
      pp::InteractionGraph::star(n), pp::InteractionGraph::grid(4, 6),
      pp::InteractionGraph::random_regular(n, 3, seed)};

  for (const auto& graph : graphs) {
    int silent = 0, silent_correct = 0, correct_at_end = 0;
    std::vector<double> interactions;
    for (int t = 0; t < trials; ++t) {
      const analysis::Workload w = analysis::random_unique_winner(rng, n, k);
      util::Rng trial_rng(rng());
      const auto colors = w.agent_colors(trial_rng);
      pp::Population population(protocol, colors);
      pp::GraphScheduler scheduler(graph,
                                   pp::GraphSchedulerMode::kShuffledSweep,
                                   trial_rng());
      pp::EngineOptions options;
      options.max_interactions = budget;
      pp::Engine engine(options);
      const auto result = engine.run(protocol, population, scheduler);
      const bool consensus =
          population.output_consensus(protocol, *w.winner());
      silent += result.silent ? 1 : 0;
      silent_correct += (result.silent && consensus) ? 1 : 0;
      correct_at_end += consensus ? 1 : 0;
      interactions.push_back(static_cast<double>(result.interactions));
    }
    if (graph.name == "complete") complete_ok = silent_correct == trials;
    const auto s = util::summarize(interactions);
    table.add_row({graph.name,
                   util::Table::num(static_cast<std::uint64_t>(graph.edges.size())),
                   util::Table::percent(double(silent) / trials, 0),
                   util::Table::percent(double(silent_correct) / trials, 0),
                   util::Table::percent(double(correct_at_end) / trials, 0),
                   util::Table::num(s.mean, 0)});
  }
  table.print("Circles on graphs (k=4, n=24, budget " +
              std::to_string(budget) + ")");
  std::printf("\nfinding: restricted topologies do not merely slow Circles "
              "down — they break it.\nSurviving diagonal 'pretenders' in "
              "different regions either freeze a wrong/mixed\nconfiguration "
              "(ring/grid) or re-flip outputs forever (star, 0%% edge-"
              "silent).\nDefinition 1.2's all-pairs weak fairness is "
              "essential to Theorem 3.7, not a\nproof convenience.\n");
  return bench::verdict(complete_ok,
                        complete_ok
                            ? "complete-graph cells reproduce the paper's "
                              "model at 100%; restricted cells reported above"
                            : "complete-graph cell failed — engine bug");
}
