// E12 — why always-correct matters: the 3-state approximate majority
// baseline (Angluin–Aspnes–Eisenstat) converges fast but decides the
// MINORITY with real probability at small margins; Circles never errs on
// the same instances. Error rate vs margin, k = 2. Both protocols share
// per-margin RunSpec seeds, so they face identical schedule streams.
#include <vector>

#include "exp_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<std::uint32_t>(
      cli.int_flag("trials", 200, "trials per margin"));
  const auto n = static_cast<std::uint64_t>(
      cli.int_flag("n", 100, "population size"));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_flag("seed", 11, "rng seed"));
  const auto batch = bench::batch_options(cli, seed);
  cli.finish();

  bench::print_header("E12",
                      "always-correct vs w.h.p. — 3-state approximate "
                      "majority error rate vs margin (k=2, n=" +
                          std::to_string(n) + ")");

  const std::vector<std::uint64_t> margins{2, 6, 10, 20, 40};
  std::vector<sim::RunSpec> specs;
  for (const std::uint64_t margin : margins) {
    const std::vector<std::uint64_t> counts{(n + margin) / 2,
                                            n - (n + margin) / 2};
    for (const char* protocol :
         {"approx_majority_3state", "circles"}) {
      sim::RunSpec spec;
      spec.protocol = protocol;
      spec.params.k = 2;
      spec.workload = sim::WorkloadSpec::explicit_counts(counts);
      spec.trials = trials;
      spec.seed = sim::mix_seed(seed, margin);  // shared per margin
      specs.push_back(std::move(spec));
    }
  }

  const auto results = sim::BatchRunner(batch).run(specs);

  util::Table table({"margin", "approx errors", "approx error rate",
                     "approx mean interactions", "circles errors",
                     "circles mean interactions"});
  bool circles_perfect = true;
  bool approx_errs_somewhere = false;
  for (std::size_t i = 0; i < margins.size(); ++i) {
    const sim::SpecResult& approx = results[2 * i];
    const sim::SpecResult& circles = results[2 * i + 1];
    const std::uint32_t approx_errors = approx.trial_count - approx.correct;
    const std::uint32_t circles_errors = circles.trial_count - circles.correct;
    circles_perfect = circles_perfect && circles_errors == 0;
    approx_errs_somewhere = approx_errs_somewhere || approx_errors > 0;
    table.add_row({util::Table::num(margins[i]),
                   util::Table::num(std::uint64_t{approx_errors}),
                   util::Table::percent(
                       double(approx_errors) / approx.trial_count, 1),
                   util::Table::num(approx.interactions.mean, 0),
                   util::Table::num(std::uint64_t{circles_errors}),
                   util::Table::num(circles.interactions.mean, 0)});
  }
  table.print("error rate vs margin (expected: approx errs at small margins, "
              "decays with margin; Circles: zero errors)");

  const bool pass = circles_perfect && approx_errs_somewhere;
  return bench::verdict(pass,
                        pass ? "Circles: 0 errors everywhere; approximate "
                               "majority pays for its speed at small margins"
                             : "unexpected outcome pattern");
}
