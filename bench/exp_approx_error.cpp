// E12 — why always-correct matters: the 3-state approximate majority
// baseline (Angluin–Aspnes–Eisenstat) converges fast but decides the
// MINORITY with real probability at small margins; Circles never errs on
// the same instances. Error rate vs margin, k = 2.
#include "analysis/trial.hpp"
#include "analysis/workload.hpp"
#include "baselines/approx_majority_3state.hpp"
#include "core/circles_protocol.hpp"
#include "exp_common.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<int>(cli.int_flag("trials", 200, "trials per margin"));
  const auto n = static_cast<std::uint64_t>(cli.int_flag("n", 100, "population size"));
  const auto seed = static_cast<std::uint64_t>(cli.int_flag("seed", 11, "rng seed"));
  cli.finish();

  bench::print_header("E12",
                      "always-correct vs w.h.p. — 3-state approximate "
                      "majority error rate vs margin (k=2, n=" +
                          std::to_string(n) + ")");

  util::Rng rng(seed);
  baselines::ApproxMajority3State approx;
  core::CirclesProtocol circles(2);

  util::Table table({"margin", "approx errors", "approx error rate",
                     "approx mean interactions", "circles errors",
                     "circles mean interactions"});
  bool circles_perfect = true;
  bool approx_errs_somewhere = false;

  for (const std::uint64_t margin : {2ull, 6ull, 10ull, 20ull, 40ull}) {
    analysis::Workload w;
    w.counts = {(n + margin) / 2, n - (n + margin) / 2};
    int approx_errors = 0, circles_errors = 0;
    double approx_inter = 0, circles_inter = 0;
    for (int t = 0; t < trials; ++t) {
      analysis::TrialOptions options;
      options.seed = rng();
      const auto a = analysis::run_trial(approx, w, options);
      if (!a.correct) ++approx_errors;
      approx_inter += static_cast<double>(a.run.interactions);
      const auto c = analysis::run_trial(circles, w, options);
      if (!c.correct) ++circles_errors;
      circles_inter += static_cast<double>(c.run.interactions);
    }
    circles_perfect = circles_perfect && circles_errors == 0;
    approx_errs_somewhere = approx_errs_somewhere || approx_errors > 0;
    table.add_row({util::Table::num(margin),
                   util::Table::num(std::int64_t{approx_errors}),
                   util::Table::percent(double(approx_errors) / trials, 1),
                   util::Table::num(approx_inter / trials, 0),
                   util::Table::num(std::int64_t{circles_errors}),
                   util::Table::num(circles_inter / trials, 0)});
  }
  table.print("error rate vs margin (expected: approx errs at small margins, "
              "decays with margin; Circles: zero errors)");

  const bool pass = circles_perfect && approx_errs_somewhere;
  return bench::verdict(pass,
                        pass ? "Circles: 0 errors everywhere; approximate "
                               "majority pays for its speed at small margins"
                             : "unexpected outcome pattern");
}
