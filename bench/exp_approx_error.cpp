// E12 — approximation error, two claims in one binary.
//
// Section 1 (why always-correct matters): the 3-state approximate majority
// baseline (Angluin–Aspnes–Eisenstat) converges fast but decides the
// MINORITY with real probability at small margins; Circles never errs on
// the same instances. Error rate vs margin, k = 2. Both protocols share
// per-margin RunSpec seeds, so they face identical schedule streams.
//
// Section 2 (why the fluid tier is trustworthy): the mean-field ODE is the
// n -> infinity limit of the count chain, so its trajectory should track the
// dense_batched median within O(1/sqrt(n)). For a grid of n the section runs
// the same circles instance on both backends with an opinion-counts trace,
// interpolates the fluid curve onto the dense envelope grid, and reports the
// worst per-agent gap; the verdict line asserts the gap shrinks with n and
// lands under a fixed bound at the largest n (EXPERIMENTS.md quotes it, CI
// greps it).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "exp_common.hpp"
#include "util/table.hpp"

namespace {

using circles::obs::TraceTable;

/// Piecewise-linear lookup of a trace column at x (clamped to the grid
/// ends). The fluid trajectory is a smooth curve sampled on a log grid;
/// linear interpolation keeps the comparison from charging the sampling
/// resolution to the integrator.
double interp(const TraceTable& table, std::size_t x_col, std::size_t v_col,
              double x) {
  const std::size_t rows = table.num_rows();
  if (x <= table.at(0, x_col)) return table.at(0, v_col);
  for (std::size_t row = 1; row < rows; ++row) {
    const double x1 = table.at(row, x_col);
    if (x1 < x) continue;
    const double x0 = table.at(row - 1, x_col);
    const double v0 = table.at(row - 1, v_col);
    const double v1 = table.at(row, v_col);
    if (x1 <= x0) return v1;
    return v0 + (v1 - v0) * (x - x0) / (x1 - x0);
  }
  return table.at(rows - 1, v_col);
}

/// Worst absolute per-agent gap between the fluid trajectory and the dense
/// median envelope over every opinion column and every dense grid point.
double worst_opinion_gap(const TraceTable& fluid, const TraceTable& dense,
                         std::uint64_t n, std::uint32_t k) {
  const std::size_t fluid_x = fluid.column_index("interactions");
  const std::size_t dense_x = dense.column_index("interactions");
  double worst = 0.0;
  for (std::uint32_t s = 0; s < k; ++s) {
    const std::string column = "out_" + std::to_string(s) + "_p50";
    const std::size_t fluid_v = fluid.column_index(column);
    const std::size_t dense_v = dense.column_index(column);
    for (std::size_t row = 0; row < dense.num_rows(); ++row) {
      const double x = dense.at(row, dense_x);
      const double gap =
          std::abs(interp(fluid, fluid_x, fluid_v, x) - dense.at(row, dense_v));
      worst = std::max(worst, gap / static_cast<double>(n));
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<std::uint32_t>(
      cli.int_flag("trials", 200, "trials per margin"));
  const auto n = static_cast<std::uint64_t>(
      cli.int_flag("n", 100, "population size"));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_flag("seed", 11, "rng seed"));
  const bool smoke = cli.bool_flag(
      "smoke", false, "CI preset: trim the fluid-vs-dense grid to seconds");
  const auto batch = bench::batch_options(cli, seed);
  cli.finish();

  bench::print_header("E12",
                      "always-correct vs w.h.p. — 3-state approximate "
                      "majority error rate vs margin (k=2, n=" +
                          std::to_string(n) + ")");

  const std::vector<std::uint64_t> margins{2, 6, 10, 20, 40};
  std::vector<sim::RunSpec> specs;
  for (const std::uint64_t margin : margins) {
    const std::vector<std::uint64_t> counts{(n + margin) / 2,
                                            n - (n + margin) / 2};
    for (const char* protocol :
         {"approx_majority_3state", "circles"}) {
      sim::RunSpec spec;
      spec.protocol = protocol;
      spec.params.k = 2;
      spec.workload = sim::WorkloadSpec::explicit_counts(counts);
      spec.trials = trials;
      spec.seed = sim::mix_seed(seed, margin);  // shared per margin
      specs.push_back(std::move(spec));
    }
  }

  const auto results = sim::BatchRunner(batch).run(specs);

  util::Table table({"margin", "approx errors", "approx error rate",
                     "approx mean interactions", "circles errors",
                     "circles mean interactions"});
  bool circles_perfect = true;
  bool approx_errs_somewhere = false;
  for (std::size_t i = 0; i < margins.size(); ++i) {
    const sim::SpecResult& approx = results[2 * i];
    const sim::SpecResult& circles = results[2 * i + 1];
    const std::uint32_t approx_errors = approx.trial_count - approx.correct;
    const std::uint32_t circles_errors = circles.trial_count - circles.correct;
    circles_perfect = circles_perfect && circles_errors == 0;
    approx_errs_somewhere = approx_errs_somewhere || approx_errors > 0;
    table.add_row({util::Table::num(margins[i]),
                   util::Table::num(std::uint64_t{approx_errors}),
                   util::Table::percent(
                       double(approx_errors) / approx.trial_count, 1),
                   util::Table::num(approx.interactions.mean, 0),
                   util::Table::num(std::uint64_t{circles_errors}),
                   util::Table::num(circles.interactions.mean, 0)});
  }
  table.print("error rate vs margin (expected: approx errs at small margins, "
              "decays with margin; Circles: zero errors)");
  bench::print_kernel_stats(results);

  const bool margins_pass = circles_perfect && approx_errs_somewhere;

  // --- Section 2: fluid-vs-dense_batched error vs n -------------------------
  //
  // Same circles k=3 instance per n (well-separated counts n/2 : 3n/10 :
  // rest — a near-tied sub-race would park the fluctuation-free ODE, see
  // src/fluid/fluid_engine.hpp), opinion-counts trace on a shared log grid.
  // The dense spec runs a handful of seeded trials and contributes its p50
  // envelope; the fluid spec is deterministic, one trial.
  std::vector<std::uint64_t> fluid_ns{10'000, 100'000, 1'000'000};
  std::uint32_t dense_trials = 8;
  if (smoke) {
    fluid_ns = {10'000, 100'000};
    dense_trials = 4;
  }

  std::vector<sim::RunSpec> fluid_specs;
  for (const std::uint64_t fn : fluid_ns) {
    const std::vector<std::uint64_t> counts{fn / 2, 3 * fn / 10,
                                            fn - fn / 2 - 3 * fn / 10};
    for (const sim::EngineKind backend :
         {sim::EngineKind::kDenseBatched, sim::EngineKind::kFluid}) {
      sim::RunSpec spec;
      spec.protocol = "circles";
      spec.params.k = 3;
      spec.workload = sim::WorkloadSpec::explicit_counts(counts);
      spec.backend = backend;
      spec.trials = backend == sim::EngineKind::kFluid ? 1 : dense_trials;
      spec.seed = sim::mix_seed(seed, fn);  // shared per n
      spec.probes.push_back(obs::ProbeSpec{
          .kind = obs::ProbeSpec::Kind::kCounts,
          .grid = obs::GridSpec{.spacing = obs::GridSpec::Spacing::kLog,
                                .points = 512}});
      fluid_specs.push_back(std::move(spec));
    }
  }
  const auto fluid_results = sim::BatchRunner(batch).run(fluid_specs);

  util::Table fluid_table({"n", "max |fluid - dense p50| / n",
                           "time gap", "dense mean interactions",
                           "fluid interactions"});
  std::vector<double> gaps;
  bool fluid_all_correct = true;
  for (std::size_t i = 0; i < fluid_ns.size(); ++i) {
    const sim::SpecResult& dense = fluid_results[2 * i];
    const sim::SpecResult& fluid = fluid_results[2 * i + 1];
    fluid_all_correct = fluid_all_correct &&
                        dense.correct == dense.trial_count &&
                        fluid.correct == fluid.trial_count;
    const double gap = worst_opinion_gap(fluid.trace_envelopes.at(0),
                                         dense.trace_envelopes.at(0),
                                         fluid_ns[i], 3);
    gaps.push_back(gap);
    const double time_gap =
        std::abs(fluid.interactions.mean - dense.interactions.mean) /
        dense.interactions.mean;
    fluid_table.add_row(
        {util::Table::num(fluid_ns[i]), util::Table::num(gap, 4),
         util::Table::percent(time_gap, 2),
         util::Table::num(dense.interactions.mean, 0),
         util::Table::num(fluid.interactions.mean, 0)});
  }
  fluid_table.print(
      "fluid-vs-dense_batched trajectory gap vs n (expected: both gaps "
      "shrink with n — the O(1/sqrt(n)) finite-size error — until the "
      "trajectory gap floors at the trace-grid resolution)");

  // The bound EXPERIMENTS.md and CI quote: at the largest n of the grid the
  // worst per-agent opinion gap stays under 2% of the population, and the
  // gap at the largest n improves on the smallest.
  const double bound = 0.02;
  const bool fluid_pass = fluid_all_correct && gaps.back() <= bound &&
                          gaps.back() < gaps.front();
  std::printf("\nfluid-vs-dense agreement: %s (max per-agent gap %.4f at "
              "n=%llu, bound %.2f)\n",
              fluid_pass ? "PASS" : "FAIL", gaps.back(),
              static_cast<unsigned long long>(fluid_ns.back()), bound);

  const bool pass = margins_pass && fluid_pass;
  return bench::verdict(
      pass, pass ? "Circles: 0 errors everywhere; approximate majority pays "
                   "for its speed at small margins; fluid tier tracks the "
                   "dense median within the stated bound"
                 : margins_pass ? "fluid-vs-dense gap outside the bound"
                                : "unexpected outcome pattern");
}
