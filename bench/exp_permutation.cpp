// E13 — ablation on the energy design: Circles' weight function is the
// cyclic numeric distance between colors, so relabeling the colors (same
// count multiset, permuted ids) changes the energy landscape and thus the
// work performed — but never the correctness or the (relabeled) winner.
// This probes how load-bearing the "numeric representation" assumption is,
// which is exactly what §4's unordered extension must replace. Each
// relabeling is one explicit-counts RunSpec sharing the same pinned seed,
// so every relabeling faces the identical schedule stream.
#include <vector>

#include "exp_common.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto permutations = static_cast<int>(
      cli.int_flag("permutations", 20, "relabelings per workload"));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_flag("seed", 12, "rng seed"));
  const auto batch = bench::batch_options(cli, seed);
  cli.finish();

  bench::print_header("E13",
                      "ablation — color relabeling changes the work (weights "
                      "are numeric distances) but never the answer");

  util::Rng rng(seed);
  util::Table table({"k", "n", "relabelings", "all correct",
                     "min exchanges", "mean exchanges", "max exchanges",
                     "max/min"});
  bool all_correct = true;
  bool spread_observed = false;

  for (const std::uint32_t k : {6u, 12u}) {
    const std::uint64_t n = 60;
    const analysis::Workload base = analysis::zipf(rng, n, k, 1.3);

    std::vector<sim::RunSpec> specs;
    for (int p = 0; p < permutations; ++p) {
      const analysis::Workload workload =
          p == 0 ? base : analysis::permute_colors(rng, base);
      sim::RunSpec spec;
      spec.protocol = "circles";
      spec.params.k = k;
      spec.workload = sim::WorkloadSpec::explicit_counts(workload.counts);
      spec.trials = 1;
      spec.seed = 777;  // same schedule stream for every relabeling
      spec.circles_stats = true;
      specs.push_back(std::move(spec));
    }
    const auto results = sim::BatchRunner(batch).run(specs);

    std::vector<double> exchanges;
    int correct = 0;
    for (const sim::SpecResult& r : results) {
      correct += r.correct;
      exchanges.push_back(r.ket_exchanges.mean);
    }
    all_correct = all_correct && correct == permutations;
    const auto s = util::summarize(exchanges);
    if (s.max > s.min) spread_observed = true;
    table.add_row(
        {util::Table::num(std::uint64_t{k}), util::Table::num(n),
         util::Table::num(std::int64_t{permutations}),
         util::Table::percent(double(correct) / permutations, 0),
         util::Table::num(s.min, 0), util::Table::num(s.mean, 0),
         util::Table::num(s.max, 0),
         util::Table::num(s.min > 0 ? s.max / s.min : 0.0, 2)});
  }
  table.print("exchange counts across color relabelings (same counts, same "
              "schedule stream)");
  const bool pass = all_correct && spread_observed;
  return bench::verdict(pass,
                        pass ? "correctness is relabeling-invariant; the "
                               "amount of work is not — the numeric color "
                               "representation is load-bearing for cost only"
                             : "unexpected pattern");
}
