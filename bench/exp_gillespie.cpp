// E15 — chemical kinetics: Circles under continuous-time (Gillespie)
// semantics. The embedded jump chain is the uniform scheduler, so outcomes
// are identical; the chemical clock adds the physical time axis the CRN
// framing implies. Expected shape: stabilization time in chemical units
// tracks interactions/n (the PP literature's "parallel time"), i.e. the
// protocol converges in O(polylog)-ish parallel time on random schedules
// while total interactions grow ~n·polylog(n). Chemical-time runs are
// RunSpecs with chemical_time set.
#include <vector>

#include "exp_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<std::uint32_t>(
      cli.int_flag("trials", 5, "trials per n"));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_flag("seed", 14, "rng seed"));
  const auto batch = bench::batch_options(cli, seed);
  cli.finish();

  bench::print_header("E15",
                      "chemical kinetics — Circles in continuous time "
                      "(Gillespie); parallel vs chemical clocks");

  const std::uint32_t k = 5;
  std::vector<sim::RunSpec> specs;
  for (const std::uint64_t n : {16ull, 32ull, 64ull, 128ull, 256ull, 512ull}) {
    sim::RunSpec spec;
    spec.protocol = "circles";
    spec.params.k = k;
    spec.n = n;
    spec.trials = trials;
    spec.chemical_time = true;
    specs.push_back(std::move(spec));
  }

  const auto results = sim::BatchRunner(batch).run(specs);

  util::Table table({"n", "mean interactions", "parallel time (inter/n)",
                     "chemical stabilization time", "chemical convergence time",
                     "chem/parallel"});
  bool all_silent = true;
  std::vector<double> xs, ys;
  for (const sim::SpecResult& r : results) {
    all_silent = all_silent && r.all_silent();
    const double parallel =
        r.interactions.mean / static_cast<double>(r.spec.n);
    xs.push_back(static_cast<double>(r.spec.n));
    ys.push_back(r.stabilization_time.mean > 0 ? r.stabilization_time.mean
                                               : 0.01);
    table.add_row({util::Table::num(r.spec.n),
                   util::Table::num(r.interactions.mean, 0),
                   util::Table::num(parallel, 2),
                   util::Table::num(r.stabilization_time.mean, 2),
                   util::Table::num(r.convergence_time.mean, 2),
                   util::Table::num(
                       parallel > 0 ? r.stabilization_time.mean / parallel : 0,
                       2)});
  }
  table.print("continuous-time convergence (k=5, uniform kinetics)");
  std::printf("\nlog-log slope of chemical stabilization time vs n: %.2f\n",
              util::loglog_slope(xs, ys));
  return bench::verdict(all_silent,
                        all_silent
                            ? "chemical and discrete semantics agree; the "
                              "chemical clock tracks interactions/n"
                            : "a Gillespie run failed to stabilize");
}
