// E15 — chemical kinetics: Circles under continuous-time (Gillespie)
// semantics. The embedded jump chain is the uniform scheduler, so outcomes
// are identical; the chemical clock adds the physical time axis the CRN
// framing implies. Expected shape: stabilization time in chemical units
// tracks interactions/n (the PP literature's "parallel time"), i.e. the
// protocol converges in O(polylog)-ish parallel time on random schedules
// while total interactions grow ~n·polylog(n).
#include <vector>

#include "analysis/workload.hpp"
#include "core/circles_protocol.hpp"
#include "crn/gillespie.hpp"
#include "exp_common.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<int>(cli.int_flag("trials", 5, "trials per n"));
  const auto seed = static_cast<std::uint64_t>(cli.int_flag("seed", 14, "rng seed"));
  cli.finish();

  bench::print_header("E15",
                      "chemical kinetics — Circles in continuous time "
                      "(Gillespie); parallel vs chemical clocks");

  util::Rng rng(seed);
  const std::uint32_t k = 5;
  core::CirclesProtocol protocol(k);

  util::Table table({"n", "mean interactions", "parallel time (inter/n)",
                     "chemical stabilization time", "chemical convergence time",
                     "chem/parallel"});
  bool all_silent = true;
  std::vector<double> xs, ys;

  for (const std::uint64_t n : {16ull, 32ull, 64ull, 128ull, 256ull, 512ull}) {
    std::vector<double> inter, chem, conv;
    for (int t = 0; t < trials; ++t) {
      const analysis::Workload w = analysis::random_unique_winner(rng, n, k);
      util::Rng trial_rng(rng());
      const auto colors = w.agent_colors(trial_rng);
      const auto result = crn::run_gillespie(protocol, colors, trial_rng());
      all_silent = all_silent && result.run.silent;
      inter.push_back(static_cast<double>(result.run.interactions));
      chem.push_back(result.stabilization_time);
      conv.push_back(result.convergence_time);
    }
    const auto si = util::summarize(inter);
    const auto sc = util::summarize(chem);
    const auto sv = util::summarize(conv);
    const double parallel = si.mean / static_cast<double>(n);
    xs.push_back(static_cast<double>(n));
    ys.push_back(sc.mean > 0 ? sc.mean : 0.01);
    table.add_row({util::Table::num(n), util::Table::num(si.mean, 0),
                   util::Table::num(parallel, 2),
                   util::Table::num(sc.mean, 2), util::Table::num(sv.mean, 2),
                   util::Table::num(parallel > 0 ? sc.mean / parallel : 0, 2)});
  }
  table.print("continuous-time convergence (k=5, uniform kinetics)");
  std::printf("\nlog-log slope of chemical stabilization time vs n: %.2f\n",
              util::loglog_slope(xs, ys));
  return bench::verdict(all_silent,
                        all_silent
                            ? "chemical and discrete semantics agree; the "
                              "chemical clock tracks interactions/n"
                            : "a Gillespie run failed to stabilize");
}
