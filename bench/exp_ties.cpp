// E8 — paper §4 tie handling: the TieReport retractor layer must report
// ties exactly (all agents output TIE iff the input is tied) while staying
// correct and silent on unique-winner inputs — including margin-1 inputs,
// the closest non-ties. The pairwise prototypes cross-check break/share
// semantics at small k.
#include "analysis/trial.hpp"
#include "analysis/workload.hpp"
#include "exp_common.hpp"
#include "extensions/tie_aware_pairwise.hpp"
#include "extensions/tie_report.hpp"
#include "pp/engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<int>(cli.int_flag("trials", 8, "trials per cell"));
  const auto seed = static_cast<std::uint64_t>(cli.int_flag("seed", 8, "rng seed"));
  cli.finish();

  bench::print_header("E8",
                      "paper §4 — tie report / break / share semantics, "
                      "exact on ties and near-ties");

  util::Rng rng(seed);
  bool all_ok = true;

  {
    util::Table table({"k", "workload", "trials", "correct", "silent"});
    for (const std::uint32_t k : {3u, 5u, 8u}) {
      ext::TieReportProtocol protocol(k);
      for (const char* shape :
           {"unique winner", "margin-1", "2-way tie", "k-way tie"}) {
        int correct = 0, silent = 0;
        for (int t = 0; t < trials; ++t) {
          analysis::Workload w;
          const std::string s = shape;
          if (s == "unique winner") {
            w = analysis::random_unique_winner(rng, 24, k);
          } else if (s == "margin-1") {
            w = analysis::close_margin(rng, 25, k);
          } else if (s == "2-way tie") {
            w = analysis::exact_tie(rng, 24, k, 2);
          } else {
            // A k-way tie leaves no spare colors, so n must divide evenly.
            w = analysis::exact_tie(rng, (24 / k) * k, k, k);
          }
          const auto winner = w.winner();
          const pp::OutputSymbol expected =
              winner.has_value() ? *winner : protocol.tie_symbol();
          analysis::TrialOptions options;
          options.seed = rng();
          const auto outcome =
              analysis::run_trial(protocol, w, options, {}, expected);
          correct += outcome.correct ? 1 : 0;
          silent += outcome.run.silent ? 1 : 0;
        }
        all_ok = all_ok && correct == trials;
        table.add_row({util::Table::num(std::uint64_t{k}), shape,
                       util::Table::num(std::int64_t{trials}),
                       util::Table::percent(double(correct) / trials, 0),
                       util::Table::percent(double(silent) / trials, 0)});
      }
    }
    table.print("TieReport (retractor layer, 2k^2(k+1) states)");
  }

  {
    util::Table table({"semantics", "k", "workload", "trials",
                       "all agents correct"});
    for (const auto semantics : {ext::TieSemantics::kReport,
                                 ext::TieSemantics::kBreak,
                                 ext::TieSemantics::kShare}) {
      for (const std::uint32_t k : {3u, 4u}) {
        ext::TieAwarePairwise protocol(k, semantics);
        for (const bool tied : {false, true}) {
          int ok = 0;
          for (int t = 0; t < trials; ++t) {
            const analysis::Workload w =
                tied ? analysis::exact_tie(rng, 16, k, 2)
                     : analysis::random_unique_winner(rng, 16, k);
            // Grade per agent (share semantics differ by input color).
            util::Rng trial_rng(rng());
            const auto colors = w.agent_colors(trial_rng);
            pp::Population population(protocol, colors);
            auto scheduler = pp::make_scheduler(
                pp::SchedulerKind::kUniformRandom,
                static_cast<std::uint32_t>(colors.size()), trial_rng());
            pp::Engine engine;
            const auto result = engine.run(protocol, population, *scheduler);
            std::uint64_t top = 0;
            for (const auto c : w.counts) top = std::max(top, c);
            bool agents_ok = result.silent;
            for (std::uint32_t i = 0; i < population.size() && agents_ok;
                 ++i) {
              std::vector<pp::ColorId> winners;
              for (pp::ColorId c = 0; c < k; ++c) {
                if (w.counts[c] == top) winners.push_back(c);
              }
              pp::OutputSymbol expected = winners[0];
              if (semantics == ext::TieSemantics::kReport &&
                  winners.size() > 1) {
                expected = protocol.tie_symbol();
              } else if (semantics == ext::TieSemantics::kShare) {
                for (const pp::ColorId c : winners) {
                  if (c == colors[i]) expected = c;
                }
              }
              agents_ok = protocol.output(population.state(i)) == expected;
            }
            ok += agents_ok ? 1 : 0;
          }
          all_ok = all_ok && ok == trials;
          table.add_row({to_string(semantics),
                         util::Table::num(std::uint64_t{k}),
                         tied ? "2-way tie" : "unique winner",
                         util::Table::num(std::int64_t{trials}),
                         util::Table::percent(double(ok) / trials, 0)});
        }
      }
    }
    table.print("pairwise prototypes (report/break/share)");
  }

  return bench::verdict(all_ok,
                        all_ok ? "all tie semantics exact on every instance"
                               : "a tie semantics failed");
}
