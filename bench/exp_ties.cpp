// E8 — paper §4 tie handling: the TieReport retractor layer must report
// ties exactly (all agents output TIE iff the input is tied) while staying
// correct and silent on unique-winner inputs — including margin-1 inputs,
// the closest non-ties. The pairwise prototypes cross-check break/share
// semantics at small k, graded per agent through a RunSpec grader.
#include <algorithm>
#include <vector>

#include "exp_common.hpp"
#include "extensions/tie_aware_pairwise.hpp"
#include "util/table.hpp"

namespace {

using namespace circles;

/// Per-agent grading for the pairwise prototypes: each agent's expected
/// output depends on the semantics and (for share) its own input color.
bool grade_tie_semantics(const pp::Protocol& protocol,
                         const analysis::Workload& workload,
                         std::span<const pp::ColorId> colors,
                         const pp::Population& population,
                         const pp::RunResult& run) {
  const auto* pairwise = dynamic_cast<const ext::TieAwarePairwise*>(&protocol);
  if (pairwise == nullptr || !run.silent) return false;
  const std::uint32_t k = pairwise->k();
  std::uint64_t top = 0;
  for (const auto c : workload.counts) top = std::max(top, c);
  std::vector<pp::ColorId> winners;
  for (pp::ColorId c = 0; c < k; ++c) {
    if (workload.counts[c] == top) winners.push_back(c);
  }
  for (std::uint32_t i = 0; i < population.size(); ++i) {
    pp::OutputSymbol expected = winners[0];
    if (pairwise->semantics() == ext::TieSemantics::kReport &&
        winners.size() > 1) {
      expected = pairwise->tie_symbol();
    } else if (pairwise->semantics() == ext::TieSemantics::kShare) {
      for (const pp::ColorId c : winners) {
        if (c == colors[i]) expected = c;
      }
    }
    if (protocol.output(population.state(i)) != expected) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto trials = static_cast<std::uint32_t>(
      cli.int_flag("trials", 8, "trials per cell"));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_flag("seed", 8, "rng seed"));
  const auto batch = bench::batch_options(cli, seed);
  cli.finish();

  bench::print_header("E8",
                      "paper §4 — tie report / break / share semantics, "
                      "exact on ties and near-ties");

  bool all_ok = true;

  {
    struct Shape {
      const char* label;
      sim::WorkloadSpec workload;
      std::uint64_t n;
    };
    std::vector<sim::RunSpec> specs;
    for (const std::uint32_t k : {3u, 5u, 8u}) {
      const std::vector<Shape> shapes{
          {"unique winner", sim::WorkloadSpec::unique_winner(), 24},
          {"margin-1", sim::WorkloadSpec::close_margin(), 25},
          {"2-way tie", sim::WorkloadSpec::exact_tie(2), 24},
          // A k-way tie leaves no spare colors, so n must divide evenly.
          {"k-way tie", sim::WorkloadSpec::exact_tie(k), (24 / k) * k},
      };
      for (const Shape& shape : shapes) {
        sim::RunSpec spec;
        spec.protocol = "tie_report";
        spec.params.k = k;
        spec.n = shape.n;
        spec.workload = shape.workload;
        spec.grading = sim::Grading::kTieAware;
        spec.trials = trials;
        spec.label = shape.label;
        specs.push_back(std::move(spec));
      }
    }
    const auto results = sim::BatchRunner(batch).run(specs);

    util::Table table({"k", "workload", "trials", "correct", "silent"});
    for (const sim::SpecResult& r : results) {
      all_ok = all_ok && r.all_correct();
      table.add_row({util::Table::num(std::uint64_t{r.spec.params.k}),
                     r.spec.label,
                     util::Table::num(std::uint64_t{r.trial_count}),
                     util::Table::percent(r.correct_rate(), 0),
                     util::Table::percent(r.silent_rate(), 0)});
    }
    table.print("TieReport (retractor layer, 2k^2(k+1) states)");
  }

  {
    std::vector<sim::RunSpec> specs;
    for (const auto semantics : {ext::TieSemantics::kReport,
                                 ext::TieSemantics::kBreak,
                                 ext::TieSemantics::kShare}) {
      for (const std::uint32_t k : {3u, 4u}) {
        for (const bool tied : {false, true}) {
          sim::RunSpec spec;
          spec.protocol = "tie_aware_pairwise";
          spec.params.k = k;
          spec.params.semantics = semantics;
          spec.n = 16;
          spec.workload = tied ? sim::WorkloadSpec::exact_tie(2)
                               : sim::WorkloadSpec::unique_winner();
          spec.trials = trials;
          spec.grader = grade_tie_semantics;
          spec.label = tied ? "2-way tie" : "unique winner";
          specs.push_back(std::move(spec));
        }
      }
    }
    const auto results = sim::BatchRunner(batch).run(specs);

    util::Table table({"semantics", "k", "workload", "trials",
                       "all agents correct"});
    for (const sim::SpecResult& r : results) {
      all_ok = all_ok && r.all_correct();
      table.add_row({to_string(r.spec.params.semantics),
                     util::Table::num(std::uint64_t{r.spec.params.k}),
                     r.spec.label,
                     util::Table::num(std::uint64_t{r.trial_count}),
                     util::Table::percent(r.correct_rate(), 0)});
    }
    table.print("pairwise prototypes (report/break/share)");
  }

  return bench::verdict(all_ok,
                        all_ok ? "all tie semantics exact on every instance"
                               : "a tie semantics failed");
}
