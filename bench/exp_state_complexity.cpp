// E5 — the headline table: state complexity of relative-majority protocols.
// Circles' k^3 against the prior O(k^7) upper bound [Gąsieniec et al. 2017],
// the Ω(k^2) lower bound [Natale & Ramezani 2019], this repository's
// baselines/extensions, and — as a reality check — the number of distinct
// states a real execution actually occupies (RunSpec::track_used_states).
#include "baselines/state_complexity.hpp"
#include "exp_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto seed =
      static_cast<std::uint64_t>(cli.int_flag("seed", 5, "rng seed"));
  const auto batch = bench::batch_options(cli, seed);
  cli.finish();

  bench::print_header("E5",
                      "state complexity — k^3 vs O(k^7) vs Omega(k^2) and "
                      "every protocol in this repository");

  {
    util::Table table({"k", "circles k^3", "GHMSS16 k^7", "lower bound k^2",
                       "pairwise baseline", "tie_report 2k^2(k+1)",
                       "ordering 2k^2", "unordered 2k^4"});
    for (const std::uint32_t k : {2u, 3u, 4u, 5u, 6u, 8u, 12u, 16u, 24u, 32u}) {
      const auto rows = baselines::state_complexity_table(k);
      auto find = [&](const std::string& name) -> std::string {
        for (const auto& row : rows) {
          if (row.protocol == name) {
            return row.states == 0 ? "> 2^64" : util::Table::num(row.states);
          }
        }
        return "-";
      };
      table.add_row({util::Table::num(std::uint64_t{k}), find("circles"),
                     find("GHMSS16 upper bound (literature)"),
                     find("lower bound (literature)"),
                     find("pairwise_plurality"), find("tie_report"),
                     find("ordering"), find("unordered_circles")});
    }
    table.print("protocol state counts (paper: k^3 closes most of the "
                "k^7 -> k^2 gap)");
  }

  // States actually touched by an execution: far fewer than k^3, because an
  // agent's bra is fixed and outputs trail the winner — context for why the
  // definition-level count is the right metric (worst case over inputs).
  {
    std::vector<sim::RunSpec> specs;
    for (const std::uint32_t k : {4u, 8u, 16u}) {
      sim::RunSpec spec;
      spec.protocol = "circles";
      spec.params.k = k;
      spec.n = 128;
      spec.trials = 1;
      spec.track_used_states = true;
      specs.push_back(std::move(spec));
    }
    const auto results = sim::BatchRunner(batch).run(specs);

    util::Table table({"k", "n", "k^3", "states occupied in one run",
                       "occupancy"});
    bool sane = true;
    for (const sim::SpecResult& r : results) {
      const std::uint64_t num_states =
          sim::ProtocolRegistry::global()
              .create(r.spec.protocol, r.spec.params)
              ->num_states();
      const std::uint64_t used = r.trials.front().used_states;
      sane = sane && used <= num_states;
      table.add_row({util::Table::num(std::uint64_t{r.spec.params.k}),
                     util::Table::num(r.spec.n),
                     util::Table::num(num_states), util::Table::num(used),
                     util::Table::percent(double(used) / double(num_states),
                                          1)});
    }
    table.print("state-space occupancy of actual runs");
    if (!sane) return bench::verdict(false, "occupancy exceeded k^3?!");
  }

  return bench::verdict(true,
                        "k^3 < k^7 for all k >= 2; all implementation counts "
                        "match their closed forms (also unit-tested)");
}
