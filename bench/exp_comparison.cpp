// E6 — Circles vs the deterministic comparators: same correctness contract,
// wildly different state budgets; how do interactions-to-silence compare?
// At k = 2 the dedicated 4-state majority protocol also joins the table.
#include <memory>
#include <vector>

#include "analysis/trial.hpp"
#include "analysis/workload.hpp"
#include "baselines/exact_majority_4state.hpp"
#include "baselines/pairwise_plurality.hpp"
#include "core/circles_protocol.hpp"
#include "exp_common.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<int>(cli.int_flag("trials", 5, "trials per cell"));
  const auto seed = static_cast<std::uint64_t>(cli.int_flag("seed", 6, "rng seed"));
  cli.finish();

  bench::print_header("E6",
                      "Circles vs deterministic baselines — states and "
                      "interactions to silent consensus (uniform scheduler)");

  util::Rng rng(seed);
  util::Table table({"k", "n", "protocol", "states", "correct",
                     "mean interactions", "p90 interactions"});
  bool all_correct = true;

  for (const std::uint32_t k : {2u, 3u, 4u, 5u}) {
    core::CirclesProtocol circles(k);
    baselines::PairwisePlurality pairwise(k);
    baselines::ExactMajority4State majority;

    std::vector<pp::Protocol*> protocols{&circles, &pairwise};
    if (k == 2) protocols.push_back(&majority);

    for (const std::uint64_t n : {16ull, 64ull}) {
      // One shared workload set per (k, n) cell so protocols face identical
      // inputs.
      std::vector<analysis::Workload> workloads;
      std::vector<std::uint64_t> seeds;
      for (int t = 0; t < trials; ++t) {
        workloads.push_back(analysis::random_unique_winner(rng, n, k));
        seeds.push_back(rng());
      }
      for (pp::Protocol* protocol : protocols) {
        int correct = 0;
        std::vector<double> interactions;
        for (int t = 0; t < trials; ++t) {
          analysis::TrialOptions options;
          options.seed = seeds[t];
          const auto outcome =
              analysis::run_trial(*protocol, workloads[t], options);
          correct += outcome.correct ? 1 : 0;
          interactions.push_back(
              static_cast<double>(outcome.run.interactions));
        }
        all_correct = all_correct && correct == trials;
        const auto s = util::summarize(interactions);
        table.add_row({util::Table::num(std::uint64_t{k}),
                       util::Table::num(n), protocol->name(),
                       util::Table::num(protocol->num_states()),
                       util::Table::percent(double(correct) / trials, 0),
                       util::Table::num(s.mean, 0),
                       util::Table::num(s.p90, 0)});
      }
    }
  }
  table.print("interactions to silence (identical workloads per cell)");
  std::printf("\nshape to check: all protocols 100%% correct; Circles' state "
              "count grows as k^3\nwhile the pairwise baseline explodes "
              "exponentially (see E5); convergence speeds\nare the trade-off "
              "axis, not correctness.\n");
  return bench::verdict(all_correct, all_correct
                                         ? "all protocols always correct"
                                         : "a deterministic protocol erred");
}
