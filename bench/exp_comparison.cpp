// E6 — Circles vs the deterministic comparators: same correctness contract,
// wildly different state budgets; how do interactions-to-silence compare?
// At k = 2 the dedicated 4-state majority protocol also joins the table.
//
// Protocols within a (k, n) cell share the same RunSpec seed, so the
// BatchRunner gives them identical per-trial workloads and schedule streams
// — the comparison is apples to apples by construction.
#include <vector>

#include "exp_common.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<std::uint32_t>(
      cli.int_flag("trials", 5, "trials per cell"));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_flag("seed", 6, "rng seed"));
  const auto batch = bench::batch_options(cli, seed);
  cli.finish();

  bench::print_header("E6",
                      "Circles vs deterministic baselines — states and "
                      "interactions to silent consensus (uniform scheduler)");

  util::Rng rng(seed);
  std::vector<sim::RunSpec> specs;
  for (const std::uint32_t k : {2u, 3u, 4u, 5u}) {
    std::vector<std::string> protocols{"circles", "pairwise_plurality"};
    if (k == 2) protocols.push_back("exact_majority_4state");
    for (const std::uint64_t n : {16ull, 64ull}) {
      const std::uint64_t cell_seed = rng();  // shared inside the cell
      for (const auto& protocol : protocols) {
        sim::RunSpec spec;
        spec.protocol = protocol;
        spec.params.k = k;
        spec.n = n;
        spec.trials = trials;
        spec.seed = cell_seed;
        specs.push_back(std::move(spec));
      }
    }
  }

  const auto results = sim::BatchRunner(batch).run(specs);

  util::Table table({"k", "n", "protocol", "states", "correct",
                     "mean interactions", "p90 interactions"});
  bool all_correct = true;
  for (const sim::SpecResult& r : results) {
    all_correct = all_correct && r.all_correct();
    const auto protocol =
        sim::ProtocolRegistry::global().create(r.spec.protocol, r.spec.params);
    table.add_row({util::Table::num(std::uint64_t{r.spec.params.k}),
                   util::Table::num(r.spec.n), protocol->name(),
                   util::Table::num(protocol->num_states()),
                   util::Table::percent(r.correct_rate(), 0),
                   util::Table::num(r.interactions.mean, 0),
                   util::Table::num(r.interactions.p90, 0)});
  }
  table.print("interactions to silence (identical workloads per cell)");
  std::printf("\nshape to check: all protocols 100%% correct; Circles' state "
              "count grows as k^3\nwhile the pairwise baseline explodes "
              "exponentially (see E5); convergence speeds\nare the trade-off "
              "axis, not correctness.\n");
  return bench::verdict(all_correct, all_correct
                                         ? "all protocols always correct"
                                         : "a deterministic protocol erred");
}
