// E4 — the energy-minimization mechanism behind Theorem 3.4, observed
// through the obs:: subsystem on every backend:
//  * the ordinal potential (ascending-sorted weight vector, compared
//    lexicographically) strictly decreases at EVERY ket exchange, while the
//    scalar total energy Σw does NOT decrease monotonically — the ordinal
//    potential is not a stylistic choice in the paper;
//  * the headline energy-descent curve is produced by the same EnergyTrace
//    machinery on the agent array AND the dense count engines, on a shared
//    seed grid (identical per-trial workloads), and the median curves agree
//    — the scaling backends see the same physics;
//  * observation is cheap: EnergyTrace on dense_batched adds <10% wall
//    clock over an unprobed run at n = 10^6.
#include <chrono>
#include <cmath>
#include <filesystem>
#include <vector>

#include "exp_common.hpp"
#include "obs/obs.hpp"
#include "util/table.hpp"

namespace {

/// Wall-clock seconds of one BatchRunner spec (single-threaded so the
/// probed/unprobed comparison measures the loop, not the pool).
double time_spec(const circles::sim::RunSpec& spec, std::uint64_t base_seed,
                 circles::sim::SpecResult* result) {
  circles::sim::BatchOptions options;
  options.threads = 1;
  options.base_seed = base_seed;
  const auto start = std::chrono::steady_clock::now();
  *result = circles::sim::BatchRunner(options).run_one(spec);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const bool smoke =
      cli.bool_flag("smoke", false, "small fast run for CI smoke tests");
  const auto trials = static_cast<std::uint32_t>(
      cli.int_flag("trials", smoke ? 3 : 8, "trials per backend"));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_flag("seed", 4, "rng seed"));
  const auto n = static_cast<std::uint64_t>(
      cli.int_flag("n", smoke ? 400 : 2000, "population for descent curves"));
  const auto k = static_cast<std::uint32_t>(
      cli.int_flag("k", 4, "colors for descent curves"));
  const auto points = static_cast<std::uint32_t>(cli.int_flag(
      "points", smoke ? 32 : 48, "log-spaced sample points per trace"));
  const auto overhead_n = static_cast<std::uint64_t>(cli.int_flag(
      "overhead_n", smoke ? 20000 : 1000000,
      "population for the probe-overhead measurement (dense_batched)"));
  const std::string csv_dir = cli.string_flag(
      "csv", "", "directory for descent-curve envelope CSV/JSONL files");
  const auto batch = bench::batch_options(cli, seed);
  cli.finish();

  bench::print_header(
      "E4",
      "Theorem 3.4 mechanism — ordinal potential descends at every "
      "exchange; the energy-descent curve agrees across backends (obs::)");

  // --- 1. ordinal descent audit (agent backend, event-level monitors) ----
  std::vector<sim::RunSpec> audit_specs;
  for (const std::uint32_t audit_k : {4u, 8u, 16u}) {
    sim::RunSpec spec;
    spec.protocol = "circles";
    spec.params.k = audit_k;
    spec.n = 96;
    spec.trials = trials;
    spec.circles_stats = true;
    audit_specs.push_back(std::move(spec));
  }
  const auto audit = sim::BatchRunner(batch).run(audit_specs);

  util::Table audit_table({"k", "n", "exchanges", "ordinal violations",
                           "exchanges raising total energy", "share raising"});
  std::uint64_t total_violations = 0;
  std::uint64_t total_increases = 0;
  std::uint64_t total_exchanges = 0;
  for (const sim::SpecResult& r : audit) {
    std::uint64_t exchanges = 0;
    for (const auto& rec : r.trials) exchanges += rec.ket_exchanges;
    total_violations += r.potential_descent_violations;
    total_increases += r.scalar_energy_increases;
    total_exchanges += exchanges;
    audit_table.add_row(
        {util::Table::num(std::uint64_t{r.spec.params.k}),
         util::Table::num(r.spec.n), util::Table::num(exchanges),
         util::Table::num(r.potential_descent_violations),
         util::Table::num(r.scalar_energy_increases),
         util::Table::percent(
             exchanges
                 ? double(r.scalar_energy_increases) / double(exchanges)
                 : 0.0,
             1)});
  }
  audit_table.print("potential descent audit (agent backend)");
  bench::print_kernel_stats(audit);

  // --- 2. the descent curve, agent vs dense, shared seed grid ------------
  // All three specs fix the same seed, so trial t materializes the SAME
  // workload counts on every backend; trajectories differ (independent
  // schedule randomness) but start and — by Lemma 3.6 — end at identical
  // energies.
  const std::vector<sim::EngineKind> backends{sim::EngineKind::kAgentArray,
                                              sim::EngineKind::kDense,
                                              sim::EngineKind::kDenseBatched};
  std::vector<sim::RunSpec> curve_specs;
  for (const sim::EngineKind backend : backends) {
    sim::RunSpec spec;
    spec.protocol = "circles";
    spec.params.k = k;
    spec.n = n;
    spec.trials = trials;
    spec.seed = seed;
    spec.backend = backend;
    obs::ProbeSpec probe;
    probe.kind = obs::ProbeSpec::Kind::kEnergy;
    probe.grid.spacing = obs::GridSpec::Spacing::kLog;
    probe.grid.points = points;
    spec.probes.push_back(probe);
    spec.label = sim::to_string(backend);
    curve_specs.push_back(std::move(spec));
  }
  const auto curves = sim::BatchRunner(batch).run(curve_specs);

  // Shared resampling grid: the envelopes must land on identical x points
  // to be compared, so fix x_max to the shortest backend's longest trace.
  double x_max = 0.0;
  bool first_backend = true;
  bool endpoint_energy_equal = true;
  std::vector<double> initial_energy(trials, 0.0);
  std::vector<double> final_energy(trials, 0.0);
  for (const sim::SpecResult& r : curves) {
    double backend_max = 0.0;
    for (std::uint32_t t = 0; t < r.trials.size(); ++t) {
      const obs::TraceTable& trace = r.trials[t].traces.at(0);
      const std::size_t x_col = trace.column_index("interactions");
      const std::size_t e_col = trace.column_index("total_energy");
      backend_max =
          std::max(backend_max, trace.at(trace.num_rows() - 1, x_col));
      const double ie = trace.at(0, e_col);
      const double fe = trace.at(trace.num_rows() - 1, e_col);
      if (first_backend) {
        initial_energy[t] = ie;
        final_energy[t] = fe;
      } else if (ie != initial_energy[t] || fe != final_energy[t]) {
        endpoint_energy_equal = false;
      }
    }
    x_max = first_backend ? backend_max : std::min(x_max, backend_max);
    first_backend = false;
  }

  obs::EnvelopeOptions envelope_options;
  envelope_options.points = points;
  envelope_options.spacing = obs::GridSpec::Spacing::kLog;
  envelope_options.x_max = x_max;
  envelope_options.exclude_columns = {"chemical_time"};
  std::vector<obs::TraceTable> envelopes;
  for (const sim::SpecResult& r : curves) {
    std::vector<obs::TraceTable> traces;
    for (const auto& rec : r.trials) traces.push_back(rec.traces.at(0));
    envelopes.push_back(obs::envelope(traces, envelope_options));
  }

  const std::size_t median_col =
      envelopes.front().column_index("total_energy_p50");
  util::Table curve_table({"interactions", "agent p50", "dense p50",
                           "dense_batched p50", "max rel diff"});
  double max_rel_diff = 0.0;
  for (std::size_t row = 0; row < envelopes.front().num_rows(); ++row) {
    double lo = 0.0, hi = 0.0;
    for (std::size_t b = 0; b < envelopes.size(); ++b) {
      const double v = envelopes[b].at(row, median_col);
      lo = b == 0 ? v : std::min(lo, v);
      hi = b == 0 ? v : std::max(hi, v);
    }
    const double rel = hi > 0.0 ? (hi - lo) / hi : 0.0;
    max_rel_diff = std::max(max_rel_diff, rel);
    // Print a decimated view (the full envelopes go to --csv).
    if (row % std::max<std::size_t>(envelopes.front().num_rows() / 12, 1) ==
            0 ||
        row + 1 == envelopes.front().num_rows()) {
      curve_table.add_row({util::Table::num(envelopes.front().at(row, 0), 0),
                           util::Table::num(envelopes[0].at(row, median_col), 0),
                           util::Table::num(envelopes[1].at(row, median_col), 0),
                           util::Table::num(envelopes[2].at(row, median_col), 0),
                           util::Table::percent(rel, 1)});
    }
  }
  curve_table.print("energy descent, median across " +
                    std::to_string(trials) + " shared-workload trials (n=" +
                    std::to_string(n) + ", k=" + std::to_string(k) + ")");
  std::printf("max relative diff between backend medians: %.1f%%\n",
              max_rel_diff * 100.0);
  std::printf(
      "per-trial initial/final energies identical across backends: %s\n",
      endpoint_energy_equal ? "yes" : "NO");

  if (!csv_dir.empty()) {
    std::filesystem::create_directories(csv_dir);
    for (std::size_t b = 0; b < envelopes.size(); ++b) {
      const std::string stem =
          csv_dir + "/energy_" + sim::to_string(curve_specs[b].backend);
      envelopes[b].write_csv(stem + ".csv");
      envelopes[b].write_jsonl(stem + ".jsonl");
    }
    std::printf("wrote %zu envelope files to %s\n", envelopes.size() * 2,
                csv_dir.c_str());
  }

  // --- 3. probe overhead on the scaling backend --------------------------
  sim::RunSpec overhead_spec;
  overhead_spec.protocol = "circles";
  overhead_spec.params.k = k;
  overhead_spec.n = overhead_n;
  overhead_spec.trials = 1;
  overhead_spec.seed = seed;
  overhead_spec.backend = sim::EngineKind::kDenseBatched;
  sim::SpecResult unprobed;
  const double t_unprobed = time_spec(overhead_spec, seed, &unprobed);
  overhead_spec.probes.push_back(obs::ProbeSpec::parse("energy@log:1024"));
  sim::SpecResult probed;
  const double t_probed = time_spec(overhead_spec, seed, &probed);
  const double overhead =
      t_unprobed > 0.0 ? (t_probed - t_unprobed) / t_unprobed : 0.0;
  const bool same_run =
      unprobed.interactions.mean == probed.interactions.mean &&
      unprobed.state_changes.mean == probed.state_changes.mean;
  std::printf(
      "\nEnergyTrace overhead, dense_batched n=%llu to silence:\n"
      "  unprobed %.3fs, probed %.3fs (energy@log:1024, %zu rows) -> "
      "%+.1f%% wall clock; identical run: %s\n",
      static_cast<unsigned long long>(overhead_n), t_unprobed, t_probed,
      probed.trials.empty() ? std::size_t{0}
                            : probed.trials[0].traces.at(0).num_rows(),
      overhead * 100.0, same_run ? "yes" : "NO");

  // Smoke runs are too short to time meaningfully; the overhead criterion
  // is asserted on the full run only.
  const bool overhead_ok = smoke || overhead < 0.10;
  const bool pass = total_violations == 0 && total_increases > 0 &&
                    total_exchanges > 0 && endpoint_energy_equal &&
                    max_rel_diff < 0.35 && same_run && overhead_ok;
  return bench::verdict(
      pass,
      pass ? "ordinal potential never failed to descend (scalar energy rose "
             "on a nonzero share — ordinals are necessary); agent and dense "
             "backends produce the same descent curve from shared seeds, "
             "and tracing costs <10% on the scaling backend"
           : "unexpected potential behaviour (see tables above)");
}
