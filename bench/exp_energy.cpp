// E4 — the energy-minimization mechanism behind Theorem 3.4:
//  * the ordinal potential (ascending-sorted weight vector, compared
//    lexicographically) strictly decreases at EVERY ket exchange;
//  * the scalar total energy Σw does NOT decrease monotonically — single
//    exchanges may raise it. The ordinal potential is not a stylistic
//    choice in the paper; this experiment shows a plain energy argument
//    would be unsound.
#include <array>

#include "analysis/workload.hpp"
#include "core/circles_protocol.hpp"
#include "core/invariants.hpp"
#include "exp_common.hpp"
#include "pp/engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<int>(cli.int_flag("trials", 10, "trials per k"));
  const auto seed = static_cast<std::uint64_t>(cli.int_flag("seed", 4, "rng seed"));
  cli.finish();

  bench::print_header("E4",
                      "Theorem 3.4 mechanism — ordinal potential descends at "
                      "every exchange; scalar energy does not");

  util::Rng rng(seed);
  util::Table table({"k", "n", "exchanges", "ordinal violations",
                     "exchanges raising total energy", "share raising"});
  std::uint64_t total_violations = 0;
  std::uint64_t total_increases = 0;
  std::uint64_t total_exchanges = 0;

  for (const std::uint32_t k : {4u, 8u, 16u}) {
    core::CirclesProtocol protocol(k);
    core::CirclesBraKetView view(protocol);
    std::uint64_t exchanges = 0, violations = 0, increases = 0;
    const std::uint64_t n = 96;
    for (int t = 0; t < trials; ++t) {
      const analysis::Workload w = analysis::random_unique_winner(rng, n, k);
      core::PotentialDescentMonitor monitor(view);
      std::array<pp::Monitor*, 1> monitors{&monitor};
      util::Rng trial_rng(rng());
      const auto colors = w.agent_colors(trial_rng);
      pp::Population population(protocol, colors);
      auto scheduler = pp::make_scheduler(
          pp::SchedulerKind::kUniformRandom,
          static_cast<std::uint32_t>(colors.size()), trial_rng());
      pp::Engine engine;
      engine.run(protocol, population, *scheduler,
                 std::span<pp::Monitor* const>(monitors.data(), 1));
      exchanges += monitor.exchanges();
      violations += monitor.descent_violations();
      increases += monitor.scalar_energy_increases();
    }
    total_violations += violations;
    total_increases += increases;
    total_exchanges += exchanges;
    table.add_row({util::Table::num(std::uint64_t{k}), util::Table::num(n),
                   util::Table::num(exchanges), util::Table::num(violations),
                   util::Table::num(increases),
                   util::Table::percent(
                       exchanges ? double(increases) / double(exchanges) : 0.0,
                       1)});
  }
  table.print("potential descent audit");

  const bool pass = total_violations == 0 && total_increases > 0 &&
                    total_exchanges > 0;
  return bench::verdict(
      pass,
      pass ? "ordinal potential never failed to descend; scalar energy rose "
             "on a nonzero share of exchanges (ordinals are necessary)"
           : "unexpected potential behaviour");
}
