// E4 — the energy-minimization mechanism behind Theorem 3.4:
//  * the ordinal potential (ascending-sorted weight vector, compared
//    lexicographically) strictly decreases at EVERY ket exchange;
//  * the scalar total energy Σw does NOT decrease monotonically — single
//    exchanges may raise it. The ordinal potential is not a stylistic
//    choice in the paper; this experiment shows a plain energy argument
//    would be unsound.
#include <vector>

#include "exp_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<std::uint32_t>(
      cli.int_flag("trials", 10, "trials per k"));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_flag("seed", 4, "rng seed"));
  const auto batch = bench::batch_options(cli, seed);
  cli.finish();

  bench::print_header("E4",
                      "Theorem 3.4 mechanism — ordinal potential descends at "
                      "every exchange; scalar energy does not");

  std::vector<sim::RunSpec> specs;
  for (const std::uint32_t k : {4u, 8u, 16u}) {
    sim::RunSpec spec;
    spec.protocol = "circles";
    spec.params.k = k;
    spec.n = 96;
    spec.trials = trials;
    spec.circles_stats = true;
    specs.push_back(std::move(spec));
  }

  const auto results = sim::BatchRunner(batch).run(specs);

  util::Table table({"k", "n", "exchanges", "ordinal violations",
                     "exchanges raising total energy", "share raising"});
  std::uint64_t total_violations = 0;
  std::uint64_t total_increases = 0;
  std::uint64_t total_exchanges = 0;
  for (const sim::SpecResult& r : results) {
    std::uint64_t exchanges = 0;
    for (const auto& rec : r.trials) exchanges += rec.ket_exchanges;
    total_violations += r.potential_descent_violations;
    total_increases += r.scalar_energy_increases;
    total_exchanges += exchanges;
    table.add_row(
        {util::Table::num(std::uint64_t{r.spec.params.k}),
         util::Table::num(r.spec.n), util::Table::num(exchanges),
         util::Table::num(r.potential_descent_violations),
         util::Table::num(r.scalar_energy_increases),
         util::Table::percent(
             exchanges
                 ? double(r.scalar_energy_increases) / double(exchanges)
                 : 0.0,
             1)});
  }
  table.print("potential descent audit");

  const bool pass = total_violations == 0 && total_increases > 0 &&
                    total_exchanges > 0;
  return bench::verdict(
      pass,
      pass ? "ordinal potential never failed to descend; scalar energy rose "
             "on a nonzero share of exchanges (ordinals are necessary)"
           : "unexpected potential behaviour");
}
