// E1 — Theorem 3.7: Circles is always correct under weakly fair scheduling.
//
// Sweeps population size, color count and scheduler kind over random
// unique-winner workloads; every cell must be 100% correct with an exact
// silence certificate. This is the paper's headline correctness claim run
// as a measurement rather than a proof.
#include <vector>

#include "analysis/trial.hpp"
#include "analysis/workload.hpp"
#include "core/circles_protocol.hpp"
#include "exp_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<int>(cli.int_flag("trials", 5, "trials per cell"));
  const auto seed = static_cast<std::uint64_t>(cli.int_flag("seed", 1, "rng seed"));
  cli.finish();

  bench::print_header("E1",
                      "Theorem 3.7 — always-correct relative majority under "
                      "weakly fair schedulers");

  util::Rng rng(seed);
  util::Table table({"scheduler", "k", "n", "trials", "correct", "silent",
                     "mean interactions"});
  std::uint64_t failures = 0;

  for (const pp::SchedulerKind kind : pp::kAllSchedulerKinds) {
    // The adversarial scheduler does O(n)-ish work per step; keep it small.
    const std::vector<std::uint64_t> sizes =
        kind == pp::SchedulerKind::kAdversarialDelay
            ? std::vector<std::uint64_t>{8, 16, 24}
            : std::vector<std::uint64_t>{8, 32, 128};
    for (const std::uint32_t k : {2u, 4u, 8u, 16u}) {
      core::CirclesProtocol protocol(k);
      for (const std::uint64_t n : sizes) {
        int correct = 0;
        int silent = 0;
        double interactions = 0;
        for (int t = 0; t < trials; ++t) {
          const analysis::Workload w =
              analysis::random_unique_winner(rng, n, k);
          analysis::TrialOptions options;
          options.scheduler = kind;
          options.seed = rng();
          const auto outcome = analysis::run_trial(protocol, w, options);
          correct += outcome.correct ? 1 : 0;
          silent += outcome.run.silent ? 1 : 0;
          interactions += static_cast<double>(outcome.run.interactions);
        }
        failures += static_cast<std::uint64_t>(trials - correct);
        table.add_row({pp::to_string(kind), util::Table::num(std::uint64_t{k}),
                       util::Table::num(n),
                       util::Table::num(std::int64_t{trials}),
                       util::Table::percent(double(correct) / trials, 0),
                       util::Table::percent(double(silent) / trials, 0),
                       util::Table::num(interactions / trials, 0)});
      }
    }
  }
  table.print("correctness sweep (expected: 100% everywhere)");
  return bench::verdict(failures == 0,
                        failures == 0
                            ? "every trial reached silent consensus on the "
                              "true plurality winner"
                            : std::to_string(failures) + " trials failed");
}
