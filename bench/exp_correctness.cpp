// E1 — Theorem 3.7: Circles is always correct under weakly fair scheduling.
//
// Sweeps population size, color count and scheduler kind over random
// unique-winner workloads; every cell must be 100% correct with an exact
// silence certificate. This is the paper's headline correctness claim run
// as a measurement rather than a proof. The sweep is a RunSpec grid
// executed by the parallel BatchRunner.
#include <vector>

#include "exp_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace circles;
  util::Cli cli(argc, argv);
  const auto trials = static_cast<std::uint32_t>(
      cli.int_flag("trials", 5, "trials per cell"));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_flag("seed", 1, "rng seed"));
  const auto batch = bench::batch_options(cli, seed);
  cli.finish();

  bench::print_header("E1",
                      "Theorem 3.7 — always-correct relative majority under "
                      "weakly fair schedulers");

  std::vector<sim::RunSpec> specs;
  for (const pp::SchedulerKind kind : pp::kAllSchedulerKinds) {
    // The adversarial scheduler does O(n)-ish work per step; keep it small.
    const std::vector<std::uint64_t> sizes =
        kind == pp::SchedulerKind::kAdversarialDelay
            ? std::vector<std::uint64_t>{8, 16, 24}
            : std::vector<std::uint64_t>{8, 32, 128};
    for (const std::uint32_t k : {2u, 4u, 8u, 16u}) {
      for (const std::uint64_t n : sizes) {
        sim::RunSpec spec;
        spec.protocol = "circles";
        spec.params.k = k;
        spec.n = n;
        spec.scheduler = kind;
        spec.trials = trials;
        specs.push_back(std::move(spec));
      }
    }
  }

  const auto results = sim::BatchRunner(batch).run(specs);

  util::Table table({"scheduler", "k", "n", "trials", "correct", "silent",
                     "mean interactions"});
  std::uint64_t failures = 0;
  for (const sim::SpecResult& r : results) {
    failures += r.trial_count - r.correct;
    table.add_row({pp::to_string(r.spec.scheduler),
                   util::Table::num(std::uint64_t{r.spec.params.k}),
                   util::Table::num(r.spec.n),
                   util::Table::num(std::uint64_t{r.trial_count}),
                   util::Table::percent(r.correct_rate(), 0),
                   util::Table::percent(r.silent_rate(), 0),
                   util::Table::num(r.interactions.mean, 0)});
  }
  table.print("correctness sweep (expected: 100% everywhere)");
  return bench::verdict(failures == 0,
                        failures == 0
                            ? "every trial reached silent consensus on the "
                              "true plurality winner"
                            : std::to_string(failures) + " trials failed");
}
