// bench_report: schema-stable machine-readable output for the bench
// binaries (BENCH_throughput.json, BENCH_scaling.json, ...). These files
// are the repo's perf trajectory: every cell carries the backend, the
// problem size, and ops/sec, and the embedded RunManifest pins down what
// build on what host produced the numbers, so future PRs (single-run
// parallelism, SIMD layouts) are measured against a reproducible baseline.
//
// Schema (version 1):
//   {
//     "schema_version": 1,
//     "name": "throughput",
//     "manifest": { ... metrics::RunManifest::to_json() ... },
//     "cells": [
//       {"section": "...", "backend": "...", "n": ..., "ops_per_sec": ...,
//        "wall_ms": ..., "interactions": ..., ...},
//       ...
//     ],
//     "metrics": [ {"name": ..., "kind": ..., "value": ..., "count": ...} ]
//   }
//
// Cells are ordered key/value maps (insertion order preserved) so the JSON
// is stable across runs and easy to diff. Values are numbers or strings;
// non-finite numbers serialize as null.
#pragma once

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "metrics/manifest.hpp"
#include "metrics/metrics.hpp"
#include "sim/batch_runner.hpp"

namespace circles::bench {

class Report {
 public:
  explicit Report(std::string name) : name_(std::move(name)) {}

  /// One benchmark cell: an ordered key/value map. set() appends (or
  /// overwrites an existing key in place).
  class Cell {
   public:
    Cell& set(const std::string& key, double value) {
      return put(key, metrics::json_number(value));
    }
    Cell& set(const std::string& key, std::uint64_t value) {
      return put(key, std::to_string(value));
    }
    Cell& set(const std::string& key, int value) {
      return put(key, std::to_string(value));
    }
    Cell& set(const std::string& key, const std::string& value) {
      return put(key, "\"" + metrics::json_escape(value) + "\"");
    }
    Cell& set(const std::string& key, const char* value) {
      return set(key, std::string(value));
    }

    std::string to_json() const {
      std::string out = "{";
      for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (i) out += ",";
        out += "\"" + metrics::json_escape(entries_[i].first) +
               "\":" + entries_[i].second;
      }
      out += "}";
      return out;
    }

   private:
    Cell& put(const std::string& key, std::string encoded) {
      for (auto& [k, v] : entries_) {
        if (k == key) {
          v = std::move(encoded);
          return *this;
        }
      }
      entries_.emplace_back(key, std::move(encoded));
      return *this;
    }
    std::vector<std::pair<std::string, std::string>> entries_;
  };

  Cell& add_cell() { return cells_.emplace_back(); }

  /// Convenience: a cell prefilled from a SpecResult (backend, n, trials,
  /// interactions-to-silence, per-trial latency). Callers add section and
  /// ops/sec on the returned cell.
  Cell& add_cell(const sim::SpecResult& result) {
    Cell& cell = add_cell();
    cell.set("spec", result.spec.to_string());
    cell.set("protocol", result.spec.protocol);
    cell.set("k", static_cast<std::uint64_t>(result.spec.params.k));
    cell.set("n", result.spec.effective_n());
    cell.set("backend", sim::to_string(result.backend_resolved));
    cell.set("trials", static_cast<std::uint64_t>(result.trial_count));
    cell.set("interactions", result.interactions.mean);
    cell.set("wall_ms",
             result.trial_ms.mean * static_cast<double>(
                                        result.trial_ms.count));
    return cell;
  }

  void set_manifest(const metrics::RunManifest& manifest) {
    manifest_json_ = manifest.to_json();
  }
  void add_metrics(const metrics::MetricsRegistry& registry) {
    for (const auto& sample : registry.snapshot()) {
      Cell cell;
      cell.set("name", sample.name);
      cell.set("kind", sample.kind);
      cell.set("value", sample.value);
      cell.set("count", sample.count);
      metrics_json_.push_back(cell.to_json());
    }
  }

  std::string to_json() const {
    std::string out = "{\"schema_version\":1,\"name\":\"" +
                      metrics::json_escape(name_) + "\"";
    out += ",\"manifest\":" +
           (manifest_json_.empty() ? std::string("{}") : manifest_json_);
    out += ",\"cells\":[";
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      if (i) out += ",";
      out += "\n  " + cells_[i].to_json();
    }
    out += "\n]";
    out += ",\"metrics\":[";
    for (std::size_t i = 0; i < metrics_json_.size(); ++i) {
      if (i) out += ",";
      out += "\n  " + metrics_json_[i];
    }
    out += "\n]}\n";
    return out;
  }

  void write(const std::string& path) const {
    std::ofstream file(path);
    if (!file) throw std::runtime_error("bench_report: cannot open " + path);
    file << to_json();
    if (!file) {
      throw std::runtime_error("bench_report: write failed for " + path);
    }
    std::printf("\nwrote %s (%zu cells)\n", path.c_str(), cells_.size());
  }

 private:
  std::string name_;
  std::string manifest_json_;
  std::vector<Cell> cells_;
  std::vector<std::string> metrics_json_;
};

}  // namespace circles::bench
