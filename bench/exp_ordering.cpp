// E9 — paper §4 ordering protocol: per-color leader election plus label
// bumping generates an injective color -> label map with 2k^2 states, using
// only color-equality comparisons. Measures stabilization cost and verifies
// the invariants (one leader per color, distinct labels, synced followers).
#include <map>
#include <set>

#include "analysis/workload.hpp"
#include "exp_common.hpp"
#include "extensions/ordering.hpp"
#include "pp/engine.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace circles;

bool ordering_valid(const ext::OrderingProtocol& protocol,
                    const pp::Population& population) {
  std::map<pp::ColorId, std::uint32_t> leader_label;
  std::map<pp::ColorId, std::uint64_t> leaders;
  for (const pp::StateId s : population.present_states()) {
    const auto f = protocol.decode(s);
    if (f.leader) {
      leaders[f.color] += population.count(s);
      leader_label[f.color] = f.label;
    }
  }
  std::set<std::uint32_t> labels;
  for (const auto& [color, count] : leaders) {
    if (count != 1) return false;
    if (!labels.insert(leader_label[color]).second) return false;
  }
  for (const pp::StateId s : population.present_states()) {
    const auto f = protocol.decode(s);
    if (!f.leader) {
      auto it = leader_label.find(f.color);
      if (it == leader_label.end() || it->second != f.label) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto trials = static_cast<int>(cli.int_flag("trials", 6, "trials per cell"));
  const auto seed = static_cast<std::uint64_t>(cli.int_flag("seed", 9, "rng seed"));
  cli.finish();

  bench::print_header("E9",
                      "paper §4 — ordering protocol: injective labels from "
                      "equality-only color comparisons, 2k^2 states");

  util::Rng rng(seed);
  util::Table table({"k", "n", "states 2k^2", "valid orderings",
                     "mean interactions", "p90 interactions"});
  bool all_valid = true;

  for (const std::uint32_t k : {2u, 4u, 8u, 16u}) {
    ext::OrderingProtocol protocol(k);
    for (const std::uint64_t n : {16ull, 64ull}) {
      int valid = 0;
      std::vector<double> interactions;
      for (int t = 0; t < trials; ++t) {
        const analysis::Workload w = analysis::random_counts(rng, n, k);
        util::Rng trial_rng(rng());
        const auto colors = w.agent_colors(trial_rng);
        pp::Population population(protocol, colors);
        auto scheduler = pp::make_scheduler(
            pp::SchedulerKind::kUniformRandom,
            static_cast<std::uint32_t>(colors.size()), trial_rng());
        pp::Engine engine;
        const auto result = engine.run(protocol, population, *scheduler);
        if (result.silent && ordering_valid(protocol, population)) ++valid;
        interactions.push_back(static_cast<double>(result.interactions));
      }
      all_valid = all_valid && valid == trials;
      const auto s = util::summarize(interactions);
      table.add_row({util::Table::num(std::uint64_t{k}), util::Table::num(n),
                     util::Table::num(protocol.num_states()),
                     util::Table::percent(double(valid) / trials, 0),
                     util::Table::num(s.mean, 0),
                     util::Table::num(s.p90, 0)});
    }
  }
  table.print("ordering stabilization (uniform scheduler)");
  std::printf("\n(the label-bump move graph is proven acyclic for <= k "
              "leaders by exhaustive\nsearch in ext_ordering_test — this "
              "table adds the dynamic view)\n");
  return bench::verdict(all_valid,
                        all_valid ? "every run stabilized to one leader per "
                                    "color with distinct labels"
                                  : "an ordering run failed");
}
