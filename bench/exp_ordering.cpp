// E9 — paper §4 ordering protocol: per-color leader election plus label
// bumping generates an injective color -> label map with 2k^2 states, using
// only color-equality comparisons. Measures stabilization cost and verifies
// the invariants (one leader per color, distinct labels, synced followers)
// through a RunSpec grader.
#include <map>
#include <set>
#include <vector>

#include "exp_common.hpp"
#include "extensions/ordering.hpp"
#include "util/table.hpp"

namespace {

using namespace circles;

bool ordering_valid(const ext::OrderingProtocol& protocol,
                    const pp::Population& population) {
  std::map<pp::ColorId, std::uint32_t> leader_label;
  std::map<pp::ColorId, std::uint64_t> leaders;
  for (const pp::StateId s : population.present_states()) {
    const auto f = protocol.decode(s);
    if (f.leader) {
      leaders[f.color] += population.count(s);
      leader_label[f.color] = f.label;
    }
  }
  std::set<std::uint32_t> labels;
  for (const auto& [color, count] : leaders) {
    if (count != 1) return false;
    if (!labels.insert(leader_label[color]).second) return false;
  }
  for (const pp::StateId s : population.present_states()) {
    const auto f = protocol.decode(s);
    if (!f.leader) {
      auto it = leader_label.find(f.color);
      if (it == leader_label.end() || it->second != f.label) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto trials = static_cast<std::uint32_t>(
      cli.int_flag("trials", 6, "trials per cell"));
  const auto seed =
      static_cast<std::uint64_t>(cli.int_flag("seed", 9, "rng seed"));
  const auto batch = bench::batch_options(cli, seed);
  cli.finish();

  bench::print_header("E9",
                      "paper §4 — ordering protocol: injective labels from "
                      "equality-only color comparisons, 2k^2 states");

  std::vector<sim::RunSpec> specs;
  for (const std::uint32_t k : {2u, 4u, 8u, 16u}) {
    for (const std::uint64_t n : {16ull, 64ull}) {
      sim::RunSpec spec;
      spec.protocol = "ordering";
      spec.params.k = k;
      spec.n = n;
      spec.workload = sim::WorkloadSpec::random_counts();
      spec.trials = trials;
      spec.grader = [](const pp::Protocol& protocol, const analysis::Workload&,
                       std::span<const pp::ColorId>,
                       const pp::Population& population,
                       const pp::RunResult& run) {
        const auto* ordering =
            dynamic_cast<const ext::OrderingProtocol*>(&protocol);
        return ordering != nullptr && run.silent &&
               ordering_valid(*ordering, population);
      };
      specs.push_back(std::move(spec));
    }
  }

  const auto results = sim::BatchRunner(batch).run(specs);

  util::Table table({"k", "n", "states 2k^2", "valid orderings",
                     "mean interactions", "p90 interactions"});
  bool all_valid = true;
  for (const sim::SpecResult& r : results) {
    all_valid = all_valid && r.all_correct();
    const std::uint64_t states = 2ull * r.spec.params.k * r.spec.params.k;
    table.add_row({util::Table::num(std::uint64_t{r.spec.params.k}),
                   util::Table::num(r.spec.n), util::Table::num(states),
                   util::Table::percent(r.correct_rate(), 0),
                   util::Table::num(r.interactions.mean, 0),
                   util::Table::num(r.interactions.p90, 0)});
  }
  table.print("ordering stabilization (uniform scheduler)");
  std::printf("\n(the label-bump move graph is proven acyclic for <= k "
              "leaders by exhaustive\nsearch in ext_ordering_test — this "
              "table adds the dynamic view)\n");
  return bench::verdict(all_valid,
                        all_valid ? "every run stabilized to one leader per "
                                    "color with distinct labels"
                                  : "an ordering run failed");
}
