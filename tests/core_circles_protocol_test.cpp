#include "core/circles_protocol.hpp"

#include <gtest/gtest.h>

namespace circles::core {
namespace {

TEST(CirclesProtocolTest, StateCountIsKCubed) {
  for (std::uint32_t k : {1u, 2u, 3u, 5u, 10u, 32u}) {
    CirclesProtocol protocol(k);
    EXPECT_EQ(protocol.num_states(),
              static_cast<std::uint64_t>(k) * k * k);
    EXPECT_EQ(protocol.num_colors(), k);
    EXPECT_EQ(protocol.num_output_symbols(), k);
  }
}

TEST(CirclesProtocolTest, EncodeDecodeRoundTripAllStates) {
  for (std::uint32_t k : {1u, 2u, 3u, 5u}) {
    CirclesProtocol protocol(k);
    for (pp::StateId s = 0; s < protocol.num_states(); ++s) {
      const auto f = protocol.decode(s);
      EXPECT_LT(f.braket.bra, k);
      EXPECT_LT(f.braket.ket, k);
      EXPECT_LT(f.out, k);
      EXPECT_EQ(protocol.encode(f.braket, f.out), s);
    }
  }
}

TEST(CirclesProtocolTest, InputIsDiagonalWithOwnOutput) {
  CirclesProtocol protocol(6);
  for (pp::ColorId c = 0; c < 6; ++c) {
    const auto f = protocol.decode(protocol.input(c));
    EXPECT_EQ(f.braket.bra, c);
    EXPECT_EQ(f.braket.ket, c);
    EXPECT_EQ(f.out, c);
    EXPECT_EQ(protocol.output(protocol.input(c)), c);
  }
}

TEST(CirclesProtocolTest, OutputReadsOutField) {
  CirclesProtocol protocol(4);
  for (pp::ColorId out = 0; out < 4; ++out) {
    EXPECT_EQ(protocol.output(protocol.encode({1, 2}, out)), out);
  }
}

TEST(CirclesProtocolTest, ExchangeSwapsKetsWhenItDecreasesMinWeight) {
  CirclesProtocol protocol(5);
  // ⟨0|4⟩ + ⟨3|0⟩ exchanges into ⟨0|0⟩ + ⟨3|4⟩ (diagonal creation example).
  const pp::StateId a = protocol.encode({0, 4}, 1);
  const pp::StateId b = protocol.encode({3, 0}, 2);
  const pp::Transition tr = protocol.transition(a, b);
  const auto fa = protocol.decode(tr.initiator);
  const auto fb = protocol.decode(tr.responder);
  EXPECT_EQ(fa.braket, (BraKet{0, 0}));
  EXPECT_EQ(fb.braket, (BraKet{3, 4}));
  // The new diagonal broadcasts its bra to both agents.
  EXPECT_EQ(fa.out, 0u);
  EXPECT_EQ(fb.out, 0u);
}

TEST(CirclesProtocolTest, NoExchangeWhenMinWouldNotDecrease) {
  CirclesProtocol protocol(5);
  const pp::StateId a = protocol.encode({0, 1}, 0);
  const pp::StateId b = protocol.encode({1, 0}, 1);
  const pp::Transition tr = protocol.transition(a, b);
  EXPECT_EQ(protocol.decode(tr.initiator).braket, (BraKet{0, 1}));
  EXPECT_EQ(protocol.decode(tr.responder).braket, (BraKet{1, 0}));
  // No diagonal present: outputs unchanged.
  EXPECT_EQ(protocol.decode(tr.initiator).out, 0u);
  EXPECT_EQ(protocol.decode(tr.responder).out, 1u);
}

TEST(CirclesProtocolTest, DiagonalBroadcastsToBoth) {
  CirclesProtocol protocol(4);
  const pp::StateId diag = protocol.encode({2, 2}, 2);
  const pp::StateId other = protocol.encode({0, 1}, 3);
  {
    const pp::Transition tr = protocol.transition(diag, other);
    EXPECT_EQ(protocol.decode(tr.initiator).out, 2u);
    EXPECT_EQ(protocol.decode(tr.responder).out, 2u);
  }
  {
    const pp::Transition tr = protocol.transition(other, diag);
    EXPECT_EQ(protocol.decode(tr.initiator).out, 2u);
    EXPECT_EQ(protocol.decode(tr.responder).out, 2u);
  }
}

TEST(CirclesProtocolTest, TwoInitialDiagonalsExchangeAndKeepOuts) {
  CirclesProtocol protocol(3);
  // ⟨0|0⟩ + ⟨1|1⟩ always exchanges into ⟨0|1⟩ + ⟨1|0⟩ — neither is diagonal
  // afterwards, so outputs stay what they were.
  const pp::Transition tr =
      protocol.transition(protocol.input(0), protocol.input(1));
  const auto fa = protocol.decode(tr.initiator);
  const auto fb = protocol.decode(tr.responder);
  EXPECT_EQ(fa.braket, (BraKet{0, 1}));
  EXPECT_EQ(fb.braket, (BraKet{1, 0}));
  EXPECT_EQ(fa.out, 0u);
  EXPECT_EQ(fb.out, 1u);
}

TEST(CirclesProtocolTest, BothDiagonalNoExchangeUsesInitiatorPrecedence) {
  // Craft two diagonal agents that do NOT exchange: impossible for distinct
  // colors (two diagonals always exchange), so the both-diagonal broadcast
  // can only trigger with equal bras — in which case precedence is moot —
  // or after an exchange creating exactly one diagonal. Verify the same-bra
  // case keeps everything stable except outputs.
  CirclesProtocol protocol(4);
  const pp::StateId a = protocol.encode({3, 3}, 0);
  const pp::StateId b = protocol.encode({3, 3}, 1);
  const pp::Transition tr = protocol.transition(a, b);
  const auto fa = protocol.decode(tr.initiator);
  const auto fb = protocol.decode(tr.responder);
  EXPECT_EQ(fa.braket, (BraKet{3, 3}));
  EXPECT_EQ(fb.braket, (BraKet{3, 3}));
  EXPECT_EQ(fa.out, 3u);
  EXPECT_EQ(fb.out, 3u);
}

TEST(CirclesProtocolTest, TransitionNeverChangesBras) {
  // Lemma 3.3's stronger form: bras are immutable. Exhaustive over all state
  // pairs for small k.
  for (std::uint32_t k : {2u, 3u, 4u}) {
    CirclesProtocol protocol(k);
    for (pp::StateId a = 0; a < protocol.num_states(); ++a) {
      for (pp::StateId b = 0; b < protocol.num_states(); ++b) {
        const pp::Transition tr = protocol.transition(a, b);
        EXPECT_EQ(protocol.decode(tr.initiator).braket.bra,
                  protocol.decode(a).braket.bra);
        EXPECT_EQ(protocol.decode(tr.responder).braket.bra,
                  protocol.decode(b).braket.bra);
      }
    }
  }
}

TEST(CirclesProtocolTest, TransitionPreservesKetMultiset) {
  // Kets are only ever swapped, never rewritten.
  for (std::uint32_t k : {2u, 3u, 4u}) {
    CirclesProtocol protocol(k);
    for (pp::StateId a = 0; a < protocol.num_states(); ++a) {
      for (pp::StateId b = 0; b < protocol.num_states(); ++b) {
        const pp::Transition tr = protocol.transition(a, b);
        const auto before_a = protocol.decode(a).braket.ket;
        const auto before_b = protocol.decode(b).braket.ket;
        const auto after_a = protocol.decode(tr.initiator).braket.ket;
        const auto after_b = protocol.decode(tr.responder).braket.ket;
        const bool same = after_a == before_a && after_b == before_b;
        const bool swapped = after_a == before_b && after_b == before_a;
        EXPECT_TRUE(same || swapped);
      }
    }
  }
}

TEST(CirclesProtocolTest, ExchangeStrictlyDecreasesMinWeightExhaustively) {
  // Theorem 3.4's local step, checked against every state pair.
  for (std::uint32_t k : {2u, 3u, 5u}) {
    CirclesProtocol protocol(k);
    for (pp::StateId a = 0; a < protocol.num_states(); ++a) {
      for (pp::StateId b = 0; b < protocol.num_states(); ++b) {
        const auto fa = protocol.decode(a);
        const auto fb = protocol.decode(b);
        const pp::Transition tr = protocol.transition(a, b);
        const auto ga = protocol.decode(tr.initiator);
        const auto gb = protocol.decode(tr.responder);
        const bool exchanged = ga.braket.ket != fa.braket.ket;
        if (exchanged) {
          const std::uint32_t before =
              std::min(weight(fa.braket, k), weight(fb.braket, k));
          const std::uint32_t after =
              std::min(weight(ga.braket, k), weight(gb.braket, k));
          EXPECT_LT(after, before);
        }
      }
    }
  }
}

TEST(CirclesProtocolTest, SingleColorUniverseIsTrivial) {
  CirclesProtocol protocol(1);
  EXPECT_EQ(protocol.num_states(), 1u);
  const pp::Transition tr = protocol.transition(0, 0);
  EXPECT_EQ(tr.initiator, 0u);
  EXPECT_EQ(tr.responder, 0u);
  EXPECT_EQ(protocol.output(0), 0u);
}

TEST(CirclesProtocolTest, StateNameRendersBraKetAndOut) {
  CirclesProtocol protocol(4);
  EXPECT_EQ(protocol.state_name(protocol.encode({1, 2}, 3)), "<1|2>:3");
  EXPECT_EQ(protocol.name(), "circles");
}

TEST(CirclesProtocolDeathTest, RejectsOversizedK) {
  EXPECT_DEATH(CirclesProtocol(2000), "overflow");
}

}  // namespace
}  // namespace circles::core
