// Unit tests for the obs core: TraceTable sinks, Recorder cadence
// semantics, and each built-in probe against hand-computed expectations.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "baselines/exact_majority_4state.hpp"
#include "core/circles_protocol.hpp"
#include "obs/obs.hpp"

namespace circles::obs {
namespace {

// --- TraceTable ------------------------------------------------------------

TEST(TraceTableTest, RowsAndColumns) {
  TraceTable table({"x", "y"});
  table.add_row({1.0, 2.0});
  table.add_row({3.0, 4.0});
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.at(1, 0), 3.0);
  EXPECT_EQ(table.column_index("y"), 1u);
  EXPECT_THROW(table.column_index("z"), std::invalid_argument);
  EXPECT_EQ(table.column(1), (std::vector<double>{2.0, 4.0}));
}

TEST(TraceTableTest, CsvAndJsonlRendering) {
  TraceTable table({"x", "y"});
  table.add_row({0.0, 1.5});
  table.add_row({2.0, -3.0});
  EXPECT_EQ(table.to_csv(), "x,y\n0,1.5\n2,-3\n");
  EXPECT_EQ(table.to_jsonl(),
            "{\"x\":0,\"y\":1.5}\n{\"x\":2,\"y\":-3}\n");
}

TEST(TraceTableTest, FileSinksRoundTrip) {
  TraceTable table({"x"});
  table.add_row({42.0});
  const std::string csv = testing::TempDir() + "/obs_trace_test.csv";
  const std::string jsonl = testing::TempDir() + "/obs_trace_test.jsonl";
  table.write_csv(csv);
  table.write_jsonl(jsonl);
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  };
  EXPECT_EQ(slurp(csv), table.to_csv());
  EXPECT_EQ(slurp(jsonl), table.to_jsonl());
  std::remove(csv.c_str());
  std::remove(jsonl.c_str());
}

// --- Recorder cadence ------------------------------------------------------

/// Captures the x positions of every sample it receives.
class SpyProbe final : public Probe {
 public:
  void on_sample(const Snapshot& snapshot) override {
    samples.push_back(snapshot.interactions);
  }
  void on_finish(const Snapshot&) override { finishes += 1; }
  std::vector<std::uint64_t> samples;
  int finishes = 0;
};

TEST(RecorderTest, SamplesInitialDuePointsAndFinal) {
  core::CirclesProtocol protocol(2);
  std::vector<std::uint64_t> counts(protocol.num_states(), 0);
  counts[protocol.input(0)] = 3;
  counts[protocol.input(1)] = 2;

  RecorderOptions options;
  options.interaction_horizon = 100;
  Recorder recorder(options);
  SpyProbe spy;
  GridSpec grid;
  grid.spacing = GridSpec::Spacing::kLinear;
  grid.points = 10;  // due at 10, 20, ..., 100
  recorder.add(&spy, grid);

  ProbeContext ctx;
  ctx.protocol = &protocol;
  ctx.n = 5;
  recorder.begin(ctx, counts);
  recorder.advance(4, 0.0, counts);   // before first due point: no sample
  recorder.advance(10, 0.0, counts);  // exactly due
  recorder.advance(12, 0.0, counts);  // next due is 20
  recorder.advance(35, 0.0, counts);  // passes 20 and 30: ONE collapsed sample
  recorder.finish(47, 0.0, counts);   // final position past the last sample

  EXPECT_EQ(spy.samples, (std::vector<std::uint64_t>{0, 10, 35, 47}));
  EXPECT_EQ(spy.finishes, 1);
}

TEST(RecorderTest, FinishNeverEmitsNonMonotoneRow) {
  core::CirclesProtocol protocol(2);
  std::vector<std::uint64_t> counts(protocol.num_states(), 0);
  counts[protocol.input(0)] = 2;
  counts[protocol.input(1)] = 2;
  RecorderOptions options;
  options.interaction_horizon = 100;
  Recorder recorder(options);
  SpyProbe spy;
  recorder.add(&spy, GridSpec::parse("linear:10"));
  ProbeContext ctx;
  ctx.protocol = &protocol;
  ctx.n = 4;
  recorder.begin(ctx, counts);
  recorder.advance(50, 0.0, counts);
  // A batched engine can rewind its reported index to the exact silence
  // point; the already-emitted row at 50 must stay the last sample.
  recorder.finish(31, 0.0, counts);
  EXPECT_EQ(spy.samples, (std::vector<std::uint64_t>{0, 50}));
  EXPECT_EQ(spy.finishes, 1);
}

TEST(RecorderTest, BeginIsIdempotent) {
  core::CirclesProtocol protocol(2);
  std::vector<std::uint64_t> counts(protocol.num_states(), 0);
  counts[protocol.input(0)] = 2;
  RecorderOptions options;
  options.interaction_horizon = 10;
  Recorder recorder(options);
  SpyProbe spy;
  recorder.add(&spy, GridSpec::parse("linear:1"));
  ProbeContext ctx;
  ctx.protocol = &protocol;
  ctx.n = 2;
  recorder.begin(ctx, counts);
  recorder.begin(ctx, counts);  // engine re-entry: no duplicate x=0 row
  EXPECT_EQ(spy.samples, (std::vector<std::uint64_t>{0}));
}

// --- EnergyTrace -----------------------------------------------------------

TEST(EnergyTraceTest, WeightsMatchBraKetDefinition) {
  core::CirclesProtocol protocol(4);
  const EnergyTrace trace = EnergyTrace::for_circles(protocol);
  ASSERT_EQ(trace.weights().size(), protocol.num_states());
  for (pp::StateId s = 0; s < protocol.num_states(); ++s) {
    EXPECT_EQ(trace.weights()[s],
              core::weight(protocol.decode(s).braket, protocol.k()))
        << "state " << s;
  }
}

TEST(EnergyTraceTest, HandComputedEnergyRow) {
  core::CirclesProtocol protocol(3);
  std::vector<std::uint64_t> counts(protocol.num_states(), 0);
  // 4 diagonal agents <0|0> (weight 3 each) and 2 agents <0|1> (weight 1).
  counts[protocol.encode({0, 0}, 0)] = 4;
  counts[protocol.encode({0, 1}, 0)] = 2;

  RecorderOptions options;
  options.interaction_horizon = 10;
  Recorder recorder(options);
  EnergyTrace energy = EnergyTrace::for_circles(protocol);
  recorder.add(&energy, GridSpec::parse("linear:1"));
  ProbeContext ctx;
  ctx.protocol = &protocol;
  ctx.n = 6;
  recorder.begin(ctx, counts);

  const TraceTable& table = *energy.table();
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(table.at(0, table.column_index("total_energy")),
                   4 * 3 + 2 * 1);
  EXPECT_DOUBLE_EQ(table.at(0, table.column_index("min_weight")), 1.0);
  EXPECT_DOUBLE_EQ(table.at(0, table.column_index("diagonal_agents")), 4.0);
}

// --- CountsTrace -----------------------------------------------------------

TEST(CountsTraceTest, OutputProjectionSumsToPopulation) {
  core::CirclesProtocol protocol(3);
  std::vector<std::uint64_t> counts(protocol.num_states(), 0);
  counts[protocol.input(0)] = 5;
  counts[protocol.input(2)] = 3;

  RecorderOptions options;
  options.interaction_horizon = 10;
  Recorder recorder(options);
  CountsTrace trace;
  recorder.add(&trace, GridSpec::parse("linear:1"));
  ProbeContext ctx;
  ctx.protocol = &protocol;
  ctx.n = 8;
  recorder.begin(ctx, counts);

  const TraceTable& table = *trace.table();
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(table.at(0, table.column_index("out_0")), 5.0);
  EXPECT_DOUBLE_EQ(table.at(0, table.column_index("out_1")), 0.0);
  EXPECT_DOUBLE_EQ(table.at(0, table.column_index("out_2")), 3.0);
}

TEST(CountsTraceTest, StateProjectionRefusesHugeProtocols) {
  core::CirclesProtocol protocol(17);  // 17^3 = 4913 > kMaxStateColumns
  std::vector<std::uint64_t> counts(protocol.num_states(), 0);
  counts[protocol.input(0)] = 2;
  Recorder recorder;
  CountsTrace trace(CountsTrace::Projection::kStates);
  recorder.add(&trace);
  ProbeContext ctx;
  ctx.protocol = &protocol;
  ctx.n = 2;
  EXPECT_THROW(recorder.begin(ctx, counts), std::invalid_argument);
}

// --- ActivePairsTrace ------------------------------------------------------

TEST(ActivePairsTraceTest, MatchesBruteForceCount) {
  core::CirclesProtocol protocol(3);
  std::vector<std::uint64_t> counts(protocol.num_states(), 0);
  counts[protocol.input(0)] = 3;
  counts[protocol.input(1)] = 2;
  counts[protocol.encode({0, 1}, 0)] = 1;

  // Brute force over all ordered state pairs.
  std::uint64_t expected = 0;
  for (pp::StateId a = 0; a < protocol.num_states(); ++a) {
    for (pp::StateId b = 0; b < protocol.num_states(); ++b) {
      if (counts[a] == 0 || counts[b] == 0) continue;
      const pp::Transition tr = protocol.transition(a, b);
      if (tr.initiator == a && tr.responder == b) continue;
      expected += counts[a] * (counts[b] - (a == b ? 1 : 0));
    }
  }

  ProbeContext ctx;
  ctx.protocol = &protocol;
  ctx.n = 6;
  EXPECT_EQ(active_pairs_from_counts(ctx, counts), expected);

  // Through the recorder (which computes it on demand for the probe).
  RecorderOptions options;
  options.interaction_horizon = 10;
  Recorder recorder(options);
  ActivePairsTrace trace;
  recorder.add(&trace, GridSpec::parse("linear:1"));
  recorder.begin(ctx, counts);
  const TraceTable& table = *trace.table();
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(table.at(0, table.column_index("active_pairs")),
                   static_cast<double>(expected));
  EXPECT_DOUBLE_EQ(table.at(0, table.column_index("active_fraction")),
                   static_cast<double>(expected) / (6.0 * 5.0));
}

// --- ConvergenceProbe ------------------------------------------------------

TEST(ConvergenceProbeTest, TracksFirstCorrectAndStaysCorrect) {
  core::CirclesProtocol protocol(2);
  ProbeContext ctx;
  ctx.protocol = &protocol;
  ctx.n = 4;

  std::vector<std::uint64_t> leading(protocol.num_states(), 0);
  leading[protocol.input(1)] = 3;
  leading[protocol.input(0)] = 1;
  std::vector<std::uint64_t> trailing(protocol.num_states(), 0);
  trailing[protocol.input(1)] = 1;
  trailing[protocol.input(0)] = 3;

  ConvergenceProbe probe(pp::OutputSymbol{1});
  probe.on_begin(ctx);
  const auto feed = [&](std::uint64_t x, const std::vector<std::uint64_t>& c) {
    Snapshot snapshot;
    snapshot.interactions = x;
    snapshot.counts = c;
    snapshot.ctx = &ctx;
    probe.on_sample(snapshot);
    return snapshot;
  };
  feed(0, trailing);            // wrong leader
  feed(10, leading);            // correct — candidate at 10
  feed(20, trailing);           // flips back: candidate reset
  feed(30, leading);            // correct again — candidate at 30
  const auto last = feed(40, leading);
  probe.on_finish(last);

  EXPECT_TRUE(probe.converged());
  EXPECT_EQ(probe.first_correct_interactions(), 30u);
  ASSERT_EQ(probe.table()->num_rows(), 5u);
  EXPECT_DOUBLE_EQ(
      probe.table()->at(0, probe.table()->column_index("leader_ok")), 0.0);
}

TEST(ConvergenceProbeTest, NoExpectedSymbolNeverConverges) {
  core::CirclesProtocol protocol(2);
  ProbeContext ctx;
  ctx.protocol = &protocol;
  ctx.n = 2;
  std::vector<std::uint64_t> counts(protocol.num_states(), 0);
  counts[protocol.input(0)] = 2;
  ConvergenceProbe probe(std::nullopt);
  probe.on_begin(ctx);
  Snapshot snapshot;
  snapshot.counts = counts;
  snapshot.ctx = &ctx;
  probe.on_sample(snapshot);
  probe.on_finish(snapshot);
  EXPECT_FALSE(probe.converged());
}

// --- make_probe ------------------------------------------------------------

TEST(MakeProbeTest, EnergyRequiresCircles) {
  baselines::ExactMajority4State majority;
  EXPECT_THROW(make_probe(ProbeSpec::parse("energy"), majority),
               std::invalid_argument);
  core::CirclesProtocol circles(3);
  EXPECT_NE(make_probe(ProbeSpec::parse("energy"), circles), nullptr);
}

TEST(MakeProbeTest, BuildsEveryKind) {
  core::CirclesProtocol circles(3);
  for (const std::string text :
       {"counts", "states", "energy", "active", "convergence"}) {
    EXPECT_NE(make_probe(ProbeSpec::parse(text), circles, 0), nullptr)
        << text;
  }
}

}  // namespace
}  // namespace circles::obs
