#include "dense/dense_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "dense/dense_config.hpp"
#include "sim/sim.hpp"
#include "util/rng.hpp"

namespace circles::dense {
namespace {

using CountVector = std::vector<std::uint64_t>;

analysis::Workload workload_of(CountVector counts) {
  analysis::Workload w;
  w.counts = std::move(counts);
  return w;
}

/// Exact silence on a count vector (the engine's active-pair criterion,
/// recomputed independently).
bool counts_silent(const pp::Protocol& protocol, const CountVector& counts) {
  for (pp::StateId s = 0; s < counts.size(); ++s) {
    if (counts[s] == 0) continue;
    for (pp::StateId t = 0; t < counts.size(); ++t) {
      if (counts[t] == 0 || (s == t && counts[s] < 2)) continue;
      const pp::Transition tr = protocol.transition(s, t);
      if (tr.initiator != s || tr.responder != t) return false;
    }
  }
  return true;
}

/// Exhaustive BFS over the count-configuration graph: every configuration
/// reachable from `initial`, and the subset that is silent. Tiny instances
/// only (n <= 6, small state spaces).
std::set<CountVector> reachable_silent_configs(const pp::Protocol& protocol,
                                               const CountVector& initial) {
  std::set<CountVector> seen{initial};
  std::vector<CountVector> frontier{initial};
  std::set<CountVector> silent;
  while (!frontier.empty()) {
    const CountVector config = std::move(frontier.back());
    frontier.pop_back();
    bool any_change = false;
    for (pp::StateId s = 0; s < config.size(); ++s) {
      if (config[s] == 0) continue;
      for (pp::StateId t = 0; t < config.size(); ++t) {
        if (config[t] == 0 || (s == t && config[s] < 2)) continue;
        const pp::Transition tr = protocol.transition(s, t);
        if (tr.initiator == s && tr.responder == t) continue;
        any_change = true;
        CountVector next = config;
        next[s] -= 1;
        next[t] -= 1;
        next[tr.initiator] += 1;
        next[tr.responder] += 1;
        if (seen.insert(next).second) frontier.push_back(std::move(next));
      }
    }
    if (!any_change) silent.insert(config);
  }
  return silent;
}

TEST(DenseConfigTest, FromWorkloadPlacesAgentsInInputStates) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 3});
  const auto workload = workload_of({3, 2, 1});
  const DenseConfig config = DenseConfig::from_workload(*protocol, workload);
  EXPECT_EQ(config.n(), 6u);
  EXPECT_EQ(config.num_states(), protocol->num_states());
  for (pp::ColorId c = 0; c < 3; ++c) {
    EXPECT_EQ(config.count(protocol->input(c)), workload.counts[c]);
  }
  EXPECT_EQ(config.present_states().size(), 3u);
  const auto histogram = config.output_histogram(*protocol);
  EXPECT_EQ(histogram, (CountVector{3, 2, 1}));
}

TEST(DenseConfigTest, FromPopulationMatchesAgentArray) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 2});
  const std::vector<pp::ColorId> colors = {0, 1, 1, 0, 1};
  pp::Population population(*protocol, colors);
  const DenseConfig config =
      DenseConfig::from_population(*protocol, population);
  EXPECT_EQ(config.n(), 5u);
  EXPECT_EQ(config.count(protocol->input(0)), 2u);
  EXPECT_EQ(config.count(protocol->input(1)), 3u);
}

TEST(DenseEngineTest, ReachesSilenceAndConservesPopulation) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 3});
  for (const DenseMode mode : {DenseMode::kPerStep, DenseMode::kBatched}) {
    DenseEngine engine(*protocol, {}, mode);
    DenseConfig config =
        DenseConfig::from_workload(*protocol, workload_of({40, 30, 20}));
    const pp::RunResult result = engine.run(config, 123);
    EXPECT_TRUE(result.silent);
    EXPECT_FALSE(result.budget_exhausted);
    EXPECT_EQ(config.n(), 90u);
    EXPECT_TRUE(counts_silent(*protocol, config.counts));
    // Exact silence detection: the run stops right after the final change.
    EXPECT_EQ(result.interactions, result.last_change_step + 1);
    // Silent consensus on the plurality winner (color 0).
    const auto histogram = config.output_histogram(*protocol);
    EXPECT_EQ(histogram[0], 90u);
  }
}

TEST(DenseEngineTest, AlreadySilentConfigurationStopsImmediately) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 2});
  for (const DenseMode mode : {DenseMode::kPerStep, DenseMode::kBatched}) {
    DenseEngine engine(*protocol, {}, mode);
    // All agents of one color: diagonal states, no pair changes anything.
    DenseConfig config =
        DenseConfig::from_workload(*protocol, workload_of({5, 0}));
    const pp::RunResult result = engine.run(config, 1);
    EXPECT_TRUE(result.silent);
    EXPECT_EQ(result.interactions, 0u);
    EXPECT_EQ(result.state_changes, 0u);
  }
}

TEST(DenseEngineTest, FixedBudgetRunsExactlyToBudget) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 3});
  pp::EngineOptions options;
  options.max_interactions = 5000;
  options.stop_when_silent = false;
  for (const DenseMode mode : {DenseMode::kPerStep, DenseMode::kBatched}) {
    DenseEngine engine(*protocol, options, mode);
    DenseConfig config =
        DenseConfig::from_workload(*protocol, workload_of({30, 20, 10}));
    const pp::RunResult result = engine.run(config, 9);
    EXPECT_EQ(result.interactions, 5000u);
    EXPECT_EQ(config.n(), 60u);
  }
}

TEST(DenseEngineTest, TinyBudgetReportsExhaustion) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 3});
  pp::EngineOptions options;
  options.max_interactions = 3;
  for (const DenseMode mode : {DenseMode::kPerStep, DenseMode::kBatched}) {
    DenseEngine engine(*protocol, options, mode);
    DenseConfig config =
        DenseConfig::from_workload(*protocol, workload_of({500, 400, 300}));
    const pp::RunResult result = engine.run(config, 5);
    EXPECT_TRUE(result.budget_exhausted);
    EXPECT_FALSE(result.silent);
    EXPECT_EQ(result.interactions, 3u);
  }
}

TEST(DenseEngineTest, DeterministicPerSeed) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 3});
  for (const DenseMode mode : {DenseMode::kPerStep, DenseMode::kBatched}) {
    DenseEngine engine(*protocol, {}, mode);
    DenseConfig a =
        DenseConfig::from_workload(*protocol, workload_of({25, 20, 15}));
    DenseConfig b = a;
    const pp::RunResult ra = engine.run(a, 77);
    const pp::RunResult rb = engine.run(b, 77);
    EXPECT_EQ(a.counts, b.counts);
    EXPECT_EQ(ra.interactions, rb.interactions);
    EXPECT_EQ(ra.state_changes, rb.state_changes);
    EXPECT_EQ(ra.last_change_step, rb.last_change_step);
    EXPECT_EQ(ra.final_outputs, rb.final_outputs);
  }
}

TEST(DenseEngineTest, VirtualDispatchPathMatchesCompiledKernel) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 3});
  DenseEngine compiled(*protocol, {}, DenseMode::kBatched);
  DenseEngine virtual_path(*protocol, {}, DenseMode::kBatched,
                           /*use_kernel=*/false);
  EXPECT_NE(compiled.compiled(), nullptr);
  EXPECT_EQ(virtual_path.compiled(), nullptr);
  DenseConfig a =
      DenseConfig::from_workload(*protocol, workload_of({12, 9, 6}));
  DenseConfig b = a;
  const pp::RunResult ra = compiled.run(a, 321);
  const pp::RunResult rb = virtual_path.run(b, 321);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(ra.interactions, rb.interactions);
  EXPECT_EQ(ra.state_changes, rb.state_changes);
}

// --- cross-backend equivalence --------------------------------------------

/// Agent-array reference: run pp::Engine under the uniform scheduler and
/// return the final configuration as counts.
CountVector agent_final_counts(const pp::Protocol& protocol,
                               const analysis::Workload& workload,
                               std::uint64_t seed) {
  sim::TrialOptions options;
  options.seed = seed;
  std::unique_ptr<pp::Population> population;
  sim::run_trial_keep_population(protocol, workload, options, {}, {},
                                 &population);
  return DenseConfig::from_population(protocol, *population).counts;
}

CountVector dense_final_counts(const pp::Protocol& protocol,
                               const analysis::Workload& workload,
                               DenseMode mode, std::uint64_t seed) {
  DenseEngine engine(protocol, {}, mode);
  DenseConfig config = DenseConfig::from_workload(protocol, workload);
  const pp::RunResult result = engine.run(config, seed);
  EXPECT_TRUE(result.silent);
  return config.counts;
}

/// Exhaustive tiny-population check: for every workload with n <= 6 agents
/// over k <= 3 colors, both dense modes and the agent array land only in
/// configurations the BFS proves reachable-and-silent; and whenever that
/// set is a singleton (the generic circles case — Lemma 3.6 makes the
/// stable configuration schedule-independent), all backends land exactly
/// there.
TEST(DenseEquivalenceTest, ExhaustiveTinyPopulationsAgainstBfsAndAgentArray) {
  for (const std::uint32_t k : {2u, 3u}) {
    const auto protocol =
        sim::ProtocolRegistry::global().create("circles", {.k = k});
    std::vector<CountVector> workloads;
    // All count vectors over k colors with 2 <= n <= 6.
    const std::uint64_t max_n = 6;
    std::vector<std::uint64_t> counts(k, 0);
    const auto enumerate = [&](auto&& self, std::uint32_t color,
                               std::uint64_t remaining) -> void {
      if (color + 1 == k) {
        counts[color] = remaining;
        std::uint64_t total = 0;
        for (const auto c : counts) total += c;
        if (total >= 2) workloads.push_back(counts);
        return;
      }
      for (std::uint64_t c = 0; c <= remaining; ++c) {
        counts[color] = c;
        self(self, color + 1, remaining - c);
      }
    };
    for (std::uint64_t n = 2; n <= max_n; ++n) enumerate(enumerate, 0, n);

    for (const CountVector& w : workloads) {
      const analysis::Workload workload = workload_of(w);
      const DenseConfig initial =
          DenseConfig::from_workload(*protocol, workload);
      const auto silent_set =
          reachable_silent_configs(*protocol, initial.counts);
      ASSERT_FALSE(silent_set.empty());

      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const auto agent = agent_final_counts(*protocol, workload, seed);
        const auto per_step = dense_final_counts(*protocol, workload,
                                                 DenseMode::kPerStep, seed);
        const auto batched = dense_final_counts(*protocol, workload,
                                                DenseMode::kBatched, seed);
        EXPECT_TRUE(silent_set.count(agent))
            << "agent escaped the reachable-silent set, workload "
            << workload.to_string();
        EXPECT_TRUE(silent_set.count(per_step))
            << "dense escaped the reachable-silent set, workload "
            << workload.to_string();
        EXPECT_TRUE(silent_set.count(batched))
            << "dense_batched escaped the reachable-silent set, workload "
            << workload.to_string();
        if (silent_set.size() == 1) {
          EXPECT_EQ(agent, per_step);
          EXPECT_EQ(agent, batched);
        }
      }
    }
  }
}

/// Where several silent configurations are reachable (ties), all backends
/// must cover the same outcome set given enough seeds.
TEST(DenseEquivalenceTest, TiedWorkloadOutcomeSetsMatchAcrossBackends) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 2});
  const analysis::Workload workload = workload_of({2, 2});
  const DenseConfig initial = DenseConfig::from_workload(*protocol, workload);
  const auto silent_set = reachable_silent_configs(*protocol, initial.counts);
  ASSERT_GT(silent_set.size(), 1u);

  std::set<CountVector> agent_set, per_step_set, batched_set;
  for (std::uint64_t seed = 1; seed <= 80; ++seed) {
    agent_set.insert(agent_final_counts(*protocol, workload, seed));
    per_step_set.insert(
        dense_final_counts(*protocol, workload, DenseMode::kPerStep, seed));
    batched_set.insert(
        dense_final_counts(*protocol, workload, DenseMode::kBatched, seed));
  }
  EXPECT_EQ(agent_set, per_step_set);
  EXPECT_EQ(agent_set, batched_set);
  for (const auto& config : agent_set) {
    EXPECT_TRUE(silent_set.count(config));
  }
}

/// KS-style two-sample comparison of the stabilization-time distributions
/// at n = 1000: last_change_step has the same distribution on every backend
/// (the count process is an exact lumping of the agent process).
TEST(DenseEquivalenceTest, StabilizationTimeDistributionMatchesAtModerateN) {
  const std::uint32_t trials = 60;
  const auto run_backend = [&](sim::EngineKind backend) {
    sim::RunSpec spec;
    spec.protocol = "circles";
    spec.params.k = 3;
    spec.workload = sim::WorkloadSpec::explicit_counts({400, 350, 250});
    spec.backend = backend;
    spec.trials = trials;
    spec.seed = 20260728;  // same workload; schedule streams differ per seed
    const sim::SpecResult result = sim::BatchRunner().run_one(spec);
    EXPECT_EQ(result.silent, trials);
    std::vector<double> samples;
    for (const auto& trial : result.trials) {
      samples.push_back(
          static_cast<double>(trial.outcome.run.last_change_step));
    }
    std::sort(samples.begin(), samples.end());
    return samples;
  };
  const auto ks_distance = [](const std::vector<double>& a,
                              const std::vector<double>& b) {
    double d = 0.0;
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] <= b[j]) {
        ++i;
      } else {
        ++j;
      }
      d = std::max(d, std::abs(static_cast<double>(i) / a.size() -
                               static_cast<double>(j) / b.size()));
    }
    return d;
  };

  const auto agent = run_backend(sim::EngineKind::kAgentArray);
  const auto dense = run_backend(sim::EngineKind::kDense);
  const auto batched = run_backend(sim::EngineKind::kDenseBatched);

  // Critical value at alpha = 0.001 for two samples of 60:
  // 1.95 * sqrt(2/60) = 0.356. Fixed seeds make the test deterministic; the
  // observed distances are ~0.1.
  EXPECT_LT(ks_distance(agent, dense), 0.356);
  EXPECT_LT(ks_distance(agent, batched), 0.356);
  EXPECT_LT(ks_distance(dense, batched), 0.356);
}

// --- RunSpec/BatchRunner integration --------------------------------------

TEST(DenseBackendSpecTest, RejectsAgentLevelFeatures) {
  const sim::BatchRunner runner;
  sim::RunSpec base;
  base.protocol = "circles";
  base.params.k = 2;
  base.n = 10;
  base.backend = sim::EngineKind::kDense;

  auto with = [&](auto&& mutate) {
    sim::RunSpec spec = base;
    mutate(spec);
    return spec;
  };
  EXPECT_THROW(runner.run_one(with([](sim::RunSpec& s) {
                 s.circles_stats = true;
               })),
               std::invalid_argument);
  EXPECT_THROW(runner.run_one(with([](sim::RunSpec& s) {
                 s.track_used_states = true;
               })),
               std::invalid_argument);
  EXPECT_THROW(runner.run_one(with([](sim::RunSpec& s) {
                 s.reboot_faults = 1;
               })),
               std::invalid_argument);
  EXPECT_THROW(runner.run_one(with([](sim::RunSpec& s) {
                 s.chemical_time = true;
               })),
               std::invalid_argument);
  EXPECT_THROW(runner.run_one(with([](sim::RunSpec& s) {
                 s.scheduler = pp::SchedulerKind::kRoundRobin;
               })),
               std::invalid_argument);
  EXPECT_THROW(
      runner.run_one(with([](sim::RunSpec& s) {
        s.grader = [](const pp::Protocol&, const analysis::Workload&,
                      std::span<const pp::ColorId>, const pp::Population&,
                      const pp::RunResult&) { return true; };
      })),
      std::invalid_argument);
  EXPECT_THROW(runner.run_one(with([](sim::RunSpec& s) {
                 s.scheduler_factory = [](std::uint32_t n,
                                          std::uint64_t seed) {
                   return pp::make_scheduler(
                       pp::SchedulerKind::kUniformRandom, n, seed);
                 };
               })),
               std::invalid_argument);

  // The plain dense spec itself is fine.
  const sim::SpecResult ok = runner.run_one(base);
  EXPECT_EQ(ok.trial_count, 1u);
  EXPECT_EQ(ok.silent, 1u);
}

TEST(DenseBackendSpecTest, BatchRunnerGradesDenseTrialsLikeAgentTrials) {
  sim::RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 3;
  spec.workload = sim::WorkloadSpec::explicit_counts({8, 5, 3});
  spec.trials = 10;
  spec.seed = 99;
  for (const auto backend :
       {sim::EngineKind::kDense, sim::EngineKind::kDenseBatched}) {
    spec.backend = backend;
    const sim::SpecResult result = sim::BatchRunner().run_one(spec);
    EXPECT_EQ(result.correct, 10u) << sim::to_string(backend);
    EXPECT_EQ(result.silent, 10u);
    EXPECT_TRUE(result.all_correct());
  }
}

TEST(DenseBackendSpecTest, TieAwareGradingWorksOnDenseBackend) {
  sim::RunSpec spec;
  spec.protocol = "tie_report";
  spec.params.k = 2;
  spec.workload = sim::WorkloadSpec::explicit_counts({6, 6});
  spec.grading = sim::Grading::kTieAware;
  spec.backend = sim::EngineKind::kDenseBatched;
  spec.trials = 8;
  spec.seed = 5;
  const sim::SpecResult result = sim::BatchRunner().run_one(spec);
  EXPECT_EQ(result.correct, 8u);
}

}  // namespace
}  // namespace circles::dense
