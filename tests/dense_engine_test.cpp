#include "dense/dense_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <vector>

#include "dense/dense_config.hpp"
#include "dense/urn_config.hpp"
#include "obs/probe.hpp"
#include "obs/recorder.hpp"
#include "pp/schedulers/clustered.hpp"
#include "sim/sim.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace circles::dense {
namespace {

using CountVector = std::vector<std::uint64_t>;

analysis::Workload workload_of(CountVector counts) {
  analysis::Workload w;
  w.counts = std::move(counts);
  return w;
}

/// Exact silence on a count vector (the engine's active-pair criterion,
/// recomputed independently).
bool counts_silent(const pp::Protocol& protocol, const CountVector& counts) {
  for (pp::StateId s = 0; s < counts.size(); ++s) {
    if (counts[s] == 0) continue;
    for (pp::StateId t = 0; t < counts.size(); ++t) {
      if (counts[t] == 0 || (s == t && counts[s] < 2)) continue;
      const pp::Transition tr = protocol.transition(s, t);
      if (tr.initiator != s || tr.responder != t) return false;
    }
  }
  return true;
}

/// Exhaustive BFS over the count-configuration graph: every configuration
/// reachable from `initial`, and the subset that is silent. Tiny instances
/// only (n <= 6, small state spaces).
std::set<CountVector> reachable_silent_configs(const pp::Protocol& protocol,
                                               const CountVector& initial) {
  std::set<CountVector> seen{initial};
  std::vector<CountVector> frontier{initial};
  std::set<CountVector> silent;
  while (!frontier.empty()) {
    const CountVector config = std::move(frontier.back());
    frontier.pop_back();
    bool any_change = false;
    for (pp::StateId s = 0; s < config.size(); ++s) {
      if (config[s] == 0) continue;
      for (pp::StateId t = 0; t < config.size(); ++t) {
        if (config[t] == 0 || (s == t && config[s] < 2)) continue;
        const pp::Transition tr = protocol.transition(s, t);
        if (tr.initiator == s && tr.responder == t) continue;
        any_change = true;
        CountVector next = config;
        next[s] -= 1;
        next[t] -= 1;
        next[tr.initiator] += 1;
        next[tr.responder] += 1;
        if (seen.insert(next).second) frontier.push_back(std::move(next));
      }
    }
    if (!any_change) silent.insert(config);
  }
  return silent;
}

TEST(DenseConfigTest, FromWorkloadPlacesAgentsInInputStates) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 3});
  const auto workload = workload_of({3, 2, 1});
  const DenseConfig config = DenseConfig::from_workload(*protocol, workload);
  EXPECT_EQ(config.n(), 6u);
  EXPECT_EQ(config.num_states(), protocol->num_states());
  for (pp::ColorId c = 0; c < 3; ++c) {
    EXPECT_EQ(config.count(protocol->input(c)), workload.counts[c]);
  }
  EXPECT_EQ(config.present_states().size(), 3u);
  const auto histogram = config.output_histogram(*protocol);
  EXPECT_EQ(histogram, (CountVector{3, 2, 1}));
}

TEST(DenseConfigTest, FromPopulationMatchesAgentArray) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 2});
  const std::vector<pp::ColorId> colors = {0, 1, 1, 0, 1};
  pp::Population population(*protocol, colors);
  const DenseConfig config =
      DenseConfig::from_population(*protocol, population);
  EXPECT_EQ(config.n(), 5u);
  EXPECT_EQ(config.count(protocol->input(0)), 2u);
  EXPECT_EQ(config.count(protocol->input(1)), 3u);
}

TEST(DenseEngineTest, ReachesSilenceAndConservesPopulation) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 3});
  for (const DenseMode mode : {DenseMode::kPerStep, DenseMode::kBatched}) {
    DenseEngine engine(*protocol, {}, mode);
    DenseConfig config =
        DenseConfig::from_workload(*protocol, workload_of({40, 30, 20}));
    const pp::RunResult result = engine.run(config, 123);
    EXPECT_TRUE(result.silent);
    EXPECT_FALSE(result.budget_exhausted);
    EXPECT_EQ(config.n(), 90u);
    EXPECT_TRUE(counts_silent(*protocol, config.counts));
    // Exact silence detection: the run stops right after the final change.
    EXPECT_EQ(result.interactions, result.last_change_step + 1);
    // Silent consensus on the plurality winner (color 0).
    const auto histogram = config.output_histogram(*protocol);
    EXPECT_EQ(histogram[0], 90u);
  }
}

TEST(DenseEngineTest, AlreadySilentConfigurationStopsImmediately) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 2});
  for (const DenseMode mode : {DenseMode::kPerStep, DenseMode::kBatched}) {
    DenseEngine engine(*protocol, {}, mode);
    // All agents of one color: diagonal states, no pair changes anything.
    DenseConfig config =
        DenseConfig::from_workload(*protocol, workload_of({5, 0}));
    const pp::RunResult result = engine.run(config, 1);
    EXPECT_TRUE(result.silent);
    EXPECT_EQ(result.interactions, 0u);
    EXPECT_EQ(result.state_changes, 0u);
  }
}

TEST(DenseEngineTest, FixedBudgetRunsExactlyToBudget) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 3});
  pp::EngineOptions options;
  options.max_interactions = 5000;
  options.stop_when_silent = false;
  for (const DenseMode mode : {DenseMode::kPerStep, DenseMode::kBatched}) {
    DenseEngine engine(*protocol, options, mode);
    DenseConfig config =
        DenseConfig::from_workload(*protocol, workload_of({30, 20, 10}));
    const pp::RunResult result = engine.run(config, 9);
    EXPECT_EQ(result.interactions, 5000u);
    EXPECT_EQ(config.n(), 60u);
  }
}

TEST(DenseEngineTest, TinyBudgetReportsExhaustion) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 3});
  pp::EngineOptions options;
  options.max_interactions = 3;
  for (const DenseMode mode : {DenseMode::kPerStep, DenseMode::kBatched}) {
    DenseEngine engine(*protocol, options, mode);
    DenseConfig config =
        DenseConfig::from_workload(*protocol, workload_of({500, 400, 300}));
    const pp::RunResult result = engine.run(config, 5);
    EXPECT_TRUE(result.budget_exhausted);
    EXPECT_FALSE(result.silent);
    EXPECT_EQ(result.interactions, 3u);
  }
}

TEST(DenseEngineTest, DeterministicPerSeed) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 3});
  for (const DenseMode mode : {DenseMode::kPerStep, DenseMode::kBatched}) {
    DenseEngine engine(*protocol, {}, mode);
    DenseConfig a =
        DenseConfig::from_workload(*protocol, workload_of({25, 20, 15}));
    DenseConfig b = a;
    const pp::RunResult ra = engine.run(a, 77);
    const pp::RunResult rb = engine.run(b, 77);
    EXPECT_EQ(a.counts, b.counts);
    EXPECT_EQ(ra.interactions, rb.interactions);
    EXPECT_EQ(ra.state_changes, rb.state_changes);
    EXPECT_EQ(ra.last_change_step, rb.last_change_step);
    EXPECT_EQ(ra.final_outputs, rb.final_outputs);
  }
}

TEST(DenseEngineTest, VirtualDispatchPathMatchesCompiledKernel) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 3});
  DenseEngine compiled(*protocol, {}, DenseMode::kBatched);
  DenseEngine virtual_path(*protocol, {}, DenseMode::kBatched,
                           /*use_kernel=*/false);
  EXPECT_NE(compiled.compiled(), nullptr);
  EXPECT_EQ(virtual_path.compiled(), nullptr);
  DenseConfig a =
      DenseConfig::from_workload(*protocol, workload_of({12, 9, 6}));
  DenseConfig b = a;
  const pp::RunResult ra = compiled.run(a, 321);
  const pp::RunResult rb = virtual_path.run(b, 321);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(ra.interactions, rb.interactions);
  EXPECT_EQ(ra.state_changes, rb.state_changes);
}

// --- single-urn bitwise regression ----------------------------------------

/// The multi-urn refactor must leave single-urn runs on the exact historical
/// RNG stream. These goldens were captured from the pre-refactor engine
/// (PR 2/3 code) — interactions, state_changes, last_change_step and an
/// FNV-1a hash of the final count vector, per (workload, seed, mode).
TEST(DenseGoldenTest, SingleUrnStreamsMatchThePreRefactorEngine) {
  struct Golden {
    std::uint32_t k;
    CountVector counts;
    std::uint64_t seed;
    bool batched;
    std::uint64_t interactions;
    std::uint64_t state_changes;
    std::uint64_t last_change_step;
    std::uint64_t final_hash;
  };
  const std::vector<Golden> goldens{
      {3, {40, 30, 20}, 123ull, false, 4226ull, 203ull, 4225ull,
       0xe9f6ad22c0cb1cffull},
      {3, {40, 30, 20}, 123ull, true, 1769ull, 210ull, 1768ull,
       0xe9f6ad22c0cb1cffull},
      {3, {400, 350, 250}, 777ull, false, 73594ull, 3203ull, 73593ull,
       0x69d34e9a4a4821b9ull},
      {3, {400, 350, 250}, 777ull, true, 102155ull, 3134ull, 102154ull,
       0x69d34e9a4a4821b9ull},
      {2, {6, 5}, 9ull, false, 135ull, 18ull, 134ull,
       0x580ddf4a9b4b380aull},
      {2, {6, 5}, 9ull, true, 156ull, 22ull, 155ull, 0x580ddf4a9b4b380aull},
      {4, {2000, 1500, 900, 600}, 20260728ull, false, 338900ull, 12617ull,
       338899ull, 0x542d5bf6e303879bull},
      {4, {2000, 1500, 900, 600}, 20260728ull, true, 273285ull, 12981ull,
       273284ull, 0x542d5bf6e303879bull},
  };
  for (const Golden& g : goldens) {
    const auto protocol =
        sim::ProtocolRegistry::global().create("circles", {.k = g.k});
    const DenseMode mode = g.batched ? DenseMode::kBatched : DenseMode::kPerStep;
    DenseEngine engine(*protocol, {}, mode);
    DenseConfig config =
        DenseConfig::from_workload(*protocol, workload_of(g.counts));
    const pp::RunResult result = engine.run(config, g.seed);
    EXPECT_EQ(result.interactions, g.interactions) << "k=" << g.k;
    EXPECT_EQ(result.state_changes, g.state_changes) << "k=" << g.k;
    EXPECT_EQ(result.last_change_step, g.last_change_step) << "k=" << g.k;
    std::uint64_t hash = 1469598103934665603ull;
    for (const auto x : config.counts) hash = (hash ^ x) * 1099511628211ull;
    EXPECT_EQ(hash, g.final_hash) << "k=" << g.k;

    // A 1-urn UrnConfig on the same engine consumes the identical stream.
    UrnConfig urn = UrnConfig::from_dense(
        DenseConfig::from_workload(*protocol, workload_of(g.counts)));
    const pp::RunResult urn_result = engine.run(urn, g.seed);
    EXPECT_EQ(urn_result.interactions, g.interactions);
    EXPECT_EQ(urn_result.state_changes, g.state_changes);
    EXPECT_EQ(urn.aggregate().counts, config.counts);
  }
}

// --- urn configurations ----------------------------------------------------

TEST(UrnConfigTest, FromWorkloadDealsEveryAgentExactlyOnce) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 3});
  const analysis::Workload workload = workload_of({50, 30, 20});
  const std::vector<std::uint64_t> sizes{60, 25, 15};
  util::Rng rng(5);
  const UrnConfig config =
      UrnConfig::from_workload(*protocol, workload, sizes, rng);
  ASSERT_EQ(config.num_urns(), 3u);
  EXPECT_EQ(config.n(), 100u);
  EXPECT_EQ(config.sizes(), sizes);
  // The aggregate is exactly the unpartitioned initial configuration.
  EXPECT_EQ(config.aggregate(),
            DenseConfig::from_workload(*protocol, workload));
  EXPECT_EQ(config.output_histogram(*protocol), workload.counts);
}

TEST(UrnConfigTest, FromWorkloadSplitIsHypergeometric) {
  // Mean of urn 0's color-0 count across many deals must match the
  // hypergeometric mean size0 * c0 / n.
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 2});
  const analysis::Workload workload = workload_of({30, 20});
  util::Rng rng(11);
  double sum = 0.0;
  const int kDeals = 4000;
  for (int i = 0; i < kDeals; ++i) {
    const UrnConfig config =
        UrnConfig::from_workload(*protocol, workload, {{20, 30}}, rng);
    sum += static_cast<double>(config.urns[0][protocol->input(0)]);
  }
  EXPECT_NEAR(sum / kDeals, 20.0 * 30.0 / 50.0, 0.25);
}

TEST(UrnConfigTest, FromPopulationPartitionsByIdRanges) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 2});
  const std::vector<pp::ColorId> colors = {0, 1, 1, 0, 1};
  pp::Population population(*protocol, colors);
  const UrnConfig config =
      UrnConfig::from_population(*protocol, population, {{2, 3}});
  ASSERT_EQ(config.num_urns(), 2u);
  EXPECT_EQ(config.urns[0][protocol->input(0)], 1u);
  EXPECT_EQ(config.urns[0][protocol->input(1)], 1u);
  EXPECT_EQ(config.urns[1][protocol->input(0)], 1u);
  EXPECT_EQ(config.urns[1][protocol->input(1)], 2u);
}

// --- multi-urn engine basics -----------------------------------------------

namespace urn_harness {

pp::UrnLumping dumbbell(std::vector<std::uint64_t> sizes, double bridge) {
  pp::ClusteredOptions options;
  options.sizes = std::move(sizes);
  options.bridge_probability = bridge;
  std::uint64_t n = 0;
  for (const auto s : options.sizes) n += s;
  return pp::clustered_lumping(n, options);
}

}  // namespace urn_harness

TEST(UrnEngineTest, ReachesSilenceExactlyAndConservesUrnSizes) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 3});
  const auto lumping = urn_harness::dumbbell({60, 40}, 0.05);
  for (const DenseMode mode : {DenseMode::kPerStep, DenseMode::kBatched}) {
    DenseEngine engine(*protocol, {}, mode, /*use_kernel=*/true, lumping);
    util::Rng rng(3);
    UrnConfig config = UrnConfig::from_workload(
        *protocol, workload_of({50, 30, 20}), lumping.sizes, rng);
    const pp::RunResult result = engine.run(config, 99);
    EXPECT_TRUE(result.silent);
    EXPECT_FALSE(result.budget_exhausted);
    EXPECT_EQ(config.sizes(), lumping.sizes);
    // Exact silence detection: the run stops right after the final change.
    EXPECT_EQ(result.interactions, result.last_change_step + 1);
    // Silent consensus on the plurality winner (color 0).
    EXPECT_EQ(config.output_histogram(*protocol)[0], 100u);
  }
}

TEST(UrnEngineTest, DeterministicPerSeedAndAcrossKernelPaths) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 3});
  const auto lumping = urn_harness::dumbbell({30, 20, 10}, 0.1);
  for (const DenseMode mode : {DenseMode::kPerStep, DenseMode::kBatched}) {
    DenseEngine compiled(*protocol, {}, mode, /*use_kernel=*/true, lumping);
    DenseEngine virtual_path(*protocol, {}, mode, /*use_kernel=*/false,
                             lumping);
    util::Rng rng(8);
    const UrnConfig initial = UrnConfig::from_workload(
        *protocol, workload_of({25, 20, 15}), lumping.sizes, rng);
    UrnConfig a = initial, b = initial, c = initial;
    const pp::RunResult ra = compiled.run(a, 41);
    const pp::RunResult rb = compiled.run(b, 41);
    const pp::RunResult rc = virtual_path.run(c, 41);
    EXPECT_EQ(a, b);
    EXPECT_EQ(ra.interactions, rb.interactions);
    EXPECT_EQ(ra.state_changes, rb.state_changes);
    EXPECT_EQ(ra.last_change_step, rb.last_change_step);
    // Kernel on/off is bitwise identical, multi-urn included.
    EXPECT_EQ(a, c);
    EXPECT_EQ(ra.interactions, rc.interactions);
    EXPECT_EQ(ra.state_changes, rc.state_changes);
  }
}

TEST(UrnEngineTest, BudgetExhaustionReportedExactly) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 3});
  const auto lumping = urn_harness::dumbbell({300, 300}, 0.01);
  pp::EngineOptions options;
  options.max_interactions = 4000;
  for (const DenseMode mode : {DenseMode::kPerStep, DenseMode::kBatched}) {
    DenseEngine engine(*protocol, options, mode, true, lumping);
    util::Rng rng(2);
    UrnConfig config = UrnConfig::from_workload(
        *protocol, workload_of({300, 200, 100}), lumping.sizes, rng);
    const pp::RunResult result = engine.run(config, 7);
    EXPECT_TRUE(result.budget_exhausted);
    EXPECT_EQ(result.interactions, 4000u);
    EXPECT_EQ(config.n(), 600u);
  }
}

TEST(UrnEngineTest, RejectsMismatchedConfigurations) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 2});
  const auto lumping = urn_harness::dumbbell({6, 4}, 0.2);
  DenseEngine engine(*protocol, {}, DenseMode::kPerStep, true, lumping);
  // DenseConfig on a multi-urn engine.
  DenseConfig dense = DenseConfig::from_workload(*protocol, workload_of({6, 4}));
  EXPECT_DEATH((void)engine.run(dense, 1), "multi-urn");
  // Wrong urn count.
  UrnConfig one = UrnConfig::from_dense(
      DenseConfig::from_workload(*protocol, workload_of({6, 4})));
  EXPECT_DEATH((void)engine.run(one, 1), "urn");
  // Wrong per-urn sizes.
  util::Rng rng(1);
  UrnConfig swapped = UrnConfig::from_workload(*protocol, workload_of({6, 4}),
                                               {{4, 6}}, rng);
  EXPECT_DEATH((void)engine.run(swapped, 1), "lumping");
}

// --- multi-urn cross-backend equivalence -----------------------------------

namespace urn_harness {

using UrnCounts = std::vector<CountVector>;

/// Exhaustive BFS over the per-urn count-configuration graph under a
/// lumping's positive-rate blocks; returns the reachable silent subset.
std::set<UrnCounts> reachable_silent_urn_configs(const pp::Protocol& protocol,
                                                 const pp::UrnLumping& lumping,
                                                 const UrnCounts& initial) {
  const std::size_t u_count = lumping.num_urns();
  std::set<UrnCounts> seen{initial};
  std::vector<UrnCounts> frontier{initial};
  std::set<UrnCounts> silent;
  while (!frontier.empty()) {
    const UrnCounts config = std::move(frontier.back());
    frontier.pop_back();
    bool any_change = false;
    for (std::size_t u = 0; u < u_count; ++u) {
      for (std::size_t v = 0; v < u_count; ++v) {
        if (lumping.rate(u, v) <= 0.0) continue;
        for (pp::StateId s = 0; s < config[u].size(); ++s) {
          if (config[u][s] == 0) continue;
          for (pp::StateId t = 0; t < config[v].size(); ++t) {
            if (config[v][t] == 0 ||
                (u == v && s == t && config[u][s] < 2)) {
              continue;
            }
            const pp::Transition tr = protocol.transition(s, t);
            if (tr.initiator == s && tr.responder == t) continue;
            any_change = true;
            UrnCounts next = config;
            next[u][s] -= 1;
            next[v][t] -= 1;
            next[u][tr.initiator] += 1;
            next[v][tr.responder] += 1;
            if (seen.insert(next).second) frontier.push_back(std::move(next));
          }
        }
      }
    }
    if (!any_change) silent.insert(config);
  }
  return silent;
}

/// Agent-array reference with the clustered scheduler from a fixed initial
/// split: colors laid out so id range u holds exactly initial[u].
UrnCounts agent_clustered_final(const pp::Protocol& protocol,
                                const pp::UrnLumping& lumping,
                                const UrnCounts& initial_colors_by_urn,
                                std::uint64_t seed) {
  std::vector<pp::ColorId> colors;
  for (const CountVector& urn : initial_colors_by_urn) {
    for (pp::ColorId c = 0; c < urn.size(); ++c) {
      for (std::uint64_t i = 0; i < urn[c]; ++i) colors.push_back(c);
    }
  }
  pp::Population population(protocol, colors);
  pp::ClusteredScheduler scheduler(lumping, seed);
  pp::Engine engine;
  const pp::RunResult result = engine.run(protocol, population, scheduler);
  EXPECT_TRUE(result.silent);
  return dense::UrnConfig::from_population(protocol, population,
                                           lumping.sizes)
      .urns;
}

/// Urn-engine run from the same fixed initial split.
UrnCounts urn_engine_final(const pp::Protocol& protocol,
                           const pp::UrnLumping& lumping,
                           const UrnCounts& initial_colors_by_urn,
                           DenseMode mode, std::uint64_t seed) {
  dense::UrnConfig config;
  config.urns.assign(lumping.num_urns(),
                     CountVector(protocol.num_states(), 0));
  for (std::size_t u = 0; u < initial_colors_by_urn.size(); ++u) {
    for (pp::ColorId c = 0; c < initial_colors_by_urn[u].size(); ++c) {
      config.urns[u][protocol.input(c)] += initial_colors_by_urn[u][c];
    }
  }
  DenseEngine engine(protocol, {}, mode, true, lumping);
  const pp::RunResult result = engine.run(config, seed);
  EXPECT_TRUE(result.silent);
  return config.urns;
}

/// Initial per-urn state counts from per-urn color counts.
UrnCounts states_of(const pp::Protocol& protocol,
                    const UrnCounts& colors_by_urn) {
  UrnCounts out(colors_by_urn.size(), CountVector(protocol.num_states(), 0));
  for (std::size_t u = 0; u < colors_by_urn.size(); ++u) {
    for (pp::ColorId c = 0; c < colors_by_urn[u].size(); ++c) {
      out[u][protocol.input(c)] += colors_by_urn[u][c];
    }
  }
  return out;
}

}  // namespace urn_harness

/// Exhaustive tiny-population check against the clustered scheduler: for
/// every per-urn color split with 2+2 <= n <= 3+3 agents over k <= 3 colors,
/// both urn modes and the agent array (driven by the generalized
/// ClusteredScheduler) land only in configurations the BFS over the lumped
/// block structure proves reachable-and-silent; whenever that set is a
/// singleton, all backends land exactly there.
TEST(UrnEquivalenceTest, ExhaustiveTinySplitsAgainstBfsAndAgentArray) {
  using urn_harness::UrnCounts;
  for (const std::uint32_t k : {2u, 3u}) {
    const auto protocol =
        sim::ProtocolRegistry::global().create("circles", {.k = k});
    for (const std::uint64_t half : {2ull, 3ull}) {
      const auto lumping = urn_harness::dumbbell({half, half}, 0.25);
      // Enumerate all per-urn color splits with `half` agents per urn.
      std::vector<CountVector> urn_fills;
      CountVector fill(k, 0);
      const auto enumerate = [&](auto&& self, std::uint32_t color,
                                 std::uint64_t remaining) -> void {
        if (color + 1 == k) {
          fill[color] = remaining;
          urn_fills.push_back(fill);
          return;
        }
        for (std::uint64_t c = 0; c <= remaining; ++c) {
          fill[color] = c;
          self(self, color + 1, remaining - c);
        }
      };
      enumerate(enumerate, 0, half);

      for (std::size_t a = 0; a < urn_fills.size(); ++a) {
        for (std::size_t b = 0; b < urn_fills.size(); ++b) {
          const UrnCounts initial{urn_fills[a], urn_fills[b]};
          const auto silent_set = urn_harness::reachable_silent_urn_configs(
              *protocol, lumping,
              urn_harness::states_of(*protocol, initial));
          ASSERT_FALSE(silent_set.empty());
          for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            const auto agent = urn_harness::agent_clustered_final(
                *protocol, lumping, initial, seed);
            const auto per_step = urn_harness::urn_engine_final(
                *protocol, lumping, initial, DenseMode::kPerStep, seed);
            const auto batched = urn_harness::urn_engine_final(
                *protocol, lumping, initial, DenseMode::kBatched, seed);
            EXPECT_TRUE(silent_set.count(agent))
                << "agent escaped the reachable-silent set";
            EXPECT_TRUE(silent_set.count(per_step))
                << "urn per-step escaped the reachable-silent set";
            EXPECT_TRUE(silent_set.count(batched))
                << "urn batched escaped the reachable-silent set";
            if (silent_set.size() == 1) {
              EXPECT_EQ(agent, per_step);
              EXPECT_EQ(agent, batched);
            }
          }
        }
      }
    }
  }
}

/// Where several silent configurations are reachable, agent and urn
/// backends must cover the same outcome set from one fixed initial split.
TEST(UrnEquivalenceTest, TiedSplitOutcomeSetsMatchAcrossBackends) {
  using urn_harness::UrnCounts;
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 2});
  const auto lumping = urn_harness::dumbbell({2, 2}, 0.3);
  const UrnCounts initial{{1, 1}, {1, 1}};  // 2-2 tie split across the urns
  const auto silent_set = urn_harness::reachable_silent_urn_configs(
      *protocol, lumping, urn_harness::states_of(*protocol, initial));
  ASSERT_GT(silent_set.size(), 1u);

  std::set<UrnCounts> agent_set, per_step_set, batched_set;
  // Enough fixed seeds to cover the full outcome support on every backend
  // (the rarest silent configuration has probability ~1%).
  for (std::uint64_t seed = 1; seed <= 600; ++seed) {
    agent_set.insert(urn_harness::agent_clustered_final(*protocol, lumping,
                                                        initial, seed));
    per_step_set.insert(urn_harness::urn_engine_final(
        *protocol, lumping, initial, DenseMode::kPerStep, seed));
    batched_set.insert(urn_harness::urn_engine_final(
        *protocol, lumping, initial, DenseMode::kBatched, seed));
  }
  EXPECT_EQ(agent_set, per_step_set);
  EXPECT_EQ(agent_set, batched_set);
  for (const auto& config : agent_set) {
    EXPECT_TRUE(silent_set.count(config));
  }
}

/// KS-style two-sample comparison of the stabilization-time distributions
/// at n = 1000 under the clustered scheduler: last_change_step has the same
/// distribution on every backend (the per-urn count process is an exact
/// lumping of the clustered agent process).
TEST(UrnEquivalenceTest, ClusteredStabilizationDistributionMatchesAtModerateN) {
  const std::uint32_t trials = 60;
  const auto run_backend = [&](sim::EngineKind backend) {
    sim::RunSpec spec;
    spec.protocol = "circles";
    spec.params.k = 3;
    spec.workload = sim::WorkloadSpec::explicit_counts({400, 350, 250});
    spec.scheduler = pp::SchedulerKind::kClustered;
    spec.clusters = 2;
    spec.bridge = 0.02;
    spec.backend = backend;
    spec.trials = trials;
    spec.seed = 20260728;
    const sim::SpecResult result = sim::BatchRunner().run_one(spec);
    EXPECT_EQ(result.silent, trials);
    std::vector<double> samples;
    for (const auto& trial : result.trials) {
      samples.push_back(
          static_cast<double>(trial.outcome.run.last_change_step));
    }
    std::sort(samples.begin(), samples.end());
    return samples;
  };
  const auto agent = run_backend(sim::EngineKind::kAgentArray);
  const auto dense = run_backend(sim::EngineKind::kDense);
  const auto batched = run_backend(sim::EngineKind::kDenseBatched);

  // Critical value at alpha = 0.001 for two samples of 60:
  // 1.95 * sqrt(2/60) = 0.356. Fixed seeds make the test deterministic; the
  // observed distances are ~0.1.
  EXPECT_LT(util::ks_distance(agent, dense), 0.356);
  EXPECT_LT(util::ks_distance(agent, batched), 0.356);
  EXPECT_LT(util::ks_distance(dense, batched), 0.356);
}

// --- per-urn snapshots ------------------------------------------------------

namespace {

/// Captures the per-urn count matrix at every sample.
class UrnCaptureProbe final : public obs::Probe {
 public:
  void on_sample(const obs::Snapshot& snapshot) override {
    samples += 1;
    last_counts.assign(snapshot.counts.begin(), snapshot.counts.end());
    last_urns.clear();
    for (const auto& urn : snapshot.urns) {
      last_urns.emplace_back(urn.begin(), urn.end());
    }
    if (snapshot.ctx != nullptr) {
      urn_sizes.assign(snapshot.ctx->urn_sizes.begin(),
                       snapshot.ctx->urn_sizes.end());
    }
  }
  int samples = 0;
  CountVector last_counts;
  std::vector<CountVector> last_urns;
  CountVector urn_sizes;
};

}  // namespace

TEST(UrnSnapshotTest, ProbesSeePerUrnCountsNextToTheAggregate) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 3});
  const auto lumping = urn_harness::dumbbell({60, 40}, 0.05);
  for (const DenseMode mode : {DenseMode::kPerStep, DenseMode::kBatched}) {
    DenseEngine engine(*protocol, {}, mode, true, lumping);
    util::Rng rng(4);
    UrnConfig config = UrnConfig::from_workload(
        *protocol, workload_of({50, 30, 20}), lumping.sizes, rng);

    UrnCaptureProbe probe;
    obs::Recorder recorder({.interaction_horizon = 1u << 20});
    recorder.add(&probe, obs::GridSpec{.points = 32});
    const pp::RunResult result = engine.run(config, 12, &recorder);
    EXPECT_TRUE(result.silent);
    EXPECT_GT(probe.samples, 1);
    EXPECT_EQ(probe.urn_sizes, lumping.sizes);
    ASSERT_EQ(probe.last_urns.size(), 2u);
    // The per-urn matrix matches the final configuration and sums to the
    // aggregate the probe saw in snapshot.counts.
    EXPECT_EQ(probe.last_urns, config.urns);
    CountVector sum(protocol->num_states(), 0);
    for (const auto& urn : probe.last_urns) {
      for (std::size_t s = 0; s < urn.size(); ++s) sum[s] += urn[s];
    }
    EXPECT_EQ(sum, probe.last_counts);
  }

  // Single-urn hosts expose no partition (aggregate only).
  DenseEngine single(*protocol, {}, DenseMode::kPerStep);
  DenseConfig dense =
      DenseConfig::from_workload(*protocol, workload_of({20, 15, 10}));
  UrnCaptureProbe probe;
  obs::Recorder recorder({.interaction_horizon = 1u << 20});
  recorder.add(&probe, obs::GridSpec{.points = 16});
  (void)single.run(dense, 3, &recorder);
  EXPECT_GT(probe.samples, 1);
  EXPECT_TRUE(probe.last_urns.empty());
  EXPECT_TRUE(probe.urn_sizes.empty());
}

// --- backend=auto dispatch --------------------------------------------------

TEST(AutoBackendTest, ResolvesFromSchedulerSizeAndFeatures) {
  const auto resolve = [](auto&& mutate) {
    sim::RunSpec spec;
    spec.protocol = "circles";
    spec.params.k = 2;
    spec.n = 500;
    spec.backend = sim::EngineKind::kAuto;
    spec.trials = 1;
    spec.seed = 1;
    spec.engine.max_interactions = 50000;
    spec.engine.stop_when_silent = true;
    mutate(spec);
    const sim::SpecResult result = sim::BatchRunner().run_one(spec);
    // The requested spec is preserved; the resolution is reported apart.
    EXPECT_EQ(result.spec.backend, sim::EngineKind::kAuto);
    return result.backend_resolved;
  };

  // Lumpable + moderate n -> dense per-step.
  EXPECT_EQ(resolve([](sim::RunSpec&) {}), sim::EngineKind::kDense);
  // Large n -> batched; clustered is lumpable too.
  EXPECT_EQ(resolve([](sim::RunSpec& s) { s.n = 10000; }),
            sim::EngineKind::kDenseBatched);
  EXPECT_EQ(resolve([](sim::RunSpec& s) {
              s.n = 10000;
              s.scheduler = pp::SchedulerKind::kClustered;
            }),
            sim::EngineKind::kDenseBatched);
  // Huge n -> fluid (mean-field integration; cost independent of n). The
  // threshold is inclusive, and clustered lumpings ride the same tier.
  EXPECT_EQ(resolve([](sim::RunSpec& s) { s.n = sim::kAutoFluidMinN; }),
            sim::EngineKind::kFluid);
  EXPECT_EQ(resolve([](sim::RunSpec& s) {
              s.n = sim::kAutoFluidMinN;
              s.scheduler = pp::SchedulerKind::kClustered;
            }),
            sim::EngineKind::kFluid);
  EXPECT_EQ(resolve([](sim::RunSpec& s) { s.n = sim::kAutoFluidMinN - 1; }),
            sim::EngineKind::kDenseBatched);
  // Tiny n -> agent.
  EXPECT_EQ(resolve([](sim::RunSpec& s) { s.n = 16; }),
            sim::EngineKind::kAgentArray);
  // Non-lumpable scheduler -> agent (no error).
  EXPECT_EQ(resolve([](sim::RunSpec& s) {
              s.scheduler = pp::SchedulerKind::kRoundRobin;
            }),
            sim::EngineKind::kAgentArray);
  // Agent-only features -> agent (no error).
  EXPECT_EQ(resolve([](sim::RunSpec& s) { s.circles_stats = true; }),
            sim::EngineKind::kAgentArray);
  EXPECT_EQ(resolve([](sim::RunSpec& s) { s.track_used_states = true; }),
            sim::EngineKind::kAgentArray);
  EXPECT_EQ(resolve([](sim::RunSpec& s) {
              s.scheduler_factory = [](std::uint32_t n, std::uint64_t seed) {
                return pp::make_scheduler(pp::SchedulerKind::kUniformRandom,
                                          n, seed);
              };
            }),
            sim::EngineKind::kAgentArray);

  // More states than agents -> the count vector is the bigger object; stay
  // on the agent array.
  const auto big = sim::ProtocolRegistry::global().create("circles",
                                                          {.k = 8});
  ASSERT_GT(big->num_states(), 200u);
  EXPECT_EQ(resolve([&](sim::RunSpec& s) {
              s.params.k = 8;
              s.n = 200;
            }),
            sim::EngineKind::kAgentArray);
}

TEST(AutoBackendTest, ExplicitBackendsReportThemselves) {
  sim::RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 2;
  spec.n = 40;
  spec.trials = 1;
  spec.backend = sim::EngineKind::kDense;
  const sim::SpecResult result = sim::BatchRunner().run_one(spec);
  EXPECT_EQ(result.backend_resolved, sim::EngineKind::kDense);
}

// --- cross-backend equivalence --------------------------------------------

/// Agent-array reference: run pp::Engine under the uniform scheduler and
/// return the final configuration as counts.
CountVector agent_final_counts(const pp::Protocol& protocol,
                               const analysis::Workload& workload,
                               std::uint64_t seed) {
  sim::TrialOptions options;
  options.seed = seed;
  std::unique_ptr<pp::Population> population;
  sim::run_trial_keep_population(protocol, workload, options, {}, {},
                                 &population);
  return DenseConfig::from_population(protocol, *population).counts;
}

CountVector dense_final_counts(const pp::Protocol& protocol,
                               const analysis::Workload& workload,
                               DenseMode mode, std::uint64_t seed) {
  DenseEngine engine(protocol, {}, mode);
  DenseConfig config = DenseConfig::from_workload(protocol, workload);
  const pp::RunResult result = engine.run(config, seed);
  EXPECT_TRUE(result.silent);
  return config.counts;
}

/// Exhaustive tiny-population check: for every workload with n <= 6 agents
/// over k <= 3 colors, both dense modes and the agent array land only in
/// configurations the BFS proves reachable-and-silent; and whenever that
/// set is a singleton (the generic circles case — Lemma 3.6 makes the
/// stable configuration schedule-independent), all backends land exactly
/// there.
TEST(DenseEquivalenceTest, ExhaustiveTinyPopulationsAgainstBfsAndAgentArray) {
  for (const std::uint32_t k : {2u, 3u}) {
    const auto protocol =
        sim::ProtocolRegistry::global().create("circles", {.k = k});
    std::vector<CountVector> workloads;
    // All count vectors over k colors with 2 <= n <= 6.
    const std::uint64_t max_n = 6;
    std::vector<std::uint64_t> counts(k, 0);
    const auto enumerate = [&](auto&& self, std::uint32_t color,
                               std::uint64_t remaining) -> void {
      if (color + 1 == k) {
        counts[color] = remaining;
        std::uint64_t total = 0;
        for (const auto c : counts) total += c;
        if (total >= 2) workloads.push_back(counts);
        return;
      }
      for (std::uint64_t c = 0; c <= remaining; ++c) {
        counts[color] = c;
        self(self, color + 1, remaining - c);
      }
    };
    for (std::uint64_t n = 2; n <= max_n; ++n) enumerate(enumerate, 0, n);

    for (const CountVector& w : workloads) {
      const analysis::Workload workload = workload_of(w);
      const DenseConfig initial =
          DenseConfig::from_workload(*protocol, workload);
      const auto silent_set =
          reachable_silent_configs(*protocol, initial.counts);
      ASSERT_FALSE(silent_set.empty());

      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const auto agent = agent_final_counts(*protocol, workload, seed);
        const auto per_step = dense_final_counts(*protocol, workload,
                                                 DenseMode::kPerStep, seed);
        const auto batched = dense_final_counts(*protocol, workload,
                                                DenseMode::kBatched, seed);
        EXPECT_TRUE(silent_set.count(agent))
            << "agent escaped the reachable-silent set, workload "
            << workload.to_string();
        EXPECT_TRUE(silent_set.count(per_step))
            << "dense escaped the reachable-silent set, workload "
            << workload.to_string();
        EXPECT_TRUE(silent_set.count(batched))
            << "dense_batched escaped the reachable-silent set, workload "
            << workload.to_string();
        if (silent_set.size() == 1) {
          EXPECT_EQ(agent, per_step);
          EXPECT_EQ(agent, batched);
        }
      }
    }
  }
}

/// Where several silent configurations are reachable (ties), all backends
/// must cover the same outcome set given enough seeds.
TEST(DenseEquivalenceTest, TiedWorkloadOutcomeSetsMatchAcrossBackends) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 2});
  const analysis::Workload workload = workload_of({2, 2});
  const DenseConfig initial = DenseConfig::from_workload(*protocol, workload);
  const auto silent_set = reachable_silent_configs(*protocol, initial.counts);
  ASSERT_GT(silent_set.size(), 1u);

  std::set<CountVector> agent_set, per_step_set, batched_set;
  for (std::uint64_t seed = 1; seed <= 80; ++seed) {
    agent_set.insert(agent_final_counts(*protocol, workload, seed));
    per_step_set.insert(
        dense_final_counts(*protocol, workload, DenseMode::kPerStep, seed));
    batched_set.insert(
        dense_final_counts(*protocol, workload, DenseMode::kBatched, seed));
  }
  EXPECT_EQ(agent_set, per_step_set);
  EXPECT_EQ(agent_set, batched_set);
  for (const auto& config : agent_set) {
    EXPECT_TRUE(silent_set.count(config));
  }
}

/// KS-style two-sample comparison of the stabilization-time distributions
/// at n = 1000: last_change_step has the same distribution on every backend
/// (the count process is an exact lumping of the agent process).
TEST(DenseEquivalenceTest, StabilizationTimeDistributionMatchesAtModerateN) {
  const std::uint32_t trials = 60;
  const auto run_backend = [&](sim::EngineKind backend) {
    sim::RunSpec spec;
    spec.protocol = "circles";
    spec.params.k = 3;
    spec.workload = sim::WorkloadSpec::explicit_counts({400, 350, 250});
    spec.backend = backend;
    spec.trials = trials;
    spec.seed = 20260728;  // same workload; schedule streams differ per seed
    const sim::SpecResult result = sim::BatchRunner().run_one(spec);
    EXPECT_EQ(result.silent, trials);
    std::vector<double> samples;
    for (const auto& trial : result.trials) {
      samples.push_back(
          static_cast<double>(trial.outcome.run.last_change_step));
    }
    std::sort(samples.begin(), samples.end());
    return samples;
  };
  const auto agent = run_backend(sim::EngineKind::kAgentArray);
  const auto dense = run_backend(sim::EngineKind::kDense);
  const auto batched = run_backend(sim::EngineKind::kDenseBatched);

  // Critical value at alpha = 0.001 for two samples of 60:
  // 1.95 * sqrt(2/60) = 0.356. Fixed seeds make the test deterministic; the
  // observed distances are ~0.1.
  EXPECT_LT(util::ks_distance(agent, dense), 0.356);
  EXPECT_LT(util::ks_distance(agent, batched), 0.356);
  EXPECT_LT(util::ks_distance(dense, batched), 0.356);
}

// --- RunSpec/BatchRunner integration --------------------------------------

TEST(DenseBackendSpecTest, RejectsAgentLevelFeatures) {
  const sim::BatchRunner runner;
  sim::RunSpec base;
  base.protocol = "circles";
  base.params.k = 2;
  base.n = 10;
  base.backend = sim::EngineKind::kDense;

  auto with = [&](auto&& mutate) {
    sim::RunSpec spec = base;
    mutate(spec);
    return spec;
  };
  EXPECT_THROW(runner.run_one(with([](sim::RunSpec& s) {
                 s.circles_stats = true;
               })),
               std::invalid_argument);
  EXPECT_THROW(runner.run_one(with([](sim::RunSpec& s) {
                 s.track_used_states = true;
               })),
               std::invalid_argument);
  EXPECT_THROW(runner.run_one(with([](sim::RunSpec& s) {
                 s.reboot_faults = 1;
               })),
               std::invalid_argument);
  EXPECT_THROW(runner.run_one(with([](sim::RunSpec& s) {
                 s.chemical_time = true;
               })),
               std::invalid_argument);
  EXPECT_THROW(runner.run_one(with([](sim::RunSpec& s) {
                 s.scheduler = pp::SchedulerKind::kRoundRobin;
               })),
               std::invalid_argument);
  EXPECT_THROW(
      runner.run_one(with([](sim::RunSpec& s) {
        s.grader = [](const pp::Protocol&, const analysis::Workload&,
                      std::span<const pp::ColorId>, const pp::Population&,
                      const pp::RunResult&) { return true; };
      })),
      std::invalid_argument);
  EXPECT_THROW(runner.run_one(with([](sim::RunSpec& s) {
                 s.scheduler_factory = [](std::uint32_t n,
                                          std::uint64_t seed) {
                   return pp::make_scheduler(
                       pp::SchedulerKind::kUniformRandom, n, seed);
                 };
               })),
               std::invalid_argument);

  // The plain dense spec itself is fine.
  const sim::SpecResult ok = runner.run_one(base);
  EXPECT_EQ(ok.trial_count, 1u);
  EXPECT_EQ(ok.silent, 1u);
}

TEST(DenseBackendSpecTest, NonLumpableRejectionNamesSchedulerAndAuto) {
  sim::RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 2;
  spec.n = 10;
  spec.backend = sim::EngineKind::kDense;
  spec.scheduler = pp::SchedulerKind::kRoundRobin;
  try {
    (void)sim::BatchRunner().run_one(spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("round_robin"), std::string::npos) << message;
    EXPECT_NE(message.find("backend=auto"), std::string::npos) << message;
    EXPECT_NE(message.find("lumping"), std::string::npos) << message;
  }
}

TEST(DenseBackendSpecTest, ClusterShapeRequiresClusteredScheduler) {
  sim::RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 2;
  spec.n = 10;
  spec.clusters = 3;
  EXPECT_THROW((void)sim::BatchRunner().run_one(spec), std::invalid_argument);
  spec.clusters = 0;
  spec.cluster_sizes = {5, 5};
  EXPECT_THROW((void)sim::BatchRunner().run_one(spec), std::invalid_argument);
}

TEST(DenseBackendSpecTest, BatchRunnerGradesClusteredDenseTrials) {
  sim::RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 3;
  spec.workload = sim::WorkloadSpec::explicit_counts({30, 20, 10});
  spec.scheduler = pp::SchedulerKind::kClustered;
  spec.cluster_sizes = {40, 12, 8};
  spec.bridge = 0.1;
  spec.trials = 10;
  spec.seed = 321;
  for (const auto backend :
       {sim::EngineKind::kDense, sim::EngineKind::kDenseBatched}) {
    spec.backend = backend;
    const sim::SpecResult result = sim::BatchRunner().run_one(spec);
    EXPECT_EQ(result.correct, 10u) << sim::to_string(backend);
    EXPECT_EQ(result.silent, 10u);
    EXPECT_TRUE(result.all_correct());
  }
}

TEST(DenseBackendSpecTest, BatchRunnerGradesDenseTrialsLikeAgentTrials) {
  sim::RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 3;
  spec.workload = sim::WorkloadSpec::explicit_counts({8, 5, 3});
  spec.trials = 10;
  spec.seed = 99;
  for (const auto backend :
       {sim::EngineKind::kDense, sim::EngineKind::kDenseBatched}) {
    spec.backend = backend;
    const sim::SpecResult result = sim::BatchRunner().run_one(spec);
    EXPECT_EQ(result.correct, 10u) << sim::to_string(backend);
    EXPECT_EQ(result.silent, 10u);
    EXPECT_TRUE(result.all_correct());
  }
}

TEST(DenseBackendSpecTest, TieAwareGradingWorksOnDenseBackend) {
  sim::RunSpec spec;
  spec.protocol = "tie_report";
  spec.params.k = 2;
  spec.workload = sim::WorkloadSpec::explicit_counts({6, 6});
  spec.grading = sim::Grading::kTieAware;
  spec.backend = sim::EngineKind::kDenseBatched;
  spec.trials = 8;
  spec.seed = 5;
  const sim::SpecResult result = sim::BatchRunner().run_one(spec);
  EXPECT_EQ(result.correct, 8u);
}

// --- intra-run parallelism ---------------------------------------------------

TEST(ParallelRunTest, RunThreadsResolveAtConstruction) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 2});
  DenseEngine serial(*protocol, {}, DenseMode::kBatched);
  EXPECT_EQ(serial.run_threads(), 1u);
  pp::EngineOptions options;
  options.run_threads = 4;
  DenseEngine pinned(*protocol, options, DenseMode::kBatched);
  EXPECT_EQ(pinned.run_threads(), 4u);
  options.run_threads = 0;  // 0 = one thread per core, resolved eagerly.
  DenseEngine automatic(*protocol, options, DenseMode::kBatched);
  EXPECT_GE(automatic.run_threads(), 1u);
}

/// The tentpole guarantee: run_threads is a pure performance knob. Every
/// cell of the (threads x urn structure x mode x kernel) matrix must leave
/// counts, RNG consumption, and every RunResult field bitwise identical to
/// the serial engine.
TEST(ParallelRunTest, ThreadCountsAreBitwiseIdenticalToSerial) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 3});
  const std::vector<pp::UrnLumping> lumpings = {
      {},  // single urn: historical stream, unified code path
      urn_harness::dumbbell({60, 40}, 0.02),
      urn_harness::dumbbell({40, 35, 25}, 0.05),
  };
  for (const DenseMode mode : {DenseMode::kPerStep, DenseMode::kBatched}) {
    for (const bool use_kernel : {true, false}) {
      for (const pp::UrnLumping& lumping : lumpings) {
        SCOPED_TRACE(::testing::Message()
                     << "mode=" << (mode == DenseMode::kBatched ? "batched"
                                                                : "per_step")
                     << " kernel=" << use_kernel
                     << " urns=" << std::max<std::size_t>(
                            lumping.sizes.size(), 1));
        DenseEngine serial(*protocol, {}, mode, use_kernel, lumping);
        const std::uint64_t n =
            lumping.sizes.empty()
                ? 100u
                : std::accumulate(lumping.sizes.begin(), lumping.sizes.end(),
                                  std::uint64_t{0});
        util::Rng seed_rng(17);
        UrnConfig baseline_config = UrnConfig::from_workload(
            *protocol, workload_of({n / 2, n / 4, n - n / 2 - n / 4}),
            lumping.sizes.empty() ? std::vector<std::uint64_t>{n}
                                  : lumping.sizes,
            seed_rng);
        UrnConfig serial_config = baseline_config;
        const pp::RunResult expect = serial.run(serial_config, 4242);
        for (const std::uint32_t threads : {2u, 4u, 8u}) {
          pp::EngineOptions options;
          options.run_threads = threads;
          DenseEngine parallel(*protocol, options, mode, use_kernel, lumping);
          UrnConfig config = baseline_config;
          const pp::RunResult result = parallel.run(config, 4242);
          EXPECT_EQ(config, serial_config) << "threads=" << threads;
          EXPECT_EQ(result.interactions, expect.interactions);
          EXPECT_EQ(result.state_changes, expect.state_changes);
          EXPECT_EQ(result.last_change_step, expect.last_change_step);
          EXPECT_EQ(result.silent, expect.silent);
          EXPECT_EQ(result.budget_exhausted, expect.budget_exhausted);
        }
      }
    }
  }
}

/// TSan-friendly hammer: many back-to-back 8-thread batched runs over the
/// shared pool and per-run scratch arenas, each checked against the serial
/// engine. Races in the deal/pairing stages or the shared log-factorial
/// table show up here under -fsanitize=thread (CIRCLES_TSAN=ON).
TEST(ParallelRunTest, EightThreadHammerMatchesSerialAcrossSeeds) {
  const auto protocol = sim::ProtocolRegistry::global().create("circles",
                                                               {.k = 3});
  const auto lumping = urn_harness::dumbbell({50, 30, 20}, 0.05);
  pp::EngineOptions options;
  options.run_threads = 8;
  DenseEngine serial(*protocol, {}, DenseMode::kBatched, true, lumping);
  DenseEngine parallel(*protocol, options, DenseMode::kBatched, true, lumping);
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    util::Rng rng(seed);
    UrnConfig a = UrnConfig::from_workload(
        *protocol, workload_of({45, 35, 20}), lumping.sizes, rng);
    UrnConfig b = a;
    const pp::RunResult ra = serial.run(a, seed * 31);
    const pp::RunResult rb = parallel.run(b, seed * 31);
    EXPECT_EQ(a, b) << "seed " << seed;
    EXPECT_EQ(ra.interactions, rb.interactions) << "seed " << seed;
    EXPECT_EQ(ra.state_changes, rb.state_changes) << "seed " << seed;
  }
}

}  // namespace
}  // namespace circles::dense
