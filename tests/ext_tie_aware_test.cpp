#include "extensions/tie_aware_pairwise.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "analysis/trial.hpp"
#include "analysis/workload.hpp"

namespace circles::ext {
namespace {

using analysis::TrialOptions;
using analysis::Workload;

TEST(TieAwarePairwiseTest, StateMetadata) {
  TieAwarePairwise report(3, TieSemantics::kReport);
  EXPECT_EQ(report.num_states(), 3ull * 25 * 3);  // k * 5^2 * 3^1
  EXPECT_EQ(report.num_output_symbols(), 4u);
  TieAwarePairwise brk(3, TieSemantics::kBreak);
  EXPECT_EQ(brk.num_output_symbols(), 3u);
  EXPECT_EQ(report.name(), "tie_report_pairwise");
  EXPECT_EQ(brk.name(), "tie_break_pairwise");
  EXPECT_EQ(TieAwarePairwise(3, TieSemantics::kShare).name(),
            "tie_share_pairwise");
}

TEST(TieAwarePairwiseTest, EncodeDecodeRoundTrip) {
  for (const auto semantics :
       {TieSemantics::kReport, TieSemantics::kBreak, TieSemantics::kShare}) {
    TieAwarePairwise protocol(3, semantics);
    for (pp::StateId s = 0; s < protocol.num_states(); ++s) {
      EXPECT_EQ(protocol.encode(protocol.decode(s)), s);
    }
  }
}

TEST(TieAwarePairwiseTest, CancellationCreatesRetractors) {
  TieAwarePairwise protocol(2, TieSemantics::kReport);
  // Two strong players cancel: both become retractors believing TIE.
  const pp::Transition first =
      protocol.transition(protocol.input(0), protocol.input(1));
  const auto a = protocol.decode(first.initiator);
  const auto b = protocol.decode(first.responder);
  EXPECT_EQ(static_cast<TieAwarePairwise::PlayerSub>(a.sub[0]),
            TieAwarePairwise::PlayerSub::kRetractor);
  EXPECT_EQ(static_cast<TieAwarePairwise::PlayerSub>(b.sub[0]),
            TieAwarePairwise::PlayerSub::kRetractor);
  EXPECT_EQ(protocol.belief(a, 0), protocol.tie_symbol());
  EXPECT_EQ(protocol.belief(b, 0), protocol.tie_symbol());
  EXPECT_EQ(protocol.output(first.initiator), protocol.tie_symbol());
}

TEST(TieAwarePairwiseTest, StrongClearsRetractorAndRetractorNeverSpreads) {
  TieAwarePairwise protocol(2, TieSemantics::kReport);
  // Build a retractor by cancelling, then have a fresh strong clear it.
  const pp::Transition cancelled =
      protocol.transition(protocol.input(0), protocol.input(1));
  {
    const pp::Transition cleared =
        protocol.transition(protocol.input(0), cancelled.responder);
    const auto cleared_agent = protocol.decode(cleared.responder);
    EXPECT_EQ(static_cast<TieAwarePairwise::PlayerSub>(cleared_agent.sub[0]),
              TieAwarePairwise::PlayerSub::kWeakLo);
    EXPECT_EQ(protocol.belief(cleared_agent, 0), 0u);
  }
  {
    // Retractor meets a believing player: the belief flips to TIE but the
    // retractor bit must not replicate.
    TieAwarePairwise::Decoded weak;
    weak.color = 0;
    weak.sub = {static_cast<std::uint8_t>(TieAwarePairwise::PlayerSub::kWeakLo)};
    const pp::Transition spread = protocol.transition(
        cancelled.initiator, protocol.encode(weak));
    const auto converted = protocol.decode(spread.responder);
    EXPECT_EQ(static_cast<TieAwarePairwise::PlayerSub>(converted.sub[0]),
              TieAwarePairwise::PlayerSub::kWeakTie);
  }
}

/// Expected output under each semantics given the true counts.
pp::OutputSymbol expected_output(const TieAwarePairwise& protocol,
                                 const Workload& w, pp::ColorId own_color) {
  std::uint64_t top = 0;
  for (const auto c : w.counts) top = std::max(top, c);
  std::vector<pp::ColorId> winners;
  for (pp::ColorId c = 0; c < w.k(); ++c) {
    if (w.counts[c] == top && top > 0) winners.push_back(c);
  }
  switch (protocol.semantics()) {
    case TieSemantics::kReport:
      return winners.size() == 1 ? winners[0] : protocol.tie_symbol();
    case TieSemantics::kBreak:
      return winners[0];
    case TieSemantics::kShare:
      for (const pp::ColorId c : winners) {
        if (c == own_color) return c;
      }
      return winners[0];
  }
  return winners[0];
}

void run_and_check(const TieAwarePairwise& protocol, const Workload& w,
                   std::uint64_t seed, pp::SchedulerKind kind) {
  // TieShare is graded per-agent, so run manually instead of via run_trial.
  util::Rng rng(seed);
  const auto colors = w.agent_colors(rng);
  if (colors.size() < 2) return;
  pp::Population population(protocol, colors);
  auto scheduler = pp::make_scheduler(
      kind, static_cast<std::uint32_t>(colors.size()), rng(), &protocol);
  pp::EngineOptions engine_options;
  engine_options.max_interactions = 50'000'000;  // fail fast on livelock
  pp::Engine engine(engine_options);
  const auto result = engine.run(protocol, population, *scheduler);
  ASSERT_TRUE(result.silent)
      << "counts=" << w.to_string() << " " << to_string(protocol.semantics());
  for (std::uint32_t agent = 0; agent < population.size(); ++agent) {
    const pp::OutputSymbol expected =
        expected_output(protocol, w, colors[agent]);
    EXPECT_EQ(protocol.output(population.state(agent)), expected)
        << "agent " << agent << " (color " << colors[agent]
        << ") counts=" << w.to_string() << " "
        << to_string(protocol.semantics());
  }
}

void for_all_workloads(std::uint32_t k, std::uint64_t n,
                       const std::function<void(const Workload&)>& f) {
  std::vector<std::uint64_t> counts(k, 0);
  std::function<void(std::uint32_t, std::uint64_t)> rec =
      [&](std::uint32_t color, std::uint64_t rest) {
        if (color + 1 == k) {
          counts[color] = rest;
          Workload w;
          w.counts = counts;
          f(w);
          return;
        }
        for (std::uint64_t c = 0; c <= rest; ++c) {
          counts[color] = c;
          rec(color + 1, rest - c);
        }
      };
  rec(0, n);
}

TEST(TieAwareSimulationTest, ExhaustiveTwoColorsAllSemantics) {
  for (const auto semantics :
       {TieSemantics::kReport, TieSemantics::kBreak, TieSemantics::kShare}) {
    TieAwarePairwise protocol(2, semantics);
    for (std::uint64_t n = 2; n <= 7; ++n) {
      for_all_workloads(2, n, [&](const Workload& w) {
        if (w.n() == 0) return;
        run_and_check(protocol, w, n * 31 + w.counts[0],
                      pp::SchedulerKind::kRoundRobin);
      });
    }
  }
}

TEST(TieAwareSimulationTest, ExhaustiveThreeColorsReport) {
  TieAwarePairwise protocol(3, TieSemantics::kReport);
  for (std::uint64_t n = 2; n <= 5; ++n) {
    for_all_workloads(3, n, [&](const Workload& w) {
      run_and_check(protocol, w, n * 37 + w.counts[0] * 3 + w.counts[1],
                    pp::SchedulerKind::kShuffledSweep);
    });
  }
}

TEST(TieAwareSimulationTest, ThreeWayTieBreakAndShare) {
  Workload w;
  w.counts = {3, 3, 3};
  for (const auto semantics : {TieSemantics::kBreak, TieSemantics::kShare}) {
    TieAwarePairwise protocol(3, semantics);
    run_and_check(protocol, w, 99, pp::SchedulerKind::kUniformRandom);
  }
}

TEST(TieAwareSimulationTest, PartialTieAmongLosers) {
  // (4,2,2): losers tie; every semantics must still elect color 0.
  Workload w;
  w.counts = {4, 2, 2};
  for (const auto semantics :
       {TieSemantics::kReport, TieSemantics::kBreak, TieSemantics::kShare}) {
    TieAwarePairwise protocol(3, semantics);
    run_and_check(protocol, w, 7, pp::SchedulerKind::kUniformRandom);
  }
}

TEST(TieAwareSimulationTest, RandomizedFourColors) {
  util::Rng rng(44);
  for (const auto semantics :
       {TieSemantics::kReport, TieSemantics::kBreak, TieSemantics::kShare}) {
    TieAwarePairwise protocol(4, semantics);
    for (int trial = 0; trial < 4; ++trial) {
      const Workload w = analysis::random_counts(rng, 16, 4);
      run_and_check(protocol, w, rng(), pp::SchedulerKind::kUniformRandom);
    }
  }
}

TEST(TieAwareSimulationTest, ExactTieWorkloadsAcrossSchedulers) {
  util::Rng rng(123);
  TieAwarePairwise protocol(4, TieSemantics::kReport);
  for (const pp::SchedulerKind kind : pp::kAllSchedulerKinds) {
    const Workload w = analysis::exact_tie(rng, 12, 4, 3);
    run_and_check(protocol, w, rng(), kind);
  }
}

TEST(TieAwarePairwiseDeathTest, RejectsLargeK) {
  EXPECT_DEATH(TieAwarePairwise(6, TieSemantics::kReport), "capped");
}

}  // namespace
}  // namespace circles::ext
