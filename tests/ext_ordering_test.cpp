#include "extensions/ordering.hpp"

#include <gtest/gtest.h>

#include <map>
#include <queue>
#include <set>
#include <vector>

#include "analysis/trial.hpp"
#include "analysis/workload.hpp"
#include "pp/engine.hpp"

namespace circles::ext {
namespace {

using analysis::TrialOptions;
using analysis::Workload;

TEST(OrderingProtocolTest, StateMetadata) {
  for (std::uint32_t k : {1u, 3u, 8u}) {
    OrderingProtocol protocol(k);
    EXPECT_EQ(protocol.num_states(), 2ull * k * k);
    EXPECT_EQ(protocol.num_colors(), k);
  }
}

TEST(OrderingProtocolTest, EncodeDecodeRoundTrip) {
  OrderingProtocol protocol(5);
  for (pp::StateId s = 0; s < protocol.num_states(); ++s) {
    const auto f = protocol.decode(s);
    EXPECT_EQ(protocol.encode(f), s);
  }
}

TEST(OrderingProtocolTest, EveryAgentStartsAsLeaderWithLabelZero) {
  OrderingProtocol protocol(4);
  for (pp::ColorId c = 0; c < 4; ++c) {
    const auto f = protocol.decode(protocol.input(c));
    EXPECT_EQ(f.color, c);
    EXPECT_TRUE(f.leader);
    EXPECT_EQ(f.label, 0u);
    EXPECT_EQ(protocol.output(protocol.input(c)), 0u);
  }
}

TEST(OrderingProtocolTest, SameColorLeaderMeetingDemotesResponder) {
  OrderingProtocol protocol(3);
  const pp::StateId a = protocol.encode({1, true, 2});
  const pp::StateId b = protocol.encode({1, true, 0});
  const pp::Transition tr = protocol.transition(a, b);
  const auto fa = protocol.decode(tr.initiator);
  const auto fb = protocol.decode(tr.responder);
  EXPECT_TRUE(fa.leader);
  EXPECT_FALSE(fb.leader);
  EXPECT_EQ(fb.label, 2u);  // demoted copies the survivor's label
}

TEST(OrderingProtocolTest, FollowerCopiesLeaderLabelOfOwnColorOnly) {
  OrderingProtocol protocol(3);
  {
    const pp::Transition tr = protocol.transition(
        protocol.encode({1, true, 2}), protocol.encode({1, false, 0}));
    EXPECT_EQ(protocol.decode(tr.responder).label, 2u);
  }
  {
    // Responder is the leader: initiator follower copies.
    const pp::Transition tr = protocol.transition(
        protocol.encode({1, false, 0}), protocol.encode({1, true, 2}));
    EXPECT_EQ(protocol.decode(tr.initiator).label, 2u);
  }
  {
    // Different color: followers never copy.
    const pp::Transition tr = protocol.transition(
        protocol.encode({2, true, 2}), protocol.encode({1, false, 0}));
    EXPECT_EQ(protocol.decode(tr.responder).label, 0u);
  }
}

TEST(OrderingProtocolTest, LabelCollisionBumpsResponderModK) {
  OrderingProtocol protocol(3);
  {
    const pp::Transition tr = protocol.transition(
        protocol.encode({0, true, 1}), protocol.encode({1, true, 1}));
    EXPECT_EQ(protocol.decode(tr.initiator).label, 1u);
    EXPECT_EQ(protocol.decode(tr.responder).label, 2u);
  }
  {
    // Wrap-around.
    const pp::Transition tr = protocol.transition(
        protocol.encode({0, true, 2}), protocol.encode({1, true, 2}));
    EXPECT_EQ(protocol.decode(tr.responder).label, 0u);
  }
  {
    // Distinct labels: null.
    const pp::Transition tr = protocol.transition(
        protocol.encode({0, true, 1}), protocol.encode({1, true, 2}));
    EXPECT_EQ(tr.initiator, protocol.encode({0, true, 1}));
    EXPECT_EQ(tr.responder, protocol.encode({1, true, 2}));
  }
}

/// Checks the stabilized ordering: one leader per present color, all leader
/// labels distinct, every follower carrying its color's leader label.
void expect_valid_ordering(const OrderingProtocol& protocol,
                           const pp::Population& population,
                           std::uint32_t k, const std::string& context) {
  std::map<pp::ColorId, std::uint32_t> leader_label;
  std::map<pp::ColorId, int> leaders_per_color;
  for (const pp::StateId s : population.present_states()) {
    const auto f = protocol.decode(s);
    if (f.leader) {
      leaders_per_color[f.color] +=
          static_cast<int>(population.count(s));
      leader_label[f.color] = f.label;
    }
  }
  std::set<std::uint32_t> labels;
  for (const auto& [color, count] : leaders_per_color) {
    EXPECT_EQ(count, 1) << context << " color " << color;
    EXPECT_TRUE(labels.insert(leader_label[color]).second)
        << context << " duplicate label for color " << color;
  }
  // Followers agree with their leader.
  for (const pp::StateId s : population.present_states()) {
    const auto f = protocol.decode(s);
    if (!f.leader) {
      ASSERT_TRUE(leader_label.count(f.color)) << context;
      EXPECT_EQ(f.label, leader_label[f.color]) << context;
    }
  }
  EXPECT_LE(labels.size(), k);
}

TEST(OrderingSimulationTest, StabilizesToInjectiveLabelsAllSchedulers) {
  const std::uint32_t k = 4;
  OrderingProtocol protocol(k);
  util::Rng rng(13);
  for (const pp::SchedulerKind kind : pp::kAllSchedulerKinds) {
    const Workload w = analysis::random_counts(rng, 20, k);
    if (w.n() < 2) continue;
    util::Rng trial_rng(rng());
    const auto colors = w.agent_colors(trial_rng);
    pp::Population population(protocol, colors);
    auto scheduler = pp::make_scheduler(
        kind, static_cast<std::uint32_t>(colors.size()), trial_rng(),
        &protocol);
    pp::Engine engine;
    const auto result = engine.run(protocol, population, *scheduler);
    EXPECT_TRUE(result.silent) << pp::to_string(kind);
    expect_valid_ordering(protocol, population, k, pp::to_string(kind));
  }
}

TEST(OrderingSimulationTest, SingleColorPopulation) {
  OrderingProtocol protocol(3);
  std::vector<pp::ColorId> colors(8, 1);
  pp::Population population(protocol, colors);
  auto scheduler =
      pp::make_scheduler(pp::SchedulerKind::kRoundRobin, 8, 0, &protocol);
  pp::Engine engine;
  const auto result = engine.run(protocol, population, *scheduler);
  EXPECT_TRUE(result.silent);
  expect_valid_ordering(protocol, population, 3, "single color");
}

// ---------------------------------------------------------------------------
// DESIGN.md §5.3: termination of the label-bump dynamics under adversarial
// scheduling is not proved in the paper. Verify it by exhaustive reachability
// over label multisets: from any multiset of j <= k labels, every maximal
// move sequence must reach an all-distinct multiset (the move graph over
// multisets is acyclic). A move takes one label from a slot holding >= 2 and
// advances it mod k.
// ---------------------------------------------------------------------------

using LabelMultiset = std::vector<std::uint8_t>;  // occupancy per slot

std::vector<LabelMultiset> moves(const LabelMultiset& m) {
  std::vector<LabelMultiset> out;
  const std::size_t k = m.size();
  for (std::size_t slot = 0; slot < k; ++slot) {
    if (m[slot] >= 2) {
      LabelMultiset next = m;
      next[slot] -= 1;
      next[(slot + 1) % k] += 1;
      out.push_back(next);
    }
  }
  return out;
}

/// DFS cycle detection over the move graph.
enum class Mark : std::uint8_t { kUnseen, kOnStack, kDone };

bool has_cycle(const LabelMultiset& start,
               std::map<LabelMultiset, Mark>& marks) {
  auto it = marks.find(start);
  if (it != marks.end()) {
    if (it->second == Mark::kOnStack) return true;
    return false;  // kDone
  }
  marks[start] = Mark::kOnStack;
  for (const auto& next : moves(start)) {
    if (has_cycle(next, marks)) return true;
  }
  marks[start] = Mark::kDone;
  return false;
}

void enumerate_multisets(std::size_t k, std::uint32_t chips,
                         LabelMultiset& prefix,
                         std::vector<LabelMultiset>& out) {
  if (prefix.size() + 1 == k) {
    prefix.push_back(static_cast<std::uint8_t>(chips));
    out.push_back(prefix);
    prefix.pop_back();
    return;
  }
  for (std::uint32_t c = 0; c <= chips; ++c) {
    prefix.push_back(static_cast<std::uint8_t>(c));
    enumerate_multisets(k, chips - c, prefix, out);
    prefix.pop_back();
  }
}

TEST(OrderingLabelGraphTest, BumpDynamicsTerminatesForAtMostKLeaders) {
  // For every k <= 6 and every start with j <= k leaders, the adversary
  // cannot cycle: the move graph is acyclic, so weak fairness forces the
  // distinct-label fixpoint.
  for (std::size_t k = 2; k <= 6; ++k) {
    std::map<LabelMultiset, Mark> marks;
    for (std::uint32_t chips = 2; chips <= k; ++chips) {
      std::vector<LabelMultiset> starts;
      LabelMultiset prefix;
      enumerate_multisets(k, chips, prefix, starts);
      for (const auto& start : starts) {
        EXPECT_FALSE(has_cycle(start, marks))
            << "k=" << k << " chips=" << chips;
      }
    }
  }
}

TEST(OrderingLabelGraphTest, MoreLeadersThanSlotsCanCycle) {
  // Documented limitation that motivates the demotion rule: with more than
  // k leaders the bump dynamics alone can cycle (demotions are what make
  // the protocol terminate). Exhibit the k=2, 3-leader cycle.
  std::map<LabelMultiset, Mark> marks;
  EXPECT_TRUE(has_cycle({3, 0}, marks));
}

TEST(OrderingSimulationTest, LargePopulationManyColors) {
  const std::uint32_t k = 8;
  OrderingProtocol protocol(k);
  util::Rng rng(77);
  const Workload w = analysis::random_counts(rng, 100, k);
  const auto colors = w.agent_colors(rng);
  pp::Population population(protocol, colors);
  auto scheduler = pp::make_scheduler(
      pp::SchedulerKind::kUniformRandom,
      static_cast<std::uint32_t>(colors.size()), rng(), &protocol);
  pp::Engine engine;
  const auto result = engine.run(protocol, population, *scheduler);
  EXPECT_TRUE(result.silent);
  expect_valid_ordering(protocol, population, k, "large population");
}

TEST(OrderingProtocolTest, StateNames) {
  OrderingProtocol protocol(4);
  EXPECT_EQ(protocol.state_name(protocol.encode({2, true, 3})), "c2L3");
  EXPECT_EQ(protocol.state_name(protocol.encode({1, false, 0})), "c1f0");
}

}  // namespace
}  // namespace circles::ext
