// Deeper exhaustive grids for the paper's main claims, parameterized so each
// (scheduler, n) cell is an individual ctest entry. These complement
// core_simulation_test's fixed grids with larger populations and both
// deterministic weakly fair schedulers, covering every k=2 count split up to
// n=10 and every k=3 split up to n=7 — thousands of distinct instances.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "analysis/trial.hpp"
#include "analysis/workload.hpp"
#include "core/circles_protocol.hpp"

namespace circles::core {
namespace {

using analysis::TrialOptions;
using analysis::Workload;

class TwoColorExhaustive
    : public testing::TestWithParam<std::tuple<pp::SchedulerKind, std::uint64_t>> {
};

TEST_P(TwoColorExhaustive, EveryCountSplitObeysAllClaims) {
  const auto [scheduler, n] = GetParam();
  CirclesProtocol protocol(2);
  for (std::uint64_t zeros = 0; zeros <= n; ++zeros) {
    Workload w;
    w.counts = {zeros, n - zeros};
    TrialOptions options;
    options.scheduler = scheduler;
    options.seed = 1000 * n + zeros;
    const auto outcome = analysis::run_circles_trial(protocol, w, options);
    ASSERT_TRUE(outcome.trial.run.silent) << w.to_string();
    EXPECT_EQ(outcome.braket_invariant_violations, 0u) << w.to_string();
    EXPECT_EQ(outcome.potential_descent_violations, 0u) << w.to_string();
    EXPECT_TRUE(outcome.decomposition_matches) << w.to_string();
    if (!w.tied()) {
      EXPECT_TRUE(outcome.trial.correct) << w.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TwoColorExhaustive,
    testing::Combine(testing::Values(pp::SchedulerKind::kRoundRobin,
                                     pp::SchedulerKind::kShuffledSweep,
                                     pp::SchedulerKind::kUniformRandom),
                     testing::Values(4ull, 6ull, 8ull, 10ull)),
    [](const testing::TestParamInfo<std::tuple<pp::SchedulerKind, std::uint64_t>>&
           info) {
      return pp::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

class ThreeColorExhaustive
    : public testing::TestWithParam<std::tuple<pp::SchedulerKind, std::uint64_t>> {
};

TEST_P(ThreeColorExhaustive, EveryCountSplitObeysAllClaims) {
  const auto [scheduler, n] = GetParam();
  CirclesProtocol protocol(3);
  for (std::uint64_t a = 0; a <= n; ++a) {
    for (std::uint64_t b = 0; a + b <= n; ++b) {
      Workload w;
      w.counts = {a, b, n - a - b};
      TrialOptions options;
      options.scheduler = scheduler;
      options.seed = 10000 * n + 100 * a + b;
      const auto outcome = analysis::run_circles_trial(protocol, w, options);
      ASSERT_TRUE(outcome.trial.run.silent) << w.to_string();
      EXPECT_EQ(outcome.braket_invariant_violations, 0u) << w.to_string();
      EXPECT_EQ(outcome.potential_descent_violations, 0u) << w.to_string();
      EXPECT_TRUE(outcome.decomposition_matches) << w.to_string();
      if (!w.tied()) {
        EXPECT_TRUE(outcome.trial.correct) << w.to_string();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ThreeColorExhaustive,
    testing::Combine(testing::Values(pp::SchedulerKind::kRoundRobin,
                                     pp::SchedulerKind::kShuffledSweep),
                     testing::Values(5ull, 6ull, 7ull)),
    [](const testing::TestParamInfo<std::tuple<pp::SchedulerKind, std::uint64_t>>&
           info) {
      return pp::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace circles::core
