// Engine option semantics: silence-check backoff, budgets interacting with
// certificates, and monitor-free fast paths behave identically.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/trial.hpp"
#include "analysis/workload.hpp"
#include "core/circles_protocol.hpp"
#include "pp/engine.hpp"

namespace circles::pp {
namespace {

TEST(EngineOptionsTest, ResultsIndependentOfSilenceStreakTuning) {
  // The backoff parameter controls when the exact check runs, never what it
  // decides: the same seeded run must end in the same final configuration.
  core::CirclesProtocol protocol(4);
  util::Rng rng(8);
  const analysis::Workload w = analysis::random_unique_winner(rng, 20, 4);

  std::vector<std::uint64_t> outputs_signature;
  for (const std::uint64_t streak : {1ull, 16ull, 64ull, 4096ull}) {
    analysis::TrialOptions options;
    options.seed = 555;
    options.engine.initial_silence_streak = streak;
    const auto outcome = analysis::run_trial(protocol, w, options);
    EXPECT_TRUE(outcome.run.silent) << "streak " << streak;
    EXPECT_TRUE(outcome.correct) << "streak " << streak;
    // The step of the last state change is a pure function of the schedule
    // stream and protocol — identical across tunings.
    outputs_signature.push_back(outcome.run.last_change_step);
  }
  for (std::size_t i = 1; i < outputs_signature.size(); ++i) {
    EXPECT_EQ(outputs_signature[i], outputs_signature[0]);
  }
}

TEST(EngineOptionsTest, TightBudgetStillReportsExactSilenceStatus) {
  core::CirclesProtocol protocol(3);
  util::Rng rng(4);
  const analysis::Workload w = analysis::random_unique_winner(rng, 12, 3);
  analysis::TrialOptions options;
  options.seed = 77;
  options.engine.max_interactions = 5;  // way too small to converge
  const auto outcome = analysis::run_trial(protocol, w, options);
  EXPECT_TRUE(outcome.run.budget_exhausted);
  EXPECT_FALSE(outcome.run.silent);
  EXPECT_FALSE(outcome.correct);
}

TEST(EngineOptionsTest, BudgetLandingExactlyOnSilenceIsDetected) {
  // Run once to learn the exact convergence point, then replay with the
  // budget set to exactly that step: the post-hoc exact check must still
  // report silence even though the in-loop certificate never fired.
  core::CirclesProtocol protocol(2);
  analysis::Workload w;
  w.counts = {3, 1};
  analysis::TrialOptions options;
  options.seed = 31;
  const auto full = analysis::run_trial(protocol, w, options);
  ASSERT_TRUE(full.run.silent);

  analysis::TrialOptions replay = options;
  replay.engine.max_interactions = full.run.last_change_step + 1;
  replay.engine.initial_silence_streak = ~0ull;  // disable in-loop checks
  const auto outcome = analysis::run_trial(protocol, w, replay);
  EXPECT_TRUE(outcome.run.budget_exhausted);
  EXPECT_TRUE(outcome.run.silent);  // exact post-hoc verdict
}

TEST(EngineOptionsTest, StateChangesMatchLastChangeStepConsistency) {
  core::CirclesProtocol protocol(5);
  util::Rng rng(12);
  const analysis::Workload w = analysis::random_unique_winner(rng, 25, 5);
  analysis::TrialOptions options;
  options.seed = 9;
  const auto outcome = analysis::run_trial(protocol, w, options);
  ASSERT_TRUE(outcome.run.silent);
  EXPECT_GT(outcome.run.state_changes, 0u);
  EXPECT_LT(outcome.run.last_change_step, outcome.run.interactions);
  EXPECT_GE(outcome.run.state_changes, 1u);
  EXPECT_LE(outcome.run.state_changes, outcome.run.last_change_step + 1);
}

}  // namespace
}  // namespace circles::pp
