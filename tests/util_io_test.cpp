#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace circles::util {
namespace {

TEST(TableTest, RendersHeaderRuleAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string text = t.to_string();
  std::istringstream is(text);
  std::string line;
  std::getline(is, line);
  EXPECT_NE(line.find("name"), std::string::npos);
  EXPECT_NE(line.find("value"), std::string::npos);
  std::getline(is, line);
  EXPECT_EQ(line.find_first_not_of('-'), std::string::npos);
  std::getline(is, line);
  EXPECT_NE(line.find("alpha"), std::string::npos);
}

TEST(TableTest, RightAlignsToWidestCell) {
  Table t({"x"});
  t.add_row({"1"});
  t.add_row({"100"});
  std::istringstream is(t.to_string());
  std::string header, rule, row1, row2;
  std::getline(is, header);
  std::getline(is, rule);
  std::getline(is, row1);
  std::getline(is, row2);
  EXPECT_EQ(row1, "  1");
  EXPECT_EQ(row2, "100");
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::num(std::int64_t{-7}), "-7");
  EXPECT_EQ(Table::percent(0.1234, 1), "12.3%");
}

TEST(TableDeathTest, RowWidthMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "width");
}

TEST(CsvTest, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "/circles_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.row({"1", "x"});
    csv.row({CsvWriter::cell(2.5), CsvWriter::cell(std::uint64_t{7})});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,x");
  std::getline(in, line);
  EXPECT_EQ(line, "2.5,7");
  std::remove(path.c_str());
}

TEST(CsvTest, EscapesSpecialCharacters) {
  const std::string path = testing::TempDir() + "/circles_csv_escape.csv";
  {
    CsvWriter csv(path, {"c"});
    csv.row({"has,comma"});
    csv.row({"has\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);
  EXPECT_EQ(line, "\"has,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "\"has\"\"quote\"");
  std::remove(path.c_str());
}

TEST(CsvTest, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), std::runtime_error);
}

class CliFixture {
 public:
  explicit CliFixture(std::vector<std::string> args) {
    storage_.push_back("prog");
    for (auto& a : args) storage_.push_back(std::move(a));
    for (auto& s : storage_) argv_.push_back(s.data());
  }
  Cli make() { return Cli(static_cast<int>(argv_.size()), argv_.data()); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> argv_;
};

TEST(CliTest, ParsesEqualsAndSpaceForms) {
  CliFixture fixture({"--n=32", "--k", "5"});
  Cli cli = fixture.make();
  EXPECT_EQ(cli.int_flag("n", 0, "agents"), 32);
  EXPECT_EQ(cli.int_flag("k", 0, "colors"), 5);
  cli.finish();
}

TEST(CliTest, DefaultsWhenAbsent) {
  CliFixture fixture({});
  Cli cli = fixture.make();
  EXPECT_EQ(cli.int_flag("n", 17, "agents"), 17);
  EXPECT_DOUBLE_EQ(cli.double_flag("p", 0.25, "prob"), 0.25);
  EXPECT_EQ(cli.string_flag("mode", "fast", "mode"), "fast");
  EXPECT_TRUE(cli.bool_flag("verbose", true, "verbosity"));
  cli.finish();
}

TEST(CliTest, BooleanFlagWithoutValue) {
  CliFixture fixture({"--verbose"});
  Cli cli = fixture.make();
  EXPECT_TRUE(cli.bool_flag("verbose", false, "verbosity"));
  cli.finish();
}

TEST(CliTest, DoubleAndStringValues) {
  CliFixture fixture({"--ratio=0.5", "--name=widget"});
  Cli cli = fixture.make();
  EXPECT_DOUBLE_EQ(cli.double_flag("ratio", 1.0, "r"), 0.5);
  EXPECT_EQ(cli.string_flag("name", "", "n"), "widget");
  cli.finish();
}

}  // namespace
}  // namespace circles::util
