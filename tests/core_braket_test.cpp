#include "core/braket.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace circles::core {
namespace {

/// Naive transliteration of the paper's weight definition, as an oracle.
std::uint32_t naive_weight(std::uint32_t i, std::uint32_t j, std::uint32_t k) {
  if (i == j) return k;
  const std::int64_t diff = static_cast<std::int64_t>(j) - i;
  std::int64_t m = diff % static_cast<std::int64_t>(k);
  if (m < 0) m += k;
  return static_cast<std::uint32_t>(m);
}

TEST(WeightTest, MatchesDefinitionExhaustively) {
  for (std::uint32_t k = 1; k <= 8; ++k) {
    for (std::uint32_t i = 0; i < k; ++i) {
      for (std::uint32_t j = 0; j < k; ++j) {
        EXPECT_EQ(weight({i, j}, k), naive_weight(i, j, k))
            << "k=" << k << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(WeightTest, DiagonalIsMaximal) {
  for (std::uint32_t k = 1; k <= 10; ++k) {
    for (std::uint32_t i = 0; i < k; ++i) {
      EXPECT_EQ(weight({i, i}, k), k);
    }
  }
}

TEST(WeightTest, OffDiagonalRange) {
  // Off-diagonal weights are cyclic distances in [1, k-1].
  for (std::uint32_t k = 2; k <= 10; ++k) {
    for (std::uint32_t i = 0; i < k; ++i) {
      for (std::uint32_t j = 0; j < k; ++j) {
        if (i == j) continue;
        const std::uint32_t w = weight({i, j}, k);
        EXPECT_GE(w, 1u);
        EXPECT_LE(w, k - 1);
      }
    }
  }
}

TEST(WeightTest, PaperExamples) {
  // k = 10: w(⟨2|7⟩) = 5, w(⟨8|3⟩) = 5 (wraps), w(⟨4|4⟩) = 10.
  EXPECT_EQ(weight({2, 7}, 10), 5u);
  EXPECT_EQ(weight({8, 3}, 10), 5u);
  EXPECT_EQ(weight({4, 4}, 10), 10u);
  EXPECT_EQ(weight({7, 2}, 10), 5u);
  EXPECT_EQ(weight({0, 9}, 10), 9u);
  EXPECT_EQ(weight({9, 0}, 10), 1u);
}

TEST(WeightTest, AsymmetricInGeneral) {
  EXPECT_EQ(weight({1, 4}, 5), 3u);
  EXPECT_EQ(weight({4, 1}, 5), 2u);
}

TEST(BraKetTest, DiagonalPredicate) {
  EXPECT_TRUE((BraKet{3, 3}).diagonal());
  EXPECT_FALSE((BraKet{3, 4}).diagonal());
}

TEST(BraKetTest, OrderingAndEquality) {
  EXPECT_EQ((BraKet{1, 2}), (BraKet{1, 2}));
  EXPECT_NE((BraKet{1, 2}), (BraKet{2, 1}));
  EXPECT_LT((BraKet{1, 2}), (BraKet{1, 3}));
  EXPECT_LT((BraKet{1, 9}), (BraKet{2, 0}));
}

TEST(BraKetTest, ToStringAndStreaming) {
  EXPECT_EQ(to_string(BraKet{1, 2}), "<1|2>");
  std::ostringstream os;
  os << BraKet{4, 4};
  EXPECT_EQ(os.str(), "<4|4>");
}

TEST(ExchangeRuleTest, TwoDiagonalsAlwaysExchange) {
  // ⟨i|i⟩ + ⟨j|j⟩, i != j: both weights k; post weights are cyclic gaps < k.
  for (std::uint32_t k = 2; k <= 8; ++k) {
    for (std::uint32_t i = 0; i < k; ++i) {
      for (std::uint32_t j = 0; j < k; ++j) {
        if (i == j) continue;
        EXPECT_TRUE(exchange_decreases_min({i, i}, {j, j}, k))
            << "k=" << k << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(ExchangeRuleTest, IdenticalBraKetsNeverExchange) {
  for (std::uint32_t k = 1; k <= 8; ++k) {
    for (std::uint32_t i = 0; i < k; ++i) {
      for (std::uint32_t j = 0; j < k; ++j) {
        EXPECT_FALSE(exchange_decreases_min({i, j}, {i, j}, k));
      }
    }
  }
}

TEST(ExchangeRuleTest, DiagonalPlusAlignedKetIsStable) {
  // ⟨i|i⟩ + ⟨i|j⟩: swapping produces ⟨i|j⟩ + ⟨i|i⟩ — same weights, no gain.
  for (std::uint32_t k = 2; k <= 8; ++k) {
    for (std::uint32_t i = 0; i < k; ++i) {
      for (std::uint32_t j = 0; j < k; ++j) {
        if (i == j) continue;
        EXPECT_FALSE(exchange_decreases_min({i, i}, {i, j}, k));
        EXPECT_FALSE(exchange_decreases_min({i, j}, {i, i}, k));
      }
    }
  }
}

TEST(ExchangeRuleTest, ProofCaseFromLemma36) {
  // The Lemma 3.6 interaction: ⟨g_l|j⟩ meets ⟨i|g_{l+1}⟩ where i, j lie
  // outside the modulo range (g_l, g_{l+1}); swapping creates ⟨g_l|g_{l+1}⟩
  // and must fire. Concrete instance: k = 10, g_l = 2, g_{l+1} = 5,
  // i = 8, j = 7 (both outside (2,5)_10 = {3,4}).
  EXPECT_TRUE(exchange_decreases_min({2, 7}, {8, 5}, 10));
  // And the created bra-ket is the minimal one:
  EXPECT_EQ(weight({2, 5}, 10), 3u);
  EXPECT_LT(weight({2, 5}, 10), weight({2, 7}, 10));
  EXPECT_LT(weight({2, 5}, 10), weight({8, 5}, 10));
}

TEST(ExchangeRuleTest, DiagonalCreationExample) {
  // ⟨0|4⟩ + ⟨3|0⟩ (k = 5): post ⟨0|0⟩ (w 5) + ⟨3|4⟩ (w 1); min 1 < min(4, 2).
  EXPECT_TRUE(exchange_decreases_min({0, 4}, {3, 0}, 5));
}

TEST(ExchangeRuleTest, CrossPairRefusesWhenMinAlreadyMinimal) {
  // ⟨0|1⟩ + ⟨1|0⟩ (k = 5): weights (1, 4); post ⟨0|0⟩, ⟨1|1⟩ weights (5, 5).
  EXPECT_FALSE(exchange_decreases_min({0, 1}, {1, 0}, 5));
}

TEST(ExchangeRuleTest, SymmetricInArguments) {
  // The rule only involves the min over both orders of the swap, so it must
  // be symmetric under swapping the two agents.
  for (std::uint32_t k = 2; k <= 6; ++k) {
    for (std::uint32_t a = 0; a < k * k; ++a) {
      for (std::uint32_t b = 0; b < k * k; ++b) {
        const BraKet x{a / k, a % k};
        const BraKet y{b / k, b % k};
        EXPECT_EQ(exchange_decreases_min(x, y, k),
                  exchange_decreases_min(y, x, k));
      }
    }
  }
}

}  // namespace
}  // namespace circles::core
