// Registry-wide equivalence suite for kernel::CompiledProtocol: every
// registered protocol's compiled kernel must agree with the virtual
// transition()/output() on all pairs (exhaustively for small state spaces,
// by seeded sample for cubic ones), under both table kinds; and the engines
// must produce bitwise-identical RunResults with kernels on vs off.
#include "kernel/compiled_protocol.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "pp/silence.hpp"
#include "sim/sim.hpp"
#include "util/rng.hpp"

namespace circles {
namespace {

struct RegistryCase {
  std::string name;
  std::uint32_t k;
};

/// One representative parameterization per registered protocol, plus a
/// cubic circles instance that exceeds the default dense budget.
std::vector<RegistryCase> registry_cases() {
  return {
      {"circles", 1},
      {"circles", 3},
      {"circles", 32},  // 32768 states -> sparse under the default budget
      {"tie_report", 3},
      {"tie_aware_pairwise", 3},
      {"unordered_circles", 2},
      {"ordering", 4},
      {"pairwise_plurality", 3},
      {"exact_majority_4state", 2},
      {"approx_majority_3state", 2},
  };
}

/// Exhaustive when num_states^2 fits, else a seeded sample. Pairs are drawn
/// uniformly plus a band around the input states (the reachable region).
std::vector<std::pair<pp::StateId, pp::StateId>> pair_sample(
    const pp::Protocol& protocol, std::uint64_t budget) {
  const std::uint64_t ns = protocol.num_states();
  std::vector<std::pair<pp::StateId, pp::StateId>> pairs;
  if (ns * ns <= budget) {
    for (std::uint64_t a = 0; a < ns; ++a) {
      for (std::uint64_t b = 0; b < ns; ++b) {
        pairs.push_back({static_cast<pp::StateId>(a),
                         static_cast<pp::StateId>(b)});
      }
    }
    return pairs;
  }
  util::Rng rng(2026);
  for (std::uint64_t i = 0; i < budget; ++i) {
    pairs.push_back({static_cast<pp::StateId>(rng.uniform_below(ns)),
                     static_cast<pp::StateId>(rng.uniform_below(ns))});
  }
  // Also the ordered pairs of input states: the region every run starts in.
  for (pp::ColorId a = 0; a < protocol.num_colors(); ++a) {
    for (pp::ColorId b = 0; b < protocol.num_colors(); ++b) {
      pairs.push_back({protocol.input(a), protocol.input(b)});
    }
  }
  return pairs;
}

void expect_kernel_matches(const pp::Protocol& protocol,
                           const kernel::CompiledProtocol& kernel,
                           const std::string& label) {
  ASSERT_EQ(kernel.num_states(), protocol.num_states()) << label;
  ASSERT_EQ(kernel.num_colors(), protocol.num_colors()) << label;
  ASSERT_EQ(kernel.num_output_symbols(), protocol.num_output_symbols())
      << label;
  for (pp::ColorId c = 0; c < protocol.num_colors(); ++c) {
    EXPECT_EQ(kernel.input(c), protocol.input(c)) << label;
  }
  for (const auto& [a, b] : pair_sample(protocol, 1 << 16)) {
    const pp::Transition expected = protocol.transition(a, b);
    const pp::Transition got = kernel.transition(a, b);
    ASSERT_EQ(got, expected) << label << " transition(" << a << ", " << b
                             << ")";
    const bool nonnull = expected.initiator != a || expected.responder != b;
    ASSERT_EQ(kernel.nonnull(a, b), nonnull) << label;
    const bool flips =
        nonnull && (protocol.output(expected.initiator) !=
                        protocol.output(a) ||
                    protocol.output(expected.responder) !=
                        protocol.output(b));
    ASSERT_EQ(kernel.output_changes(a, b), flips) << label;
    ASSERT_EQ(kernel.output(a), protocol.output(a)) << label;
    ASSERT_EQ(kernel.output(b), protocol.output(b)) << label;
  }
}

TEST(CompiledProtocolTest, MatchesEveryRegisteredProtocol) {
  const auto& registry = sim::ProtocolRegistry::global();
  for (const auto& c : registry_cases()) {
    const auto protocol = registry.create(c.name, {.k = c.k});
    const kernel::CompiledProtocol compiled(*protocol);
    const std::string label = c.name + " k=" + std::to_string(c.k) + " (" +
                              kernel::to_string(compiled.kind()) + ")";
    expect_kernel_matches(*protocol, compiled, label);
  }
}

TEST(CompiledProtocolTest, ForcedSparseMatchesEveryRegisteredProtocol) {
  // max_dense_entries = 0 forces the lazily-materialized hashed table even
  // for tiny state spaces, so the sparse path gets registry-wide coverage.
  kernel::CompileOptions sparse;
  sparse.max_dense_entries = 0;
  const auto& registry = sim::ProtocolRegistry::global();
  for (const auto& c : registry_cases()) {
    const auto protocol = registry.create(c.name, {.k = c.k});
    const kernel::CompiledProtocol compiled(*protocol, sparse);
    ASSERT_EQ(compiled.kind(), kernel::TableKind::kSparse);
    const std::string label = c.name + " k=" + std::to_string(c.k) +
                              " (forced sparse)";
    expect_kernel_matches(*protocol, compiled, label);
    // Every distinct pair the sample touched is served from the cache on
    // the second pass; the fill counter must have moved.
    EXPECT_GT(compiled.stats().sparse_filled, 0u) << label;
  }
}

TEST(CompiledProtocolTest, KindFollowsTheDenseBudget) {
  const auto protocol =
      sim::ProtocolRegistry::global().create("circles", {.k = 3});  // 27 states
  {
    const kernel::CompiledProtocol compiled(*protocol);
    EXPECT_EQ(compiled.kind(), kernel::TableKind::kDense);
    const auto stats = compiled.stats();
    EXPECT_EQ(stats.states, 27u);
    EXPECT_EQ(stats.entries, 27u * 27u);
    EXPECT_GT(stats.bytes, 0u);
    EXPECT_GT(stats.nonnull_pairs, 0u);
    EXPECT_FALSE(stats.to_string().empty());
  }
  {
    kernel::CompileOptions options;
    options.max_dense_entries = 27 * 27 - 1;  // one short: must go sparse
    const kernel::CompiledProtocol compiled(*protocol, options);
    EXPECT_EQ(compiled.kind(), kernel::TableKind::kSparse);
    EXPECT_FALSE(compiled.has_adjacency());
  }
}

TEST(CompiledProtocolTest, AdjacencyListsExactlyTheNonNullResponders) {
  const auto& registry = sim::ProtocolRegistry::global();
  for (const auto& c : registry_cases()) {
    const auto protocol = registry.create(c.name, {.k = c.k});
    const kernel::CompiledProtocol compiled(*protocol);
    if (compiled.kind() != kernel::TableKind::kDense) continue;
    ASSERT_TRUE(compiled.has_adjacency());
    std::uint64_t total = 0;
    for (std::uint64_t s = 0; s < compiled.num_states(); ++s) {
      const auto sa = static_cast<pp::StateId>(s);
      std::vector<pp::StateId> expected;
      for (std::uint64_t t = 0; t < compiled.num_states(); ++t) {
        const auto tb = static_cast<pp::StateId>(t);
        const pp::Transition tr = protocol->transition(sa, tb);
        if (tr.initiator != sa || tr.responder != tb) expected.push_back(tb);
      }
      const auto got = compiled.active_responders(sa);
      ASSERT_EQ(std::vector<pp::StateId>(got.begin(), got.end()), expected)
          << c.name << " k=" << c.k << " state " << s;
      total += expected.size();
    }
    EXPECT_EQ(compiled.stats().nonnull_pairs, total);
  }
}

TEST(CompiledProtocolTest, SparseCacheIsThreadSafe) {
  // Many threads hammer the same shared sparse kernel over random pairs;
  // every answer must match the virtual function (and under ASan/UBSan this
  // exercises the publication ordering).
  const auto protocol =
      sim::ProtocolRegistry::global().create("circles", {.k = 8});
  kernel::CompileOptions options;
  options.max_dense_entries = 0;
  options.sparse_slots = 1 << 12;  // small: force collisions and overflow
  const kernel::CompiledProtocol compiled(*protocol, options);

  const std::uint64_t ns = protocol->num_states();
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int worker = 0; worker < 8; ++worker) {
    threads.emplace_back([&, worker]() {
      util::Rng rng(1000 + worker);
      for (int i = 0; i < 50'000; ++i) {
        const auto a = static_cast<pp::StateId>(rng.uniform_below(ns));
        const auto b = static_cast<pp::StateId>(rng.uniform_below(ns));
        if (!(compiled.transition(a, b) == protocol->transition(a, b))) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(compiled.stats().sparse_filled, 0u);
}

TEST(CompiledProtocolTest, ConfigSilentAgreesWithIsSilent) {
  const auto protocol =
      sim::ProtocolRegistry::global().create("circles", {.k = 3});
  const kernel::CompiledProtocol compiled(*protocol);
  util::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<pp::StateId> states;
    for (int i = 0; i < 6; ++i) {
      states.push_back(
          static_cast<pp::StateId>(rng.uniform_below(protocol->num_states())));
    }
    const pp::Population population(protocol->num_states(), states);
    EXPECT_EQ(pp::is_silent(population, compiled),
              pp::is_silent(population, *protocol));
  }
}

/// Kernels on vs off must be invisible in the results: same seeds, same
/// trajectories, same final configurations, on every backend.
TEST(KernelEndToEndTest, RunResultsBitwiseIdenticalWithKernelsOnAndOff) {
  for (const auto backend :
       {sim::EngineKind::kAgentArray, sim::EngineKind::kDense,
        sim::EngineKind::kDenseBatched}) {
    sim::RunSpec spec;
    spec.protocol = "circles";
    spec.params.k = 3;
    spec.n = 60;
    spec.trials = 6;
    spec.seed = 99;
    spec.backend = backend;

    spec.use_kernel = true;
    const auto on = sim::BatchRunner().run_one(spec);
    spec.use_kernel = false;
    const auto off = sim::BatchRunner().run_one(spec);

    EXPECT_TRUE(on.kernel_compiled);
    EXPECT_FALSE(off.kernel_compiled);
    ASSERT_EQ(on.trials.size(), off.trials.size());
    for (std::size_t t = 0; t < on.trials.size(); ++t) {
      const auto& a = on.trials[t];
      const auto& b = off.trials[t];
      EXPECT_EQ(a.seed, b.seed);
      EXPECT_EQ(a.outcome.run.interactions, b.outcome.run.interactions);
      EXPECT_EQ(a.outcome.run.state_changes, b.outcome.run.state_changes);
      EXPECT_EQ(a.outcome.run.last_change_step, b.outcome.run.last_change_step);
      EXPECT_EQ(a.outcome.run.silent, b.outcome.run.silent);
      EXPECT_EQ(a.outcome.run.final_outputs, b.outcome.run.final_outputs);
      EXPECT_EQ(a.outcome.correct, b.outcome.correct);
      EXPECT_EQ(a.outcome.consensus, b.outcome.consensus);
    }
  }
}

TEST(KernelEndToEndTest, ChemicalTimeBitwiseIdenticalWithKernelsOnAndOff) {
  // kernel=off on a chemical-time spec takes the fully-virtual Gillespie
  // path; the clocks and the embedded discrete run must match exactly.
  sim::RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 3;
  spec.n = 30;
  spec.trials = 3;
  spec.seed = 5;
  spec.chemical_time = true;

  spec.use_kernel = true;
  const auto on = sim::BatchRunner().run_one(spec);
  spec.use_kernel = false;
  const auto off = sim::BatchRunner().run_one(spec);

  ASSERT_EQ(on.trials.size(), off.trials.size());
  for (std::size_t t = 0; t < on.trials.size(); ++t) {
    EXPECT_EQ(on.trials[t].outcome.run.interactions,
              off.trials[t].outcome.run.interactions);
    EXPECT_EQ(on.trials[t].outcome.run.final_outputs,
              off.trials[t].outcome.run.final_outputs);
    EXPECT_EQ(on.trials[t].stabilization_time,
              off.trials[t].stabilization_time);
    EXPECT_EQ(on.trials[t].convergence_time, off.trials[t].convergence_time);
  }
}

TEST(KernelEndToEndTest, BatchRunnerSurfacesCompileStats) {
  sim::RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 3;
  spec.n = 20;
  spec.trials = 2;
  const auto result = sim::BatchRunner().run_one(spec);
  ASSERT_TRUE(result.kernel_compiled);
  EXPECT_EQ(result.kernel_stats.kind, kernel::TableKind::kDense);
  EXPECT_EQ(result.kernel_stats.states, 27u);
  EXPECT_EQ(result.kernel_stats.entries, 27u * 27u);
  EXPECT_GT(result.kernel_stats.bytes, 0u);
  EXPECT_GE(result.kernel_stats.build_ms, 0.0);
}

TEST(KernelEndToEndTest, EngineRunMatchesRunVirtual) {
  const auto protocol =
      sim::ProtocolRegistry::global().create("tie_report", {.k = 3});
  const std::vector<pp::ColorId> colors{0, 0, 1, 1, 2, 2, 0, 1};

  const auto run_with = [&](bool use_kernel) {
    util::Rng rng(4242);
    pp::Population population(*protocol, colors);
    auto scheduler = pp::make_scheduler(
        pp::SchedulerKind::kUniformRandom,
        static_cast<std::uint32_t>(colors.size()), rng(), protocol.get());
    pp::Engine engine;
    return use_kernel
               ? engine.run(*protocol, population, *scheduler)
               : engine.run_virtual(*protocol, population, *scheduler);
  };

  const pp::RunResult with = run_with(true);
  const pp::RunResult without = run_with(false);
  EXPECT_EQ(with.interactions, without.interactions);
  EXPECT_EQ(with.state_changes, without.state_changes);
  EXPECT_EQ(with.last_change_step, without.last_change_step);
  EXPECT_EQ(with.silent, without.silent);
  EXPECT_EQ(with.final_outputs, without.final_outputs);
}

TEST(RunSpecKernelFieldTest, ToStringAndParseRoundTripKernelOff) {
  sim::RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 4;
  spec.n = 100;
  spec.use_kernel = false;
  const std::string text = spec.to_string();
  EXPECT_NE(text.find("kernel=off"), std::string::npos);
  const sim::RunSpec parsed = sim::RunSpec::parse(text);
  EXPECT_FALSE(parsed.use_kernel);

  spec.use_kernel = true;
  const std::string on_text = spec.to_string();
  EXPECT_EQ(on_text.find("kernel="), std::string::npos);
  EXPECT_TRUE(sim::RunSpec::parse(on_text).use_kernel);
  EXPECT_TRUE(sim::RunSpec::parse(on_text + " kernel=on").use_kernel);
  EXPECT_THROW(sim::RunSpec::parse("circles(k=3) kernel=maybe"),
               std::invalid_argument);
}

}  // namespace
}  // namespace circles
