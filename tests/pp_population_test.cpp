#include "pp/population.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/circles_protocol.hpp"

namespace circles::pp {
namespace {

/// Minimal protocol for substrate tests: states {0,1}, colors {0,1},
/// interaction pulls the responder toward the initiator ("copy protocol").
class CopyProtocol final : public Protocol {
 public:
  std::uint64_t num_states() const override { return 2; }
  std::uint32_t num_colors() const override { return 2; }
  StateId input(ColorId color) const override { return color; }
  OutputSymbol output(StateId state) const override { return state; }
  Transition transition(StateId initiator, StateId responder) const override {
    return {initiator, initiator == responder ? responder : initiator};
  }
  std::string name() const override { return "copy"; }
};

TEST(PopulationTest, BuildsFromColors) {
  CopyProtocol protocol;
  const std::vector<ColorId> colors{0, 1, 1, 0, 1};
  Population pop(protocol, colors);
  EXPECT_EQ(pop.size(), 5u);
  EXPECT_EQ(pop.count(0), 2u);
  EXPECT_EQ(pop.count(1), 3u);
  EXPECT_EQ(pop.distinct_states(), 2u);
  EXPECT_EQ(pop.state(0), 0u);
  EXPECT_EQ(pop.state(1), 1u);
}

TEST(PopulationTest, BuildsFromExplicitStates) {
  const std::vector<StateId> states{3, 3, 1};
  Population pop(5, states);
  EXPECT_EQ(pop.size(), 3u);
  EXPECT_EQ(pop.count(3), 2u);
  EXPECT_EQ(pop.count(1), 1u);
  EXPECT_EQ(pop.count(0), 0u);
}

TEST(PopulationTest, SetStateMaintainsCountsAndPresence) {
  const std::vector<StateId> states{0, 0, 1};
  Population pop(3, states);
  pop.set_state(0, 2);
  EXPECT_EQ(pop.count(0), 1u);
  EXPECT_EQ(pop.count(2), 1u);
  EXPECT_EQ(pop.state(0), 2u);
  EXPECT_EQ(pop.distinct_states(), 3u);
  pop.set_state(1, 2);
  EXPECT_EQ(pop.count(0), 0u);
  EXPECT_EQ(pop.distinct_states(), 2u);
  const auto present = pop.present_states();
  EXPECT_EQ(present, (std::vector<StateId>{1, 2}));
}

TEST(PopulationTest, SetStateToSameIsNoop) {
  const std::vector<StateId> states{0, 1};
  Population pop(2, states);
  pop.set_state(0, 0);
  EXPECT_EQ(pop.count(0), 1u);
  EXPECT_EQ(pop.count(1), 1u);
}

TEST(PopulationTest, PresentStatesSorted) {
  const std::vector<StateId> states{4, 0, 2, 4};
  Population pop(5, states);
  EXPECT_EQ(pop.present_states(), (std::vector<StateId>{0, 2, 4}));
}

TEST(PopulationTest, OutputHistogramAndConsensus) {
  CopyProtocol protocol;
  const std::vector<ColorId> colors{0, 1, 1};
  Population pop(protocol, colors);
  const auto hist = pop.output_histogram(protocol);
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_FALSE(pop.output_consensus(protocol, 0));
  EXPECT_FALSE(pop.output_consensus(protocol, 1));
  pop.set_state(0, 1);
  EXPECT_TRUE(pop.output_consensus(protocol, 1));
}

TEST(PopulationTest, ToStringListsStates) {
  CopyProtocol protocol;
  const std::vector<ColorId> colors{0, 0, 1};
  Population pop(protocol, colors);
  const std::string text = pop.to_string(protocol);
  EXPECT_NE(text.find("s0 x2"), std::string::npos);
  EXPECT_NE(text.find("s1 x1"), std::string::npos);
}

TEST(PopulationTest, CirclesStatesRoundTripThroughPopulation) {
  core::CirclesProtocol protocol(3);
  const std::vector<ColorId> colors{0, 1, 2, 2};
  Population pop(protocol, colors);
  EXPECT_EQ(pop.size(), 4u);
  EXPECT_EQ(pop.count(protocol.input(2)), 2u);
  EXPECT_EQ(pop.output_histogram(protocol),
            (std::vector<std::uint64_t>{1, 1, 2}));
}

TEST(PopulationDeathTest, RejectsOutOfRangeColor) {
  CopyProtocol protocol;
  const std::vector<ColorId> colors{0, 7};
  EXPECT_DEATH(Population(protocol, colors), "color out of range");
}

}  // namespace
}  // namespace circles::pp
