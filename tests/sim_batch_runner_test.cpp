#include "sim/batch_runner.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "sim/session.hpp"

namespace circles::sim {
namespace {

std::vector<RunSpec> small_grid() {
  std::vector<RunSpec> specs;
  {
    RunSpec spec;
    spec.protocol = "circles";
    spec.params.k = 3;
    spec.n = 16;
    spec.trials = 6;
    spec.circles_stats = true;
    specs.push_back(spec);
  }
  {
    RunSpec spec;
    spec.protocol = "tie_report";
    spec.params.k = 3;
    spec.n = 12;
    spec.workload = WorkloadSpec::exact_tie(2);
    spec.grading = Grading::kTieAware;
    spec.trials = 4;
    specs.push_back(spec);
  }
  {
    RunSpec spec;
    spec.protocol = "exact_majority_4state";
    spec.params.k = 2;
    spec.workload = WorkloadSpec::explicit_counts({7, 4});
    spec.scheduler = pp::SchedulerKind::kRoundRobin;
    spec.trials = 3;
    specs.push_back(spec);
  }
  return specs;
}

void expect_identical(const SpecResult& a, const SpecResult& b) {
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t t = 0; t < a.trials.size(); ++t) {
    SCOPED_TRACE(t);
    EXPECT_EQ(a.trials[t].seed, b.trials[t].seed);
    EXPECT_EQ(a.trials[t].workload.counts, b.trials[t].workload.counts);
    EXPECT_EQ(a.trials[t].outcome.run.interactions,
              b.trials[t].outcome.run.interactions);
    EXPECT_EQ(a.trials[t].outcome.run.state_changes,
              b.trials[t].outcome.run.state_changes);
    EXPECT_EQ(a.trials[t].outcome.correct, b.trials[t].outcome.correct);
    EXPECT_EQ(a.trials[t].outcome.consensus, b.trials[t].outcome.consensus);
    EXPECT_EQ(a.trials[t].ket_exchanges, b.trials[t].ket_exchanges);
  }
  EXPECT_EQ(a.correct, b.correct);
  EXPECT_EQ(a.silent, b.silent);
  EXPECT_EQ(a.interactions.mean, b.interactions.mean);
  EXPECT_EQ(a.interactions.p90, b.interactions.p90);
  EXPECT_EQ(a.ket_exchanges.mean, b.ket_exchanges.mean);
}

TEST(BatchRunnerTest, ResultsAreThreadCountInvariant) {
  const auto specs = small_grid();
  const auto single = BatchRunner({.threads = 1, .base_seed = 99}).run(specs);
  const auto pooled = BatchRunner({.threads = 8, .base_seed = 99}).run(specs);
  ASSERT_EQ(single.size(), specs.size());
  ASSERT_EQ(pooled.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(single[i], pooled[i]);
  }
}

TEST(BatchRunnerTest, TrialSeedsAreIndependentStreams) {
  auto specs = small_grid();
  const auto results = BatchRunner({.threads = 2, .base_seed = 5}).run(specs);
  std::set<std::uint64_t> seeds;
  for (const auto& result : results) {
    for (const auto& rec : result.trials) seeds.insert(rec.seed);
  }
  std::size_t total = 0;
  for (const auto& spec : specs) total += spec.trials;
  EXPECT_EQ(seeds.size(), total);  // all (spec, trial) streams distinct

  // Specs that pin their seed share per-trial streams across protocols:
  // identical workloads and schedules for apples-to-apples comparisons.
  RunSpec a, b;
  a.protocol = "circles";
  a.params.k = 2;
  a.n = 14;
  a.trials = 4;
  a.seed = 1234;
  b = a;
  b.protocol = "approx_majority_3state";
  const auto shared = BatchRunner({.threads = 2}).run({a, b});
  for (std::uint32_t t = 0; t < a.trials; ++t) {
    EXPECT_EQ(shared[0].trials[t].seed, shared[1].trials[t].seed);
    EXPECT_EQ(shared[0].trials[t].workload.counts,
              shared[1].trials[t].workload.counts);
  }
}

TEST(BatchRunnerTest, ChangingBaseSeedChangesUnpinnedStreams) {
  auto specs = small_grid();
  const auto first = BatchRunner({.threads = 1, .base_seed = 1}).run(specs);
  const auto second = BatchRunner({.threads = 1, .base_seed = 2}).run(specs);
  EXPECT_NE(first[0].trials[0].seed, second[0].trials[0].seed);
}

TEST(BatchRunnerTest, AggregatesMatchPerTrialRecords) {
  RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 4;
  spec.n = 24;
  spec.trials = 8;
  spec.circles_stats = true;
  const auto result = BatchRunner({.threads = 4, .base_seed = 3}).run_one(spec);

  ASSERT_EQ(result.trial_count, spec.trials);
  ASSERT_EQ(result.trials.size(), spec.trials);
  std::uint32_t correct = 0, silent = 0, matches = 0;
  double interaction_sum = 0.0, exchange_sum = 0.0;
  for (const auto& rec : result.trials) {
    correct += rec.outcome.correct ? 1 : 0;
    silent += rec.outcome.run.silent ? 1 : 0;
    matches += rec.decomposition_matches ? 1 : 0;
    interaction_sum += static_cast<double>(rec.outcome.run.interactions);
    exchange_sum += static_cast<double>(rec.ket_exchanges);
  }
  EXPECT_EQ(result.correct, correct);
  EXPECT_EQ(result.silent, silent);
  EXPECT_EQ(result.decomposition_matches, matches);
  EXPECT_EQ(result.interactions.count, spec.trials);
  EXPECT_DOUBLE_EQ(result.interactions.mean, interaction_sum / spec.trials);
  EXPECT_DOUBLE_EQ(result.ket_exchanges.mean, exchange_sum / spec.trials);

  // Theorem 3.7 on the side: every circles trial must be correct & silent.
  EXPECT_TRUE(result.all_correct());
  EXPECT_TRUE(result.all_silent());
  EXPECT_EQ(result.potential_descent_violations, 0u);
  EXPECT_EQ(result.braket_invariant_violations, 0u);
  EXPECT_EQ(result.decomposition_rate(), 1.0);
}

TEST(BatchRunnerTest, TrialsMatchSingleTrialRunner) {
  RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 3;
  spec.workload = WorkloadSpec::explicit_counts({5, 3, 2});
  spec.trials = 3;
  const auto result = BatchRunner({.threads = 1, .base_seed = 17}).run_one(spec);

  const auto protocol = ProtocolRegistry::global().create("circles", {.k = 3});
  for (const auto& rec : result.trials) {
    TrialOptions options;
    options.seed = rec.seed;
    const TrialOutcome direct =
        run_trial(*protocol, rec.workload, options);
    EXPECT_EQ(direct.run.interactions, rec.outcome.run.interactions);
    EXPECT_EQ(direct.run.state_changes, rec.outcome.run.state_changes);
    EXPECT_EQ(direct.correct, rec.outcome.correct);
  }
}

TEST(BatchRunnerTest, ValidatesSpecsUpFront) {
  RunSpec unknown;
  unknown.protocol = "no_such_protocol";
  unknown.n = 8;
  unknown.trials = 1;
  EXPECT_THROW(BatchRunner().run_one(unknown), std::invalid_argument);

  RunSpec not_circles;
  not_circles.protocol = "exact_majority_4state";
  not_circles.workload = WorkloadSpec::explicit_counts({3, 2});
  not_circles.trials = 1;
  not_circles.circles_stats = true;
  EXPECT_THROW(BatchRunner().run_one(not_circles), std::invalid_argument);

  RunSpec zero_trials;
  zero_trials.protocol = "circles";
  zero_trials.n = 8;
  zero_trials.trials = 0;
  EXPECT_THROW(BatchRunner().run_one(zero_trials), std::invalid_argument);

  // Explicit counts must match the protocol's color count.
  RunSpec mismatched;
  mismatched.protocol = "circles";
  mismatched.params.k = 3;
  mismatched.workload = WorkloadSpec::explicit_counts({5, 3});
  mismatched.trials = 1;
  EXPECT_THROW(BatchRunner().run_one(mismatched), std::invalid_argument);

  // Populations need at least two agents (default n = 0 rejected cleanly).
  RunSpec too_small;
  too_small.protocol = "circles";
  too_small.trials = 1;
  EXPECT_THROW(BatchRunner().run_one(too_small), std::invalid_argument);

  // chemical_time is incompatible with engine-only features.
  RunSpec chemical_combo;
  chemical_combo.protocol = "circles";
  chemical_combo.params.k = 2;
  chemical_combo.n = 8;
  chemical_combo.trials = 1;
  chemical_combo.chemical_time = true;
  chemical_combo.circles_stats = true;
  EXPECT_THROW(BatchRunner().run_one(chemical_combo), std::invalid_argument);
}

TEST(BatchRunnerTest, TieAwareGradingAcceptsTieSymbolConsensus) {
  RunSpec spec;
  spec.protocol = "tie_report";
  spec.params.k = 2;
  spec.workload = WorkloadSpec::explicit_counts({4, 4});
  spec.grading = Grading::kTieAware;
  spec.trials = 4;
  const auto result = BatchRunner({.base_seed = 11}).run_one(spec);
  EXPECT_TRUE(result.all_correct());
  for (const auto& rec : result.trials) {
    EXPECT_EQ(rec.outcome.consensus, std::optional<pp::OutputSymbol>(2u));
  }
}

TEST(BatchRunnerTest, KeepTrialsOffStillAggregates) {
  RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 2;
  spec.n = 10;
  spec.trials = 5;
  const auto result =
      BatchRunner({.threads = 2, .base_seed = 7, .keep_trials = false})
          .run_one(spec);
  EXPECT_TRUE(result.trials.empty());
  EXPECT_EQ(result.trial_count, 5u);
  EXPECT_EQ(result.interactions.count, 5u);
  EXPECT_TRUE(result.all_correct());
}

TEST(SessionBuilderTest, TenLineQuickstart) {
  const SpecResult result = SessionBuilder()
                                .protocol("circles")
                                .k(3)
                                .n(30)
                                .workload(WorkloadSpec::zipf(1.3))
                                .scheduler("uniform")
                                .trials(4)
                                .seed(2025)
                                .run();
  EXPECT_TRUE(result.all_correct());
  EXPECT_TRUE(result.all_silent());
  EXPECT_EQ(result.trial_count, 4u);
}

TEST(SessionBuilderTest, CountsSetKAndWorkload) {
  const RunSpec spec =
      SessionBuilder().protocol("circles").counts({5, 1, 2, 2}).build();
  EXPECT_EQ(spec.params.k, 4u);
  EXPECT_EQ(spec.effective_n(), 10u);
  EXPECT_EQ(spec.workload.family, WorkloadSpec::Family::kExplicit);
}

}  // namespace
}  // namespace circles::sim
