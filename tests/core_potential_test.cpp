#include "core/potential.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace circles::core {
namespace {

TEST(WeightVectorTest, OfPopulationSortsAscending) {
  CirclesProtocol protocol(5);
  const std::vector<pp::StateId> states{
      protocol.encode({0, 0}, 0),  // weight 5
      protocol.encode({0, 3}, 0),  // weight 3
      protocol.encode({4, 0}, 0),  // weight 1
  };
  pp::Population pop(protocol.num_states(), states);
  const WeightVector wv = WeightVector::of(pop, protocol);
  EXPECT_EQ(wv.weights(), (std::vector<std::uint32_t>{1, 3, 5}));
  EXPECT_EQ(wv.min_weight(), 1u);
  EXPECT_EQ(wv.total_energy(), 9u);
}

TEST(WeightVectorTest, LexicographicOrderMatchesOrdinalSemantics) {
  // ω-weighted sums compare by the smallest weights first.
  const WeightVector a({1, 5, 5});
  const WeightVector b({2, 2, 2});
  EXPECT_LT(a, b);  // w1: 1 < 2 dominates everything after it
  const WeightVector c({1, 5, 6});
  EXPECT_LT(a, c);
  EXPECT_GT(c, a);
  EXPECT_EQ(a, WeightVector({1, 5, 5}));
}

TEST(WeightVectorTest, PrefixComparison) {
  // Shorter-is-prefix cases should order by length (not expected in use —
  // populations have fixed n — but the ordering must still be total).
  const WeightVector shorter({1, 2});
  const WeightVector longer({1, 2, 3});
  EXPECT_LT(shorter, longer);
}

TEST(WeightVectorTest, ExchangeEffectMatchesTheorem34) {
  // Simulate the weight change of an exchange: {4, 2} -> {1, 5}; sorted
  // vectors (2, 4) -> (1, 5): lexicographically smaller even though the
  // total energy rose from 6 to 6 (equal here) — confirm comparison runs on
  // the sorted prefix.
  const WeightVector before({2, 4});
  const WeightVector after({1, 5});
  EXPECT_LT(after, before);
  EXPECT_EQ(after.total_energy(), before.total_energy());
}

TEST(WeightVectorTest, ScalarEnergyCanIncreaseWhileOrdinalDecreases) {
  // (2, 3) -> (1, 5): min decreased (valid exchange shape) but Σw grew.
  const WeightVector before({2, 3});
  const WeightVector after({1, 5});
  EXPECT_LT(after, before);
  EXPECT_GT(after.total_energy(), before.total_energy());
}

TEST(WeightVectorTest, EmptyVectorEdge) {
  const WeightVector empty;
  EXPECT_EQ(empty.total_energy(), 0u);
  EXPECT_EQ(empty.weights().size(), 0u);
}

}  // namespace
}  // namespace circles::core
