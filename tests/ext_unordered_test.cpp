#include "extensions/unordered_circles.hpp"

#include <gtest/gtest.h>

#include "analysis/trial.hpp"
#include "analysis/workload.hpp"

namespace circles::ext {
namespace {

using analysis::TrialOptions;
using analysis::Workload;

TEST(UnorderedCirclesProtocolTest, StateMetadata) {
  for (std::uint32_t k : {1u, 2u, 4u, 6u}) {
    UnorderedCirclesProtocol protocol(k);
    EXPECT_EQ(protocol.num_states(), 2ull * k * k * k * k);
    EXPECT_EQ(protocol.num_colors(), k);
  }
}

TEST(UnorderedCirclesProtocolTest, EncodeDecodeRoundTrip) {
  for (std::uint32_t k : {2u, 3u}) {
    UnorderedCirclesProtocol protocol(k);
    for (pp::StateId s = 0; s < protocol.num_states(); ++s) {
      const auto f = protocol.decode(s);
      EXPECT_EQ(protocol.encode(f), s);
    }
  }
}

TEST(UnorderedCirclesProtocolTest, InputIgnoresColorValue) {
  // The unordered model: initialization may not depend on the numeric color
  // value except for remembering the color itself.
  UnorderedCirclesProtocol protocol(4);
  for (pp::ColorId c = 0; c < 4; ++c) {
    const auto f = protocol.decode(protocol.input(c));
    EXPECT_EQ(f.color, c);
    EXPECT_TRUE(f.leader);
    EXPECT_EQ(f.label, 0u);
    EXPECT_EQ(f.ket, 0u);
    EXPECT_EQ(f.out, c);
  }
}

TEST(UnorderedCirclesProtocolTest, LabelChangeRestartsCirclesLayer) {
  UnorderedCirclesProtocol protocol(3);
  // Two leaders of different colors with equal labels: responder bumps and
  // must restart its ket to the new label and its out to its own color.
  const pp::StateId a = protocol.encode({0, true, 0, 2, 0});
  const pp::StateId b = protocol.encode({1, true, 0, 2, 2});
  const pp::Transition tr = protocol.transition(a, b);
  const auto fb = protocol.decode(tr.responder);
  EXPECT_EQ(fb.label, 1u);
  // Restart happened: ket := new label (unless the subsequent exchange step
  // moved it — check consistency either way).
  const auto fa = protocol.decode(tr.initiator);
  const bool restarted_then_kept = fb.ket == fb.label && fb.out == fb.color;
  const bool restarted_then_exchanged = fa.ket == fb.label || fb.ket != 2u;
  EXPECT_TRUE(restarted_then_kept || restarted_then_exchanged);
}

TEST(UnorderedCirclesProtocolTest, DiagonalBroadcastsOwnColor) {
  UnorderedCirclesProtocol protocol(4);
  // Agent with label 2 and ket 2 (diagonal) of color 3; meets a non-diagonal
  // agent whose bra-ket refuses the exchange: ⟨2|2⟩ w=4; ⟨0|1⟩ w=1; post
  // min would be min(w(2,1)=3, w(0,2)=2)=2 > 1 — no exchange.
  const pp::StateId diag = protocol.encode({3, false, 2, 2, 3});
  const pp::StateId other = protocol.encode({0, false, 0, 1, 0});
  const pp::Transition tr = protocol.transition(diag, other);
  EXPECT_EQ(protocol.decode(tr.initiator).out, 3u);
  EXPECT_EQ(protocol.decode(tr.responder).out, 3u);
}

TEST(UnorderedCirclesProtocolTest, ExchangeUsesLabelAsBra) {
  UnorderedCirclesProtocol protocol(5);
  // Labels 0 and 3 with kets 4 and 0: ⟨0|4⟩ + ⟨3|0⟩ must exchange (the
  // diagonal-creation example), kets swap.
  const pp::StateId a = protocol.encode({0, false, 0, 4, 0});
  const pp::StateId b = protocol.encode({1, false, 3, 0, 1});
  const pp::Transition tr = protocol.transition(a, b);
  EXPECT_EQ(protocol.decode(tr.initiator).ket, 0u);
  EXPECT_EQ(protocol.decode(tr.responder).ket, 4u);
  // The initiator is now diagonal (label 0, ket 0): broadcasts its color 0.
  EXPECT_EQ(protocol.decode(tr.initiator).out, 0u);
  EXPECT_EQ(protocol.decode(tr.responder).out, 0u);
}

TEST(UnorderedCirclesSimulationTest, EmpiricalCorrectnessIsHigh) {
  // The restart composition is NOT always-correct (DESIGN.md §5.4); measure
  // it on fixed seeds and require a healthy success rate plus silence on
  // every success.
  util::Rng rng(2025);
  int correct = 0;
  int total = 0;
  for (const std::uint32_t k : {2u, 3u}) {
    UnorderedCirclesProtocol protocol(k);
    for (int trial = 0; trial < 15; ++trial) {
      const Workload w = analysis::random_unique_winner(rng, 14, k);
      TrialOptions options;
      options.seed = rng();
      options.engine.max_interactions = 5'000'000;
      const auto outcome = analysis::run_trial(protocol, w, options);
      ++total;
      if (outcome.correct) ++correct;
    }
  }
  EXPECT_GE(correct * 10, total * 6)
      << "restart composition fell below 60% correctness: " << correct << "/"
      << total;
}

TEST(UnorderedCirclesSimulationTest, TwoAgentsOneColor) {
  UnorderedCirclesProtocol protocol(2);
  Workload w;
  w.counts = {2, 0};
  TrialOptions options;
  options.seed = 3;
  const auto outcome = analysis::run_trial(protocol, w, options);
  EXPECT_TRUE(outcome.run.silent);
  EXPECT_TRUE(outcome.correct);
}

TEST(UnorderedCirclesProtocolTest, StateNames) {
  UnorderedCirclesProtocol protocol(3);
  const pp::StateId s = protocol.encode({2, true, 1, 0, 2});
  EXPECT_EQ(protocol.state_name(s), "c2L<1|0>:2");
}

}  // namespace
}  // namespace circles::ext
