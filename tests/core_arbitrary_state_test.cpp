// Theorem 3.4 is initialization-free: the ordinal potential argument never
// uses the input map, so Circles stabilizes (finitely many exchanges, then
// silence) from ARBITRARY states — including states no honest execution
// could produce (mismatched bra/ket multisets, lying out fields).
// Correctness (Theorem 3.7) and the decomposition (Lemma 3.6) are NOT
// expected from such states — Lemma 3.3's conservation is an initialization
// property — but the machine must still grind to a provable halt.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/circles_protocol.hpp"
#include "core/invariants.hpp"
#include "extensions/tie_report.hpp"
#include "extensions/unordered_circles.hpp"
#include "obs/obs.hpp"
#include "pp/engine.hpp"
#include "pp/scheduler.hpp"
#include "util/rng.hpp"

namespace circles::core {
namespace {

class ArbitraryStateSweep
    : public testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
};

TEST_P(ArbitraryStateSweep, StabilizesFromAnyConfiguration) {
  const auto [k, seed] = GetParam();
  CirclesProtocol protocol(k);
  util::Rng rng(seed);
  const std::uint32_t n = 24;

  std::vector<pp::StateId> states(n);
  for (auto& s : states) {
    s = static_cast<pp::StateId>(rng.uniform_below(protocol.num_states()));
  }
  pp::Population population(protocol.num_states(), states);

  // The legacy event-level monitor runs unchanged inside the obs:: probe
  // pipeline (the MonitorProbeAdapter usage example): the adapter exposes
  // it through Probe::as_monitor(), the RecorderMonitor feeds the
  // count-level probes alongside, and the engine sees one monitor list.
  CirclesBraKetView view(protocol);
  PotentialDescentMonitor potential(view);
  obs::MonitorProbeAdapter adapter(potential);
  obs::EnergyTrace energy = obs::EnergyTrace::for_circles(protocol);

  obs::RecorderOptions recorder_options;
  recorder_options.interaction_horizon = pp::EngineOptions{}.max_interactions;
  obs::Recorder recorder(recorder_options);
  recorder.add(&adapter);
  recorder.add(&energy, obs::GridSpec::parse("log:64"));
  obs::RecorderMonitor recorder_monitor(recorder);
  std::array<pp::Monitor*, 2> monitors{&recorder_monitor,
                                       adapter.as_monitor()};

  auto scheduler =
      pp::make_scheduler(pp::SchedulerKind::kUniformRandom, n, rng());
  pp::Engine engine;
  const auto result = engine.run(
      protocol, population, *scheduler,
      std::span<pp::Monitor* const>(monitors.data(), monitors.size()));

  // Stabilization and the potential mechanism hold unconditionally.
  EXPECT_TRUE(result.silent);
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_EQ(potential.descent_violations(), 0u);
  // The count pipeline observed the same run: at least the initial and
  // final configurations, strictly increasing interaction indices.
  const obs::TraceTable& trace = *energy.table();
  ASSERT_GE(trace.num_rows(), 1u);
  for (std::size_t row = 1; row < trace.num_rows(); ++row) {
    EXPECT_GT(trace.at(row, 0), trace.at(row - 1, 0));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ArbitraryStateSweep,
    testing::Combine(testing::Values(2u, 3u, 5u, 9u),
                     testing::Values(1ull, 2ull, 3ull)),
    [](const testing::TestParamInfo<std::tuple<std::uint32_t, std::uint64_t>>&
           info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ArbitraryStateTest, AdversarialSchedulerAlsoHalts) {
  CirclesProtocol protocol(4);
  util::Rng rng(99);
  std::vector<pp::StateId> states(12);
  for (auto& s : states) {
    s = static_cast<pp::StateId>(rng.uniform_below(protocol.num_states()));
  }
  pp::Population population(protocol.num_states(), states);
  auto scheduler = pp::make_scheduler(pp::SchedulerKind::kAdversarialDelay, 12,
                                      rng(), &protocol);
  pp::Engine engine;
  const auto result = engine.run(protocol, population, *scheduler);
  EXPECT_TRUE(result.silent);
}

TEST(ArbitraryStateTest, TieReportStabilizesFromAnyConfiguration) {
  // The retractor layer inherits initialization-freeness: exchanges are
  // finite regardless, retractors either meet a diagonal (cleared) or no
  // diagonal survives (they freeze everyone at TIE).
  ext::TieReportProtocol protocol(4);
  util::Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<pp::StateId> states(16);
    for (auto& s : states) {
      s = static_cast<pp::StateId>(rng.uniform_below(protocol.num_states()));
    }
    pp::Population population(protocol.num_states(), states);
    auto scheduler =
        pp::make_scheduler(pp::SchedulerKind::kUniformRandom, 16, rng());
    pp::Engine engine;
    const auto result = engine.run(protocol, population, *scheduler);
    EXPECT_TRUE(result.silent) << "trial " << trial;
  }
}

TEST(ArbitraryStateTest, UnorderedCirclesStabilizesFromAnyConfiguration) {
  ext::UnorderedCirclesProtocol protocol(3);
  util::Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<pp::StateId> states(14);
    for (auto& s : states) {
      s = static_cast<pp::StateId>(rng.uniform_below(protocol.num_states()));
    }
    pp::Population population(protocol.num_states(), states);
    auto scheduler =
        pp::make_scheduler(pp::SchedulerKind::kUniformRandom, 14, rng());
    pp::Engine engine;
    const auto result = engine.run(protocol, population, *scheduler);
    EXPECT_TRUE(result.silent) << "trial " << trial;
  }
}

TEST(ArbitraryStateTest, AllSameBraKetIsSilentModuloOutputs) {
  // n agents all holding ⟨1|2⟩ with differing outs: no exchange can fire
  // (identical bra-kets) and no diagonal exists, so the configuration is
  // silent immediately — outputs simply disagree forever.
  CirclesProtocol protocol(3);
  std::vector<pp::StateId> states{protocol.encode({1, 2}, 0),
                                  protocol.encode({1, 2}, 1),
                                  protocol.encode({1, 2}, 2)};
  pp::Population population(protocol.num_states(), states);
  auto scheduler = pp::make_scheduler(pp::SchedulerKind::kRoundRobin, 3, 0);
  pp::Engine engine;
  const auto result = engine.run(protocol, population, *scheduler);
  EXPECT_TRUE(result.silent);
  EXPECT_EQ(result.interactions, 0u);
}

}  // namespace
}  // namespace circles::core
