#include "pp/engine.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "pp/silence.hpp"
#include "pp/trace.hpp"

namespace circles::pp {
namespace {

/// Epidemic protocol: state 1 infects state 0; silent once uniform.
class EpidemicProtocol final : public Protocol {
 public:
  std::uint64_t num_states() const override { return 2; }
  std::uint32_t num_colors() const override { return 2; }
  StateId input(ColorId color) const override { return color; }
  OutputSymbol output(StateId state) const override { return state; }
  Transition transition(StateId initiator, StateId responder) const override {
    if (initiator == 1 || responder == 1) return {1, 1};
    return {initiator, responder};
  }
  std::string name() const override { return "epidemic"; }
};

/// Never silent: the pair (0,1) flips both states forever.
class OscillatorProtocol final : public Protocol {
 public:
  std::uint64_t num_states() const override { return 2; }
  std::uint32_t num_colors() const override { return 2; }
  StateId input(ColorId color) const override { return color; }
  OutputSymbol output(StateId state) const override { return state; }
  Transition transition(StateId initiator, StateId responder) const override {
    if (initiator != responder) return {responder, initiator};
    return {initiator, responder};
  }
  std::string name() const override { return "oscillator"; }
};

std::vector<ColorId> colors_of(std::initializer_list<ColorId> list) {
  return std::vector<ColorId>(list);
}

TEST(SilenceTest, DetectsSilentAndNonSilentConfigurations) {
  EpidemicProtocol protocol;
  {
    Population pop(protocol, colors_of({0, 0, 0}));
    EXPECT_TRUE(is_silent(pop, protocol));
  }
  {
    Population pop(protocol, colors_of({1, 1}));
    EXPECT_TRUE(is_silent(pop, protocol));
  }
  {
    Population pop(protocol, colors_of({0, 1}));
    EXPECT_FALSE(is_silent(pop, protocol));
  }
}

TEST(SilenceTest, SameStatePairNeedsTwoAgents) {
  // A protocol where (s, s) changes states but only one agent holds s.
  class SelfPair final : public Protocol {
   public:
    std::uint64_t num_states() const override { return 2; }
    std::uint32_t num_colors() const override { return 2; }
    StateId input(ColorId color) const override { return color; }
    OutputSymbol output(StateId state) const override { return state; }
    Transition transition(StateId i, StateId r) const override {
      if (i == 0 && r == 0) return {1, 1};
      return {i, r};
    }
    std::string name() const override { return "selfpair"; }
  } protocol;
  {
    Population pop(protocol, colors_of({0, 1}));
    EXPECT_TRUE(is_silent(pop, protocol));  // only one agent in state 0
  }
  {
    Population pop(protocol, colors_of({0, 0}));
    EXPECT_FALSE(is_silent(pop, protocol));
  }
}

TEST(EngineTest, EpidemicReachesSilenceUnderAllSchedulers) {
  EpidemicProtocol protocol;
  for (const SchedulerKind kind : kAllSchedulerKinds) {
    std::vector<ColorId> colors(16, 0);
    colors[3] = 1;
    Population pop(protocol, colors);
    auto sched = make_scheduler(kind, 16, 77, &protocol);
    Engine engine;
    const RunResult result = engine.run(protocol, pop, *sched);
    EXPECT_TRUE(result.silent) << to_string(kind);
    EXPECT_FALSE(result.budget_exhausted) << to_string(kind);
    EXPECT_TRUE(pop.output_consensus(protocol, 1)) << to_string(kind);
    EXPECT_EQ(result.state_changes, 15u) << to_string(kind);
    EXPECT_TRUE(result.consensus_on(1)) << to_string(kind);
  }
}

TEST(EngineTest, InitiallySilentConfigurationStopsImmediately) {
  EpidemicProtocol protocol;
  Population pop(protocol, colors_of({0, 0, 0, 0}));
  auto sched = make_scheduler(SchedulerKind::kUniformRandom, 4, 1);
  Engine engine;
  const RunResult result = engine.run(protocol, pop, *sched);
  EXPECT_TRUE(result.silent);
  EXPECT_EQ(result.interactions, 0u);
}

TEST(EngineTest, BudgetExhaustionReported) {
  OscillatorProtocol protocol;
  Population pop(protocol, colors_of({0, 1}));
  auto sched = make_scheduler(SchedulerKind::kUniformRandom, 2, 5);
  EngineOptions options;
  options.max_interactions = 1000;
  Engine engine(options);
  const RunResult result = engine.run(protocol, pop, *sched);
  EXPECT_FALSE(result.silent);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_EQ(result.interactions, 1000u);
}

TEST(EngineTest, StopWhenSilentDisabledRunsToBudget) {
  EpidemicProtocol protocol;
  Population pop(protocol, colors_of({0, 1, 0, 0}));
  auto sched = make_scheduler(SchedulerKind::kUniformRandom, 4, 5);
  EngineOptions options;
  options.max_interactions = 5000;
  options.stop_when_silent = false;
  Engine engine(options);
  const RunResult result = engine.run(protocol, pop, *sched);
  EXPECT_EQ(result.interactions, 5000u);
  EXPECT_TRUE(result.silent);  // exact post-hoc check still reports silence
}

TEST(EngineTest, MonitorsObserveAllInteractions) {
  EpidemicProtocol protocol;
  Population pop(protocol, colors_of({0, 0, 1, 0}));
  auto sched = make_scheduler(SchedulerKind::kRoundRobin, 4, 0);
  InteractionRecorder recorder;
  StateChangeCounter counter;
  std::array<Monitor*, 2> monitors{&recorder, &counter};
  Engine engine;
  const RunResult result = engine.run(
      protocol, pop, *sched,
      std::span<Monitor* const>(monitors.data(), monitors.size()));
  EXPECT_EQ(recorder.events().size(), result.interactions);
  EXPECT_EQ(counter.changes(), result.state_changes);
  EXPECT_EQ(counter.changes() + counter.nulls(), result.interactions);
  EXPECT_EQ(counter.changes(), 3u);  // three agents to infect
}

TEST(EngineTest, EventBeforeAfterStatesConsistent) {
  EpidemicProtocol protocol;
  Population pop(protocol, colors_of({1, 0}));
  auto sched = make_scheduler(SchedulerKind::kRoundRobin, 2, 0);
  InteractionRecorder recorder;
  std::array<Monitor*, 1> monitors{&recorder};
  Engine engine;
  engine.run(protocol, pop, *sched,
             std::span<Monitor* const>(monitors.data(), monitors.size()));
  ASSERT_FALSE(recorder.events().empty());
  const InteractionEvent& first = recorder.events().front();
  EXPECT_EQ(first.step, 0u);
  EXPECT_TRUE(first.changed());
  const Transition tr =
      protocol.transition(first.initiator_before, first.responder_before);
  EXPECT_EQ(tr.initiator, first.initiator_after);
  EXPECT_EQ(tr.responder, first.responder_after);
}

TEST(EngineTest, OutputStabilityMonitorTracksLastFlip) {
  EpidemicProtocol protocol;
  Population pop(protocol, colors_of({1, 0, 0}));
  auto sched = make_scheduler(SchedulerKind::kRoundRobin, 3, 0);
  OutputStabilityMonitor stability;
  std::array<Monitor*, 1> monitors{&stability};
  Engine engine;
  const RunResult result = engine.run(
      protocol, pop, *sched,
      std::span<Monitor* const>(monitors.data(), monitors.size()));
  EXPECT_GT(stability.last_output_change(), 0u);
  EXPECT_LE(stability.last_output_change(), result.last_change_step + 1);
  EXPECT_EQ(stability.total_output_flips(), 2u);
}

TEST(EngineTest, RunProtocolConvenienceWrapper) {
  EpidemicProtocol protocol;
  auto sched = make_scheduler(SchedulerKind::kShuffledSweep, 8, 21);
  std::vector<ColorId> colors(8, 0);
  colors[0] = 1;
  const RunResult result = run_protocol(protocol, colors, *sched);
  EXPECT_TRUE(result.silent);
  EXPECT_TRUE(result.consensus_on(1));
}

TEST(RunResultTest, ConsensusOnHelper) {
  RunResult r;
  r.final_outputs = {0, 5, 0};
  EXPECT_TRUE(r.consensus_on(1));
  EXPECT_FALSE(r.consensus_on(0));
  EXPECT_FALSE(r.consensus_on(9));
  r.final_outputs = {2, 5, 0};
  EXPECT_FALSE(r.consensus_on(1));
}

}  // namespace
}  // namespace circles::pp
