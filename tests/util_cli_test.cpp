// util::Cli list-flag parsing, focused on double_list_flag (probe grids,
// --sample-points=0.1,0.5,0.9).
#include <gtest/gtest.h>

#include <vector>

#include "util/cli.hpp"

namespace circles::util {
namespace {

/// Builds a Cli from literal arguments (argv[0] is supplied).
Cli make_cli(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Cli(static_cast<int>(args.size()),
             const_cast<char**>(args.data()));
}

TEST(CliDoubleListFlagTest, ParsesCommaSeparatedDoubles) {
  Cli cli = make_cli({"--sample-points=0.1,0.5,0.9"});
  const auto values =
      cli.double_list_flag("sample-points", "", "sample fractions");
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 0.1);
  EXPECT_DOUBLE_EQ(values[1], 0.5);
  EXPECT_DOUBLE_EQ(values[2], 0.9);
  cli.finish();
}

TEST(CliDoubleListFlagTest, ParsesScientificAndIntegerForms) {
  Cli cli = make_cli({"--points=1e-3,2,0.25"});
  const auto values = cli.double_list_flag("points", "", "help");
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 1e-3);
  EXPECT_DOUBLE_EQ(values[1], 2.0);
  EXPECT_DOUBLE_EQ(values[2], 0.25);
}

TEST(CliDoubleListFlagTest, UsesDefaultWhenUnset) {
  Cli cli = make_cli({});
  const auto values = cli.double_list_flag("points", "0.25,0.75", "help");
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0], 0.25);
  EXPECT_DOUBLE_EQ(values[1], 0.75);
}

TEST(CliDoubleListFlagTest, EmptyDefaultMeansOptionalFlag) {
  // Unlike int_list_flag, an empty default is legal: the flag is simply
  // unset and callers skip the feature (no probe-grid override).
  Cli cli = make_cli({});
  EXPECT_TRUE(cli.double_list_flag("points", "", "help").empty());
}

TEST(CliDoubleListFlagTest, SingleValue) {
  Cli cli = make_cli({"--points=0.5"});
  const auto values = cli.double_list_flag("points", "", "help");
  ASSERT_EQ(values.size(), 1u);
  EXPECT_DOUBLE_EQ(values[0], 0.5);
}

TEST(CliDoubleListFlagDeathTest, MalformedValueExits) {
  EXPECT_EXIT(
      {
        Cli cli = make_cli({"--points=0.1,banana"});
        (void)cli.double_list_flag("points", "", "help");
      },
      testing::ExitedWithCode(2), "expects comma-separated numbers");
}

TEST(CliDoubleListFlagDeathTest, TrailingGarbageExits) {
  EXPECT_EXIT(
      {
        Cli cli = make_cli({"--points=0.5x"});
        (void)cli.double_list_flag("points", "", "help");
      },
      testing::ExitedWithCode(2), "expects comma-separated numbers");
}

}  // namespace
}  // namespace circles::util
