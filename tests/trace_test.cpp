// Span tracing + flight recorder: ring semantics, thread registration,
// Chrome-trace export with B/E repair, failure dumps with greppable REPRO
// lines — and the load-bearing contract that spans-on vs spans-off runs are
// bitwise identical on every backend.
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/sim.hpp"

namespace circles {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// --- buffer primitives -----------------------------------------------------

TEST(TraceBufferTest, DrainPreservesEmissionOrderAndPayload) {
  trace::Tracer tracer;
  trace::TraceBuffer* tb = tracer.thread_buffer();
  ASSERT_NE(tb, nullptr);
  EXPECT_EQ(tb->thread_name(), "main");
  EXPECT_NE(tb->tid(), 0u);

  tb->begin("outer");
  tb->instant("tick", "epoch", 7);
  tb->end("outer");

  const auto events = tracer.drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].ph, 'B');
  EXPECT_STREQ(events[1].name, "tick");
  EXPECT_EQ(events[1].ph, 'i');
  ASSERT_NE(events[1].arg_name, nullptr);
  EXPECT_STREQ(events[1].arg_name, "epoch");
  EXPECT_EQ(events[1].arg, 7u);
  EXPECT_EQ(events[2].ph, 'E');
  // Monotone timestamps within one thread.
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  EXPECT_LE(events[1].ts_ns, events[2].ts_ns);
  for (const trace::Event& e : events) {
    EXPECT_EQ(e.tid, tb->tid());
    ASSERT_NE(e.thread_name, nullptr);
    EXPECT_STREQ(e.thread_name, "main");
  }
}

TEST(TraceBufferTest, RingOverwritesKeepingTheMostRecentWindow) {
  trace::TracerOptions options;
  options.buffer_capacity = 8;  // the floor: smaller requests round up to 8
  trace::Tracer tracer(options);
  trace::TraceBuffer* tb = tracer.thread_buffer();
  for (std::uint64_t i = 0; i < 12; ++i) {
    tb->instant("tick", "i", i);
  }
  EXPECT_EQ(tb->dropped(), 4u);
  EXPECT_EQ(tracer.events_dropped(), 4u);
  const auto events = tracer.drain();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first drain of the surviving lap: 4, 5, ..., 11.
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(events[i].arg, 4 + i);
  }
}

TEST(TracerTest, RegistersWorkerThreadsWithHintedNames) {
  trace::Tracer tracer;
  constexpr int kWorkers = 3;
  std::vector<std::thread> workers;
  for (int i = 0; i < kWorkers; ++i) {
    workers.emplace_back([&tracer] {
      trace::TraceBuffer* tb = tracer.thread_buffer("worker");
      ASSERT_NE(tb, nullptr);
      tb->instant("work");
      // Re-resolution without a hint finds the same buffer lock-free.
      EXPECT_EQ(tracer.thread_buffer(), tb);
    });
  }
  for (auto& w : workers) w.join();

  std::set<std::uint64_t> tids;
  std::set<std::string> names;
  for (const trace::Event& e : tracer.drain()) {
    tids.insert(e.tid);
    names.insert(e.thread_name);
  }
  EXPECT_EQ(tids.size(), kWorkers);
  for (const std::string& name : names) {
    EXPECT_EQ(name.rfind("worker-", 0), 0u) << name;
  }
}

// --- null-safe disabled path -----------------------------------------------

TEST(TracerTest, NullTracerPathIsInert) {
  EXPECT_EQ(trace::buffer(nullptr), nullptr);
  EXPECT_EQ(trace::buffer(nullptr, "worker"), nullptr);
  trace::ScopedSpan plain(nullptr, "never");
  trace::ScopedSpan with_arg(nullptr, "never", "n", 1);
}

// --- Chrome-trace export ---------------------------------------------------

TEST(TracerTest, ChromeTraceJsonHasMetadataAndMatchedPairs) {
  trace::Tracer tracer;
  trace::TraceBuffer* tb = tracer.thread_buffer();
  tb->begin("phase", "tasks", 2);
  tb->instant("tick");
  tb->end("phase");

  const std::string json = tracer.chrome_trace_json();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '[');
  ASSERT_GE(json.size(), 2u);
  EXPECT_EQ(json[json.size() - 2], ']');  // trailing newline after the array
  // Thread metadata labels the track.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"main\""), std::string::npos);
  // The span and its args object.
  EXPECT_NE(json.find("\"name\":\"phase\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"tasks\":2}"), std::string::npos);
  // Instants carry thread scope.
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  // Required keys on every event; 'M' metadata carries no timestamp.
  const std::size_t events = count_occurrences(json, "\"ph\":");
  const std::size_t metadata = count_occurrences(json, "\"ph\":\"M\"");
  EXPECT_EQ(count_occurrences(json, "\"pid\":"), events);
  EXPECT_EQ(count_occurrences(json, "\"tid\":"), events);
  EXPECT_EQ(count_occurrences(json, "\"ts\":"), events - metadata);
  // B and E match.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""),
            count_occurrences(json, "\"ph\":\"E\""));
}

TEST(TracerTest, ExportRepairsOrphanedBeginsAndEnds) {
  trace::Tracer tracer;
  trace::TraceBuffer* tb = tracer.thread_buffer();
  // An 'E' whose 'B' fell off the ring, and a 'B' that never closed: the
  // export must drop the former and synthesize a close for the latter.
  tb->end("evicted");
  tb->begin("unclosed");
  tb->instant("tick");

  const std::string json = tracer.chrome_trace_json();
  EXPECT_EQ(json.find("\"name\":\"evicted\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"unclosed\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"E\""), 1u);
}

TEST(TracerTest, WriteChromeTraceWritesTheJsonFile) {
  trace::Tracer tracer;
  tracer.thread_buffer()->instant("tick");
  const std::string path = testing::TempDir() + "/trace_test.trace.json";
  tracer.write_chrome_trace(path);
  EXPECT_EQ(slurp(path), tracer.chrome_trace_json());
  std::remove(path.c_str());
}

// --- flight recorder -------------------------------------------------------

TEST(TracerTest, DumpFailureEmitsContextEventsAndReproLine) {
  trace::Tracer tracer;
  trace::TraceBuffer* tb = tracer.thread_buffer();
  tb->instant("dense.epochs", "epoch", 512);

  trace::FailureContext ctx;
  ctx.spec = "circles(k=3) n=300 trials=1 budget=200";
  ctx.backend = "dense_batched";
  ctx.trial_index = 2;
  ctx.trial_seed = 18446744073709551615ull;  // full uint64 survives
  ctx.reason = "grader fail";
  ctx.verdict = "correct=0 silent=1 budget_exhausted=0 interactions=900 "
                "state_changes=120";
  ctx.final_outputs = "100 100 100";

  const std::string path = testing::TempDir() + "/trace_test.dump.txt";
  std::FILE* out = std::fopen(path.c_str(), "wb");
  ASSERT_NE(out, nullptr);
  tracer.dump_failure(ctx, out);
  std::fclose(out);
  const std::string dump = slurp(path);
  std::remove(path.c_str());

  EXPECT_NE(dump.find("=== trial failure: grader fail ==="),
            std::string::npos);
  EXPECT_NE(dump.find("spec: circles(k=3) n=300 trials=1 budget=200"),
            std::string::npos);
  EXPECT_NE(dump.find("backend: dense_batched"), std::string::npos);
  EXPECT_NE(dump.find("seed: 18446744073709551615"), std::string::npos);
  EXPECT_NE(dump.find("verdict: correct=0 silent=1"), std::string::npos);
  EXPECT_NE(dump.find("final outputs: 100 100 100"), std::string::npos);
  EXPECT_NE(dump.find("dense.epochs"), std::string::npos);
  EXPECT_NE(dump.find("REPRO: sweep --spec='circles(k=3) n=300 trials=1 "
                      "budget=200' --trial-seed=18446744073709551615"),
            std::string::npos);
  EXPECT_NE(dump.find("=== end trial failure ==="), std::string::npos);
}

// --- batch integration -----------------------------------------------------

sim::RunSpec small_spec(sim::EngineKind backend, std::uint64_t n) {
  sim::RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 3;
  spec.n = n;
  spec.trials = 3;
  spec.seed = 7;
  spec.backend = backend;
  return spec;
}

TEST(TraceBatchTest, ResultsBitwiseIdenticalWithSpansOnEveryBackend) {
  for (const auto backend :
       {sim::EngineKind::kAgentArray, sim::EngineKind::kDense,
        sim::EngineKind::kDenseBatched, sim::EngineKind::kFluid}) {
    SCOPED_TRACE(sim::to_string(backend));
    const std::uint64_t n =
        backend == sim::EngineKind::kFluid ? 100'000 : 300;
    const sim::RunSpec spec = small_spec(backend, n);

    const auto off = sim::BatchRunner(sim::BatchOptions{}).run_one(spec);

    trace::Tracer tracer;
    sim::BatchOptions with;
    with.tracer = &tracer;
    const auto on = sim::BatchRunner(with).run_one(spec);

    ASSERT_EQ(off.trials.size(), on.trials.size());
    for (std::size_t t = 0; t < on.trials.size(); ++t) {
      EXPECT_EQ(off.trials[t].seed, on.trials[t].seed);
      EXPECT_EQ(off.trials[t].outcome.run.interactions,
                on.trials[t].outcome.run.interactions);
      EXPECT_EQ(off.trials[t].outcome.run.state_changes,
                on.trials[t].outcome.run.state_changes);
      EXPECT_EQ(off.trials[t].outcome.run.final_outputs,
                on.trials[t].outcome.run.final_outputs);
    }
    // And the tracer actually saw the work: phase spans plus one span per
    // trial.
    std::size_t trial_begins = 0;
    bool saw_run_phase = false;
    for (const trace::Event& e : tracer.drain()) {
      if (e.ph == 'B' && std::string(e.name) == "batch.trial") ++trial_begins;
      if (std::string(e.name) == "batch.run") saw_run_phase = true;
    }
    EXPECT_EQ(trial_begins, on.trials.size());
    EXPECT_TRUE(saw_run_phase);
  }
}

TEST(TraceBatchTest, SpansOutWritesPerSpecTimeline) {
  const std::string path = testing::TempDir() + "/trace_batch.trace.json";
  sim::RunSpec spec = small_spec(sim::EngineKind::kDenseBatched, 300);
  spec.spans_out = path;
  (void)sim::BatchRunner(sim::BatchOptions{}).run_one(spec);
  const std::string json = slurp(path);
  std::remove(path.c_str());
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\":\"batch.trial\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"kernel.compile\""), std::string::npos);
  EXPECT_NE(json.find("dense.run_batched"), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""),
            count_occurrences(json, "\"ph\":\"E\""));
}

TEST(TraceBatchTest, FailingTrialDumpsReproLineThatReplaysIdentically) {
  // A budget too small to reach silence: budget_exhausted on every trial.
  sim::RunSpec spec = small_spec(sim::EngineKind::kAgentArray, 300);
  spec.trials = 1;
  spec.engine.max_interactions = 200;

  trace::Tracer tracer;
  sim::BatchOptions options;
  options.tracer = &tracer;
  options.threads = 1;
  testing::internal::CaptureStderr();
  const auto result = sim::BatchRunner(options).run_one(spec);
  const std::string dump = testing::internal::GetCapturedStderr();
  ASSERT_EQ(result.trials.size(), 1u);
  const sim::TrialRecord& rec = result.trials[0];
  ASSERT_TRUE(rec.outcome.run.budget_exhausted);

  // The dump names the reason and carries the greppable REPRO line.
  EXPECT_NE(dump.find("=== trial failure: budget_exhausted ==="),
            std::string::npos)
      << dump;
  const std::size_t repro_at = dump.find("REPRO: sweep --spec='");
  ASSERT_NE(repro_at, std::string::npos) << dump;
  const std::size_t spec_from = repro_at + std::string("REPRO: sweep --spec='").size();
  const std::size_t spec_to = dump.find('\'', spec_from);
  ASSERT_NE(spec_to, std::string::npos);
  const std::string repro_spec = dump.substr(spec_from, spec_to - spec_from);
  const std::string seed_key = "--trial-seed=";
  const std::size_t seed_from = dump.find(seed_key, spec_to) + seed_key.size();
  std::uint64_t repro_seed = 0;
  std::sscanf(dump.c_str() + seed_from, "%" SCNu64, &repro_seed);
  EXPECT_EQ(repro_seed, rec.seed);

  // The REPRO spec bakes in the resolved backend and the tiny budget, and
  // drops the sink paths (forensics hygiene).
  const sim::RunSpec parsed = sim::RunSpec::parse(repro_spec);
  EXPECT_EQ(parsed.backend, sim::EngineKind::kAgentArray);
  EXPECT_EQ(parsed.engine.max_interactions, 200u);
  EXPECT_TRUE(parsed.spans_out.empty());
  EXPECT_TRUE(parsed.metrics_out.empty());

  // Seed-exact standalone replay: identical failure, identical counts.
  const auto protocol =
      sim::ProtocolRegistry::global().create(parsed.protocol, parsed.params);
  const sim::TrialRecord replay =
      sim::BatchRunner::execute_trial(*protocol, parsed, repro_seed);
  EXPECT_EQ(replay.outcome.run.budget_exhausted,
            rec.outcome.run.budget_exhausted);
  EXPECT_EQ(replay.outcome.correct, rec.outcome.correct);
  EXPECT_EQ(replay.outcome.run.interactions, rec.outcome.run.interactions);
  EXPECT_EQ(replay.outcome.run.state_changes, rec.outcome.run.state_changes);
  EXPECT_EQ(replay.outcome.run.final_outputs, rec.outcome.run.final_outputs);
}

TEST(TraceBatchTest, NoTracerMeansNoFailureDump) {
  sim::RunSpec spec = small_spec(sim::EngineKind::kAgentArray, 300);
  spec.trials = 1;
  spec.engine.max_interactions = 200;
  sim::BatchOptions options;
  options.threads = 1;
  testing::internal::CaptureStderr();
  (void)sim::BatchRunner(options).run_one(spec);
  const std::string dump = testing::internal::GetCapturedStderr();
  EXPECT_EQ(dump.find("REPRO:"), std::string::npos) << dump;
}

}  // namespace
}  // namespace circles
