#include "analysis/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace circles::analysis {
namespace {

TEST(WorkloadTest, BasicAccessors) {
  Workload w;
  w.counts = {3, 1, 2};
  EXPECT_EQ(w.n(), 6u);
  EXPECT_EQ(w.k(), 3u);
  EXPECT_EQ(w.winner(), pp::ColorId{0});
  EXPECT_FALSE(w.tied());
  EXPECT_EQ(w.margin(), 1u);
  EXPECT_EQ(w.to_string(), "[3,1,2]");
}

TEST(WorkloadTest, TieDetection) {
  Workload w;
  w.counts = {2, 2, 1};
  EXPECT_TRUE(w.tied());
  EXPECT_EQ(w.margin(), 0u);
}

TEST(WorkloadTest, AgentColorsMatchCounts) {
  Workload w;
  w.counts = {2, 0, 3};
  util::Rng rng(1);
  const auto colors = w.agent_colors(rng);
  ASSERT_EQ(colors.size(), 5u);
  std::map<pp::ColorId, int> histogram;
  for (const auto c : colors) histogram[c] += 1;
  EXPECT_EQ(histogram[0], 2);
  EXPECT_EQ(histogram[2], 3);
  EXPECT_EQ(histogram.count(1), 0u);
}

TEST(RandomCountsTest, SumsToN) {
  util::Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const Workload w = random_counts(rng, 40, 5);
    EXPECT_EQ(w.n(), 40u);
    EXPECT_EQ(w.k(), 5u);
  }
}

TEST(RandomUniqueWinnerTest, NeverTied) {
  util::Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const Workload w = random_unique_winner(rng, 12, 4);
    EXPECT_FALSE(w.tied());
    EXPECT_EQ(w.n(), 12u);
  }
}

TEST(ExactTieTest, ProducesTiesOfRequestedWidth) {
  util::Rng rng(4);
  for (std::uint32_t tied = 2; tied <= 4; ++tied) {
    for (int trial = 0; trial < 20; ++trial) {
      const Workload w = exact_tie(rng, 20, 4, tied);
      EXPECT_EQ(w.n(), 20u);
      EXPECT_TRUE(w.tied()) << w.to_string();
      std::uint64_t top = 0;
      for (const auto c : w.counts) top = std::max(top, c);
      const auto at_top = std::count(w.counts.begin(), w.counts.end(), top);
      EXPECT_EQ(at_top, tied) << w.to_string();
    }
  }
}

TEST(ExactTieTest, TieOfTwoAgents) {
  util::Rng rng(5);
  const Workload w = exact_tie(rng, 2, 2, 2);
  EXPECT_EQ(w.counts, (std::vector<std::uint64_t>{1, 1}));
}

TEST(CloseMarginTest, MarginIsMinimalFeasible) {
  util::Rng rng(6);
  for (const std::uint64_t n : {3ull, 9ull, 25ull, 60ull}) {
    for (const std::uint32_t k : {2u, 3u, 5u}) {
      const Workload w = close_margin(rng, n, k);
      EXPECT_EQ(w.n(), n) << w.to_string();
      EXPECT_FALSE(w.tied());
      EXPECT_LE(w.margin(), 2u);
      EXPECT_GE(w.margin(), 1u);
      if (k > 2 || n % 2 == 1) {
        EXPECT_EQ(w.margin(), 1u) << "n=" << n << " k=" << k;
      }
    }
  }
}

TEST(CloseMarginTest, EvenTwoColorForcesMarginTwo) {
  util::Rng rng(7);
  const Workload w = close_margin(rng, 10, 2);
  EXPECT_EQ(w.margin(), 2u);
  EXPECT_EQ(w.n(), 10u);
}

TEST(DominantTest, DominantColorHoldsShare) {
  util::Rng rng(8);
  const Workload w = dominant(rng, 100, 5, 0.6);
  EXPECT_EQ(w.n(), 100u);
  std::uint64_t top = 0;
  for (const auto c : w.counts) top = std::max(top, c);
  EXPECT_GE(top, 60u);
}

TEST(ZipfTest, SkewedAndUntied) {
  util::Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const Workload w = zipf(rng, 60, 5, 1.5);
    EXPECT_EQ(w.n(), 60u);
    EXPECT_FALSE(w.tied());
  }
}

TEST(PermuteColorsTest, PreservesCountMultiset) {
  util::Rng rng(10);
  Workload w;
  w.counts = {5, 0, 3, 1};
  for (int trial = 0; trial < 20; ++trial) {
    const Workload p = permute_colors(rng, w);
    auto a = w.counts;
    auto b = p.counts;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
    EXPECT_EQ(p.n(), w.n());
  }
}

}  // namespace
}  // namespace circles::analysis
