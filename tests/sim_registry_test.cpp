#include "sim/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/circles_protocol.hpp"

namespace circles::sim {
namespace {

TEST(ProtocolRegistryTest, GlobalListsAllBuiltins) {
  const auto names = ProtocolRegistry::global().names();
  const std::vector<std::string> expected{
      "approx_majority_3state", "circles",           "exact_majority_4state",
      "ordering",               "pairwise_plurality", "tie_aware_pairwise",
      "tie_report",             "unordered_circles"};
  EXPECT_EQ(names, expected);
}

TEST(ProtocolRegistryTest, EveryRegisteredNameConstructs) {
  const auto& registry = ProtocolRegistry::global();
  ProtocolParams params;
  params.k = 2;  // accepted by every builtin, including the k=2 baselines
  for (const auto& name : registry.names()) {
    SCOPED_TRACE(name);
    const auto protocol = registry.create(name, params);
    ASSERT_NE(protocol, nullptr);
    EXPECT_EQ(protocol->num_colors(), 2u);
    EXPECT_GE(protocol->num_states(), 2u);
    EXPECT_FALSE(protocol->name().empty());
  }
}

TEST(ProtocolRegistryTest, CreatesCirclesWithRequestedK) {
  const auto protocol =
      ProtocolRegistry::global().create("circles", {.k = 7});
  EXPECT_EQ(protocol->name(), "circles");
  EXPECT_EQ(protocol->num_colors(), 7u);
  EXPECT_EQ(protocol->num_states(), 343u);
  EXPECT_NE(dynamic_cast<const core::CirclesProtocol*>(protocol.get()),
            nullptr);
}

TEST(ProtocolRegistryTest, TieSemanticsParamIsHonored) {
  ProtocolParams params;
  params.k = 3;
  params.semantics = ext::TieSemantics::kShare;
  const auto protocol =
      ProtocolRegistry::global().create("tie_aware_pairwise", params);
  const auto* concrete =
      dynamic_cast<const ext::TieAwarePairwise*>(protocol.get());
  ASSERT_NE(concrete, nullptr);
  EXPECT_EQ(concrete->semantics(), ext::TieSemantics::kShare);
}

TEST(ProtocolRegistryTest, UnknownNameThrowsListingKnownNames) {
  try {
    ProtocolRegistry::global().create("does_not_exist", {});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("unknown protocol"), std::string::npos) << message;
    EXPECT_NE(message.find("circles"), std::string::npos) << message;
  }
}

TEST(ProtocolRegistryTest, InvalidParamsThrow) {
  EXPECT_THROW(ProtocolRegistry::global().create("circles", {.k = 0}),
               std::invalid_argument);
  EXPECT_THROW(
      ProtocolRegistry::global().create("exact_majority_4state", {.k = 3}),
      std::invalid_argument);
  EXPECT_THROW(
      ProtocolRegistry::global().create("pairwise_plurality", {.k = 7}),
      std::invalid_argument);
}

TEST(ProtocolRegistryTest, CustomRegistrationAndDuplicateRejection) {
  ProtocolRegistry registry = ProtocolRegistry::with_builtins();
  registry.register_protocol("circles_alias", [](const ProtocolParams& p) {
    return std::make_unique<core::CirclesProtocol>(p.k);
  });
  EXPECT_TRUE(registry.contains("circles_alias"));
  EXPECT_FALSE(ProtocolRegistry::global().contains("circles_alias"));
  EXPECT_EQ(registry.create("circles_alias", {.k = 3})->num_states(), 27u);
  EXPECT_THROW(registry.register_protocol("circles", nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace circles::sim
