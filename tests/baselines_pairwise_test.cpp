#include "baselines/pairwise_plurality.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "analysis/trial.hpp"
#include "analysis/workload.hpp"

namespace circles::baselines {
namespace {

using analysis::TrialOptions;
using analysis::Workload;

TEST(PairwisePluralityTest, StateCountMatchesFormula) {
  for (std::uint32_t k = 1; k <= 6; ++k) {
    PairwisePlurality protocol(k);
    EXPECT_EQ(protocol.num_states(), PairwisePlurality::state_count_formula(k))
        << "k=" << k;
  }
  EXPECT_EQ(PairwisePlurality::state_count_formula(1), 1u);
  EXPECT_EQ(PairwisePlurality::state_count_formula(2), 2u * 3);
  EXPECT_EQ(PairwisePlurality::state_count_formula(3), 3u * 9 * 2);
  EXPECT_EQ(PairwisePlurality::state_count_formula(4), 4u * 27 * 8);
  EXPECT_EQ(PairwisePlurality::state_count_formula(5), 5u * 81 * 64);
}

TEST(PairwisePluralityTest, GamesEnumerateUnorderedPairs) {
  PairwisePlurality protocol(4);
  EXPECT_EQ(protocol.num_games(), 6u);
  EXPECT_TRUE(protocol.plays(0, 0));   // game {0,1}
  EXPECT_FALSE(protocol.plays(2, 0));  // spectator of {0,1}
}

TEST(PairwisePluralityTest, EncodeDecodeRoundTripAllStates) {
  for (std::uint32_t k : {2u, 3u, 4u}) {
    PairwisePlurality protocol(k);
    for (pp::StateId s = 0; s < protocol.num_states(); ++s) {
      const auto d = protocol.decode(s);
      EXPECT_EQ(protocol.encode(d), s);
    }
  }
}

TEST(PairwisePluralityTest, InputStartsStrongEverywhere) {
  PairwisePlurality protocol(4);
  for (pp::ColorId c = 0; c < 4; ++c) {
    const auto d = protocol.decode(protocol.input(c));
    EXPECT_EQ(d.color, c);
    for (std::uint32_t g = 0; g < protocol.num_games(); ++g) {
      if (protocol.plays(c, g)) {
        EXPECT_EQ(static_cast<PairwisePlurality::PlayerSub>(d.sub[g]),
                  PairwisePlurality::PlayerSub::kStrong);
        EXPECT_EQ(protocol.belief(d, g), c);
      }
    }
    // A fresh agent believes itself the winner of all its games.
    EXPECT_EQ(protocol.output(protocol.input(c)), c);
  }
}

TEST(PairwisePluralityTest, CancellationIsPerGame) {
  PairwisePlurality protocol(3);
  // Colors 0 and 1 play game {0,1} (index 0). Strong 0 meets strong 1:
  // both become weak in that game only.
  const pp::Transition tr =
      protocol.transition(protocol.input(0), protocol.input(1));
  const auto a = protocol.decode(tr.initiator);
  const auto b = protocol.decode(tr.responder);
  EXPECT_EQ(protocol.belief(a, 0), 0u);  // weak but still believes itself
  EXPECT_EQ(protocol.belief(b, 0), 1u);
  EXPECT_NE(static_cast<PairwisePlurality::PlayerSub>(a.sub[0]),
            PairwisePlurality::PlayerSub::kStrong);
  EXPECT_NE(static_cast<PairwisePlurality::PlayerSub>(b.sub[0]),
            PairwisePlurality::PlayerSub::kStrong);
  // Game {0,2} (index 1): agent b spectates and a stayed strong; b adopts 0.
  EXPECT_EQ(protocol.belief(b, 1), 0u);
  // Game {1,2} (index 2): a spectates, b stayed strong; a adopts 1.
  EXPECT_EQ(protocol.belief(a, 2), 1u);
}

void for_all_workloads(std::uint32_t k, std::uint64_t n,
                       const std::function<void(const Workload&)>& f) {
  std::vector<std::uint64_t> counts(k, 0);
  std::function<void(std::uint32_t, std::uint64_t)> rec =
      [&](std::uint32_t color, std::uint64_t rest) {
        if (color + 1 == k) {
          counts[color] = rest;
          Workload w;
          w.counts = counts;
          f(w);
          return;
        }
        for (std::uint64_t c = 0; c <= rest; ++c) {
          counts[color] = c;
          rec(color + 1, rest - c);
        }
      };
  rec(0, n);
}

TEST(PairwisePluralityTest, ExhaustiveThreeColorCorrectness) {
  PairwisePlurality protocol(3);
  for (std::uint64_t n = 2; n <= 6; ++n) {
    for_all_workloads(3, n, [&](const Workload& w) {
      if (!w.winner().has_value()) return;  // plurality ties excluded
      TrialOptions options;
      options.scheduler = pp::SchedulerKind::kRoundRobin;
      options.seed = 41 * n + w.counts[0] * 3 + w.counts[1];
      const auto outcome = analysis::run_trial(protocol, w, options);
      EXPECT_TRUE(outcome.correct) << "counts=" << w.to_string();
    });
  }
}

TEST(PairwisePluralityTest, LoserTiesDoNotConfuseOutput) {
  // Counts (4, 2, 2): the game {1, 2} ties and freezes, but 0 beats both,
  // so every agent must still output 0.
  PairwisePlurality protocol(3);
  Workload w;
  w.counts = {4, 2, 2};
  for (const pp::SchedulerKind kind :
       {pp::SchedulerKind::kRoundRobin, pp::SchedulerKind::kUniformRandom,
        pp::SchedulerKind::kShuffledSweep}) {
    TrialOptions options;
    options.scheduler = kind;
    options.seed = 17;
    const auto outcome = analysis::run_trial(protocol, w, options);
    EXPECT_TRUE(outcome.correct) << pp::to_string(kind);
  }
}

TEST(PairwisePluralityTest, RandomizedFourAndFiveColors) {
  util::Rng rng(55);
  for (const std::uint32_t k : {4u, 5u}) {
    PairwisePlurality protocol(k);
    for (int trial = 0; trial < 5; ++trial) {
      const Workload w = analysis::random_unique_winner(rng, 24, k);
      TrialOptions options;
      options.seed = rng();
      const auto outcome = analysis::run_trial(protocol, w, options);
      EXPECT_TRUE(outcome.correct)
          << "k=" << k << " counts=" << w.to_string();
    }
  }
}

TEST(PairwisePluralityTest, StateNameShowsPerGameStatus) {
  PairwisePlurality protocol(3);
  const std::string name = protocol.state_name(protocol.input(0));
  EXPECT_NE(name.find("c0["), std::string::npos);
  EXPECT_NE(name.find("S"), std::string::npos);
}

TEST(PairwisePluralityDeathTest, RejectsLargeK) {
  EXPECT_DEATH(PairwisePlurality(7), "capped");
}

}  // namespace
}  // namespace circles::baselines
