#include "extensions/tie_report.hpp"

#include <gtest/gtest.h>

#include <array>
#include <functional>

#include "analysis/trial.hpp"
#include "analysis/workload.hpp"
#include "core/greedy_sets.hpp"

namespace circles::ext {
namespace {

using analysis::TrialOptions;
using analysis::Workload;

TEST(TieReportProtocolTest, StateMetadata) {
  for (std::uint32_t k : {1u, 2u, 4u, 8u}) {
    TieReportProtocol protocol(k);
    EXPECT_EQ(protocol.num_states(), 2ull * k * k * (k + 1));
    EXPECT_EQ(protocol.num_colors(), k);
    EXPECT_EQ(protocol.num_output_symbols(), k + 1);
    EXPECT_EQ(protocol.tie_symbol(), k);
  }
}

TEST(TieReportProtocolTest, EncodeDecodeRoundTripAllStates) {
  for (std::uint32_t k : {1u, 2u, 3u, 4u}) {
    TieReportProtocol protocol(k);
    for (pp::StateId s = 0; s < protocol.num_states(); ++s) {
      const auto f = protocol.decode(s);
      EXPECT_EQ(protocol.encode(f), s);
      EXPECT_LT(f.braket.bra, k);
      EXPECT_LT(f.braket.ket, k);
      EXPECT_LE(f.out, k);
    }
  }
}

TEST(TieReportProtocolTest, InputMatchesCircles) {
  TieReportProtocol protocol(5);
  for (pp::ColorId c = 0; c < 5; ++c) {
    const auto f = protocol.decode(protocol.input(c));
    EXPECT_EQ(f.braket, (core::BraKet{c, c}));
    EXPECT_EQ(f.out, c);
    EXPECT_FALSE(f.retractor);
  }
}

TEST(TieReportProtocolTest, DiagonalDestructionCreatesRetractor) {
  TieReportProtocol protocol(2);
  // ⟨0|0⟩ meets ⟨1|1⟩: mandatory exchange destroys both diagonals.
  const pp::Transition tr =
      protocol.transition(protocol.input(0), protocol.input(1));
  const auto a = protocol.decode(tr.initiator);
  const auto b = protocol.decode(tr.responder);
  EXPECT_EQ(a.braket, (core::BraKet{0, 1}));
  EXPECT_EQ(b.braket, (core::BraKet{1, 0}));
  EXPECT_TRUE(a.retractor);
  EXPECT_TRUE(b.retractor);
  // Rule 4 fires immediately: both outputs report TIE.
  EXPECT_EQ(a.out, protocol.tie_symbol());
  EXPECT_EQ(b.out, protocol.tie_symbol());
}

TEST(TieReportProtocolTest, DiagonalClearsRetractorAndSetsOut) {
  TieReportProtocol protocol(3);
  const pp::StateId retractor =
      protocol.encode({{0, 1}, protocol.tie_symbol(), true});
  const pp::StateId diagonal = protocol.encode({{2, 2}, 2, false});
  // ⟨0|1⟩ (w 1) + ⟨2|2⟩ (w 3): no exchange (post min would be w(0,2)=2,
  // w(2,1)=2 -> min 2 > 1). The diagonal broadcasts and clears.
  const pp::Transition tr = protocol.transition(retractor, diagonal);
  const auto a = protocol.decode(tr.initiator);
  const auto b = protocol.decode(tr.responder);
  EXPECT_EQ(a.braket, (core::BraKet{0, 1}));
  EXPECT_FALSE(a.retractor);
  EXPECT_EQ(a.out, 2u);
  EXPECT_EQ(b.out, 2u);
}

TEST(TieReportProtocolTest, RetractorSpreadsTieButNotTheBit) {
  TieReportProtocol protocol(3);
  const pp::StateId retractor =
      protocol.encode({{0, 1}, protocol.tie_symbol(), true});
  const pp::StateId bystander = protocol.encode({{1, 2}, 0, false});
  // ⟨0|1⟩ w=1, ⟨1|2⟩ w=1; post: w(0,2)=2, w(1,1)=3: min 2 > 1, no exchange.
  const pp::Transition tr = protocol.transition(retractor, bystander);
  const auto a = protocol.decode(tr.initiator);
  const auto b = protocol.decode(tr.responder);
  EXPECT_TRUE(a.retractor);
  EXPECT_FALSE(b.retractor);  // the bit must not spread
  EXPECT_EQ(a.out, protocol.tie_symbol());
  EXPECT_EQ(b.out, protocol.tie_symbol());
}

void for_all_workloads(std::uint32_t k, std::uint64_t n,
                       const std::function<void(const Workload&)>& f) {
  std::vector<std::uint64_t> counts(k, 0);
  std::function<void(std::uint32_t, std::uint64_t)> rec =
      [&](std::uint32_t color, std::uint64_t rest) {
        if (color + 1 == k) {
          counts[color] = rest;
          Workload w;
          w.counts = counts;
          f(w);
          return;
        }
        for (std::uint64_t c = 0; c <= rest; ++c) {
          counts[color] = c;
          rec(color + 1, rest - c);
        }
      };
  rec(0, n);
}

void expect_tie_report_correct(const TieReportProtocol& protocol,
                               const Workload& w, pp::SchedulerKind kind,
                               std::uint64_t seed) {
  TrialOptions options;
  options.scheduler = kind;
  options.seed = seed;
  const auto winner = w.winner();
  const pp::OutputSymbol expected =
      winner.has_value() ? *winner : protocol.tie_symbol();
  const auto outcome =
      analysis::run_trial(protocol, w, options, {}, expected);
  EXPECT_TRUE(outcome.run.silent)
      << "counts=" << w.to_string() << " " << pp::to_string(kind);
  EXPECT_TRUE(outcome.correct)
      << "counts=" << w.to_string() << " " << pp::to_string(kind)
      << " expected=" << protocol.output_name(expected);
}

TEST(TieReportSimulationTest, ExhaustiveTwoColors) {
  TieReportProtocol protocol(2);
  for (std::uint64_t n = 2; n <= 8; ++n) {
    for_all_workloads(2, n, [&](const Workload& w) {
      expect_tie_report_correct(protocol, w, pp::SchedulerKind::kRoundRobin,
                                n * 19 + w.counts[0]);
    });
  }
}

TEST(TieReportSimulationTest, ExhaustiveThreeColors) {
  TieReportProtocol protocol(3);
  for (std::uint64_t n = 2; n <= 6; ++n) {
    for_all_workloads(3, n, [&](const Workload& w) {
      expect_tie_report_correct(protocol, w, pp::SchedulerKind::kShuffledSweep,
                                n * 23 + w.counts[0] * 5 + w.counts[1]);
    });
  }
}

TEST(TieReportSimulationTest, TieCasesAcrossSchedulers) {
  TieReportProtocol protocol(4);
  util::Rng rng(321);
  for (const pp::SchedulerKind kind : pp::kAllSchedulerKinds) {
    const Workload w = analysis::exact_tie(rng, 12, 4, 2);
    expect_tie_report_correct(protocol, w, kind, rng());
  }
}

TEST(TieReportSimulationTest, NonTieCasesAcrossSchedulers) {
  TieReportProtocol protocol(4);
  util::Rng rng(654);
  for (const pp::SchedulerKind kind : pp::kAllSchedulerKinds) {
    const Workload w = analysis::random_unique_winner(rng, 16, 4);
    expect_tie_report_correct(protocol, w, kind, rng());
  }
}

TEST(TieReportSimulationTest, CloseMarginStillDecides) {
  TieReportProtocol protocol(5);
  util::Rng rng(987);
  for (int trial = 0; trial < 10; ++trial) {
    const Workload w = analysis::close_margin(rng, 25, 5);
    expect_tie_report_correct(protocol, w,
                              pp::SchedulerKind::kUniformRandom, rng());
  }
}

TEST(TieReportSimulationTest, AllColorsTiedManyWays) {
  // k colors each with the same count: maximal tie.
  TieReportProtocol protocol(3);
  Workload w;
  w.counts = {3, 3, 3};
  expect_tie_report_correct(protocol, w, pp::SchedulerKind::kUniformRandom,
                            42);
}

TEST(TieReportSimulationTest, BraKetLayerStillSatisfiesLemma33) {
  TieReportProtocol protocol(4);
  TieReportBraKetView view(protocol);
  core::BraKetInvariantMonitor invariant(view);
  core::PotentialDescentMonitor potential(view);
  std::array<pp::Monitor*, 2> monitors{&invariant, &potential};

  util::Rng rng(11);
  const Workload w = analysis::random_unique_winner(rng, 20, 4);
  TrialOptions options;
  options.seed = rng();
  const auto outcome = analysis::run_trial(
      protocol, w, options,
      std::span<pp::Monitor* const>(monitors.data(), monitors.size()));
  EXPECT_TRUE(outcome.run.silent);
  EXPECT_EQ(invariant.violations(), 0u);
  EXPECT_EQ(potential.descent_violations(), 0u);
}

TEST(TieReportProtocolTest, StateAndOutputNames) {
  TieReportProtocol protocol(3);
  EXPECT_EQ(protocol.output_name(protocol.tie_symbol()), "TIE");
  EXPECT_EQ(protocol.output_name(1), "c1");
  const pp::StateId s = protocol.encode({{0, 1}, protocol.tie_symbol(), true});
  EXPECT_EQ(protocol.state_name(s), "<0|1>:TIE!R");
}

}  // namespace
}  // namespace circles::ext
