#include "util/multiset.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>

namespace circles::util {
namespace {

using IntSet = CountedMultiset<int>;

TEST(CountedMultisetTest, StartsEmpty) {
  IntSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.distinct_size(), 0u);
  EXPECT_EQ(s.count(5), 0u);
  EXPECT_FALSE(s.contains(5));
}

TEST(CountedMultisetTest, AddAccumulates) {
  IntSet s;
  s.add(1);
  s.add(1, 2);
  s.add(2);
  EXPECT_EQ(s.count(1), 3u);
  EXPECT_EQ(s.count(2), 1u);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.distinct_size(), 2u);
}

TEST(CountedMultisetTest, AddZeroIsNoop) {
  IntSet s;
  s.add(1, 0);
  EXPECT_TRUE(s.empty());
}

TEST(CountedMultisetTest, RemoveDecrementsAndErases) {
  IntSet s;
  s.add(1, 3);
  s.remove(1);
  EXPECT_EQ(s.count(1), 2u);
  s.remove(1, 2);
  EXPECT_EQ(s.count(1), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.distinct_size(), 0u);
}

TEST(CountedMultisetDeathTest, RemovingAbsentElementsAborts) {
  IntSet s;
  s.add(1, 1);
  EXPECT_DEATH(s.remove(1, 2), "absent");
  EXPECT_DEATH(s.remove(2), "absent");
}

TEST(CountedMultisetTest, SubsetOf) {
  IntSet small;
  small.add(1, 2);
  IntSet big;
  big.add(1, 3);
  big.add(2, 1);
  EXPECT_TRUE(small.subset_of(big));
  EXPECT_FALSE(big.subset_of(small));
  EXPECT_TRUE(small.subset_of(small));
  IntSet empty;
  EXPECT_TRUE(empty.subset_of(small));
  EXPECT_FALSE(small.subset_of(empty));
}

TEST(CountedMultisetTest, UnionAddsMultiplicities) {
  IntSet a;
  a.add(1, 2);
  a.add(2, 1);
  IntSet b;
  b.add(1, 1);
  b.add(3, 4);
  const IntSet u = a.union_with(b);
  EXPECT_EQ(u.count(1), 3u);
  EXPECT_EQ(u.count(2), 1u);
  EXPECT_EQ(u.count(3), 4u);
  EXPECT_EQ(u.size(), 8u);
}

TEST(CountedMultisetTest, DifferenceSaturates) {
  IntSet a;
  a.add(1, 3);
  a.add(2, 1);
  IntSet b;
  b.add(1, 1);
  b.add(2, 5);
  const IntSet d = a.difference(b);
  EXPECT_EQ(d.count(1), 2u);
  EXPECT_EQ(d.count(2), 0u);
  EXPECT_EQ(d.size(), 2u);
}

TEST(CountedMultisetTest, EqualityComparesCounts) {
  IntSet a;
  a.add(1, 2);
  IntSet b;
  b.add(1);
  EXPECT_NE(a, b);
  b.add(1);
  EXPECT_EQ(a, b);
}

TEST(CountedMultisetTest, IterationIsSortedByKey) {
  IntSet s;
  s.add(3);
  s.add(1, 2);
  s.add(2);
  int prev = -1;
  for (const auto& [key, count] : s) {
    EXPECT_GT(key, prev);
    prev = key;
    EXPECT_GE(count, 1u);
  }
}

TEST(CountedMultisetTest, ToStringRendersCounts) {
  IntSet s;
  s.add(1, 2);
  s.add(2);
  EXPECT_EQ(s.to_string(), "{1x2, 2}");
  IntSet empty;
  EXPECT_EQ(empty.to_string(), "{}");
}

TEST(CountedMultisetTest, WorksWithPairKeys) {
  CountedMultiset<std::pair<int, int>> s;
  s.add({1, 2});
  s.add({1, 2});
  s.add({2, 1});
  EXPECT_EQ(s.count({1, 2}), 2u);
  EXPECT_EQ(s.count({2, 1}), 1u);
  EXPECT_EQ(s.count({0, 0}), 0u);
}

}  // namespace
}  // namespace circles::util
