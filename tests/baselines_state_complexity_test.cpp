#include "baselines/state_complexity.hpp"

#include <gtest/gtest.h>

#include "baselines/approx_majority_3state.hpp"
#include "baselines/exact_majority_4state.hpp"
#include "baselines/pairwise_plurality.hpp"
#include "core/circles_protocol.hpp"
#include "extensions/ordering.hpp"
#include "extensions/tie_report.hpp"
#include "extensions/unordered_circles.hpp"

namespace circles::baselines {
namespace {

TEST(StateComplexityTest, ClosedForms) {
  EXPECT_EQ(circles_states(4), 64u);
  EXPECT_EQ(tie_report_states(4), 2u * 16 * 5);
  EXPECT_EQ(ordering_states(4), 32u);
  EXPECT_EQ(unordered_circles_states(4), 512u);
  EXPECT_EQ(ghmss_upper_bound(2), 128u);
  EXPECT_EQ(plurality_lower_bound(9), 81u);
}

TEST(StateComplexityTest, FormulasMatchImplementations) {
  for (std::uint32_t k = 1; k <= 6; ++k) {
    EXPECT_EQ(core::CirclesProtocol(k).num_states(), circles_states(k));
    EXPECT_EQ(ext::OrderingProtocol(k).num_states(), ordering_states(k));
    EXPECT_EQ(ext::TieReportProtocol(k).num_states(), tie_report_states(k));
    EXPECT_EQ(ext::UnorderedCirclesProtocol(k).num_states(),
              unordered_circles_states(k));
    EXPECT_EQ(PairwisePlurality(k).num_states(),
              PairwisePlurality::state_count_formula(k));
  }
  EXPECT_EQ(ExactMajority4State().num_states(), 4u);
  EXPECT_EQ(ApproxMajority3State().num_states(), 3u);
}

TEST(StateComplexityTest, CirclesBeatsPriorUpperBoundEverywhere) {
  // The paper's claim: k^3 < O(k^7)'s k^7 for every k >= 2, and it sits
  // above the Omega(k^2) lower bound.
  for (std::uint32_t k = 2; k <= 32; ++k) {
    EXPECT_LT(circles_states(k), ghmss_upper_bound(k));
    EXPECT_GE(circles_states(k), plurality_lower_bound(k));
  }
}

TEST(StateComplexityTest, PairwiseBaselineOvertakesCirclesQuickly) {
  // The naive deterministic comparator is smaller only at k = 2 (6 < 8);
  // from k = 3 on it explodes past k^3 — the gap the paper's design closes.
  EXPECT_LT(PairwisePlurality::state_count_formula(2), circles_states(2));
  for (std::uint32_t k = 3; k <= 10; ++k) {
    EXPECT_GT(PairwisePlurality::state_count_formula(k), circles_states(k));
  }
}

TEST(StateComplexityTest, TableRowsConsistent) {
  const auto rows = state_complexity_table(5);
  ASSERT_GE(rows.size(), 8u);
  bool found_circles = false;
  for (const auto& row : rows) {
    if (row.protocol == "circles") {
      found_circles = true;
      EXPECT_EQ(row.states, 125u);
      EXPECT_TRUE(row.always_correct);
    }
    if (row.protocol == "ordering") {
      EXPECT_EQ(row.states, 50u);
    }
  }
  EXPECT_TRUE(found_circles);
}

TEST(StateComplexityTest, OverflowSaturatesToZero) {
  // k^7 overflows uint64 well below k = 1024; the table must not UB.
  const auto rows = state_complexity_table(1000);
  for (const auto& row : rows) {
    (void)row;  // merely constructing the table must be safe
  }
  EXPECT_EQ(ghmss_upper_bound(600), 0u);  // 600^7 > 2^64 -> saturated
}

}  // namespace
}  // namespace circles::baselines
