#include "core/greedy_sets.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace circles::core {
namespace {

using Counts = std::vector<std::uint64_t>;

TEST(GreedySetsTest, SimpleExample) {
  // Colors 0,1,2 with counts 3,1,2 -> G1={0,1,2}, G2={0,2}, G3={0}.
  const Counts counts{3, 1, 2};
  const auto sets = greedy_sets(counts);
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_EQ(sets[0], (std::vector<ColorId>{0, 1, 2}));
  EXPECT_EQ(sets[1], (std::vector<ColorId>{0, 2}));
  EXPECT_EQ(sets[2], (std::vector<ColorId>{0}));
}

TEST(GreedySetsTest, EmptyColorsNeverAppear) {
  const Counts counts{0, 2, 0, 1};
  const auto sets = greedy_sets(counts);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0], (std::vector<ColorId>{1, 3}));
  EXPECT_EQ(sets[1], (std::vector<ColorId>{1}));
}

TEST(GreedySetsTest, AllZeroGivesNoSets) {
  EXPECT_TRUE(greedy_sets(Counts{0, 0}).empty());
}

TEST(GreedySetsTest, SetsAreNested) {
  // G_{p+1} ⊆ G_p for all p (Definition 3.1's monotonicity).
  util::Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    Counts counts(1 + rng.uniform_below(6));
    for (auto& c : counts) c = rng.uniform_below(7);
    const auto sets = greedy_sets(counts);
    for (std::size_t p = 1; p < sets.size(); ++p) {
      for (const ColorId c : sets[p]) {
        EXPECT_NE(std::find(sets[p - 1].begin(), sets[p - 1].end(), c),
                  sets[p - 1].end());
      }
    }
  }
}

TEST(GreedySetsTest, SetSizesSumToPopulation) {
  util::Rng rng(6);
  for (int trial = 0; trial < 200; ++trial) {
    Counts counts(1 + rng.uniform_below(6));
    std::uint64_t n = 0;
    for (auto& c : counts) {
      c = rng.uniform_below(7);
      n += c;
    }
    const auto sets = greedy_sets(counts);
    std::uint64_t total = 0;
    for (const auto& set : sets) total += set.size();
    EXPECT_EQ(total, n);
  }
}

TEST(GreedySetsTest, Lemma32MajorityColorProperties) {
  // With a unique winner μ: G_q == {μ} and no other G_p is a singleton of a
  // different color.
  util::Rng rng(7);
  int checked = 0;
  while (checked < 300) {
    Counts counts(2 + rng.uniform_below(5));
    for (auto& c : counts) c = rng.uniform_below(9);
    const auto winner = unique_plurality_winner(counts);
    if (!winner.has_value()) continue;
    ++checked;
    const auto sets = greedy_sets(counts);
    ASSERT_FALSE(sets.empty());
    EXPECT_EQ(sets.back(), std::vector<ColorId>{*winner});
    for (const auto& set : sets) {
      if (set.size() == 1) {
        EXPECT_EQ(set[0], *winner);
      }
    }
  }
}

TEST(GreedySetsTest, TieMeansLastSetNotSingleton) {
  const Counts counts{3, 3, 1};
  EXPECT_FALSE(unique_plurality_winner(counts).has_value());
  const auto sets = greedy_sets(counts);
  EXPECT_EQ(sets.back(), (std::vector<ColorId>{0, 1}));
}

TEST(CircleBraketsTest, SingletonMapsToDiagonal) {
  const std::vector<ColorId> set{4};
  const auto circle = circle_brakets(set);
  EXPECT_EQ(circle.size(), 1u);
  EXPECT_EQ(circle.count({4, 4}), 1u);
}

TEST(CircleBraketsTest, PairMapsToBothDirections) {
  const std::vector<ColorId> set{1, 5};
  const auto circle = circle_brakets(set);
  EXPECT_EQ(circle.size(), 2u);
  EXPECT_EQ(circle.count({1, 5}), 1u);
  EXPECT_EQ(circle.count({5, 1}), 1u);
}

TEST(CircleBraketsTest, RingOfConsecutiveSortedElements) {
  const std::vector<ColorId> set{0, 2, 3, 7};
  const auto circle = circle_brakets(set);
  EXPECT_EQ(circle.size(), 4u);
  EXPECT_EQ(circle.count({0, 2}), 1u);
  EXPECT_EQ(circle.count({2, 3}), 1u);
  EXPECT_EQ(circle.count({3, 7}), 1u);
  EXPECT_EQ(circle.count({7, 0}), 1u);
}

TEST(PredictStableTest, HandComputedExample) {
  // counts = (3, 1, 2): G1={0,1,2}, G2={0,2}, G3={0}
  // f(G1) = ⟨0|1⟩⟨1|2⟩⟨2|0⟩; f(G2) = ⟨0|2⟩⟨2|0⟩; f(G3) = ⟨0|0⟩.
  const Counts counts{3, 1, 2};
  const auto prediction = predict_stable_brakets(counts);
  EXPECT_EQ(prediction.size(), 6u);
  EXPECT_EQ(prediction.count({0, 1}), 1u);
  EXPECT_EQ(prediction.count({1, 2}), 1u);
  EXPECT_EQ(prediction.count({2, 0}), 2u);
  EXPECT_EQ(prediction.count({0, 2}), 1u);
  EXPECT_EQ(prediction.count({0, 0}), 1u);
}

TEST(PredictStableTest, SizeAlwaysEqualsPopulation) {
  util::Rng rng(8);
  for (int trial = 0; trial < 200; ++trial) {
    Counts counts(1 + rng.uniform_below(6));
    std::uint64_t n = 0;
    for (auto& c : counts) {
      c = rng.uniform_below(8);
      n += c;
    }
    EXPECT_EQ(predict_stable_brakets(counts).size(), n);
  }
}

TEST(PredictStableTest, BraAndKetCountsMatchInputCounts) {
  // Lemma 3.3 at the prediction level: each color appears as bra exactly
  // counts[c] times, ditto for kets.
  util::Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    Counts counts(2 + rng.uniform_below(5));
    for (auto& c : counts) c = rng.uniform_below(8);
    const auto prediction = predict_stable_brakets(counts);
    Counts bras(counts.size(), 0);
    Counts kets(counts.size(), 0);
    for (const auto& [braket, mult] : prediction) {
      bras[braket.bra] += mult;
      kets[braket.ket] += mult;
    }
    EXPECT_EQ(bras, counts);
    EXPECT_EQ(kets, counts);
  }
}

TEST(PredictStableTest, DiagonalCountMatchesMarginFormula) {
  util::Rng rng(10);
  for (int trial = 0; trial < 300; ++trial) {
    Counts counts(2 + rng.uniform_below(5));
    for (auto& c : counts) c = rng.uniform_below(9);
    const auto prediction = predict_stable_brakets(counts);
    std::uint64_t diagonals = 0;
    for (const auto& [braket, mult] : prediction) {
      if (braket.diagonal()) diagonals += mult;
    }
    EXPECT_EQ(diagonals, predicted_diagonal_count(counts));
  }
}

TEST(PredictStableTest, TieHasNoDiagonals) {
  EXPECT_EQ(predicted_diagonal_count(Counts{4, 4}), 0u);
  EXPECT_EQ(predicted_diagonal_count(Counts{2, 2, 1}), 0u);
  EXPECT_EQ(predicted_diagonal_count(Counts{3, 1}), 2u);
  EXPECT_EQ(predicted_diagonal_count(Counts{5}), 5u);
}

TEST(UniqueWinnerTest, BasicCases) {
  EXPECT_EQ(unique_plurality_winner(Counts{1, 3, 2}), ColorId{1});
  EXPECT_EQ(unique_plurality_winner(Counts{0, 0, 4}), ColorId{2});
  EXPECT_FALSE(unique_plurality_winner(Counts{2, 2}).has_value());
  EXPECT_FALSE(unique_plurality_winner(Counts{0, 0}).has_value());
  EXPECT_EQ(unique_plurality_winner(Counts{7}), ColorId{0});
}

}  // namespace
}  // namespace circles::core
