// Parameterized property sweeps (TEST_P): the paper's four claims checked
// over the cross product of scheduler kinds, color counts and workload
// families. Every instantiation is one ctest entry.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "analysis/trial.hpp"
#include "analysis/workload.hpp"
#include "core/circles_protocol.hpp"
#include "extensions/tie_report.hpp"

namespace circles {
namespace {

using analysis::TrialOptions;
using analysis::Workload;

enum class WorkloadFamily { kRandom, kCloseMargin, kDominant, kZipf };

std::string family_name(WorkloadFamily family) {
  switch (family) {
    case WorkloadFamily::kRandom:
      return "random";
    case WorkloadFamily::kCloseMargin:
      return "close";
    case WorkloadFamily::kDominant:
      return "dominant";
    case WorkloadFamily::kZipf:
      return "zipf";
  }
  return "unknown";
}

Workload make_workload(WorkloadFamily family, util::Rng& rng, std::uint64_t n,
                       std::uint32_t k) {
  switch (family) {
    case WorkloadFamily::kRandom:
      return analysis::random_unique_winner(rng, n, k);
    case WorkloadFamily::kCloseMargin:
      return analysis::close_margin(rng, n, k);
    case WorkloadFamily::kDominant:
      return analysis::dominant(rng, n, k, 0.5);
    case WorkloadFamily::kZipf:
      return analysis::zipf(rng, n, k, 1.3);
  }
  return analysis::random_unique_winner(rng, n, k);
}

using SweepParam = std::tuple<pp::SchedulerKind, std::uint32_t, WorkloadFamily>;

class CirclesPropertySweep : public testing::TestWithParam<SweepParam> {};

TEST_P(CirclesPropertySweep, AllFourClaimsHold) {
  const auto [scheduler, k, family] = GetParam();
  core::CirclesProtocol protocol(k);
  util::Rng rng(0xC1DCE5 + k * 1000 +
                static_cast<std::uint64_t>(scheduler) * 100 +
                static_cast<std::uint64_t>(family) * 10);
  // The adversarial scheduler is O(n) per step; keep its populations small.
  const std::uint64_t n =
      scheduler == pp::SchedulerKind::kAdversarialDelay ? 12 : 36;
  for (int trial = 0; trial < 3; ++trial) {
    Workload w = make_workload(family, rng, n, k);
    if (w.tied()) continue;  // dominant can tie at small n; skip those
    TrialOptions options;
    options.scheduler = scheduler;
    options.seed = rng();
    const auto outcome = analysis::run_circles_trial(protocol, w, options);
    // Theorem 3.4 (stabilization, via silence certificate):
    ASSERT_TRUE(outcome.trial.run.silent) << w.to_string();
    // Lemma 3.3 (bra-ket invariant):
    EXPECT_EQ(outcome.braket_invariant_violations, 0u) << w.to_string();
    // Theorem 3.4 (ordinal potential descent):
    EXPECT_EQ(outcome.potential_descent_violations, 0u) << w.to_string();
    // Lemma 3.6 (decomposition):
    EXPECT_TRUE(outcome.decomposition_matches) << w.to_string();
    // Theorem 3.7 (correctness):
    EXPECT_TRUE(outcome.trial.correct) << w.to_string();
  }
}

std::string sweep_name(const testing::TestParamInfo<SweepParam>& info) {
  const auto [scheduler, k, family] = info.param;
  return pp::to_string(scheduler) + "_k" + std::to_string(k) + "_" +
         family_name(family);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CirclesPropertySweep,
    testing::Combine(testing::ValuesIn(pp::kAllSchedulerKinds),
                     testing::Values(2u, 3u, 5u, 8u),
                     testing::Values(WorkloadFamily::kRandom,
                                     WorkloadFamily::kCloseMargin,
                                     WorkloadFamily::kDominant,
                                     WorkloadFamily::kZipf)),
    sweep_name);

class TieReportPropertySweep
    : public testing::TestWithParam<std::tuple<pp::SchedulerKind, std::uint32_t>> {
};

TEST_P(TieReportPropertySweep, ReportsTiesAndWinnersCorrectly) {
  const auto [scheduler, k] = GetParam();
  ext::TieReportProtocol protocol(k);
  util::Rng rng(0x7137 + k * 97 + static_cast<std::uint64_t>(scheduler));
  const std::uint64_t n =
      scheduler == pp::SchedulerKind::kAdversarialDelay ? 10 : 24;
  // One tied and one untied instance per scheduler/k cell.
  {
    Workload w = analysis::exact_tie(rng, n, k, 2);
    TrialOptions options;
    options.scheduler = scheduler;
    options.seed = rng();
    const auto outcome =
        analysis::run_trial(protocol, w, options, {}, protocol.tie_symbol());
    EXPECT_TRUE(outcome.run.silent) << w.to_string();
    EXPECT_TRUE(outcome.correct) << "tie not reported for " << w.to_string();
  }
  {
    Workload w = analysis::random_unique_winner(rng, n, k);
    TrialOptions options;
    options.scheduler = scheduler;
    options.seed = rng();
    const auto outcome = analysis::run_trial(protocol, w, options);
    EXPECT_TRUE(outcome.run.silent) << w.to_string();
    EXPECT_TRUE(outcome.correct) << "winner missed for " << w.to_string();
  }
}

std::string tie_sweep_name(
    const testing::TestParamInfo<std::tuple<pp::SchedulerKind, std::uint32_t>>&
        info) {
  const auto [scheduler, k] = info.param;
  return pp::to_string(scheduler) + "_k" + std::to_string(k);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TieReportPropertySweep,
    testing::Combine(testing::ValuesIn(pp::kAllSchedulerKinds),
                     testing::Values(2u, 3u, 4u, 6u)),
    tie_sweep_name);

}  // namespace
}  // namespace circles
