#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace circles::util {
namespace {

TEST(RunningStatsTest, EmptyAccumulator) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(QuantileTest, InterpolatesSorted) {
  const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 1.0 / 3.0), 2.0);
}

TEST(QuantileTest, SingleElement) {
  const std::vector<double> one{42.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(one, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(one, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(one, 1.0), 42.0);
}

TEST(SummaryTest, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(SummaryTest, UnsortedInputHandled) {
  const std::vector<double> samples{5.0, 1.0, 3.0, 2.0, 4.0};
  const Summary s = summarize(samples);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(SummaryTest, ToStringMentionsFields) {
  const Summary s = summarize(std::vector<double>{1.0, 2.0});
  const std::string text = s.to_string();
  EXPECT_NE(text.find("mean="), std::string::npos);
  EXPECT_NE(text.find("p50="), std::string::npos);
}

TEST(LogLogSlopeTest, RecoversExactPowerLaw) {
  // y = 7 x^2.5
  std::vector<double> x{1, 2, 4, 8, 16};
  std::vector<double> y;
  for (const double v : x) y.push_back(7.0 * std::pow(v, 2.5));
  EXPECT_NEAR(loglog_slope(x, y), 2.5, 1e-10);
}

TEST(LogLogSlopeTest, ConstantGivesZeroSlope) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{5, 5, 5};
  EXPECT_NEAR(loglog_slope(x, y), 0.0, 1e-12);
}

TEST(LogLogSlopeDeathTest, RejectsNonPositive) {
  std::vector<double> x{1, 2};
  std::vector<double> y{0, 1};
  EXPECT_DEATH(loglog_slope(x, y), "positive");
}

}  // namespace
}  // namespace circles::util
