#include "pp/transition_cache.hpp"

#include <gtest/gtest.h>

#include "analysis/trial.hpp"
#include "analysis/workload.hpp"
#include "baselines/pairwise_plurality.hpp"
#include "core/circles_protocol.hpp"
#include "extensions/tie_report.hpp"

namespace circles::pp {
namespace {

template <typename ProtocolT>
void expect_identical_tables(const ProtocolT& base) {
  CachedProtocol cached(base);
  ASSERT_EQ(cached.num_states(), base.num_states());
  for (StateId a = 0; a < base.num_states(); ++a) {
    for (StateId b = 0; b < base.num_states(); ++b) {
      EXPECT_EQ(cached.transition(a, b), base.transition(a, b))
          << "a=" << a << " b=" << b;
    }
    EXPECT_EQ(cached.output(a), base.output(a));
    EXPECT_EQ(cached.state_name(a), base.state_name(a));
  }
}

TEST(CachedProtocolTest, MatchesCirclesExhaustively) {
  core::CirclesProtocol protocol(4);
  expect_identical_tables(protocol);
}

TEST(CachedProtocolTest, MatchesTieReportExhaustively) {
  ext::TieReportProtocol protocol(3);
  expect_identical_tables(protocol);
}

TEST(CachedProtocolTest, MatchesPairwiseExhaustively) {
  baselines::PairwisePlurality protocol(3);
  expect_identical_tables(protocol);
}

TEST(CachedProtocolTest, MetadataPassthrough) {
  ext::TieReportProtocol base(3);
  CachedProtocol cached(base);
  EXPECT_EQ(cached.num_colors(), 3u);
  EXPECT_EQ(cached.num_output_symbols(), 4u);
  EXPECT_EQ(cached.name(), "tie_report_cached");
  EXPECT_EQ(cached.input(2), base.input(2));
  EXPECT_EQ(cached.output_name(3), "TIE");
  EXPECT_EQ(&cached.base(), &base);
}

TEST(CachedProtocolTest, EndToEndRunsAgree) {
  core::CirclesProtocol base(5);
  CachedProtocol cached(base);
  util::Rng rng(7);
  const analysis::Workload w = analysis::random_unique_winner(rng, 30, 5);
  analysis::TrialOptions options;
  options.seed = 99;
  const auto a = analysis::run_trial(base, w, options);
  const auto b = analysis::run_trial(cached, w, options);
  EXPECT_EQ(a.run.interactions, b.run.interactions);
  EXPECT_EQ(a.run.state_changes, b.run.state_changes);
  EXPECT_EQ(a.correct, b.correct);
  EXPECT_TRUE(b.correct);
}

TEST(CachedProtocolDeathTest, RejectsOversizedTables) {
  core::CirclesProtocol protocol(16);  // 4096^2 = 16.8M entries > 2^22
  EXPECT_DEATH(CachedProtocol cached(protocol), "cache budget");
}

TEST(CachedProtocolTest, ExplicitBudgetOverrideWorks) {
  core::CirclesProtocol protocol(16);
  CachedProtocol cached(protocol, /*max_entries=*/1ull << 25);
  EXPECT_EQ(cached.transition(protocol.input(3), protocol.input(7)),
            protocol.transition(protocol.input(3), protocol.input(7)));
}

}  // namespace
}  // namespace circles::pp
