// Quantile-envelope math against hand-computed fixtures: resampling is
// last-observation-carried-forward, quantiles are util::quantile_sorted.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "obs/envelope.hpp"

namespace circles::obs {
namespace {

TraceTable make_trace(std::vector<std::pair<double, double>> rows) {
  TraceTable trace({"interactions", "v"});
  for (const auto& [x, v] : rows) trace.add_row({x, v});
  return trace;
}

EnvelopeOptions min_med_max(std::size_t points) {
  EnvelopeOptions options;
  options.quantiles = {0.0, 0.5, 1.0};
  options.points = points;
  options.spacing = GridSpec::Spacing::kLinear;
  return options;
}

TEST(EnvelopeTest, HandComputedMinMedianMax) {
  const std::vector<TraceTable> traces{
      make_trace({{0, 10}, {10, 0}}),
      make_trace({{0, 20}, {5, 10}, {10, 2}}),
      make_trace({{0, 30}, {2, 6}}),
  };
  const TraceTable env = envelope(traces, min_med_max(2));

  ASSERT_EQ(env.columns,
            (std::vector<std::string>{"interactions", "v_p0", "v_p50",
                                      "v_p100"}));
  ASSERT_EQ(env.num_rows(), 3u);  // grid {0, 5, 10}, x_max derived = 10

  // x = 0: values {10, 20, 30}.
  EXPECT_DOUBLE_EQ(env.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(env.at(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(env.at(0, 2), 20.0);
  EXPECT_DOUBLE_EQ(env.at(0, 3), 30.0);

  // x = 5 (LOCF): trace A still 10, B sampled 10 at exactly 5, C carried 6.
  EXPECT_DOUBLE_EQ(env.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(env.at(1, 1), 6.0);
  EXPECT_DOUBLE_EQ(env.at(1, 2), 10.0);
  EXPECT_DOUBLE_EQ(env.at(1, 3), 10.0);

  // x = 10: {0, 2, 6}.
  EXPECT_DOUBLE_EQ(env.at(2, 0), 10.0);
  EXPECT_DOUBLE_EQ(env.at(2, 1), 0.0);
  EXPECT_DOUBLE_EQ(env.at(2, 2), 2.0);
  EXPECT_DOUBLE_EQ(env.at(2, 3), 6.0);
}

TEST(EnvelopeTest, InterpolatedQuantilesAcrossFourTraces) {
  // Four constant traces {1, 2, 3, 4}: p50 interpolates to 2.5, p25 to 1.75.
  std::vector<TraceTable> traces;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) {
    traces.push_back(make_trace({{0, v}, {4, v}}));
  }
  EnvelopeOptions options;
  options.quantiles = {0.25, 0.5};
  options.points = 1;
  options.spacing = GridSpec::Spacing::kLinear;
  const TraceTable env = envelope(traces, options);
  ASSERT_EQ(env.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(env.at(0, env.column_index("v_p25")), 1.75);
  EXPECT_DOUBLE_EQ(env.at(0, env.column_index("v_p50")), 2.5);
}

TEST(EnvelopeTest, ExplicitXMaxExtendsByCarryForward) {
  const std::vector<TraceTable> traces{make_trace({{0, 8}, {2, 4}})};
  EnvelopeOptions options = min_med_max(2);
  options.x_max = 20.0;
  const TraceTable env = envelope(traces, options);
  ASSERT_EQ(env.num_rows(), 3u);  // {0, 10, 20}
  EXPECT_DOUBLE_EQ(env.at(1, 0), 10.0);
  EXPECT_DOUBLE_EQ(env.at(1, 2), 4.0);  // carried past the last sample
  EXPECT_DOUBLE_EQ(env.at(2, 2), 4.0);
}

TEST(EnvelopeTest, FractionGridResamplesAtRequestedPositions) {
  // frac: sample grids envelope at the user's fractions of x_max, not on a
  // uniform grid.
  const std::vector<TraceTable> traces{
      make_trace({{0, 100}, {1, 80}, {5, 50}, {10, 20}})};
  EnvelopeOptions options = min_med_max(99);  // ignored when fractions set
  options.grid_fractions = {0.1, 0.5, 1.0};
  const TraceTable env = envelope(traces, options);
  ASSERT_EQ(env.num_rows(), 4u);  // 0 plus the three fractions of x_max=10
  EXPECT_DOUBLE_EQ(env.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(env.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(env.at(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(env.at(3, 0), 10.0);
  EXPECT_DOUBLE_EQ(env.at(1, 2), 80.0);
  EXPECT_DOUBLE_EQ(env.at(2, 2), 50.0);
}

TEST(EnvelopeTest, SingleTraceQuantilesCollapse) {
  const std::vector<TraceTable> traces{make_trace({{0, 7}, {10, 3}})};
  const TraceTable env = envelope(traces, min_med_max(1));
  ASSERT_EQ(env.num_rows(), 2u);
  for (const std::size_t col : {1u, 2u, 3u}) {
    EXPECT_DOUBLE_EQ(env.at(0, col), 7.0);
    EXPECT_DOUBLE_EQ(env.at(1, col), 3.0);
  }
}

TEST(EnvelopeTest, EmptyAndRowlessTraces) {
  EXPECT_TRUE(envelope(std::span<const TraceTable>{}).empty());
  const std::vector<TraceTable> rowless{TraceTable({"interactions", "v"})};
  EXPECT_TRUE(envelope(rowless).empty());
  // Rowless traces are skipped, not fatal, next to populated ones.
  const std::vector<TraceTable> mixed{TraceTable({"interactions", "v"}),
                                      make_trace({{0, 1}, {2, 2}})};
  EXPECT_GT(envelope(mixed, min_med_max(1)).num_rows(), 0u);
}

TEST(EnvelopeTest, MismatchedHeadersThrow) {
  std::vector<TraceTable> traces{make_trace({{0, 1}})};
  TraceTable other({"interactions", "w"});
  other.add_row({0.0, 1.0});
  traces.push_back(other);
  EXPECT_THROW(envelope(traces), std::invalid_argument);
}

TEST(EnvelopeTest, MissingXColumnThrows) {
  const std::vector<TraceTable> traces{make_trace({{0, 1}})};
  EnvelopeOptions options;
  options.x_column = "chemical_time";
  EXPECT_THROW(envelope(traces, options), std::invalid_argument);
}

TEST(EnvelopeTest, ExcludedColumnsDropOut) {
  TraceTable trace({"interactions", "chemical_time", "v"});
  trace.add_row({0.0, 0.0, 5.0});
  trace.add_row({4.0, 0.0, 1.0});
  EnvelopeOptions options = min_med_max(1);
  options.exclude_columns = {"chemical_time", "not_a_column"};
  const TraceTable env = envelope({&trace, 1}, options);
  ASSERT_EQ(env.columns,
            (std::vector<std::string>{"interactions", "v_p0", "v_p50",
                                      "v_p100"}));
}

}  // namespace
}  // namespace circles::obs
