#include "baselines/approx_majority_3state.hpp"

#include <gtest/gtest.h>

#include "analysis/trial.hpp"
#include "analysis/workload.hpp"

namespace circles::baselines {
namespace {

using analysis::TrialOptions;
using analysis::Workload;

TEST(ApproxMajority3StateTest, StateMetadata) {
  ApproxMajority3State protocol;
  EXPECT_EQ(protocol.num_states(), 3u);
  EXPECT_EQ(protocol.num_colors(), 2u);
  EXPECT_EQ(protocol.input(0), ApproxMajority3State::kX);
  EXPECT_EQ(protocol.input(1), ApproxMajority3State::kY);
  EXPECT_EQ(protocol.output(ApproxMajority3State::kX), 0u);
  EXPECT_EQ(protocol.output(ApproxMajority3State::kY), 1u);
  EXPECT_EQ(protocol.output(ApproxMajority3State::kBlank), 0u);
}

TEST(ApproxMajority3StateTest, TransitionRules) {
  ApproxMajority3State protocol;
  {
    // X meets Y: initiator survives, responder blanked.
    const pp::Transition tr = protocol.transition(ApproxMajority3State::kX,
                                                  ApproxMajority3State::kY);
    EXPECT_EQ(tr.initiator, ApproxMajority3State::kX);
    EXPECT_EQ(tr.responder, ApproxMajority3State::kBlank);
  }
  {
    const pp::Transition tr = protocol.transition(ApproxMajority3State::kY,
                                                  ApproxMajority3State::kX);
    EXPECT_EQ(tr.initiator, ApproxMajority3State::kY);
    EXPECT_EQ(tr.responder, ApproxMajority3State::kBlank);
  }
  {
    const pp::Transition tr = protocol.transition(
        ApproxMajority3State::kX, ApproxMajority3State::kBlank);
    EXPECT_EQ(tr.responder, ApproxMajority3State::kX);
  }
  {
    const pp::Transition tr = protocol.transition(
        ApproxMajority3State::kBlank, ApproxMajority3State::kY);
    EXPECT_EQ(tr.initiator, ApproxMajority3State::kY);
  }
  {
    const pp::Transition tr = protocol.transition(
        ApproxMajority3State::kBlank, ApproxMajority3State::kBlank);
    EXPECT_EQ(tr.initiator, ApproxMajority3State::kBlank);
    EXPECT_EQ(tr.responder, ApproxMajority3State::kBlank);
  }
}

TEST(ApproxMajority3StateTest, ConvergesToSomeConsensus) {
  ApproxMajority3State protocol;
  Workload w;
  w.counts = {30, 30};  // perfect tie: still converges, to a coin-flip winner
  util::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    TrialOptions options;
    options.seed = rng();
    const auto outcome = analysis::run_trial(protocol, w, options);
    EXPECT_TRUE(outcome.run.silent);
    ASSERT_TRUE(outcome.consensus.has_value());
  }
}

TEST(ApproxMajority3StateTest, LargeMarginAlmostAlwaysCorrect) {
  ApproxMajority3State protocol;
  Workload w;
  w.counts = {90, 10};
  util::Rng rng(13);
  int correct = 0;
  constexpr int kTrials = 40;
  for (int trial = 0; trial < kTrials; ++trial) {
    TrialOptions options;
    options.seed = rng();
    const auto outcome = analysis::run_trial(protocol, w, options);
    if (outcome.correct) ++correct;
  }
  // With margin 0.8 the failure probability is astronomically small.
  EXPECT_EQ(correct, kTrials);
}

TEST(ApproxMajority3StateTest, SmallMarginSometimesWrong) {
  // The motivating weakness: at margin 2/40 the minority wins noticeably
  // often. This is a statistical property; seeds are fixed so the test is
  // deterministic.
  ApproxMajority3State protocol;
  Workload w;
  w.counts = {21, 19};
  util::Rng rng(29);
  int wrong = 0;
  constexpr int kTrials = 200;
  for (int trial = 0; trial < kTrials; ++trial) {
    TrialOptions options;
    options.seed = rng();
    const auto outcome = analysis::run_trial(protocol, w, options);
    ASSERT_TRUE(outcome.run.silent);
    ASSERT_TRUE(outcome.consensus.has_value());
    if (*outcome.consensus != 0) ++wrong;
  }
  EXPECT_GT(wrong, 0) << "3-state approximate majority never erred at margin "
                         "2/40 across 200 seeded trials — suspicious";
}

TEST(ApproxMajority3StateTest, StateNames) {
  ApproxMajority3State protocol;
  EXPECT_EQ(protocol.state_name(0), "X");
  EXPECT_EQ(protocol.state_name(1), "Y");
  EXPECT_EQ(protocol.state_name(2), "B");
}

}  // namespace
}  // namespace circles::baselines
