#include "baselines/exact_majority_4state.hpp"

#include <gtest/gtest.h>

#include "analysis/trial.hpp"
#include "analysis/workload.hpp"

namespace circles::baselines {
namespace {

using analysis::TrialOptions;
using analysis::Workload;

TEST(ExactMajority4StateTest, StateMetadata) {
  ExactMajority4State protocol;
  EXPECT_EQ(protocol.num_states(), 4u);
  EXPECT_EQ(protocol.num_colors(), 2u);
  EXPECT_EQ(protocol.input(0), ExactMajority4State::kStrong0);
  EXPECT_EQ(protocol.input(1), ExactMajority4State::kStrong1);
  EXPECT_EQ(protocol.output(ExactMajority4State::kStrong0), 0u);
  EXPECT_EQ(protocol.output(ExactMajority4State::kWeak0), 0u);
  EXPECT_EQ(protocol.output(ExactMajority4State::kStrong1), 1u);
  EXPECT_EQ(protocol.output(ExactMajority4State::kWeak1), 1u);
}

TEST(ExactMajority4StateTest, CancellationRule) {
  ExactMajority4State protocol;
  const pp::Transition tr = protocol.transition(
      ExactMajority4State::kStrong0, ExactMajority4State::kStrong1);
  EXPECT_EQ(tr.initiator, ExactMajority4State::kWeak0);
  EXPECT_EQ(tr.responder, ExactMajority4State::kWeak1);
}

TEST(ExactMajority4StateTest, ConversionRules) {
  ExactMajority4State protocol;
  {
    const pp::Transition tr = protocol.transition(
        ExactMajority4State::kStrong0, ExactMajority4State::kWeak1);
    EXPECT_EQ(tr.initiator, ExactMajority4State::kStrong0);
    EXPECT_EQ(tr.responder, ExactMajority4State::kWeak0);
  }
  {
    const pp::Transition tr = protocol.transition(
        ExactMajority4State::kWeak0, ExactMajority4State::kStrong1);
    EXPECT_EQ(tr.initiator, ExactMajority4State::kWeak1);
    EXPECT_EQ(tr.responder, ExactMajority4State::kStrong1);
  }
}

TEST(ExactMajority4StateTest, NullInteractions) {
  ExactMajority4State protocol;
  const pp::StateId states[] = {
      ExactMajority4State::kStrong0, ExactMajority4State::kStrong1,
      ExactMajority4State::kWeak0, ExactMajority4State::kWeak1};
  // Same-color pairs and weak-weak pairs are null.
  for (const pp::StateId s : states) {
    const pp::Transition tr = protocol.transition(s, s);
    EXPECT_EQ(tr.initiator, s);
    EXPECT_EQ(tr.responder, s);
  }
  const pp::Transition ww = protocol.transition(ExactMajority4State::kWeak0,
                                                ExactMajority4State::kWeak1);
  EXPECT_EQ(ww.initiator, ExactMajority4State::kWeak0);
  EXPECT_EQ(ww.responder, ExactMajority4State::kWeak1);
}

TEST(ExactMajority4StateTest, StateNames) {
  ExactMajority4State protocol;
  EXPECT_EQ(protocol.state_name(0), "S0");
  EXPECT_EQ(protocol.state_name(3), "w1");
}

TEST(ExactMajority4StateTest, ExhaustiveMajoritiesAllSchedulers) {
  ExactMajority4State protocol;
  for (std::uint64_t n = 2; n <= 12; ++n) {
    for (std::uint64_t zeros = 0; zeros <= n; ++zeros) {
      if (zeros * 2 == n) continue;  // ties excluded (frozen followers)
      Workload w;
      w.counts = {zeros, n - zeros};
      for (const pp::SchedulerKind kind :
           {pp::SchedulerKind::kRoundRobin, pp::SchedulerKind::kUniformRandom,
            pp::SchedulerKind::kAdversarialDelay}) {
        TrialOptions options;
        options.scheduler = kind;
        options.seed = n * 100 + zeros;
        const auto outcome = analysis::run_trial(protocol, w, options);
        EXPECT_TRUE(outcome.correct)
            << "n=" << n << " zeros=" << zeros << " " << pp::to_string(kind);
      }
    }
  }
}

TEST(ExactMajority4StateTest, TieFreezesWithoutConsensus) {
  ExactMajority4State protocol;
  Workload w;
  w.counts = {4, 4};
  TrialOptions options;
  options.seed = 5;
  const auto outcome = analysis::run_trial(protocol, w, options);
  EXPECT_TRUE(outcome.run.silent);  // weak agents freeze silently
  EXPECT_FALSE(outcome.correct);
  EXPECT_FALSE(outcome.consensus.has_value());
}

TEST(ExactMajority4StateTest, LandslideConvergesFast) {
  ExactMajority4State protocol;
  Workload w;
  w.counts = {50, 2};
  TrialOptions options;
  options.seed = 11;
  const auto outcome = analysis::run_trial(protocol, w, options);
  EXPECT_TRUE(outcome.correct);
  EXPECT_EQ(outcome.consensus, std::optional<pp::OutputSymbol>(0));
}

}  // namespace
}  // namespace circles::baselines
