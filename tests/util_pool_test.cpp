#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "util/arena.hpp"

namespace circles::util {
namespace {

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<std::uint32_t>> hits(257);
  pool.parallel_for(hits.size(), 8, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

TEST(ThreadPoolTest, SerialShortCircuitsStillRunEverything) {
  ThreadPool pool(2);
  // max_threads = 1 and count = 1 both take the inline path.
  std::vector<int> a(64, 0), b(1, 0);
  pool.parallel_for(a.size(), 1, [&](std::size_t i) { a[i] = 1; });
  pool.parallel_for(b.size(), 8, [&](std::size_t i) { b[i] = 1; });
  EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0), 64);
  EXPECT_EQ(b[0], 1);
  // Zero helpers is a valid pool: regions run inline on the caller.
  ThreadPool inline_only(0);
  std::fill(a.begin(), a.end(), 0);
  inline_only.parallel_for(a.size(), 8, [&](std::size_t i) { a[i] = 1; });
  EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0), 64);
}

TEST(ThreadPoolTest, SequentialRegionsReuseTheParkedWorkers) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(100, 8, [&](std::size_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 50u * (100u * 101u / 2u));
}

TEST(ThreadPoolTest, ReportsBusyTimeTelemetry) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> sink{0};  // defeats dead-loop elimination
  const std::uint64_t busy_ns =
      pool.parallel_for(1u << 12, 4, [&](std::size_t i) {
        std::uint64_t acc = 0;
        for (std::uint64_t j = 0; j < 64; ++j) acc += i * j;
        sink.store(acc, std::memory_order_relaxed);
      });
  EXPECT_GT(busy_ns, 0u);
}

TEST(ThreadPoolTest, SharedPoolIsAProcessWideSingleton) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  // hardware_concurrency() - 1 helpers, floored at zero on 1-core boxes.
  EXPECT_GE(a.helpers() + 1u, 1u);
}

TEST(ArenaTest, AllocationsAreZeroedAndAligned) {
  Arena arena(128);
  const std::span<std::uint64_t> slab = arena.alloc<std::uint64_t>(13);
  ASSERT_EQ(slab.size(), 13u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(slab.data()) %
                alignof(std::uint64_t),
            0u);
  for (const std::uint64_t v : slab) EXPECT_EQ(v, 0u);
  EXPECT_TRUE(arena.alloc<std::uint64_t>(0).empty());
}

TEST(ArenaTest, EarlierSpansSurviveBlockGrowth) {
  Arena arena(64);
  const std::span<std::uint32_t> first = arena.alloc<std::uint32_t>(8);
  for (std::size_t i = 0; i < first.size(); ++i) {
    first[i] = static_cast<std::uint32_t>(1000 + i);
  }
  const std::uint32_t* const before = first.data();
  // Far larger than any block so far: forces fresh blocks, must not move or
  // clobber the earlier span.
  (void)arena.alloc<std::uint64_t>(1 << 16);
  (void)arena.alloc<std::uint8_t>(1 << 18);
  EXPECT_EQ(first.data(), before);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], static_cast<std::uint32_t>(1000 + i));
  }
}

TEST(ArenaTest, CapacityCoversEveryAllocation) {
  Arena arena(64);
  std::size_t requested = 0;
  for (int i = 0; i < 40; ++i) {
    (void)arena.alloc<std::uint64_t>(17);
    requested += 17 * sizeof(std::uint64_t);
    // Disjoint live allocations always fit inside the reserved blocks.
    EXPECT_GE(arena.capacity_bytes(), requested);
  }
}

}  // namespace
}  // namespace circles::util
