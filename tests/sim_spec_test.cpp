#include "sim/run_spec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/specs_from_flags.hpp"
#include "util/cli.hpp"

namespace circles::sim {
namespace {

TEST(WorkloadSpecTest, ParseRoundTripsEveryFamily) {
  for (const char* text : {"unique", "random", "tie:3", "margin1",
                           "dominant:0.6", "zipf:1.4", "counts:5,3,2"}) {
    SCOPED_TRACE(text);
    const WorkloadSpec spec = WorkloadSpec::parse(text);
    EXPECT_EQ(spec.to_string(), text);
  }
  EXPECT_THROW(WorkloadSpec::parse("nope"), std::invalid_argument);
  EXPECT_THROW(WorkloadSpec::parse("zipf:abc"), std::invalid_argument);
  // Negative or degenerate arguments must fail at parse time, not wrap
  // through std::stoul and abort inside a worker thread later.
  EXPECT_THROW(WorkloadSpec::parse("tie:-1"), std::invalid_argument);
  EXPECT_THROW(WorkloadSpec::parse("tie:1"), std::invalid_argument);
  EXPECT_THROW(WorkloadSpec::parse("counts:5,-1"), std::invalid_argument);
}

TEST(WorkloadSpecTest, MaterializeIsDeterministicInRng) {
  const WorkloadSpec spec = WorkloadSpec::zipf(1.3);
  util::Rng a(42), b(42);
  const auto wa = spec.materialize(a, 60, 5);
  const auto wb = spec.materialize(b, 60, 5);
  EXPECT_EQ(wa.counts, wb.counts);
  EXPECT_EQ(wa.n(), 60u);
  EXPECT_EQ(wa.k(), 5u);
}

TEST(WorkloadSpecTest, ExplicitCountsIgnoreRngAndN) {
  const WorkloadSpec spec = WorkloadSpec::explicit_counts({4, 4, 1});
  util::Rng rng(1);
  const auto workload = spec.materialize(rng, 999, 3);
  EXPECT_EQ(workload.counts, (std::vector<std::uint64_t>{4, 4, 1}));
}

TEST(RunSpecTest, EffectiveNUsesExplicitCounts) {
  RunSpec spec;
  spec.n = 100;
  EXPECT_EQ(spec.effective_n(), 100u);
  spec.workload = WorkloadSpec::explicit_counts({2, 3});
  EXPECT_EQ(spec.effective_n(), 5u);
}

TEST(SeedDerivationTest, MixSeedSeparatesStreams) {
  EXPECT_NE(mix_seed(1, 0), mix_seed(1, 1));
  EXPECT_NE(mix_seed(1, 0), mix_seed(2, 0));
  EXPECT_EQ(mix_seed(7, 3), mix_seed(7, 3));

  RunSpec pinned;
  pinned.seed = 77;
  EXPECT_EQ(spec_seed(pinned, 1, 0), 77u);
  EXPECT_EQ(spec_seed(pinned, 999, 5), 77u);  // pinning wins over base/index
  RunSpec unpinned;
  EXPECT_NE(spec_seed(unpinned, 1, 0), spec_seed(unpinned, 1, 1));
}

TEST(CliListFlagTest, ParsesCommaSeparatedLists) {
  const char* argv[] = {"prog", "--n=8,32,128", "--protocol=circles,tie_report"};
  util::Cli cli(3, const_cast<char**>(argv));
  const auto ns = cli.int_list_flag("n", "64", "sizes");
  const auto protocols = cli.string_list_flag("protocol", "circles", "names");
  const auto ks = cli.int_list_flag("k", "2,4", "colors");  // default used
  cli.finish();
  EXPECT_EQ(ns, (std::vector<std::int64_t>{8, 32, 128}));
  EXPECT_EQ(protocols, (std::vector<std::string>{"circles", "tie_report"}));
  EXPECT_EQ(ks, (std::vector<std::int64_t>{2, 4}));
}

TEST(SpecsFromFlagsTest, BuildsTheCrossProductGrid) {
  const char* argv[] = {"prog", "--n=10,20", "--k=2,3", "--scheduler=uniform,round_robin",
                        "--trials=7", "--seed=9"};
  util::Cli cli(6, const_cast<char**>(argv));
  const SweepSpecs sweep = specs_from_flags(cli);
  cli.finish();
  EXPECT_EQ(sweep.base_seed, 9u);
  ASSERT_EQ(sweep.specs.size(), 8u);  // 1 protocol x 2 k x 2 n x 2 schedulers
  for (const auto& spec : sweep.specs) {
    EXPECT_EQ(spec.protocol, "circles");
    EXPECT_EQ(spec.trials, 7u);
    EXPECT_FALSE(spec.seed.has_value());
  }
  EXPECT_EQ(sweep.specs[0].params.k, 2u);
  EXPECT_EQ(sweep.specs[0].n, 10u);
  EXPECT_EQ(sweep.specs[0].scheduler, pp::SchedulerKind::kUniformRandom);
  EXPECT_EQ(sweep.specs[1].scheduler, pp::SchedulerKind::kRoundRobin);
  EXPECT_EQ(sweep.specs.back().params.k, 3u);
  EXPECT_EQ(sweep.specs.back().n, 20u);
}

}  // namespace
}  // namespace circles::sim
