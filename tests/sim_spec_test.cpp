#include "sim/run_spec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/specs_from_flags.hpp"
#include "util/cli.hpp"

namespace circles::sim {
namespace {

TEST(WorkloadSpecTest, ParseRoundTripsEveryFamily) {
  for (const char* text : {"unique", "random", "tie:3", "margin1",
                           "dominant:0.6", "zipf:1.4", "counts:5,3,2"}) {
    SCOPED_TRACE(text);
    const WorkloadSpec spec = WorkloadSpec::parse(text);
    EXPECT_EQ(spec.to_string(), text);
  }
  EXPECT_THROW(WorkloadSpec::parse("nope"), std::invalid_argument);
  EXPECT_THROW(WorkloadSpec::parse("zipf:abc"), std::invalid_argument);
  // Negative or degenerate arguments must fail at parse time, not wrap
  // through std::stoul and abort inside a worker thread later.
  EXPECT_THROW(WorkloadSpec::parse("tie:-1"), std::invalid_argument);
  EXPECT_THROW(WorkloadSpec::parse("tie:1"), std::invalid_argument);
  EXPECT_THROW(WorkloadSpec::parse("counts:5,-1"), std::invalid_argument);
}

TEST(WorkloadSpecTest, ToStringRoundTripsEveryConstructor) {
  // The inverse direction of the test above: every factory's to_string
  // survives parse() for every family, including non-default arguments.
  const WorkloadSpec specs[] = {
      WorkloadSpec::unique_winner(),      WorkloadSpec::random_counts(),
      WorkloadSpec::exact_tie(2),         WorkloadSpec::exact_tie(5),
      WorkloadSpec::close_margin(),       WorkloadSpec::dominant(0.75),
      WorkloadSpec::dominant(0.5),        WorkloadSpec::zipf(1.0),
      WorkloadSpec::zipf(2.25),
      WorkloadSpec::explicit_counts({1}), WorkloadSpec::explicit_counts(
                                              {10, 0, 7, 3}),
  };
  for (const WorkloadSpec& spec : specs) {
    SCOPED_TRACE(spec.to_string());
    const WorkloadSpec reparsed = WorkloadSpec::parse(spec.to_string());
    EXPECT_EQ(reparsed.family, spec.family);
    EXPECT_EQ(reparsed.tied_colors, spec.tied_colors);
    EXPECT_EQ(reparsed.share, spec.share);
    EXPECT_EQ(reparsed.exponent, spec.exponent);
    EXPECT_EQ(reparsed.counts, spec.counts);
    EXPECT_EQ(reparsed.to_string(), spec.to_string());
  }
}

TEST(EngineKindTest, RoundTripsAndRejectsUnknown) {
  for (const auto kind :
       {EngineKind::kAgentArray, EngineKind::kDense,
        EngineKind::kDenseBatched, EngineKind::kFluid}) {
    EXPECT_EQ(engine_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_EQ(engine_kind_from_string("batched"), EngineKind::kDenseBatched);
  EXPECT_EQ(engine_kind_from_string("array"), EngineKind::kAgentArray);
  EXPECT_THROW(engine_kind_from_string("gpu"), std::invalid_argument);
  // The rejection names every valid backend, not just the bad token.
  try {
    (void)engine_kind_from_string("gpu");
    FAIL() << "expected engine_kind_from_string to throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'gpu'"), std::string::npos) << what;
    for (const char* token :
         {"agent", "dense", "dense_batched", "fluid", "auto"}) {
      EXPECT_NE(what.find(token), std::string::npos) << token;
    }
  }
}

TEST(RunSpecParseTest, RoundTripsEveryWorkloadFamilyAndBackend) {
  const WorkloadSpec workloads[] = {
      WorkloadSpec::unique_winner(),  WorkloadSpec::random_counts(),
      WorkloadSpec::exact_tie(3),     WorkloadSpec::close_margin(),
      WorkloadSpec::dominant(0.6),    WorkloadSpec::zipf(1.4),
      WorkloadSpec::explicit_counts({5, 3, 2}),
  };
  const EngineKind backends[] = {EngineKind::kAgentArray, EngineKind::kDense,
                                 EngineKind::kDenseBatched,
                                 EngineKind::kFluid};
  for (const WorkloadSpec& workload : workloads) {
    for (const EngineKind backend : backends) {
      RunSpec spec;
      spec.protocol = "tie_report";
      spec.params.k = 4;
      spec.n = 128;
      spec.workload = workload;
      spec.scheduler = pp::SchedulerKind::kShuffledSweep;
      spec.trials = 9;
      spec.backend = backend;
      spec.label = "cell A 3";
      SCOPED_TRACE(spec.to_string());
      const RunSpec reparsed = RunSpec::parse(spec.to_string());
      EXPECT_EQ(reparsed.protocol, spec.protocol);
      EXPECT_EQ(reparsed.params.k, spec.params.k);
      EXPECT_EQ(reparsed.effective_n(), spec.effective_n());
      EXPECT_EQ(reparsed.workload.to_string(), spec.workload.to_string());
      EXPECT_EQ(reparsed.scheduler, spec.scheduler);
      EXPECT_EQ(reparsed.trials, spec.trials);
      EXPECT_EQ(reparsed.backend, spec.backend);
      EXPECT_EQ(reparsed.label, spec.label);
      EXPECT_EQ(reparsed.to_string(), spec.to_string());
    }
  }
}

TEST(RunSpecParseTest, BackendOmittedForAgentArrayAndDefaultsOnParse) {
  RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 3;
  spec.n = 50;
  EXPECT_EQ(spec.to_string().find("backend="), std::string::npos);
  const RunSpec reparsed = RunSpec::parse(spec.to_string());
  EXPECT_EQ(reparsed.backend, EngineKind::kAgentArray);

  spec.backend = EngineKind::kDenseBatched;
  EXPECT_NE(spec.to_string().find("backend=dense_batched"),
            std::string::npos);
}

TEST(RunSpecParseTest, RunThreadsRoundTripAndDefaultOmitted) {
  RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 3;
  spec.n = 50;
  // 0 = "let the BatchRunner budget it" and stays out of the string.
  EXPECT_EQ(spec.to_string().find("threads="), std::string::npos);
  spec.run_threads = 4;
  EXPECT_NE(spec.to_string().find("threads=4"), std::string::npos);
  const RunSpec reparsed = RunSpec::parse(spec.to_string());
  EXPECT_EQ(reparsed.run_threads, 4u);
  EXPECT_EQ(reparsed.to_string(), spec.to_string());
}

TEST(RunSpecParseTest, RejectsMalformedSpecs) {
  EXPECT_THROW(RunSpec::parse(""), std::invalid_argument);
  EXPECT_THROW(RunSpec::parse("circles n=10"), std::invalid_argument);
  EXPECT_THROW(RunSpec::parse("circles(k=2) bogus"), std::invalid_argument);
  EXPECT_THROW(RunSpec::parse("circles(k=2) weird=1"),
               std::invalid_argument);
  EXPECT_THROW(RunSpec::parse("circles(k=2) backend=gpu"),
               std::invalid_argument);
  EXPECT_THROW(RunSpec::parse("circles(k=2) n=10]"), std::invalid_argument);
  // Negative numbers must not wrap through std::stoull.
  EXPECT_THROW(RunSpec::parse("circles(k=-2) n=10"), std::invalid_argument);
  EXPECT_THROW(RunSpec::parse("circles(k=2) n=-10"), std::invalid_argument);
  EXPECT_THROW(RunSpec::parse("circles(k=2) trials=-1"),
               std::invalid_argument);
  // ... and trailing garbage must not be silently truncated.
  EXPECT_THROW(RunSpec::parse("circles(k=2) n=10x3"), std::invalid_argument);
  EXPECT_THROW(RunSpec::parse("circles(k=2) trials=5.9"),
               std::invalid_argument);
}

TEST(WorkloadSpecTest, MaterializeIsDeterministicInRng) {
  const WorkloadSpec spec = WorkloadSpec::zipf(1.3);
  util::Rng a(42), b(42);
  const auto wa = spec.materialize(a, 60, 5);
  const auto wb = spec.materialize(b, 60, 5);
  EXPECT_EQ(wa.counts, wb.counts);
  EXPECT_EQ(wa.n(), 60u);
  EXPECT_EQ(wa.k(), 5u);
}

TEST(WorkloadSpecTest, ExplicitCountsIgnoreRngAndN) {
  const WorkloadSpec spec = WorkloadSpec::explicit_counts({4, 4, 1});
  util::Rng rng(1);
  const auto workload = spec.materialize(rng, 999, 3);
  EXPECT_EQ(workload.counts, (std::vector<std::uint64_t>{4, 4, 1}));
}

TEST(RunSpecTest, EffectiveNUsesExplicitCounts) {
  RunSpec spec;
  spec.n = 100;
  EXPECT_EQ(spec.effective_n(), 100u);
  spec.workload = WorkloadSpec::explicit_counts({2, 3});
  EXPECT_EQ(spec.effective_n(), 5u);
}

TEST(SeedDerivationTest, MixSeedSeparatesStreams) {
  EXPECT_NE(mix_seed(1, 0), mix_seed(1, 1));
  EXPECT_NE(mix_seed(1, 0), mix_seed(2, 0));
  EXPECT_EQ(mix_seed(7, 3), mix_seed(7, 3));

  RunSpec pinned;
  pinned.seed = 77;
  EXPECT_EQ(spec_seed(pinned, 1, 0), 77u);
  EXPECT_EQ(spec_seed(pinned, 999, 5), 77u);  // pinning wins over base/index
  RunSpec unpinned;
  EXPECT_NE(spec_seed(unpinned, 1, 0), spec_seed(unpinned, 1, 1));
}

TEST(CliListFlagTest, ParsesCommaSeparatedLists) {
  const char* argv[] = {"prog", "--n=8,32,128", "--protocol=circles,tie_report"};
  util::Cli cli(3, const_cast<char**>(argv));
  const auto ns = cli.int_list_flag("n", "64", "sizes");
  const auto protocols = cli.string_list_flag("protocol", "circles", "names");
  const auto ks = cli.int_list_flag("k", "2,4", "colors");  // default used
  cli.finish();
  EXPECT_EQ(ns, (std::vector<std::int64_t>{8, 32, 128}));
  EXPECT_EQ(protocols, (std::vector<std::string>{"circles", "tie_report"}));
  EXPECT_EQ(ks, (std::vector<std::int64_t>{2, 4}));
}

TEST(SpecsFromFlagsTest, BuildsTheCrossProductGrid) {
  const char* argv[] = {"prog", "--n=10,20", "--k=2,3", "--scheduler=uniform,round_robin",
                        "--trials=7", "--seed=9"};
  util::Cli cli(6, const_cast<char**>(argv));
  const SweepSpecs sweep = specs_from_flags(cli);
  cli.finish();
  EXPECT_EQ(sweep.base_seed, 9u);
  ASSERT_EQ(sweep.specs.size(), 8u);  // 1 protocol x 2 k x 2 n x 2 schedulers
  for (const auto& spec : sweep.specs) {
    EXPECT_EQ(spec.protocol, "circles");
    EXPECT_EQ(spec.trials, 7u);
    EXPECT_FALSE(spec.seed.has_value());
  }
  EXPECT_EQ(sweep.specs[0].params.k, 2u);
  EXPECT_EQ(sweep.specs[0].n, 10u);
  EXPECT_EQ(sweep.specs[0].scheduler, pp::SchedulerKind::kUniformRandom);
  EXPECT_EQ(sweep.specs[1].scheduler, pp::SchedulerKind::kRoundRobin);
  EXPECT_EQ(sweep.specs.back().params.k, 3u);
  EXPECT_EQ(sweep.specs.back().n, 20u);
}

TEST(SpecsFromFlagsTest, BackendAxisJoinsTheCrossProduct) {
  const char* argv[] = {"prog", "--n=10", "--backend=agent,dense_batched"};
  util::Cli cli(3, const_cast<char**>(argv));
  const SweepSpecs sweep = specs_from_flags(cli);
  cli.finish();
  ASSERT_EQ(sweep.specs.size(), 2u);
  EXPECT_EQ(sweep.specs[0].backend, EngineKind::kAgentArray);
  EXPECT_EQ(sweep.specs[1].backend, EngineKind::kDenseBatched);

  const char* bad[] = {"prog", "--backend=quantum"};
  util::Cli bad_cli(2, const_cast<char**>(bad));
  EXPECT_THROW(specs_from_flags(bad_cli), std::invalid_argument);
}

TEST(SpecsFromFlagsTest, RunThreadsFlagAppliesToEveryCell) {
  const char* argv[] = {"prog", "--n=10,20", "--backend=dense_batched",
                        "--run-threads=2"};
  util::Cli cli(4, const_cast<char**>(argv));
  const SweepSpecs sweep = specs_from_flags(cli);
  cli.finish();
  ASSERT_EQ(sweep.specs.size(), 2u);
  for (const RunSpec& spec : sweep.specs) EXPECT_EQ(spec.run_threads, 2u);

  // The rejection names both knobs so --threads/--run-threads confusion is
  // self-explaining.
  const char* bad[] = {"prog", "--n=10", "--run-threads=-4"};
  util::Cli bad_cli(3, const_cast<char**>(bad));
  try {
    (void)specs_from_flags(bad_cli);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("--run-threads"), std::string::npos) << message;
    EXPECT_NE(message.find("--threads"), std::string::npos) << message;
  }
}

TEST(RunSpecParseTest, RoundTripsClusterAndBridgeTokens) {
  // Equal-cluster count form.
  {
    RunSpec spec;
    spec.protocol = "circles";
    spec.params.k = 3;
    spec.n = 600;
    spec.scheduler = pp::SchedulerKind::kClustered;
    spec.clusters = 4;
    spec.bridge = 0.001;
    spec.backend = EngineKind::kDenseBatched;
    SCOPED_TRACE(spec.to_string());
    EXPECT_NE(spec.to_string().find("clusters=4"), std::string::npos);
    EXPECT_NE(spec.to_string().find("bridge=0.001"), std::string::npos);
    const RunSpec reparsed = RunSpec::parse(spec.to_string());
    EXPECT_EQ(reparsed.clusters, 4u);
    EXPECT_TRUE(reparsed.cluster_sizes.empty());
    EXPECT_DOUBLE_EQ(reparsed.bridge, 0.001);
    EXPECT_EQ(reparsed.to_string(), spec.to_string());
  }
  // Explicit-sizes form, including the single-size disambiguation.
  {
    RunSpec spec;
    spec.protocol = "circles";
    spec.params.k = 2;
    spec.n = 900;
    spec.scheduler = pp::SchedulerKind::kClustered;
    spec.cluster_sizes = {600, 200, 100};
    SCOPED_TRACE(spec.to_string());
    EXPECT_NE(spec.to_string().find("clusters=600,200,100"),
              std::string::npos);
    const RunSpec reparsed = RunSpec::parse(spec.to_string());
    EXPECT_EQ(reparsed.cluster_sizes,
              (std::vector<std::uint64_t>{600, 200, 100}));
    EXPECT_EQ(reparsed.clusters, 0u);
    EXPECT_DOUBLE_EQ(reparsed.bridge, 0.01);  // default omitted and restored
    EXPECT_EQ(reparsed.to_string(), spec.to_string());

    spec.cluster_sizes = {900};
    const RunSpec single = RunSpec::parse(spec.to_string());
    EXPECT_EQ(single.cluster_sizes, (std::vector<std::uint64_t>{900}));
    EXPECT_EQ(single.clusters, 0u);
    EXPECT_EQ(single.to_string(), spec.to_string());
  }
  // Default shape emits no tokens.
  {
    RunSpec spec;
    spec.scheduler = pp::SchedulerKind::kClustered;
    EXPECT_EQ(spec.to_string().find("clusters="), std::string::npos);
    EXPECT_EQ(spec.to_string().find("bridge="), std::string::npos);
  }
  // Malformed values.
  EXPECT_THROW(RunSpec::parse("circles(k=2) clusters=0"),
               std::invalid_argument);
  EXPECT_THROW(RunSpec::parse("circles(k=2) clusters=-2"),
               std::invalid_argument);
  EXPECT_THROW(RunSpec::parse("circles(k=2) bridge=0"),
               std::invalid_argument);
  EXPECT_THROW(RunSpec::parse("circles(k=2) bridge=1.5"),
               std::invalid_argument);
  EXPECT_THROW(RunSpec::parse("circles(k=2) bridge=abc"),
               std::invalid_argument);
}

TEST(RunSpecParseTest, RoundTripsAutoBackend) {
  RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 3;
  spec.n = 4096;
  spec.backend = EngineKind::kAuto;
  EXPECT_NE(spec.to_string().find("backend=auto"), std::string::npos);
  const RunSpec reparsed = RunSpec::parse(spec.to_string());
  EXPECT_EQ(reparsed.backend, EngineKind::kAuto);
  EXPECT_EQ(reparsed.to_string(), spec.to_string());
  EXPECT_EQ(engine_kind_from_string("auto"), EngineKind::kAuto);
  EXPECT_EQ(to_string(EngineKind::kAuto), "auto");
}

TEST(RunSpecParseTest, RoundTripsFluidBackendWithTolerances) {
  RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 3;
  spec.n = 1'000'000'000;
  spec.backend = EngineKind::kFluid;
  spec.rtol = 1e-4;
  spec.atol = 1e-8;
  const std::string text = spec.to_string();
  EXPECT_NE(text.find("backend=fluid"), std::string::npos);
  EXPECT_NE(text.find("rtol=0.0001"), std::string::npos);
  EXPECT_NE(text.find("atol=1e-08"), std::string::npos);
  const RunSpec reparsed = RunSpec::parse(text);
  EXPECT_EQ(reparsed.backend, EngineKind::kFluid);
  EXPECT_EQ(reparsed.n, spec.n);
  EXPECT_DOUBLE_EQ(reparsed.rtol, spec.rtol);
  EXPECT_DOUBLE_EQ(reparsed.atol, spec.atol);
  EXPECT_EQ(reparsed.to_string(), text);

  // Default tolerances render no tokens at all.
  RunSpec plain;
  plain.protocol = "circles";
  plain.params.k = 3;
  plain.n = 64;
  plain.backend = EngineKind::kFluid;
  EXPECT_EQ(plain.to_string().find("rtol="), std::string::npos);
  EXPECT_EQ(plain.to_string().find("atol="), std::string::npos);

  // Tolerances must be positive numbers.
  EXPECT_THROW(RunSpec::parse("circles(k=3) n=10 rtol=0"),
               std::invalid_argument);
  EXPECT_THROW(RunSpec::parse("circles(k=3) n=10 rtol=-1e-4"),
               std::invalid_argument);
  EXPECT_THROW(RunSpec::parse("circles(k=3) n=10 atol=huge"),
               std::invalid_argument);
}

TEST(RunSpecParseTest, RoundTripsBudgetToken) {
  RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 3;
  spec.n = 100;
  // The default budget emits no token; REPRO lines rely on non-default
  // budgets surviving the round trip so budget_exhausted failures replay.
  EXPECT_EQ(spec.to_string().find("budget="), std::string::npos);
  spec.engine.max_interactions = 5'000;
  const std::string text = spec.to_string();
  EXPECT_NE(text.find("budget=5000"), std::string::npos);
  const RunSpec reparsed = RunSpec::parse(text);
  EXPECT_EQ(reparsed.engine.max_interactions, 5'000u);
  EXPECT_EQ(reparsed.to_string(), text);

  EXPECT_THROW(RunSpec::parse("circles(k=3) n=10 budget=0"),
               std::invalid_argument);
  EXPECT_THROW(RunSpec::parse("circles(k=3) n=10 budget=-5"),
               std::invalid_argument);
}

TEST(RunSpecParseTest, RoundTripsSpansTokenAndDisambiguatesFromTrace) {
  RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 3;
  spec.n = 100;
  EXPECT_EQ(spec.to_string().find("spans="), std::string::npos);
  spec.spans_out = "/tmp/cell0.trace.json";
  const std::string text = spec.to_string();
  EXPECT_NE(text.find("spans=/tmp/cell0.trace.json"), std::string::npos);
  const RunSpec reparsed = RunSpec::parse(text);
  EXPECT_EQ(reparsed.spans_out, spec.spans_out);
  EXPECT_EQ(reparsed.to_string(), text);

  // The two trace-ish tokens disambiguate each other: a bad spans= names
  // trace= (obs count probes) and a bad trace= names spans= (Chrome-trace
  // span timelines), so users land on the right knob either way.
  try {
    (void)RunSpec::parse("circles(k=3) n=10 spans=");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("spans="), std::string::npos) << what;
    EXPECT_NE(what.find("trace="), std::string::npos) << what;
  }
  try {
    (void)RunSpec::parse("circles(k=3) n=10 trace=bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("trace="), std::string::npos) << what;
    EXPECT_NE(what.find("spans="), std::string::npos) << what;
  }
}

TEST(SpecsFromFlagsTest, FluidBackendAndTolerancesFlowFromFlags) {
  const char* argv[] = {"prog",
                        "--n=1000000",
                        "--backend=fluid,agent",
                        "--rtol=1e-4",
                        "--atol=1e-7"};
  util::Cli cli(static_cast<int>(std::size(argv)), const_cast<char**>(argv));
  const SweepSpecs sweep = specs_from_flags(cli);
  ASSERT_EQ(sweep.specs.size(), 2u);
  const RunSpec& fluid = sweep.specs[0];
  EXPECT_EQ(fluid.backend, EngineKind::kFluid);
  EXPECT_DOUBLE_EQ(fluid.rtol, 1e-4);
  EXPECT_DOUBLE_EQ(fluid.atol, 1e-7);
  // The tolerances are fluid-only: the agent cell of the same sweep must
  // not inherit them (the BatchRunner would reject it).
  const RunSpec& agent = sweep.specs[1];
  EXPECT_EQ(agent.backend, EngineKind::kAgentArray);
  EXPECT_DOUBLE_EQ(agent.rtol, 0.0);
  EXPECT_DOUBLE_EQ(agent.atol, 0.0);
}

TEST(SpecsFromFlagsTest, ClusteredDenseCellsAreKeptAndShaped) {
  // Clustered is lumpable, so dense x clustered cells survive the grid;
  // --clusters/--bridge shape only the clustered cells.
  const char* argv[] = {"prog", "--n=64",
                        "--scheduler=uniform,clustered,round_robin",
                        "--backend=dense,auto", "--clusters=4",
                        "--bridge=0.002"};
  util::Cli cli(6, const_cast<char**>(argv));
  const SweepSpecs sweep = specs_from_flags(cli);
  cli.finish();
  // dense x {uniform, clustered}, auto x {uniform, clustered, round_robin}.
  ASSERT_EQ(sweep.specs.size(), 5u);
  for (const auto& spec : sweep.specs) {
    if (spec.scheduler == pp::SchedulerKind::kClustered) {
      EXPECT_EQ(spec.clusters, 4u);
      EXPECT_DOUBLE_EQ(spec.bridge, 0.002);
    } else {
      EXPECT_EQ(spec.clusters, 0u);
      EXPECT_TRUE(spec.backend == EngineKind::kAuto ||
                  spec.scheduler == pp::SchedulerKind::kUniformRandom);
    }
  }

  // Several --clusters values become explicit sizes.
  const char* sized[] = {"prog", "--n=60", "--scheduler=clustered",
                         "--clusters=40,20"};
  util::Cli sized_cli(4, const_cast<char**>(sized));
  const SweepSpecs sized_sweep = specs_from_flags(sized_cli);
  sized_cli.finish();
  ASSERT_EQ(sized_sweep.specs.size(), 1u);
  EXPECT_EQ(sized_sweep.specs[0].cluster_sizes,
            (std::vector<std::uint64_t>{40, 20}));
}

TEST(SchedulerLumpingTest, ReflectsSpecSchedulerAndShape) {
  RunSpec spec;
  spec.n = 100;
  spec.scheduler = pp::SchedulerKind::kClustered;
  spec.clusters = 4;
  spec.bridge = 0.2;
  const auto lumping = scheduler_lumping(spec);
  ASSERT_TRUE(lumping.has_value());
  EXPECT_EQ(lumping->sizes, (std::vector<std::uint64_t>{25, 25, 25, 25}));
  EXPECT_NEAR(lumping->rate(0, 0), 0.8 / 4, 1e-12);
  EXPECT_NEAR(lumping->rate(0, 1), 0.2 / 12, 1e-12);

  spec.scheduler = pp::SchedulerKind::kUniformRandom;
  const auto uniform = scheduler_lumping(spec);
  ASSERT_TRUE(uniform.has_value());
  EXPECT_EQ(uniform->sizes, (std::vector<std::uint64_t>{100}));

  spec.scheduler = pp::SchedulerKind::kRoundRobin;
  EXPECT_FALSE(scheduler_lumping(spec).has_value());

  spec.scheduler = pp::SchedulerKind::kUniformRandom;
  spec.scheduler_factory = [](std::uint32_t n, std::uint64_t seed) {
    return pp::make_scheduler(pp::SchedulerKind::kUniformRandom, n, seed);
  };
  EXPECT_FALSE(scheduler_lumping(spec).has_value());
}

TEST(SpecsFromFlagsTest, DenseNonUniformCornersAreSkippedNotFatal) {
  // Dense backends only simulate the uniform scheduler; the invalid corner
  // of a multi-valued cross product is dropped, the rest of the grid runs.
  const char* argv[] = {"prog", "--scheduler=uniform,adversarial",
                        "--backend=agent,dense"};
  util::Cli cli(3, const_cast<char**>(argv));
  const SweepSpecs sweep = specs_from_flags(cli);
  cli.finish();
  ASSERT_EQ(sweep.specs.size(), 3u);  // agent x {uniform, adversarial},
                                      // dense x uniform
  for (const auto& spec : sweep.specs) {
    EXPECT_TRUE(spec.backend == EngineKind::kAgentArray ||
                spec.scheduler == pp::SchedulerKind::kUniformRandom);
  }

  // A grid with nothing but invalid combinations errors out loudly.
  const char* empty[] = {"prog", "--scheduler=adversarial",
                         "--backend=dense"};
  util::Cli empty_cli(3, const_cast<char**>(empty));
  EXPECT_THROW(specs_from_flags(empty_cli), std::invalid_argument);
}

}  // namespace
}  // namespace circles::sim
