#include "fluid/fluid_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "dense/dense_config.hpp"
#include "dense/urn_config.hpp"
#include "kernel/compiled_protocol.hpp"
#include "obs/probes.hpp"
#include "obs/recorder.hpp"
#include "pp/schedulers/clustered.hpp"
#include "sim/sim.hpp"

namespace circles::fluid {
namespace {

using CountVector = std::vector<std::uint64_t>;

analysis::Workload workload_of(CountVector counts) {
  analysis::Workload w;
  w.counts = std::move(counts);
  return w;
}

std::unique_ptr<pp::Protocol> make(const std::string& name, std::uint32_t k) {
  sim::ProtocolParams params;
  params.k = k;
  return sim::ProtocolRegistry::global().create(name, params);
}

// ---------------------------------------------------------------------------
// DriftTable

TEST(DriftTableTest, ClosureCoversExactlyTheInputReachableStates) {
  // approx_majority_3state: inputs X, Y; blank B appears only through
  // transitions — all 3 states are input-reachable.
  const auto protocol = make("approx_majority_3state", 2);
  const DriftTable table(*protocol, nullptr, 1 << 20);
  EXPECT_EQ(table.num_species(), protocol->num_states());
  // Species ascending, index_of is the inverse map.
  for (std::size_t i = 0; i < table.num_species(); ++i) {
    if (i > 0) EXPECT_LT(table.species()[i - 1], table.species()[i]);
    EXPECT_EQ(table.index_of(table.species()[i]),
              static_cast<std::int32_t>(i));
  }
}

TEST(DriftTableTest, TermsAreExactlyTheNonNullPairsOfTheClosure) {
  const auto protocol = make("circles", 3);
  const DriftTable table(*protocol, nullptr, 1 << 24);
  // Every term must reproduce the protocol's transition, and every non-null
  // ordered pair of closure states must appear exactly once.
  std::size_t non_null = 0;
  for (std::size_t i = 0; i < table.num_species(); ++i) {
    for (std::size_t j = 0; j < table.num_species(); ++j) {
      const pp::StateId a = table.species()[i];
      const pp::StateId b = table.species()[j];
      const pp::Transition out = protocol->transition(a, b);
      if (out.initiator != a || out.responder != b) ++non_null;
    }
  }
  EXPECT_EQ(table.terms().size(), non_null);
  for (const DriftTerm& term : table.terms()) {
    const pp::StateId a = table.species()[term.a];
    const pp::StateId b = table.species()[term.b];
    const pp::Transition out = protocol->transition(a, b);
    EXPECT_TRUE(out.initiator != a || out.responder != b);
    EXPECT_EQ(table.species()[term.a2], out.initiator);
    EXPECT_EQ(table.species()[term.b2], out.responder);
  }
  // Sorted by (a, b) — the canonical summation order.
  for (std::size_t i = 1; i < table.terms().size(); ++i) {
    const DriftTerm& p = table.terms()[i - 1];
    const DriftTerm& q = table.terms()[i];
    EXPECT_TRUE(p.a < q.a || (p.a == q.a && p.b < q.b));
  }
}

TEST(DriftTableTest, KernelAndVirtualBuildsProduceIdenticalTables) {
  const auto protocol = make("circles", 4);
  const kernel::CompiledProtocol compiled(*protocol);
  const DriftTable virt(*protocol, nullptr, 1 << 24);
  const DriftTable kern(*protocol, &compiled, 1 << 24);
  ASSERT_EQ(virt.num_species(), kern.num_species());
  EXPECT_TRUE(std::equal(virt.species().begin(), virt.species().end(),
                         kern.species().begin()));
  ASSERT_EQ(virt.terms().size(), kern.terms().size());
  EXPECT_TRUE(std::equal(virt.terms().begin(), virt.terms().end(),
                         kern.terms().begin()));
}

TEST(DriftTableTest, PairBudgetThrowsWithActionableMessage) {
  const auto protocol = make("circles", 5);
  try {
    const DriftTable table(*protocol, nullptr, /*max_pair_lookups=*/10);
    FAIL() << "expected the pair budget to throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("pair-enumeration budget"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("dense backend"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Drift vs the exact one-step expectation

// Brute-force E[d fractions / dt] of the mean-field model: ordered pairs
// sampled with replacement, probability x_a * x_b.
std::vector<double> brute_force_drift(const pp::Protocol& protocol,
                                      const DriftTable& table,
                                      const std::vector<double>& x) {
  std::vector<double> drift(x.size(), 0.0);
  for (std::size_t i = 0; i < table.num_species(); ++i) {
    for (std::size_t j = 0; j < table.num_species(); ++j) {
      const pp::StateId a = table.species()[i];
      const pp::StateId b = table.species()[j];
      const pp::Transition out = protocol.transition(a, b);
      if (out.initiator == a && out.responder == b) continue;
      const double w = x[i] * x[j];
      drift[i] -= w;
      drift[j] -= w;
      drift[static_cast<std::size_t>(table.index_of(out.initiator))] += w;
      drift[static_cast<std::size_t>(table.index_of(out.responder))] += w;
    }
  }
  return drift;
}

TEST(FluidDriftTest, MatchesBruteForceMeanFieldExpectation) {
  const std::pair<const char*, std::uint32_t> cases[] = {
      {"approx_majority_3state", 2}, {"circles", 3}};
  for (const auto& [name, k] : cases) {
    const auto protocol = make(name, k);
    const FluidEngine engine(*protocol);
    const std::size_t m = engine.drift().num_species();
    // A generic interior point (normalized pseudo-random fractions).
    std::vector<double> x(m);
    double sum = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      x[i] = 1.0 + std::fmod(0.61803398875 * static_cast<double>(i + 1), 1.0);
      sum += x[i];
    }
    for (double& v : x) v /= sum;
    std::vector<double> dxdt(m);
    engine.eval_drift(x, dxdt);
    const std::vector<double> expected =
        brute_force_drift(*protocol, engine.drift(), x);
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_NEAR(dxdt[i], expected[i], 1e-12) << name << " species " << i;
    }
    // Fraction mass is conserved by every term.
    double total = 0.0;
    for (const double v : dxdt) total += v;
    EXPECT_NEAR(total, 0.0, 1e-12);
  }
}

TEST(FluidDriftTest, FiniteNExpectationConvergesToDriftAsOneOverN) {
  // The discrete chain draws ordered pairs WITHOUT replacement:
  // P(a, b) = c_a (c_b - [a==b]) / (n (n-1)). The mean-field drift replaces
  // that with x_a x_b; the gap must shrink like 1/n.
  const auto protocol = make("approx_majority_3state", 2);
  const FluidEngine engine(*protocol);
  const DriftTable& table = engine.drift();
  const std::size_t m = table.num_species();
  const auto gap_at = [&](std::uint64_t n) {
    std::vector<std::uint64_t> c(m, 0);
    c[0] = n / 2;
    c[1] = n - n / 2;
    std::vector<double> x(m);
    for (std::size_t i = 0; i < m; ++i) {
      x[i] = static_cast<double>(c[i]) / static_cast<double>(n);
    }
    std::vector<double> dxdt(m);
    engine.eval_drift(x, dxdt);
    // Exact E[Δc per interaction] of the discrete chain = d fractions / dt.
    std::vector<double> exact(m, 0.0);
    const double nn = static_cast<double>(n);
    for (const DriftTerm& term : table.terms()) {
      const double pairs =
          static_cast<double>(c[term.a]) *
          (static_cast<double>(c[term.b]) - (term.a == term.b ? 1.0 : 0.0));
      const double w = pairs / (nn * (nn - 1.0));
      exact[term.a] -= w;
      exact[term.b] -= w;
      exact[term.a2] += w;
      exact[term.b2] += w;
    }
    double gap = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      gap = std::max(gap, std::fabs(dxdt[i] - exact[i]));
    }
    return gap;
  };
  const double gap_1k = gap_at(1000);
  const double gap_100k = gap_at(100000);
  EXPECT_LT(gap_1k, 1e-2);
  // O(1/n): two decades of n buy ~two decades of accuracy.
  EXPECT_LT(gap_100k, gap_1k / 50.0);
}

// ---------------------------------------------------------------------------
// Poisson sampler

TEST(FluidPoissonTest, MomentsMatchInBothRegimes) {
  for (const double mean : {3.0, 100.0}) {  // Knuth branch, normal branch
    util::Rng rng(12345);
    const int samples = 20000;
    double sum = 0.0, sum2 = 0.0;
    for (int i = 0; i < samples; ++i) {
      const double v = static_cast<double>(poisson(rng, mean));
      sum += v;
      sum2 += v * v;
    }
    const double sample_mean = sum / samples;
    const double sample_var = sum2 / samples - sample_mean * sample_mean;
    // ~5 sigma of the sampling error of each moment.
    EXPECT_NEAR(sample_mean, mean, 5.0 * std::sqrt(mean / samples));
    EXPECT_NEAR(sample_var, mean,
                5.0 * mean * std::sqrt(3.0 / samples) + 0.05 * mean);
  }
}

TEST(FluidPoissonTest, DeterministicForAFixedSeed) {
  util::Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    const double mean = 0.5 + 7.0 * (i % 13);
    EXPECT_EQ(poisson(a, mean), poisson(b, mean));
  }
  EXPECT_EQ(poisson(a, 0.0), 0u);
  EXPECT_EQ(poisson(a, -1.0), 0u);
}

// ---------------------------------------------------------------------------
// ODE end-to-end

TEST(FluidEngineTest, CirclesMillionAgentsReachesSilentConsensus) {
  const auto protocol = make("circles", 3);
  const FluidEngine engine(*protocol);
  const analysis::Workload workload =
      workload_of({600000, 250000, 150000});
  util::Rng rng(1);
  dense::DenseConfig config =
      dense::DenseConfig::from_workload(*protocol, workload);
  const pp::RunResult run = engine.run(config, /*seed=*/1);
  EXPECT_TRUE(run.silent);
  EXPECT_FALSE(run.budget_exhausted);
  EXPECT_TRUE(run.consensus_on(0));
  EXPECT_GT(run.interactions, 0u);
  EXPECT_GE(run.interactions, run.state_changes);
  // The final counts sum to n.
  std::uint64_t total = 0;
  for (const std::uint64_t c : config.counts) total += c;
  EXPECT_EQ(total, workload.n());
}

TEST(FluidEngineTest, TrajectoryIsBitwiseDeterministicAcrossBuildPaths) {
  const auto protocol = make("circles", 3);
  const auto kernel = std::make_shared<const kernel::CompiledProtocol>(
      *protocol);
  const FluidEngine virt(*protocol);
  const FluidEngine kern(kernel);
  const analysis::Workload workload = workload_of({500000, 300000, 200000});
  dense::DenseConfig a = dense::DenseConfig::from_workload(*protocol, workload);
  dense::DenseConfig b = dense::DenseConfig::from_workload(*protocol, workload);
  // Different seeds on purpose: the ODE trajectory must not consume them.
  const pp::RunResult ra = virt.run(a, /*seed=*/1);
  const pp::RunResult rb = kern.run(b, /*seed=*/99);
  EXPECT_EQ(ra.interactions, rb.interactions);
  EXPECT_EQ(ra.state_changes, rb.state_changes);
  EXPECT_EQ(ra.silent, rb.silent);
  EXPECT_EQ(a.counts, b.counts);
}

TEST(FluidEngineTest, ShortHorizonReportsBudgetExhaustion) {
  // A horizon far below the convergence time must end active, with
  // budget_exhausted set and interactions clamped to the budget — mirroring
  // a discrete engine that ran out of budget.
  const auto protocol = make("circles", 3);
  pp::EngineOptions options;
  options.max_interactions = 100'000;  // horizon = 0.1 chemical time at n=1e6
  const FluidEngine engine(*protocol, options);
  const analysis::Workload workload = workload_of({600000, 250000, 150000});
  dense::DenseConfig config =
      dense::DenseConfig::from_workload(*protocol, workload);
  const pp::RunResult run = engine.run(config, 1);
  EXPECT_FALSE(run.silent);
  EXPECT_TRUE(run.budget_exhausted);
  EXPECT_EQ(run.interactions, options.max_interactions);
}

TEST(FluidEngineTest, RejectsMassOutsideTheInputClosure) {
  // circles(k=3) has k^3 states but only the input-reachable slice is in the
  // drift table; planting mass on an unreachable state must be refused.
  const auto protocol = make("circles", 3);
  const FluidEngine engine(*protocol);
  ASSERT_LT(engine.drift().num_species(), protocol->num_states());
  pp::StateId outside = 0;
  while (engine.drift().index_of(outside) >= 0) ++outside;
  dense::DenseConfig config;
  config.counts.assign(protocol->num_states(), 0);
  config.counts[engine.drift().species()[0]] = 10;
  config.counts[outside] = 10;
  EXPECT_THROW((void)engine.run(config, 1), std::invalid_argument);
}

TEST(FluidEngineTest, ClusteredLumpingIntegratesPerUrn) {
  const auto protocol = make("circles", 3);
  const analysis::Workload workload = workload_of({60000, 25000, 15000});
  pp::ClusteredOptions clustered;
  clustered.num_clusters = 2;
  clustered.bridge_probability = 0.01;
  pp::UrnLumping lumping = pp::clustered_lumping(workload.n(), clustered);
  const FluidEngine engine(*protocol, {}, {}, lumping);
  util::Rng rng(3);
  dense::UrnConfig config = dense::UrnConfig::from_workload(
      *protocol, workload, lumping.sizes, rng);
  const pp::RunResult run = engine.run(config, 1);
  EXPECT_TRUE(run.silent);
  EXPECT_TRUE(run.consensus_on(0));
  for (std::size_t u = 0; u < config.num_urns(); ++u) {
    EXPECT_EQ(config.urn_n(u), lumping.sizes[u]) << "urn " << u;
  }
}

TEST(FluidEngineTest, EnergyTraceDescendsOnTheContinuousTrajectory) {
  const auto protocol = make("circles", 3);
  const auto* circles =
      dynamic_cast<const core::CirclesProtocol*>(protocol.get());
  ASSERT_NE(circles, nullptr);
  obs::EnergyTrace energy = obs::EnergyTrace::for_circles(*circles);
  obs::RecorderOptions recorder_options;
  pp::EngineOptions engine_options;
  recorder_options.interaction_horizon = engine_options.max_interactions;
  obs::Recorder recorder(recorder_options);
  obs::GridSpec grid;
  grid.points = 64;
  recorder.add(&energy, grid);

  const FluidEngine engine(*protocol, engine_options);
  const analysis::Workload workload = workload_of({500000, 300000, 200000});
  dense::DenseConfig config =
      dense::DenseConfig::from_workload(*protocol, workload);
  const pp::RunResult run = engine.run(config, 1, &recorder);
  EXPECT_TRUE(run.silent);

  const obs::TraceTable* table = energy.table();
  ASSERT_NE(table, nullptr);
  ASSERT_GT(table->num_rows(), 2u);
  const std::size_t energy_col = table->column_index("total_energy");
  const std::size_t time_col = table->column_index("chemical_time");
  // Monotone descent of the paper's potential along the mean-field
  // trajectory (allow count-rounding jitter of a few units), and a real
  // chemical clock.
  for (std::size_t row = 1; row < table->num_rows(); ++row) {
    EXPECT_LE(table->at(row, energy_col),
              table->at(row - 1, energy_col) + 4.0)
        << "row " << row;
    EXPECT_GE(table->at(row, time_col), table->at(row - 1, time_col));
  }
  EXPECT_LT(table->at(table->num_rows() - 1, energy_col),
            table->at(0, energy_col));
  EXPECT_GT(table->at(table->num_rows() - 1, time_col), 0.0);
}

// ---------------------------------------------------------------------------
// Tau-leaping

TEST(FluidTauTest, ReachesExactSilenceWithConsensus) {
  const auto protocol = make("approx_majority_3state", 2);
  FluidOptions options;
  options.tau_leaping = true;
  const FluidEngine engine(*protocol, {}, options);
  const analysis::Workload workload = workload_of({70000, 30000});
  dense::DenseConfig config =
      dense::DenseConfig::from_workload(*protocol, workload);
  const pp::RunResult run = engine.run(config, /*seed=*/42);
  EXPECT_TRUE(run.silent);
  EXPECT_FALSE(run.budget_exhausted);
  EXPECT_TRUE(run.consensus_on(0));
  std::uint64_t total = 0;
  for (const std::uint64_t c : config.counts) total += c;
  EXPECT_EQ(total, workload.n());
}

TEST(FluidTauTest, SameSeedSameTrajectoryDifferentSeedDifferentNoise) {
  const auto protocol = make("approx_majority_3state", 2);
  FluidOptions options;
  options.tau_leaping = true;
  const FluidEngine engine(*protocol, {}, options);
  const analysis::Workload workload = workload_of({60000, 40000});
  const auto run_with = [&](std::uint64_t seed) {
    dense::DenseConfig config =
        dense::DenseConfig::from_workload(*protocol, workload);
    const pp::RunResult run = engine.run(config, seed);
    return std::make_pair(run.interactions, config.counts);
  };
  const auto a = run_with(7);
  const auto b = run_with(7);
  const auto c = run_with(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.first, c.first);
}

TEST(FluidTauTest, LeapMomentsTrackTheDrift) {
  // One macroscopic property of the leap process: over a short horizon the
  // mean displacement must match the ODE drift to a few percent. Run many
  // short tau trajectories and compare against an ODE run of the same
  // horizon.
  const auto protocol = make("approx_majority_3state", 2);
  const std::uint64_t n = 100000;
  const double horizon = 1.0;  // one unit of chemical time = n interactions
  pp::EngineOptions engine_options;
  engine_options.max_interactions = static_cast<std::uint64_t>(horizon * n);
  engine_options.stop_when_silent = false;

  const FluidEngine ode(*protocol, engine_options);
  const analysis::Workload workload = workload_of({60000, 40000});
  dense::DenseConfig ode_config =
      dense::DenseConfig::from_workload(*protocol, workload);
  (void)ode.run(ode_config, 1);

  FluidOptions tau_options;
  tau_options.tau_leaping = true;
  const FluidEngine tau(*protocol, engine_options, tau_options);
  const int reps = 32;
  std::vector<double> mean(protocol->num_states(), 0.0);
  for (int r = 0; r < reps; ++r) {
    dense::DenseConfig config =
        dense::DenseConfig::from_workload(*protocol, workload);
    (void)tau.run(config, 1000 + r);
    for (std::size_t s = 0; s < config.counts.size(); ++s) {
      mean[s] += static_cast<double>(config.counts[s]) / reps;
    }
  }
  for (std::size_t s = 0; s < mean.size(); ++s) {
    // Fluctuations are O(sqrt(n)) per trajectory, O(sqrt(n / reps)) on the
    // mean; 4 sigma with sqrt(1e5/32) ~ 56.
    EXPECT_NEAR(mean[s], static_cast<double>(ode_config.counts[s]), 250.0)
        << "state " << s;
  }
}

// ---------------------------------------------------------------------------
// sim-layer integration

TEST(FluidSimTest, RunFluidTrialGradesLikeTheDenseTrial) {
  const auto protocol = make("circles", 3);
  const analysis::Workload workload = workload_of({50000, 30000, 20000});
  sim::TrialOptions options;
  options.seed = 11;
  const sim::TrialOutcome fluid =
      sim::run_fluid_trial(*protocol, workload, options);
  const sim::TrialOutcome dense =
      sim::run_dense_trial(*protocol, workload, options, /*batched=*/true);
  EXPECT_TRUE(fluid.correct);
  EXPECT_TRUE(dense.correct);
  EXPECT_EQ(fluid.consensus, dense.consensus);
}

TEST(FluidSimTest, BatchRunnerRunsBackendFluidSpecs) {
  sim::RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 3;
  spec.n = 1'000'000;
  // Well-separated color counts: mean-field convergence is fluctuation-free,
  // so a sub-race between two near-tied losers (which the discrete chain
  // resolves by noise) would be exponentially slow in the ODE. dominant()
  // splits the losers evenly — exactly that trap.
  spec.workload =
      sim::WorkloadSpec::explicit_counts({250000, 600000, 150000});
  spec.backend = sim::EngineKind::kFluid;
  spec.trials = 3;
  spec.seed = 5;
  const sim::BatchRunner runner;
  const sim::SpecResult result = runner.run_one(spec);
  EXPECT_EQ(result.backend_resolved, sim::EngineKind::kFluid);
  EXPECT_EQ(result.correct, 3u);
  EXPECT_EQ(result.silent, 3u);
}

TEST(FluidSimTest, FluidSpecsRecordProbeEnvelopes) {
  sim::RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 3;
  spec.n = 200000;
  spec.workload =
      sim::WorkloadSpec::explicit_counts({100000, 60000, 40000});
  spec.backend = sim::EngineKind::kFluid;
  spec.trials = 2;
  spec.seed = 5;
  spec.probes.push_back(obs::ProbeSpec::parse("energy@log:64"));
  const sim::BatchRunner runner;
  const sim::SpecResult result = runner.run_one(spec);
  ASSERT_EQ(result.trace_envelopes.size(), 1u);
  const obs::TraceTable& envelope = result.trace_envelopes[0];
  EXPECT_GT(envelope.num_rows(), 0u);
  const std::size_t col = envelope.column_index("total_energy_p50");
  EXPECT_LT(envelope.at(envelope.num_rows() - 1, col), envelope.at(0, col));
}

TEST(FluidSimTest, RtolAtolFlowThroughTheSpec) {
  sim::RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 3;
  spec.n = 100000;
  spec.workload = sim::WorkloadSpec::explicit_counts({50000, 30000, 20000});
  spec.backend = sim::EngineKind::kFluid;
  spec.rtol = 1e-3;
  spec.atol = 1e-6;
  spec.trials = 1;
  spec.seed = 9;
  const sim::BatchRunner runner;
  const sim::SpecResult result = runner.run_one(spec);
  EXPECT_EQ(result.correct, 1u);
}

TEST(FluidSimTest, ValidationRejectsAgentOnlyFeaturesWithClearMessages) {
  const sim::BatchRunner runner;
  const auto expect_reject = [&](sim::RunSpec spec, const char* needle) {
    try {
      (void)runner.run_one(spec);
      FAIL() << "expected rejection mentioning '" << needle << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  sim::RunSpec base;
  base.protocol = "circles";
  base.params.k = 3;
  base.n = 10000;
  base.backend = sim::EngineKind::kFluid;

  sim::RunSpec scheduler = base;
  scheduler.scheduler = pp::SchedulerKind::kRoundRobin;
  expect_reject(scheduler, "no exact count-level lumping");

  sim::RunSpec faults = base;
  faults.reboot_faults = 2;
  expect_reject(faults, "addresses individual agents");

  sim::RunSpec chemical = base;
  chemical.chemical_time = true;
  expect_reject(chemical, "fluid trajectory already advances");

  sim::RunSpec tolerances;
  tolerances.protocol = "circles";
  tolerances.params.k = 3;
  tolerances.n = 10000;
  tolerances.backend = sim::EngineKind::kDenseBatched;
  tolerances.rtol = 1e-4;
  expect_reject(tolerances, "fluid-integrator tolerances");

  sim::RunSpec negative = base;
  negative.rtol = -1.0;
  expect_reject(negative, "negative fluid-integrator tolerance");
}

}  // namespace
}  // namespace circles::fluid
