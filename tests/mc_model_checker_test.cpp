#include "mc/model_checker.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "baselines/approx_majority_3state.hpp"
#include "baselines/exact_majority_4state.hpp"
#include "baselines/pairwise_plurality.hpp"
#include "core/circles_protocol.hpp"
#include "extensions/tie_report.hpp"

namespace circles::mc {
namespace {

std::vector<pp::ColorId> colors_from_counts(
    const std::vector<std::uint64_t>& counts) {
  std::vector<pp::ColorId> colors;
  for (pp::ColorId c = 0; c < counts.size(); ++c) {
    colors.insert(colors.end(), counts[c], c);
  }
  return colors;
}

/// Simple epidemic used to exercise the checker's plumbing.
class Epidemic final : public pp::Protocol {
 public:
  std::uint64_t num_states() const override { return 2; }
  std::uint32_t num_colors() const override { return 2; }
  pp::StateId input(pp::ColorId color) const override { return color; }
  pp::OutputSymbol output(pp::StateId state) const override { return state; }
  pp::Transition transition(pp::StateId i, pp::StateId r) const override {
    if (i == 1 || r == 1) return {1, 1};
    return {i, r};
  }
  std::string name() const override { return "epidemic"; }
};

/// Pure oscillator: (0,1) swaps forever — a livelock the checker must flag.
class Oscillator final : public pp::Protocol {
 public:
  std::uint64_t num_states() const override { return 2; }
  std::uint32_t num_colors() const override { return 2; }
  pp::StateId input(pp::ColorId color) const override { return color; }
  pp::OutputSymbol output(pp::StateId state) const override { return state; }
  pp::Transition transition(pp::StateId i, pp::StateId r) const override {
    if (i != r) return {r, i};
    return {i, r};
  }
  std::string name() const override { return "oscillator"; }
};

TEST(ModelCheckerTest, EpidemicIsAlwaysCorrect) {
  Epidemic protocol;
  const std::vector<pp::ColorId> colors{1, 0, 0, 0};
  const Result result = check(protocol, colors, 1u);
  EXPECT_TRUE(result.explored_fully);
  EXPECT_TRUE(result.always_correct());
  EXPECT_EQ(result.reachable, 4u);  // one per count of infected agents
  EXPECT_EQ(result.silent, 1u);
}

TEST(ModelCheckerTest, OscillatorIsFlaggedAsStuck) {
  Oscillator protocol;
  const std::vector<pp::ColorId> colors{0, 1};
  const Result result = check(protocol, colors, std::nullopt);
  EXPECT_TRUE(result.explored_fully);
  EXPECT_FALSE(result.always_correct());
  EXPECT_GT(result.stuck_count, 0u);  // no silent config is ever reachable
}

TEST(ModelCheckerTest, MakeConfigCanonicalizes) {
  const std::vector<pp::StateId> states{3, 1, 3, 1, 1};
  const Config config = make_config(states);
  ASSERT_EQ(config.size(), 2u);
  EXPECT_EQ(config[0], (std::pair<pp::StateId, std::uint32_t>{1, 3}));
  EXPECT_EQ(config[1], (std::pair<pp::StateId, std::uint32_t>{3, 2}));
}

TEST(ModelCheckerTest, ConfigToStringReadable) {
  Epidemic protocol;
  const Config config{{0, 2}, {1, 1}};
  EXPECT_EQ(config_to_string(protocol, config), "{s0 x2, s1}");
}

TEST(ModelCheckerTest, CapTruncatesExploration) {
  core::CirclesProtocol protocol(3);
  Options options;
  options.max_configurations = 10;
  const Result result =
      check(protocol, colors_from_counts({3, 2, 1}), 0u, options);
  EXPECT_FALSE(result.explored_fully);
  EXPECT_EQ(result.reachable, 10u);
  EXPECT_FALSE(result.always_correct());  // verdict withheld when truncated
}

TEST(ModelCheckerCirclesTest, ExhaustiveTwoColors) {
  core::CirclesProtocol protocol(2);
  for (std::uint64_t n = 2; n <= 7; ++n) {
    for (std::uint64_t zeros = 0; zeros <= n; ++zeros) {
      if (zeros * 2 == n) continue;  // ties: no winner to expect
      const std::vector<std::uint64_t> counts{zeros, n - zeros};
      const pp::OutputSymbol expected = zeros > n - zeros ? 0 : 1;
      const Result result =
          check(protocol, colors_from_counts(counts), expected);
      EXPECT_TRUE(result.explored_fully) << "n=" << n << " zeros=" << zeros;
      EXPECT_TRUE(result.always_correct())
          << "n=" << n << " zeros=" << zeros << " incorrect="
          << result.incorrect_silent_count << " stuck=" << result.stuck_count;
    }
  }
}

TEST(ModelCheckerCirclesTest, ExhaustiveThreeColors) {
  core::CirclesProtocol protocol(3);
  const std::vector<std::vector<std::uint64_t>> instances{
      {2, 1, 0}, {2, 1, 1}, {3, 1, 1}, {2, 2, 1}, {3, 2, 1}, {1, 1, 3}};
  for (const auto& counts : instances) {
    std::uint64_t top = 0;
    pp::ColorId winner = 0;
    bool tied = false;
    for (pp::ColorId c = 0; c < 3; ++c) {
      if (counts[c] > top) {
        top = counts[c];
        winner = c;
        tied = false;
      } else if (counts[c] == top) {
        tied = true;
      }
    }
    if (tied) continue;
    const Result result = check(protocol, colors_from_counts(counts), winner);
    EXPECT_TRUE(result.explored_fully);
    EXPECT_TRUE(result.always_correct())
        << counts[0] << "," << counts[1] << "," << counts[2];
  }
}

TEST(ModelCheckerCirclesTest, TieInstancesCanAlwaysSilence) {
  // No expected output on ties (plain Circles does not decide them), but the
  // run must never livelock: silence stays reachable from everywhere.
  core::CirclesProtocol protocol(3);
  for (const auto& counts : std::vector<std::vector<std::uint64_t>>{
           {2, 2, 0}, {2, 2, 1}, {1, 1, 1}}) {
    const Result result =
        check(protocol, colors_from_counts(counts), std::nullopt);
    EXPECT_TRUE(result.explored_fully);
    EXPECT_TRUE(result.always_correct());
  }
}

TEST(ModelCheckerTieReportTest, ExhaustiveSmallInstances) {
  // The strongest evidence for the retractor construction: exhaustive
  // verification over every reachable configuration, ties and non-ties.
  for (const std::uint32_t k : {2u, 3u}) {
    ext::TieReportProtocol protocol(k);
    const std::vector<std::vector<std::uint64_t>> instances =
        k == 2 ? std::vector<std::vector<std::uint64_t>>{{2, 0},
                                                         {2, 1},
                                                         {2, 2},
                                                         {3, 1},
                                                         {3, 2},
                                                         {3, 3}}
               : std::vector<std::vector<std::uint64_t>>{
                     {2, 1, 0}, {2, 2, 0}, {1, 1, 1}, {2, 2, 1}, {3, 1, 1}};
    for (const auto& counts : instances) {
      std::uint64_t top = 0;
      pp::ColorId winner = 0;
      bool tied = false;
      for (pp::ColorId c = 0; c < k; ++c) {
        if (counts[c] > top) {
          top = counts[c];
          winner = c;
          tied = false;
        } else if (counts[c] == top && top > 0) {
          tied = true;
        }
      }
      const pp::OutputSymbol expected = tied ? protocol.tie_symbol() : winner;
      const Result result =
          check(protocol, colors_from_counts(counts), expected);
      EXPECT_TRUE(result.explored_fully);
      EXPECT_TRUE(result.always_correct())
          << "k=" << k << " counts[0]=" << counts[0]
          << " incorrect=" << result.incorrect_silent_count
          << " stuck=" << result.stuck_count
          << (result.incorrect_silent.empty()
                  ? ""
                  : " e.g. " + config_to_string(protocol,
                                                result.incorrect_silent[0]));
    }
  }
}

TEST(ModelCheckerBaselineTest, FourStateMajorityVerified) {
  baselines::ExactMajority4State protocol;
  for (std::uint64_t n = 2; n <= 9; ++n) {
    for (std::uint64_t zeros = 0; zeros <= n; ++zeros) {
      if (zeros * 2 == n) continue;
      const pp::OutputSymbol expected = zeros > n - zeros ? 0 : 1;
      const Result result =
          check(protocol, colors_from_counts({zeros, n - zeros}), expected);
      EXPECT_TRUE(result.always_correct()) << "n=" << n << " zeros=" << zeros;
    }
  }
}

TEST(ModelCheckerBaselineTest, ApproxMajorityViolationIsCaught) {
  // Negative control: the 3-state approximate majority protocol can reach a
  // silent minority-win configuration; the checker must find it.
  baselines::ApproxMajority3State protocol;
  const Result result =
      check(protocol, colors_from_counts({3, 2}), /*expected=*/0u);
  EXPECT_TRUE(result.explored_fully);
  EXPECT_FALSE(result.always_correct());
  EXPECT_GT(result.incorrect_silent_count, 0u);
  ASSERT_FALSE(result.incorrect_silent.empty());
  // The canonical wrong outcome: everyone converted to the minority Y.
  bool found_all_y = false;
  for (const auto& config : result.incorrect_silent) {
    if (config.size() == 1 &&
        config[0].first == baselines::ApproxMajority3State::kY) {
      found_all_y = true;
    }
  }
  EXPECT_TRUE(found_all_y);
}

TEST(ModelCheckerBaselineTest, PairwisePluralityVerifiedSmall) {
  baselines::PairwisePlurality protocol(3);
  const Result result =
      check(protocol, colors_from_counts({2, 1, 1}), /*expected=*/0u);
  EXPECT_TRUE(result.explored_fully);
  EXPECT_TRUE(result.always_correct())
      << "incorrect=" << result.incorrect_silent_count
      << " stuck=" << result.stuck_count;
}

TEST(ModelCheckerTest, TransitionsCountedAndSilentConfigsExist) {
  core::CirclesProtocol protocol(2);
  const Result result = check(protocol, colors_from_counts({2, 1}), 0u);
  EXPECT_GT(result.transitions, 0u);
  EXPECT_GT(result.silent, 0u);
  EXPECT_GE(result.reachable, result.silent);
}

}  // namespace
}  // namespace circles::mc
