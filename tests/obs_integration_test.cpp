// End-to-end observation: probes attached through RunSpec on every backend,
// bitwise reproducibility, agent-vs-dense agreement on the energy descent,
// chemical-time cadence, and the BatchRunner's split validation messages.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "core/invariants.hpp"
#include "obs/obs.hpp"
#include "sim/sim.hpp"

namespace circles {
namespace {

sim::RunSpec energy_spec(sim::EngineKind backend, std::uint32_t k,
                         std::uint64_t n, std::uint32_t trials,
                         std::uint64_t seed) {
  sim::RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = k;
  spec.n = n;
  spec.trials = trials;
  spec.seed = seed;
  spec.backend = backend;
  spec.probes.push_back(obs::ProbeSpec::parse("energy@log:32"));
  return spec;
}

TEST(ObsIntegrationTest, EnergyTraceBitwiseIdenticalWithKernelOnAndOff) {
  // The engines produce bitwise-identical runs with the kernel on or off,
  // and probes never touch the RNG streams — so the recorded trajectories
  // must be byte-for-byte equal, on the agent AND both dense backends.
  for (const sim::EngineKind backend :
       {sim::EngineKind::kAgentArray, sim::EngineKind::kDense,
        sim::EngineKind::kDenseBatched}) {
    sim::RunSpec on = energy_spec(backend, 3, 80, 3, 11);
    sim::RunSpec off = on;
    off.use_kernel = false;
    const auto result_on = sim::BatchRunner().run_one(on);
    const auto result_off = sim::BatchRunner().run_one(off);
    ASSERT_EQ(result_on.trials.size(), result_off.trials.size());
    for (std::size_t t = 0; t < result_on.trials.size(); ++t) {
      EXPECT_EQ(result_on.trials[t].traces.at(0),
                result_off.trials[t].traces.at(0))
          << sim::to_string(backend) << " trial " << t;
    }
  }
}

TEST(ObsIntegrationTest, ProbesDoNotPerturbTheRun) {
  sim::RunSpec plain;
  plain.protocol = "circles";
  plain.params.k = 3;
  plain.n = 100;
  plain.trials = 4;
  plain.seed = 7;
  sim::RunSpec probed = plain;
  probed.probes.push_back(obs::ProbeSpec::parse("energy@log:16"));
  probed.probes.push_back(obs::ProbeSpec::parse("counts@linear:8"));
  for (const sim::EngineKind backend :
       {sim::EngineKind::kAgentArray, sim::EngineKind::kDenseBatched}) {
    plain.backend = backend;
    probed.backend = backend;
    const auto a = sim::BatchRunner().run_one(plain);
    const auto b = sim::BatchRunner().run_one(probed);
    for (std::size_t t = 0; t < a.trials.size(); ++t) {
      EXPECT_EQ(a.trials[t].outcome.run.interactions,
                b.trials[t].outcome.run.interactions);
      EXPECT_EQ(a.trials[t].outcome.run.state_changes,
                b.trials[t].outcome.run.state_changes);
      EXPECT_EQ(a.trials[t].outcome.run.final_outputs,
                b.trials[t].outcome.run.final_outputs);
    }
  }
}

TEST(ObsIntegrationTest, AgentAndDenseEnergyDescentAgree) {
  // Shared spec seed -> identical per-trial workloads on both backends.
  // Trajectories differ, but the initial energy is determined by the
  // workload, the final energy by the Lemma 3.6 decomposition, and the
  // median descent curves must agree within a loose stochastic tolerance.
  const std::uint32_t trials = 6;
  const auto agent = sim::BatchRunner().run_one(
      energy_spec(sim::EngineKind::kAgentArray, 4, 300, trials, 21));
  const auto dense = sim::BatchRunner().run_one(
      energy_spec(sim::EngineKind::kDenseBatched, 4, 300, trials, 21));

  double x_max = 1e300;
  for (const auto* r : {&agent, &dense}) {
    double backend_max = 0.0;
    for (const auto& rec : r->trials) {
      const obs::TraceTable& trace = rec.traces.at(0);
      backend_max = std::max(backend_max, trace.at(trace.num_rows() - 1, 0));
    }
    x_max = std::min(x_max, backend_max);
  }

  obs::EnvelopeOptions options;
  options.points = 24;
  options.spacing = obs::GridSpec::Spacing::kLog;
  options.x_max = x_max;
  options.exclude_columns = {"chemical_time"};
  const auto envelope_of = [&](const sim::SpecResult& r) {
    std::vector<obs::TraceTable> traces;
    for (const auto& rec : r.trials) traces.push_back(rec.traces.at(0));
    return obs::envelope(traces, options);
  };
  const obs::TraceTable agent_env = envelope_of(agent);
  const obs::TraceTable dense_env = envelope_of(dense);

  const std::size_t col = agent_env.column_index("total_energy_p50");
  ASSERT_EQ(agent_env.num_rows(), dense_env.num_rows());
  for (std::size_t row = 0; row < agent_env.num_rows(); ++row) {
    const double a = agent_env.at(row, col);
    const double d = dense_env.at(row, col);
    const double rel = std::abs(a - d) / std::max(a, d);
    EXPECT_LT(rel, 0.4) << "row " << row << ": agent " << a << " vs dense "
                        << d;
  }

  // Endpoints are deterministic given the workload: exact equality.
  for (std::uint32_t t = 0; t < trials; ++t) {
    const obs::TraceTable& at = agent.trials[t].traces.at(0);
    const obs::TraceTable& dt = dense.trials[t].traces.at(0);
    const std::size_t e = at.column_index("total_energy");
    EXPECT_EQ(at.at(0, e), dt.at(0, e)) << "initial energy, trial " << t;
    EXPECT_EQ(at.at(at.num_rows() - 1, e), dt.at(dt.num_rows() - 1, e))
        << "final energy, trial " << t;
  }
}

TEST(ObsIntegrationTest, ChemicalTimeCadenceOnGillespie) {
  sim::RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 3;
  spec.n = 60;
  spec.trials = 3;
  spec.seed = 5;
  spec.chemical_time = true;
  spec.probes.push_back(obs::ProbeSpec::parse("counts@log:24"));
  spec.probes.push_back(obs::ProbeSpec::parse("convergence@log:24"));
  const auto result = sim::BatchRunner().run_one(spec);

  for (const auto& rec : result.trials) {
    const obs::TraceTable& trace = rec.traces.at(0);
    ASSERT_GE(trace.num_rows(), 2u);
    const std::size_t ct = trace.column_index("chemical_time");
    double prev = -1.0;
    double out_sum_first = 0.0;
    for (std::size_t c = 0; c < trace.num_columns(); ++c) {
      if (trace.columns[c].rfind("out_", 0) == 0) {
        out_sum_first += trace.at(0, c);
      }
    }
    EXPECT_EQ(out_sum_first, 60.0);  // every agent announces something
    for (std::size_t row = 0; row < trace.num_rows(); ++row) {
      EXPECT_GE(trace.at(row, ct), prev);
      prev = trace.at(row, ct);
    }
    EXPECT_GT(prev, 0.0);  // the clock actually advanced
  }
  // Envelope x axis is chemical time for chemical specs.
  ASSERT_EQ(result.trace_envelopes.size(), 2u);
  EXPECT_EQ(result.trace_envelopes[0].columns.at(0), "chemical_time");
}

TEST(ObsIntegrationTest, RecorderThroughTrialOptionsAndMonitorAdapter) {
  // Direct sim::run_trial usage: a counts probe plus a legacy monitor
  // running unchanged through MonitorProbeAdapter.
  core::CirclesProtocol protocol(3);
  analysis::Workload workload;
  workload.counts = {30, 20, 10};

  core::CirclesBraKetView view(protocol);
  core::PotentialDescentMonitor potential(view);
  obs::MonitorProbeAdapter adapter(potential);
  obs::CountsTrace counts_trace;

  obs::RecorderOptions recorder_options;
  recorder_options.interaction_horizon = 500'000'000;  // engine default
  obs::Recorder recorder(recorder_options);
  recorder.add(&adapter);
  recorder.add(&counts_trace, obs::GridSpec::parse("log:32"));

  sim::TrialOptions options;
  options.seed = 3;
  options.recorder = &recorder;
  const auto outcome = sim::run_trial(protocol, workload, options);

  EXPECT_TRUE(outcome.run.silent);
  // The wrapped monitor observed the full event stream.
  EXPECT_EQ(potential.descent_violations(), 0u);
  EXPECT_GT(potential.exchanges(), 0u);
  // The counts probe rode the same run; every row conserves the population.
  const obs::TraceTable& table = *counts_trace.table();
  ASSERT_GE(table.num_rows(), 2u);
  for (std::size_t row = 0; row < table.num_rows(); ++row) {
    double sum = 0.0;
    for (std::size_t c = 0; c < table.num_columns(); ++c) {
      if (table.columns[c].rfind("out_", 0) == 0) sum += table.at(row, c);
    }
    EXPECT_EQ(sum, 60.0) << "row " << row;
  }
}

TEST(ObsIntegrationTest, FaultBurstsKeepTraceMonotone) {
  sim::RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 3;
  spec.n = 60;
  spec.trials = 2;
  spec.seed = 9;
  spec.reboot_faults = 3;
  spec.probes.push_back(obs::ProbeSpec::parse("energy@linear:64"));
  const auto result = sim::BatchRunner().run_one(spec);
  for (const auto& rec : result.trials) {
    const obs::TraceTable& trace = rec.traces.at(0);
    ASSERT_GE(trace.num_rows(), 2u);
    double prev = -1.0;
    for (std::size_t row = 0; row < trace.num_rows(); ++row) {
      EXPECT_GT(trace.at(row, 0), prev) << "row " << row;
      prev = trace.at(row, 0);
    }
  }
}

TEST(ObsIntegrationTest, BatchRunnerBuildsEnvelopesPerProbe) {
  sim::RunSpec spec = energy_spec(sim::EngineKind::kDense, 3, 80, 4, 13);
  spec.probes.push_back(obs::ProbeSpec::parse("active@log:16"));
  sim::BatchOptions options;
  options.keep_trials = false;  // envelopes must survive trial disposal
  const auto result = sim::BatchRunner(options).run_one(spec);

  ASSERT_EQ(result.trace_envelopes.size(), 2u);
  EXPECT_TRUE(result.trials.empty());
  const obs::TraceTable& energy = result.trace_envelopes[0];
  ASSERT_GT(energy.num_rows(), 0u);
  EXPECT_EQ(energy.columns.at(0), "interactions");
  const std::size_t p50 = energy.column_index("total_energy_p50");
  // Descent: the median energy at the end is no higher than at the start.
  EXPECT_LE(energy.at(energy.num_rows() - 1, p50), energy.at(0, p50));
  // The active-pair envelope hits zero at the end: every trial silenced.
  const obs::TraceTable& active = result.trace_envelopes[1];
  EXPECT_DOUBLE_EQ(
      active.at(active.num_rows() - 1, active.column_index("active_pairs_p90")),
      0.0);
}

TEST(ObsIntegrationTest, ValidationSplitsDenseRejections) {
  sim::BatchRunner runner;
  sim::RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 3;
  spec.n = 50;
  spec.trials = 1;
  spec.backend = sim::EngineKind::kDense;

  // Probes are fine on dense backends.
  spec.probes.push_back(obs::ProbeSpec::parse("energy"));
  EXPECT_NO_THROW(runner.run_one(spec));

  // Monitor-based instrumentation names the probe alternative.
  {
    sim::RunSpec bad = spec;
    bad.circles_stats = true;
    try {
      runner.run_one(bad);
      FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("obs::Probe"), std::string::npos)
          << e.what();
    }
  }
  // Agent-addressing features get their own message.
  {
    sim::RunSpec bad = spec;
    bad.reboot_faults = 1;
    try {
      runner.run_one(bad);
      FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("individual agents"),
                std::string::npos)
          << e.what();
    }
  }
  // Chemical time is agent-engine-only.
  {
    sim::RunSpec bad = spec;
    bad.chemical_time = true;
    EXPECT_THROW(runner.run_one(bad), std::invalid_argument);
  }
  // Probe/protocol mismatches fail up front, naming the spec.
  {
    sim::RunSpec bad = spec;
    bad.protocol = "exact_majority_4state";
    bad.params.k = 2;
    bad.probes = {obs::ProbeSpec::parse("energy")};
    EXPECT_THROW(runner.run_one(bad), std::invalid_argument);
  }
}

TEST(ObsIntegrationTest, RunSpecProbeRoundTrip) {
  sim::RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 4;
  spec.n = 128;
  spec.trials = 3;
  spec.probes.push_back(obs::ProbeSpec::parse("energy@log:64"));
  spec.probes.push_back(obs::ProbeSpec::parse("counts@frac:0.1,0.5,0.9"));
  const std::string text = spec.to_string();
  EXPECT_NE(text.find("trace=energy@log:64"), std::string::npos) << text;
  const sim::RunSpec parsed = sim::RunSpec::parse(text);
  ASSERT_EQ(parsed.probes.size(), 2u);
  EXPECT_EQ(parsed.probes[0], spec.probes[0]);
  EXPECT_EQ(parsed.probes[1], spec.probes[1]);
  EXPECT_EQ(parsed.to_string(), text);
}

}  // namespace
}  // namespace circles
