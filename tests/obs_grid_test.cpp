// Decimation grids: linear/log/fraction spacing, edge cases, and the
// GridSpec / ProbeSpec string round-trips the RunSpec format relies on.
#include <gtest/gtest.h>

#include <set>

#include "obs/grid.hpp"
#include "obs/probe_spec.hpp"

namespace circles::obs {
namespace {

GridSpec linear(std::uint32_t points) {
  GridSpec spec;
  spec.spacing = GridSpec::Spacing::kLinear;
  spec.points = points;
  return spec;
}

GridSpec logspec(std::uint32_t points) {
  GridSpec spec;
  spec.spacing = GridSpec::Spacing::kLog;
  spec.points = points;
  return spec;
}

TEST(InteractionGridTest, LinearExactValues) {
  EXPECT_EQ(interaction_grid(linear(4), 100),
            (std::vector<std::uint64_t>{25, 50, 75, 100}));
}

TEST(InteractionGridTest, LinearCoversEveryStepWhenPointsExceedHorizon) {
  // n_points > steps: the grid collapses to each index exactly once.
  EXPECT_EQ(interaction_grid(linear(50), 10),
            (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
}

TEST(InteractionGridTest, LogStrictlyAscendingAndEndsAtHorizon) {
  const auto grid = interaction_grid(logspec(64), 1u << 20);
  ASSERT_FALSE(grid.empty());
  EXPECT_LE(grid.size(), 64u);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_LT(grid[i - 1], grid[i]);
  }
  EXPECT_GE(grid.front(), 1u);
  EXPECT_EQ(grid.back(), 1u << 20);
}

TEST(InteractionGridTest, LogPointsExceedHorizonNeverDuplicates) {
  const auto grid = interaction_grid(logspec(100), 10);
  const std::set<std::uint64_t> unique(grid.begin(), grid.end());
  EXPECT_EQ(unique.size(), grid.size());
  EXPECT_EQ(grid.back(), 10u);
  for (const auto v : grid) {
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 10u);
  }
}

TEST(InteractionGridTest, EdgeHorizons) {
  EXPECT_TRUE(interaction_grid(logspec(16), 0).empty());
  EXPECT_TRUE(interaction_grid(linear(16), 0).empty());
  EXPECT_EQ(interaction_grid(logspec(16), 1),
            (std::vector<std::uint64_t>{1}));
}

TEST(InteractionGridTest, FractionsScaleAndClamp) {
  GridSpec spec;
  spec.fractions = {0.1, 0.5, 0.9};
  EXPECT_EQ(interaction_grid(spec, 1000),
            (std::vector<std::uint64_t>{100, 500, 900}));
  // Fractions rounding to zero clamp up to the first interaction.
  GridSpec tiny;
  tiny.fractions = {0.001, 1.0};
  EXPECT_EQ(interaction_grid(tiny, 10), (std::vector<std::uint64_t>{1, 10}));
}

TEST(ChemicalGridTest, LinearExactValues) {
  const auto grid = chemical_grid(linear(4), 1.0);
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_DOUBLE_EQ(grid[0], 0.25);
  EXPECT_DOUBLE_EQ(grid[3], 1.0);
}

TEST(ChemicalGridTest, LogAscendingEndsAtHorizon) {
  const auto grid = chemical_grid(logspec(32), 50.0);
  ASSERT_FALSE(grid.empty());
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_LT(grid[i - 1], grid[i]);
  }
  EXPECT_GT(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 50.0);
}

TEST(ChemicalGridTest, NonPositiveHorizonEmpty) {
  EXPECT_TRUE(chemical_grid(logspec(8), 0.0).empty());
  EXPECT_TRUE(chemical_grid(linear(8), -1.0).empty());
}

TEST(EnvelopeGridTest, LinearIncludesZeroAndEndpoint) {
  EXPECT_EQ(envelope_grid(GridSpec::Spacing::kLinear, 4, 8.0),
            (std::vector<double>{0.0, 2.0, 4.0, 6.0, 8.0}));
}

TEST(EnvelopeGridTest, LogStartsAtZeroEndsAtMax) {
  const auto grid = envelope_grid(GridSpec::Spacing::kLog, 16, 1e6);
  ASSERT_GE(grid.size(), 2u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 1e6);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_LT(grid[i - 1], grid[i]);
  }
}

TEST(EnvelopeGridTest, ZeroMaxCollapses) {
  EXPECT_EQ(envelope_grid(GridSpec::Spacing::kLinear, 4, 0.0),
            (std::vector<double>{0.0}));
}

TEST(GridSpecTest, RoundTrips) {
  for (const std::string text :
       {"log:1024", "linear:256", "log:7", "frac:0.1,0.5,0.9"}) {
    EXPECT_EQ(GridSpec::parse(text).to_string(), text) << text;
  }
  // Bare spacing names pick up the default point count.
  EXPECT_EQ(GridSpec::parse("log").to_string(), "log:1024");
  EXPECT_EQ(GridSpec::parse("linear").to_string(), "linear:1024");
}

TEST(GridSpecTest, ParseRejectsMalformedInput) {
  for (const std::string text :
       {"banana", "linear:0", "frac:", "frac:2", "frac:0", "frac:-0.5",
        "log:x", "log:1,024", "linear:64abc", "frac:0.5x"}) {
    EXPECT_THROW(GridSpec::parse(text), std::invalid_argument) << text;
  }
}

TEST(GridSpecTest, FractionRoundTripIsBitExact) {
  GridSpec spec;
  spec.fractions = {1.0 / 3.0, 0.1, 1.0};
  const GridSpec parsed = GridSpec::parse(spec.to_string());
  ASSERT_EQ(parsed.fractions.size(), 3u);
  // parse() sorts ascending; every value must survive bit-for-bit.
  EXPECT_EQ(parsed.fractions[0], 0.1);
  EXPECT_EQ(parsed.fractions[1], 1.0 / 3.0);
  EXPECT_EQ(parsed.fractions[2], 1.0);
}

TEST(ProbeSpecTest, RoundTrips) {
  for (const std::string text :
       {"energy@log:1024", "counts@linear:256", "states@log:64",
        "active@frac:0.25,0.75", "convergence@log:128"}) {
    EXPECT_EQ(ProbeSpec::parse(text).to_string(), text) << text;
  }
  // Bare kinds render with the default grid.
  EXPECT_EQ(ProbeSpec::parse("energy").to_string(), "energy@log:1024");
}

TEST(ProbeSpecTest, ParseRejectsUnknownKindsAndGrids) {
  EXPECT_THROW(ProbeSpec::parse("volts"), std::invalid_argument);
  EXPECT_THROW(ProbeSpec::parse("energy@banana"), std::invalid_argument);
  EXPECT_THROW(ProbeSpec::parse(""), std::invalid_argument);
}

}  // namespace
}  // namespace circles::obs
