#include "crn/gillespie.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/workload.hpp"
#include "baselines/approx_majority_3state.hpp"
#include "core/circles_protocol.hpp"

namespace circles::crn {
namespace {

TEST(GillespieTest, ClockAdvancesMonotonically) {
  core::CirclesProtocol protocol(3);
  util::Rng rng(1);
  const analysis::Workload w = analysis::random_unique_winner(rng, 20, 3);
  const auto colors = w.agent_colors(rng);
  const GillespieResult result = run_gillespie(protocol, colors, 7);
  EXPECT_TRUE(result.run.silent);
  EXPECT_GT(result.stabilization_time, 0.0);
  EXPECT_GT(result.convergence_time, 0.0);
  EXPECT_LE(result.convergence_time, result.stabilization_time * 10 + 1e9);
  EXPECT_GT(result.parallel_time, 0.0);
}

TEST(GillespieTest, DeterministicUnderSeed) {
  core::CirclesProtocol protocol(2);
  std::vector<pp::ColorId> colors{0, 0, 0, 1, 1};
  const GillespieResult a = run_gillespie(protocol, colors, 42);
  const GillespieResult b = run_gillespie(protocol, colors, 42);
  EXPECT_EQ(a.run.interactions, b.run.interactions);
  EXPECT_DOUBLE_EQ(a.stabilization_time, b.stabilization_time);
}

TEST(GillespieTest, JumpChainMatchesDiscreteEngineOutcome) {
  // The embedded discrete chain is the uniform scheduler, so the final
  // answer must be the plurality winner, like any uniform run.
  core::CirclesProtocol protocol(4);
  util::Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const analysis::Workload w = analysis::random_unique_winner(rng, 16, 4);
    const auto colors = w.agent_colors(rng);
    const GillespieResult result = run_gillespie(protocol, colors, rng());
    EXPECT_TRUE(result.run.silent);
    EXPECT_TRUE(result.run.consensus_on(*w.winner())) << w.to_string();
  }
}

TEST(GillespieTest, ParallelTimeTracksChemicalTime) {
  // Chemical time to a fixed number of interactions concentrates around
  // interactions / (n-1); parallel time uses interactions / n. The two
  // clocks must agree within a modest factor for large-ish runs.
  core::CirclesProtocol protocol(6);
  util::Rng rng(9);
  const analysis::Workload w = analysis::random_unique_winner(rng, 100, 6);
  const auto colors = w.agent_colors(rng);
  const GillespieResult result = run_gillespie(protocol, colors, rng());
  ASSERT_TRUE(result.run.silent);
  const double chem = result.stabilization_time;
  const double para =
      static_cast<double>(result.run.last_change_step + 1) / 100.0;
  EXPECT_GT(chem, 0.2 * para);
  EXPECT_LT(chem, 5.0 * para);
}

TEST(ReactionEnumerationTest, ApproxMajorityHasTheTextbookNetwork) {
  baselines::ApproxMajority3State protocol;
  const auto rxns = reactions(protocol);
  // X+Y -> X+B, Y+X -> Y+B, X+B -> X+X, B+X -> X+X, Y+B -> Y+Y, B+Y -> Y+Y.
  EXPECT_EQ(rxns.size(), 6u);
  std::vector<std::string> rendered;
  for (const auto& r : rxns) rendered.push_back(r.to_string(protocol));
  EXPECT_NE(std::find(rendered.begin(), rendered.end(), "X + Y -> X + B"),
            rendered.end());
  EXPECT_NE(std::find(rendered.begin(), rendered.end(), "X + B -> X + X"),
            rendered.end());
  EXPECT_NE(std::find(rendered.begin(), rendered.end(), "B + Y -> Y + Y"),
            rendered.end());
}

TEST(ReactionEnumerationTest, InputRestrictionShrinksTheNetwork) {
  core::CirclesProtocol protocol(4);
  // Only colors 0 and 1 in play: the closure cannot mention color 2/3 kets.
  const std::vector<pp::ColorId> inputs{0, 1};
  const auto restricted = reactions(protocol, inputs);
  const auto full = reactions(protocol);
  EXPECT_LT(restricted.size(), full.size());
  for (const auto& r : restricted) {
    for (const pp::StateId s : {r.in_a, r.in_b, r.out_a, r.out_b}) {
      const auto f = protocol.decode(s);
      EXPECT_LT(f.braket.bra, 2u);
      EXPECT_LT(f.braket.ket, 2u);
    }
  }
}

TEST(ReactionEnumerationTest, NullTransitionsExcluded) {
  core::CirclesProtocol protocol(2);
  for (const auto& r : reactions(protocol)) {
    EXPECT_FALSE(r.in_a == r.out_a && r.in_b == r.out_b);
  }
}

TEST(ExponentialClockMonitorTest, MeanInterArrivalMatchesRate) {
  // n agents => rate n-1; over many interactions the empirical mean
  // inter-collision time approaches 1/(n-1).
  core::CirclesProtocol protocol(2);
  const std::uint32_t n = 11;  // rate 10
  std::vector<pp::ColorId> colors(n, 0);
  colors[0] = 1;  // some activity, though the clock ticks on null steps too
  util::Rng rng(3);
  pp::Population population(protocol, colors);
  auto scheduler =
      pp::make_scheduler(pp::SchedulerKind::kUniformRandom, n, rng());
  ExponentialClockMonitor clock(rng());
  pp::Monitor* monitors[] = {&clock};
  pp::EngineOptions options;
  options.max_interactions = 20000;
  options.stop_when_silent = false;
  pp::Engine engine(options);
  engine.run(protocol, population, *scheduler,
             std::span<pp::Monitor* const>(monitors, 1));
  const double mean_gap = clock.now() / 20000.0;
  EXPECT_NEAR(mean_gap, 1.0 / 10.0, 0.01);
}

}  // namespace
}  // namespace circles::crn
