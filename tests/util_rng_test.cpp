#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace circles::util {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, GoldenSequenceIsStable) {
  // Pins the generator output so refactors cannot silently change every
  // experiment's workloads.
  Rng rng(123456789);
  const std::uint64_t first = rng();
  const std::uint64_t second = rng();
  Rng replay(123456789);
  EXPECT_EQ(replay(), first);
  EXPECT_EQ(replay(), second);
  EXPECT_NE(first, second);
}

TEST(RngTest, UniformBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform_below(bound), bound);
    }
  }
}

TEST(RngTest, UniformBelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(RngTest, UniformBelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  std::array<int, kBuckets> histogram{};
  for (int i = 0; i < kSamples; ++i) {
    histogram[rng.uniform_below(kBuckets)] += 1;
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (const int count : histogram) {
    EXPECT_NEAR(count, expected, expected * 0.1);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngTest, DistinctPairAlwaysDistinctAndInRange) {
  Rng rng(17);
  for (std::uint64_t n : {2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 500; ++i) {
      const auto [a, b] = rng.distinct_pair(n);
      EXPECT_NE(a, b);
      EXPECT_LT(a, n);
      EXPECT_LT(b, n);
    }
  }
}

TEST(RngTest, DistinctPairCoversAllOrderedPairs) {
  Rng rng(19);
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  for (int i = 0; i < 5000; ++i) {
    seen.insert(rng.distinct_pair(4));
  }
  EXPECT_EQ(seen.size(), 12u);  // 4*3 ordered pairs
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(std::span<int>(shuffled));
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
  EXPECT_NE(v, shuffled);  // astronomically unlikely to be identity
}

TEST(RngTest, ShuffleHandlesTinyInputs) {
  Rng rng(29);
  std::vector<int> empty;
  rng.shuffle(std::span<int>(empty));
  std::vector<int> one{7};
  rng.shuffle(std::span<int>(one));
  EXPECT_EQ(one[0], 7);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(SampleDiscreteTest, RespectsWeights) {
  Rng rng(37);
  const std::vector<double> weights{0.0, 1.0, 3.0};
  std::array<int, 3> histogram{};
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) {
    histogram[sample_discrete(rng, weights)] += 1;
  }
  EXPECT_EQ(histogram[0], 0);
  EXPECT_NEAR(histogram[1], kSamples * 0.25, kSamples * 0.02);
  EXPECT_NEAR(histogram[2], kSamples * 0.75, kSamples * 0.02);
}

TEST(SampleDiscreteTest, SingleBucket) {
  Rng rng(41);
  const std::vector<double> weights{2.5};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sample_discrete(rng, weights), 0u);
}

TEST(ZipfWeightsTest, NormalizedAndDecreasing) {
  const auto w = zipf_weights(6, 1.2);
  ASSERT_EQ(w.size(), 6u);
  double total = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    total += w[i];
    if (i > 0) {
      EXPECT_LT(w[i], w[i - 1]);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfWeightsTest, ExponentZeroIsUniform) {
  const auto w = zipf_weights(4, 0.0);
  for (const double x : w) EXPECT_NEAR(x, 0.25, 1e-12);
}

TEST(RngForkTest, DeterministicAndOrderIndependent) {
  // fork(i) is a pure function of (parent state, i): calling it repeatedly,
  // or interleaved with other forks in any order, yields the same child
  // stream — the property the dense urn engine relies on to make per-block
  // epoch draws independent of block iteration order.
  Rng parent(123);
  parent();  // advance off the seed state
  std::vector<std::vector<std::uint64_t>> first;
  for (std::uint64_t i = 0; i < 5; ++i) {
    Rng child = parent.fork(i);
    first.push_back({child(), child(), child()});
  }
  // Re-fork in reverse order; streams must not change.
  for (std::uint64_t i = 5; i-- > 0;) {
    Rng child = parent.fork(i);
    EXPECT_EQ(child(), first[i][0]) << "fork " << i;
    EXPECT_EQ(child(), first[i][1]) << "fork " << i;
    EXPECT_EQ(child(), first[i][2]) << "fork " << i;
  }
}

TEST(RngForkTest, DoesNotAdvanceParent) {
  Rng a(7), b(7);
  (void)a.fork(0);
  (void)a.fork(99);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(RngForkTest, DistinctIndicesAndStatesGiveDistinctStreams) {
  Rng parent(2024);
  Rng c0 = parent.fork(0);
  Rng c1 = parent.fork(1);
  EXPECT_NE(c0(), c1());
  // Advancing the parent moves every fork index to a fresh stream.
  Rng before = parent.fork(3);
  parent();
  Rng after = parent.fork(3);
  EXPECT_NE(before(), after());
}

TEST(RngForkTest, ChildStreamsLookUniform) {
  // Cheap sanity: means of child uniform01 streams concentrate around 1/2.
  Rng parent(9);
  for (std::uint64_t i = 0; i < 8; ++i) {
    Rng child = parent.fork(i);
    double sum = 0;
    const int kDraws = 4000;
    for (int d = 0; d < kDraws; ++d) sum += child.uniform01();
    EXPECT_NEAR(sum / kDraws, 0.5, 0.03) << "fork " << i;
  }
}

TEST(SplitMix64Test, KnownValuesAdvanceState) {
  std::uint64_t state = 0;
  const std::uint64_t a = splitmix64(state);
  const std::uint64_t b = splitmix64(state);
  EXPECT_NE(a, b);
  EXPECT_EQ(state, 2 * 0x9e3779b97f4a7c15ULL);
}

}  // namespace
}  // namespace circles::util
