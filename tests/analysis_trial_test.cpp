#include "analysis/trial.hpp"

#include <gtest/gtest.h>

#include "baselines/exact_majority_4state.hpp"
#include "core/circles_protocol.hpp"

namespace circles::analysis {
namespace {

TEST(RunTrialTest, GradesCorrectRun) {
  core::CirclesProtocol protocol(3);
  Workload w;
  w.counts = {4, 2, 1};
  TrialOptions options;
  options.seed = 11;
  const TrialOutcome outcome = run_trial(protocol, w, options);
  EXPECT_TRUE(outcome.run.silent);
  EXPECT_TRUE(outcome.correct);
  EXPECT_EQ(outcome.expected_winner, pp::ColorId{0});
  EXPECT_EQ(outcome.consensus, std::optional<pp::OutputSymbol>(0));
}

TEST(RunTrialTest, ExpectedSymbolOverride) {
  core::CirclesProtocol protocol(2);
  Workload w;
  w.counts = {3, 1};
  TrialOptions options;
  options.seed = 2;
  // Grade against the wrong symbol: the run is fine but "incorrect".
  const TrialOutcome outcome = run_trial(protocol, w, options, {}, 1u);
  EXPECT_TRUE(outcome.run.silent);
  EXPECT_FALSE(outcome.correct);
  EXPECT_EQ(outcome.consensus, std::optional<pp::OutputSymbol>(0));
}

TEST(RunTrialTest, DeterministicUnderSeed) {
  core::CirclesProtocol protocol(4);
  Workload w;
  w.counts = {4, 3, 2, 1};
  TrialOptions options;
  options.seed = 33;
  const TrialOutcome a = run_trial(protocol, w, options);
  const TrialOutcome b = run_trial(protocol, w, options);
  EXPECT_EQ(a.run.interactions, b.run.interactions);
  EXPECT_EQ(a.run.state_changes, b.run.state_changes);
}

TEST(RunTrialTest, SchedulerSelectionApplies) {
  core::CirclesProtocol protocol(2);
  Workload w;
  w.counts = {5, 3};
  TrialOptions options;
  options.scheduler = pp::SchedulerKind::kRoundRobin;
  options.seed = 4;
  const TrialOutcome outcome = run_trial(protocol, w, options);
  EXPECT_TRUE(outcome.correct);
}

TEST(RunCirclesTrialTest, PopulatesInstrumentation) {
  core::CirclesProtocol protocol(4);
  Workload w;
  w.counts = {4, 3, 2, 1};
  TrialOptions options;
  options.seed = 5;
  const CirclesTrialOutcome outcome = run_circles_trial(protocol, w, options);
  EXPECT_TRUE(outcome.trial.correct);
  EXPECT_GT(outcome.ket_exchanges, 0u);
  EXPECT_EQ(outcome.braket_invariant_violations, 0u);
  EXPECT_EQ(outcome.potential_descent_violations, 0u);
  EXPECT_TRUE(outcome.decomposition_matches);
}

TEST(RunCirclesTrialTest, ExchangeCountBoundedByStateChanges) {
  core::CirclesProtocol protocol(3);
  Workload w;
  w.counts = {5, 4, 3};
  TrialOptions options;
  options.seed = 6;
  const CirclesTrialOutcome outcome = run_circles_trial(protocol, w, options);
  EXPECT_LE(outcome.ket_exchanges, outcome.trial.run.state_changes);
}

TEST(RunTrialTest, WorksWithBaselineProtocols) {
  baselines::ExactMajority4State protocol;
  Workload w;
  w.counts = {6, 3};
  TrialOptions options;
  options.seed = 7;
  const TrialOutcome outcome = run_trial(protocol, w, options);
  EXPECT_TRUE(outcome.correct);
}

TEST(RunTrialDeathTest, WorkloadProtocolColorMismatch) {
  core::CirclesProtocol protocol(3);
  Workload w;
  w.counts = {1, 1};  // k = 2 workload against k = 3 protocol
  TrialOptions options;
  EXPECT_DEATH(run_trial(protocol, w, options), "does not match");
}

}  // namespace
}  // namespace circles::analysis
