#include "pp/scheduler.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "core/circles_protocol.hpp"
#include "pp/schedulers/adversarial_delay.hpp"
#include "pp/schedulers/clustered.hpp"
#include "pp/schedulers/round_robin.hpp"
#include "pp/schedulers/shuffled_sweep.hpp"
#include "pp/schedulers/uniform_random.hpp"

namespace circles::pp {
namespace {

Population make_population(std::uint32_t n) {
  std::vector<StateId> states(n, 0);
  return Population(1, states);
}

using PairSet = std::set<std::pair<AgentId, AgentId>>;

PairSet collect_pairs(Scheduler& scheduler, const Population& pop,
                      std::uint64_t steps) {
  PairSet seen;
  for (std::uint64_t i = 0; i < steps; ++i) {
    const AgentPair p = scheduler.next(pop);
    EXPECT_NE(p.initiator, p.responder);
    EXPECT_LT(p.initiator, pop.size());
    EXPECT_LT(p.responder, pop.size());
    seen.insert({p.initiator, p.responder});
  }
  return seen;
}

TEST(RoundRobinSchedulerTest, CoversEveryOrderedPairExactlyOncePerPeriod) {
  const std::uint32_t n = 7;
  auto pop = make_population(n);
  RoundRobinScheduler sched(n);
  ASSERT_EQ(sched.fairness_period(), n * (n - 1));
  std::map<std::pair<AgentId, AgentId>, int> hits;
  for (std::uint64_t i = 0; i < sched.fairness_period(); ++i) {
    const AgentPair p = sched.next(pop);
    hits[{p.initiator, p.responder}] += 1;
  }
  EXPECT_EQ(hits.size(), n * (n - 1));
  for (const auto& [pair, count] : hits) {
    EXPECT_EQ(count, 1) << pair.first << "," << pair.second;
  }
}

TEST(RoundRobinSchedulerTest, PeriodRepeatsIdentically) {
  const std::uint32_t n = 4;
  auto pop = make_population(n);
  RoundRobinScheduler sched(n);
  std::vector<AgentPair> first, second;
  for (std::uint64_t i = 0; i < sched.fairness_period(); ++i) {
    first.push_back(sched.next(pop));
  }
  for (std::uint64_t i = 0; i < sched.fairness_period(); ++i) {
    second.push_back(sched.next(pop));
  }
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].initiator, second[i].initiator);
    EXPECT_EQ(first[i].responder, second[i].responder);
  }
}

TEST(ShuffledSweepSchedulerTest, EachSweepIsAPermutationOfAllPairs) {
  const std::uint32_t n = 6;
  const std::uint64_t pairs = n * (n - 1);
  auto pop = make_population(n);
  ShuffledSweepScheduler sched(n, 42);
  // The declared fairness window must cover a full sweep from any offset.
  ASSERT_EQ(sched.fairness_period(), 2 * pairs - 1);
  for (int sweep = 0; sweep < 3; ++sweep) {
    const PairSet seen = collect_pairs(sched, pop, pairs);
    EXPECT_EQ(seen.size(), pairs) << "sweep " << sweep;
  }
}

TEST(ShuffledSweepSchedulerTest, AnyFairnessWindowCoversAllPairs) {
  // Regression: a window straddling two sweeps is only guaranteed to cover
  // every ordered pair if it is fairness_period() long.
  const std::uint32_t n = 5;
  const std::uint64_t pairs = n * (n - 1);
  auto pop = make_population(n);
  ShuffledSweepScheduler sched(n, 9);
  std::vector<std::pair<AgentId, AgentId>> stream;
  for (std::uint64_t i = 0; i < 6 * pairs; ++i) {
    const auto p = sched.next(pop);
    stream.push_back({p.initiator, p.responder});
  }
  for (std::uint64_t start = 0; start + sched.fairness_period() <= stream.size();
       start += 7) {
    PairSet window(stream.begin() + start,
                   stream.begin() + start + sched.fairness_period());
    EXPECT_EQ(window.size(), pairs) << "window at " << start;
  }
}

TEST(ShuffledSweepSchedulerTest, OrderDiffersBetweenSweeps) {
  const std::uint32_t n = 8;
  auto pop = make_population(n);
  ShuffledSweepScheduler sched(n, 7);
  std::vector<std::pair<AgentId, AgentId>> first, second;
  for (std::uint64_t i = 0; i < sched.fairness_period(); ++i) {
    const auto p = sched.next(pop);
    first.push_back({p.initiator, p.responder});
  }
  for (std::uint64_t i = 0; i < sched.fairness_period(); ++i) {
    const auto p = sched.next(pop);
    second.push_back({p.initiator, p.responder});
  }
  EXPECT_NE(first, second);
}

TEST(UniformRandomSchedulerTest, ProducesValidPairsAndCoversAll) {
  const std::uint32_t n = 5;
  auto pop = make_population(n);
  UniformRandomScheduler sched(n, 99);
  const PairSet seen = collect_pairs(sched, pop, 2000);
  EXPECT_EQ(seen.size(), n * (n - 1));
}

TEST(UniformRandomSchedulerTest, DeterministicUnderSeed) {
  const std::uint32_t n = 5;
  auto pop = make_population(n);
  UniformRandomScheduler a(n, 3);
  UniformRandomScheduler b(n, 3);
  for (int i = 0; i < 100; ++i) {
    const AgentPair pa = a.next(pop);
    const AgentPair pb = b.next(pop);
    EXPECT_EQ(pa.initiator, pb.initiator);
    EXPECT_EQ(pa.responder, pb.responder);
  }
}

TEST(ClusteredSchedulerTest, MostlyIntraClusterPairs) {
  const std::uint32_t n = 20;
  auto pop = make_population(n);
  ClusteredScheduler sched(n, 5, 0.05);
  int cross = 0;
  const int kSteps = 20000;
  for (int i = 0; i < kSteps; ++i) {
    const AgentPair p = sched.next(pop);
    ASSERT_NE(p.initiator, p.responder);
    const bool a_left = p.initiator < n / 2;
    const bool b_left = p.responder < n / 2;
    if (a_left != b_left) ++cross;
  }
  EXPECT_NEAR(static_cast<double>(cross) / kSteps, 0.05, 0.01);
}

TEST(ClusteredSchedulerTest, EventuallyCoversCrossPairs) {
  const std::uint32_t n = 6;
  auto pop = make_population(n);
  ClusteredScheduler sched(n, 11, 0.2);
  const PairSet seen = collect_pairs(sched, pop, 30000);
  EXPECT_EQ(seen.size(), n * (n - 1));
}

TEST(ClusteredSchedulerTest, GeneralizedSizesConfineAgentsToTheirClusters) {
  // Three clusters of explicit sizes: intra pairs stay inside one id range,
  // cross pairs straddle two, and every block's empirical frequency matches
  // the declared rate matrix (the exact-lumping contract).
  const std::vector<std::uint64_t> sizes{10, 6, 4};
  const std::uint32_t n = 20;
  auto pop = make_population(n);
  ClusteredScheduler sched(
      n, 3, ClusteredOptions{.sizes = sizes, .bridge_probability = 0.12});
  const auto lumping = sched.lumping();
  ASSERT_TRUE(lumping.has_value());
  ASSERT_EQ(lumping->sizes, sizes);
  ASSERT_EQ(lumping->rates.size(), 9u);

  const auto cluster_of = [&](AgentId a) {
    std::size_t u = 0;
    std::uint64_t offset = 0;
    while (a >= offset + sizes[u]) offset += sizes[u++];
    return u;
  };
  std::vector<std::uint64_t> block_hits(9, 0);
  const int kSteps = 60000;
  for (int i = 0; i < kSteps; ++i) {
    const AgentPair p = sched.next(pop);
    ASSERT_NE(p.initiator, p.responder);
    ASSERT_LT(p.initiator, n);
    ASSERT_LT(p.responder, n);
    block_hits[cluster_of(p.initiator) * 3 + cluster_of(p.responder)] += 1;
  }
  for (std::size_t b = 0; b < 9; ++b) {
    EXPECT_NEAR(static_cast<double>(block_hits[b]) / kSteps,
                lumping->rates[b], 0.01)
        << "block " << b;
  }
}

TEST(ClusteredSchedulerTest, DefaultRateMatrixSplitsBridgeEvenly) {
  const auto lumping = clustered_lumping(
      30, ClusteredOptions{.num_clusters = 3, .bridge_probability = 0.06});
  ASSERT_EQ(lumping.sizes, (std::vector<std::uint64_t>{10, 10, 10}));
  double total = 0.0;
  for (std::size_t u = 0; u < 3; ++u) {
    for (std::size_t v = 0; v < 3; ++v) {
      const double r = lumping.rates[u * 3 + v];
      EXPECT_NEAR(r, u == v ? (1.0 - 0.06) / 3 : 0.06 / 6, 1e-12);
      total += r;
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  // The remainder of an uneven split lands on the trailing clusters,
  // matching the historical n/2 | n - n/2 dumbbell.
  const auto uneven =
      ClusteredOptions{.num_clusters = 3}.resolve_sizes(11);
  EXPECT_EQ(uneven, (std::vector<std::uint64_t>{3, 4, 4}));
  EXPECT_EQ(ClusteredOptions{}.resolve_sizes(9),
            (std::vector<std::uint64_t>{4, 5}));
}

TEST(ClusteredSchedulerTest, LumpingMatchesLegacyTwoHalvesContract) {
  // The two-argument constructor keeps the historical dumbbell: equal
  // halves, cluster choice 1/2 each, bridge mass split over orientations.
  ClusteredScheduler sched(21, 5, 0.04);
  const auto lumping = sched.lumping();
  ASSERT_TRUE(lumping.has_value());
  EXPECT_EQ(lumping->sizes, (std::vector<std::uint64_t>{10, 11}));
  EXPECT_NEAR(lumping->rate(0, 0), 0.48, 1e-12);
  EXPECT_NEAR(lumping->rate(1, 1), 0.48, 1e-12);
  EXPECT_NEAR(lumping->rate(0, 1), 0.02, 1e-12);
  EXPECT_NEAR(lumping->rate(1, 0), 0.02, 1e-12);
}

TEST(ClusteredSchedulerTest, GeneralizedCoversAllPairsEventually) {
  const std::uint32_t n = 8;
  auto pop = make_population(n);
  ClusteredScheduler sched(
      n, 17,
      ClusteredOptions{.sizes = {3, 3, 2}, .bridge_probability = 0.3});
  const PairSet seen = collect_pairs(sched, pop, 60000);
  EXPECT_EQ(seen.size(), n * (n - 1));
}

TEST(ClusteredSchedulerTest, RejectsInvalidShapes) {
  // Sizes must sum to n.
  EXPECT_THROW(ClusteredScheduler(
                   10, 1, ClusteredOptions{.sizes = {4, 4}}),
               std::invalid_argument);
  // Intra mass on a single-agent cluster is unschedulable.
  EXPECT_THROW(ClusteredScheduler(
                   3, 1, ClusteredOptions{.sizes = {2, 1}}),
               std::invalid_argument);
  // Bridge probability out of range.
  EXPECT_THROW(ClusteredScheduler(
                   8, 1, ClusteredOptions{.bridge_probability = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(ClusteredScheduler(
                   8, 1, ClusteredOptions{.bridge_probability = 1.5}),
               std::invalid_argument);
}

TEST(SchedulerLumpingTest, OnlyExchangeableKindsLump) {
  core::CirclesProtocol protocol(2);
  const std::uint32_t n = 8;
  for (const SchedulerKind kind : kAllSchedulerKinds) {
    auto sched = make_scheduler(kind, n, 5, &protocol);
    const auto lumping = sched->lumping();
    const bool expect_lumpable = kind == SchedulerKind::kUniformRandom ||
                                 kind == SchedulerKind::kClustered;
    EXPECT_EQ(lumping.has_value(), expect_lumpable) << to_string(kind);
    if (lumping.has_value()) {
      lumping->validate();
      EXPECT_EQ(lumping->n(), n);
    }
  }
  // The uniform scheduler's lumping is the trivial single urn.
  const auto uniform =
      make_scheduler(SchedulerKind::kUniformRandom, n, 5)->lumping();
  ASSERT_TRUE(uniform.has_value());
  EXPECT_EQ(uniform->sizes, (std::vector<std::uint64_t>{n}));
  EXPECT_EQ(uniform->rates, (std::vector<double>{1.0}));
}

TEST(AdversarialDelaySchedulerTest, IsWeaklyFairViaForcedSweeps) {
  // Even while null pairs exist, the round-robin subsequence must cover all
  // ordered pairs within the declared fairness period.
  core::CirclesProtocol protocol(2);
  const std::uint32_t n = 5;
  std::vector<StateId> states(n, protocol.input(0));  // all same: all null
  Population pop(protocol.num_states(), states);
  AdversarialDelayScheduler sched(n, protocol, /*fairness_stride=*/4);
  const PairSet seen = collect_pairs(sched, pop, sched.fairness_period());
  EXPECT_EQ(seen.size(), n * (n - 1));
}

TEST(AdversarialDelaySchedulerTest, PrefersNullInteractions) {
  core::CirclesProtocol protocol(2);
  // Two ⟨0|0⟩ and two ⟨1|1⟩ agents: (⟨0|0⟩,⟨0|0⟩) is null, the cross pair
  // exchanges. The adversary should schedule same-color pairs on non-forced
  // steps.
  std::vector<StateId> states{protocol.input(0), protocol.input(0),
                              protocol.input(1), protocol.input(1)};
  Population pop(protocol.num_states(), states);
  AdversarialDelayScheduler sched(4, protocol, /*fairness_stride=*/8);
  int null_steps = 0;
  int total = 0;
  for (int i = 0; i < 64; ++i) {
    const AgentPair p = sched.next(pop);
    const StateId si = pop.state(p.initiator);
    const StateId sr = pop.state(p.responder);
    const Transition tr = protocol.transition(si, sr);
    if (tr.initiator == si && tr.responder == sr) ++null_steps;
    ++total;
    // Do not apply transitions: the adversary sees a static population.
  }
  // At stride 8, at least 7 of 8 steps should be null picks.
  EXPECT_GE(null_steps * 8, total * 6);
}

TEST(SchedulerFactoryTest, BuildsEveryKindAndRoundTripsNames) {
  core::CirclesProtocol protocol(2);
  for (const SchedulerKind kind : kAllSchedulerKinds) {
    auto sched = make_scheduler(kind, 8, 5, &protocol);
    ASSERT_NE(sched, nullptr);
    EXPECT_EQ(scheduler_kind_from_string(to_string(kind)), kind);
    EXPECT_EQ(sched->name(), to_string(kind));
  }
  EXPECT_THROW(scheduler_kind_from_string("bogus"), std::invalid_argument);
}

TEST(SchedulerFactoryDeathTest, AdversarialRequiresProtocol) {
  EXPECT_DEATH(make_scheduler(SchedulerKind::kAdversarialDelay, 8, 5, nullptr),
               "protocol");
}

}  // namespace
}  // namespace circles::pp
