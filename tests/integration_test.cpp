// Cross-module integration: different protocols must agree with each other
// and with the analytic predictions on the same workloads.
#include <gtest/gtest.h>

#include "analysis/trial.hpp"
#include "analysis/workload.hpp"
#include "baselines/exact_majority_4state.hpp"
#include "baselines/pairwise_plurality.hpp"
#include "baselines/state_complexity.hpp"
#include "core/circles_protocol.hpp"
#include "core/greedy_sets.hpp"
#include "extensions/tie_aware_pairwise.hpp"
#include "extensions/tie_report.hpp"

namespace circles {
namespace {

using analysis::TrialOptions;
using analysis::Workload;

TEST(IntegrationTest, CirclesAndPairwiseAgreeOnWinner) {
  util::Rng rng(101);
  for (int trial = 0; trial < 10; ++trial) {
    const std::uint32_t k = 2 + static_cast<std::uint32_t>(rng.uniform_below(3));
    const Workload w = analysis::random_unique_winner(rng, 18, k);
    core::CirclesProtocol circles(k);
    baselines::PairwisePlurality pairwise(k);
    TrialOptions options;
    options.seed = rng();
    const auto a = analysis::run_trial(circles, w, options);
    const auto b = analysis::run_trial(pairwise, w, options);
    ASSERT_TRUE(a.correct) << w.to_string();
    ASSERT_TRUE(b.correct) << w.to_string();
    EXPECT_EQ(a.consensus, b.consensus);
  }
}

TEST(IntegrationTest, CirclesMatchesFourStateMajorityAtKTwo) {
  util::Rng rng(202);
  for (std::uint64_t n = 3; n <= 20; n += 3) {
    const Workload w = analysis::random_unique_winner(rng, n, 2);
    core::CirclesProtocol circles(2);
    baselines::ExactMajority4State majority;
    TrialOptions options;
    options.seed = rng();
    const auto a = analysis::run_trial(circles, w, options);
    const auto b = analysis::run_trial(majority, w, options);
    EXPECT_TRUE(a.correct && b.correct) << w.to_string();
    EXPECT_EQ(a.consensus, b.consensus);
  }
}

TEST(IntegrationTest, TieReportAgreesWithCirclesOnNonTies) {
  util::Rng rng(303);
  for (int trial = 0; trial < 10; ++trial) {
    const std::uint32_t k = 2 + static_cast<std::uint32_t>(rng.uniform_below(4));
    const Workload w = analysis::random_unique_winner(rng, 15, k);
    core::CirclesProtocol circles(k);
    ext::TieReportProtocol tie_report(k);
    TrialOptions options;
    options.seed = rng();
    const auto a = analysis::run_trial(circles, w, options);
    const auto b = analysis::run_trial(tie_report, w, options);
    EXPECT_TRUE(a.correct) << w.to_string();
    EXPECT_TRUE(b.correct) << w.to_string();
    EXPECT_EQ(a.consensus, b.consensus);
  }
}

TEST(IntegrationTest, TieReportAgreesWithTieAwarePairwiseOnTies) {
  util::Rng rng(404);
  for (int trial = 0; trial < 6; ++trial) {
    const Workload w = analysis::exact_tie(rng, 12, 4, 2);
    ext::TieReportProtocol retractor(4);
    ext::TieAwarePairwise pairwise(4, ext::TieSemantics::kReport);
    TrialOptions options;
    options.seed = rng();
    const auto a = analysis::run_trial(retractor, w, options, {},
                                       retractor.tie_symbol());
    const auto b = analysis::run_trial(pairwise, w, options, {},
                                       pairwise.tie_symbol());
    EXPECT_TRUE(a.correct) << w.to_string();
    EXPECT_TRUE(b.correct) << w.to_string();
  }
}

TEST(IntegrationTest, StableExchangeTotalsAreSeedIndependentInShape) {
  // Theorem 3.4 bounds exchanges; Lemma 3.6 fixes the final configuration.
  // Different seeds may take different exchange counts, but the final
  // bra-ket multiset (and hence correctness) is schedule-independent.
  core::CirclesProtocol protocol(5);
  Workload w;
  w.counts = {6, 5, 4, 3, 2};
  std::optional<pp::OutputSymbol> consensus;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    TrialOptions options;
    options.seed = seed;
    const auto outcome = analysis::run_circles_trial(protocol, w, options);
    EXPECT_TRUE(outcome.decomposition_matches);
    if (consensus.has_value()) {
      EXPECT_EQ(outcome.trial.consensus, consensus);
    }
    consensus = outcome.trial.consensus;
  }
}

TEST(IntegrationTest, StateComplexityTableMatchesLiveProtocols) {
  for (std::uint32_t k = 2; k <= 5; ++k) {
    const auto rows = baselines::state_complexity_table(k);
    for (const auto& row : rows) {
      if (row.protocol == "circles") {
        EXPECT_EQ(row.states, core::CirclesProtocol(k).num_states());
      } else if (row.protocol == "tie_report") {
        EXPECT_EQ(row.states, ext::TieReportProtocol(k).num_states());
      } else if (row.protocol == "pairwise_plurality") {
        EXPECT_EQ(row.states, baselines::PairwisePlurality(k).num_states());
      } else if (row.protocol == "tie_aware_pairwise" && k <= 5) {
        EXPECT_EQ(row.states,
                  ext::TieAwarePairwise(k, ext::TieSemantics::kReport)
                      .num_states());
      }
    }
  }
}

TEST(IntegrationTest, PredictedDiagonalsShowUpInFinalPopulation) {
  // Margin m ⇒ exactly m diagonal agents survive, all of the winner color.
  util::Rng rng(505);
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint32_t k = 3 + static_cast<std::uint32_t>(rng.uniform_below(3));
    const Workload w = analysis::random_unique_winner(rng, 20, k);
    core::CirclesProtocol protocol(k);
    util::Rng trial_rng(rng());
    const auto colors = w.agent_colors(trial_rng);
    pp::Population population(protocol, colors);
    auto scheduler = pp::make_scheduler(
        pp::SchedulerKind::kUniformRandom,
        static_cast<std::uint32_t>(colors.size()), trial_rng(), &protocol);
    pp::Engine engine;
    const auto result = engine.run(protocol, population, *scheduler);
    ASSERT_TRUE(result.silent);
    std::uint64_t diagonals = 0;
    for (const pp::StateId s : population.present_states()) {
      const auto f = protocol.decode(s);
      if (f.braket.diagonal()) {
        diagonals += population.count(s);
        EXPECT_EQ(f.braket.bra, *w.winner());
      }
    }
    EXPECT_EQ(diagonals, core::predicted_diagonal_count(w.counts))
        << w.to_string();
  }
}

}  // namespace
}  // namespace circles
