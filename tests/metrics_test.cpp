// Telemetry layer: registry semantics, null-safe disabled path, manifest
// provenance, file sinks, and — the load-bearing contract — bitwise
// identical simulation results with metrics on vs off on every backend.
#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "metrics/manifest.hpp"
#include "sim/sim.hpp"

namespace circles {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- registry primitives ---------------------------------------------------

TEST(MetricsTest, CounterAccumulates) {
  metrics::MetricsRegistry registry;
  metrics::Counter& c = registry.counter("engine.runs");
  EXPECT_EQ(c.value(), 0u);
  c.add(1);
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsTest, HandlesAreStableAndShared) {
  metrics::MetricsRegistry registry;
  metrics::Counter& a = registry.counter("x");
  // Registering more names must not invalidate earlier handles.
  for (int i = 0; i < 100; ++i) {
    registry.counter("name" + std::to_string(i));
  }
  metrics::Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(1);
  EXPECT_EQ(b.value(), 1u);
}

TEST(MetricsTest, GaugeHoldsLastValue) {
  metrics::MetricsRegistry registry;
  metrics::Gauge& g = registry.gauge("batch.threads");
  g.set(4.0);
  g.set(8.0);
  EXPECT_DOUBLE_EQ(g.value(), 8.0);
}

TEST(MetricsTest, TimerAccumulatesAndCounts) {
  metrics::MetricsRegistry registry;
  metrics::Timer& t = registry.timer("batch.trial");
  t.record_ms(1.5);
  t.record_ms(2.5);
  EXPECT_EQ(t.count(), 2u);
  EXPECT_NEAR(t.total_ms(), 4.0, 1e-9);
}

TEST(MetricsTest, ScopedTimerRecordsElapsed) {
  metrics::MetricsRegistry registry;
  metrics::Timer& t = registry.timer("span");
  {
    metrics::ScopedTimer span(&t);
  }
  EXPECT_EQ(t.count(), 1u);
  EXPECT_GE(t.total_ms(), 0.0);
}

TEST(MetricsTest, NullHandlesAreNoOps) {
  // The disabled path everywhere in the engines: null registry, null
  // handles. None of these may crash or allocate a registry.
  EXPECT_EQ(metrics::counter(nullptr, "engine.runs"), nullptr);
  EXPECT_EQ(metrics::timer(nullptr, "engine.monitor"), nullptr);
  metrics::add(static_cast<metrics::Counter*>(nullptr), 7);
  metrics::add(nullptr, "engine.runs", 7);
  metrics::set_gauge(nullptr, "batch.threads", 1.0);
  metrics::record_ms(nullptr, "batch.trial", 1.0);
  metrics::ScopedTimer span(nullptr);
  span.stop();
}

TEST(MetricsTest, ThreadSafeAccumulation) {
  metrics::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&registry] {
      // counter() races with other registrants; add() races with adds.
      metrics::Counter& c = registry.counter("shared");
      for (int j = 0; j < kAddsPerThread; ++j) c.add(1);
      registry.timer("shared.timer").record_ms(0.25);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(registry.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(registry.timer("shared.timer").count(),
            static_cast<std::uint64_t>(kThreads));
}

// --- snapshot and sinks ----------------------------------------------------

TEST(MetricsTest, SnapshotIsSortedByName) {
  metrics::MetricsRegistry registry;
  registry.counter("zeta").add(1);
  registry.gauge("alpha").set(2.0);
  registry.timer("mid").record_ms(3.0);
  const auto samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "alpha");
  EXPECT_EQ(samples[0].kind, "gauge");
  EXPECT_EQ(samples[1].name, "mid");
  EXPECT_EQ(samples[1].kind, "timer");
  EXPECT_EQ(samples[2].name, "zeta");
  EXPECT_EQ(samples[2].kind, "counter");
}

TEST(MetricsTest, JsonlSchema) {
  metrics::MetricsRegistry registry;
  registry.counter("engine.runs").add(3);
  EXPECT_EQ(registry.to_jsonl(),
            "{\"name\":\"engine.runs\",\"kind\":\"counter\",\"value\":3,"
            "\"count\":3}\n");
}

TEST(MetricsTest, CsvSchema) {
  metrics::MetricsRegistry registry;
  registry.counter("engine.runs").add(3);
  registry.gauge("batch.threads").set(2.0);
  EXPECT_EQ(registry.to_csv(),
            "name,kind,value,count\n"
            "batch.threads,gauge,2,1\n"
            "engine.runs,counter,3,3\n");
}

TEST(MetricsTest, WritePicksFormatByExtension) {
  metrics::MetricsRegistry registry;
  registry.counter("c").add(1);
  const std::string jsonl = testing::TempDir() + "/metrics_test.jsonl";
  const std::string csv = testing::TempDir() + "/metrics_test.csv";
  registry.write(jsonl);
  registry.write(csv);
  EXPECT_EQ(slurp(jsonl), registry.to_jsonl());
  EXPECT_EQ(slurp(csv), registry.to_csv());
  std::remove(jsonl.c_str());
  std::remove(csv.c_str());
}

TEST(MetricsTest, JsonHelpers) {
  EXPECT_EQ(metrics::json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(metrics::json_number(2.0), "2");
  EXPECT_EQ(metrics::json_number(0.5), "0.5");
  // Non-finite values have no JSON literal; null keeps parsers happy.
  EXPECT_EQ(metrics::json_number(std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(metrics::json_number(std::numeric_limits<double>::infinity()),
            "null");
}

// --- manifest --------------------------------------------------------------

TEST(ManifestTest, CollectFillsEnvironment) {
  const metrics::RunManifest manifest = metrics::RunManifest::collect();
  EXPECT_FALSE(manifest.git_describe.empty());
  EXPECT_FALSE(manifest.build_type.empty());
  EXPECT_FALSE(manifest.compiler.empty());
  EXPECT_FALSE(manifest.hostname.empty());
  // ISO-8601 UTC: "2026-08-08T12:34:56Z".
  ASSERT_EQ(manifest.started_utc.size(), 20u);
  EXPECT_EQ(manifest.started_utc[10], 'T');
  EXPECT_EQ(manifest.started_utc.back(), 'Z');
}

// Parses "2026-08-08T12:34:56Z" to Unix seconds; -1 on malformed input.
std::int64_t utc_seconds(const std::string& ts) {
  int y = 0, mo = 0, d = 0, h = 0, mi = 0, s = 0;
  char z = 0;
  if (std::sscanf(ts.c_str(), "%4d-%2d-%2dT%2d:%2d:%2d%c", &y, &mo, &d, &h,
                  &mi, &s, &z) != 7 ||
      z != 'Z') {
    return -1;
  }
  using namespace std::chrono;
  const auto day = sys_days(year{y} / mo / d);
  return duration_cast<seconds>(
             (day + hours{h} + minutes{mi} + seconds{s}).time_since_epoch())
      .count();
}

TEST(ManifestTest, BatchTimestampsAreParseableAndConsistent) {
  // One worker thread so wall_ms (the summed per-trial busy time) cannot
  // exceed the started->finished window.
  sim::BatchOptions options;
  options.threads = 1;
  sim::RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 3;
  spec.n = 200;
  spec.trials = 3;
  spec.seed = 7;
  const auto result = sim::BatchRunner(options).run_one(spec);
  const metrics::RunManifest& m = result.manifest;

  ASSERT_EQ(m.started_utc.size(), 20u) << m.started_utc;
  ASSERT_EQ(m.finished_utc.size(), 20u) << m.finished_utc;
  const std::int64_t start = utc_seconds(m.started_utc);
  const std::int64_t finish = utc_seconds(m.finished_utc);
  ASSERT_GE(start, 0) << m.started_utc;
  ASSERT_GE(finish, 0) << m.finished_utc;
  EXPECT_GE(finish, start);

  // wall_ms must agree with the timestamp pair: non-negative, and within
  // the window plus 2s of slack for the timestamps' 1-second resolution.
  EXPECT_GE(m.wall_ms, 0.0);
  EXPECT_LE(m.wall_ms / 1000.0, static_cast<double>(finish - start) + 2.0);
}

TEST(ManifestTest, ToJsonRoundTrip) {
  metrics::RunManifest manifest = metrics::RunManifest::collect();
  manifest.spec = "circles(k=3) n=100 \"quoted\"";
  manifest.backend = "dense";
  manifest.kernel = "dense";
  manifest.seed = 42;
  manifest.trials = 5;
  manifest.threads = 2;
  const std::string json = manifest.to_json();
  EXPECT_NE(json.find("\"spec\":\"circles(k=3) n=100 \\\"quoted\\\"\""),
            std::string::npos);
  EXPECT_NE(json.find("\"backend\":\"dense\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":42"), std::string::npos);
  EXPECT_NE(json.find("\"trials\":5"), std::string::npos);
  EXPECT_NE(json.find("\"threads\":2"), std::string::npos);
  EXPECT_NE(json.find("\"git_describe\":"), std::string::npos);
  EXPECT_NE(json.find("\"hostname\":"), std::string::npos);

  const std::string path = testing::TempDir() + "/manifest_test.json";
  manifest.write(path);
  EXPECT_EQ(slurp(path), json + "\n");
  std::remove(path.c_str());
}

// --- RunSpec token ---------------------------------------------------------

TEST(MetricsSpecTest, MetricsTokenRoundTrips) {
  sim::RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 3;
  spec.n = 100;
  spec.metrics_out = "/tmp/cell0.jsonl";
  const std::string text = spec.to_string();
  EXPECT_NE(text.find("metrics=/tmp/cell0.jsonl"), std::string::npos);
  const sim::RunSpec parsed = sim::RunSpec::parse(text);
  EXPECT_EQ(parsed.metrics_out, spec.metrics_out);
  EXPECT_EQ(parsed.to_string(), text);
}

// --- batch integration -----------------------------------------------------

sim::RunSpec small_spec(sim::EngineKind backend, std::uint64_t n) {
  sim::RunSpec spec;
  spec.protocol = "circles";
  spec.params.k = 3;
  spec.n = n;
  spec.trials = 3;
  spec.seed = 7;
  spec.backend = backend;
  return spec;
}

TEST(MetricsBatchTest, ResultsBitwiseIdenticalWithMetricsOnEveryBackend) {
  for (const auto backend :
       {sim::EngineKind::kAgentArray, sim::EngineKind::kDense,
        sim::EngineKind::kDenseBatched, sim::EngineKind::kFluid}) {
    const std::uint64_t n =
        backend == sim::EngineKind::kFluid ? 100'000 : 300;
    const sim::RunSpec spec = small_spec(backend, n);

    const auto off = sim::BatchRunner(sim::BatchOptions{}).run_one(spec);

    metrics::MetricsRegistry registry;
    sim::BatchOptions with;
    with.metrics = &registry;
    const auto on = sim::BatchRunner(with).run_one(spec);

    ASSERT_EQ(off.trials.size(), on.trials.size());
    for (std::size_t t = 0; t < on.trials.size(); ++t) {
      EXPECT_EQ(off.trials[t].seed, on.trials[t].seed);
      EXPECT_EQ(off.trials[t].outcome.run.interactions,
                on.trials[t].outcome.run.interactions);
      EXPECT_EQ(off.trials[t].outcome.run.state_changes,
                on.trials[t].outcome.run.state_changes);
      EXPECT_EQ(off.trials[t].outcome.run.final_outputs,
                on.trials[t].outcome.run.final_outputs);
    }
    // And the registry actually saw the work.
    EXPECT_GT(registry.counter("batch.trials").value(), 0u)
        << sim::to_string(backend);
  }
}

TEST(MetricsBatchTest, EngineCountersMatchAggregates) {
  metrics::MetricsRegistry registry;
  sim::BatchOptions options;
  options.metrics = &registry;
  const auto result =
      sim::BatchRunner(options).run_one(
          small_spec(sim::EngineKind::kAgentArray, 200));

  EXPECT_EQ(registry.counter("engine.runs").value(), result.trial_count);
  const double total_interactions =
      result.interactions.mean * result.trial_count;
  EXPECT_EQ(registry.counter("engine.interactions").value(),
            static_cast<std::uint64_t>(total_interactions));
  // Batch phase instrumentation.
  EXPECT_EQ(registry.counter("batch.specs").value(), 1u);
  EXPECT_EQ(registry.counter("batch.trials").value(), result.trial_count);
  EXPECT_EQ(registry.timer("batch.trial").count(), result.trial_count);
  EXPECT_GT(registry.timer("batch.wall").total_ms(), 0.0);
  // Kernel compile stats routed through the registry.
  EXPECT_EQ(registry.timer("kernel.build").count(), 1u);
  EXPECT_GT(registry.counter("kernel.entries").value(), 0u);
}

TEST(MetricsBatchTest, DenseCountersFlow) {
  metrics::MetricsRegistry registry;
  sim::BatchOptions options;
  options.metrics = &registry;
  (void)sim::BatchRunner(options).run_one(
      small_spec(sim::EngineKind::kDenseBatched, 20'000));
  EXPECT_EQ(registry.counter("dense.runs").value(), 3u);
  EXPECT_GT(registry.counter("dense.interactions").value(), 0u);
  EXPECT_GT(registry.counter("dense.epochs").value(), 0u);
  EXPECT_GT(registry.counter("dense.mvhg_draws").value(), 0u);
}

TEST(MetricsBatchTest, FluidCountersFlow) {
  metrics::MetricsRegistry registry;
  sim::BatchOptions options;
  options.metrics = &registry;
  (void)sim::BatchRunner(options).run_one(
      small_spec(sim::EngineKind::kFluid, 100'000));
  EXPECT_EQ(registry.counter("fluid.runs").value(), 3u);
  EXPECT_GT(registry.counter("fluid.ode_steps_accepted").value(), 0u);
}

TEST(MetricsBatchTest, TrialLatencySummaryFilled) {
  const auto result =
      sim::BatchRunner(sim::BatchOptions{}).run_one(small_spec(sim::EngineKind::kDense, 200));
  EXPECT_EQ(result.trial_ms.count, result.trial_count);
  EXPECT_GE(result.trial_ms.p90, result.trial_ms.p50);
  EXPECT_GE(result.trial_ms.p50, 0.0);
  for (const auto& trial : result.trials) {
    EXPECT_GE(trial.wall_ms, 0.0);
  }
  // Provenance is always collected, sink or not.
  EXPECT_EQ(result.manifest.backend, "dense");
  EXPECT_EQ(result.manifest.trials, result.trial_count);
  EXPECT_FALSE(result.manifest.finished_utc.empty());
}

TEST(MetricsBatchTest, MetricsOutWritesSinkAndManifest) {
  const std::string sink = testing::TempDir() + "/cell_metrics.jsonl";
  const std::string manifest = testing::TempDir() + "/cell_metrics.manifest.json";
  sim::RunSpec spec = small_spec(sim::EngineKind::kAgentArray, 150);
  spec.metrics_out = sink;
  const auto result = sim::BatchRunner(sim::BatchOptions{}).run_one(spec);

  const std::string sink_text = slurp(sink);
  EXPECT_NE(sink_text.find("\"name\":\"engine.runs\""), std::string::npos);
  EXPECT_NE(sink_text.find("\"name\":\"batch.trial\""), std::string::npos);
  EXPECT_NE(sink_text.find("\"name\":\"kernel.build\""), std::string::npos);

  const std::string manifest_text = slurp(manifest);
  EXPECT_NE(manifest_text.find("\"backend\":\"agent\""), std::string::npos);
  EXPECT_NE(manifest_text.find("\"trials\":3"), std::string::npos);
  EXPECT_EQ(manifest_text, result.manifest.to_json() + "\n");

  std::remove(sink.c_str());
  std::remove(manifest.c_str());
}

TEST(MetricsBatchTest, ProgressCallbackFires) {
  sim::BatchOptions options;
  std::vector<sim::BatchProgress> snapshots;
  options.progress = [&snapshots](const sim::BatchProgress& p) {
    snapshots.push_back(p);
  };
  options.progress_interval_s = 1e9;  // only the guaranteed final call
  const auto result =
      sim::BatchRunner(options).run_one(
          small_spec(sim::EngineKind::kAgentArray, 150));
  ASSERT_GE(snapshots.size(), 1u);
  const sim::BatchProgress& last = snapshots.back();
  EXPECT_EQ(last.trials_done, result.trial_count);
  EXPECT_EQ(last.trials_total, result.trial_count);
  EXPECT_EQ(last.specs_done, 1u);
  EXPECT_EQ(last.specs_total, 1u);
  EXPECT_GT(last.interactions, 0u);
  EXPECT_GT(last.interactions_per_s(), 0.0);
}

TEST(MetricsBatchTest, SessionBuilderWiring) {
  metrics::MetricsRegistry registry;
  const auto result = sim::SessionBuilder()
                          .protocol("circles")
                          .k(3)
                          .n(150)
                          .trials(2)
                          .seed(11)
                          .metrics(&registry)
                          .run();
  EXPECT_EQ(result.trial_count, 2u);
  EXPECT_EQ(registry.counter("engine.runs").value(), 2u);
}

}  // namespace
}  // namespace circles
