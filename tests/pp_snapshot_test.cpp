#include "pp/snapshot.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/trial.hpp"
#include "analysis/workload.hpp"
#include "core/circles_protocol.hpp"
#include "extensions/tie_report.hpp"
#include "pp/engine.hpp"

namespace circles::pp {
namespace {

TEST(SnapshotTest, RoundTripPreservesConfiguration) {
  core::CirclesProtocol protocol(4);
  util::Rng rng(3);
  const analysis::Workload w = analysis::random_unique_winner(rng, 17, 4);
  const auto colors = w.agent_colors(rng);
  Population original(protocol, colors);

  const std::string text = serialize_population(original, protocol);
  const Population restored = parse_population(text, protocol);

  EXPECT_EQ(restored.size(), original.size());
  for (const StateId s : original.present_states()) {
    EXPECT_EQ(restored.count(s), original.count(s)) << "state " << s;
  }
  EXPECT_EQ(restored.present_states(), original.present_states());
}

TEST(SnapshotTest, SerializedFormIsStableAndReadable) {
  core::CirclesProtocol protocol(2);
  const std::vector<ColorId> colors{0, 0, 1};
  Population population(protocol, colors);
  const std::string text = serialize_population(population, protocol);
  EXPECT_NE(text.find("circles-snapshot v1"), std::string::npos);
  EXPECT_NE(text.find("protocol circles"), std::string::npos);
  EXPECT_NE(text.find("num_states 8"), std::string::npos);
  EXPECT_NE(text.find("agents 3"), std::string::npos);
  // Serializing twice yields identical bytes (deterministic ordering).
  EXPECT_EQ(text, serialize_population(population, protocol));
}

TEST(SnapshotTest, ResumedRunBehavesLikeOriginalPopulation) {
  // Snapshot mid-run, restore, and finish: the restored population is the
  // same multiset, so it must reach the same (unique, Lemma 3.6) stable
  // configuration.
  core::CirclesProtocol protocol(3);
  util::Rng rng(5);
  const analysis::Workload w = analysis::random_unique_winner(rng, 12, 3);
  const auto colors = w.agent_colors(rng);
  Population population(protocol, colors);
  auto scheduler =
      make_scheduler(SchedulerKind::kUniformRandom, 12, rng(), &protocol);
  EngineOptions burst;
  burst.max_interactions = 100;
  burst.stop_when_silent = false;
  Engine(burst).run(protocol, population, *scheduler);

  const std::string snapshot = serialize_population(population, protocol);
  Population restored = parse_population(snapshot, protocol);

  auto scheduler2 =
      make_scheduler(SchedulerKind::kUniformRandom, 12, rng(), &protocol);
  Engine engine;
  const auto result = engine.run(protocol, restored, *scheduler2);
  EXPECT_TRUE(result.silent);
  EXPECT_TRUE(restored.output_consensus(protocol, *w.winner()));
}

TEST(SnapshotTest, RejectsProtocolMismatch) {
  core::CirclesProtocol circles(3);
  ext::TieReportProtocol tie_report(3);
  const std::vector<ColorId> colors{0, 1, 2};
  Population population(circles, colors);
  const std::string text = serialize_population(population, circles);
  EXPECT_THROW(parse_population(text, tie_report), std::invalid_argument);
}

TEST(SnapshotTest, RejectsStateCountMismatch) {
  core::CirclesProtocol small(2);
  core::CirclesProtocol big(3);
  // Same name ("circles") but different k: num_states must catch it.
  const std::vector<ColorId> colors{0, 1};
  Population population(small, colors);
  const std::string text = serialize_population(population, small);
  EXPECT_THROW(parse_population(text, big), std::invalid_argument);
}

TEST(SnapshotTest, RejectsMalformedInput) {
  core::CirclesProtocol protocol(2);
  EXPECT_THROW(parse_population("", protocol), std::invalid_argument);
  EXPECT_THROW(parse_population("garbage\n", protocol), std::invalid_argument);
  EXPECT_THROW(
      parse_population("circles-snapshot v1\nprotocol circles\n", protocol),
      std::invalid_argument);
  // Counts that do not add up.
  const std::string bad =
      "circles-snapshot v1\nprotocol circles\nnum_states 8\nagents 5\n0 2\n";
  EXPECT_THROW(parse_population(bad, protocol), std::invalid_argument);
  // Out-of-range state id.
  const std::string oob =
      "circles-snapshot v1\nprotocol circles\nnum_states 8\nagents 1\n9 1\n";
  EXPECT_THROW(parse_population(oob, protocol), std::invalid_argument);
}

}  // namespace
}  // namespace circles::pp
