#include "dense/sampling.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "util/rng.hpp"

namespace circles::dense {
namespace {

TEST(LogFactorialTest, MatchesDirectSummation) {
  double acc = 0.0;
  for (std::uint64_t x = 1; x <= 300; ++x) {
    acc += std::log(static_cast<double>(x));
    EXPECT_NEAR(log_factorial(x), acc, 1e-9) << "x=" << x;
  }
  EXPECT_EQ(log_factorial(0), 0.0);
}

TEST(LogFactorialTest, StirlingAgreesWithLgamma) {
  for (const std::uint64_t x :
       {std::uint64_t{2048}, std::uint64_t{5000}, std::uint64_t{1000000},
        std::uint64_t{100000000}}) {
    const double expected = std::lgamma(static_cast<double>(x) + 1.0);
    EXPECT_NEAR(log_factorial(x) / expected, 1.0, 1e-12) << "x=" << x;
  }
}

TEST(LogChooseTest, SmallValuesExact) {
  EXPECT_NEAR(log_choose(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(log_choose(10, 5), std::log(252.0), 1e-12);
  EXPECT_EQ(log_choose(7, 0), 0.0);
  EXPECT_EQ(log_choose(7, 7), 0.0);
}

TEST(HypergeometricTest, DegenerateSupportsNeedNoRandomness) {
  util::Rng rng(1);
  // draws == 0, successes == 0, all-success and forced draws never consume
  // the rng and return the forced value.
  EXPECT_EQ(hypergeometric(rng, 10, 4, 0), 0u);
  EXPECT_EQ(hypergeometric(rng, 10, 0, 7), 0u);
  EXPECT_EQ(hypergeometric(rng, 10, 10, 7), 7u);
  EXPECT_EQ(hypergeometric(rng, 10, 4, 10), 4u);
  // lo == hi via the pigeonhole bound: drawing 9 of 10 with 4 successes
  // forces at least 3.
  EXPECT_EQ(hypergeometric(rng, 4, 2, 4), 2u);
}

TEST(HypergeometricTest, StaysInSupport) {
  util::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t total = 2 + rng.uniform_below(200);
    const std::uint64_t successes = rng.uniform_below(total + 1);
    const std::uint64_t draws = rng.uniform_below(total + 1);
    const std::uint64_t failures = total - successes;
    const std::uint64_t lo = draws > failures ? draws - failures : 0;
    const std::uint64_t hi = std::min(draws, successes);
    const std::uint64_t x = hypergeometric(rng, total, successes, draws);
    EXPECT_GE(x, lo);
    EXPECT_LE(x, hi);
  }
}

TEST(HypergeometricTest, MatchesExactPmfOnSmallCase) {
  // HG(N=10, K=4, m=5): pmf over x in [0..4] is C(4,x)C(6,5-x)/C(10,5).
  const double denom = 252.0;
  const std::vector<double> pmf = {6 / denom, 60 / denom, 120 / denom,
                                   60 / denom, 6 / denom};
  util::Rng rng(42);
  std::vector<double> freq(5, 0.0);
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) {
    freq[hypergeometric(rng, 10, 4, 5)] += 1.0 / samples;
  }
  for (std::size_t x = 0; x < pmf.size(); ++x) {
    EXPECT_NEAR(freq[x], pmf[x], 0.01) << "x=" << x;
  }
}

TEST(HypergeometricTest, LargeParameterMeanIsRight) {
  // Exercises the log-gamma anchor path (all parameters above the
  // sequential cutoff): mean must be draws * successes / total.
  util::Rng rng(3);
  const std::uint64_t total = 1'000'000, successes = 300'000, draws = 2'000;
  double mean = 0.0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    mean += static_cast<double>(
                hypergeometric(rng, total, successes, draws)) /
            samples;
  }
  // stddev of one draw ~ sqrt(2000 * .3 * .7) ~ 20.5; of the mean ~ 0.15.
  EXPECT_NEAR(mean, 600.0, 1.0);
}

TEST(HypergeometricTest, DeterministicPerSeed) {
  util::Rng a(99), b(99);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(hypergeometric(a, 5000, 1234, 777),
              hypergeometric(b, 5000, 1234, 777));
  }
}

TEST(MultivariateHypergeometricTest, SumsToDrawsAndRespectsCounts) {
  util::Rng rng(5);
  const std::vector<std::uint64_t> counts = {17, 0, 5, 40, 1, 0, 30};
  std::vector<std::uint64_t> out(counts.size());
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t draws = rng.uniform_below(94);  // total is 93
    multivariate_hypergeometric(rng, counts, draws, out);
    std::uint64_t sum = 0;
    for (std::size_t j = 0; j < counts.size(); ++j) {
      EXPECT_LE(out[j], counts[j]);
      sum += out[j];
    }
    EXPECT_EQ(sum, draws);
  }
}

TEST(MultivariateHypergeometricTest, MarginalMeansMatch) {
  util::Rng rng(11);
  const std::vector<std::uint64_t> counts = {100, 300, 600};
  std::vector<std::uint64_t> out(3);
  std::vector<double> mean(3, 0.0);
  const int samples = 50000;
  for (int i = 0; i < samples; ++i) {
    multivariate_hypergeometric(rng, counts, 100, out);
    for (int j = 0; j < 3; ++j) mean[j] += static_cast<double>(out[j]) / samples;
  }
  EXPECT_NEAR(mean[0], 10.0, 0.15);
  EXPECT_NEAR(mean[1], 30.0, 0.25);
  EXPECT_NEAR(mean[2], 60.0, 0.25);
}

TEST(CollisionFreeRunLengthTest, TwoAgentsAlwaysRunOne) {
  CollisionFreeRunLength dist(2);
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(dist.sample(rng), 1u);
}

TEST(CollisionFreeRunLengthTest, SamplesMatchSurvivalMean) {
  const std::uint64_t n = 400;
  CollisionFreeRunLength dist(n);
  util::Rng rng(17);
  double mean = 0.0;
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) {
    const std::uint64_t len = dist.sample(rng);
    ASSERT_GE(len, 1u);
    ASSERT_LE(len, dist.max_length());
    mean += static_cast<double>(len) / samples;
  }
  // E[L] = sum_j P(L >= j) = mean_length(); ~0.88 sqrt(n) ~ 17.6 here.
  EXPECT_NEAR(mean, dist.mean_length(), 0.15);
  EXPECT_GT(dist.mean_length(), 0.5 * std::sqrt(static_cast<double>(n)));
}

TEST(CollisionFreeRunLengthTest, NeverExceedsHalfThePopulation) {
  CollisionFreeRunLength dist(9);  // max floor((9-1)/2)+... = 4 free pairs
  util::Rng rng(2);
  for (int i = 0; i < 2000; ++i) EXPECT_LE(dist.sample(rng), 4u);
}

TEST(LastSpecialSlotTest, BoundsAndDegenerates) {
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(last_special_slot(rng, 6, 6), 6u);
    const std::uint64_t m = last_special_slot(rng, 10, 3);
    EXPECT_GE(m, 3u);
    EXPECT_LE(m, 10u);
  }
}

TEST(LastSpecialSlotTest, MatchesExactDistribution) {
  // slots=5, special=2: P(max=j) = C(j-1,1)/C(5,2) = (j-1)/10, j in 2..5.
  util::Rng rng(23);
  std::map<std::uint64_t, double> freq;
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) {
    freq[last_special_slot(rng, 5, 2)] += 1.0 / samples;
  }
  EXPECT_NEAR(freq[2], 0.1, 0.01);
  EXPECT_NEAR(freq[3], 0.2, 0.01);
  EXPECT_NEAR(freq[4], 0.3, 0.01);
  EXPECT_NEAR(freq[5], 0.4, 0.01);
}

}  // namespace
}  // namespace circles::dense
