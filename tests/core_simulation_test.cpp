// End-to-end checks of the paper's claims on the Circles protocol:
// Theorem 3.7 (correctness), Theorem 3.4 (stabilization), Lemma 3.3
// (bra-ket invariant) and Lemma 3.6 (schedule-independent decomposition),
// exhaustively for small populations and randomized at larger sizes.
#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/trial.hpp"
#include "analysis/workload.hpp"
#include "core/circles_protocol.hpp"
#include "core/decomposition.hpp"
#include "core/greedy_sets.hpp"

namespace circles::core {
namespace {

using analysis::CirclesTrialOutcome;
using analysis::TrialOptions;
using analysis::Workload;

/// Enumerates all count vectors over k colors summing to n.
void enumerate_counts(std::uint32_t k, std::uint64_t n,
                      std::vector<std::uint64_t>& prefix,
                      const std::function<void(const std::vector<std::uint64_t>&)>& f) {
  if (prefix.size() + 1 == k) {
    prefix.push_back(n);
    f(prefix);
    prefix.pop_back();
    return;
  }
  for (std::uint64_t c = 0; c <= n; ++c) {
    prefix.push_back(c);
    enumerate_counts(k, n - c, prefix, f);
    prefix.pop_back();
  }
}

void for_all_workloads(std::uint32_t k, std::uint64_t n,
                       const std::function<void(const Workload&)>& f) {
  std::vector<std::uint64_t> prefix;
  enumerate_counts(k, n, prefix, [&](const std::vector<std::uint64_t>& counts) {
    Workload w;
    w.counts = counts;
    f(w);
  });
}

void expect_trial_obeys_paper(const CirclesTrialOutcome& outcome,
                              const Workload& workload,
                              const std::string& context) {
  // Theorem 3.4 via the engine: the run reached exact silence.
  EXPECT_TRUE(outcome.trial.run.silent) << context;
  EXPECT_FALSE(outcome.trial.run.budget_exhausted) << context;
  // Lemma 3.3.
  EXPECT_EQ(outcome.braket_invariant_violations, 0u) << context;
  // Theorem 3.4's potential argument.
  EXPECT_EQ(outcome.potential_descent_violations, 0u) << context;
  // Lemma 3.6.
  EXPECT_TRUE(outcome.decomposition_matches) << context;
  // Theorem 3.7 (only meaningful without ties).
  if (workload.winner().has_value()) {
    EXPECT_TRUE(outcome.trial.correct) << context;
    EXPECT_EQ(outcome.trial.consensus,
              std::optional<pp::OutputSymbol>(*workload.winner()))
        << context;
  }
}

TEST(CirclesSimulationTest, ExhaustiveTwoColorsUpToEight) {
  CirclesProtocol protocol(2);
  for (std::uint64_t n = 2; n <= 8; ++n) {
    for_all_workloads(2, n, [&](const Workload& w) {
      if (w.n() < 2) return;
      TrialOptions options;
      options.scheduler = pp::SchedulerKind::kRoundRobin;
      options.seed = 17 * n + w.counts[0];
      const auto outcome = analysis::run_circles_trial(protocol, w, options);
      expect_trial_obeys_paper(outcome, w, "k=2 counts=" + w.to_string());
    });
  }
}

TEST(CirclesSimulationTest, ExhaustiveThreeColorsUpToSix) {
  CirclesProtocol protocol(3);
  for (std::uint64_t n = 2; n <= 6; ++n) {
    for_all_workloads(3, n, [&](const Workload& w) {
      if (w.n() < 2) return;
      TrialOptions options;
      options.scheduler = pp::SchedulerKind::kShuffledSweep;
      options.seed = 31 * n + w.counts[0] * 7 + w.counts[1];
      const auto outcome = analysis::run_circles_trial(protocol, w, options);
      expect_trial_obeys_paper(outcome, w, "k=3 counts=" + w.to_string());
    });
  }
}

TEST(CirclesSimulationTest, ExhaustiveFourColorsUpToFive) {
  CirclesProtocol protocol(4);
  for (std::uint64_t n = 2; n <= 5; ++n) {
    for_all_workloads(4, n, [&](const Workload& w) {
      if (w.n() < 2) return;
      TrialOptions options;
      options.scheduler = pp::SchedulerKind::kRoundRobin;
      options.seed = 13 * n + w.counts[0] * 5 + w.counts[2];
      const auto outcome = analysis::run_circles_trial(protocol, w, options);
      expect_trial_obeys_paper(outcome, w, "k=4 counts=" + w.to_string());
    });
  }
}

TEST(CirclesSimulationTest, TiesStabilizeWithoutDiagonalsOrConsensus) {
  // Lemma 3.6 holds on ties too: the stable multiset has no diagonal, so no
  // winner is ever (re-)announced; the run goes silent without consensus.
  CirclesProtocol protocol(3);
  Workload w;
  w.counts = {3, 3, 1};
  util::Rng rng(3);
  for (const auto kind :
       {pp::SchedulerKind::kRoundRobin, pp::SchedulerKind::kUniformRandom}) {
    TrialOptions options;
    options.scheduler = kind;
    options.seed = rng();
    const auto outcome = analysis::run_circles_trial(protocol, w, options);
    EXPECT_TRUE(outcome.trial.run.silent);
    EXPECT_TRUE(outcome.decomposition_matches);
    EXPECT_EQ(outcome.braket_invariant_violations, 0u);
    EXPECT_FALSE(outcome.trial.correct);
  }
}

TEST(CirclesSimulationTest, DecompositionIsScheduleIndependent) {
  // The same counts must produce the *identical* stable bra-ket multiset
  // under every scheduler (Lemma 3.6 makes it a function of the input).
  CirclesProtocol protocol(5);
  Workload w;
  w.counts = {4, 1, 0, 3, 2};
  for (const pp::SchedulerKind kind : pp::kAllSchedulerKinds) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      TrialOptions options;
      options.scheduler = kind;
      options.seed = seed;
      const auto outcome = analysis::run_circles_trial(protocol, w, options);
      EXPECT_TRUE(outcome.trial.run.silent) << pp::to_string(kind);
      EXPECT_TRUE(outcome.decomposition_matches)
          << pp::to_string(kind) << " seed=" << seed;
      EXPECT_TRUE(outcome.trial.correct) << pp::to_string(kind);
    }
  }
}

TEST(CirclesSimulationTest, RandomizedMediumPopulations) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    const std::uint32_t k = 2 + static_cast<std::uint32_t>(rng.uniform_below(6));
    const std::uint64_t n = 10 + rng.uniform_below(80);
    CirclesProtocol protocol(k);
    const Workload w = analysis::random_unique_winner(rng, n, k);
    TrialOptions options;
    options.seed = rng();
    const auto outcome = analysis::run_circles_trial(protocol, w, options);
    expect_trial_obeys_paper(outcome, w,
                             "random k=" + std::to_string(k) +
                                 " counts=" + w.to_string());
  }
}

TEST(CirclesSimulationTest, ScalarEnergyIsNotMonotoneInGeneral) {
  // The paper needs the ordinal potential precisely because Σw can rise
  // during an exchange; confirm we observe such a rise on some workload.
  util::Rng rng(4242);
  std::uint64_t total_increases = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint32_t k = 5 + static_cast<std::uint32_t>(rng.uniform_below(4));
    CirclesProtocol protocol(k);
    const Workload w = analysis::random_unique_winner(rng, 40, k);
    TrialOptions options;
    options.seed = rng();
    const auto outcome = analysis::run_circles_trial(protocol, w, options);
    total_increases += outcome.scalar_energy_increases;
  }
  EXPECT_GT(total_increases, 0u);
}

TEST(CirclesSimulationTest, ExchangeCountsArePositiveWithMultipleColors) {
  CirclesProtocol protocol(4);
  Workload w;
  w.counts = {3, 2, 2, 1};
  TrialOptions options;
  options.seed = 9;
  const auto outcome = analysis::run_circles_trial(protocol, w, options);
  EXPECT_GT(outcome.ket_exchanges, 0u);
  // Diagonal destructions happen (initial diagonals get broken up).
  EXPECT_GT(outcome.diagonal_destructions, 0u);
}

TEST(CirclesSimulationTest, UniformSingleColorSilentImmediately) {
  CirclesProtocol protocol(3);
  Workload w;
  w.counts = {0, 5, 0};
  TrialOptions options;
  options.seed = 5;
  const auto outcome = analysis::run_circles_trial(protocol, w, options);
  EXPECT_TRUE(outcome.trial.run.silent);
  EXPECT_EQ(outcome.ket_exchanges, 0u);
  EXPECT_TRUE(outcome.trial.correct);
  EXPECT_EQ(outcome.trial.run.interactions, 0u);
}

TEST(CirclesSimulationTest, TwoAgentsMinimalPopulation) {
  CirclesProtocol protocol(2);
  Workload w;
  w.counts = {2, 0};
  TrialOptions options;
  options.seed = 1;
  const auto outcome = analysis::run_circles_trial(protocol, w, options);
  EXPECT_TRUE(outcome.trial.correct);
}

TEST(CirclesSimulationTest, AdversarialDelaySchedulerStillConverges) {
  // Theorem 3.7 quantifies over all weakly fair schedules — the delaying
  // adversary is weakly fair, so correctness must survive it.
  CirclesProtocol protocol(4);
  Workload w;
  w.counts = {5, 3, 4, 2};
  TrialOptions options;
  options.scheduler = pp::SchedulerKind::kAdversarialDelay;
  options.seed = 77;
  const auto outcome = analysis::run_circles_trial(protocol, w, options);
  expect_trial_obeys_paper(outcome, w, "adversarial");
}

TEST(CirclesSimulationTest, PermutedColorIdsPreserveCorrectnessNotWork) {
  // E13's premise: permuting color identities preserves correctness (the
  // winner maps through the permutation) while the number of exchanges may
  // differ because weights depend on numeric distances.
  CirclesProtocol protocol(6);
  util::Rng rng(99);
  const Workload base = analysis::random_unique_winner(rng, 60, 6);
  const Workload permuted = analysis::permute_colors(rng, base);
  TrialOptions options;
  options.seed = 123;
  const auto a = analysis::run_circles_trial(protocol, base, options);
  const auto b = analysis::run_circles_trial(protocol, permuted, options);
  EXPECT_TRUE(a.trial.correct);
  EXPECT_TRUE(b.trial.correct);
}

TEST(DecompositionCheckTest, DescribeRendersDiff) {
  CirclesProtocol protocol(2);
  const std::vector<pp::StateId> states{protocol.input(0), protocol.input(0)};
  pp::Population pop(protocol.num_states(), states);
  const std::vector<std::uint64_t> wrong_counts{1, 1};
  const auto check = verify_decomposition(pop, protocol, wrong_counts);
  EXPECT_FALSE(check.matches);
  EXPECT_NE(check.describe().find("mismatch"), std::string::npos);
  const std::vector<std::uint64_t> right_counts{2, 0};
  const auto ok = verify_decomposition(pop, protocol, right_counts);
  EXPECT_TRUE(ok.matches);
  EXPECT_EQ(ok.describe(), "decomposition matches");
}

}  // namespace
}  // namespace circles::core
