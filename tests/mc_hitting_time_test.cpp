#include "mc/hitting_time.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "analysis/trial.hpp"
#include "analysis/workload.hpp"
#include "baselines/exact_majority_4state.hpp"
#include "core/circles_protocol.hpp"

namespace circles::mc {
namespace {

class Epidemic final : public pp::Protocol {
 public:
  std::uint64_t num_states() const override { return 2; }
  std::uint32_t num_colors() const override { return 2; }
  pp::StateId input(pp::ColorId color) const override { return color; }
  pp::OutputSymbol output(pp::StateId state) const override { return state; }
  pp::Transition transition(pp::StateId i, pp::StateId r) const override {
    if (i == 1 || r == 1) return {1, 1};
    return {i, r};
  }
  std::string name() const override { return "epidemic"; }
};

class Oscillator final : public pp::Protocol {
 public:
  std::uint64_t num_states() const override { return 2; }
  std::uint32_t num_colors() const override { return 2; }
  pp::StateId input(pp::ColorId color) const override { return color; }
  pp::OutputSymbol output(pp::StateId state) const override { return state; }
  pp::Transition transition(pp::StateId i, pp::StateId r) const override {
    if (i != r) return {r, i};
    return {i, r};
  }
  std::string name() const override { return "oscillator"; }
};

TEST(HittingTimeTest, EpidemicTwoAgentsIsOneInteraction) {
  Epidemic protocol;
  const std::vector<pp::ColorId> colors{1, 0};
  const auto result = expected_interactions_to_silence(protocol, colors);
  ASSERT_TRUE(result.computed);
  EXPECT_DOUBLE_EQ(result.expected_interactions, 1.0);
}

TEST(HittingTimeTest, EpidemicThreeAgentsHandComputed) {
  // From {1 infected, 2 susceptible}: 4 of 6 ordered pairs infect, then
  // again 4 of 6 — expected 6/4 + 6/4 = 3 interactions.
  Epidemic protocol;
  const std::vector<pp::ColorId> colors{1, 0, 0};
  const auto result = expected_interactions_to_silence(protocol, colors);
  ASSERT_TRUE(result.computed);
  EXPECT_NEAR(result.expected_interactions, 3.0, 1e-12);
  EXPECT_EQ(result.reachable, 3u);
  EXPECT_EQ(result.absorbing, 1u);
}

TEST(HittingTimeTest, AlreadySilentIsZero) {
  Epidemic protocol;
  const std::vector<pp::ColorId> colors{0, 0, 0};
  const auto result = expected_interactions_to_silence(protocol, colors);
  ASSERT_TRUE(result.computed);
  EXPECT_DOUBLE_EQ(result.expected_interactions, 0.0);
}

TEST(HittingTimeTest, OscillatorHasNoFiniteHittingTime) {
  Oscillator protocol;
  const std::vector<pp::ColorId> colors{0, 1};
  const auto result = expected_interactions_to_silence(protocol, colors);
  EXPECT_FALSE(result.computed);  // singular system: absorption unreachable
}

TEST(HittingTimeTest, CapTruncatesComputation) {
  core::CirclesProtocol protocol(3);
  HittingTimeOptions options;
  options.max_configurations = 5;
  const std::vector<pp::ColorId> colors{0, 0, 1, 2};
  const auto result =
      expected_interactions_to_silence(protocol, colors, options);
  EXPECT_FALSE(result.computed);
}

/// Simulation cross-check: the sample mean of "interactions until the final
/// configuration is reached" (last_change_step + 1) must approach the exact
/// expectation.
void expect_simulation_agrees(const pp::Protocol& protocol,
                              const std::vector<pp::ColorId>& colors,
                              int trials, double tolerance_factor) {
  const auto exact = expected_interactions_to_silence(protocol, colors);
  ASSERT_TRUE(exact.computed);
  ASSERT_GT(exact.expected_interactions, 0.0);

  util::Rng rng(2024);
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    pp::Population population(protocol, colors);
    auto scheduler = pp::make_scheduler(
        pp::SchedulerKind::kUniformRandom,
        static_cast<std::uint32_t>(colors.size()), rng());
    pp::Engine engine;
    const auto run = engine.run(protocol, population, *scheduler);
    EXPECT_TRUE(run.silent);
    total += static_cast<double>(run.last_change_step + 1);
  }
  const double mean = total / trials;
  EXPECT_NEAR(mean, exact.expected_interactions,
              exact.expected_interactions * tolerance_factor)
      << "exact=" << exact.expected_interactions << " simulated=" << mean;
}

TEST(HittingTimeTest, CirclesSimulationMatchesExactExpectation) {
  core::CirclesProtocol protocol(2);
  expect_simulation_agrees(protocol, {0, 0, 0, 1, 1}, 3000, 0.1);
}

TEST(HittingTimeTest, CirclesThreeColorsMatches) {
  core::CirclesProtocol protocol(3);
  expect_simulation_agrees(protocol, {0, 0, 1, 2}, 3000, 0.1);
}

TEST(HittingTimeTest, FourStateMajorityMatches) {
  baselines::ExactMajority4State protocol;
  expect_simulation_agrees(protocol, {0, 0, 0, 1, 1}, 3000, 0.1);
}

TEST(HittingTimeTest, LargerMarginConvergesFasterInExpectation) {
  core::CirclesProtocol protocol(2);
  const auto close = expected_interactions_to_silence(
      protocol, std::vector<pp::ColorId>{0, 0, 0, 1, 1});
  const auto landslide = expected_interactions_to_silence(
      protocol, std::vector<pp::ColorId>{0, 0, 0, 0, 1});
  ASSERT_TRUE(close.computed && landslide.computed);
  EXPECT_GT(close.expected_interactions, landslide.expected_interactions);
}

}  // namespace
}  // namespace circles::mc
