#include "pp/graph.hpp"

#include <gtest/gtest.h>

#include <set>

#include "analysis/workload.hpp"
#include "core/circles_protocol.hpp"
#include "pp/engine.hpp"

namespace circles::pp {
namespace {

TEST(InteractionGraphTest, CompleteGraph) {
  const auto g = InteractionGraph::complete(5);
  EXPECT_EQ(g.n, 5u);
  EXPECT_EQ(g.edges.size(), 10u);
  EXPECT_TRUE(g.connected());
}

TEST(InteractionGraphTest, RingGraph) {
  const auto g = InteractionGraph::ring(6);
  EXPECT_EQ(g.edges.size(), 6u);
  EXPECT_TRUE(g.connected());
  // Every vertex has degree 2.
  std::vector<int> degree(6, 0);
  for (const auto& [a, b] : g.edges) {
    degree[a] += 1;
    degree[b] += 1;
  }
  for (const int d : degree) EXPECT_EQ(d, 2);
}

TEST(InteractionGraphTest, TriangleRingHasNoDuplicateEdges) {
  const auto g = InteractionGraph::ring(3);
  EXPECT_EQ(g.edges.size(), 3u);
  std::set<std::pair<AgentId, AgentId>> unique(g.edges.begin(), g.edges.end());
  EXPECT_EQ(unique.size(), 3u);
}

TEST(InteractionGraphTest, StarGraph) {
  const auto g = InteractionGraph::star(7);
  EXPECT_EQ(g.edges.size(), 6u);
  EXPECT_TRUE(g.connected());
  for (const auto& [a, b] : g.edges) {
    EXPECT_EQ(a, 0u);
    EXPECT_NE(b, 0u);
  }
}

TEST(InteractionGraphTest, GridGraph) {
  const auto g = InteractionGraph::grid(3, 4);
  EXPECT_EQ(g.n, 12u);
  // 3*3 horizontal + 2*4 vertical = 9 + 8 = 17 edges.
  EXPECT_EQ(g.edges.size(), 17u);
  EXPECT_TRUE(g.connected());
}

TEST(InteractionGraphTest, RandomRegularGraph) {
  for (const std::uint32_t d : {2u, 3u, 4u}) {
    const auto g = InteractionGraph::random_regular(12, d, 5);
    EXPECT_EQ(g.n, 12u);
    EXPECT_EQ(g.edges.size(), 12u * d / 2);
    EXPECT_TRUE(g.connected());
    std::vector<std::uint32_t> degree(12, 0);
    std::set<std::pair<AgentId, AgentId>> unique;
    for (const auto& [a, b] : g.edges) {
      EXPECT_NE(a, b);
      EXPECT_TRUE(unique.insert({a, b}).second);
      degree[a] += 1;
      degree[b] += 1;
    }
    for (const auto deg : degree) EXPECT_EQ(deg, d);
  }
}

TEST(InteractionGraphDeathTest, RandomRegularRequiresEvenStubs) {
  EXPECT_DEATH(InteractionGraph::random_regular(5, 3, 1), "even");
}

TEST(GraphSchedulerTest, RoundRobinCoversEveryDirectedEdgePerPeriod) {
  const auto g = InteractionGraph::ring(5);
  GraphScheduler sched(g, GraphSchedulerMode::kRoundRobin, 0);
  std::vector<StateId> states(5, 0);
  Population pop(1, states);
  ASSERT_EQ(sched.fairness_period(), 2 * g.edges.size());
  std::set<std::pair<AgentId, AgentId>> seen;
  for (std::uint64_t i = 0; i < sched.fairness_period(); ++i) {
    const AgentPair p = sched.next(pop);
    seen.insert({p.initiator, p.responder});
  }
  EXPECT_EQ(seen.size(), 2 * g.edges.size());
}

TEST(GraphSchedulerTest, ShuffledSweepCoversAllEdgesWithinPeriod) {
  const auto g = InteractionGraph::grid(2, 3);
  GraphScheduler sched(g, GraphSchedulerMode::kShuffledSweep, 7);
  std::vector<StateId> states(6, 0);
  Population pop(1, states);
  ASSERT_EQ(sched.fairness_period(), 4 * g.edges.size() - 1);
  // Collect one sweep worth of pairs: must be a permutation of directed
  // edges.
  std::set<std::pair<AgentId, AgentId>> seen;
  for (std::size_t i = 0; i < 2 * g.edges.size(); ++i) {
    const AgentPair p = sched.next(pop);
    seen.insert({p.initiator, p.responder});
  }
  EXPECT_EQ(seen.size(), 2 * g.edges.size());
}

TEST(GraphSchedulerTest, OnlySchedulesGraphEdges) {
  const auto g = InteractionGraph::star(6);
  GraphScheduler sched(g, GraphSchedulerMode::kRoundRobin, 0);
  std::vector<StateId> states(6, 0);
  Population pop(1, states);
  for (int i = 0; i < 100; ++i) {
    const AgentPair p = sched.next(pop);
    EXPECT_TRUE(p.initiator == 0 || p.responder == 0);
  }
}

TEST(GraphSchedulerTest, CompleteGraphBehavesLikeFullModel) {
  // On the complete graph, edge-fairness equals pair-fairness, so Circles
  // must be exactly as correct as under the standard schedulers.
  core::CirclesProtocol protocol(3);
  util::Rng rng(3);
  const analysis::Workload w = analysis::random_unique_winner(rng, 10, 3);
  const auto colors = w.agent_colors(rng);
  Population population(protocol, colors);
  GraphScheduler sched(InteractionGraph::complete(10),
                       GraphSchedulerMode::kShuffledSweep, rng());
  Engine engine;
  const auto result = engine.run(protocol, population, sched);
  EXPECT_TRUE(result.silent);
  EXPECT_TRUE(population.output_consensus(protocol, *w.winner()));
}

TEST(GraphSchedulerTest, RingReachesEdgeSilence) {
  // On a restricted topology the run must still terminate in finite time
  // with an edge-silence certificate (correctness is NOT asserted — the
  // paper's model does not cover restricted interaction; E14 measures it).
  core::CirclesProtocol protocol(3);
  util::Rng rng(11);
  const analysis::Workload w = analysis::random_unique_winner(rng, 12, 3);
  const auto colors = w.agent_colors(rng);
  Population population(protocol, colors);
  GraphScheduler sched(InteractionGraph::ring(12),
                       GraphSchedulerMode::kRoundRobin, 0);
  Engine engine;
  const auto result = engine.run(protocol, population, sched);
  EXPECT_TRUE(result.silent);  // silent == edge-silent for this scheduler
  EXPECT_FALSE(result.budget_exhausted);
}

TEST(GraphSchedulerTest, NamesIncludeTopologyAndMode) {
  GraphScheduler rr(InteractionGraph::ring(4), GraphSchedulerMode::kRoundRobin,
                    0);
  EXPECT_EQ(rr.name(), "graph_ring_rr");
  GraphScheduler sh(InteractionGraph::star(4),
                    GraphSchedulerMode::kShuffledSweep, 0);
  EXPECT_EQ(sh.name(), "graph_star_shuffled");
}

}  // namespace
}  // namespace circles::pp
