#include "dense/dense_config.hpp"

#include <numeric>
#include <sstream>

#include "util/check.hpp"

namespace circles::dense {

namespace {

// Guard against accidentally materializing a count vector for a protocol
// whose state space is itself astronomical (the dense representation is
// O(num_states), which must stay small for the approach to make sense).
constexpr std::uint64_t kMaxDenseStates = 1ull << 26;

std::vector<std::uint64_t> make_counts(const pp::Protocol& protocol) {
  const std::uint64_t num_states = protocol.num_states();
  CIRCLES_CHECK_MSG(num_states <= kMaxDenseStates,
                    "protocol state space too large for the dense "
                    "(count-vector) representation");
  return std::vector<std::uint64_t>(num_states, 0);
}

}  // namespace

DenseConfig DenseConfig::from_workload(const pp::Protocol& protocol,
                                       const analysis::Workload& workload) {
  CIRCLES_CHECK_MSG(workload.k() == protocol.num_colors(),
                    "workload color count does not match the protocol");
  DenseConfig config;
  config.counts = make_counts(protocol);
  for (pp::ColorId c = 0; c < workload.k(); ++c) {
    config.counts[protocol.input(c)] += workload.counts[c];
  }
  return config;
}

DenseConfig DenseConfig::from_population(const pp::Protocol& protocol,
                                         const pp::Population& population) {
  DenseConfig config;
  config.counts = make_counts(protocol);
  for (const pp::StateId s : population.agents()) config.counts[s] += 1;
  return config;
}

std::uint64_t DenseConfig::n() const {
  return std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
}

std::vector<pp::StateId> DenseConfig::present_states() const {
  std::vector<pp::StateId> present;
  for (std::size_t s = 0; s < counts.size(); ++s) {
    if (counts[s] > 0) present.push_back(static_cast<pp::StateId>(s));
  }
  return present;
}

std::vector<std::uint64_t> DenseConfig::output_histogram(
    const pp::Protocol& protocol) const {
  std::vector<std::uint64_t> histogram(protocol.num_output_symbols(), 0);
  for (std::size_t s = 0; s < counts.size(); ++s) {
    if (counts[s] > 0) {
      histogram[protocol.output(static_cast<pp::StateId>(s))] += counts[s];
    }
  }
  return histogram;
}

std::string DenseConfig::to_string(const pp::Protocol& protocol) const {
  std::ostringstream os;
  bool first = true;
  for (std::size_t s = 0; s < counts.size(); ++s) {
    if (counts[s] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << protocol.state_name(static_cast<pp::StateId>(s)) << " x "
       << counts[s];
  }
  if (first) os << "(empty)";
  return os.str();
}

}  // namespace circles::dense
