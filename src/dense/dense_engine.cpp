#include "dense/dense_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>

#include "dense/sampling.hpp"
#include "metrics/metrics.hpp"
#include "obs/recorder.hpp"
#include "trace/trace.hpp"
#include "util/arena.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace circles::dense {

namespace {

/// Sentinel "no state excluded" for the categorical walks below.
constexpr std::uint64_t kNoExclude = ~std::uint64_t{0};

/// Span decimation: the first kTraceFullEpochs epochs (and fast-forward
/// jumps, and pooled stage regions) get full begin/end spans — enough to see
/// the run's structure in a timeline — after which epochs collapse to one
/// instant every kTraceStride so a billion-interaction run stays under the
/// <2% tracing-overhead budget and inside the ring window.
constexpr std::uint64_t kTraceFullEpochs = 512;
constexpr std::uint64_t kTraceStride = 256;

/// Where the most recent state change happened, at epoch granularity. The
/// exact step index inside the epoch is only sampled once, at the end of the
/// run, for the epoch that turned out to contain the final change. Single-urn
/// epochs need only (length, productive); multi-urn epochs also snapshot the
/// block sequence so the last productive slot can be placed per block.
struct LastChangeMark {
  bool valid = false;
  bool exact = false;           // index holds the step directly
  std::uint64_t index = 0;      // exact: the step of the change
  std::uint64_t start = 0;      // else: epoch start step ...
  std::uint64_t length = 0;     // ... its collision-free slot count ...
  std::uint64_t productive = 0; // ... and how many slots changed state
  bool multi = false;           // multi-urn epoch: the fields below are live
  std::vector<std::uint32_t> seq;              // block id per epoch slot
  std::vector<std::uint64_t> block_len;        // per-block slot counts
  std::vector<std::uint64_t> block_productive; // per-block state changes
};

}  // namespace

DenseEngine::DenseEngine(const pp::Protocol& protocol,
                         pp::EngineOptions options, DenseMode mode,
                         bool use_kernel, pp::UrnLumping lumping)
    : protocol_(&protocol),
      options_(options),
      mode_(mode),
      num_states_(protocol.num_states()),
      lumping_(std::move(lumping)) {
  CIRCLES_CHECK_MSG(num_states_ >= 1, "protocol needs at least one state");
  if (!lumping_.sizes.empty()) lumping_.validate();
  if (use_kernel) {
    owned_kernel_ = std::make_shared<const kernel::CompiledProtocol>(protocol);
    kernel_ = owned_kernel_.get();
  }
  run_threads_ = options_.run_threads != 0
                     ? options_.run_threads
                     : util::ThreadPool::shared().helpers() + 1;
}

DenseEngine::DenseEngine(std::shared_ptr<const kernel::CompiledProtocol> kernel,
                         pp::EngineOptions options, DenseMode mode,
                         pp::UrnLumping lumping)
    : protocol_(&kernel->protocol()),
      owned_kernel_(std::move(kernel)),
      kernel_(owned_kernel_.get()),
      options_(options),
      mode_(mode),
      num_states_(kernel_->num_states()),
      lumping_(std::move(lumping)) {
  if (!lumping_.sizes.empty()) lumping_.validate();
  run_threads_ = options_.run_threads != 0
                     ? options_.run_threads
                     : util::ThreadPool::shared().helpers() + 1;
}

/// Run-local state shared by both modes. The per-urn count/presence/used
/// fields live in a few contiguous (urn, state)-indexed arena slabs so the
/// epoch hot loops walk adjacent memory; the caller's count storage is
/// copied in once here and copied back by sync_out() when the run ends.
struct DenseEngine::Sim {
  /// One urn (cluster): a count-vector view plus its presence bookkeeping.
  /// `present` contains every state with count > 0, possibly plus stale
  /// zero-count entries; compact() drops the latter. The categorical walks
  /// skip zero counts naturally.
  struct Urn {
    std::span<std::uint64_t> counts;  // arena slab row, num_states wide
    std::span<std::uint64_t> out;     // the caller's storage (copy-back)
    std::uint64_t n = 0;  // fixed urn size (counts always sum to this)
    std::vector<pp::StateId> present;
    std::span<std::uint8_t> in_present;  // arena slab row
    // Epoch scratch: post-transition state histogram of this epoch's
    // participants, reset via `touched`.
    std::span<std::uint64_t> used;  // arena slab row
    std::vector<pp::StateId> touched;
    std::uint64_t used_total = 0;
  };

  const DenseEngine& engine;
  util::Rng& rng;
  util::Arena arena;  // backs every flat slab below; append-only, run-local
  std::vector<Urn> urns;
  std::size_t num_urns = 0;
  std::uint64_t n = 0;  // total population

  // Block structure: row-major num_urns x num_urns. rates sums to 1;
  // pair_capacity[b] is the number of ordered agent pairs block b can
  // schedule (n_u * n_v off-diagonal, n_u * (n_u - 1) on it).
  std::vector<double> rates;
  std::vector<double> pair_capacity;

  // Number of ordered agent pairs per block whose interaction would change
  // a state; live_active sums the blocks with positive rate. live_active is
  // zero iff the configuration is silent under the lumped scheduler (the
  // exact certificate).
  std::span<std::uint64_t> active;
  // row_sums[b * num_states + s]: block b's active-pair mass with initiator
  // state s, refreshed together with active[b]; pick_active_pair skips
  // whole rows through it instead of rewalking every (s, t) product.
  std::span<std::uint64_t> row_sums;
  std::uint64_t live_active = 0;

  // This run's span buffer (the run thread's; null = tracing off). Workers
  // resolve their own buffers through engine.options_.tracer inside
  // run_tasks — a span always lands on the emitting thread's track.
  trace::TraceBuffer* trace = nullptr;

  // Intra-run worker budget (the engine's resolved run_threads) and pool
  // telemetry. Parallel stages only ever run when pool_threads > 1 and the
  // run is multi-urn; results are bitwise identical either way.
  unsigned pool_threads = 1;
  std::uint64_t m_parallel_epochs = 0;  // batched epochs using the pool
  std::uint64_t m_pool_regions = 0;     // parallel_for regions issued
  std::uint64_t m_pool_busy_ns = 0;     // summed worker busy time
  std::uint64_t m_pool_wall_ns = 0;     // summed region wall time

  // Telemetry scratch: plain locals bumped on the hot path, flushed once
  // into EngineOptions::metrics by run_impl.
  std::uint64_t m_epochs = 0;       // batched epochs executed
  std::uint64_t m_ff_jumps = 0;     // sparse-activity fast-forward jumps
  std::uint64_t m_ff_skipped = 0;   // null interactions skipped by them
  std::uint64_t m_mvhg_draws = 0;   // multivariate hypergeometric deals

  // Aggregate view for the recorder: single-urn runs alias urn 0; multi-urn
  // runs maintain summed counts incrementally (only when a recorder is
  // attached — aggregate_enabled).
  bool aggregate_enabled = false;
  std::vector<std::uint64_t> agg_counts;
  std::vector<pp::StateId> agg_present;
  std::vector<std::uint8_t> agg_in_present;
  std::vector<std::uint64_t> urn_sizes;
  std::vector<std::span<const std::uint64_t>> urn_spans;

  Sim(const DenseEngine& engine, std::span<std::span<std::uint64_t>> counts,
      std::span<const double> rate_matrix, util::Rng& rng, bool want_aggregate)
      : engine(engine), rng(rng) {
    num_urns = counts.size();
    pool_threads = engine.run_threads_;
    const std::size_t states = engine.num_states_;
    const std::size_t num_blocks = num_urns * num_urns;
    rates.assign(rate_matrix.begin(), rate_matrix.end());

    const std::span<std::uint64_t> counts_flat =
        arena.alloc<std::uint64_t>(num_urns * states);
    const std::span<std::uint8_t> in_present_flat =
        arena.alloc<std::uint8_t>(num_urns * states);
    const std::span<std::uint64_t> used_flat =
        arena.alloc<std::uint64_t>(num_urns * states);
    active = arena.alloc<std::uint64_t>(num_blocks);
    row_sums = arena.alloc<std::uint64_t>(num_blocks * states);

    urns.resize(num_urns);
    for (std::size_t u = 0; u < num_urns; ++u) {
      Urn& urn = urns[u];
      CIRCLES_DCHECK(counts[u].size() == states);
      urn.out = counts[u];
      urn.counts = counts_flat.subspan(u * states, states);
      urn.in_present = in_present_flat.subspan(u * states, states);
      urn.used = used_flat.subspan(u * states, states);
      std::copy(urn.out.begin(), urn.out.end(), urn.counts.begin());
      for (std::size_t s = 0; s < urn.counts.size(); ++s) {
        urn.n += urn.counts[s];
        if (urn.counts[s] > 0) {
          urn.present.push_back(static_cast<pp::StateId>(s));
          urn.in_present[s] = 1;
        }
      }
      n += urn.n;
      urn_sizes.push_back(urn.n);
      urn_spans.push_back(
          std::span<const std::uint64_t>(urn.counts.data(), urn.counts.size()));
    }
    pair_capacity.resize(num_urns * num_urns);
    for (std::size_t u = 0; u < num_urns; ++u) {
      for (std::size_t v = 0; v < num_urns; ++v) {
        const double nu = static_cast<double>(urns[u].n);
        const double nv = static_cast<double>(urns[v].n);
        pair_capacity[u * num_urns + v] = u == v ? nu * (nv - 1.0) : nu * nv;
      }
    }
    aggregate_enabled = want_aggregate && num_urns > 1;
    if (aggregate_enabled) {
      agg_counts.assign(engine.num_states_, 0);
      agg_in_present.assign(engine.num_states_, 0);
      for (const Urn& urn : urns) {
        for (std::size_t s = 0; s < urn.counts.size(); ++s) {
          agg_counts[s] += urn.counts[s];
        }
      }
      for (std::size_t s = 0; s < agg_counts.size(); ++s) {
        if (agg_counts[s] > 0) {
          agg_present.push_back(static_cast<pp::StateId>(s));
          agg_in_present[s] = 1;
        }
      }
    }
    refresh_active();
  }

  /// Copies the working counts back into the caller's storage. run_impl
  /// calls this once, after the run loop; everything in between mutates
  /// only the arena slabs.
  void sync_out() {
    for (Urn& urn : urns) {
      std::copy(urn.counts.begin(), urn.counts.end(), urn.out.begin());
    }
  }

  /// Runs fn(0), ..., fn(count - 1): on the shared pool when `pooled`,
  /// serially otherwise. Pooled callers write task-indexed disjoint state
  /// and reduce serially afterwards, so results are bitwise identical for
  /// any worker count — `pooled` is purely a performance gate. `stage` names
  /// the region in the span timeline: the issuing thread gets a pool-region
  /// span and every task wraps itself in a `stage` span on its OWN thread's
  /// buffer, so pool workers show up as distinct attributed tracks. Tracing
  /// reads deterministic state only and never reorders the tasks.
  template <typename Fn>
  void run_tasks(std::size_t count, bool pooled, const char* stage, Fn&& fn) {
    if (!pooled || count <= 1 || pool_threads <= 1) {
      for (std::size_t i = 0; i < count; ++i) fn(i);
      return;
    }
    // Stage/worker spans follow the epoch decimation window so a long run's
    // per-epoch fan-out does not swamp the ring or the overhead budget.
    trace::Tracer* tracer =
        m_epochs <= kTraceFullEpochs ? engine.options_.tracer : nullptr;
    const trace::ScopedSpan region(tracer != nullptr ? trace : nullptr,
                                   "dense.pool", "tasks", count);
    const auto start = std::chrono::steady_clock::now();
    if (tracer != nullptr) {
      m_pool_busy_ns += util::ThreadPool::shared().parallel_for(
          count, pool_threads, [&](std::size_t i) {
            const trace::ScopedSpan task(trace::buffer(tracer, "worker"),
                                         stage);
            fn(i);
          });
    } else {
      m_pool_busy_ns +=
          util::ThreadPool::shared().parallel_for(count, pool_threads, fn);
    }
    m_pool_wall_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    m_pool_regions += 1;
  }

  void note_state(Urn& urn, pp::StateId s) {
    if (!urn.in_present[s]) {
      urn.in_present[s] = 1;
      urn.present.push_back(s);
    }
  }

  void note_agg(pp::StateId s) {
    if (!agg_in_present[s]) {
      agg_in_present[s] = 1;
      agg_present.push_back(s);
    }
  }

  /// Mirrors one applied transition group onto the aggregate view.
  void apply_agg(pp::StateId si, pp::StateId sr, const pp::Transition& tr,
                 std::uint64_t m) {
    if (!aggregate_enabled) return;
    agg_counts[si] -= m;
    agg_counts[sr] -= m;
    agg_counts[tr.initiator] += m;
    agg_counts[tr.responder] += m;
    note_agg(tr.initiator);
    note_agg(tr.responder);
  }

  void compact(Urn& urn) {
    std::size_t w = 0;
    for (const pp::StateId s : urn.present) {
      if (urn.counts[s] > 0) {
        urn.present[w++] = s;
      } else {
        urn.in_present[s] = 0;
      }
    }
    urn.present.resize(w);
  }

  /// Recomputes block (u, v)'s active-pair count, filling its row_sums rows
  /// as a side effect. The factored form c_i[s] * sum_t c_r[t] (minus the
  /// diagonal's own-agent correction) runs one multiply per initiator row
  /// and leaves the inner loop a pure vectorizable count gather; uint64
  /// arithmetic is exact mod 2^64 and the true value fits, so the sum
  /// matches the historical per-(s, t) product walk bit for bit.
  std::uint64_t block_active(std::size_t u, std::size_t v) {
    const Urn& urn_i = urns[u];
    const Urn& urn_r = urns[v];
    const bool diag = u == v;
    std::uint64_t* rows = row_sums.data() + (u * num_urns + v) * engine.num_states_;
    std::uint64_t sum = 0;
    const kernel::CompiledProtocol* k = engine.kernel_;
    if (k != nullptr && k->has_adjacency()) {
      // The kernel's active-responder index skips null pairs wholesale.
      for (const pp::StateId s : urn_i.present) {
        std::uint64_t acc = 0;
        for (const pp::StateId t : k->active_responders(s)) {
          acc += urn_r.counts[t];
        }
        std::uint64_t row = urn_i.counts[s] * acc;
        // On diagonal blocks an agent cannot meet itself: one unit of
        // responder mass per initiator agent disappears iff (s, s) is
        // non-null (then and only then did the walk above count it).
        if (diag && engine.nonnull(s, s)) row -= urn_i.counts[s];
        rows[s] = row;
        sum += row;
      }
    } else {
      for (const pp::StateId s : urn_i.present) {
        std::uint64_t acc = 0;
        for (const pp::StateId t : urn_r.present) {
          if (!engine.nonnull(s, t)) continue;
          acc += urn_r.counts[t];
        }
        std::uint64_t row = urn_i.counts[s] * acc;
        // diag implies urn_r == urn_i, so s is in urn_r.present and the
        // walk counted (s, s) iff it is non-null.
        if (diag && engine.nonnull(s, s)) row -= urn_i.counts[s];
        rows[s] = row;
        sum += row;
      }
    }
    return sum;
  }

  void refresh_active() {
    std::size_t total_present = 0;
    for (Urn& urn : urns) {
      compact(urn);
      total_present += urn.present.size();
    }
    // Pool the per-block recomputes only when the O(present^2) work
    // plausibly beats the dispatch overhead. The gate reads deterministic
    // state only, and the per-block sums are identical either way.
    const bool pooled = pool_threads > 1 && num_urns > 1 &&
                        total_present * total_present >= 4096;
    run_tasks(num_urns * num_urns, pooled, "dense.stage.active",
              [this](std::size_t b) {
                active[b] = block_active(b / num_urns, b % num_urns);
              });
    live_active = 0;
    for (std::size_t b = 0; b < num_urns * num_urns; ++b) {
      if (rates[b] > 0.0) live_active += active[b];
    }
  }

  /// Weighted draw of a state from an urn's counts; `exclude` (a StateId,
  /// or kNoExclude) has its count reduced by one — the "responder cannot be
  /// the initiator" correction on intra blocks. `total` must equal the
  /// walked mass.
  pp::StateId pick_state(Urn& urn, std::uint64_t total, std::uint64_t exclude) {
    std::uint64_t r = rng.uniform_below(total);
    for (const pp::StateId s : urn.present) {
      std::uint64_t c = urn.counts[s];
      if (s == exclude) c -= 1;
      if (r < c) return s;
      r -= c;
    }
    CIRCLES_CHECK_MSG(false, "dense state draw walked past the population");
    return urn.present.back();
  }

  void apply(std::size_t bu, std::size_t bv, pp::StateId si, pp::StateId sr,
             const pp::Transition& tr) {
    urns[bu].counts[si] -= 1;
    urns[bv].counts[sr] -= 1;
    urns[bu].counts[tr.initiator] += 1;
    urns[bv].counts[tr.responder] += 1;
    note_state(urns[bu], tr.initiator);
    note_state(urns[bv], tr.responder);
    apply_agg(si, sr, tr, 1);
  }

  /// Draw an ordered block with probability proportional to its rate.
  /// Callers skip this for single-urn runs (there is nothing to draw), so
  /// the single-urn RNG stream matches the historical engine's.
  std::size_t pick_block_by_rate() {
    const double r = rng.uniform01();
    double acc = 0.0;
    std::size_t last = 0;
    for (std::size_t b = 0; b < rates.size(); ++b) {
      if (rates[b] <= 0.0) continue;
      last = b;
      if (r < acc + rates[b]) return b;
      acc += rates[b];
    }
    return last;  // numeric fallback for r at the rounded-off tail
  }

  /// Draw the block containing the next state change: weights
  /// rate_b * active_b / capacity_b, whose sum `total` the caller computed.
  std::size_t pick_block_by_activity(double total) {
    double r = rng.uniform01() * total;
    std::size_t last = 0;
    for (std::size_t b = 0; b < rates.size(); ++b) {
      if (rates[b] <= 0.0 || active[b] == 0) continue;
      last = b;
      const double w =
          rates[b] * (static_cast<double>(active[b]) / pair_capacity[b]);
      if (r < w) return b;
      r -= w;
    }
    return last;
  }

  /// Draw the ordered active state pair within block (bu, bv), conditioned
  /// on being active (weights c_u[s] * (c_v[t] - [diag][s == t])). Every
  /// call happens right after a refresh_active(), so row_sums is current:
  /// whole initiator rows are skipped in O(1) and only the selected row
  /// rewalks its responders — the same pair the historical full (s, t)
  /// walk landed on, because each row's mass equals its walked prefix.
  void pick_active_pair(std::size_t bu, std::size_t bv, pp::StateId& si,
                        pp::StateId& sr) {
    const Urn& urn_i = urns[bu];
    const Urn& urn_r = urns[bv];
    const bool diag = bu == bv;
    const std::uint64_t* rows =
        row_sums.data() + (bu * num_urns + bv) * engine.num_states_;
    std::uint64_t r = rng.uniform_below(active[bu * num_urns + bv]);
    for (const pp::StateId s : urn_i.present) {
      const std::uint64_t row = rows[s];
      if (r >= row) {
        r -= row;
        continue;
      }
      for (const pp::StateId t : urn_r.present) {
        if (!engine.nonnull(s, t)) continue;
        const std::uint64_t w =
            urn_i.counts[s] * (urn_r.counts[t] - (diag && s == t ? 1 : 0));
        if (r < w) {
          si = s;
          sr = t;
          return;
        }
        r -= w;
      }
      break;  // unreachable: the row walk covers exactly rows[s] mass
    }
    CIRCLES_CHECK_MSG(false, "active-pair draw walked past the count");
  }

  void touch_used(Urn& urn, pp::StateId s, std::uint64_t m) {
    if (urn.used[s] == 0) urn.touched.push_back(s);
    urn.used[s] += m;
    urn.used_total += m;
  }

  void reset_used() {
    for (Urn& urn : urns) {
      for (const pp::StateId s : urn.touched) urn.used[s] = 0;
      urn.touched.clear();
      urn.used_total = 0;
    }
  }

  pp::StateId pick_used(Urn& urn, std::uint64_t total, std::uint64_t exclude) {
    std::uint64_t r = rng.uniform_below(total);
    for (const pp::StateId s : urn.touched) {
      std::uint64_t c = urn.used[s];
      if (s == exclude) c -= 1;
      if (r < c) return s;
      r -= c;
    }
    CIRCLES_CHECK_MSG(false, "used-agent draw walked past the epoch");
    return urn.touched.back();
  }

  pp::StateId pick_fresh(Urn& urn, std::uint64_t total) {
    std::uint64_t r = rng.uniform_below(total);
    for (const pp::StateId s : urn.present) {
      const std::uint64_t c = urn.counts[s] - urn.used[s];
      if (r < c) return s;
      r -= c;
    }
    CIRCLES_CHECK_MSG(false, "fresh-agent draw walked past the epoch");
    return urn.present.back();
  }

  // --- recorder views ------------------------------------------------------

  std::span<const std::uint64_t> rec_counts() const {
    if (num_urns == 1) {
      return std::span<const std::uint64_t>(urns[0].counts.data(),
                                            urns[0].counts.size());
    }
    return agg_counts;
  }
  std::span<const pp::StateId> rec_present() const {
    return num_urns == 1 ? std::span<const pp::StateId>(urns[0].present)
                         : std::span<const pp::StateId>(agg_present);
  }
  std::span<const std::span<const std::uint64_t>> rec_urns() const {
    if (num_urns == 1) return {};
    return urn_spans;
  }

  std::vector<std::uint64_t> output_histogram() const {
    std::vector<std::uint64_t> histogram(
        engine.protocol_->num_output_symbols(), 0);
    for (const Urn& urn : urns) {
      for (std::size_t s = 0; s < urn.counts.size(); ++s) {
        if (urn.counts[s] > 0) {
          histogram[engine.protocol_->output(static_cast<pp::StateId>(s))] +=
              urn.counts[s];
        }
      }
    }
    return histogram;
  }
};

pp::RunResult DenseEngine::run(DenseConfig& config, std::uint64_t seed,
                               obs::Recorder* recorder) const {
  util::Rng rng(seed);
  return run(config, rng, recorder);
}

pp::RunResult DenseEngine::run(DenseConfig& config, util::Rng& rng,
                               obs::Recorder* recorder) const {
  CIRCLES_CHECK_MSG(config.num_states() == num_states_,
                    "configuration does not match the engine's protocol");
  CIRCLES_CHECK_MSG(lumping_.sizes.size() <= 1,
                    "engine was built for a multi-urn lumping; pass an "
                    "UrnConfig partitioned to match");
  std::span<std::uint64_t> span(config.counts);
  Sim sim(*this, std::span<std::span<std::uint64_t>>(&span, 1),
          std::span<const double>(&kUniformRate, 1), rng,
          recorder != nullptr);
  if (!lumping_.sizes.empty()) {
    CIRCLES_CHECK_MSG(sim.n == lumping_.sizes[0],
                      "configuration does not match the engine's urn sizes");
  }
  return run_impl(sim, recorder);
}

pp::RunResult DenseEngine::run(UrnConfig& config, std::uint64_t seed,
                               obs::Recorder* recorder) const {
  util::Rng rng(seed);
  return run(config, rng, recorder);
}

pp::RunResult DenseEngine::run(UrnConfig& config, util::Rng& rng,
                               obs::Recorder* recorder) const {
  CIRCLES_CHECK_MSG(config.num_urns() >= 1, "urn config needs >= 1 urn");
  CIRCLES_CHECK_MSG(config.num_states() == num_states_,
                    "configuration does not match the engine's protocol");
  std::vector<std::span<std::uint64_t>> spans;
  spans.reserve(config.num_urns());
  for (auto& urn : config.urns) spans.push_back(std::span<std::uint64_t>(urn));

  if (lumping_.sizes.empty()) {
    CIRCLES_CHECK_MSG(config.num_urns() == 1,
                      "multi-urn configuration on a single-urn engine; "
                      "construct the DenseEngine with the scheduler's "
                      "UrnLumping");
    Sim sim(*this, spans, std::span<const double>(&kUniformRate, 1), rng,
            recorder != nullptr);
    return run_impl(sim, recorder);
  }
  CIRCLES_CHECK_MSG(config.num_urns() == lumping_.num_urns(),
                    "configuration urn count does not match the engine's "
                    "lumping");
  Sim sim(*this, spans, lumping_.rates, rng, recorder != nullptr);
  for (std::size_t u = 0; u < sim.num_urns; ++u) {
    CIRCLES_CHECK_MSG(sim.urns[u].n == lumping_.sizes[u],
                      "urn population does not match the engine's lumping");
  }
  return run_impl(sim, recorder);
}

const double DenseEngine::kUniformRate = 1.0;

pp::RunResult DenseEngine::run_impl(Sim& sim, obs::Recorder* recorder) const {
  CIRCLES_CHECK_MSG(sim.n >= 2, "dense engine requires at least two agents");
  // The active-pair count is bounded by n(n-1), which must fit in uint64;
  // beyond 2^32 agents the arithmetic would silently wrap.
  CIRCLES_CHECK_MSG(sim.n <= (1ull << 32),
                    "dense engine supports at most 2^32 agents");

  pp::RunResult result;
  if (options_.stop_when_silent && sim.live_active == 0) result.silent = true;

  // One span per run on the calling thread; epochs/stages/jumps nest inside
  // (decimated — see kTraceFullEpochs). Null tracer: sim.trace stays null
  // and every emission site below is a pointer test.
  sim.trace = trace::buffer(options_.tracer);
  const trace::ScopedSpan run_span(sim.trace,
                                   mode_ == DenseMode::kBatched
                                       ? "dense.run_batched"
                                       : "dense.run_per_step",
                                   "n", sim.n);

  if (recorder != nullptr) {
    obs::ProbeContext ctx;
    ctx.protocol = protocol_;
    ctx.kernel = kernel_;
    ctx.n = sim.n;
    if (sim.num_urns > 1) ctx.urn_sizes = sim.urn_sizes;
    recorder->begin(ctx, sim.rec_counts(), sim.live_active, sim.rec_present(),
                    sim.rec_urns());
  }

  if (mode_ == DenseMode::kPerStep) {
    run_per_step(sim, result, recorder);
  } else {
    run_batched(sim, result, recorder);
  }
  sim.sync_out();

  if (!result.silent && result.interactions >= options_.max_interactions) {
    result.budget_exhausted = true;
    result.silent = sim.live_active == 0;
  } else if (result.silent) {
    // The run stopped on the exact silence certificate: the minimal stopping
    // time is the step after the final change (the epoch tail processed
    // past it contains only null interactions).
    result.interactions =
        result.state_changes == 0 ? 0 : result.last_change_step + 1;
  }

  result.final_outputs = sim.output_histogram();
  if (recorder != nullptr) {
    recorder->finish(result.interactions, 0.0, sim.rec_counts(),
                     sim.live_active, sim.rec_present(), sim.rec_urns());
  }

  if (options_.metrics != nullptr) {
    auto& m = *options_.metrics;
    m.counter("dense.runs").add(1);
    m.counter("dense.interactions").add(result.interactions);
    m.counter("dense.state_changes").add(result.state_changes);
    m.counter("dense.epochs").add(sim.m_epochs);
    m.counter("dense.fast_forward_jumps").add(sim.m_ff_jumps);
    m.counter("dense.fast_forward_interactions").add(sim.m_ff_skipped);
    m.counter("dense.mvhg_draws").add(sim.m_mvhg_draws);
    m.counter("dense.parallel_epochs").add(sim.m_parallel_epochs);
    if (sim.m_pool_regions > 0) {
      // Summed worker busy time across this run's parallel regions, and the
      // fraction of the regions' (wall x budget) area it filled.
      m.timer("dense.parallel_workers")
          .record_ms(static_cast<double>(sim.m_pool_busy_ns) / 1e6);
      const double area = static_cast<double>(sim.m_pool_wall_ns) *
                          static_cast<double>(run_threads_);
      if (area > 0.0) {
        m.gauge("dense.parallel_utilization")
            .set(static_cast<double>(sim.m_pool_busy_ns) / area);
      }
    }
  }
  return result;
}

void DenseEngine::run_per_step(Sim& sim, pp::RunResult& result,
                               obs::Recorder* recorder) const {
  const std::size_t u_count = sim.num_urns;
  while (!result.silent && result.interactions < options_.max_interactions) {
    std::size_t block = 0;
    if (u_count > 1) block = sim.pick_block_by_rate();
    const std::size_t bu = block / u_count;
    const std::size_t bv = block % u_count;
    Sim::Urn& urn_i = sim.urns[bu];
    Sim::Urn& urn_r = sim.urns[bv];
    pp::StateId si, sr;
    if (bu == bv) {
      si = sim.pick_state(urn_i, urn_i.n, kNoExclude);
      sr = sim.pick_state(urn_i, urn_i.n - 1, si);
    } else {
      si = sim.pick_state(urn_i, urn_i.n, kNoExclude);
      sr = sim.pick_state(urn_r, urn_r.n, kNoExclude);
    }
    const pp::Transition tr = transition(si, sr);
    if (tr.initiator != si || tr.responder != sr) {
      sim.apply(bu, bv, si, sr, tr);
      result.state_changes += 1;
      result.last_change_step = result.interactions;
      sim.refresh_active();
    }
    result.interactions += 1;
    if (options_.stop_when_silent && sim.live_active == 0) {
      result.silent = true;
    }
    // Per-step interactions are far too hot for per-event spans; one instant
    // every 64Ki steps keeps the timeline alive at zero measurable cost.
    if (sim.trace != nullptr && (result.interactions & 0xFFFF) == 0) {
      sim.trace->instant("dense.steps", "interactions", result.interactions);
    }
    if (recorder != nullptr) {
      recorder->advance(result.interactions, 0.0, sim.rec_counts(),
                        sim.live_active, sim.rec_present(), sim.rec_urns());
    }
  }
}

void DenseEngine::run_batched(Sim& sim, pp::RunResult& result,
                              obs::Recorder* recorder) const {
  auto& rng = sim.rng;
  const std::size_t u_count = sim.num_urns;
  const std::size_t num_blocks = u_count * u_count;
  const bool single = u_count == 1;

  // Single-urn epochs sample their length from the precomputed survival
  // table (one uniform draw — the historical engine's stream, preserved
  // bitwise). Multi-urn epochs have no closed-form length distribution (the
  // collision hazard depends on the drawn block sequence), so they sample
  // the exact sequential chain instead.
  std::optional<CollisionFreeRunLength> run_length;
  if (single) run_length.emplace(sim.n);

  // Expected epoch length, for the fast-forward threshold only (any value
  // yields an exact sampler; this is purely a performance knob). Multi-urn:
  // birthday heuristic — collisions appear once sum_u (drawn_u^2 / n_u) ~ 2.
  double epoch_mean;
  if (single) {
    epoch_mean = run_length->mean_length();
  } else {
    double inv = 0.0;
    for (std::size_t u = 0; u < u_count; ++u) {
      double r_u = 0.0;
      for (std::size_t v = 0; v < u_count; ++v) {
        r_u += sim.rates[u * u_count + v] + sim.rates[v * u_count + u];
      }
      inv += r_u * r_u / static_cast<double>(sim.urns[u].n);
    }
    epoch_mean = 0.886 * std::sqrt(2.0 / inv);
  }

  // Multi-urn epochs fan their per-urn and per-block stages out across the
  // shared worker pool. Every stage writes task-indexed disjoint state and
  // the reductions below run serially in ascending index order, so results
  // are bitwise identical for any thread count (single-urn runs are pinned
  // to the historical main-stream order and never pool).
  const bool pooled = !single && sim.pool_threads > 1;
  if (pooled) warm_log_factorial();

  LastChangeMark mark;

  // Per-epoch scratch, carved from the run's arena once: stride-S rows per
  // block for the role deals, per-urn rows for the participant draws. Only
  // `seq` and the recorded pair groups keep dynamic vectors (their length
  // varies per epoch); both reuse their capacity across epochs.
  const std::size_t states = num_states_;
  std::vector<std::uint32_t> seq;                  // multi-urn block sequence
  const std::span<std::uint64_t> block_len =
      sim.arena.alloc<std::uint64_t>(num_blocks);
  const std::span<std::uint64_t> block_productive =
      sim.arena.alloc<std::uint64_t>(num_blocks);
  const std::span<std::uint64_t> phase1_used =
      sim.arena.alloc<std::uint64_t>(u_count);
  const std::span<std::size_t> width = sim.arena.alloc<std::size_t>(u_count);
  const std::span<std::uint64_t> init_flat =
      sim.arena.alloc<std::uint64_t>(num_blocks * states);
  const std::span<std::uint64_t> resp_flat =
      sim.arena.alloc<std::uint64_t>(num_blocks * states);
  const std::span<std::uint64_t> pool_flat =
      sim.arena.alloc<std::uint64_t>(u_count * states);
  const std::span<std::uint64_t> drawn_flat =
      sim.arena.alloc<std::uint64_t>(u_count * states);
  const std::span<std::uint64_t> rem_flat =
      sim.arena.alloc<std::uint64_t>(u_count * states);
  const std::span<std::uint64_t> mvhg_draws =
      sim.arena.alloc<std::uint64_t>(u_count);

  // One recorded transition group from an epoch's pairing stage: m matched
  // (s, t) pairs of one block, mapping through tr. The pairing draws read
  // only the dealt role rows and the frozen present-list prefixes — never
  // the counts they will mutate — so recording groups per block (possibly
  // concurrently) and applying them in ascending (block, group) order
  // reproduces the historical interleaved loop bit for bit.
  struct PairGroup {
    pp::StateId s;
    pp::StateId t;
    pp::Transition tr;
    std::uint64_t m;
  };
  std::vector<std::vector<PairGroup>> groups(num_blocks);

  while (!result.silent && result.interactions < options_.max_interactions) {
    const std::uint64_t remaining =
        options_.max_interactions - result.interactions;

    // Sparse-activity fast-forward: an epoch costs a fixed O(present^2)
    // regardless of how many of its interactions change state, while the
    // geometric path pays O(present^2) per *change* (the null run in
    // between is one log). Below ~3 expected changes per epoch the
    // geometric path wins; it is an exact sampler either way, so the
    // threshold is purely a performance knob.
    double p_change = 0.0;
    for (std::size_t b = 0; b < num_blocks; ++b) {
      if (sim.rates[b] <= 0.0) continue;
      p_change += sim.rates[b] *
                  (static_cast<double>(sim.active[b]) / sim.pair_capacity[b]);
    }
    if (p_change * epoch_mean < 3.0) {
      std::uint64_t nulls = remaining;
      if (p_change > 0.0) {
        const double g = std::floor(std::log1p(-rng.uniform01()) /
                                    std::log1p(-p_change));
        if (g < static_cast<double>(remaining)) {
          nulls = static_cast<std::uint64_t>(g);
        }
      }
      sim.m_ff_jumps += 1;
      const std::uint64_t skipped = nulls < remaining ? nulls : remaining;
      sim.m_ff_skipped += skipped;
      // Jumps are instants (the skipped null run has no internal structure),
      // decimated like epochs so silence tails stay cheap.
      if (sim.trace != nullptr &&
          (sim.m_ff_jumps <= kTraceFullEpochs ||
           sim.m_ff_jumps % kTraceStride == 0)) {
        sim.trace->instant("dense.fast_forward", "skipped", skipped);
      }
      if (nulls >= remaining) {
        result.interactions = options_.max_interactions;
        break;  // the budget ran out inside a null run
      }
      result.interactions += nulls;
      // The next interaction is a state change: draw its block (weights
      // rate_b * active_b / capacity_b), then the ordered pair conditioned
      // on being active.
      std::size_t block = 0;
      if (!single) block = sim.pick_block_by_activity(p_change);
      const std::size_t bu = block / u_count;
      const std::size_t bv = block % u_count;
      pp::StateId si = 0, sr = 0;
      sim.pick_active_pair(bu, bv, si, sr);
      sim.apply(bu, bv, si, sr, transition(si, sr));
      result.state_changes += 1;
      result.last_change_step = result.interactions;
      mark.valid = true;
      mark.exact = true;
      mark.index = result.interactions;
      result.interactions += 1;
      sim.refresh_active();
      if (options_.stop_when_silent && sim.live_active == 0) {
        result.silent = true;
      }
      if (recorder != nullptr) {
        // One collapsed sample per fast-forward jump: the counts were
        // constant across the skipped null run, so the post-change index is
        // the exact position of this observation.
        recorder->advance(result.interactions, 0.0, sim.rec_counts(),
                          sim.live_active, sim.rec_present(), sim.rec_urns());
      }
      continue;
    }

    // One epoch: L collision-free interactions (participants distinct
    // within every urn), then the colliding interaction that ended the run,
    // then reset.
    sim.m_epochs += 1;
    // Full epoch spans early, one instant per kTraceStride epochs after: a
    // timeline shows the run's structure without per-epoch cost forever.
    const bool trace_epoch =
        sim.trace != nullptr && sim.m_epochs <= kTraceFullEpochs;
    if (trace_epoch) {
      sim.trace->begin("dense.epoch", "epoch", sim.m_epochs);
    } else if (sim.trace != nullptr && sim.m_epochs % kTraceStride == 0) {
      sim.trace->instant("dense.epochs", "stride", kTraceStride);
    }
    std::fill(block_len.begin(), block_len.end(), 0);
    std::fill(block_productive.begin(), block_productive.end(), 0);
    std::uint64_t len = 0;
    bool collided = false;
    std::size_t col_block = 0;

    if (single) {
      len = run_length->sample(rng);
      collided = true;
      if (len >= remaining) {
        len = remaining;
        collided = false;  // budget cut the epoch before any collision
      }
      block_len[0] = len;
    } else {
      // Exact sequential chain: each step draws its block from the rate
      // matrix and collides with the probability that a uniform agent draw
      // in the block's urns re-touches a used agent; one uniform drives
      // both decisions (the conditional remainder within the block's rate
      // interval is itself uniform).
      seq.clear();
      std::fill(phase1_used.begin(), phase1_used.end(), 0);
      while (static_cast<std::uint64_t>(seq.size()) < remaining) {
        const double r = rng.uniform01();
        std::size_t b = num_blocks;
        double r_in = 0.0;
        {
          double acc = 0.0;
          std::size_t last = num_blocks;
          for (std::size_t i = 0; i < num_blocks; ++i) {
            const double rate = sim.rates[i];
            if (rate <= 0.0) continue;
            last = i;
            if (r < acc + rate) {
              b = i;
              r_in = (r - acc) / rate;
              break;
            }
            acc += rate;
          }
          if (b == num_blocks) {
            b = last;  // rounding pushed r past the final live block
            r_in = 0.0;
          }
        }
        const std::size_t u = b / u_count;
        const std::size_t v = b % u_count;
        double p_col;
        if (u == v) {
          const double fresh =
              static_cast<double>(sim.urns[u].n - phase1_used[u]);
          p_col = 1.0 - fresh * (fresh - 1.0) /
                            (static_cast<double>(sim.urns[u].n) *
                             static_cast<double>(sim.urns[u].n - 1));
        } else {
          p_col = 1.0 -
                  (static_cast<double>(sim.urns[u].n - phase1_used[u]) /
                   static_cast<double>(sim.urns[u].n)) *
                      (static_cast<double>(sim.urns[v].n - phase1_used[v]) /
                       static_cast<double>(sim.urns[v].n));
        }
        if (r_in < p_col) {
          collided = true;
          col_block = b;
          break;
        }
        seq.push_back(static_cast<std::uint32_t>(b));
        block_len[b] += 1;
        if (u == v) {
          phase1_used[u] += 2;
        } else {
          phase1_used[u] += 1;
          phase1_used[v] += 1;
        }
      }
      len = seq.size();
    }

    // Participant state draws, per urn: T_u agents leave urn u this epoch
    // (initiators of blocks (u, *) plus responders of blocks (*, u); intra
    // blocks contribute on both sides). drawn ~ multivariate hypergeometric
    // from the urn's counts, then sequential splits deal the drawn states
    // across the urn's roles. Single-urn runs draw on the main RNG stream
    // (the historical order); multi-urn runs give urn u the forked
    // sub-stream fork(u), so the draws do not depend on urn iteration order
    // — which is what lets the urn tasks run concurrently: urn u writes
    // only its own pool/drawn/rem rows, the init rows (u, *), and the resp
    // rows (*, u), all disjoint across urns.
    const auto deal_urn = [&](std::size_t u) {
      Sim::Urn& urn = sim.urns[u];
      const std::size_t w = urn.present.size();
      width[u] = w;
      std::uint64_t t_u = 0;
      for (std::size_t v = 0; v < u_count; ++v) {
        t_u += block_len[u * u_count + v] + block_len[v * u_count + u];
      }
      if (t_u == 0) return;

      util::Rng forked(0);
      util::Rng* stream = &rng;
      if (!single) {
        forked = rng.fork(u);
        stream = &forked;
      }

      const std::span<std::uint64_t> pool = pool_flat.subspan(u * states, w);
      const std::span<std::uint64_t> drawn = drawn_flat.subspan(u * states, w);
      const std::span<std::uint64_t> rem = rem_flat.subspan(u * states, w);
      for (std::size_t i = 0; i < w; ++i) {
        pool[i] = urn.counts[urn.present[i]];
      }
      multivariate_hypergeometric(*stream, pool, t_u, drawn);
      mvhg_draws[u] += 1;

      std::copy(drawn.begin(), drawn.end(), rem.begin());
      std::uint64_t rem_total = t_u;
      const auto deal_role = [&](std::span<std::uint64_t> target,
                                 std::uint64_t count) {
        if (count == 0) return;
        if (rem_total == count) {
          // The last live role takes the remainder outright.
          std::copy(rem.begin(), rem.end(), target.begin());
          rem_total = 0;
          return;
        }
        multivariate_hypergeometric(*stream, rem, count, target);
        mvhg_draws[u] += 1;
        for (std::size_t i = 0; i < w; ++i) rem[i] -= target[i];
        rem_total -= count;
      };
      for (std::size_t v = 0; v < u_count; ++v) {
        const std::size_t b = u * u_count + v;
        deal_role(init_flat.subspan(b * states, w), block_len[b]);
      }
      for (std::size_t v = 0; v < u_count; ++v) {
        const std::size_t b = v * u_count + u;
        deal_role(resp_flat.subspan(b * states, w), block_len[b]);
      }
    };
    sim.run_tasks(u_count, pooled, "dense.stage.deal", deal_urn);
    if (pooled) sim.m_parallel_epochs += 1;

    sim.reset_used();

    // Pair initiators with responders per block: a uniformly random perfect
    // matching, sampled group by group as a hypergeometric contingency
    // table. Blocks draw from their own forked sub-streams (fork(U + b)) on
    // multi-urn runs, so the record stage fans out per block; the draws
    // depend only on the dealt role rows and the frozen present prefixes
    // (present lists are append-only, so indices below width stay stable
    // while later groups apply).
    const auto pair_block = [&](std::size_t b) {
      std::vector<PairGroup>& out = groups[b];
      out.clear();
      if (block_len[b] == 0) return;
      const std::size_t u = b / u_count;
      const std::size_t v = b % u_count;
      const Sim::Urn& urn_i = sim.urns[u];
      const Sim::Urn& urn_r = sim.urns[v];
      const std::span<const std::uint64_t> init =
          init_flat.subspan(b * states, width[u]);
      const std::span<std::uint64_t> resp =
          resp_flat.subspan(b * states, width[v]);

      util::Rng forked(0);
      util::Rng* stream = &rng;
      if (!single) {
        forked = rng.fork(u_count + b);
        stream = &forked;
      }

      std::uint64_t resp_pool = block_len[b];
      for (std::size_t a = 0; a < init.size(); ++a) {
        std::uint64_t need = init[a];
        if (need == 0) continue;
        std::uint64_t pool_total = resp_pool;
        for (std::size_t c = 0; c < resp.size() && need > 0; ++c) {
          const std::uint64_t avail = resp[c];
          if (avail == 0) continue;
          const std::uint64_t m =
              hypergeometric(*stream, pool_total, avail, need);
          pool_total -= avail;
          resp[c] -= m;
          need -= m;
          if (m == 0) continue;
          const pp::StateId s = urn_i.present[a];
          const pp::StateId t = urn_r.present[c];
          out.push_back({s, t, transition(s, t), m});
        }
        CIRCLES_DCHECK(need == 0);
        resp_pool -= init[a];
      }
    };
    sim.run_tasks(num_blocks, pooled, "dense.stage.pair", pair_block);

    // Apply the recorded groups in ascending (block, group) order — the
    // exact mutation order of the historical interleaved loop, and the only
    // stage that touches counts, presence, the used masses, or the
    // aggregate view.
    std::uint64_t epoch_productive = 0;
    for (std::size_t b = 0; b < num_blocks; ++b) {
      if (block_len[b] == 0) continue;
      Sim::Urn& urn_i = sim.urns[b / u_count];
      Sim::Urn& urn_r = sim.urns[b % u_count];
      for (const PairGroup& g : groups[b]) {
        urn_i.counts[g.s] -= g.m;
        urn_r.counts[g.t] -= g.m;
        urn_i.counts[g.tr.initiator] += g.m;
        urn_r.counts[g.tr.responder] += g.m;
        sim.note_state(urn_i, g.tr.initiator);
        sim.note_state(urn_r, g.tr.responder);
        sim.touch_used(urn_i, g.tr.initiator, g.m);
        sim.touch_used(urn_r, g.tr.responder, g.m);
        sim.apply_agg(g.s, g.t, g.tr, g.m);
        if (g.tr.initiator != g.s || g.tr.responder != g.t) {
          block_productive[b] += g.m;
        }
      }
      epoch_productive += block_productive[b];
    }

    const std::uint64_t epoch_start = result.interactions;
    result.interactions += len;
    result.state_changes += epoch_productive;
    if (epoch_productive > 0) {
      mark.valid = true;
      mark.exact = false;
      mark.start = epoch_start;
      mark.length = len;
      mark.productive = epoch_productive;
      mark.multi = !single;
      if (!single) {
        mark.seq.assign(seq.begin(), seq.end());
        mark.block_len.assign(block_len.begin(), block_len.end());
        mark.block_productive.assign(block_productive.begin(),
                                     block_productive.end());
      }
    }

    if (collided && result.interactions < options_.max_interactions) {
      // The interaction that ended the epoch re-touches a used agent: a
      // uniform ordered pair of its block conditioned on at least one
      // participant being used, drawn from the per-urn used/fresh masses.
      const std::size_t bu = col_block / u_count;
      const std::size_t bv = col_block % u_count;
      pp::StateId si, sr;
      if (bu == bv) {
        Sim::Urn& urn = sim.urns[bu];
        const std::uint64_t used_total = urn.used_total;
        const std::uint64_t fresh_total = urn.n - used_total;
        const std::uint64_t w_both = used_total * (used_total - 1);
        const std::uint64_t w_mixed = used_total * fresh_total;
        const std::uint64_t r = rng.uniform_below(w_both + 2 * w_mixed);
        if (r < w_both) {
          si = sim.pick_used(urn, used_total, kNoExclude);
          sr = sim.pick_used(urn, used_total - 1, si);
        } else if (r < w_both + w_mixed) {
          si = sim.pick_used(urn, used_total, kNoExclude);
          sr = sim.pick_fresh(urn, fresh_total);
        } else {
          si = sim.pick_fresh(urn, fresh_total);
          sr = sim.pick_used(urn, used_total, kNoExclude);
        }
      } else {
        Sim::Urn& urn_i = sim.urns[bu];
        Sim::Urn& urn_r = sim.urns[bv];
        const std::uint64_t mu = urn_i.used_total;
        const std::uint64_t mv = urn_r.used_total;
        const std::uint64_t fu = urn_i.n - mu;
        const std::uint64_t fv = urn_r.n - mv;
        const std::uint64_t w_both = mu * mv;
        const std::uint64_t w_used_fresh = mu * fv;
        const std::uint64_t w_fresh_used = fu * mv;
        const std::uint64_t r =
            rng.uniform_below(w_both + w_used_fresh + w_fresh_used);
        if (r < w_both) {
          si = sim.pick_used(urn_i, mu, kNoExclude);
          sr = sim.pick_used(urn_r, mv, kNoExclude);
        } else if (r < w_both + w_used_fresh) {
          si = sim.pick_used(urn_i, mu, kNoExclude);
          sr = sim.pick_fresh(urn_r, fv);
        } else {
          si = sim.pick_fresh(urn_i, fu);
          sr = sim.pick_used(urn_r, mv, kNoExclude);
        }
      }
      const pp::Transition tr = transition(si, sr);
      if (tr.initiator != si || tr.responder != sr) {
        sim.apply(bu, bv, si, sr, tr);
        result.state_changes += 1;
        epoch_productive += 1;
        mark.valid = true;
        mark.exact = true;
        mark.index = result.interactions;
      }
      result.interactions += 1;
    }

    // A change-free epoch leaves the configuration — and therefore the
    // active-pair counts — untouched.
    if (epoch_productive > 0) sim.refresh_active();
    if (options_.stop_when_silent && sim.live_active == 0) {
      result.silent = true;
    }
    if (recorder != nullptr) {
      // Epoch-boundary sampling: counts are only well-defined between
      // epochs, so the snapshot carries the boundary's exact interaction
      // index rather than interpolating into the epoch.
      recorder->advance(result.interactions, 0.0, sim.rec_counts(),
                        sim.live_active, sim.rec_present(), sim.rec_urns());
    }
    if (trace_epoch) sim.trace->end("dense.epoch");
  }

  // The deal tasks count their mvhg draws per urn (so pooled stages never
  // share a counter); fold them into the run total here.
  for (std::size_t u = 0; u < u_count; ++u) sim.m_mvhg_draws += mvhg_draws[u];

  // Resolve the exact step of the final change. Within an epoch each
  // block's slot assignment is exchangeable, so its productive slots form a
  // uniform subset of its occurrence positions; only the maximum matters
  // and only for the final epoch. Single-urn epochs are one block, so one
  // last_special_slot draw (the historical stream); multi-urn epochs place
  // each block's last productive occurrence and take the maximum.
  if (mark.valid) {
    if (mark.exact) {
      result.last_change_step = mark.index;
    } else if (!mark.multi) {
      const std::uint64_t slot =
          last_special_slot(rng, mark.length, mark.productive);
      result.last_change_step = mark.start + slot - 1;
    } else {
      std::uint64_t best = 0;
      for (std::size_t b = 0; b < mark.block_len.size(); ++b) {
        if (mark.block_productive[b] == 0) continue;
        const std::uint64_t slot = last_special_slot(
            rng, mark.block_len[b], mark.block_productive[b]);
        // Position (1-based, within the epoch) of block b's slot-th
        // occurrence in the saved sequence.
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < mark.seq.size(); ++i) {
          if (mark.seq[i] == b) {
            ++seen;
            if (seen == slot) {
              best = std::max(best, static_cast<std::uint64_t>(i + 1));
              break;
            }
          }
        }
      }
      CIRCLES_DCHECK(best >= 1);
      result.last_change_step = mark.start + best - 1;
    }
  }
}

}  // namespace circles::dense
