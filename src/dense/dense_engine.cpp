#include "dense/dense_engine.hpp"

#include <algorithm>
#include <cmath>

#include "dense/sampling.hpp"
#include "obs/recorder.hpp"
#include "util/check.hpp"

namespace circles::dense {

namespace {

/// Sentinel "no state excluded" for the categorical walks below.
constexpr std::uint64_t kNoExclude = ~std::uint64_t{0};

/// Where the most recent state change happened, at epoch granularity. The
/// exact step index inside the epoch is only sampled once, at the end of the
/// run, for the epoch that turned out to contain the final change.
struct LastChangeMark {
  bool valid = false;
  bool exact = false;           // index holds the step directly
  std::uint64_t index = 0;      // exact: the step of the change
  std::uint64_t start = 0;      // else: epoch start step ...
  std::uint64_t length = 0;     // ... its collision-free slot count ...
  std::uint64_t productive = 0; // ... and how many slots changed state
};

}  // namespace

DenseEngine::DenseEngine(const pp::Protocol& protocol,
                         pp::EngineOptions options, DenseMode mode,
                         bool use_kernel)
    : protocol_(&protocol),
      options_(options),
      mode_(mode),
      num_states_(protocol.num_states()) {
  CIRCLES_CHECK_MSG(num_states_ >= 1, "protocol needs at least one state");
  if (use_kernel) {
    owned_kernel_ = std::make_shared<const kernel::CompiledProtocol>(protocol);
    kernel_ = owned_kernel_.get();
  }
}

DenseEngine::DenseEngine(std::shared_ptr<const kernel::CompiledProtocol> kernel,
                         pp::EngineOptions options, DenseMode mode)
    : protocol_(&kernel->protocol()),
      owned_kernel_(std::move(kernel)),
      kernel_(owned_kernel_.get()),
      options_(options),
      mode_(mode),
      num_states_(kernel_->num_states()) {}

/// Run-local state shared by both modes.
struct DenseEngine::Sim {
  const DenseEngine& engine;
  std::vector<std::uint64_t>& counts;
  util::Rng& rng;
  const std::uint64_t n;

  // `present` contains every state with count > 0, possibly plus stale
  // zero-count entries; compact() drops the latter. The categorical walks
  // skip zero counts naturally.
  std::vector<pp::StateId> present;
  std::vector<std::uint8_t> in_present;

  // Number of ordered agent pairs whose interaction would change a state.
  // Zero iff the configuration is silent (the exact certificate).
  std::uint64_t active = 0;

  Sim(const DenseEngine& engine, DenseConfig& config, util::Rng& rng)
      : engine(engine),
        counts(config.counts),
        rng(rng),
        n(config.n()),
        present(config.present_states()),
        in_present(engine.num_states_, 0) {
    for (const pp::StateId s : present) in_present[s] = 1;
    refresh_active();
  }

  void note_state(pp::StateId s) {
    if (!in_present[s]) {
      in_present[s] = 1;
      present.push_back(s);
    }
  }

  void compact() {
    std::size_t w = 0;
    for (const pp::StateId s : present) {
      if (counts[s] > 0) {
        present[w++] = s;
      } else {
        in_present[s] = 0;
      }
    }
    present.resize(w);
  }

  void refresh_active() {
    compact();
    std::uint64_t sum = 0;
    const kernel::CompiledProtocol* k = engine.kernel_;
    if (k != nullptr && k->has_adjacency()) {
      // The kernel's active-responder index skips null pairs wholesale; the
      // sum is order-independent, so this matches the fallback bit for bit.
      for (const pp::StateId s : present) {
        for (const pp::StateId t : k->active_responders(s)) {
          sum += counts[s] * (counts[t] - (s == t ? 1 : 0));
        }
      }
    } else {
      for (const pp::StateId s : present) {
        for (const pp::StateId t : present) {
          if (!engine.nonnull(s, t)) continue;
          sum += counts[s] * (counts[t] - (s == t ? 1 : 0));
        }
      }
    }
    active = sum;
  }

  /// Weighted draw of a state from the counts; `exclude` (a StateId, or
  /// kNoExclude) has its count reduced by one — the "responder cannot be
  /// the initiator" correction. `total` must equal the walked mass.
  pp::StateId pick_state(std::uint64_t total, std::uint64_t exclude) {
    std::uint64_t r = rng.uniform_below(total);
    for (const pp::StateId s : present) {
      std::uint64_t c = counts[s];
      if (s == exclude) c -= 1;
      if (r < c) return s;
      r -= c;
    }
    CIRCLES_CHECK_MSG(false, "dense state draw walked past the population");
    return present.back();
  }

  void apply(pp::StateId si, pp::StateId sr, const pp::Transition& tr) {
    counts[si] -= 1;
    counts[sr] -= 1;
    counts[tr.initiator] += 1;
    counts[tr.responder] += 1;
    note_state(tr.initiator);
    note_state(tr.responder);
  }
};

pp::RunResult DenseEngine::run(DenseConfig& config, std::uint64_t seed,
                               obs::Recorder* recorder) const {
  util::Rng rng(seed);
  return run(config, rng, recorder);
}

pp::RunResult DenseEngine::run(DenseConfig& config, util::Rng& rng,
                               obs::Recorder* recorder) const {
  CIRCLES_CHECK_MSG(config.num_states() == num_states_,
                    "configuration does not match the engine's protocol");
  Sim sim(*this, config, rng);
  CIRCLES_CHECK_MSG(sim.n >= 2, "dense engine requires at least two agents");
  // The active-pair count is bounded by n(n-1), which must fit in uint64;
  // beyond 2^32 agents the arithmetic would silently wrap.
  CIRCLES_CHECK_MSG(sim.n <= (1ull << 32),
                    "dense engine supports at most 2^32 agents");

  pp::RunResult result;
  if (options_.stop_when_silent && sim.active == 0) result.silent = true;

  if (recorder != nullptr) {
    obs::ProbeContext ctx;
    ctx.protocol = protocol_;
    ctx.kernel = kernel_;
    ctx.n = sim.n;
    recorder->begin(ctx, sim.counts, sim.active, sim.present);
  }

  if (mode_ == DenseMode::kPerStep) {
    while (!result.silent &&
           result.interactions < options_.max_interactions) {
      const pp::StateId si = sim.pick_state(sim.n, kNoExclude);
      const pp::StateId sr = sim.pick_state(sim.n - 1, si);
      const pp::Transition tr = transition(si, sr);
      if (tr.initiator != si || tr.responder != sr) {
        sim.apply(si, sr, tr);
        result.state_changes += 1;
        result.last_change_step = result.interactions;
        sim.refresh_active();
      }
      result.interactions += 1;
      if (options_.stop_when_silent && sim.active == 0) result.silent = true;
      if (recorder != nullptr) {
        recorder->advance(result.interactions, 0.0, sim.counts, sim.active,
                          sim.present);
      }
    }
  } else {
    run_batched(sim, result, recorder);
  }

  if (!result.silent && result.interactions >= options_.max_interactions) {
    result.budget_exhausted = true;
    result.silent = sim.active == 0;
  } else if (result.silent) {
    // The run stopped on the exact silence certificate: the minimal stopping
    // time is the step after the final change (the epoch tail processed
    // past it contains only null interactions).
    result.interactions =
        result.state_changes == 0 ? 0 : result.last_change_step + 1;
  }

  result.final_outputs = config.output_histogram(*protocol_);
  if (recorder != nullptr) {
    recorder->finish(result.interactions, 0.0, sim.counts, sim.active,
                     sim.present);
  }
  return result;
}

void DenseEngine::run_batched(Sim& sim, pp::RunResult& result,
                              obs::Recorder* recorder) const {
  const std::uint64_t n = sim.n;
  auto& counts = sim.counts;
  auto& rng = sim.rng;
  const CollisionFreeRunLength run_length(n);
  const double total_pairs =
      static_cast<double>(n) * static_cast<double>(n - 1);

  LastChangeMark mark;

  // Per-epoch scratch, hoisted out of the loop. `used` tracks the
  // post-transition states of this epoch's participants (indexed by state,
  // reset via the `touched` list).
  std::vector<std::uint64_t> pool, drawn, init, resp;
  std::vector<std::uint64_t> used(num_states_, 0);
  std::vector<pp::StateId> touched;

  const auto touch_used = [&](pp::StateId s, std::uint64_t m) {
    if (used[s] == 0) touched.push_back(s);
    used[s] += m;
  };

  while (!result.silent && result.interactions < options_.max_interactions) {
    const std::uint64_t remaining =
        options_.max_interactions - result.interactions;

    // Sparse-activity fast-forward: an epoch costs a fixed O(present^2)
    // regardless of how many of its interactions change state, while the
    // geometric path pays O(present^2) per *change* (the null run in
    // between is one log). Below ~3 expected changes per epoch the
    // geometric path wins; it is an exact sampler either way, so the
    // threshold is purely a performance knob.
    const double p_active = static_cast<double>(sim.active) / total_pairs;
    if (p_active * run_length.mean_length() < 3.0) {
      std::uint64_t nulls = remaining;
      if (p_active > 0.0) {
        const double g = std::floor(std::log1p(-rng.uniform01()) /
                                    std::log1p(-p_active));
        if (g < static_cast<double>(remaining)) {
          nulls = static_cast<std::uint64_t>(g);
        }
      }
      if (nulls >= remaining) {
        result.interactions = options_.max_interactions;
        break;  // the budget ran out inside a null run
      }
      result.interactions += nulls;
      // The next interaction is a state change: draw the ordered pair
      // conditioned on being active (weights c_s * (c_t - [s == t])).
      std::uint64_t r = rng.uniform_below(sim.active);
      pp::StateId si = 0, sr = 0;
      bool found = false;
      for (const pp::StateId s : sim.present) {
        if (counts[s] == 0) continue;
        for (const pp::StateId t : sim.present) {
          if (!nonnull(s, t)) continue;
          const std::uint64_t w = counts[s] * (counts[t] - (s == t ? 1 : 0));
          if (r < w) {
            si = s;
            sr = t;
            found = true;
            break;
          }
          r -= w;
        }
        if (found) break;
      }
      CIRCLES_CHECK_MSG(found, "active-pair draw walked past the count");
      sim.apply(si, sr, transition(si, sr));
      result.state_changes += 1;
      result.last_change_step = result.interactions;
      mark = {.valid = true, .exact = true, .index = result.interactions};
      result.interactions += 1;
      sim.refresh_active();
      if (options_.stop_when_silent && sim.active == 0) result.silent = true;
      if (recorder != nullptr) {
        // One collapsed sample per fast-forward jump: the counts were
        // constant across the skipped null run, so the post-change index is
        // the exact position of this observation.
        recorder->advance(result.interactions, 0.0, sim.counts, sim.active,
                          sim.present);
      }
      continue;
    }

    // One epoch: L collision-free interactions (2L distinct agents), then
    // the colliding interaction that ended the run, then reset.
    std::uint64_t len = run_length.sample(rng);
    bool collided = true;
    if (len >= remaining) {
      len = remaining;
      collided = false;  // budget cut the epoch before any collision
    }

    const std::size_t width = sim.present.size();
    pool.resize(width);
    drawn.resize(width);
    init.resize(width);
    resp.resize(width);
    for (std::size_t i = 0; i < width; ++i) pool[i] = counts[sim.present[i]];

    // States of the 2L distinct participants, then which L are initiators.
    multivariate_hypergeometric(rng, pool, 2 * len, drawn);
    multivariate_hypergeometric(rng, drawn, len, init);
    for (std::size_t i = 0; i < width; ++i) resp[i] = drawn[i] - init[i];

    for (const pp::StateId s : touched) used[s] = 0;
    touched.clear();

    // Pair initiators with responders: a uniformly random perfect matching,
    // sampled group by group as a hypergeometric contingency table.
    std::uint64_t epoch_productive = 0;
    std::uint64_t resp_pool = len;
    for (std::size_t a = 0; a < width; ++a) {
      std::uint64_t need = init[a];
      if (need == 0) continue;
      std::uint64_t pool_total = resp_pool;
      for (std::size_t b = 0; b < width && need > 0; ++b) {
        const std::uint64_t avail = resp[b];
        if (avail == 0) continue;
        const std::uint64_t m = hypergeometric(rng, pool_total, avail, need);
        pool_total -= avail;
        resp[b] -= m;
        need -= m;
        if (m == 0) continue;
        const pp::StateId s = sim.present[a];
        const pp::StateId t = sim.present[b];
        const pp::Transition tr = transition(s, t);
        counts[s] -= m;
        counts[t] -= m;
        counts[tr.initiator] += m;
        counts[tr.responder] += m;
        sim.note_state(tr.initiator);
        sim.note_state(tr.responder);
        touch_used(tr.initiator, m);
        touch_used(tr.responder, m);
        if (tr.initiator != s || tr.responder != t) epoch_productive += m;
      }
      CIRCLES_DCHECK(need == 0);
      resp_pool -= init[a];
    }

    const std::uint64_t epoch_start = result.interactions;
    result.interactions += len;
    result.state_changes += epoch_productive;
    if (epoch_productive > 0) {
      mark = {.valid = true,
              .exact = false,
              .index = 0,
              .start = epoch_start,
              .length = len,
              .productive = epoch_productive};
    }

    if (collided && result.interactions < options_.max_interactions) {
      // The interaction that ended the epoch re-touches a used agent.
      const std::uint64_t used_total = 2 * len;
      const std::uint64_t fresh_total = n - used_total;
      const std::uint64_t w_both = used_total * (used_total - 1);
      const std::uint64_t w_mixed = used_total * fresh_total;

      const auto pick_used = [&](std::uint64_t total, std::uint64_t exclude) {
        std::uint64_t r = rng.uniform_below(total);
        for (const pp::StateId s : touched) {
          std::uint64_t c = used[s];
          if (s == exclude) c -= 1;
          if (r < c) return s;
          r -= c;
        }
        CIRCLES_CHECK_MSG(false, "used-agent draw walked past the epoch");
        return touched.back();
      };
      const auto pick_fresh = [&](std::uint64_t total) {
        std::uint64_t r = rng.uniform_below(total);
        for (const pp::StateId s : sim.present) {
          const std::uint64_t c = counts[s] - used[s];
          if (r < c) return s;
          r -= c;
        }
        CIRCLES_CHECK_MSG(false, "fresh-agent draw walked past the epoch");
        return sim.present.back();
      };

      pp::StateId si, sr;
      const std::uint64_t r = rng.uniform_below(w_both + 2 * w_mixed);
      if (r < w_both) {
        si = pick_used(used_total, kNoExclude);
        sr = pick_used(used_total - 1, si);
      } else if (r < w_both + w_mixed) {
        si = pick_used(used_total, kNoExclude);
        sr = pick_fresh(fresh_total);
      } else {
        si = pick_fresh(fresh_total);
        sr = pick_used(used_total, kNoExclude);
      }
      const pp::Transition tr = transition(si, sr);
      if (tr.initiator != si || tr.responder != sr) {
        sim.apply(si, sr, tr);
        result.state_changes += 1;
        epoch_productive += 1;
        mark = {.valid = true, .exact = true, .index = result.interactions};
      }
      result.interactions += 1;
    }

    // A change-free epoch leaves the configuration — and therefore the
    // active-pair count — untouched.
    if (epoch_productive > 0) sim.refresh_active();
    if (options_.stop_when_silent && sim.active == 0) result.silent = true;
    if (recorder != nullptr) {
      // Epoch-boundary sampling: counts are only well-defined between
      // epochs, so the snapshot carries the boundary's exact interaction
      // index rather than interpolating into the epoch.
      recorder->advance(result.interactions, 0.0, sim.counts, sim.active,
                        sim.present);
    }
  }

  // Resolve the exact step of the final change. Within an epoch the slot
  // order is exchangeable, so the productive slots form a uniform subset;
  // only their maximum matters and only for the final epoch.
  if (mark.valid) {
    if (mark.exact) {
      result.last_change_step = mark.index;
    } else {
      const std::uint64_t slot =
          last_special_slot(rng, mark.length, mark.productive);
      result.last_change_step = mark.start + slot - 1;
    }
  }
}

}  // namespace circles::dense
