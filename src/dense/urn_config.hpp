// UrnConfig: a population partitioned into urns (clusters), each stored as
// per-state counts.
//
// This is the count-level image of a clustered population: urn u holds the
// agents of cluster u, and because a lumpable scheduler (pp::UrnLumping)
// treats agents within a cluster as exchangeable, the per-urn count matrix
// is a complete description of the process state. Memory is
// O(num_urns * num_states), independent of n — the same property that lets
// DenseConfig reach n = 10^8, now for clustered topologies.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/workload.hpp"
#include "dense/dense_config.hpp"
#include "pp/population.hpp"
#include "pp/protocol.hpp"
#include "util/rng.hpp"

namespace circles::dense {

struct UrnConfig {
  /// urns[u][s] = number of agents of cluster u in state s; every row has
  /// size protocol.num_states().
  std::vector<std::vector<std::uint64_t>> urns;

  /// The standard clustered initial configuration: materialize the workload
  /// and deal its agents into urns of the given sizes uniformly at random
  /// (sequential multivariate-hypergeometric splits — exactly the per-range
  /// color distribution a uniformly shuffled agent array induces on id-range
  /// clusters, so the urn process starts from the same distribution as
  /// pp::Engine + ClusteredScheduler). Consumes `rng` deterministically.
  static UrnConfig from_workload(const pp::Protocol& protocol,
                                 const analysis::Workload& workload,
                                 std::span<const std::uint64_t> sizes,
                                 util::Rng& rng);

  /// Wraps a single-urn configuration (moves the counts).
  static UrnConfig from_dense(DenseConfig config);

  /// Snapshot of an explicit agent array partitioned by id ranges of the
  /// given sizes (cross-validation against the agent backend).
  static UrnConfig from_population(const pp::Protocol& protocol,
                                   const pp::Population& population,
                                   std::span<const std::uint64_t> sizes);

  std::size_t num_urns() const { return urns.size(); }
  std::uint64_t num_states() const { return urns.empty() ? 0 : urns[0].size(); }
  std::uint64_t urn_n(std::size_t u) const;
  std::uint64_t n() const;
  std::vector<std::uint64_t> sizes() const;

  /// Summed counts across urns (what aggregate observers see).
  DenseConfig aggregate() const;

  /// Output-symbol histogram of the aggregate configuration.
  std::vector<std::uint64_t> output_histogram(
      const pp::Protocol& protocol) const;

  /// Debug rendering: "urn0{...} | urn1{...}".
  std::string to_string(const pp::Protocol& protocol) const;

  bool operator==(const UrnConfig&) const = default;
};

}  // namespace circles::dense
