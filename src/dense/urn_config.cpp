#include "dense/urn_config.hpp"

#include <sstream>

#include "dense/sampling.hpp"
#include "util/check.hpp"

namespace circles::dense {

UrnConfig UrnConfig::from_workload(const pp::Protocol& protocol,
                                   const analysis::Workload& workload,
                                   std::span<const std::uint64_t> sizes,
                                   util::Rng& rng) {
  CIRCLES_CHECK_MSG(workload.k() == protocol.num_colors(),
                    "workload color count does not match the protocol");
  CIRCLES_CHECK_MSG(!sizes.empty(), "urn config needs at least one urn");
  std::uint64_t total = 0;
  for (const std::uint64_t s : sizes) total += s;
  CIRCLES_CHECK_MSG(total == workload.n(),
                    "urn sizes do not sum to the workload's population");

  UrnConfig config;
  config.urns.assign(sizes.size(),
                     std::vector<std::uint64_t>(protocol.num_states(), 0));

  // Deal the color multiset into the urns: urn u draws sizes[u] agents
  // without replacement from what the earlier urns left behind. The final
  // urn takes the remainder outright (the degenerate draw is deterministic).
  std::vector<std::uint64_t> remaining = workload.counts;
  std::vector<std::uint64_t> share(workload.k(), 0);
  for (std::size_t u = 0; u < sizes.size(); ++u) {
    if (u + 1 == sizes.size()) {
      share = remaining;
    } else {
      multivariate_hypergeometric(rng, remaining, sizes[u], share);
      for (std::size_t c = 0; c < remaining.size(); ++c) {
        remaining[c] -= share[c];
      }
    }
    for (pp::ColorId c = 0; c < workload.k(); ++c) {
      config.urns[u][protocol.input(c)] += share[c];
    }
  }
  return config;
}

UrnConfig UrnConfig::from_dense(DenseConfig dense) {
  UrnConfig config;
  config.urns.push_back(std::move(dense.counts));
  return config;
}

UrnConfig UrnConfig::from_population(const pp::Protocol& protocol,
                                     const pp::Population& population,
                                     std::span<const std::uint64_t> sizes) {
  std::uint64_t total = 0;
  for (const std::uint64_t s : sizes) total += s;
  CIRCLES_CHECK_MSG(total == population.size(),
                    "urn sizes do not sum to the population");
  UrnConfig config;
  config.urns.assign(sizes.size(),
                     std::vector<std::uint64_t>(protocol.num_states(), 0));
  std::size_t u = 0;
  std::uint64_t within = 0;
  for (const pp::StateId s : population.agents()) {
    while (within == sizes[u]) {
      within = 0;
      ++u;
    }
    config.urns[u][s] += 1;
    ++within;
  }
  return config;
}

std::uint64_t UrnConfig::urn_n(std::size_t u) const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : urns[u]) total += c;
  return total;
}

std::uint64_t UrnConfig::n() const {
  std::uint64_t total = 0;
  for (std::size_t u = 0; u < urns.size(); ++u) total += urn_n(u);
  return total;
}

std::vector<std::uint64_t> UrnConfig::sizes() const {
  std::vector<std::uint64_t> out;
  out.reserve(urns.size());
  for (std::size_t u = 0; u < urns.size(); ++u) out.push_back(urn_n(u));
  return out;
}

DenseConfig UrnConfig::aggregate() const {
  DenseConfig dense;
  dense.counts.assign(num_states(), 0);
  for (const auto& urn : urns) {
    for (std::size_t s = 0; s < urn.size(); ++s) dense.counts[s] += urn[s];
  }
  return dense;
}

std::vector<std::uint64_t> UrnConfig::output_histogram(
    const pp::Protocol& protocol) const {
  return aggregate().output_histogram(protocol);
}

std::string UrnConfig::to_string(const pp::Protocol& protocol) const {
  std::ostringstream os;
  for (std::size_t u = 0; u < urns.size(); ++u) {
    if (u) os << " | ";
    DenseConfig view;
    view.counts = urns[u];
    os << "urn" << u << "{" << view.to_string(protocol) << "}";
  }
  return os.str();
}

}  // namespace circles::dense
