// DenseEngine: simulate lumpable schedulers directly on counts.
//
// The agent-array engine (pp::Engine) costs O(1) per interaction plus two
// random accesses into an O(n) array; at n >= 10^7 those accesses are cache
// misses and the array itself dominates memory. The dense engine never
// materializes agents — a configuration is its count vector(s) and a
// simulation step is a draw from the counts.
//
// The engine's data model is a *multi-urn* partition: the population splits
// into urns (clusters), each holding its own count vector, and an ordered
// urn-pair rate matrix (pp::UrnLumping) fixes which block every interaction
// lands in. The uniform scheduler is the 1-urn specialization; the clustered
// scheduler is the canonical multi-urn instance (its lumping() IS this
// contract). Two modes:
//
//  * kPerStep — every interaction samples the urn-pair block (skipped when
//    there is one urn), then the ordered (initiator, responder) state pair
//    exactly as the lumped scheduler would: initiator weighted by the
//    initiator urn's counts, responder by the responder urn's counts (with
//    the initiator removed on intra blocks). A null interaction costs
//    O(present states) and a state change O(U^2 * present^2) (the per-block
//    active-pair counts are recomputed), all independent of n. This is the
//    reference semantics used by the cross-validation tests.
//
//  * kBatched — the sqrt(n) batching of Berenbrink et al. (arXiv:1805.05157,
//    "Simulating Population Protocols in Sub-Constant Time per
//    Interaction") generalized across the block structure: sample the exact
//    collision-free prefix (single urn: precomputed survival table, one
//    uniform; multi-urn: the exact sequential block/collision chain — all
//    participants distinct *within each urn*), draw the participants' states
//    per urn via multivariate hypergeometrics, split them across their
//    initiator/responder roles per block, pair initiators with responders by
//    hypergeometric contingency sampling per block, apply all transitions to
//    the counts at once, then resolve the single colliding interaction
//    explicitly and start the next epoch. When activity is sparse (fewer
//    than ~3 expected state changes per epoch) the engine switches to
//    geometric fast-forward: the number of null interactions before the next
//    state change is Geometric(p) with p = sum_b rate_b * active_b /
//    pairs_b, so null-dominated phases — the dominant regime of slow-mixing
//    clustered runs — cost O(U^2 * present^2) per state change instead of
//    O(1) per interaction.
//
// Both modes sample the same lumped Markov chain as pp::Engine under the
// corresponding scheduler (agents within an urn are anonymous, so the
// per-urn count process is exactly lumpable): state_changes,
// last_change_step and the final configuration are identical in
// distribution. Silence is detected exactly — the per-block counts of
// active ordered pairs, summed over blocks with positive rate, hit zero —
// so a silent run reports interactions = last_change_step + 1, without the
// agent engine's streak-heuristic detection overhead.
//
// Determinism: single-urn runs consume the main RNG stream exactly as the
// historical single-urn engine did (bitwise-identical results). Multi-urn
// epochs give every urn and every urn-pair block a sub-stream derived with
// util::Rng::fork, so per-block draws are reproducible regardless of block
// iteration order.
//
// Intra-run parallelism: that same sub-stream structure makes the batched
// multi-urn epoch stages embarrassingly parallel — per-urn participant
// deals and per-block contingency pairing write task-indexed disjoint
// state, and the recorded transition groups are applied serially in
// ascending (block, group) order. EngineOptions::run_threads > 1 fans the
// stages (and the per-block active-pair refresh) out across
// util::ThreadPool::shared(); results are bitwise identical for every
// thread count, including 1. Single-urn runs and per-step mode never pool.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dense/dense_config.hpp"
#include "dense/urn_config.hpp"
#include "kernel/compiled_protocol.hpp"
#include "pp/engine.hpp"
#include "pp/protocol.hpp"
#include "pp/run_result.hpp"
#include "pp/scheduler.hpp"
#include "util/rng.hpp"

namespace circles::obs {
class Recorder;
}

namespace circles::dense {

enum class DenseMode {
  kPerStep,  // one sampled state pair per interaction
  kBatched,  // collision-free epochs of ~sqrt(n) interactions
};

class DenseEngine {
 public:
  /// Compiles a kernel::CompiledProtocol for `protocol` (dense transition
  /// table when the state space fits the kernel's budget, lazily-hashed
  /// pair cache otherwise) and samples through it. `use_kernel = false`
  /// keeps the legacy virtual-dispatch path, solely as the baseline the
  /// bench_throughput virtual-vs-compiled section measures; results are
  /// bitwise identical either way. EngineOptions is shared with pp::Engine:
  /// max_interactions and stop_when_silent apply; initial_silence_streak is
  /// meaningless here (silence is exact) and ignored. `lumping` fixes the
  /// urn structure: empty (default) means a single urn sized by whatever
  /// configuration run() receives (the uniform scheduler); a validated
  /// multi-urn lumping makes run(UrnConfig&) simulate that block structure.
  explicit DenseEngine(const pp::Protocol& protocol,
                       pp::EngineOptions options = {},
                       DenseMode mode = DenseMode::kPerStep,
                       bool use_kernel = true, pp::UrnLumping lumping = {});

  /// Shares a prebuilt immutable kernel (the BatchRunner compiles one per
  /// spec and hands it to every trial on every thread).
  DenseEngine(std::shared_ptr<const kernel::CompiledProtocol> kernel,
              pp::EngineOptions options = {},
              DenseMode mode = DenseMode::kPerStep,
              pp::UrnLumping lumping = {});

  /// Advances `config` in place until exact silence (if stop_when_silent)
  /// or budget exhaustion. Thread-safe: all mutable state is local, so one
  /// engine may serve concurrent trials. `recorder`, when non-null,
  /// receives count snapshots at its grid's cadence — exact per-interaction
  /// indices in per-step mode, epoch-boundary indices in batched mode (the
  /// recorder is per-trial state and does not affect thread safety of the
  /// engine itself). Multi-urn hosts feed the recorder aggregate counts
  /// (plus the per-urn matrix on the Snapshot). The DenseConfig overloads
  /// require a single-urn engine; the UrnConfig overloads accept either (a
  /// 1-urn UrnConfig on a single-urn engine consumes the identical RNG
  /// stream as the DenseConfig path).
  pp::RunResult run(DenseConfig& config, util::Rng& rng,
                    obs::Recorder* recorder = nullptr) const;
  pp::RunResult run(DenseConfig& config, std::uint64_t seed,
                    obs::Recorder* recorder = nullptr) const;
  pp::RunResult run(UrnConfig& config, util::Rng& rng,
                    obs::Recorder* recorder = nullptr) const;
  pp::RunResult run(UrnConfig& config, std::uint64_t seed,
                    obs::Recorder* recorder = nullptr) const;

  const pp::Protocol& protocol() const { return *protocol_; }
  /// Null iff constructed with use_kernel = false.
  const kernel::CompiledProtocol* compiled() const { return kernel_; }
  DenseMode mode() const { return mode_; }
  const pp::EngineOptions& options() const { return options_; }
  /// Empty sizes = single urn of whatever n the configuration carries.
  const pp::UrnLumping& lumping() const { return lumping_; }
  /// Resolved intra-run worker budget: EngineOptions::run_threads with 0
  /// expanded to the hardware's core count. 1 = fully serial.
  std::uint32_t run_threads() const { return run_threads_; }

 private:
  struct Sim;

  /// The 1x1 rate matrix of the uniform scheduler (single-urn runs).
  static const double kUniformRate;

  pp::RunResult run_impl(Sim& sim, obs::Recorder* recorder) const;
  void run_per_step(Sim& sim, pp::RunResult& result,
                    obs::Recorder* recorder) const;
  void run_batched(Sim& sim, pp::RunResult& result,
                   obs::Recorder* recorder) const;

  pp::Transition transition(pp::StateId a, pp::StateId b) const {
    if (kernel_ != nullptr) return kernel_->transition(a, b);
    return protocol_->transition(a, b);
  }
  bool nonnull(pp::StateId a, pp::StateId b) const {
    if (kernel_ != nullptr) return kernel_->nonnull(a, b);
    const pp::Transition tr = protocol_->transition(a, b);
    return tr.initiator != a || tr.responder != b;
  }

  const pp::Protocol* protocol_;
  std::shared_ptr<const kernel::CompiledProtocol> owned_kernel_;
  const kernel::CompiledProtocol* kernel_ = nullptr;  // null: virtual path
  pp::EngineOptions options_;
  DenseMode mode_;
  std::uint64_t num_states_;
  pp::UrnLumping lumping_;
  std::uint32_t run_threads_ = 1;  // resolved at construction (0 -> cores)
};

}  // namespace circles::dense
