// DenseEngine: simulate the uniform-random scheduler directly on counts.
//
// The agent-array engine (pp::Engine) costs O(1) per interaction plus two
// random accesses into an O(n) array; at n >= 10^7 those accesses are cache
// misses and the array itself dominates memory. The dense engine never
// materializes agents — a configuration is its count vector (DenseConfig)
// and a simulation step is a draw from the counts. Two modes:
//
//  * kPerStep — every interaction samples the ordered (initiator, responder)
//    state pair exactly as the uniform scheduler would: initiator weighted
//    by counts, responder by counts with the initiator removed. A null
//    interaction costs O(present states) and a state change O(present^2)
//    (the active-pair count is recomputed), all independent of n. This is
//    the reference semantics used by the cross-validation tests.
//
//  * kBatched — the sqrt(n) batching of Berenbrink et al. (arXiv:1805.05157,
//    "Simulating Population Protocols in Sub-Constant Time per
//    Interaction"): sample the exact length L of the collision-free prefix
//    (all 2L agents distinct — birthday bound makes E[L] ~ 0.88 sqrt(n)),
//    draw the participants' states via multivariate hypergeometrics, pair
//    initiators with responders by hypergeometric contingency sampling,
//    apply all L transitions to the counts at once, then resolve the single
//    colliding interaction explicitly and start the next epoch. When
//    activity is sparse (fewer than ~3 expected state changes per epoch)
//    the engine switches to geometric fast-forward: the number of null
//    interactions before the next state change is Geometric(p) with
//    p = active_pairs / (n(n-1)), so null-dominated phases cost
//    O(present^2) per state change instead of O(1) per interaction.
//
// Both modes sample the same lumped Markov chain as pp::Engine under the
// uniform scheduler (agents are anonymous, so the count process is exactly
// lumpable): state_changes, last_change_step and the final configuration
// are identical in distribution. Silence is detected exactly — the count of
// active ordered pairs (pairs whose transition changes a state) hits zero —
// so a silent run reports interactions = last_change_step + 1, without the
// agent engine's streak-heuristic detection overhead.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dense/dense_config.hpp"
#include "kernel/compiled_protocol.hpp"
#include "pp/engine.hpp"
#include "pp/protocol.hpp"
#include "pp/run_result.hpp"
#include "util/rng.hpp"

namespace circles::obs {
class Recorder;
}

namespace circles::dense {

enum class DenseMode {
  kPerStep,  // one sampled state pair per interaction
  kBatched,  // collision-free epochs of ~sqrt(n) interactions
};

class DenseEngine {
 public:
  /// Compiles a kernel::CompiledProtocol for `protocol` (dense transition
  /// table when the state space fits the kernel's budget, lazily-hashed
  /// pair cache otherwise) and samples through it. `use_kernel = false`
  /// keeps the legacy virtual-dispatch path, solely as the baseline the
  /// bench_throughput virtual-vs-compiled section measures; results are
  /// bitwise identical either way. EngineOptions is shared with pp::Engine:
  /// max_interactions and stop_when_silent apply; initial_silence_streak is
  /// meaningless here (silence is exact) and ignored.
  explicit DenseEngine(const pp::Protocol& protocol,
                       pp::EngineOptions options = {},
                       DenseMode mode = DenseMode::kPerStep,
                       bool use_kernel = true);

  /// Shares a prebuilt immutable kernel (the BatchRunner compiles one per
  /// spec and hands it to every trial on every thread).
  DenseEngine(std::shared_ptr<const kernel::CompiledProtocol> kernel,
              pp::EngineOptions options = {},
              DenseMode mode = DenseMode::kPerStep);

  /// Advances `config` in place until exact silence (if stop_when_silent)
  /// or budget exhaustion. Thread-safe: all mutable state is local, so one
  /// engine may serve concurrent trials. `recorder`, when non-null,
  /// receives count snapshots at its grid's cadence — exact per-interaction
  /// indices in per-step mode, epoch-boundary indices in batched mode (the
  /// recorder is per-trial state and does not affect thread safety of the
  /// engine itself).
  pp::RunResult run(DenseConfig& config, util::Rng& rng,
                    obs::Recorder* recorder = nullptr) const;
  pp::RunResult run(DenseConfig& config, std::uint64_t seed,
                    obs::Recorder* recorder = nullptr) const;

  const pp::Protocol& protocol() const { return *protocol_; }
  /// Null iff constructed with use_kernel = false.
  const kernel::CompiledProtocol* compiled() const { return kernel_; }
  DenseMode mode() const { return mode_; }
  const pp::EngineOptions& options() const { return options_; }

 private:
  struct Sim;

  void run_batched(Sim& sim, pp::RunResult& result,
                   obs::Recorder* recorder) const;

  pp::Transition transition(pp::StateId a, pp::StateId b) const {
    if (kernel_ != nullptr) return kernel_->transition(a, b);
    return protocol_->transition(a, b);
  }
  bool nonnull(pp::StateId a, pp::StateId b) const {
    if (kernel_ != nullptr) return kernel_->nonnull(a, b);
    const pp::Transition tr = protocol_->transition(a, b);
    return tr.initiator != a || tr.responder != b;
  }

  const pp::Protocol* protocol_;
  std::shared_ptr<const kernel::CompiledProtocol> owned_kernel_;
  const kernel::CompiledProtocol* kernel_ = nullptr;  // null: virtual path
  pp::EngineOptions options_;
  DenseMode mode_;
  std::uint64_t num_states_;
};

}  // namespace circles::dense
