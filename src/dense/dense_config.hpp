// DenseConfig: a population represented as per-state counts.
//
// This is Definition 1.1's configuration multiset stored directly: one
// count per protocol state, no agent array. Memory and construction are
// O(num_states), independent of the population size n, which is what lets
// the dense engines run n = 10^8+ populations that the agent-array
// representation cannot even allocate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/workload.hpp"
#include "pp/population.hpp"
#include "pp/protocol.hpp"

namespace circles::dense {

struct DenseConfig {
  std::vector<std::uint64_t> counts;  // indexed by StateId, size num_states

  /// The standard initial configuration of a workload: workload.counts[c]
  /// agents start in protocol.input(c).
  static DenseConfig from_workload(const pp::Protocol& protocol,
                                   const analysis::Workload& workload);

  /// Snapshot of an explicit agent-array population (cross-validation).
  static DenseConfig from_population(const pp::Protocol& protocol,
                                     const pp::Population& population);

  std::uint64_t n() const;
  std::uint64_t num_states() const { return counts.size(); }
  std::uint64_t count(pp::StateId state) const { return counts[state]; }

  /// States with nonzero count, ascending.
  std::vector<pp::StateId> present_states() const;

  /// Output-symbol histogram (sized num_output_symbols), the shape
  /// pp::RunResult::final_outputs wants.
  std::vector<std::uint64_t> output_histogram(
      const pp::Protocol& protocol) const;

  /// Debug rendering: sorted "state_name x count" list, matching
  /// pp::Population::to_string.
  std::string to_string(const pp::Protocol& protocol) const;

  bool operator==(const DenseConfig&) const = default;
};

}  // namespace circles::dense
