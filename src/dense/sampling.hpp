// Exact samplers for the dense (count-based) engines.
//
// The batched engine advances ~sqrt(n) interactions per epoch; turning an
// epoch into O(present_states^2) work instead of O(sqrt(n)) requires draws
// from hypergeometric distributions ("how many of the 2L distinct agents of
// this epoch hold state s?"). Everything here is built directly on util::Rng
// inversion, so results are deterministic per seed; the only platform
// dependence is ordinary double arithmetic, the same caliber as the
// Gillespie module's exponential clocks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace circles::dense {

/// log(x!) — table-backed for small x, Stirling series beyond (relative
/// error < 1e-14 there, far below the samplers' inversion tolerance).
double log_factorial(std::uint64_t x);

/// Forces the shared log-factorial table to build now. The table is a
/// thread-safe magic static either way; warming it from an engine's serial
/// setup keeps the one-time initialization (and its guard) off the first
/// parallel epoch's worker threads.
void warm_log_factorial();

/// log of the binomial coefficient C(n, k). Requires k <= n.
double log_choose(std::uint64_t n, std::uint64_t k);

/// Number of "success" items among `draws` draws without replacement from a
/// population of `total` items containing `successes` successes. Exact
/// inversion by chop-down from the mode: one uniform draw from `rng`,
/// O(stddev) expected walk length. Degenerate supports return without
/// consuming randomness.
std::uint64_t hypergeometric(util::Rng& rng, std::uint64_t total,
                             std::uint64_t successes, std::uint64_t draws);

/// Multivariate hypergeometric: splits `draws` items drawn without
/// replacement from sum(counts) across the categories of `counts`.
/// `out` (same size as `counts`) receives the per-category draw counts,
/// which always sum to `draws`. Requires draws <= sum(counts).
void multivariate_hypergeometric(util::Rng& rng,
                                 std::span<const std::uint64_t> counts,
                                 std::uint64_t draws,
                                 std::span<std::uint64_t> out);

/// Distribution of the collision-free prefix of the uniform scheduler over n
/// agents: P(the first j interactions touch 2j distinct agents) =
/// prod_{i<j} (n-2i)(n-2i-1) / (n(n-1)). One instance precomputes this
/// survival table for a fixed n and samples the prefix length L >= 1 by
/// inversion (one uniform draw per sample). The table is truncated once
/// survival drops below 1e-18 — beneath uniform01's 2^-53 resolution, so
/// the truncation is unobservable.
class CollisionFreeRunLength {
 public:
  explicit CollisionFreeRunLength(std::uint64_t n);

  /// Samples L = the number of collision-free interactions before the first
  /// interaction that re-touches an already-used agent.
  std::uint64_t sample(util::Rng& rng) const;

  /// Largest sampleable L (where the survival table was truncated).
  std::uint64_t max_length() const { return survival_.size() - 1; }

  /// E[L] (sum of the survival table) — used to decide when an epoch is no
  /// longer worth its fixed cost.
  double mean_length() const { return mean_; }

 private:
  std::vector<double> survival_;  // survival_[j] = P(L >= j)
  double mean_ = 0.0;
};

/// The position (1-based) of the last of `special` marked slots among
/// `slots` exchangeable slots: the maximum of a uniform `special`-subset of
/// {1..slots}. Used to place the final state change exactly within the final
/// epoch. Requires 1 <= special <= slots.
std::uint64_t last_special_slot(util::Rng& rng, std::uint64_t slots,
                                std::uint64_t special);

}  // namespace circles::dense
