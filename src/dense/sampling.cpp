#include "dense/sampling.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/check.hpp"

namespace circles::dense {

namespace {

constexpr std::size_t kFactorialTableSize = 2048;

const std::array<double, kFactorialTableSize>& log_factorial_table() {
  // Magic-static initialization is thread-safe; the BatchRunner calls the
  // samplers from many worker threads at once.
  static const std::array<double, kFactorialTableSize> table = [] {
    std::array<double, kFactorialTableSize> t{};
    double acc = 0.0;
    t[0] = 0.0;
    for (std::size_t i = 1; i < kFactorialTableSize; ++i) {
      acc += std::log(static_cast<double>(i));
      t[i] = acc;
    }
    return t;
  }();
  return table;
}

}  // namespace

void warm_log_factorial() { (void)log_factorial_table(); }

double log_factorial(std::uint64_t x) {
  if (x < kFactorialTableSize) return log_factorial_table()[x];
  // Stirling series for log Gamma(x + 1).
  const double n = static_cast<double>(x);
  const double n2 = n * n;
  return (n + 0.5) * std::log(n) - n +
         0.91893853320467274178 /* log(2*pi)/2 */ + 1.0 / (12.0 * n) -
         1.0 / (360.0 * n2 * n) + 1.0 / (1260.0 * n2 * n2 * n);
}

double log_choose(std::uint64_t n, std::uint64_t k) {
  CIRCLES_DCHECK(k <= n);
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

std::uint64_t hypergeometric(util::Rng& rng, std::uint64_t total,
                             std::uint64_t successes, std::uint64_t draws) {
  CIRCLES_CHECK_MSG(successes <= total && draws <= total,
                    "hypergeometric parameters out of range");
  const std::uint64_t failures = total - successes;
  const std::uint64_t lo = draws > failures ? draws - failures : 0;
  const std::uint64_t hi = std::min(draws, successes);
  if (lo >= hi) return lo;

  // Small draws dominate the batched engine's contingency sampling; drawing
  // them item by item is exact *integer* sampling and beats the log-gamma
  // anchor below. HG(N, K, m) == HG(N, m, K) (both count |draws ∩
  // successes|), so a small success count works just as well.
  constexpr std::uint64_t kSequentialCutoff = 16;
  std::uint64_t seq_m = draws, seq_k = successes;
  if (std::min(seq_m, seq_k) <= kSequentialCutoff) {
    if (seq_k < seq_m) std::swap(seq_m, seq_k);
    std::uint64_t x = 0;
    std::uint64_t pool = total, hits = seq_k;
    for (std::uint64_t i = 0; i < seq_m; ++i) {
      if (rng.uniform_below(pool) < hits) {
        ++x;
        --hits;
      }
      --pool;
    }
    return x;
  }

  const double dm = static_cast<double>(draws);
  const double dk = static_cast<double>(successes);
  const double df = static_cast<double>(failures);

  std::uint64_t mode = static_cast<std::uint64_t>(
      ((dm + 1.0) * (dk + 1.0)) / (static_cast<double>(total) + 2.0));
  mode = std::clamp(mode, lo, hi);

  const auto log_pmf = [&](std::uint64_t x) {
    return log_choose(successes, x) + log_choose(failures, draws - x) -
           log_choose(total, draws);
  };

  // Chop-down inversion from the mode: the anchor probability comes from
  // log-gamma once; every neighbour is reached by exact pmf ratios.
  const double p_mode = std::exp(log_pmf(mode));
  double remaining = rng.uniform01() - p_mode;
  if (remaining < 0.0) return mode;

  std::uint64_t up = mode, down = mode;
  double pu = p_mode, pd = p_mode;
  while (up < hi || down > lo) {
    if (up < hi) {
      const double x = static_cast<double>(up);
      pu *= (dk - x) * (dm - x) / ((x + 1.0) * (df - dm + x + 1.0));
      ++up;
      remaining -= pu;
      if (remaining < 0.0) return up;
    }
    if (down > lo) {
      const double x = static_cast<double>(down);
      pd *= x * (df - dm + x) / ((dk - x + 1.0) * (dm - x + 1.0));
      --down;
      remaining -= pd;
      if (remaining < 0.0) return down;
    }
  }
  // The accumulated mass fell a few ulps short of u; any in-range value has
  // the right distribution up to that rounding.
  return mode;
}

void multivariate_hypergeometric(util::Rng& rng,
                                 std::span<const std::uint64_t> counts,
                                 std::uint64_t draws,
                                 std::span<std::uint64_t> out) {
  CIRCLES_DCHECK(counts.size() == out.size());
  std::uint64_t pool = 0;
  for (const std::uint64_t c : counts) pool += c;
  CIRCLES_CHECK_MSG(draws <= pool,
                    "multivariate hypergeometric overdraws the pool");
  std::uint64_t need = draws;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (need == 0) {
      out[i] = 0;
      continue;
    }
    const std::uint64_t d = hypergeometric(rng, pool, counts[i], need);
    out[i] = d;
    pool -= counts[i];
    need -= d;
  }
  CIRCLES_DCHECK(need == 0);
}

CollisionFreeRunLength::CollisionFreeRunLength(std::uint64_t n) {
  CIRCLES_CHECK_MSG(n >= 2, "collision-free run length needs n >= 2");
  const double denom =
      static_cast<double>(n) * static_cast<double>(n - 1);
  survival_.push_back(1.0);
  double s = 1.0;
  for (std::uint64_t j = 0;; ++j) {
    const double fresh = static_cast<double>(n) - 2.0 * static_cast<double>(j);
    if (fresh < 2.0) break;
    s *= fresh * (fresh - 1.0) / denom;
    if (s <= 0.0) break;
    survival_.push_back(s);
    mean_ += s;
    if (s < 1e-18) break;
  }
}

std::uint64_t CollisionFreeRunLength::sample(util::Rng& rng) const {
  const double u = rng.uniform01();
  // Largest j with survival_[j] > u; survival_[1] == 1, so L >= 1 always
  // (the first interaction cannot collide).
  std::size_t lo = 0, hi = survival_.size();
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (survival_[mid] > u) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::uint64_t last_special_slot(util::Rng& rng, std::uint64_t slots,
                                std::uint64_t special) {
  CIRCLES_CHECK_MSG(special >= 1 && special <= slots,
                    "last_special_slot needs 1 <= special <= slots");
  // Reservoir-style scan from the top: slot j is in a uniform special-subset
  // with probability special/j given that no higher slot is; the first hit
  // is the maximum.
  for (std::uint64_t j = slots; j > special; --j) {
    if (rng.uniform_below(j) < special) return j;
  }
  return special;  // slots 1..special must all be special
}

}  // namespace circles::dense
