// Tie-aware exact plurality via pairwise games with explicit tie detection —
// the prototype for the paper's §4 tie-handling semantics (tie report, tie
// break, tie share). The paper promises O(k^3) constructions in its future
// full version without giving them; this protocol delivers the exact
// *semantics* with an exponential state count at small k (DESIGN.md,
// substitution 2), so the three output conventions can be exercised and
// tested end to end. The O(k^3) tie-report construction lives in
// tie_report.hpp.
//
// Each unordered color pair {i, j} hosts an independent game using the same
// retractor mechanism as TieReportProtocol (a naive "TIED players convert
// neighbours" rule livelocks: converted agents get re-converted by surviving
// strongs forever; retractors do not replicate, so every event class below
// is finite and the protocol is always silent eventually):
//
//   player sub-state:    STRONG | WEAK_LO | WEAK_HI | WEAK_TIE | RETRACTOR
//   spectator sub-state: BELIEVE_LO | BELIEVE_HI | BELIEVE_TIE
//
// Rules per game, per interaction:
//   STRONG_i + STRONG_j          -> both RETRACTOR ("my vote was cancelled")
//   STRONG_x + anyone non-strong -> other believes x, retraction cleared
//   RETRACTOR + non-retractor    -> other believes TIE (retractor bit does
//                                   not spread)
//   anything else                -> null
//
// Decided game (m_i > m_j): strongs of i survive cancellation, clear every
// retractor they meet (finitely many are ever created) and then convert all
// beliefs to i. Tied game (m_i == m_j >= 1): all strongs cancel; the last
// cancellation leaves retractors no strong can clear, which convert every
// belief to TIE. Either way beliefs converge to sign(m_i − m_j), silently.
//
// Output conventions over the believed result matrix, W = colors losing no
// game: kReport -> min(W) if |W| = 1 else TIE; kBreak -> min(W);
// kShare -> own color if in W, else min(W).
//
// State count: k · 5^(k−1) · 3^((k−1)(k−2)/2); runnable for k <= 5 (~2.3M).
#pragma once

#include <cstdint>
#include <vector>

#include "pp/protocol.hpp"

namespace circles::ext {

enum class TieSemantics { kReport, kBreak, kShare };

std::string to_string(TieSemantics semantics);

class TieAwarePairwise final : public pp::Protocol {
 public:
  TieAwarePairwise(std::uint32_t k, TieSemantics semantics);

  std::uint64_t num_states() const override { return num_states_; }
  std::uint32_t num_colors() const override { return k_; }
  /// kReport adds the TIE symbol at index k.
  std::uint32_t num_output_symbols() const override;
  pp::StateId input(pp::ColorId color) const override;
  pp::OutputSymbol output(pp::StateId state) const override;
  pp::Transition transition(pp::StateId initiator,
                            pp::StateId responder) const override;
  std::string name() const override;
  std::string output_name(pp::OutputSymbol symbol) const override;

  std::uint32_t k() const { return k_; }
  TieSemantics semantics() const { return semantics_; }
  pp::OutputSymbol tie_symbol() const { return k_; }

  enum class PlayerSub : std::uint8_t {
    kStrong = 0,
    kWeakLo = 1,
    kWeakHi = 2,
    kWeakTie = 3,
    kRetractor = 4,  // believes TIE; cleared by a strong, never spreads
  };
  enum class SpectatorSub : std::uint8_t {
    kBelieveLo = 0,
    kBelieveHi = 1,
    kBelieveTie = 2,
  };

  struct Decoded {
    pp::ColorId color;
    std::vector<std::uint8_t> sub;
  };
  Decoded decode(pp::StateId state) const;
  pp::StateId encode(const Decoded& decoded) const;

  struct Game {
    pp::ColorId lo;
    pp::ColorId hi;
  };
  std::uint32_t num_games() const {
    return static_cast<std::uint32_t>(games_.size());
  }
  const Game& game(std::uint32_t index) const { return games_[index]; }
  bool plays(pp::ColorId color, std::uint32_t game_index) const;

  /// Believed winner of a game: a color, or tie_symbol() for a believed tie.
  pp::OutputSymbol belief(const Decoded& decoded,
                          std::uint32_t game_index) const;

 private:
  std::uint32_t radix(pp::ColorId color, std::uint32_t game_index) const {
    return plays(color, game_index) ? 5 : 3;
  }
  void apply_believe(Decoded& target, std::uint32_t game_index,
                     pp::OutputSymbol value) const;

  std::uint32_t k_;
  TieSemantics semantics_;
  std::vector<Game> games_;
  std::uint64_t per_color_states_;
  std::uint64_t num_states_;
};

}  // namespace circles::ext
