#include "extensions/tie_report.hpp"

#include <utility>

#include "util/check.hpp"

namespace circles::ext {

TieReportProtocol::TieReportProtocol(std::uint32_t k) : k_(k) {
  CIRCLES_CHECK_MSG(k >= 1, "TieReport needs at least one color");
  CIRCLES_CHECK_MSG(k <= 812, "2k^2(k+1) state space would overflow StateId");
}

TieReportProtocol::Fields TieReportProtocol::decode(pp::StateId state) const {
  CIRCLES_DCHECK(state < num_states());
  Fields f;
  f.retractor = (state & 1) != 0;
  state >>= 1;
  f.out = state % (k_ + 1);
  state /= (k_ + 1);
  f.braket.ket = state % k_;
  f.braket.bra = state / k_;
  return f;
}

pp::StateId TieReportProtocol::encode(const Fields& f) const {
  CIRCLES_DCHECK(f.braket.bra < k_ && f.braket.ket < k_ && f.out <= k_);
  return (((f.braket.bra * k_ + f.braket.ket) * (k_ + 1) + f.out) << 1) |
         (f.retractor ? 1u : 0u);
}

pp::StateId TieReportProtocol::input(pp::ColorId color) const {
  CIRCLES_DCHECK(color < k_);
  return encode({{color, color}, color, false});
}

pp::OutputSymbol TieReportProtocol::output(pp::StateId state) const {
  return decode(state).out;
}

pp::Transition TieReportProtocol::transition(pp::StateId initiator,
                                             pp::StateId responder) const {
  Fields a = decode(initiator);
  Fields b = decode(responder);

  // (1) The Circles exchange rule, verbatim.
  const bool a_was_diagonal = a.braket.diagonal();
  const bool b_was_diagonal = b.braket.diagonal();
  if (core::exchange_decreases_min(a.braket, b.braket, k_)) {
    std::swap(a.braket.ket, b.braket.ket);
  }

  // (2) Diagonal destruction turns the destroyed agent into a retractor.
  if (a_was_diagonal && !a.braket.diagonal()) a.retractor = true;
  if (b_was_diagonal && !b.braket.diagonal()) b.retractor = true;

  // (3) A diagonal agent broadcasts its color and clears retractor bits.
  //     (A destruction never leaves a diagonal on either side — see
  //     DESIGN.md §5.2 — so (2) and (3) cannot both fire.)
  if (a.braket.diagonal() || b.braket.diagonal()) {
    const pp::ColorId winner =
        a.braket.diagonal() ? a.braket.bra : b.braket.bra;
    a.out = b.out = winner;
    a.retractor = b.retractor = false;
  } else if (a.retractor || b.retractor) {
    // (4) A retractor spreads doubt — but not the retractor bit itself.
    a.out = b.out = tie_symbol();
  }

  return {encode(a), encode(b)};
}

std::string TieReportProtocol::state_name(pp::StateId state) const {
  const Fields f = decode(state);
  std::string out = core::to_string(f.braket) + ":";
  out += f.out == tie_symbol() ? "TIE" : std::to_string(f.out);
  if (f.retractor) out += "!R";
  return out;
}

std::string TieReportProtocol::output_name(pp::OutputSymbol symbol) const {
  if (symbol == tie_symbol()) return "TIE";
  return "c" + std::to_string(symbol);
}

}  // namespace circles::ext
