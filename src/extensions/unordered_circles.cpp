#include "extensions/unordered_circles.hpp"

#include <utility>

#include "util/check.hpp"

namespace circles::ext {

UnorderedCirclesProtocol::UnorderedCirclesProtocol(std::uint32_t k) : k_(k) {
  CIRCLES_CHECK_MSG(k >= 1, "UnorderedCircles needs at least one color");
  CIRCLES_CHECK_MSG(k <= 215, "2k^4 state space would overflow StateId");
}

UnorderedCirclesProtocol::Fields UnorderedCirclesProtocol::decode(
    pp::StateId state) const {
  CIRCLES_DCHECK(state < num_states());
  Fields f;
  f.out = state % k_;
  state /= k_;
  f.ket = state % k_;
  state /= k_;
  f.label = state % k_;
  state /= k_;
  f.leader = (state & 1) != 0;
  f.color = state >> 1;
  return f;
}

pp::StateId UnorderedCirclesProtocol::encode(const Fields& f) const {
  CIRCLES_DCHECK(f.color < k_ && f.label < k_ && f.ket < k_ && f.out < k_);
  pp::StateId s = (f.color << 1) | (f.leader ? 1u : 0u);
  s = s * k_ + f.label;
  s = s * k_ + f.ket;
  s = s * k_ + f.out;
  return s;
}

pp::StateId UnorderedCirclesProtocol::input(pp::ColorId color) const {
  CIRCLES_DCHECK(color < k_);
  // Leader with label 0, Circles layer started on ⟨0|0⟩, believing itself.
  return encode({color, true, 0, 0, color});
}

pp::OutputSymbol UnorderedCirclesProtocol::output(pp::StateId state) const {
  return decode(state).out;
}

pp::Transition UnorderedCirclesProtocol::transition(
    pp::StateId initiator, pp::StateId responder) const {
  Fields a = decode(initiator);
  Fields b = decode(responder);

  // (1) Ordering layer (identical rules to OrderingProtocol).
  const std::uint32_t a_label_before = a.label;
  const std::uint32_t b_label_before = b.label;
  if (a.color == b.color) {
    if (a.leader && b.leader) {
      b.leader = false;
      b.label = a.label;
    } else if (a.leader && !b.leader) {
      b.label = a.label;
    } else if (!a.leader && b.leader) {
      a.label = b.label;
    }
  } else if (a.leader && b.leader && a.label == b.label) {
    b.label = (b.label + 1) % k_;
  }

  // (2) Restart the Circles layer of any agent whose bra just moved.
  if (a.label != a_label_before) {
    a.ket = a.label;
    a.out = a.color;
  }
  if (b.label != b_label_before) {
    b.ket = b.label;
    b.out = b.color;
  }

  // (3) Circles exchange on (label | ket) bra-kets.
  core::BraKet bk_a = braket_of_fields(a);
  core::BraKet bk_b = braket_of_fields(b);
  if (core::exchange_decreases_min(bk_a, bk_b, k_)) {
    std::swap(a.ket, b.ket);
    bk_a = braket_of_fields(a);
    bk_b = braket_of_fields(b);
  }

  // (4) A diagonal agent broadcasts its own color (its bra is its color's
  //     label, so a diagonal is a representative of that color).
  if (bk_a.diagonal()) {
    a.out = b.out = a.color;
  } else if (bk_b.diagonal()) {
    a.out = b.out = b.color;
  }

  return {encode(a), encode(b)};
}

std::string UnorderedCirclesProtocol::state_name(pp::StateId state) const {
  const Fields f = decode(state);
  std::string out = "c" + std::to_string(f.color);
  out += f.leader ? "L" : "f";
  out += "<" + std::to_string(f.label) + "|" + std::to_string(f.ket) + ">:";
  out += std::to_string(f.out);
  return out;
}

}  // namespace circles::ext
