// The §4 ordering protocol for the unordered setting: generate a numeric
// label per color using O(k^2) states, assuming agents can only compare
// colors for equality.
//
// Mechanism (as sketched in the paper, after Cai–Izumi–Wada):
//  * per-color leader election using the asymmetry of interactions — when
//    two leaders of the same color meet, the responder is demoted and copies
//    the initiator's label;
//  * when two leaders of *different* colors meet with equal labels, the
//    responder increments its label (mod k);
//  * followers copy the label from a leader of their own color.
//
// Eventually there is exactly one leader per color and all leader labels are
// distinct, giving an injective color -> label map that UnorderedCircles
// uses as the bra. Termination of the mod-k bump dynamics under adversarial
// scheduling is verified by exhaustive search in the tests (DESIGN.md §5.3).
//
// State: (color, leader bit, label ∈ [0,k)) = 2k^2 states.
#pragma once

#include "pp/protocol.hpp"

namespace circles::ext {

class OrderingProtocol final : public pp::Protocol {
 public:
  explicit OrderingProtocol(std::uint32_t k);

  std::uint64_t num_states() const override { return 2ull * k_ * k_; }
  std::uint32_t num_colors() const override { return k_; }
  pp::StateId input(pp::ColorId color) const override;
  /// Output = the agent's current label (its color's provisional rank).
  pp::OutputSymbol output(pp::StateId state) const override;
  pp::Transition transition(pp::StateId initiator,
                            pp::StateId responder) const override;
  std::string name() const override { return "ordering"; }
  std::string state_name(pp::StateId state) const override;

  std::uint32_t k() const { return k_; }

  struct Fields {
    pp::ColorId color;
    bool leader;
    std::uint32_t label;
  };
  Fields decode(pp::StateId state) const;
  pp::StateId encode(const Fields& fields) const;

 private:
  std::uint32_t k_;
};

}  // namespace circles::ext
