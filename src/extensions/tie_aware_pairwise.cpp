#include "extensions/tie_aware_pairwise.hpp"

#include "util/check.hpp"

namespace circles::ext {

std::string to_string(TieSemantics semantics) {
  switch (semantics) {
    case TieSemantics::kReport:
      return "report";
    case TieSemantics::kBreak:
      return "break";
    case TieSemantics::kShare:
      return "share";
  }
  return "unknown";
}

TieAwarePairwise::TieAwarePairwise(std::uint32_t k, TieSemantics semantics)
    : k_(k), semantics_(semantics) {
  CIRCLES_CHECK_MSG(k >= 1, "need at least one color");
  CIRCLES_CHECK_MSG(k <= 5,
                    "tie-aware pairwise state space is exponential; capped at "
                    "k = 5 (~2.3M states)");
  for (pp::ColorId i = 0; i < k; ++i) {
    for (pp::ColorId j = i + 1; j < k; ++j) games_.push_back({i, j});
  }
  per_color_states_ = 1;
  for (std::uint32_t g = 0; g < games_.size(); ++g) {
    per_color_states_ *= radix(/*color=*/0, g);
  }
  num_states_ = per_color_states_ * k_;
}

std::uint32_t TieAwarePairwise::num_output_symbols() const {
  return semantics_ == TieSemantics::kReport ? k_ + 1 : k_;
}

std::string TieAwarePairwise::name() const {
  return "tie_" + to_string(semantics_) + "_pairwise";
}

bool TieAwarePairwise::plays(pp::ColorId color,
                             std::uint32_t game_index) const {
  const Game& g = games_[game_index];
  return g.lo == color || g.hi == color;
}

TieAwarePairwise::Decoded TieAwarePairwise::decode(pp::StateId state) const {
  CIRCLES_DCHECK(state < num_states_);
  Decoded out;
  out.color = static_cast<pp::ColorId>(state / per_color_states_);
  std::uint64_t rest = state % per_color_states_;
  out.sub.resize(games_.size());
  for (std::uint32_t g = 0; g < games_.size(); ++g) {
    const std::uint32_t r = radix(out.color, g);
    out.sub[g] = static_cast<std::uint8_t>(rest % r);
    rest /= r;
  }
  return out;
}

pp::StateId TieAwarePairwise::encode(const Decoded& decoded) const {
  std::uint64_t rest = 0;
  for (std::uint32_t g = static_cast<std::uint32_t>(games_.size()); g-- > 0;) {
    const std::uint32_t r = radix(decoded.color, g);
    CIRCLES_DCHECK(decoded.sub[g] < r);
    rest = rest * r + decoded.sub[g];
  }
  return static_cast<pp::StateId>(decoded.color * per_color_states_ + rest);
}

pp::StateId TieAwarePairwise::input(pp::ColorId color) const {
  CIRCLES_DCHECK(color < k_);
  Decoded d;
  d.color = color;
  d.sub.assign(games_.size(), 0);
  for (std::uint32_t g = 0; g < games_.size(); ++g) {
    d.sub[g] = static_cast<std::uint8_t>(
        plays(color, g) ? static_cast<std::uint8_t>(PlayerSub::kStrong)
                        : static_cast<std::uint8_t>(SpectatorSub::kBelieveLo));
  }
  return encode(d);
}

pp::OutputSymbol TieAwarePairwise::belief(const Decoded& decoded,
                                          std::uint32_t game_index) const {
  const Game& game = games_[game_index];
  if (plays(decoded.color, game_index)) {
    switch (static_cast<PlayerSub>(decoded.sub[game_index])) {
      case PlayerSub::kStrong:
        return decoded.color;
      case PlayerSub::kWeakLo:
        return game.lo;
      case PlayerSub::kWeakHi:
        return game.hi;
      case PlayerSub::kWeakTie:
      case PlayerSub::kRetractor:
        return tie_symbol();
    }
  }
  switch (static_cast<SpectatorSub>(decoded.sub[game_index])) {
    case SpectatorSub::kBelieveLo:
      return game.lo;
    case SpectatorSub::kBelieveHi:
      return game.hi;
    case SpectatorSub::kBelieveTie:
      return tie_symbol();
  }
  return game.lo;
}

void TieAwarePairwise::apply_believe(Decoded& target, std::uint32_t game_index,
                                     pp::OutputSymbol value) const {
  const Game& game = games_[game_index];
  if (plays(target.color, game_index)) {
    if (value == tie_symbol()) {
      target.sub[game_index] = static_cast<std::uint8_t>(PlayerSub::kWeakTie);
    } else {
      target.sub[game_index] = static_cast<std::uint8_t>(
          value == game.lo ? PlayerSub::kWeakLo : PlayerSub::kWeakHi);
    }
    return;
  }
  if (value == tie_symbol()) {
    target.sub[game_index] =
        static_cast<std::uint8_t>(SpectatorSub::kBelieveTie);
  } else {
    target.sub[game_index] = static_cast<std::uint8_t>(
        value == game.lo ? SpectatorSub::kBelieveLo
                         : SpectatorSub::kBelieveHi);
  }
}

pp::Transition TieAwarePairwise::transition(pp::StateId initiator,
                                            pp::StateId responder) const {
  Decoded a = decode(initiator);
  Decoded b = decode(responder);

  for (std::uint32_t g = 0; g < games_.size(); ++g) {
    const bool a_plays = plays(a.color, g);
    const bool b_plays = plays(b.color, g);
    const bool a_strong =
        a_plays && static_cast<PlayerSub>(a.sub[g]) == PlayerSub::kStrong;
    const bool b_strong =
        b_plays && static_cast<PlayerSub>(b.sub[g]) == PlayerSub::kStrong;

    if (a_strong && b_strong && a.color != b.color) {
      // Cancellation: both votes neutralized; both agents now carry direct
      // evidence that the game may be tied.
      a.sub[g] = static_cast<std::uint8_t>(PlayerSub::kRetractor);
      b.sub[g] = static_cast<std::uint8_t>(PlayerSub::kRetractor);
      continue;
    }
    if (a_strong && !b_strong && belief(b, g) != a.color) {
      // Converting also clears a retractor (kRetractor -> kWeak*).
      apply_believe(b, g, a.color);
      continue;
    }
    if (b_strong && !a_strong && belief(a, g) != b.color) {
      apply_believe(a, g, b.color);
      continue;
    }
    if (a_strong || b_strong) continue;

    // No strong on either side of this game: retractors spread the TIE
    // verdict but never the retractor status itself.
    const bool a_retractor =
        a_plays && static_cast<PlayerSub>(a.sub[g]) == PlayerSub::kRetractor;
    const bool b_retractor =
        b_plays && static_cast<PlayerSub>(b.sub[g]) == PlayerSub::kRetractor;
    if (a_retractor && !b_retractor && belief(b, g) != tie_symbol()) {
      apply_believe(b, g, tie_symbol());
      continue;
    }
    if (b_retractor && !a_retractor && belief(a, g) != tie_symbol()) {
      apply_believe(a, g, tie_symbol());
      continue;
    }
  }

  return {encode(a), encode(b)};
}

pp::OutputSymbol TieAwarePairwise::output(pp::StateId state) const {
  const Decoded d = decode(state);
  if (k_ == 1) return 0;

  // W = colors that lose no game in this agent's view.
  std::vector<bool> in_w(k_, true);
  std::vector<bool> has_tie(k_, false);
  for (std::uint32_t g = 0; g < games_.size(); ++g) {
    const pp::OutputSymbol verdict = belief(d, g);
    const Game& game = games_[g];
    if (verdict == tie_symbol()) {
      has_tie[game.lo] = true;
      has_tie[game.hi] = true;
    } else {
      const pp::ColorId loser = verdict == game.lo ? game.hi : game.lo;
      in_w[loser] = false;
    }
  }
  pp::ColorId min_w = k_;
  for (pp::ColorId c = 0; c < k_; ++c) {
    if (in_w[c]) {
      min_w = c;
      break;
    }
  }
  if (min_w == k_) return d.color;  // inconsistent transient view: own color

  switch (semantics_) {
    case TieSemantics::kReport:
      return has_tie[min_w] ? tie_symbol() : min_w;
    case TieSemantics::kBreak:
      return min_w;
    case TieSemantics::kShare:
      return in_w[d.color] ? d.color : min_w;
  }
  return min_w;
}

std::string TieAwarePairwise::output_name(pp::OutputSymbol symbol) const {
  if (symbol == tie_symbol()) return "TIE";
  return "c" + std::to_string(symbol);
}

}  // namespace circles::ext
