// TieReport: Circles plus a "retractor" layer that detects ties (paper §4,
// "tie report") while keeping the state complexity at O(k^3).
//
// The structural fact this rests on (Lemmas 3.2/3.6): the stable Circles
// configuration contains a diagonal bra-ket iff some greedy set G_p is a
// singleton iff the maximum color count is unique. So "tie" is exactly
// "no diagonal survives". Agents cannot observe global absence directly, but
// they can observe the *events* that create it:
//
//   * an agent whose diagonal bra-ket is destroyed by a ket exchange becomes
//     a RETRACTOR ("my earlier broadcast may be stale");
//   * a retractor meeting a diagonal agent is cleared (the broadcast was
//     refreshed by a live witness);
//   * a retractor flips the out field of agents it meets to TIE, but the
//     retractor bit itself never spreads (spreading would oscillate against
//     diagonal clearing in non-tie runs).
//
// Correctness (proof sketch in DESIGN.md §5.2, tested exhaustively):
//   no tie  -> diagonals ⟨μ|μ⟩ persist forever; finitely many retractors all
//              get cleared; outputs converge to μ;        (silent)
//   tie     -> all n initial diagonals die; the final destruction leaves a
//              retractor no diagonal can ever clear; it eventually sets
//              every output to TIE.                       (silent)
//
// State: (bra, ket, out ∈ [0,k] with k = TIE, retractor bit):
// 2·k^2·(k+1) states.
#pragma once

#include "core/braket.hpp"
#include "core/invariants.hpp"
#include "pp/protocol.hpp"

namespace circles::ext {

class TieReportProtocol final : public pp::Protocol {
 public:
  explicit TieReportProtocol(std::uint32_t k);

  std::uint64_t num_states() const override {
    return 2ull * k_ * k_ * (k_ + 1);
  }
  std::uint32_t num_colors() const override { return k_; }
  std::uint32_t num_output_symbols() const override { return k_ + 1; }
  pp::StateId input(pp::ColorId color) const override;
  pp::OutputSymbol output(pp::StateId state) const override;
  pp::Transition transition(pp::StateId initiator,
                            pp::StateId responder) const override;
  std::string name() const override { return "tie_report"; }
  std::string state_name(pp::StateId state) const override;
  std::string output_name(pp::OutputSymbol symbol) const override;

  std::uint32_t k() const { return k_; }

  /// The TIE output symbol.
  pp::OutputSymbol tie_symbol() const { return k_; }

  struct Fields {
    core::BraKet braket;
    pp::OutputSymbol out;  // in [0, k], k = TIE
    bool retractor;
  };
  Fields decode(pp::StateId state) const;
  pp::StateId encode(const Fields& fields) const;

 private:
  std::uint32_t k_;
};

/// Bra-ket projection so the core invariant monitors (Lemma 3.3 checker,
/// potential descent) apply unchanged to the extension layer.
class TieReportBraKetView final : public core::BraKetView {
 public:
  explicit TieReportBraKetView(const TieReportProtocol& protocol)
      : protocol_(protocol) {}
  core::BraKet braket_of(pp::StateId state) const override {
    return protocol_.decode(state).braket;
  }
  std::uint32_t k() const override { return protocol_.k(); }

 private:
  const TieReportProtocol& protocol_;
};

}  // namespace circles::ext
