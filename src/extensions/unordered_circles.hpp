// UnorderedCircles: Circles for the unordered setting (paper §4) — agents can
// only compare colors for equality, so the ordering protocol supplies the
// numeric labels that Circles' weight function needs.
//
// State: (color, leader, label, ket, out-color) = 2k^4 states. Per the BA's
// trick, the label IS the Circles bra — it is not stored twice. Composition,
// per interaction:
//   1. run the ordering layer (leader election + label bumps + copying);
//   2. any agent whose label changed RESTARTS its Circles layer
//      (ket := new label, out := own color);
//   3. run the Circles exchange rule on (label | ket) bra-kets;
//   4. an agent with ket == label is diagonal and broadcasts its own COLOR.
//
// Honesty note (DESIGN.md §5.4): the paper's full version promises an
// undo/wait mechanism making this always-correct. The restart composition
// implemented here can leave stale kets from before the last label change in
// circulation, breaking the global bra-ket invariant for the rest of the
// run; experiment E10 measures how often that loses correctness instead of
// claiming it never does.
#pragma once

#include "core/braket.hpp"
#include "pp/protocol.hpp"

namespace circles::ext {

class UnorderedCirclesProtocol final : public pp::Protocol {
 public:
  explicit UnorderedCirclesProtocol(std::uint32_t k);

  std::uint64_t num_states() const override {
    return 2ull * k_ * k_ * k_ * k_;
  }
  std::uint32_t num_colors() const override { return k_; }
  pp::StateId input(pp::ColorId color) const override;
  /// Output is a color (the believed plurality winner).
  pp::OutputSymbol output(pp::StateId state) const override;
  pp::Transition transition(pp::StateId initiator,
                            pp::StateId responder) const override;
  std::string name() const override { return "unordered_circles"; }
  std::string state_name(pp::StateId state) const override;

  std::uint32_t k() const { return k_; }

  struct Fields {
    pp::ColorId color;
    bool leader;
    std::uint32_t label;  // doubles as the Circles bra
    std::uint32_t ket;
    pp::ColorId out;
  };
  Fields decode(pp::StateId state) const;
  pp::StateId encode(const Fields& fields) const;

  core::BraKet braket_of_fields(const Fields& f) const {
    return {f.label, f.ket};
  }

 private:
  std::uint32_t k_;
};

}  // namespace circles::ext
