#include "extensions/ordering.hpp"

#include "util/check.hpp"

namespace circles::ext {

OrderingProtocol::OrderingProtocol(std::uint32_t k) : k_(k) {
  CIRCLES_CHECK_MSG(k >= 1, "ordering needs at least one color");
  CIRCLES_CHECK_MSG(k <= 32768, "2k^2 state space would overflow StateId");
}

OrderingProtocol::Fields OrderingProtocol::decode(pp::StateId state) const {
  CIRCLES_DCHECK(state < num_states());
  Fields f;
  f.label = state % k_;
  state /= k_;
  f.leader = (state & 1) != 0;
  f.color = state >> 1;
  return f;
}

pp::StateId OrderingProtocol::encode(const Fields& f) const {
  CIRCLES_DCHECK(f.color < k_ && f.label < k_);
  return ((f.color << 1) | (f.leader ? 1u : 0u)) * k_ + f.label;
}

pp::StateId OrderingProtocol::input(pp::ColorId color) const {
  CIRCLES_DCHECK(color < k_);
  // The unordered model forbids using the color's numeric value, so every
  // agent starts as a leader with label 0.
  return encode({color, true, 0});
}

pp::OutputSymbol OrderingProtocol::output(pp::StateId state) const {
  return decode(state).label;
}

pp::Transition OrderingProtocol::transition(pp::StateId initiator,
                                            pp::StateId responder) const {
  Fields a = decode(initiator);
  Fields b = decode(responder);

  if (a.color == b.color) {
    if (a.leader && b.leader) {
      // Interaction asymmetry breaks the tie: the responder is demoted.
      b.leader = false;
      b.label = a.label;
    } else if (a.leader && !b.leader) {
      b.label = a.label;
    } else if (!a.leader && b.leader) {
      a.label = b.label;
    }
    // Two followers: null.
  } else if (a.leader && b.leader && a.label == b.label) {
    b.label = (b.label + 1) % k_;
  }

  return {encode(a), encode(b)};
}

std::string OrderingProtocol::state_name(pp::StateId state) const {
  const Fields f = decode(state);
  std::string out = "c" + std::to_string(f.color);
  out += f.leader ? "L" : "f";
  out += std::to_string(f.label);
  return out;
}

}  // namespace circles::ext
