// BatchRunner: execute a vector of RunSpecs across a std::thread pool.
//
// Every (spec, trial) pair is an independent job whose RNG stream is a pure
// function of (spec seed, trial index) — see run_spec.hpp — so the results
// are bitwise identical regardless of thread count or scheduling order.
// Trials are executed work-stealing style over a flattened job list; the
// per-spec aggregation runs sequentially afterwards, in trial order.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "kernel/compiled_protocol.hpp"
#include "metrics/manifest.hpp"
#include "obs/envelope.hpp"
#include "sim/run_spec.hpp"
#include "util/stats.hpp"

namespace circles::dense {
class DenseEngine;
}

namespace circles::fluid {
class FluidEngine;
}

namespace circles::metrics {
class MetricsRegistry;
}

namespace circles::trace {
class Tracer;
}

namespace circles::sim {

/// One trial's full record.
struct TrialRecord {
  std::uint64_t seed = 0;  // derived trial seed actually used
  analysis::Workload workload;
  TrialOutcome outcome;

  // Circles instrumentation (valid iff spec.circles_stats).
  std::uint64_t ket_exchanges = 0;
  std::uint64_t diagonal_creations = 0;
  std::uint64_t diagonal_destructions = 0;
  std::uint64_t braket_invariant_violations = 0;
  std::uint64_t potential_descent_violations = 0;
  std::uint64_t scalar_energy_increases = 0;
  bool decomposition_matches = false;

  // Valid iff spec.track_used_states.
  std::uint64_t used_states = 0;

  // Valid iff spec.chemical_time.
  double stabilization_time = 0.0;
  double convergence_time = 0.0;

  /// Wall-clock duration of this trial (workload materialization through
  /// grading), measured on whichever worker thread ran it.
  double wall_ms = 0.0;

  /// One trace per spec.probes entry (index-aligned), recorded on whichever
  /// backend ran the trial.
  std::vector<obs::TraceTable> traces;
};

/// Aggregated result of one spec's trials.
struct SpecResult {
  RunSpec spec;
  std::vector<TrialRecord> trials;  // cleared when keep_trials is off

  /// Backend that actually ran the trials: spec.backend, or the concrete
  /// engine the runner picked when spec.backend is EngineKind::kAuto
  /// (scheduler lumpability + n + state count decide — see EngineKind).
  EngineKind backend_resolved = EngineKind::kAgentArray;

  /// Kernel compile stats for this spec's protocol (valid iff
  /// kernel_compiled, i.e. spec.use_kernel). The kernel is compiled exactly
  /// once per spec and shared by every trial on every thread; build time is
  /// reported here so it is never attributed to simulation wall clock.
  bool kernel_compiled = false;
  kernel::CompileStats kernel_stats;

  std::uint32_t trial_count = 0;
  std::uint32_t correct = 0;
  std::uint32_t silent = 0;
  std::uint32_t budget_exhausted = 0;
  std::uint32_t consensus = 0;  // silent consensus on *some* symbol
  std::uint32_t decomposition_matches = 0;

  std::uint64_t braket_invariant_violations = 0;
  std::uint64_t potential_descent_violations = 0;
  std::uint64_t scalar_energy_increases = 0;

  util::Summary interactions;
  util::Summary state_changes;
  util::Summary ket_exchanges;       // all-zero unless circles_stats
  util::Summary stabilization_time;  // all-zero unless chemical_time
  util::Summary convergence_time;    // all-zero unless chemical_time
  /// Per-trial wall-clock latency (ms); p50/p90 are the envelope numbers to
  /// quote for scheduling/queueing decisions.
  util::Summary trial_ms;

  /// Provenance: what ran, where, when. Always filled by run(); written to
  /// disk alongside the metric sink when spec.metrics_out is set.
  metrics::RunManifest manifest;

  /// One quantile envelope per spec.probes entry (index-aligned): the
  /// per-trial traces resampled onto a common grid with p10/p50/p90 columns
  /// per recorded quantity (see obs::envelope). Computed before keep_trials
  /// discards the per-trial records.
  std::vector<obs::TraceTable> trace_envelopes;

  double correct_rate() const {
    return trial_count ? double(correct) / trial_count : 0.0;
  }
  double silent_rate() const {
    return trial_count ? double(silent) / trial_count : 0.0;
  }
  double decomposition_rate() const {
    return trial_count ? double(decomposition_matches) / trial_count : 0.0;
  }
  bool all_correct() const { return correct == trial_count; }
  bool all_silent() const { return silent == trial_count; }
};

/// Snapshot handed to the progress callback on a wall-clock cadence while
/// trials execute (plus one final call after the last trial).
struct BatchProgress {
  std::uint64_t trials_done = 0;
  std::uint64_t trials_total = 0;
  std::uint32_t specs_done = 0;
  std::uint32_t specs_total = 0;
  /// Interactions simulated by *completed* trials.
  std::uint64_t interactions = 0;
  double elapsed_s = 0.0;

  double interactions_per_s() const {
    return elapsed_s > 0.0 ? static_cast<double>(interactions) / elapsed_s
                           : 0.0;
  }
};

struct BatchOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::uint32_t threads = 0;

  /// Base seed feeding specs that do not fix their own seed.
  std::uint64_t base_seed = 1;

  /// Retain per-trial records in the SpecResult (memory vs detail).
  bool keep_trials = true;

  /// Batch-wide telemetry registry (engines flush work counters into it,
  /// run() adds phase timers and kernel stats). Null = telemetry off.
  /// Specs with their own `metrics_out` sink get a private registry
  /// instead, so per-spec files do not mix with batch-wide aggregation.
  metrics::MetricsRegistry* metrics = nullptr;

  /// Batch-wide span tracer (see src/trace/): run() emits setup/run/
  /// aggregate phase spans, per-trial spans and the kernel-compile span
  /// into it, engines add their own, and failing trials dump the flight
  /// recorder with a greppable REPRO line to stderr. Null = tracing off.
  /// Specs with their own `spans_out` path get a private tracer instead,
  /// written as Chrome Trace Event Format JSON when run() finishes.
  trace::Tracer* tracer = nullptr;

  /// Progress heartbeat: invoked from a dedicated monitor thread every
  /// `progress_interval_s` seconds of wall clock while trials run, and once
  /// more after the last trial completes. Default off; never invoked
  /// concurrently with itself.
  std::function<void(const BatchProgress&)> progress;
  double progress_interval_s = 2.0;
};

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {},
                       const ProtocolRegistry& registry =
                           ProtocolRegistry::global());

  /// Executes all specs; result i corresponds to specs[i]. Throws
  /// std::invalid_argument up front for unknown protocols / bad params.
  std::vector<SpecResult> run(std::span<const RunSpec> specs) const;
  std::vector<SpecResult> run(std::initializer_list<RunSpec> specs) const;

  SpecResult run_one(const RunSpec& spec) const;

  const BatchOptions& options() const { return options_; }

  /// Executes a single (spec, trial) job. Exposed for tests; `protocol`
  /// must match spec.protocol/params. `kernel` is the spec's shared
  /// compiled protocol (null: one-shot compile per trial, or the virtual
  /// path when spec.use_kernel is off). `dense_engine` is an optional
  /// per-spec engine for dense backends (built once by run() so the
  /// transition table is shared across trials); when null, a dense trial
  /// builds its own. `fluid_engine` plays the same per-spec role for the
  /// fluid backend (shared drift table). `backend_resolved` is the concrete
  /// backend to run (kAuto = "use spec.backend", which must then itself be
  /// concrete — run() resolves auto specs before dispatching here).
  /// `metrics`, when non-null, receives the trial's engine counters (unless
  /// spec.engine.metrics already names a registry, which wins). `tracer`
  /// plays the same role for spans (spec.engine.tracer wins); this is the
  /// entry point REPRO lines replay through (sweep --spec/--trial-seed).
  static TrialRecord execute_trial(
      const pp::Protocol& protocol, const RunSpec& spec,
      std::uint64_t trial_seed,
      const kernel::CompiledProtocol* kernel = nullptr,
      const dense::DenseEngine* dense_engine = nullptr,
      EngineKind backend_resolved = EngineKind::kAuto,
      const fluid::FluidEngine* fluid_engine = nullptr,
      metrics::MetricsRegistry* metrics = nullptr,
      trace::Tracer* tracer = nullptr);

 private:
  BatchOptions options_;
  const ProtocolRegistry* registry_;
};

}  // namespace circles::sim
