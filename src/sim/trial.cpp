#include "sim/trial.hpp"

#include <array>
#include <optional>
#include <vector>

#include <algorithm>

#include "core/decomposition.hpp"
#include "core/invariants.hpp"
#include "dense/dense_config.hpp"
#include "dense/dense_engine.hpp"
#include "dense/urn_config.hpp"
#include "fluid/fluid_engine.hpp"
#include "kernel/compiled_protocol.hpp"
#include "pp/schedulers/clustered.hpp"
#include "obs/monitor_probe.hpp"
#include "util/check.hpp"

namespace circles::sim {

namespace {

std::optional<pp::OutputSymbol> histogram_consensus(
    const std::vector<std::uint64_t>& histogram) {
  std::optional<pp::OutputSymbol> symbol;
  for (pp::OutputSymbol s = 0; s < histogram.size(); ++s) {
    if (histogram[s] == 0) continue;
    if (symbol.has_value()) return std::nullopt;
    symbol = s;
  }
  return symbol;
}

void grade_against(TrialOutcome& outcome, const analysis::Workload& workload,
                   std::optional<pp::OutputSymbol> expected_symbol) {
  outcome.expected_winner = workload.winner();
  outcome.consensus = histogram_consensus(outcome.run.final_outputs);
  const std::optional<pp::OutputSymbol> target =
      expected_symbol.has_value()
          ? expected_symbol
          : (outcome.expected_winner.has_value()
                 ? std::optional<pp::OutputSymbol>(*outcome.expected_winner)
                 : std::nullopt);
  outcome.correct = outcome.run.silent && target.has_value() &&
                    outcome.consensus == target;
}

}  // namespace

TrialOutcome grade_run(const pp::RunResult& run,
                       const analysis::Workload& workload,
                       std::optional<pp::OutputSymbol> expected_symbol) {
  TrialOutcome outcome;
  outcome.run = run;
  grade_against(outcome, workload, expected_symbol);
  return outcome;
}

TrialOutcome run_trial_keep_population(
    const pp::Protocol& protocol, const analysis::Workload& workload,
    const TrialOptions& options, std::span<pp::Monitor* const> monitors,
    std::optional<pp::OutputSymbol> expected_symbol,
    std::unique_ptr<pp::Population>* final_population,
    std::vector<pp::ColorId>* assigned_colors) {
  CIRCLES_CHECK_MSG(workload.k() == protocol.num_colors(),
                    "workload color count does not match the protocol");
  util::Rng rng(options.seed);
  const auto colors = workload.agent_colors(rng);
  CIRCLES_CHECK_MSG(colors.size() >= 2, "trials need at least two agents");

  auto population = std::make_unique<pp::Population>(protocol, colors);
  const auto n = static_cast<std::uint32_t>(colors.size());
  const std::uint64_t scheduler_seed = rng.split()();
  auto scheduler = options.scheduler_factory
                       ? options.scheduler_factory(n, scheduler_seed)
                       : pp::make_scheduler(options.scheduler, n,
                                            scheduler_seed, &protocol,
                                            &options.clustered);

  // Probe pipeline: the recorder monitor feeds count snapshots, and probes
  // wrapping legacy monitors (Probe::as_monitor) ride the event stream.
  std::optional<obs::RecorderMonitor> recorder_monitor;
  std::vector<pp::Monitor*> all_monitors(monitors.begin(), monitors.end());
  if (options.recorder != nullptr) {
    recorder_monitor.emplace(*options.recorder,
                             options.use_kernel ? options.kernel : nullptr);
    all_monitors.push_back(&*recorder_monitor);
    for (obs::Probe* probe : options.recorder->probes()) {
      if (pp::Monitor* monitor = probe->as_monitor()) {
        all_monitors.push_back(monitor);
      }
    }
    monitors = std::span<pp::Monitor* const>(all_monitors.data(),
                                             all_monitors.size());
  }

  pp::Engine engine(options.engine);
  TrialOutcome outcome;
  if (!options.use_kernel) {
    outcome.run =
        engine.run_virtual(protocol, *population, *scheduler, monitors);
  } else if (options.kernel != nullptr) {
    CIRCLES_CHECK_MSG(&options.kernel->protocol() == &protocol,
                      "prebuilt kernel does not match the trial's protocol");
    outcome.run = engine.run(*options.kernel, *population, *scheduler, monitors);
  } else {
    outcome.run = engine.run(protocol, *population, *scheduler, monitors);
  }
  grade_against(outcome, workload, expected_symbol);

  if (final_population != nullptr) *final_population = std::move(population);
  if (assigned_colors != nullptr) *assigned_colors = colors;
  return outcome;
}

TrialOutcome run_dense_trial(const pp::Protocol& protocol,
                             const analysis::Workload& workload,
                             const TrialOptions& options, bool batched,
                             std::optional<pp::OutputSymbol> expected_symbol,
                             const dense::DenseEngine* engine) {
  CIRCLES_CHECK_MSG(workload.k() == protocol.num_colors(),
                    "workload color count does not match the protocol");
  const bool uniform =
      options.scheduler == pp::SchedulerKind::kUniformRandom;
  CIRCLES_CHECK_MSG(
      (uniform || options.scheduler == pp::SchedulerKind::kClustered) &&
          !options.scheduler_factory,
      "dense trials simulate lumpable schedulers only (uniform, clustered)");
  CIRCLES_CHECK_MSG(workload.n() >= 2, "trials need at least two agents");

  // Mirror run_trial's stream discipline: the engine runs on a seed split
  // off the trial stream (the agent path spends the head of the stream on
  // the color shuffle, which counts have no use for). Clustered trials then
  // spend the continuing trial stream on the urn split — the count-level
  // image of the agent path's color shuffle.
  util::Rng rng(options.seed);
  const std::uint64_t engine_seed = rng.split()();

  const dense::DenseMode mode =
      batched ? dense::DenseMode::kBatched : dense::DenseMode::kPerStep;
  pp::UrnLumping lumping;  // empty = single urn (uniform)
  if (!uniform) {
    lumping = pp::clustered_lumping(workload.n(), options.clustered);
  }
  const std::size_t want_urns = lumping.sizes.empty() ? 1 : lumping.num_urns();
  std::optional<dense::DenseEngine> local;
  if (engine == nullptr) {
    if (options.use_kernel && options.kernel != nullptr) {
      CIRCLES_CHECK_MSG(&options.kernel->protocol() == &protocol,
                        "prebuilt kernel does not match the trial's protocol");
      // Aliasing share: the caller guarantees the kernel outlives the trial.
      local.emplace(std::shared_ptr<const kernel::CompiledProtocol>(
                        std::shared_ptr<const void>(), options.kernel),
                    options.engine, mode, std::move(lumping));
    } else {
      local.emplace(protocol, options.engine, mode, options.use_kernel,
                    std::move(lumping));
    }
    engine = &*local;
  }
  CIRCLES_CHECK_MSG(
      engine->mode() == mode && &engine->protocol() == &protocol &&
          (engine->compiled() != nullptr) == options.use_kernel &&
          engine->options().max_interactions ==
              options.engine.max_interactions &&
          engine->options().stop_when_silent ==
              options.engine.stop_when_silent,
      "prebuilt dense engine does not match the trial");
  CIRCLES_CHECK_MSG(std::max<std::size_t>(engine->lumping().num_urns(), 1) ==
                        want_urns,
                    "dense engine's urn structure does not match the "
                    "trial's scheduler");
  CIRCLES_CHECK_MSG(want_urns == 1 ||
                        (engine->lumping().sizes == lumping.sizes &&
                         engine->lumping().rates == lumping.rates),
                    "prebuilt dense engine's urn sizes or rate matrix do "
                    "not match the trial's clustered options");

  TrialOutcome outcome;
  if (engine->lumping().num_urns() > 1) {
    dense::UrnConfig config = dense::UrnConfig::from_workload(
        protocol, workload, engine->lumping().sizes, rng);
    outcome.run = engine->run(config, engine_seed, options.recorder);
  } else {
    dense::DenseConfig config =
        dense::DenseConfig::from_workload(protocol, workload);
    outcome.run = engine->run(config, engine_seed, options.recorder);
  }
  grade_against(outcome, workload, expected_symbol);
  return outcome;
}

TrialOutcome run_fluid_trial(const pp::Protocol& protocol,
                             const analysis::Workload& workload,
                             const TrialOptions& options,
                             std::optional<pp::OutputSymbol> expected_symbol,
                             const fluid::FluidEngine* engine) {
  CIRCLES_CHECK_MSG(workload.k() == protocol.num_colors(),
                    "workload color count does not match the protocol");
  const bool uniform =
      options.scheduler == pp::SchedulerKind::kUniformRandom;
  CIRCLES_CHECK_MSG(
      (uniform || options.scheduler == pp::SchedulerKind::kClustered) &&
          !options.scheduler_factory,
      "fluid trials simulate lumpable schedulers only (uniform, clustered)");
  CIRCLES_CHECK_MSG(workload.n() >= 2, "trials need at least two agents");

  // Same stream discipline as run_dense_trial: engine seed split off the
  // head, urn split on the continuing stream — a fluid trial and a dense
  // trial with equal seeds therefore start from identical configurations.
  util::Rng rng(options.seed);
  const std::uint64_t engine_seed = rng.split()();

  pp::UrnLumping lumping;  // empty = single urn (uniform)
  if (!uniform) {
    lumping = pp::clustered_lumping(workload.n(), options.clustered);
  }
  const std::size_t want_urns = lumping.sizes.empty() ? 1 : lumping.num_urns();
  fluid::FluidOptions fluid_options;
  if (options.rtol > 0.0) fluid_options.rtol = options.rtol;
  if (options.atol > 0.0) fluid_options.atol = options.atol;
  std::optional<fluid::FluidEngine> local;
  if (engine == nullptr) {
    if (options.use_kernel && options.kernel != nullptr) {
      CIRCLES_CHECK_MSG(&options.kernel->protocol() == &protocol,
                        "prebuilt kernel does not match the trial's protocol");
      // Aliasing share: the caller guarantees the kernel outlives the trial.
      local.emplace(std::shared_ptr<const kernel::CompiledProtocol>(
                        std::shared_ptr<const void>(), options.kernel),
                    options.engine, fluid_options, std::move(lumping));
    } else {
      local.emplace(protocol, options.engine, fluid_options,
                    std::move(lumping));
    }
    engine = &*local;
  }
  CIRCLES_CHECK_MSG(
      &engine->protocol() == &protocol &&
          engine->options().max_interactions ==
              options.engine.max_interactions &&
          engine->options().stop_when_silent ==
              options.engine.stop_when_silent,
      "prebuilt fluid engine does not match the trial");
  CIRCLES_CHECK_MSG(
      std::max<std::size_t>(engine->lumping().num_urns(), 1) == want_urns,
      "fluid engine's urn structure does not match the trial's scheduler");
  CIRCLES_CHECK_MSG(want_urns == 1 ||
                        (engine->lumping().sizes == lumping.sizes &&
                         engine->lumping().rates == lumping.rates),
                    "prebuilt fluid engine's urn sizes or rate matrix do "
                    "not match the trial's clustered options");

  TrialOutcome outcome;
  if (engine->lumping().num_urns() > 1) {
    dense::UrnConfig config = dense::UrnConfig::from_workload(
        protocol, workload, engine->lumping().sizes, rng);
    outcome.run = engine->run(config, engine_seed, options.recorder);
  } else {
    dense::DenseConfig config =
        dense::DenseConfig::from_workload(protocol, workload);
    outcome.run = engine->run(config, engine_seed, options.recorder);
  }
  grade_against(outcome, workload, expected_symbol);
  return outcome;
}

TrialOutcome run_trial(const pp::Protocol& protocol,
                       const analysis::Workload& workload,
                       const TrialOptions& options,
                       std::span<pp::Monitor* const> monitors,
                       std::optional<pp::OutputSymbol> expected_symbol) {
  return run_trial_keep_population(protocol, workload, options, monitors,
                                   expected_symbol, nullptr);
}

CirclesTrialOutcome run_circles_trial(const core::CirclesProtocol& protocol,
                                      const analysis::Workload& workload,
                                      const TrialOptions& options) {
  core::CirclesBraKetView view(protocol);
  core::KetExchangeCounter exchanges(view);
  core::BraKetInvariantMonitor invariant(view);
  core::PotentialDescentMonitor potential(view);
  std::array<pp::Monitor*, 3> monitors{&exchanges, &invariant, &potential};

  std::unique_ptr<pp::Population> population;
  CirclesTrialOutcome outcome;
  outcome.trial = run_trial_keep_population(
      protocol, workload, options,
      std::span<pp::Monitor* const>(monitors.data(), monitors.size()),
      std::nullopt, &population);

  outcome.ket_exchanges = exchanges.exchanges();
  outcome.diagonal_creations = exchanges.diagonal_creations();
  outcome.diagonal_destructions = exchanges.diagonal_destructions();
  outcome.braket_invariant_violations = invariant.violations();
  outcome.potential_descent_violations = potential.descent_violations();
  outcome.scalar_energy_increases = potential.scalar_energy_increases();
  outcome.decomposition_matches =
      core::verify_decomposition(*population, protocol, workload.counts)
          .matches;
  return outcome;
}

}  // namespace circles::sim
