// SessionBuilder: fluent construction of RunSpecs, plus one-call execution.
//
//   const sim::SpecResult r = sim::SessionBuilder()
//                                 .protocol("circles").k(5)
//                                 .n(200).workload(sim::WorkloadSpec::zipf(1.1))
//                                 .scheduler("uniform")
//                                 .trials(10).seed(42)
//                                 .run();
//   printf("correct %.0f%%\n", 100 * r.correct_rate());
//
// build() returns the RunSpec for grid assembly; run() executes the single
// spec through a BatchRunner.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/batch_runner.hpp"
#include "sim/run_spec.hpp"

namespace circles::sim {

class SessionBuilder {
 public:
  SessionBuilder& protocol(std::string name) {
    spec_.protocol = std::move(name);
    return *this;
  }
  SessionBuilder& params(const ProtocolParams& params) {
    spec_.params = params;
    return *this;
  }
  SessionBuilder& k(std::uint32_t k) {
    spec_.params.k = k;
    return *this;
  }
  SessionBuilder& semantics(ext::TieSemantics semantics) {
    spec_.params.semantics = semantics;
    return *this;
  }
  SessionBuilder& n(std::uint64_t n) {
    spec_.n = n;
    return *this;
  }
  SessionBuilder& workload(WorkloadSpec workload) {
    spec_.workload = std::move(workload);
    return *this;
  }
  /// Fixed counts shared by every trial (sets k and n implicitly).
  SessionBuilder& counts(std::vector<std::uint64_t> counts) {
    spec_.params.k = static_cast<std::uint32_t>(counts.size());
    spec_.workload = WorkloadSpec::explicit_counts(std::move(counts));
    return *this;
  }
  SessionBuilder& scheduler(pp::SchedulerKind kind) {
    spec_.scheduler = kind;
    return *this;
  }
  SessionBuilder& scheduler(const std::string& name) {
    spec_.scheduler = pp::scheduler_kind_from_string(name);
    return *this;
  }
  SessionBuilder& scheduler_factory(SchedulerFactory factory) {
    spec_.scheduler_factory = std::move(factory);
    return *this;
  }
  /// Number of equal clusters for the clustered scheduler.
  SessionBuilder& clusters(std::uint32_t count) {
    spec_.clusters = count;
    return *this;
  }
  /// Explicit per-cluster sizes for the clustered scheduler (sum must be n).
  SessionBuilder& cluster_sizes(std::vector<std::uint64_t> sizes) {
    spec_.cluster_sizes = std::move(sizes);
    return *this;
  }
  /// Inter-cluster interaction probability of the clustered scheduler.
  SessionBuilder& bridge(double probability) {
    spec_.bridge = probability;
    return *this;
  }
  SessionBuilder& backend(EngineKind kind) {
    spec_.backend = kind;
    return *this;
  }
  SessionBuilder& backend(const std::string& name) {
    spec_.backend = engine_kind_from_string(name);
    return *this;
  }
  /// Fluid-integrator tolerances (backend=fluid / auto-resolved fluid).
  SessionBuilder& rtol(double rtol) {
    spec_.rtol = rtol;
    return *this;
  }
  SessionBuilder& atol(double atol) {
    spec_.atol = atol;
    return *this;
  }
  SessionBuilder& use_kernel(bool on = true) {
    spec_.use_kernel = on;
    return *this;
  }
  SessionBuilder& trials(std::uint32_t trials) {
    spec_.trials = trials;
    return *this;
  }
  SessionBuilder& seed(std::uint64_t seed) {
    spec_.seed = seed;
    return *this;
  }
  SessionBuilder& engine(const pp::EngineOptions& engine) {
    spec_.engine = engine;
    return *this;
  }
  SessionBuilder& max_interactions(std::uint64_t budget) {
    spec_.engine.max_interactions = budget;
    return *this;
  }
  SessionBuilder& grading(Grading grading) {
    spec_.grading = grading;
    return *this;
  }
  SessionBuilder& circles_stats(bool on = true) {
    spec_.circles_stats = on;
    return *this;
  }
  SessionBuilder& track_used_states(bool on = true) {
    spec_.track_used_states = on;
    return *this;
  }
  SessionBuilder& chemical_time(bool on = true) {
    spec_.chemical_time = on;
    return *this;
  }
  SessionBuilder& reboot_faults(std::uint32_t faults) {
    spec_.reboot_faults = faults;
    return *this;
  }
  SessionBuilder& label(std::string label) {
    spec_.label = std::move(label);
    return *this;
  }
  /// Worker threads ACROSS trials (the BatchRunner's outer pool); the
  /// inner, inside-a-run knob is run_threads().
  SessionBuilder& threads(std::uint32_t threads) {
    batch_.threads = threads;
    return *this;
  }
  /// Worker threads INSIDE each trial's run (dense backends; see
  /// RunSpec::run_threads). 0 = let the BatchRunner budget inner vs outer;
  /// results are bitwise identical for every value.
  SessionBuilder& run_threads(std::uint32_t threads) {
    spec_.run_threads = threads;
    return *this;
  }
  /// Attach a telemetry registry: engine counters, kernel stats, and batch
  /// phase timers land in `registry` (caller-owned; must outlive run()).
  SessionBuilder& metrics(metrics::MetricsRegistry* registry) {
    batch_.metrics = registry;
    return *this;
  }
  /// Write this spec's metrics to `path` (.jsonl or .csv) with a
  /// "<path minus extension>.manifest.json" provenance record next to it.
  SessionBuilder& metrics_out(std::string path) {
    spec_.metrics_out = std::move(path);
    return *this;
  }
  /// Attach a span tracer: batch phases, per-trial spans, engine regions and
  /// pool-worker attribution land in `tracer` (caller-owned; must outlive
  /// run()), and failing trials dump flight-recorder REPRO lines to stderr.
  SessionBuilder& spans(trace::Tracer* tracer) {
    batch_.tracer = tracer;
    return *this;
  }
  /// Write this spec's span timeline to `path` as Chrome Trace Event Format
  /// JSON (open in chrome://tracing or ui.perfetto.dev). The count-probe
  /// sibling is trace= / RunSpec::probes — see run_spec.hpp.
  SessionBuilder& spans_out(std::string path) {
    spec_.spans_out = std::move(path);
    return *this;
  }
  /// Progress heartbeat on a wall-clock cadence (default 2 s); see
  /// BatchOptions::progress.
  SessionBuilder& progress(std::function<void(const BatchProgress&)> callback,
                           double interval_s = 2.0) {
    batch_.progress = std::move(callback);
    batch_.progress_interval_s = interval_s;
    return *this;
  }

  const RunSpec& build() const { return spec_; }

  /// Executes this single spec (trials may still run in parallel).
  SpecResult run(const ProtocolRegistry& registry =
                     ProtocolRegistry::global()) const {
    return BatchRunner(batch_, registry).run_one(spec_);
  }

 private:
  RunSpec spec_;
  BatchOptions batch_;
};

}  // namespace circles::sim
