// Single-trial execution: build population from workload, run, grade.
//
// This is the execution core of the circles::sim session API. The historical
// entry points analysis::run_trial / analysis::run_circles_trial are thin
// aliases over this layer, so all call sites — tests, examples, experiment
// binaries and the BatchRunner — share one implementation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>

#include "analysis/workload.hpp"
#include "core/circles_protocol.hpp"
#include "pp/engine.hpp"
#include "pp/scheduler.hpp"

namespace circles::dense {
class DenseEngine;
}

namespace circles::fluid {
class FluidEngine;
}

namespace circles::kernel {
class CompiledProtocol;
}

namespace circles::obs {
class Recorder;
}

namespace circles::sim {

/// Optional scheduler override: receives (n, seed) and returns the scheduler
/// to drive the trial. Used for schedulers outside the SchedulerKind zoo
/// (e.g. graph-restricted topologies).
using SchedulerFactory = std::function<std::unique_ptr<pp::Scheduler>(
    std::uint32_t n, std::uint64_t seed)>;

struct TrialOptions {
  pp::SchedulerKind scheduler = pp::SchedulerKind::kUniformRandom;
  std::uint64_t seed = 1;
  pp::EngineOptions engine = {};
  /// When set, overrides `scheduler`.
  SchedulerFactory scheduler_factory;
  /// Clustered-scheduler shape, consumed only when `scheduler` is
  /// kClustered (by the agent engine's scheduler and by the dense urn
  /// engine's lumping alike).
  pp::ClusteredOptions clustered;
  /// Prebuilt kernel for the trial's protocol (the BatchRunner compiles one
  /// per spec and shares it across trials/threads). Null: a one-shot kernel
  /// is compiled per trial.
  const kernel::CompiledProtocol* kernel = nullptr;
  /// false = legacy virtual-dispatch interaction loop (the bench baseline);
  /// bitwise-identical results, slower wall clock. Ignores `kernel`.
  bool use_kernel = true;
  /// Fluid-backend integrator tolerances (run_fluid_trial only); 0 = the
  /// FluidOptions defaults.
  double rtol = 0.0;
  double atol = 0.0;
  /// Count-level observation (obs::): when set, the trial attaches an
  /// obs::RecorderMonitor on the agent backend (plus any probe's
  /// as_monitor() escape hatch) or hands the recorder to the dense engine,
  /// so one probe pipeline observes every backend. Never perturbs the
  /// trial's RNG streams — results are bitwise identical with or without.
  obs::Recorder* recorder = nullptr;
};

/// Outcome of running any plurality protocol on a workload.
struct TrialOutcome {
  pp::RunResult run;
  std::optional<pp::ColorId> expected_winner;
  /// Silent final configuration with every agent announcing the winner.
  bool correct = false;
  /// Final configuration reached consensus on some symbol (maybe wrong).
  std::optional<pp::OutputSymbol> consensus;
};

/// Builds the population from the workload (shuffled assignment), runs the
/// protocol to silence/budget, and grades the outcome. `expected_symbol`
/// overrides the graded target (used by tie semantics where the correct
/// output is not the plurality winner); by default the workload's unique
/// winner is the target.
TrialOutcome run_trial(const pp::Protocol& protocol,
                       const analysis::Workload& workload,
                       const TrialOptions& options,
                       std::span<pp::Monitor* const> monitors = {},
                       std::optional<pp::OutputSymbol> expected_symbol = {});

/// Like run_trial, but hands back the final population through
/// `final_population` for callers that grade per-agent outputs or inspect
/// the stable configuration. `assigned_colors`, when non-null, receives the
/// input color of each agent (index-aligned with the population).
TrialOutcome run_trial_keep_population(
    const pp::Protocol& protocol, const analysis::Workload& workload,
    const TrialOptions& options, std::span<pp::Monitor* const> monitors,
    std::optional<pp::OutputSymbol> expected_symbol,
    std::unique_ptr<pp::Population>* final_population,
    std::vector<pp::ColorId>* assigned_colors = nullptr);

/// Grades an already-finished run against the workload's winner (or an
/// explicit expected symbol): consensus extraction + correctness verdict.
TrialOutcome grade_run(const pp::RunResult& run,
                       const analysis::Workload& workload,
                       std::optional<pp::OutputSymbol> expected_symbol = {});

/// Count-based trial: builds a dense configuration from the workload (no
/// agent array, so n is bounded by memory for counts, not agents), runs the
/// dense engine under the options' scheduler semantics, and grades the
/// outcome exactly like run_trial. Lumpable schedulers only: uniform runs
/// on a single count vector, clustered partitions the workload into urns
/// (per options.clustered) and simulates the exact lumped block chain.
/// `batched` selects DenseMode::kBatched. Rejects options carrying
/// agent-level features (non-lumpable scheduler or a scheduler_factory).
/// `engine`, when non-null, must be a DenseEngine built from
/// (protocol, options.engine, batched) with the matching lumping — the
/// BatchRunner passes one per spec so the transition table is not rebuilt
/// per trial.
TrialOutcome run_dense_trial(const pp::Protocol& protocol,
                             const analysis::Workload& workload,
                             const TrialOptions& options, bool batched,
                             std::optional<pp::OutputSymbol> expected_symbol = {},
                             const dense::DenseEngine* engine = nullptr);

/// Mean-field trial: builds the same workload configuration run_dense_trial
/// would (identical RNG consumption, so the two backends see identical
/// per-trial workloads and urn splits), integrates it with the
/// fluid::FluidEngine and grades the outcome the same way. Same scheduler
/// restrictions as the dense trials (lumpable only). `engine`, when
/// non-null, must be a FluidEngine built from (protocol, options.engine,
/// tolerances) with the matching lumping — the BatchRunner passes one per
/// spec so the drift table is not recompiled per trial.
TrialOutcome run_fluid_trial(const pp::Protocol& protocol,
                             const analysis::Workload& workload,
                             const TrialOptions& options,
                             std::optional<pp::OutputSymbol> expected_symbol = {},
                             const fluid::FluidEngine* engine = nullptr);

/// Circles-specific trial with the paper's instrumentation attached:
/// exchange counting, invariant checking and the Lemma 3.6 decomposition
/// verdict.
struct CirclesTrialOutcome {
  TrialOutcome trial;
  std::uint64_t ket_exchanges = 0;
  std::uint64_t diagonal_creations = 0;
  std::uint64_t diagonal_destructions = 0;
  std::uint64_t braket_invariant_violations = 0;
  std::uint64_t potential_descent_violations = 0;
  std::uint64_t scalar_energy_increases = 0;
  bool decomposition_matches = false;
};

CirclesTrialOutcome run_circles_trial(const core::CirclesProtocol& protocol,
                                      const analysis::Workload& workload,
                                      const TrialOptions& options);

}  // namespace circles::sim
