#include "sim/specs_from_flags.hpp"

#include <stdexcept>

namespace circles::sim {

namespace {

void require_non_negative(const char* flag,
                          const std::vector<std::int64_t>& values) {
  for (const auto v : values) {
    if (v < 0) {
      throw std::invalid_argument("flag --" + std::string(flag) +
                                  " expects non-negative values, got " +
                                  std::to_string(v));
    }
  }
}

}  // namespace

SweepSpecs specs_from_flags(util::Cli& cli, const SweepFlagDefaults& defaults) {
  const auto protocols = cli.string_list_flag(
      "protocol", defaults.protocols, "protocol registry names to sweep");
  const auto ks =
      cli.int_list_flag("k", defaults.ks, "color counts to sweep");
  const auto ns =
      cli.int_list_flag("n", defaults.ns, "population sizes to sweep");
  const auto schedulers = cli.string_list_flag(
      "scheduler", defaults.schedulers,
      "schedulers to sweep (uniform, round_robin, shuffled, adversarial, "
      "clustered)");
  const auto backends = cli.string_list_flag(
      "backend", defaults.backends,
      "simulation backends to sweep (agent, dense, dense_batched, fluid, "
      "auto)");
  const auto rtol = cli.double_flag(
      "rtol", 0.0,
      "fluid-backend relative step tolerance (0 = engine default; "
      "fluid/auto cells only)");
  const auto atol = cli.double_flag(
      "atol", 0.0,
      "fluid-backend absolute step tolerance (0 = engine default; "
      "fluid/auto cells only)");
  const std::string clusters_flag = cli.string_flag(
      "clusters", "",
      "clustered-scheduler shape: one value = number of equal clusters, "
      "several = explicit cluster sizes (clustered cells only)");
  std::vector<std::int64_t> clusters;
  for (const auto& part : util::split_commas(clusters_flag)) {
    std::size_t used = 0;
    std::int64_t value = 0;
    try {
      value = std::stoll(part, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    // Full-token match only ("4x" / "2.5" must not silently truncate), and
    // zero is rejected here the same way RunSpec::parse rejects clusters=0.
    if (used != part.size() || value < 1) {
      throw std::invalid_argument(
          "flag --clusters expects comma-separated positive integers, got '" +
          clusters_flag + "'");
    }
    clusters.push_back(value);
  }
  const auto bridge = cli.double_flag(
      "bridge", 0.01,
      "clustered-scheduler inter-cluster interaction probability");
  const auto workload = WorkloadSpec::parse(cli.string_flag(
      "workload", defaults.workload,
      "workload family (unique, random, tie:<t>, margin1, dominant:<s>, "
      "zipf:<s>, counts:<c0,c1,...>)"));
  const auto trials =
      cli.int_flag("trials", defaults.trials, "trials per grid cell");
  const auto seed = static_cast<std::uint64_t>(
      cli.int_flag("seed", defaults.seed, "base rng seed"));
  const auto budget = cli.int_flag(
      "budget", defaults.budget, "interaction budget (0 = engine default)");
  const auto run_threads = cli.int_flag(
      "run-threads", 0,
      "worker threads INSIDE each run (dense backends; 0 = auto-budget "
      "against the outer --threads pool; results are bitwise identical for "
      "every value)");

  require_non_negative("k", ks);
  require_non_negative("n", ns);
  require_non_negative("trials", {trials});
  require_non_negative("budget", {budget});
  require_non_negative("clusters", clusters);
  if (run_threads < 0) {
    throw std::invalid_argument(
        "flag --run-threads expects a non-negative inner (inside-a-run) "
        "thread count, got " + std::to_string(run_threads) +
        "; the outer across-trial pool is the separate --threads flag");
  }

  SweepSpecs out;
  out.base_seed = seed;
  for (const auto& protocol : protocols) {
    for (const auto k : ks) {
      for (const auto n : ns) {
        for (const auto& scheduler : schedulers) {
          for (const auto& backend : backends) {
            RunSpec spec;
            spec.protocol = protocol;
            spec.params.k = static_cast<std::uint32_t>(k);
            spec.n = static_cast<std::uint64_t>(n);
            spec.workload = workload;
            spec.scheduler = pp::scheduler_kind_from_string(scheduler);
            spec.backend = engine_kind_from_string(backend);
            // The tolerances are fluid-only knobs; applying them to the
            // whole cross product would make the BatchRunner reject the
            // agent/dense cells of a mixed-backend sweep.
            if (spec.backend == EngineKind::kFluid ||
                spec.backend == EngineKind::kAuto) {
              spec.rtol = rtol;
              spec.atol = atol;
            }
            spec.trials = static_cast<std::uint32_t>(trials);
            spec.run_threads = static_cast<std::uint32_t>(run_threads);
            if (budget > 0) {
              spec.engine.max_interactions =
                  static_cast<std::uint64_t>(budget);
            }
            if (spec.scheduler == pp::SchedulerKind::kClustered) {
              if (clusters.size() == 1) {
                spec.clusters = static_cast<std::uint32_t>(clusters[0]);
              } else if (clusters.size() > 1) {
                spec.cluster_sizes.assign(clusters.begin(), clusters.end());
              }
              spec.bridge = bridge;
            }
            // Dense backends simulate lumpable schedulers (uniform,
            // clustered) only; backend=auto resolves instead of rejecting.
            // Skip the invalid corner of a multi-valued cross product; the
            // guard below still rejects a grid that asked for nothing else.
            const bool lumpable =
                spec.scheduler == pp::SchedulerKind::kUniformRandom ||
                spec.scheduler == pp::SchedulerKind::kClustered;
            if (spec.backend != EngineKind::kAgentArray &&
                spec.backend != EngineKind::kAuto && !lumpable) {
              continue;
            }
            out.specs.push_back(std::move(spec));
          }
        }
      }
    }
  }
  if (out.specs.empty()) {
    throw std::invalid_argument(
        "the requested grid is empty: count-level backends (--backend=dense, "
        "dense_batched, fluid) support lumpable schedulers only (uniform, "
        "clustered) — use --backend=auto to pick per cell");
  }
  return out;
}

}  // namespace circles::sim
