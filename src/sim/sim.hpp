// Umbrella header for the circles::sim session API.
//
// The canonical way to run anything in this repository:
//
//   * ProtocolRegistry — construct any protocol by name + params;
//   * WorkloadSpec / RunSpec — declarative description of one grid cell;
//   * SessionBuilder — fluent single-spec construction and execution;
//   * BatchRunner — parallel, deterministic execution of spec grids;
//   * specs_from_flags — the standard sweep CLI.
#pragma once

#include "sim/batch_runner.hpp"
#include "sim/registry.hpp"
#include "sim/run_spec.hpp"
#include "sim/session.hpp"
#include "sim/specs_from_flags.hpp"
#include "sim/trial.hpp"
