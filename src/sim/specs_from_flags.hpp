// specs_from_flags: turn the standard sweep flags into a RunSpec grid.
//
// Declares --protocol/--k/--n/--scheduler/--workload (all comma-separated
// lists) plus --trials/--seed/--budget on the given Cli and returns the full
// cross product as RunSpecs. Experiment binaries that are "a sweep plus a
// verdict" reduce to: parse flags, maybe tweak the specs, BatchRunner::run,
// format.
//
//   util::Cli cli(argc, argv);
//   auto specs = sim::specs_from_flags(cli, {.protocols = "circles",
//                                            .ks = "2,4,8",
//                                            .ns = "8,32,128"});
//   cli.finish();
//   const auto results = sim::BatchRunner().run(specs);
#pragma once

#include <string>
#include <vector>

#include "sim/run_spec.hpp"
#include "util/cli.hpp"

namespace circles::sim {

/// Default flag values (rendered in --help exactly as typed).
struct SweepFlagDefaults {
  std::string protocols = "circles";
  std::string ks = "4";
  std::string ns = "64";
  std::string schedulers = "uniform";
  std::string backends = "agent";
  std::string workload = "unique";
  std::int64_t trials = 5;
  std::int64_t seed = 1;
  std::int64_t budget = 0;  // 0 = engine default
};

struct SweepSpecs {
  std::vector<RunSpec> specs;
  /// The parsed --seed, to be used as BatchOptions::base_seed.
  std::uint64_t base_seed = 1;
};

/// Cross product: protocol x k x n x scheduler x backend (workload/trials/
/// budget are shared). Specs do not fix their own seed, so the BatchRunner
/// derives per-spec streams from base_seed.
SweepSpecs specs_from_flags(util::Cli& cli,
                            const SweepFlagDefaults& defaults = {});

}  // namespace circles::sim
