#include "sim/registry.hpp"

#include <stdexcept>
#include <utility>

#include "baselines/approx_majority_3state.hpp"
#include "baselines/exact_majority_4state.hpp"
#include "baselines/pairwise_plurality.hpp"
#include "core/circles_protocol.hpp"
#include "extensions/ordering.hpp"
#include "extensions/tie_report.hpp"
#include "extensions/unordered_circles.hpp"

namespace circles::sim {

namespace {

void require_k(const std::string& name, const ProtocolParams& params,
               std::uint32_t lo, std::uint32_t hi) {
  if (params.k < lo || params.k > hi) {
    throw std::invalid_argument(
        "protocol '" + name + "' requires k in [" + std::to_string(lo) + ", " +
        std::to_string(hi) + "], got k=" + std::to_string(params.k));
  }
}

}  // namespace

void ProtocolRegistry::register_protocol(const std::string& name,
                                         Factory factory) {
  if (name.empty()) {
    throw std::invalid_argument("protocol name must not be empty");
  }
  if (!factories_.emplace(name, std::move(factory)).second) {
    throw std::invalid_argument("protocol '" + name + "' already registered");
  }
}

std::unique_ptr<pp::Protocol> ProtocolRegistry::create(
    const std::string& name, const ProtocolParams& params) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& [key, factory] : factories_) {
      (void)factory;
      if (!known.empty()) known += ", ";
      known += key;
    }
    throw std::invalid_argument("unknown protocol '" + name +
                                "' (known: " + known + ")");
  }
  return it->second(params);
}

bool ProtocolRegistry::contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> ProtocolRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [key, factory] : factories_) {
    (void)factory;
    out.push_back(key);
  }
  return out;  // std::map iterates sorted
}

ProtocolRegistry ProtocolRegistry::with_builtins() {
  ProtocolRegistry registry;
  registry.register_protocol(
      "circles", [](const ProtocolParams& p) -> std::unique_ptr<pp::Protocol> {
        require_k("circles", p, 1, 1024);
        return std::make_unique<core::CirclesProtocol>(p.k);
      });
  registry.register_protocol(
      "tie_report",
      [](const ProtocolParams& p) -> std::unique_ptr<pp::Protocol> {
        require_k("tie_report", p, 1, 812);
        return std::make_unique<ext::TieReportProtocol>(p.k);
      });
  registry.register_protocol(
      "tie_aware_pairwise",
      [](const ProtocolParams& p) -> std::unique_ptr<pp::Protocol> {
        require_k("tie_aware_pairwise", p, 2, 5);
        return std::make_unique<ext::TieAwarePairwise>(p.k, p.semantics);
      });
  registry.register_protocol(
      "unordered_circles",
      [](const ProtocolParams& p) -> std::unique_ptr<pp::Protocol> {
        require_k("unordered_circles", p, 1, 215);
        return std::make_unique<ext::UnorderedCirclesProtocol>(p.k);
      });
  registry.register_protocol(
      "ordering", [](const ProtocolParams& p) -> std::unique_ptr<pp::Protocol> {
        require_k("ordering", p, 1, 32768);
        return std::make_unique<ext::OrderingProtocol>(p.k);
      });
  registry.register_protocol(
      "pairwise_plurality",
      [](const ProtocolParams& p) -> std::unique_ptr<pp::Protocol> {
        require_k("pairwise_plurality", p, 2, 6);
        return std::make_unique<baselines::PairwisePlurality>(p.k);
      });
  registry.register_protocol(
      "exact_majority_4state",
      [](const ProtocolParams& p) -> std::unique_ptr<pp::Protocol> {
        require_k("exact_majority_4state", p, 2, 2);
        return std::make_unique<baselines::ExactMajority4State>();
      });
  registry.register_protocol(
      "approx_majority_3state",
      [](const ProtocolParams& p) -> std::unique_ptr<pp::Protocol> {
        require_k("approx_majority_3state", p, 2, 2);
        return std::make_unique<baselines::ApproxMajority3State>();
      });
  return registry;
}

ProtocolRegistry& ProtocolRegistry::global() {
  static ProtocolRegistry registry = with_builtins();
  return registry;
}

}  // namespace circles::sim
