// ProtocolRegistry: construct any protocol in the tree by name + params.
//
// The registry is the first layer of the circles::sim session API. Drivers
// (experiment binaries, examples, the BatchRunner) never name concrete
// protocol classes; they ask the registry for "circles", "tie_report",
// "pairwise_plurality", ... and receive a pp::Protocol. That makes every
// sweep generic over the protocol axis: adding a protocol to the repo is
// one register_protocol() call, after which every existing driver can run
// it.
//
// Errors (unknown name, invalid parameters such as k != 2 for the binary
// baselines) are reported as std::invalid_argument with the known names
// listed, so CLI typos fail loudly and helpfully.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "extensions/tie_aware_pairwise.hpp"
#include "pp/protocol.hpp"

namespace circles::sim {

/// Constructor parameters understood by the built-in protocol factories.
/// Protocols ignore the fields they do not use.
struct ProtocolParams {
  /// Number of input colors. Fixed-k protocols (the k = 2 baselines) reject
  /// any other value instead of silently ignoring it.
  std::uint32_t k = 2;

  /// Tie semantics, consumed by "tie_aware_pairwise" only.
  ext::TieSemantics semantics = ext::TieSemantics::kReport;
};

class ProtocolRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<pp::Protocol>(const ProtocolParams&)>;

  /// Registers a factory under `name`. Throws std::invalid_argument if the
  /// name is already taken.
  void register_protocol(const std::string& name, Factory factory);

  /// Constructs the named protocol. Throws std::invalid_argument for an
  /// unknown name (listing the known ones) or invalid params.
  std::unique_ptr<pp::Protocol> create(const std::string& name,
                                       const ProtocolParams& params = {}) const;

  bool contains(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> names() const;

  /// The process-wide registry, pre-populated with every protocol in the
  /// repository:
  ///   circles, tie_report, tie_aware_pairwise, unordered_circles, ordering,
  ///   pairwise_plurality, exact_majority_4state, approx_majority_3state.
  static ProtocolRegistry& global();

  /// A registry with the built-ins but independent of global() (for tests
  /// and embedders that add their own protocols).
  static ProtocolRegistry with_builtins();

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace circles::sim
