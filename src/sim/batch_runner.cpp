#include "sim/batch_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include "core/decomposition.hpp"
#include "core/invariants.hpp"
#include "crn/gillespie.hpp"
#include "dense/dense_engine.hpp"
#include "fluid/fluid_engine.hpp"
#include "metrics/metrics.hpp"
#include "obs/monitor_probe.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"

namespace circles::sim {

namespace {

/// ASCII "WORKLOAD": salt separating the workload-materialization stream
/// from the population/scheduler stream of the same trial.
constexpr std::uint64_t kWorkloadSalt = 0x574f524b4c4f4144ULL;

/// Counts distinct states ever occupied during one run.
class UsedStatesMonitor final : public pp::Monitor {
 public:
  void on_start(const pp::Population& population,
                const pp::Protocol&) override {
    for (const pp::StateId s : population.present_states()) seen_.insert(s);
  }
  void on_interaction(const pp::InteractionEvent& event,
                      const pp::Population&) override {
    seen_.insert(event.initiator_after);
    seen_.insert(event.responder_after);
  }
  std::uint64_t used() const { return seen_.size(); }

 private:
  std::unordered_set<pp::StateId> seen_;
};

/// Milliseconds elapsed since `start` on the steady clock.
double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Sink path -> manifest path: "runs/cell3.jsonl" -> "runs/cell3.manifest.json"
/// (an unrecognized or missing extension just gets ".manifest.json" appended).
std::string manifest_path(const std::string& sink_path) {
  const std::size_t dot = sink_path.find_last_of('.');
  const std::size_t slash = sink_path.find_last_of('/');
  if (dot != std::string::npos &&
      (slash == std::string::npos || dot > slash)) {
    const std::string ext = sink_path.substr(dot);
    if (ext == ".jsonl" || ext == ".csv" || ext == ".json") {
      return sink_path.substr(0, dot) + ".manifest.json";
    }
  }
  return sink_path + ".manifest.json";
}

/// Builds the flight-recorder context for one failing trial: the full spec
/// string with the resolved backend baked in (so the REPRO line replays on
/// the same concrete engine), plus the graded verdict when the trial
/// produced one (`rec == nullptr`: the trial died in an exception).
trace::FailureContext failure_context(const RunSpec& spec, EngineKind backend,
                                      std::uint32_t trial_index,
                                      std::uint64_t trial_seed,
                                      const TrialRecord* rec) {
  trace::FailureContext ctx;
  RunSpec resolved = spec;
  resolved.backend = backend;
  // Forensics hygiene: the replay must not clobber the original run's sink
  // files, so the REPRO spec drops the output paths (they never affect
  // results — tracing and metrics are observation-only by contract).
  resolved.metrics_out.clear();
  resolved.spans_out.clear();
  ctx.spec = resolved.to_string();
  ctx.backend = sim::to_string(backend);
  ctx.trial_index = trial_index;
  ctx.trial_seed = trial_seed;
  if (rec != nullptr) {
    const pp::RunResult& run = rec->outcome.run;
    ctx.reason = run.budget_exhausted ? "budget_exhausted" : "grader fail";
    ctx.verdict = "correct=" + std::to_string(rec->outcome.correct ? 1 : 0) +
                  " silent=" + std::to_string(run.silent ? 1 : 0) +
                  " budget_exhausted=" +
                  std::to_string(run.budget_exhausted ? 1 : 0) +
                  " interactions=" + std::to_string(run.interactions) +
                  " state_changes=" + std::to_string(run.state_changes);
    std::string outputs;
    for (std::size_t i = 0; i < run.final_outputs.size(); ++i) {
      if (i != 0) outputs += ' ';
      outputs += std::to_string(run.final_outputs[i]);
    }
    ctx.final_outputs = outputs;
  }
  return ctx;
}

void aggregate(SpecResult& result, bool keep_trials) {
  result.trial_count = static_cast<std::uint32_t>(result.trials.size());
  std::vector<double> interactions, state_changes, exchanges, stabilization,
      convergence, trial_ms;
  interactions.reserve(result.trials.size());
  for (const TrialRecord& rec : result.trials) {
    result.correct += rec.outcome.correct ? 1 : 0;
    result.silent += rec.outcome.run.silent ? 1 : 0;
    result.budget_exhausted += rec.outcome.run.budget_exhausted ? 1 : 0;
    result.consensus +=
        (rec.outcome.run.silent && rec.outcome.consensus.has_value()) ? 1 : 0;
    result.decomposition_matches += rec.decomposition_matches ? 1 : 0;
    result.braket_invariant_violations += rec.braket_invariant_violations;
    result.potential_descent_violations += rec.potential_descent_violations;
    result.scalar_energy_increases += rec.scalar_energy_increases;
    interactions.push_back(static_cast<double>(rec.outcome.run.interactions));
    state_changes.push_back(static_cast<double>(rec.outcome.run.state_changes));
    exchanges.push_back(static_cast<double>(rec.ket_exchanges));
    stabilization.push_back(rec.stabilization_time);
    convergence.push_back(rec.convergence_time);
    trial_ms.push_back(rec.wall_ms);
  }
  result.interactions = util::summarize(interactions);
  result.state_changes = util::summarize(state_changes);
  result.ket_exchanges = util::summarize(exchanges);
  result.stabilization_time = util::summarize(stabilization);
  result.convergence_time = util::summarize(convergence);
  result.trial_ms = util::summarize(trial_ms);

  // Cross-trial trace aggregation: one quantile envelope per probe spec,
  // resampled onto the probe's grid shape (before keep_trials can discard
  // the per-trial traces).
  result.trace_envelopes.clear();
  for (std::size_t j = 0; j < result.spec.probes.size(); ++j) {
    std::vector<const obs::TraceTable*> traces;
    traces.reserve(result.trials.size());
    for (const TrialRecord& rec : result.trials) {
      if (j < rec.traces.size()) traces.push_back(&rec.traces[j]);
    }
    obs::EnvelopeOptions envelope_options;
    const obs::GridSpec& grid = result.spec.probes[j].grid;
    envelope_options.points = grid.points;
    envelope_options.spacing = grid.spacing;
    envelope_options.grid_fractions = grid.fractions;
    if (result.spec.chemical_time) {
      envelope_options.x_column = "chemical_time";
    } else {
      envelope_options.x_column = "interactions";
      // All-zero on discrete backends; quantiles of it are noise.
      envelope_options.exclude_columns = {"chemical_time"};
    }
    result.trace_envelopes.push_back(obs::envelope(traces, envelope_options));
  }

  if (!keep_trials) {
    result.trials.clear();
    result.trials.shrink_to_fit();
  }
}

}  // namespace

BatchRunner::BatchRunner(BatchOptions options, const ProtocolRegistry& registry)
    : options_(options), registry_(&registry) {}

TrialRecord BatchRunner::execute_trial(const pp::Protocol& protocol,
                                       const RunSpec& spec,
                                       std::uint64_t trial_seed,
                                       const kernel::CompiledProtocol* kernel,
                                       const dense::DenseEngine* dense_engine,
                                       EngineKind backend_resolved,
                                       const fluid::FluidEngine* fluid_engine,
                                       metrics::MetricsRegistry* metrics,
                                       trace::Tracer* tracer) {
  const EngineKind backend = backend_resolved == EngineKind::kAuto
                                 ? spec.backend
                                 : backend_resolved;
  CIRCLES_CHECK_MSG(backend != EngineKind::kAuto,
                    "execute_trial needs a concrete backend; backend=auto "
                    "specs are resolved by BatchRunner::run");
  TrialRecord rec;
  rec.seed = trial_seed;

  // Trial wall clock: stamped on every return path via RAII, so latency
  // quantiles cover dense/fluid, chemical and agent trials alike.
  struct WallClock {
    TrialRecord& rec;
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
    ~WallClock() { rec.wall_ms = elapsed_ms(start); }
  } wall_clock{rec};

  // Engine options actually used: the spec's, with the caller's registry
  // injected unless the spec already routes to one. This copy never touches
  // the fields the prebuilt-engine consistency checks compare.
  pp::EngineOptions engine_options = spec.engine;
  if (engine_options.metrics == nullptr) engine_options.metrics = metrics;
  if (engine_options.tracer == nullptr) engine_options.tracer = tracer;

  // One span per trial, on whichever worker thread runs it; engines nest
  // their own spans inside. Registers the thread on first use so batch
  // workers get distinct named tracks in the exported timeline.
  const trace::ScopedSpan trial_span(
      trace::buffer(engine_options.tracer, "trial-worker"), "batch.trial");
  // An explicit per-spec inner width overrides the engine default; 0 keeps
  // whatever the options carry (1 when locally built, or the budgeted width
  // BatchRunner::run baked into a prebuilt dense engine).
  if (spec.run_threads > 0) engine_options.run_threads = spec.run_threads;
  util::Rng workload_rng(mix_seed(trial_seed, kWorkloadSalt));
  rec.workload =
      spec.workload.materialize(workload_rng, spec.n, protocol.num_colors());
  CIRCLES_CHECK_MSG(rec.workload.k() == protocol.num_colors(),
                    "workload color count does not match the protocol");

  std::optional<pp::OutputSymbol> expected;
  if (spec.grading == Grading::kTieAware) {
    const auto winner = rec.workload.winner();
    // Tie-handling protocols place their TIE symbol at index k.
    expected = winner.has_value() ? *winner : protocol.num_colors();
  }

  // Probe pipeline, shared by every backend: one recorder per trial, one
  // probe instance per spec entry, traces collected onto the record.
  std::vector<std::unique_ptr<obs::Probe>> probe_objects;
  std::optional<obs::Recorder> recorder;
  if (!spec.probes.empty()) {
    obs::RecorderOptions recorder_options;
    recorder_options.interaction_horizon = spec.engine.max_interactions;
    recorder_options.tracer = engine_options.tracer;
    if (spec.chemical_time) {
      recorder_options.clock = obs::RecorderOptions::Clock::kChemical;
      recorder_options.chemical_horizon =
          static_cast<double>(spec.engine.max_interactions) /
          static_cast<double>(std::max<std::uint64_t>(rec.workload.n(), 1));
    }
    recorder.emplace(recorder_options);
    // ConvergenceProbe grades against the same target symbol the trial
    // grading uses: the tie-aware expectation when set, else the workload's
    // unique plurality winner.
    std::optional<pp::OutputSymbol> target = expected;
    if (!target.has_value()) {
      if (const auto winner = rec.workload.winner()) target = *winner;
    }
    for (const obs::ProbeSpec& probe_spec : spec.probes) {
      probe_objects.push_back(obs::make_probe(probe_spec, protocol, target));
      recorder->add(probe_objects.back().get(), probe_spec.grid);
    }
  }
  const auto collect_traces = [&]() {
    if (!recorder.has_value()) return;
    rec.traces.reserve(probe_objects.size());
    for (const auto& probe : probe_objects) {
      rec.traces.push_back(probe->take_table());
    }
  };

  if (backend != EngineKind::kAgentArray) {
    TrialOptions options;
    options.seed = trial_seed;
    options.engine = engine_options;
    options.scheduler = spec.scheduler;
    options.clustered = spec.clustered_options();
    options.kernel = kernel;
    options.use_kernel = spec.use_kernel;
    options.recorder = recorder.has_value() ? &*recorder : nullptr;
    if (backend == EngineKind::kFluid) {
      options.rtol = spec.rtol;
      options.atol = spec.atol;
      rec.outcome = run_fluid_trial(protocol, rec.workload, options, expected,
                                    fluid_engine);
    } else {
      rec.outcome =
          run_dense_trial(protocol, rec.workload, options,
                          backend == EngineKind::kDenseBatched, expected,
                          dense_engine);
    }
    collect_traces();
    return rec;
  }

  // The RNG consumption order below (colors, then one split for the
  // scheduler/gillespie seed) matches sim::run_trial exactly, so a RunSpec
  // trial with seed s reproduces run_trial(..., {.seed = s}) bit for bit.
  util::Rng rng(trial_seed);
  const auto colors = rec.workload.agent_colors(rng);
  CIRCLES_CHECK_MSG(colors.size() >= 2, "trials need at least two agents");
  const auto n = static_cast<std::uint32_t>(colors.size());
  const std::uint64_t derived_seed = rng.split()();

  if (spec.chemical_time) {
    obs::Recorder* chem_recorder = recorder.has_value() ? &*recorder : nullptr;
    crn::GillespieResult result;
    if (kernel != nullptr) {
      result = crn::run_gillespie(*kernel, colors, derived_seed,
                                  engine_options, chem_recorder);
    } else if (spec.use_kernel) {
      result = crn::run_gillespie(protocol, colors, derived_seed,
                                  engine_options, chem_recorder);
    } else {
      result = crn::run_gillespie_virtual(protocol, colors, derived_seed,
                                          engine_options, chem_recorder);
    }
    rec.outcome = grade_run(result.run, rec.workload, expected);
    rec.stabilization_time = result.stabilization_time;
    rec.convergence_time = result.convergence_time;
    collect_traces();
    return rec;
  }

  const auto* circles =
      spec.circles_stats
          ? dynamic_cast<const core::CirclesProtocol*>(&protocol)
          : nullptr;
  CIRCLES_CHECK_MSG(!spec.circles_stats || circles != nullptr,
                    "circles_stats requires the circles protocol");

  std::optional<core::CirclesBraKetView> view;
  std::optional<core::KetExchangeCounter> exchange_counter;
  std::optional<core::BraKetInvariantMonitor> invariant;
  std::optional<core::PotentialDescentMonitor> potential;
  UsedStatesMonitor used_states;
  std::vector<pp::Monitor*> monitors;
  if (circles != nullptr) {
    view.emplace(*circles);
    exchange_counter.emplace(*view);
    invariant.emplace(*view);
    potential.emplace(*view);
    monitors.insert(monitors.end(),
                    {&*exchange_counter, &*invariant, &*potential});
  }
  if (spec.track_used_states) monitors.push_back(&used_states);

  pp::Population population(protocol, colors);
  const pp::ClusteredOptions clustered = spec.clustered_options();
  auto scheduler =
      spec.scheduler_factory
          ? spec.scheduler_factory(n, derived_seed)
          : pp::make_scheduler(spec.scheduler, n, derived_seed, &protocol,
                               &clustered);

  // One kernel for all engine invocations of this trial (the fault bursts
  // below re-enter the engine): the spec's shared kernel when provided, a
  // one-shot compile otherwise, or none at all on the legacy virtual path.
  std::optional<kernel::CompiledProtocol> local_kernel;
  const kernel::CompiledProtocol* trial_kernel = kernel;
  if (spec.use_kernel && trial_kernel == nullptr) {
    local_kernel.emplace(protocol, kernel::CompileOptions::one_shot());
    trial_kernel = &*local_kernel;
  }

  // The count pipeline rides the monitor list; probes wrapping legacy
  // monitors (Probe::as_monitor) see the raw event stream next to it.
  std::optional<obs::RecorderMonitor> recorder_monitor;
  if (recorder.has_value()) {
    recorder_monitor.emplace(*recorder, trial_kernel);
    monitors.push_back(&*recorder_monitor);
    for (obs::Probe* probe : recorder->probes()) {
      if (pp::Monitor* monitor = probe->as_monitor()) {
        monitors.push_back(monitor);
      }
    }
  }
  const std::span<pp::Monitor* const> monitor_span(monitors.data(),
                                                   monitors.size());

  const auto run_engine = [&](const pp::EngineOptions& engine_options) {
    pp::Engine engine(engine_options);
    if (trial_kernel != nullptr) {
      return engine.run(*trial_kernel, population, *scheduler, monitor_span);
    }
    return engine.run_virtual(protocol, population, *scheduler, monitor_span);
  };

  // Transient-fault injection: run in bursts; after each burst reboot one
  // random agent to its input state (it keeps its reading, loses its
  // working memory).
  for (std::uint32_t f = 0; f < spec.reboot_faults; ++f) {
    pp::EngineOptions burst = engine_options;
    burst.max_interactions =
        spec.fault_burst_min +
        (spec.fault_burst_span ? rng.uniform_below(spec.fault_burst_span) : 0);
    burst.stop_when_silent = false;
    (void)run_engine(burst);
    const auto victim = static_cast<pp::AgentId>(rng.uniform_below(n));
    population.set_state(victim, protocol.input(colors[victim]));
  }

  const pp::RunResult run = run_engine(engine_options);
  rec.outcome = grade_run(run, rec.workload, expected);
  if (spec.grader) {
    rec.outcome.correct =
        spec.grader(protocol, rec.workload,
                    std::span<const pp::ColorId>(colors), population, run);
  }

  if (circles != nullptr) {
    rec.ket_exchanges = exchange_counter->exchanges();
    rec.diagonal_creations = exchange_counter->diagonal_creations();
    rec.diagonal_destructions = exchange_counter->diagonal_destructions();
    rec.braket_invariant_violations = invariant->violations();
    rec.potential_descent_violations = potential->descent_violations();
    rec.scalar_energy_increases = potential->scalar_energy_increases();
    rec.decomposition_matches =
        core::verify_decomposition(population, *circles, rec.workload.counts)
            .matches;
  }
  if (spec.track_used_states) rec.used_states = used_states.used();
  collect_traces();
  return rec;
}

std::vector<SpecResult> BatchRunner::run(
    std::span<const RunSpec> specs) const {
  const auto batch_start = std::chrono::steady_clock::now();
  // The setup phase span opens on the batch-wide tracer only (per-spec
  // tracers do not exist yet); run/aggregate phases cover every attached
  // tracer — see phase_begin below.
  trace::TraceBuffer* batch_tb = trace::buffer(options_.tracer);
  if (batch_tb != nullptr) batch_tb->begin("batch.setup");
  // Environment fields (git describe, host, build type) are shared by every
  // spec of the batch; collected once, stamped with the batch start time.
  const metrics::RunManifest base_manifest = metrics::RunManifest::collect();

  std::vector<SpecResult> results(specs.size());
  std::vector<std::unique_ptr<pp::Protocol>> protocols;
  protocols.reserve(specs.size());
  // Telemetry registry per spec: the batch-wide one from BatchOptions,
  // overridden by a private registry for specs that want their own sink
  // file (spec.metrics_out). A spec.engine.metrics set by the caller always
  // wins inside execute_trial.
  std::vector<std::unique_ptr<metrics::MetricsRegistry>> owned_registries(
      specs.size());
  std::vector<metrics::MetricsRegistry*> spec_metrics(specs.size(),
                                                      options_.metrics);
  // Span tracer per spec, same override scheme: the batch-wide tracer from
  // BatchOptions, or a private Tracer for specs with their own spans_out
  // file (written as Chrome-trace JSON at the end of run()). A
  // spec.engine.tracer set by the caller always wins inside execute_trial.
  std::vector<std::unique_ptr<trace::Tracer>> owned_tracers(specs.size());
  std::vector<trace::Tracer*> spec_tracers(specs.size(), options_.tracer);
  // Per-spec compiled kernels: each spec's protocol is lowered exactly once
  // and the immutable kernel is shared by every trial on every thread.
  std::vector<std::shared_ptr<const kernel::CompiledProtocol>> kernels(
      specs.size());
  // Per-spec dense engines: built over the shared kernel (or the virtual
  // path when the spec turns kernels off); DenseEngine::run is
  // const/thread-safe.
  std::vector<std::unique_ptr<dense::DenseEngine>> dense_engines(specs.size());
  // Per-spec fluid engines, same sharing contract (the drift table is
  // compiled once); FluidEngine::run is const/thread-safe.
  std::vector<std::unique_ptr<fluid::FluidEngine>> fluid_engines(specs.size());
  std::vector<std::uint64_t> spec_seeds(specs.size());
  // Concrete backend per spec: spec.backend, with kAuto resolved from the
  // scheduler's lumpability, the population size and the state count.
  std::vector<EngineKind> backends(specs.size(), EngineKind::kAgentArray);

  // Outer/inner thread budget, resolved before the engines are built so the
  // inner width can be baked into the per-spec dense engines. The outer
  // across-trial pool takes the machine first (trials parallelize
  // perfectly); only when there are fewer jobs than cores do the leftover
  // cores move INSIDE the runs (dense multi-urn epoch stages). A spec with
  // run_threads != 0 pins its own inner width instead. Results are bitwise
  // identical under every split — this is purely a wall-clock decision.
  std::size_t total_jobs = 0;
  for (const RunSpec& spec : specs) total_jobs += spec.trials;
  std::uint32_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  std::uint32_t threads = options_.threads == 0 ? hw : options_.threads;
  threads = static_cast<std::uint32_t>(std::min<std::size_t>(
      threads, std::max<std::size_t>(total_jobs, 1)));
  const std::uint32_t inner_default =
      total_jobs >= hw ? 1
                       : std::max<std::uint32_t>(1, hw / std::max(threads, 1u));
  std::vector<std::uint32_t> run_threads_resolved(specs.size(), 1);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RunSpec& spec = specs[i];
    if (spec.trials == 0) {
      throw std::invalid_argument("RunSpec '" + spec.to_string() +
                                  "' needs trials >= 1");
    }
    if (spec.effective_n() < 2) {
      throw std::invalid_argument("RunSpec '" + spec.to_string() +
                                  "' needs a population of >= 2 agents");
    }
    auto protocol = registry_->create(spec.protocol, spec.params);
    if (spec.workload.family == WorkloadSpec::Family::kExplicit &&
        spec.workload.counts.size() != protocol->num_colors()) {
      throw std::invalid_argument(
          "RunSpec '" + spec.to_string() + "' fixes " +
          std::to_string(spec.workload.counts.size()) +
          " per-color counts but protocol '" + spec.protocol + "' has k=" +
          std::to_string(protocol->num_colors()) + " colors");
    }
    if (spec.circles_stats &&
        dynamic_cast<const core::CirclesProtocol*>(protocol.get()) ==
            nullptr) {
      throw std::invalid_argument(
          "circles_stats requested for non-circles protocol '" +
          spec.protocol + "'");
    }
    for (const obs::ProbeSpec& probe_spec : spec.probes) {
      // Probe/protocol mismatches (e.g. an energy probe on a weightless
      // protocol) fail here, naming the spec, instead of inside a worker.
      try {
        (void)obs::make_probe(probe_spec, *protocol);
      } catch (const std::invalid_argument& e) {
        throw std::invalid_argument("RunSpec '" + spec.to_string() +
                                    "': " + e.what());
      }
    }
    if (spec.chemical_time &&
        (spec.circles_stats || spec.track_used_states ||
         spec.reboot_faults > 0 || spec.grader || spec.scheduler_factory)) {
      throw std::invalid_argument(
          "RunSpec '" + spec.to_string() +
          "' combines chemical_time with engine-only features "
          "(circles_stats / track_used_states / reboot_faults / grader / "
          "scheduler_factory)");
    }
    if ((spec.clusters != 0 || !spec.cluster_sizes.empty()) &&
        spec.scheduler != pp::SchedulerKind::kClustered) {
      throw std::invalid_argument(
          "RunSpec '" + spec.to_string() +
          "' sets clusters= but its scheduler is '" +
          pp::to_string(spec.scheduler) +
          "'; the cluster shape belongs to scheduler=clustered");
    }
    if ((spec.rtol != 0.0 || spec.atol != 0.0) &&
        spec.backend != EngineKind::kFluid &&
        spec.backend != EngineKind::kAuto) {
      throw std::invalid_argument(
          "RunSpec '" + spec.to_string() +
          "' sets rtol/atol, which are fluid-integrator tolerances, on "
          "backend=" + sim::to_string(spec.backend) +
          "; use backend=fluid (or backend=auto) or drop the tolerances");
    }
    if (spec.rtol < 0.0 || spec.atol < 0.0) {
      throw std::invalid_argument(
          "RunSpec '" + spec.to_string() +
          "' sets a negative fluid-integrator tolerance (rtol=" +
          std::to_string(spec.rtol) + ", atol=" + std::to_string(spec.atol) +
          "); tolerances must be positive (0 = engine default)");
    }

    // Resolve the concrete backend. Auto dispatch: agent-only features or a
    // non-lumpable scheduler force the agent array; otherwise the
    // population size and state count pick the count-level engine.
    const bool agent_only_features =
        spec.circles_stats || spec.track_used_states ||
        spec.reboot_faults > 0 || static_cast<bool>(spec.grader) ||
        static_cast<bool>(spec.scheduler_factory) || spec.chemical_time;
    std::optional<pp::UrnLumping> lumping;
    if (spec.backend != EngineKind::kAgentArray && !agent_only_features) {
      try {
        lumping = scheduler_lumping(spec, protocol.get());
      } catch (const std::invalid_argument& e) {
        throw std::invalid_argument("RunSpec '" + spec.to_string() +
                                    "': " + e.what());
      }
    }
    EngineKind backend = spec.backend;
    if (backend == EngineKind::kAuto) {
      const std::uint64_t auto_n = spec.effective_n();
      if (agent_only_features || !lumping.has_value() ||
          protocol->num_states() > auto_n || auto_n < kAutoDenseMinN) {
        backend = EngineKind::kAgentArray;
      } else if (auto_n >= kAutoFluidMinN) {
        backend = EngineKind::kFluid;
      } else if (auto_n >= kAutoBatchedMinN) {
        backend = EngineKind::kDenseBatched;
      } else {
        backend = EngineKind::kDense;
      }
    }
    backends[i] = backend;

    if (backend != EngineKind::kAgentArray) {
      // The dense backends have no agent array. Count-level probes
      // (spec.probes) run on every backend; the checks below single out
      // what genuinely cannot be expressed on counts, each with its own
      // message so the fix is obvious.
      if (spec.circles_stats || spec.track_used_states) {
        throw std::invalid_argument(
            "RunSpec '" + spec.to_string() +
            "' requests pp::Monitor-based instrumentation (circles_stats / "
            "track_used_states), which needs the agent backend's "
            "per-interaction events; dense backends observe runs through "
            "count-level snapshots — attach an obs::Probe via "
            "RunSpec::probes (trace=...) instead");
      }
      if (spec.reboot_faults > 0 || spec.grader || spec.scheduler_factory) {
        throw std::invalid_argument(
            "RunSpec '" + spec.to_string() +
            "' addresses individual agents (reboot_faults / grader / "
            "scheduler_factory), which the dense count representation "
            "cannot express; use backend=agent, or backend=auto to pick a "
            "backend per spec");
      }
      if (spec.chemical_time) {
        if (backend == EngineKind::kFluid) {
          throw std::invalid_argument(
              "RunSpec '" + spec.to_string() +
              "' combines chemical_time with the fluid backend; the fluid "
              "trajectory already advances the chemical clock (trace= "
              "probes record the chemical_time column), but the Gillespie "
              "stabilization/convergence statistics ride the agent engine's "
              "event stream — use backend=agent for those");
        }
        throw std::invalid_argument(
            "RunSpec '" + spec.to_string() +
            "' combines chemical_time with a dense backend; the Gillespie "
            "clock rides the agent engine's event stream — use "
            "backend=agent (count probes still record chemical-time "
            "cadence there)");
      }
      if (!lumping.has_value()) {
        throw std::invalid_argument(
            "RunSpec '" + spec.to_string() + "' requests backend=" +
            sim::to_string(spec.backend) + " with scheduler '" +
            pp::to_string(spec.scheduler) +
            "', which has no exact count-level lumping "
            "(count-simulable schedulers: uniform, clustered); use "
            "backend=agent for this scheduler, or backend=auto to pick a "
            "backend per spec");
      }
    }
    if (!spec.metrics_out.empty()) {
      owned_registries[i] = std::make_unique<metrics::MetricsRegistry>();
      spec_metrics[i] = owned_registries[i].get();
    }
    if (!spec.spans_out.empty()) {
      owned_tracers[i] = std::make_unique<trace::Tracer>();
      spec_tracers[i] = owned_tracers[i].get();
    }
    // Engine options for the per-spec engines: the spec's, with this spec's
    // registry and tracer injected (never overriding caller-provided ones).
    pp::EngineOptions engine_options = spec.engine;
    if (engine_options.metrics == nullptr) {
      engine_options.metrics = spec_metrics[i];
    }
    if (engine_options.tracer == nullptr) {
      engine_options.tracer = spec_tracers[i];
    }
    run_threads_resolved[i] =
        spec.run_threads != 0 ? spec.run_threads : inner_default;
    engine_options.run_threads = run_threads_resolved[i];
    if (spec.use_kernel) {
      // The compile runs once per spec on this thread; its span lands in the
      // spec's own timeline so build time is visibly separate from trials.
      const trace::ScopedSpan compile_span(
          trace::buffer(engine_options.tracer), "kernel.compile");
      kernel::CompileOptions compile_options;
      // Sparse-cache hit counting costs one relaxed fetch_add per lookup on
      // THE hot path of sparse kernels; only pay it when someone is looking.
      compile_options.count_sparse_hits = engine_options.metrics != nullptr;
      kernels[i] = std::make_shared<const kernel::CompiledProtocol>(
          *protocol, compile_options);
    }
    if (backend == EngineKind::kFluid) {
      fluid::FluidOptions fluid_options;
      if (spec.rtol > 0.0) fluid_options.rtol = spec.rtol;
      if (spec.atol > 0.0) fluid_options.atol = spec.atol;
      try {
        fluid_engines[i] =
            spec.use_kernel
                ? std::make_unique<fluid::FluidEngine>(
                      kernels[i], engine_options, fluid_options, *lumping)
                : std::make_unique<fluid::FluidEngine>(
                      *protocol, engine_options, fluid_options, *lumping);
      } catch (const std::invalid_argument& e) {
        // The drift-table compile refuses protocols whose input-state
        // closure is too wide for the mean-field representation.
        if (spec.backend != EngineKind::kAuto) {
          throw std::invalid_argument("RunSpec '" + spec.to_string() +
                                      "': " + e.what());
        }
        // Auto picked fluid on size alone; fall back one tier.
        backend = EngineKind::kDenseBatched;
        backends[i] = backend;
      }
    }
    if (backend != EngineKind::kAgentArray && backend != EngineKind::kFluid) {
      const dense::DenseMode mode = backend == EngineKind::kDenseBatched
                                        ? dense::DenseMode::kBatched
                                        : dense::DenseMode::kPerStep;
      dense_engines[i] =
          spec.use_kernel
              ? std::make_unique<dense::DenseEngine>(kernels[i], engine_options,
                                                     mode, *lumping)
              : std::make_unique<dense::DenseEngine>(*protocol, engine_options,
                                                     mode, /*use_kernel=*/false,
                                                     *lumping);
    }
    protocols.push_back(std::move(protocol));
    spec_seeds[i] = spec_seed(spec, options_.base_seed, i);
    results[i].spec = spec;
    results[i].backend_resolved = backend;
    results[i].trials.resize(spec.trials);
  }

  struct Job {
    std::uint32_t spec;
    std::uint32_t trial;
  };
  std::vector<Job> jobs;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (std::uint32_t t = 0; t < specs[i].trials; ++t) {
      jobs.push_back({static_cast<std::uint32_t>(i), t});
    }
  }
  const double setup_ms = elapsed_ms(batch_start);
  if (batch_tb != nullptr) batch_tb->end("batch.setup");

  // Distinct tracers attached to this batch (batch-wide + per-spec owned):
  // the run/aggregate phase spans are emitted into each from this thread,
  // so every exported timeline carries the phase regions its trials nest
  // under.
  std::vector<trace::Tracer*> phase_tracers;
  for (trace::Tracer* tracer : spec_tracers) {
    if (tracer != nullptr &&
        std::find(phase_tracers.begin(), phase_tracers.end(), tracer) ==
            phase_tracers.end()) {
      phase_tracers.push_back(tracer);
    }
  }
  if (options_.tracer != nullptr &&
      std::find(phase_tracers.begin(), phase_tracers.end(),
                options_.tracer) == phase_tracers.end()) {
    phase_tracers.push_back(options_.tracer);
  }
  const auto phase_begin = [&](const char* name) {
    for (trace::Tracer* tracer : phase_tracers) {
      tracer->thread_buffer()->begin(name);
    }
  };
  const auto phase_end = [&](const char* name) {
    for (trace::Tracer* tracer : phase_tracers) {
      tracer->thread_buffer()->end(name);
    }
  };

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;

  // Progress accounting: relaxed atomics bumped once per completed trial;
  // the monitor thread (and the final heartbeat) read them.
  std::atomic<std::uint64_t> trials_done{0};
  std::atomic<std::uint64_t> interactions_done{0};
  std::atomic<std::uint32_t> specs_done{0};
  const auto spec_remaining =
      std::make_unique<std::atomic<std::uint32_t>[]>(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    spec_remaining[i].store(specs[i].trials, std::memory_order_relaxed);
  }

  const auto run_phase_start = std::chrono::steady_clock::now();

  const auto worker = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t index = cursor.fetch_add(1);
      if (index >= jobs.size()) break;
      const Job job = jobs[index];
      trace::Tracer* tracer = spec_tracers[job.spec];
      const std::uint64_t seed = trial_seed(spec_seeds[job.spec], job.trial);
      // Flight-recorder dump on any failed trial when a tracer is attached
      // (gating on the tracer keeps by-design-failing experiments quiet).
      const auto dump = [&](const TrialRecord* rec, std::string reason = {}) {
        if (tracer == nullptr) return;
        trace::FailureContext ctx = failure_context(
            specs[job.spec], backends[job.spec], job.trial, seed, rec);
        if (!reason.empty()) ctx.reason = std::move(reason);
        tracer->dump_failure(ctx, stderr);
      };
      try {
        TrialRecord& rec = results[job.spec].trials[job.trial];
        rec = execute_trial(*protocols[job.spec], specs[job.spec], seed,
                            kernels[job.spec].get(),
                            dense_engines[job.spec].get(), backends[job.spec],
                            fluid_engines[job.spec].get(),
                            spec_metrics[job.spec], tracer);
        metrics::record_ms(spec_metrics[job.spec], "batch.trial", rec.wall_ms);
        if (!rec.outcome.correct || rec.outcome.run.budget_exhausted) {
          dump(&rec);
        }
        trials_done.fetch_add(1, std::memory_order_relaxed);
        interactions_done.fetch_add(rec.outcome.run.interactions,
                                    std::memory_order_relaxed);
        if (spec_remaining[job.spec].fetch_sub(
                1, std::memory_order_relaxed) == 1) {
          specs_done.fetch_add(1, std::memory_order_relaxed);
        }
      } catch (const std::exception& e) {
        dump(nullptr, std::string("worker exception: ") + e.what());
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed = true;
      } catch (...) {
        dump(nullptr, "worker exception (unknown)");
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed = true;
      }
    }
  };

  // `threads` (the outer pool width) was resolved with the inner budget,
  // before the engines were built.
  const auto snapshot_progress = [&]() {
    BatchProgress progress;
    progress.trials_done = trials_done.load(std::memory_order_relaxed);
    progress.trials_total = jobs.size();
    progress.specs_done = specs_done.load(std::memory_order_relaxed);
    progress.specs_total = static_cast<std::uint32_t>(specs.size());
    progress.interactions = interactions_done.load(std::memory_order_relaxed);
    progress.elapsed_s = elapsed_ms(run_phase_start) / 1e3;
    return progress;
  };

  // The heartbeat runs on its own thread so a single giant trial cannot
  // starve it; it exits promptly via the condition variable when the pool
  // drains (or a worker throws).
  std::mutex heartbeat_mutex;
  std::condition_variable heartbeat_cv;
  bool heartbeat_stop = false;
  std::thread heartbeat;
  if (options_.progress) {
    const auto interval = std::chrono::duration<double>(
        std::max(options_.progress_interval_s, 0.05));
    heartbeat = std::thread([&, interval]() {
      std::unique_lock<std::mutex> lock(heartbeat_mutex);
      while (!heartbeat_cv.wait_for(lock, interval,
                                    [&]() { return heartbeat_stop; })) {
        options_.progress(snapshot_progress());
      }
    });
  }

  phase_begin("batch.run");
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::uint32_t i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }
  if (heartbeat.joinable()) {
    {
      std::lock_guard<std::mutex> lock(heartbeat_mutex);
      heartbeat_stop = true;
    }
    heartbeat_cv.notify_all();
    heartbeat.join();
  }
  phase_end("batch.run");
  const double run_ms = elapsed_ms(run_phase_start);
  if (error) std::rethrow_exception(error);
  if (options_.progress) options_.progress(snapshot_progress());

  phase_begin("batch.aggregate");
  const auto aggregate_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (kernels[i] != nullptr) {
      results[i].kernel_compiled = true;
      // Snapshot after all trials: a sparse kernel's materialization
      // counters have settled by now.
      results[i].kernel_stats = kernels[i]->stats();
    }
  }
  for (SpecResult& result : results) aggregate(result, options_.keep_trials);
  const double aggregate_ms = elapsed_ms(aggregate_start);
  phase_end("batch.aggregate");

  // Phase breakdown and utilization. busy/available measures how well the
  // (spec, trial) jobs filled the pool: low utilization on a long batch
  // means stragglers (one giant spec serializing the tail).
  double busy_ms = 0.0;
  for (const SpecResult& result : results) {
    busy_ms += result.trial_ms.mean * static_cast<double>(
                                          result.trial_ms.count);
  }
  const double utilization =
      run_ms > 0.0 && threads > 0
          ? std::min(1.0, busy_ms / (run_ms * static_cast<double>(threads)))
          : 0.0;
  const auto record_batch = [&](metrics::MetricsRegistry* m) {
    if (m == nullptr) return;
    m->timer("batch.setup").record_ms(setup_ms);
    m->timer("batch.run").record_ms(run_ms);
    m->timer("batch.aggregate").record_ms(aggregate_ms);
    m->timer("batch.wall").record_ms(elapsed_ms(batch_start));
    m->counter("batch.specs").add(specs.size());
    m->counter("batch.trials").add(jobs.size());
    m->gauge("batch.threads").set(static_cast<double>(threads));
    m->gauge("batch.utilization").set(utilization);
  };
  record_batch(options_.metrics);

  // Manifests, kernel stats, per-spec sink files.
  const std::string finished = metrics::utc_timestamp_now();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SpecResult& result = results[i];
    result.manifest = base_manifest;
    result.manifest.spec = specs[i].to_string();
    result.manifest.backend = sim::to_string(result.backend_resolved);
    if (result.kernel_compiled) {
      result.manifest.kernel = kernel::to_string(result.kernel_stats.kind);
    }
    result.manifest.seed = spec_seeds[i];
    result.manifest.trials = specs[i].trials;
    result.manifest.threads = threads;
    result.manifest.run_threads = run_threads_resolved[i];
    result.manifest.utilization = utilization;
    result.manifest.finished_utc = finished;
    result.manifest.wall_ms =
        result.trial_ms.mean * static_cast<double>(result.trial_ms.count);

    metrics::MetricsRegistry* m = spec_metrics[i];
    if (m != nullptr && result.kernel_compiled) {
      const kernel::CompileStats& stats = result.kernel_stats;
      m->timer("kernel.build").record_ms(stats.build_ms);
      m->counter("kernel.entries").add(stats.entries);
      m->counter("kernel.bytes").add(stats.bytes);
      m->counter("kernel.sparse_filled").add(stats.sparse_filled);
      m->counter("kernel.sparse_overflow").add(stats.sparse_overflow);
      m->counter("kernel.sparse_hits").add(stats.sparse_hits);
    }
    if (owned_registries[i] != nullptr) {
      record_batch(owned_registries[i].get());
      owned_registries[i]->write(specs[i].metrics_out);
      result.manifest.write(manifest_path(specs[i].metrics_out));
    }
    if (owned_tracers[i] != nullptr) {
      owned_tracers[i]->write_chrome_trace(specs[i].spans_out);
    }
  }
  return results;
}

std::vector<SpecResult> BatchRunner::run(
    std::initializer_list<RunSpec> specs) const {
  return run(std::span<const RunSpec>(specs.begin(), specs.size()));
}

SpecResult BatchRunner::run_one(const RunSpec& spec) const {
  auto results = run(std::span<const RunSpec>(&spec, 1));
  return std::move(results.front());
}

}  // namespace circles::sim
