#include "sim/run_spec.hpp"

#include <cstdio>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "pp/schedulers/clustered.hpp"

namespace circles::sim {

EngineKind engine_kind_from_string(const std::string& text) {
  if (text == "agent" || text == "agent_array" || text == "array") {
    return EngineKind::kAgentArray;
  }
  if (text == "dense") return EngineKind::kDense;
  if (text == "dense_batched" || text == "batched") {
    return EngineKind::kDenseBatched;
  }
  if (text == "fluid") return EngineKind::kFluid;
  if (text == "auto") return EngineKind::kAuto;
  throw std::invalid_argument("unknown backend '" + text +
                              "' (expected agent, dense, dense_batched, "
                              "fluid, auto)");
}

std::string to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kAgentArray:
      return "agent";
    case EngineKind::kDense:
      return "dense";
    case EngineKind::kDenseBatched:
      return "dense_batched";
    case EngineKind::kFluid:
      return "fluid";
    case EngineKind::kAuto:
      return "auto";
  }
  return "?";
}

WorkloadSpec WorkloadSpec::unique_winner() { return {}; }

WorkloadSpec WorkloadSpec::random_counts() {
  WorkloadSpec spec;
  spec.family = Family::kRandomCounts;
  return spec;
}

WorkloadSpec WorkloadSpec::exact_tie(std::uint32_t tied_colors) {
  WorkloadSpec spec;
  spec.family = Family::kExactTie;
  spec.tied_colors = tied_colors;
  return spec;
}

WorkloadSpec WorkloadSpec::close_margin() {
  WorkloadSpec spec;
  spec.family = Family::kCloseMargin;
  return spec;
}

WorkloadSpec WorkloadSpec::dominant(double share) {
  WorkloadSpec spec;
  spec.family = Family::kDominant;
  spec.share = share;
  return spec;
}

WorkloadSpec WorkloadSpec::zipf(double exponent) {
  WorkloadSpec spec;
  spec.family = Family::kZipf;
  spec.exponent = exponent;
  return spec;
}

WorkloadSpec WorkloadSpec::explicit_counts(std::vector<std::uint64_t> counts) {
  WorkloadSpec spec;
  spec.family = Family::kExplicit;
  spec.counts = std::move(counts);
  return spec;
}

analysis::Workload WorkloadSpec::materialize(util::Rng& rng, std::uint64_t n,
                                             std::uint32_t k) const {
  switch (family) {
    case Family::kUniqueWinner:
      return analysis::random_unique_winner(rng, n, k);
    case Family::kRandomCounts:
      return analysis::random_counts(rng, n, k);
    case Family::kExactTie:
      return analysis::exact_tie(rng, n, k, tied_colors);
    case Family::kCloseMargin:
      return analysis::close_margin(rng, n, k);
    case Family::kDominant:
      return analysis::dominant(rng, n, k, share);
    case Family::kZipf:
      return analysis::zipf(rng, n, k, exponent);
    case Family::kExplicit: {
      analysis::Workload workload;
      workload.counts = counts;
      return workload;
    }
  }
  throw std::logic_error("unknown workload family");
}

std::string WorkloadSpec::to_string() const {
  switch (family) {
    case Family::kUniqueWinner:
      return "unique";
    case Family::kRandomCounts:
      return "random";
    case Family::kExactTie:
      return "tie:" + std::to_string(tied_colors);
    case Family::kCloseMargin:
      return "margin1";
    case Family::kDominant: {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "dominant:%g", share);
      return buffer;
    }
    case Family::kZipf: {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "zipf:%g", exponent);
      return buffer;
    }
    case Family::kExplicit: {
      std::string out = "counts:";
      for (std::size_t i = 0; i < counts.size(); ++i) {
        if (i) out += ",";
        out += std::to_string(counts[i]);
      }
      return out;
    }
  }
  return "?";
}

WorkloadSpec WorkloadSpec::parse(const std::string& text) {
  const auto colon = text.find(':');
  const std::string head = text.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? std::string() : text.substr(colon + 1);
  // std::stoul silently wraps negative inputs; reject them up front so
  // "tie:-1" fails here instead of deep inside a worker thread.
  const bool negative_arg = !arg.empty() && arg[0] == '-';
  try {
    if (head == "unique") return unique_winner();
    if (head == "random") return random_counts();
    if (head == "margin1") return close_margin();
    if (head == "tie" && !negative_arg) {
      const std::uint32_t tied =
          arg.empty() ? 2u : static_cast<std::uint32_t>(std::stoul(arg));
      if (tied < 2) throw std::invalid_argument("tie needs >= 2 colors");
      return exact_tie(tied);
    }
    if (head == "dominant") return dominant(std::stod(arg));
    if (head == "zipf") return zipf(std::stod(arg));
    if (head == "counts" && arg.find('-') == std::string::npos) {
      std::vector<std::uint64_t> counts;
      std::size_t pos = 0;
      while (pos < arg.size()) {
        std::size_t used = 0;
        counts.push_back(std::stoull(arg.substr(pos), &used));
        pos += used;
        if (pos < arg.size() && arg[pos] == ',') ++pos;
      }
      if (counts.empty()) throw std::invalid_argument("empty counts");
      return explicit_counts(std::move(counts));
    }
  } catch (const std::invalid_argument&) {
    // fall through to the unified error below
  } catch (const std::out_of_range&) {
  }
  throw std::invalid_argument(
      "unknown workload spec '" + text +
      "' (expected unique, random, tie:<t>, margin1, dominant:<share>, "
      "zipf:<s>, counts:<c0,c1,...>)");
}

std::uint64_t RunSpec::effective_n() const {
  if (workload.family == WorkloadSpec::Family::kExplicit) {
    return std::accumulate(workload.counts.begin(), workload.counts.end(),
                           std::uint64_t{0});
  }
  return n;
}

pp::ClusteredOptions RunSpec::clustered_options() const {
  pp::ClusteredOptions options;
  options.sizes = cluster_sizes;
  options.num_clusters = clusters != 0 ? clusters : 2;
  options.bridge_probability = bridge;
  return options;
}

std::string RunSpec::to_string() const {
  std::string out = protocol + "(k=" + std::to_string(params.k) + ")";
  out += " n=" + std::to_string(effective_n());
  out += " workload=" + workload.to_string();
  out += " scheduler=" + pp::to_string(scheduler);
  if (!cluster_sizes.empty()) {
    // A comma marks explicit sizes; a single explicit size keeps a trailing
    // comma so parse() cannot mistake it for a cluster *count*.
    out += " clusters=";
    for (std::size_t i = 0; i < cluster_sizes.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(cluster_sizes[i]);
    }
    if (cluster_sizes.size() == 1) out += ",";
  } else if (clusters != 0) {
    out += " clusters=" + std::to_string(clusters);
  }
  if (bridge != 0.01) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), " bridge=%g", bridge);
    out += buffer;
  }
  out += " trials=" + std::to_string(trials);
  if (backend != EngineKind::kAgentArray) {
    out += " backend=" + sim::to_string(backend);
  }
  if (run_threads != 0) out += " threads=" + std::to_string(run_threads);
  if (rtol != 0.0) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), " rtol=%g", rtol);
    out += buffer;
  }
  if (atol != 0.0) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), " atol=%g", atol);
    out += buffer;
  }
  if (engine.max_interactions != pp::EngineOptions{}.max_interactions) {
    out += " budget=" + std::to_string(engine.max_interactions);
  }
  if (!use_kernel) out += " kernel=off";
  for (const obs::ProbeSpec& probe : probes) {
    out += " trace=" + probe.to_string();
  }
  if (!metrics_out.empty()) out += " metrics=" + metrics_out;
  if (!spans_out.empty()) out += " spans=" + spans_out;
  if (!label.empty()) out += " [" + label + "]";
  return out;
}

RunSpec RunSpec::parse(const std::string& text) {
  RunSpec spec;
  std::string body = text;

  // Trailing " [label]" (labels may contain spaces, never brackets).
  if (!body.empty() && body.back() == ']') {
    const auto open = body.rfind(" [");
    if (open == std::string::npos) {
      throw std::invalid_argument("RunSpec parse: unmatched ']' in '" + text +
                                  "'");
    }
    spec.label = body.substr(open + 2, body.size() - open - 3);
    body = body.substr(0, open);
  }

  std::vector<std::string> tokens;
  std::size_t pos = 0;
  while (pos < body.size()) {
    const auto space = body.find(' ', pos);
    const auto end = space == std::string::npos ? body.size() : space;
    if (end > pos) tokens.push_back(body.substr(pos, end - pos));
    pos = end + 1;
  }
  if (tokens.empty()) {
    throw std::invalid_argument("RunSpec parse: empty spec '" + text + "'");
  }

  // std::stoull silently wraps negative inputs and stops at the first
  // non-digit (same pitfalls WorkloadSpec::parse guards); reject both.
  const auto parse_unsigned = [&text](const std::string& value) {
    std::size_t used = 0;
    std::uint64_t parsed = 0;
    if (!value.empty() && value[0] != '-') {
      parsed = std::stoull(value, &used);
    }
    if (used != value.size() || value.empty()) {
      throw std::invalid_argument("RunSpec parse: expected a non-negative "
                                  "number in '" + text + "'");
    }
    return parsed;
  };

  // Leading "protocol(k=K)".
  const std::string& head = tokens.front();
  const auto paren = head.find("(k=");
  if (paren == std::string::npos || head.back() != ')') {
    throw std::invalid_argument("RunSpec parse: expected 'protocol(k=K)', got '" +
                                head + "'");
  }
  try {
    spec.protocol = head.substr(0, paren);
    spec.params.k = static_cast<std::uint32_t>(parse_unsigned(
        head.substr(paren + 3, head.size() - paren - 4)));

    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const auto eq = tokens[i].find('=');
      if (eq == std::string::npos) {
        throw std::invalid_argument("RunSpec parse: expected key=value, got '" +
                                    tokens[i] + "'");
      }
      const std::string key = tokens[i].substr(0, eq);
      const std::string value = tokens[i].substr(eq + 1);
      if (key == "n") {
        spec.n = parse_unsigned(value);
      } else if (key == "workload") {
        spec.workload = WorkloadSpec::parse(value);
      } else if (key == "scheduler") {
        spec.scheduler = pp::scheduler_kind_from_string(value);
      } else if (key == "clusters") {
        if (value.find(',') != std::string::npos) {
          spec.cluster_sizes.clear();
          std::size_t vpos = 0;
          while (vpos < value.size()) {
            const auto comma = value.find(',', vpos);
            const auto vend = comma == std::string::npos ? value.size() : comma;
            if (vend > vpos) {
              spec.cluster_sizes.push_back(
                  parse_unsigned(value.substr(vpos, vend - vpos)));
            }
            vpos = vend + 1;
          }
          if (spec.cluster_sizes.empty()) {
            throw std::invalid_argument(
                "RunSpec parse: clusters needs at least one size in '" +
                text + "'");
          }
        } else {
          spec.clusters = static_cast<std::uint32_t>(parse_unsigned(value));
          if (spec.clusters == 0) {
            throw std::invalid_argument(
                "RunSpec parse: clusters must be >= 1 in '" + text + "'");
          }
        }
      } else if (key == "bridge") {
        std::size_t used = 0;
        spec.bridge = std::stod(value, &used);
        if (used != value.size() || !(spec.bridge > 0.0) ||
            spec.bridge > 1.0) {
          throw std::invalid_argument(
              "RunSpec parse: bridge must be a probability in (0, 1], got '" +
              value + "'");
        }
      } else if (key == "trials") {
        spec.trials = static_cast<std::uint32_t>(parse_unsigned(value));
      } else if (key == "backend") {
        spec.backend = engine_kind_from_string(value);
      } else if (key == "threads") {
        spec.run_threads = static_cast<std::uint32_t>(parse_unsigned(value));
      } else if (key == "rtol" || key == "atol") {
        std::size_t used = 0;
        const double parsed = std::stod(value, &used);
        if (used != value.size() || !(parsed > 0.0)) {
          throw std::invalid_argument("RunSpec parse: " + key +
                                      " must be a positive number, got '" +
                                      value + "'");
        }
        (key == "rtol" ? spec.rtol : spec.atol) = parsed;
      } else if (key == "kernel") {
        if (value != "on" && value != "off") {
          throw std::invalid_argument(
              "RunSpec parse: kernel must be 'on' or 'off', got '" + value +
              "'");
        }
        spec.use_kernel = value == "on";
      } else if (key == "budget") {
        spec.engine.max_interactions = parse_unsigned(value);
        if (spec.engine.max_interactions == 0) {
          throw std::invalid_argument(
              "RunSpec parse: budget must be >= 1 interaction in '" + text +
              "'");
        }
      } else if (key == "trace") {
        try {
          spec.probes.push_back(obs::ProbeSpec::parse(value));
        } catch (const std::invalid_argument& e) {
          throw std::invalid_argument(
              std::string(e.what()) +
              " (trace= attaches obs count-trajectory probes, e.g. "
              "trace=energy@log:256; for Chrome-trace span timelines use "
              "spans=PATH instead)");
        }
      } else if (key == "metrics") {
        if (value.empty()) {
          throw std::invalid_argument(
              "RunSpec parse: metrics= needs a sink path (.jsonl or .csv)");
        }
        spec.metrics_out = value;
      } else if (key == "spans") {
        if (value.empty()) {
          throw std::invalid_argument(
              "RunSpec parse: spans= needs an output path for the "
              "Chrome-trace span timeline JSON (spans= records span "
              "timelines; for obs count-trajectory probes use "
              "trace=<kind>@<grid>)");
        }
        spec.spans_out = value;
      } else {
        throw std::invalid_argument("RunSpec parse: unknown field '" + key +
                                    "' in '" + text + "'");
      }
    }
  } catch (const std::invalid_argument&) {
    throw;
  } catch (const std::exception&) {
    throw std::invalid_argument("RunSpec parse: malformed number in '" + text +
                                "'");
  }
  return spec;
}

std::optional<pp::UrnLumping> scheduler_lumping(const RunSpec& spec,
                                                const pp::Protocol* protocol) {
  if (spec.scheduler_factory) return std::nullopt;
  const std::uint64_t n = spec.effective_n();
  if (n < 2) return std::nullopt;
  // Probe instances of the lumpable kinds are O(U^2) to build; the other
  // kinds answer nullopt but can be expensive to construct (a shuffled
  // sweep materializes n(n-1) pairs — its header caps comfort at n ~ 1024),
  // so the hook is only consulted on instances that are cheap to make.
  const bool cheap = spec.scheduler == pp::SchedulerKind::kUniformRandom ||
                     spec.scheduler == pp::SchedulerKind::kClustered;
  if (!cheap && (n > 1024 || (protocol == nullptr &&
                              spec.scheduler ==
                                  pp::SchedulerKind::kAdversarialDelay))) {
    return std::nullopt;
  }
  const pp::ClusteredOptions clustered = spec.clustered_options();
  if (n <= std::numeric_limits<std::uint32_t>::max()) {
    const auto probe =
        pp::make_scheduler(spec.scheduler, static_cast<std::uint32_t>(n),
                           /*seed=*/0, protocol, &clustered);
    return probe->lumping();
  }
  // Beyond the agent-id range no probe instance can exist; the lumpable
  // kinds' contracts are closed-form, everything else is agent-bound.
  if (spec.scheduler == pp::SchedulerKind::kUniformRandom) {
    return pp::UrnLumping::uniform(n);
  }
  if (spec.scheduler == pp::SchedulerKind::kClustered) {
    pp::UrnLumping lumping = pp::clustered_lumping(n, clustered);
    lumping.validate();
    return lumping;
  }
  return std::nullopt;
}

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = a ^ (0x9e3779b97f4a7c15ULL * (b + 1));
  const std::uint64_t first = util::splitmix64(state);
  return first ^ util::splitmix64(state);
}

std::uint64_t spec_seed(const RunSpec& spec, std::uint64_t base_seed,
                        std::size_t spec_index) {
  if (spec.seed.has_value()) return *spec.seed;
  return mix_seed(base_seed, static_cast<std::uint64_t>(spec_index));
}

std::uint64_t trial_seed(std::uint64_t spec_seed, std::uint32_t trial_index) {
  return mix_seed(spec_seed, trial_index);
}

}  // namespace circles::sim
