// Declarative run description: WorkloadSpec + RunSpec.
//
// A RunSpec is a value describing one cell of an experiment grid: which
// protocol (by registry name) on which workload family, at which population
// size, under which scheduler, for how many trials, with which engine
// options and instrumentation. The BatchRunner executes vectors of RunSpecs
// across a thread pool with fully deterministic per-trial seeding, so a spec
// grid IS the experiment — binaries only format the aggregated results.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/workload.hpp"
#include "obs/probe_spec.hpp"
#include "pp/engine.hpp"
#include "pp/scheduler.hpp"
#include "sim/registry.hpp"
#include "sim/trial.hpp"

namespace circles::sim {

/// A workload family plus its parameters; materialized into concrete counts
/// per trial (deterministically from the trial's RNG stream), except for
/// kExplicit which carries fixed counts shared by every trial.
struct WorkloadSpec {
  enum class Family {
    kUniqueWinner,  // uniform random counts, unique winner enforced
    kRandomCounts,  // uniform random counts, ties allowed
    kExactTie,      // `tied_colors` colors share the maximum count
    kCloseMargin,   // winner beats runner-up by exactly one
    kDominant,      // one color holds ~`share` of the agents
    kZipf,          // Zipf(`exponent`) counts, unique winner enforced
    kExplicit,      // fixed `counts`, identical in every trial
  };

  Family family = Family::kUniqueWinner;
  std::uint32_t tied_colors = 2;  // kExactTie
  double share = 0.5;             // kDominant
  double exponent = 1.2;          // kZipf
  std::vector<std::uint64_t> counts;  // kExplicit

  static WorkloadSpec unique_winner();
  static WorkloadSpec random_counts();
  static WorkloadSpec exact_tie(std::uint32_t tied_colors);
  static WorkloadSpec close_margin();
  static WorkloadSpec dominant(double share);
  static WorkloadSpec zipf(double exponent);
  static WorkloadSpec explicit_counts(std::vector<std::uint64_t> counts);

  /// Concrete counts for one trial. `rng` is consumed deterministically;
  /// kExplicit ignores all three arguments.
  analysis::Workload materialize(util::Rng& rng, std::uint64_t n,
                                 std::uint32_t k) const;

  /// "unique", "random", "tie:2", "margin1", "dominant:0.6", "zipf:1.4",
  /// "counts:5,3,2".
  std::string to_string() const;
  static WorkloadSpec parse(const std::string& text);
};

/// Which simulation engine executes a trial.
enum class EngineKind {
  /// pp::Engine over an explicit agent array — supports every scheduler,
  /// monitors, per-agent graders and fault injection.
  kAgentArray,
  /// dense::DenseEngine, per-step mode: a lumpable scheduler (uniform or
  /// clustered — see pp::Scheduler::lumping) simulated directly on per-state
  /// counts, one count vector per urn; O(present states) per interaction,
  /// O(num_urns * num_states) memory, exact silence detection.
  kDense,
  /// dense::DenseEngine, batched mode: collision-free epochs of ~sqrt(n)
  /// interactions advanced with hypergeometric draws per urn-pair block —
  /// the scaling backend for n >= 10^6. Lumpable schedulers only, like
  /// kDense.
  kDenseBatched,
  /// fluid::FluidEngine: the lumped count chain integrated as a mean-field
  /// ODE (adaptive embedded RK pair, rtol/atol via RunSpec::rtol/atol),
  /// drift terms compiled once from the kernel IR. O(1/sqrt(n)) model error,
  /// cost independent of n — the n >= 1e9 tier. Lumpable schedulers only,
  /// like the dense backends.
  kFluid,
  /// Resolved per spec by the BatchRunner: fluid for lumpable schedulers at
  /// huge n, dense_batched at large n, dense at moderate n, agent otherwise
  /// (agent-only features, non-lumpable schedulers, tiny n, or num_states >
  /// n). The resolution lands in SpecResult::backend_resolved.
  kAuto,
};

/// Auto-dispatch thresholds: below kAutoDenseMinN the agent array is at
/// least as fast and strictly more featureful; above kAutoBatchedMinN the
/// sqrt(n) epochs beat per-step count sampling; above kAutoFluidMinN the
/// mean-field model error O(1/sqrt(n)) drops below the discrete chain's own
/// trial-to-trial noise and the ODE costs nothing as n grows.
inline constexpr std::uint64_t kAutoDenseMinN = 128;
inline constexpr std::uint64_t kAutoBatchedMinN = 8192;
inline constexpr std::uint64_t kAutoFluidMinN = 100'000'000;

/// Parses "agent", "dense", "dense_batched", "fluid", "auto".
EngineKind engine_kind_from_string(const std::string& text);
std::string to_string(EngineKind kind);

/// How the BatchRunner grades each trial.
enum class Grading {
  /// Correct iff silent consensus on the workload's unique plurality winner.
  kPluralityWinner,
  /// Correct iff silent consensus on the winner when unique, and on the
  /// protocol's TIE symbol (= k) when the input is tied.
  kTieAware,
};

/// One cell of an experiment grid.
struct RunSpec {
  std::string protocol = "circles";
  ProtocolParams params;

  /// Population size (ignored by explicit-counts workloads, which fix n).
  std::uint64_t n = 0;
  WorkloadSpec workload;

  pp::SchedulerKind scheduler = pp::SchedulerKind::kUniformRandom;
  /// When set, overrides `scheduler` (e.g. graph-restricted topologies).
  SchedulerFactory scheduler_factory;

  /// Clustered-scheduler shape (meaningful only when scheduler is
  /// kClustered): number of equal clusters (0 = the scheduler's default of
  /// two), or explicit per-cluster sizes (overrides `clusters`). Rendered
  /// as "clusters=4" / "clusters=600,400" tokens by to_string()/parse().
  std::uint32_t clusters = 0;
  std::vector<std::uint64_t> cluster_sizes;
  /// Total inter-cluster interaction probability of the clustered
  /// scheduler; rendered as "bridge=0.001" when non-default.
  double bridge = 0.01;

  /// Simulation backend. The dense backends simulate lumpable schedulers
  /// (uniform, clustered — pp::Scheduler::lumping) on per-state counts with
  /// no agent array, so they reject the agent-level features: non-lumpable
  /// schedulers, scheduler_factory, circles_stats, track_used_states,
  /// reboot_faults, grader and chemical_time — the BatchRunner refuses such
  /// specs up front. kAuto resolves to a concrete backend per spec instead
  /// of refusing.
  EngineKind backend = EngineKind::kAgentArray;

  /// Worker threads INSIDE each trial's run (dense backends only; feeds
  /// pp::EngineOptions::run_threads). 0 (default) lets the BatchRunner
  /// budget: trials get the whole machine via outer parallelism when there
  /// are enough of them, otherwise leftover cores go inside the runs. Any
  /// other value pins the inner width; results are bitwise identical for
  /// every value. Rendered as a "threads=" token when non-zero. The outer
  /// across-trial knob is BatchOptions::threads (sweep --threads).
  std::uint32_t run_threads = 0;

  /// Fluid-backend integrator tolerances (backend=fluid or auto-resolved
  /// fluid); 0 = the engine defaults (rtol 1e-6, atol 1e-9). Setting them on
  /// a concrete non-fluid backend is an error the BatchRunner rejects up
  /// front. Rendered as "rtol=1e-4" / "atol=1e-8" tokens when non-zero.
  double rtol = 0.0;
  double atol = 0.0;

  /// Compile the protocol into a kernel::CompiledProtocol once per spec and
  /// share it across all trials and threads (compile stats land in the
  /// SpecResult). Off = the legacy virtual-dispatch loops; results are
  /// bitwise identical, only wall clock changes. Exists for the
  /// bench_throughput virtual-vs-compiled comparison — leave on otherwise.
  bool use_kernel = true;

  /// Custom correctness verdict (engine runs only): receives the final
  /// population and overrides the standard grading (e.g. per-agent checks).
  std::function<bool(const pp::Protocol& protocol,
                     const analysis::Workload& workload,
                     std::span<const pp::ColorId> colors,
                     const pp::Population& population,
                     const pp::RunResult& run)>
      grader;

  std::uint32_t trials = 1;
  /// Per-spec seed; when unset the BatchRunner derives one from its base
  /// seed and the spec's index. Two specs with equal seeds and workloads see
  /// identical per-trial workloads and schedule streams — set this to
  /// compare protocols on identical inputs.
  std::optional<std::uint64_t> seed;

  /// Engine knobs shared by every backend. The interaction budget
  /// (engine.max_interactions) is rendered as a "budget=" token when
  /// non-default, so a spec string reproduces budget_exhausted failures
  /// exactly (the flight recorder's REPRO lines rely on this).
  pp::EngineOptions engine;
  Grading grading = Grading::kPluralityWinner;

  /// Attach the paper's Circles instrumentation (exchange counters,
  /// invariant monitors, Lemma 3.6 decomposition verdict). Requires the
  /// protocol to be a core::CirclesProtocol.
  bool circles_stats = false;

  /// Count the distinct states occupied over the run.
  bool track_used_states = false;

  /// Count-level trajectory probes (obs::), attached per trial on EVERY
  /// backend — the agent engine feeds them through an obs::RecorderMonitor,
  /// the dense engines sample their count vectors directly, and
  /// chemical-time specs record on the exponential clock. Each trial's
  /// traces land on the TrialRecord; the BatchRunner aggregates them into
  /// per-spec quantile envelopes. Rendered as "trace=energy@log:1024"
  /// tokens by to_string()/parse().
  std::vector<obs::ProbeSpec> probes;

  /// Run under continuous-time (Gillespie) semantics instead of the engine
  /// loop; records chemical stabilization/convergence times. The embedded
  /// jump chain is the uniform scheduler. Incompatible with the engine-only
  /// features (circles_stats, track_used_states, reboot_faults, grader,
  /// scheduler_factory) — the BatchRunner rejects such specs up front.
  bool chemical_time = false;

  /// Per-spec telemetry sink: when non-empty, the BatchRunner gives this
  /// spec a private metrics::MetricsRegistry, flushes every trial's engine
  /// counters plus kernel/phase stats into it, and writes it here (".csv"
  /// picks CSV, anything else JSONL) with a RunManifest next to it
  /// ("<path minus extension>.manifest.json"). Rendered as a
  /// "metrics=path" token by to_string()/parse(); the path therefore must
  /// not contain spaces.
  std::string metrics_out;

  /// Per-spec span-trace sink: when non-empty, the BatchRunner gives this
  /// spec a private trace::Tracer, routes every trial's engine spans plus
  /// the kernel-compile span into it, and writes Chrome Trace Event Format
  /// JSON here (open in chrome://tracing or Perfetto). Rendered as a
  /// "spans=path" token by to_string()/parse(); the path therefore must not
  /// contain spaces. Not to be confused with the "trace=" token, which
  /// attaches obs:: count-trajectory probes (see `probes`).
  std::string spans_out;

  /// Transient-fault injection: before the final run to silence, execute
  /// this many bursts, rebooting one random agent to its input state after
  /// each burst. Burst length is uniform in
  /// [fault_burst_min, fault_burst_min + fault_burst_span).
  std::uint32_t reboot_faults = 0;
  std::uint64_t fault_burst_min = 200;
  std::uint64_t fault_burst_span = 400;

  /// Free-form tag carried through to the SpecResult (for tables).
  std::string label;

  /// n actually used: the explicit workload's total when fixed, else `n`.
  std::uint64_t effective_n() const;

  /// The clustered-scheduler shape this spec describes (clusters /
  /// cluster_sizes / bridge), in the form pp::make_scheduler and
  /// pp::clustered_lumping consume.
  pp::ClusteredOptions clustered_options() const;

  /// Human-readable one-line description, e.g.
  ///   "circles(k=3) n=100 workload=unique scheduler=uniform trials=5
  ///    backend=dense [tag]"
  /// (backend omitted for the agent-array default). parse() inverts it.
  std::string to_string() const;

  /// Parses the to_string() format back into a spec (the flag-expressible
  /// fields: protocol, k, n, workload, scheduler, trials, backend, label).
  /// Throws std::invalid_argument on malformed text.
  static RunSpec parse(const std::string& text);
};

/// The exact count-level lumping of the spec's scheduler, if it has one:
/// builds a probe scheduler instance (seed-independent by contract) and asks
/// pp::Scheduler::lumping() — this is how the BatchRunner decides "is this
/// spec count-simulable?" and with which urn structure. Returns nullopt for
/// scheduler_factory specs and non-lumpable kinds. Probe instances of
/// expensive kinds (a shuffled sweep materializes O(n^2) pairs) are only
/// built at small n; their lumping() is nullopt anyway. `protocol` is
/// needed only by kinds whose construction requires it (adversarial).
std::optional<pp::UrnLumping> scheduler_lumping(
    const RunSpec& spec, const pp::Protocol* protocol = nullptr);

/// Deterministic seed derivation (splitmix64-based):
///   spec seed  = spec.seed, or mix(base_seed, spec_index) when unset;
///   trial seed = mix(spec_seed, trial_index).
/// Results therefore depend only on (spec, indices), never on thread count
/// or execution order.
std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b);
std::uint64_t spec_seed(const RunSpec& spec, std::uint64_t base_seed,
                        std::size_t spec_index);
std::uint64_t trial_seed(std::uint64_t spec_seed, std::uint32_t trial_index);

}  // namespace circles::sim
