// Workload generation for experiments: per-color count vectors and the agent
// color assignments derived from them.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "pp/types.hpp"
#include "util/rng.hpp"

namespace circles::analysis {

/// An input instance: how many agents hold each color.
struct Workload {
  std::vector<std::uint64_t> counts;  // size k

  std::uint64_t n() const;
  std::uint32_t k() const { return static_cast<std::uint32_t>(counts.size()); }

  /// The unique plurality winner, or nullopt on a tie.
  std::optional<pp::ColorId> winner() const;
  bool tied() const { return !winner().has_value(); }

  /// Winner margin: highest count − second-highest count.
  std::uint64_t margin() const;

  /// Expands to a shuffled per-agent color vector (deterministic in rng).
  std::vector<pp::ColorId> agent_colors(util::Rng& rng) const;

  std::string to_string() const;
};

/// Uniform-random counts over n agents and k colors, conditioned on having a
/// unique winner (rejection sampling). Every color may end up empty except
/// that at least one agent exists.
Workload random_unique_winner(util::Rng& rng, std::uint64_t n,
                              std::uint32_t k);

/// Random counts with no tie constraint (may or may not be tied).
Workload random_counts(util::Rng& rng, std::uint64_t n, std::uint32_t k);

/// An exact tie on the top colors: `tied_colors` colors share the maximum
/// count; remaining agents are spread below it. Requires 2 <= tied_colors <=
/// k and enough agents.
Workload exact_tie(util::Rng& rng, std::uint64_t n, std::uint32_t k,
                   std::uint32_t tied_colors);

/// The hardest non-tie margin: winner beats the runner-up by exactly one.
Workload close_margin(util::Rng& rng, std::uint64_t n, std::uint32_t k);

/// One dominant color holding ~share of the agents, rest uniform.
Workload dominant(util::Rng& rng, std::uint64_t n, std::uint32_t k,
                  double share);

/// Zipf-distributed counts (exponent s), conditioned on a unique winner.
Workload zipf(util::Rng& rng, std::uint64_t n, std::uint32_t k,
              double exponent);

/// Applies a random permutation to the color identities (same multiset of
/// counts, different numeric labels) — used by the E13 ablation probing the
/// weight function's dependence on color numbering.
Workload permute_colors(util::Rng& rng, const Workload& workload);

}  // namespace circles::analysis
