#include "analysis/workload.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/check.hpp"

namespace circles::analysis {

std::uint64_t Workload::n() const {
  return std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
}

std::optional<pp::ColorId> Workload::winner() const {
  std::optional<pp::ColorId> best;
  std::uint64_t best_count = 0;
  bool tied = false;
  for (pp::ColorId c = 0; c < counts.size(); ++c) {
    if (counts[c] > best_count) {
      best = c;
      best_count = counts[c];
      tied = false;
    } else if (counts[c] == best_count && best_count > 0) {
      tied = true;
    }
  }
  if (tied || best_count == 0) return std::nullopt;
  return best;
}

std::uint64_t Workload::margin() const {
  std::uint64_t highest = 0, second = 0;
  for (const auto c : counts) {
    if (c >= highest) {
      second = highest;
      highest = c;
    } else if (c > second) {
      second = c;
    }
  }
  return highest - second;
}

std::vector<pp::ColorId> Workload::agent_colors(util::Rng& rng) const {
  std::vector<pp::ColorId> colors;
  colors.reserve(n());
  for (pp::ColorId c = 0; c < counts.size(); ++c) {
    colors.insert(colors.end(), counts[c], c);
  }
  rng.shuffle(std::span<pp::ColorId>(colors));
  return colors;
}

std::string Workload::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t c = 0; c < counts.size(); ++c) {
    if (c > 0) os << ",";
    os << counts[c];
  }
  os << "]";
  return os.str();
}

Workload random_counts(util::Rng& rng, std::uint64_t n, std::uint32_t k) {
  CIRCLES_CHECK(k >= 1 && n >= 1);
  Workload w;
  w.counts.assign(k, 0);
  for (std::uint64_t i = 0; i < n; ++i) {
    w.counts[rng.uniform_below(k)] += 1;
  }
  return w;
}

Workload random_unique_winner(util::Rng& rng, std::uint64_t n,
                              std::uint32_t k) {
  for (int attempt = 0; attempt < 10000; ++attempt) {
    Workload w = random_counts(rng, n, k);
    if (!w.tied()) return w;
  }
  // Pathological (e.g. n == k == 2 ties half the time but not 10000 times).
  CIRCLES_CHECK_MSG(false, "could not sample a unique-winner workload");
  return {};
}

Workload exact_tie(util::Rng& rng, std::uint64_t n, std::uint32_t k,
                   std::uint32_t tied_colors) {
  CIRCLES_CHECK(tied_colors >= 2 && tied_colors <= k);
  CIRCLES_CHECK(n >= tied_colors);
  // Choose the shared top count as large as possible while leaving the
  // remaining agents strictly below it on the other colors.
  Workload w;
  w.counts.assign(k, 0);
  std::uint64_t top = n / tied_colors;
  std::uint64_t rest = n - top * tied_colors;
  const std::uint32_t others = k - tied_colors;
  // Lower `top` until the leftover fits under the other colors with counts
  // strictly below top.
  while (top > 1 && (others == 0
                         ? rest != 0
                         : rest > static_cast<std::uint64_t>(others) * (top - 1))) {
    top -= 1;
    rest = n - top * tied_colors;
  }
  CIRCLES_CHECK_MSG(
      others == 0 ? rest == 0
                  : rest <= static_cast<std::uint64_t>(others) * (top - 1),
      "cannot build an exact tie with these parameters");
  for (std::uint32_t c = 0; c < tied_colors; ++c) w.counts[c] = top;
  // Spread the remainder over the non-tied colors, each strictly below top.
  std::uint32_t cursor = tied_colors;
  while (rest > 0) {
    const std::uint64_t take =
        std::min<std::uint64_t>(rest, top - 1 - w.counts[cursor]);
    w.counts[cursor] += take;
    rest -= take;
    cursor = tied_colors + (cursor + 1 - tied_colors) % others;
  }
  // Shuffle which colors carry which count so the tie isn't always on the
  // low color ids.
  rng.shuffle(std::span<std::uint64_t>(w.counts));
  CIRCLES_CHECK(w.tied());
  return w;
}

Workload close_margin(util::Rng& rng, std::uint64_t n, std::uint32_t k) {
  CIRCLES_CHECK(k >= 2 && n >= 3);
  // Winner holds q+delta agents, runner-up holds q, the other k-2 colors
  // share the rest with counts <= q. delta = 1 when parity/feasibility
  // allows, else 2 (e.g. k = 2 with even n forces an even margin).
  for (std::uint64_t delta = 1; delta <= 2; ++delta) {
    if (n < delta) continue;
    const std::uint64_t budget = n - delta;  // = 2q + rest
    // Feasibility: rest = budget - 2q must satisfy 0 <= rest <= (k-2) q.
    const std::uint64_t q_min = (budget + k - 1) / k;  // ceil(budget / k)
    const std::uint64_t q_max = budget / 2;
    if (q_min == 0 || q_min > q_max) continue;
    const std::uint64_t q = q_min;  // spread the rest as evenly as possible

    Workload w;
    w.counts.assign(k, 0);
    w.counts[0] = q + delta;
    w.counts[1] = q;
    std::uint64_t rest = budget - 2 * q;
    // Round-robin the rest over colors 2..k-1, each capped at q.
    for (std::uint64_t pass = 0; rest > 0; ++pass) {
      bool placed = false;
      for (pp::ColorId c = 2; c < k && rest > 0; ++c) {
        if (w.counts[c] < q) {
          w.counts[c] += 1;
          rest -= 1;
          placed = true;
        }
      }
      CIRCLES_CHECK_MSG(placed, "close_margin: distribution stuck");
    }
    rng.shuffle(std::span<std::uint64_t>(w.counts));
    CIRCLES_CHECK(!w.tied() && w.margin() == delta);
    return w;
  }
  CIRCLES_CHECK_MSG(false, "could not build a close-margin workload");
  return {};
}

Workload dominant(util::Rng& rng, std::uint64_t n, std::uint32_t k,
                  double share) {
  CIRCLES_CHECK(k >= 1 && n >= 1 && share > 0.0 && share <= 1.0);
  Workload w;
  w.counts.assign(k, 0);
  const auto dominant_count =
      static_cast<std::uint64_t>(share * static_cast<double>(n));
  const pp::ColorId dom = static_cast<pp::ColorId>(rng.uniform_below(k));
  w.counts[dom] = dominant_count;
  for (std::uint64_t i = dominant_count; i < n; ++i) {
    // Spread the rest over the other colors (or the same when k == 1).
    pp::ColorId c = static_cast<pp::ColorId>(rng.uniform_below(k));
    w.counts[c] += 1;
  }
  return w;
}

Workload zipf(util::Rng& rng, std::uint64_t n, std::uint32_t k,
              double exponent) {
  const auto weights = util::zipf_weights(k, exponent);
  for (int attempt = 0; attempt < 10000; ++attempt) {
    Workload w;
    w.counts.assign(k, 0);
    for (std::uint64_t i = 0; i < n; ++i) {
      w.counts[util::sample_discrete(rng, weights)] += 1;
    }
    if (!w.tied()) return w;
  }
  CIRCLES_CHECK_MSG(false, "could not sample a unique-winner zipf workload");
  return {};
}

Workload permute_colors(util::Rng& rng, const Workload& workload) {
  std::vector<pp::ColorId> perm(workload.k());
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(std::span<pp::ColorId>(perm));
  Workload out;
  out.counts.assign(workload.k(), 0);
  for (pp::ColorId c = 0; c < workload.k(); ++c) {
    out.counts[perm[c]] = workload.counts[c];
  }
  return out;
}

}  // namespace circles::analysis
