// Single-trial runners shared by tests, examples and experiment binaries.
#pragma once

#include <cstdint>
#include <optional>

#include "analysis/workload.hpp"
#include "core/circles_protocol.hpp"
#include "pp/engine.hpp"
#include "pp/scheduler.hpp"

namespace circles::analysis {

struct TrialOptions {
  pp::SchedulerKind scheduler = pp::SchedulerKind::kUniformRandom;
  std::uint64_t seed = 1;
  pp::EngineOptions engine = {};
};

/// Outcome of running any plurality protocol on a workload.
struct TrialOutcome {
  pp::RunResult run;
  std::optional<pp::ColorId> expected_winner;
  /// Silent final configuration with every agent announcing the winner.
  bool correct = false;
  /// Final configuration reached consensus on some symbol (maybe wrong).
  std::optional<pp::OutputSymbol> consensus;
};

/// Builds the population from the workload (shuffled assignment), runs the
/// protocol to silence/budget, and grades the outcome. `expected_symbol`
/// overrides the graded target (used by tie semantics where the correct
/// output is not the plurality winner); by default the workload's unique
/// winner is the target.
TrialOutcome run_trial(const pp::Protocol& protocol, const Workload& workload,
                       const TrialOptions& options,
                       std::span<pp::Monitor* const> monitors = {},
                       std::optional<pp::OutputSymbol> expected_symbol = {});

/// Circles-specific trial with the paper's instrumentation attached:
/// exchange counting, invariant checking and the Lemma 3.6 decomposition
/// verdict.
struct CirclesTrialOutcome {
  TrialOutcome trial;
  std::uint64_t ket_exchanges = 0;
  std::uint64_t diagonal_creations = 0;
  std::uint64_t diagonal_destructions = 0;
  std::uint64_t braket_invariant_violations = 0;
  std::uint64_t potential_descent_violations = 0;
  std::uint64_t scalar_energy_increases = 0;
  bool decomposition_matches = false;
};

CirclesTrialOutcome run_circles_trial(const core::CirclesProtocol& protocol,
                                      const Workload& workload,
                                      const TrialOptions& options);

}  // namespace circles::analysis
