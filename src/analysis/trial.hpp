// Single-trial runners shared by tests, examples and experiment binaries.
//
// The implementation lives in the circles::sim session layer (sim/trial.hpp);
// these aliases keep the historical analysis:: spelling working. New code
// should prefer sim::SessionBuilder / sim::BatchRunner (sim/sim.hpp) for
// sweeps and sim::run_trial for one-off runs.
#pragma once

#include "sim/trial.hpp"

namespace circles::analysis {

using sim::CirclesTrialOutcome;
using sim::TrialOptions;
using sim::TrialOutcome;

using sim::run_circles_trial;
using sim::run_trial;

}  // namespace circles::analysis
