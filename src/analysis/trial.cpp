#include "analysis/trial.hpp"

#include <array>
#include <memory>

#include "core/decomposition.hpp"
#include "core/invariants.hpp"
#include "util/check.hpp"

namespace circles::analysis {

namespace {

std::optional<pp::OutputSymbol> histogram_consensus(
    const std::vector<std::uint64_t>& histogram) {
  std::optional<pp::OutputSymbol> symbol;
  for (pp::OutputSymbol s = 0; s < histogram.size(); ++s) {
    if (histogram[s] == 0) continue;
    if (symbol.has_value()) return std::nullopt;
    symbol = s;
  }
  return symbol;
}

/// Shared core: build population, run, grade. Returns the final population
/// through `final_population` when the caller needs to inspect it.
TrialOutcome run_graded(const pp::Protocol& protocol, const Workload& workload,
                        const TrialOptions& options,
                        std::span<pp::Monitor* const> monitors,
                        std::optional<pp::OutputSymbol> expected_symbol,
                        std::unique_ptr<pp::Population>* final_population) {
  CIRCLES_CHECK_MSG(workload.k() == protocol.num_colors(),
                    "workload color count does not match the protocol");
  util::Rng rng(options.seed);
  const auto colors = workload.agent_colors(rng);
  CIRCLES_CHECK_MSG(colors.size() >= 2, "trials need at least two agents");

  auto population = std::make_unique<pp::Population>(protocol, colors);
  auto scheduler = pp::make_scheduler(
      options.scheduler, static_cast<std::uint32_t>(colors.size()),
      rng.split()(), &protocol);

  pp::Engine engine(options.engine);
  TrialOutcome outcome;
  outcome.run = engine.run(protocol, *population, *scheduler, monitors);
  outcome.expected_winner = workload.winner();
  outcome.consensus = histogram_consensus(outcome.run.final_outputs);

  const std::optional<pp::OutputSymbol> target =
      expected_symbol.has_value()
          ? expected_symbol
          : (outcome.expected_winner.has_value()
                 ? std::optional<pp::OutputSymbol>(*outcome.expected_winner)
                 : std::nullopt);
  outcome.correct = outcome.run.silent && target.has_value() &&
                    outcome.consensus == target;

  if (final_population != nullptr) *final_population = std::move(population);
  return outcome;
}

}  // namespace

TrialOutcome run_trial(const pp::Protocol& protocol, const Workload& workload,
                       const TrialOptions& options,
                       std::span<pp::Monitor* const> monitors,
                       std::optional<pp::OutputSymbol> expected_symbol) {
  return run_graded(protocol, workload, options, monitors, expected_symbol,
                    nullptr);
}

CirclesTrialOutcome run_circles_trial(const core::CirclesProtocol& protocol,
                                      const Workload& workload,
                                      const TrialOptions& options) {
  core::CirclesBraKetView view(protocol);
  core::KetExchangeCounter exchanges(view);
  core::BraKetInvariantMonitor invariant(view);
  core::PotentialDescentMonitor potential(view);
  std::array<pp::Monitor*, 3> monitors{&exchanges, &invariant, &potential};

  std::unique_ptr<pp::Population> population;
  CirclesTrialOutcome outcome;
  outcome.trial = run_graded(
      protocol, workload, options,
      std::span<pp::Monitor* const>(monitors.data(), monitors.size()),
      std::nullopt, &population);

  outcome.ket_exchanges = exchanges.exchanges();
  outcome.diagonal_creations = exchanges.diagonal_creations();
  outcome.diagonal_destructions = exchanges.diagonal_destructions();
  outcome.braket_invariant_violations = invariant.violations();
  outcome.potential_descent_violations = potential.descent_violations();
  outcome.scalar_energy_increases = potential.scalar_energy_increases();
  outcome.decomposition_matches =
      core::verify_decomposition(*population, protocol, workload.counts)
          .matches;
  return outcome;
}

}  // namespace circles::analysis
