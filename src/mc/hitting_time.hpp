// Exact expected convergence times via the configuration Markov chain.
//
// Under the uniform random scheduler a protocol induces a Markov chain on
// configurations: from C, the ordered state pair (s, t) is selected with
// probability count_s · (count_t − [s = t]) / (n(n−1)). Silent
// configurations are absorbing. For small instances the chain is tiny, so
// the expected number of interactions until absorption — the exact value the
// simulations of E2/E6 estimate — solves the standard linear system
//    E_i = 1 + Σ_j P_ij E_j   (j transient),  E_absorbing = 0
// by dense Gaussian elimination. This pins simulation means to closed-form
// ground truth (tested to agree within sampling error).
#pragma once

#include <cstdint>
#include <span>

#include "pp/protocol.hpp"

namespace circles::mc {

struct HittingTimeOptions {
  /// Cap on the number of configurations (Gaussian elimination is O(m^3)).
  std::uint64_t max_configurations = 600;
};

struct HittingTimeResult {
  /// True iff the chain fit the cap and every execution is absorbed with
  /// probability 1 (no transient config without a path to silence).
  bool computed = false;
  /// Expected interactions (including null interactions) from the initial
  /// configuration until the first silent configuration.
  double expected_interactions = 0.0;
  std::uint64_t reachable = 0;
  std::uint64_t absorbing = 0;
};

HittingTimeResult expected_interactions_to_silence(
    const pp::Protocol& protocol, std::span<const pp::ColorId> colors,
    HittingTimeOptions options = {});

}  // namespace circles::mc
