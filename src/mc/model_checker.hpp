// Exhaustive model checking of population protocols on small instances.
//
// Configurations are multisets of states (Definition 1.1), so the reachable
// space of a small population is finite and usually tiny; this module
// explores all of it and decides, *exhaustively* rather than by sampling:
//
//  * safety   — every reachable silent configuration announces the expected
//               output (silent = no interaction can change any state; once
//               silent, outputs are frozen forever);
//  * liveness — every reachable configuration can still reach a correct
//               silent configuration ("stuck" = a config from which correct
//               stabilization has become unreachable — under weak fairness
//               such a config would doom some schedule).
//
// Together these are necessary conditions for always-correctness, and for
// protocols whose non-silent activity provably terminates (Circles via the
// ordinal potential of Theorem 3.4, the cancel/convert baselines via vote
// counting) they are also sufficient. The negative control in the tests
// shows the checker catching the 3-state approximate-majority protocol
// reaching a minority-win silent configuration.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "pp/protocol.hpp"

namespace circles::kernel {
class CompiledProtocol;
}

namespace circles::mc {

/// Canonical configuration: (state, count) pairs, sorted by state, counts>0.
using Config = std::vector<std::pair<pp::StateId, std::uint32_t>>;

struct Options {
  /// Exploration cap; exceeding it reports explored_fully = false.
  std::uint64_t max_configurations = 200'000;
  /// How many example violations to retain.
  std::size_t max_examples = 4;
};

struct Result {
  std::uint64_t reachable = 0;
  std::uint64_t silent = 0;
  std::uint64_t transitions = 0;
  bool explored_fully = true;

  /// Reachable silent configurations whose outputs are not unanimously the
  /// expected symbol (empty when no expectation was given).
  std::vector<Config> incorrect_silent;
  /// Reachable configurations from which no correct silent configuration
  /// (or, with no expectation, no silent configuration at all) is reachable.
  std::vector<Config> stuck;
  std::uint64_t incorrect_silent_count = 0;
  std::uint64_t stuck_count = 0;

  /// Exhaustive verdict; meaningful only when explored_fully.
  bool always_correct() const {
    return explored_fully && incorrect_silent_count == 0 && stuck_count == 0;
  }
};

/// Explores every configuration reachable from the initial population given
/// by `colors`. `expected` is the output symbol all agents must announce in
/// correct silent configurations (nullopt: only check that silence remains
/// reachable — livelock detection). Successor enumeration runs on a
/// compiled kernel (the protocol overload lowers a one-shot one): null
/// pairs are skipped by flag loads — or wholesale via the active-partner
/// adjacency index when available — instead of virtual transition() calls.
Result check(const pp::Protocol& protocol, std::span<const pp::ColorId> colors,
             std::optional<pp::OutputSymbol> expected, Options options = {});

Result check(const kernel::CompiledProtocol& kernel,
             std::span<const pp::ColorId> colors,
             std::optional<pp::OutputSymbol> expected, Options options = {});

/// Canonical form of an explicit state multiset (helper for tests).
Config make_config(std::span<const pp::StateId> states);

std::string config_to_string(const pp::Protocol& protocol,
                             const Config& config);

}  // namespace circles::mc
