#include "mc/hitting_time.hpp"

#include <cmath>
#include <map>
#include <queue>
#include <vector>

#include "kernel/compiled_protocol.hpp"
#include "mc/model_checker.hpp"
#include "util/check.hpp"

namespace circles::mc {

namespace {

Config apply(const Config& config, pp::StateId remove_a, pp::StateId remove_b,
             pp::StateId add_a, pp::StateId add_b) {
  std::map<pp::StateId, std::int64_t> counts(config.begin(), config.end());
  counts[remove_a] -= 1;
  counts[remove_b] -= 1;
  counts[add_a] += 1;
  counts[add_b] += 1;
  Config out;
  out.reserve(counts.size());
  for (const auto& [state, count] : counts) {
    CIRCLES_DCHECK(count >= 0);
    if (count > 0) out.push_back({state, static_cast<std::uint32_t>(count)});
  }
  return out;
}

}  // namespace

HittingTimeResult expected_interactions_to_silence(
    const pp::Protocol& protocol, std::span<const pp::ColorId> colors,
    HittingTimeOptions options) {
  CIRCLES_CHECK(colors.size() >= 2);
  // One-shot kernel: the O(reachable configs x pairs) BFS below pays flag
  // loads instead of virtual transition() calls.
  const kernel::CompiledProtocol kernel(protocol,
                                        kernel::CompileOptions::one_shot());
  const double n = static_cast<double>(colors.size());
  const double pairs_total = n * (n - 1.0);

  std::vector<pp::StateId> initial_states;
  initial_states.reserve(colors.size());
  for (const pp::ColorId c : colors) initial_states.push_back(kernel.input(c));
  const Config initial = make_config(initial_states);

  HittingTimeResult result;

  // BFS, collecting per-config outgoing probabilities to *changed* configs.
  // Null interactions are self-loops; folding them means the solved E counts
  // every interaction, matching the engine's "interactions" metric.
  std::map<Config, std::uint32_t> index;
  std::vector<Config> configs;
  struct Edge {
    std::uint32_t to;
    double probability;
  };
  std::vector<std::vector<Edge>> edges;
  std::vector<double> move_probability;  // 1 - self-loop mass
  std::queue<std::uint32_t> frontier;

  auto intern = [&](const Config& config) -> std::optional<std::uint32_t> {
    auto it = index.find(config);
    if (it != index.end()) return it->second;
    if (configs.size() >= options.max_configurations) return std::nullopt;
    const auto id = static_cast<std::uint32_t>(configs.size());
    index.emplace(config, id);
    configs.push_back(config);
    edges.emplace_back();
    move_probability.push_back(0.0);
    frontier.push(id);
    return id;
  };

  if (!intern(initial)) return result;
  bool truncated = false;
  while (!frontier.empty()) {
    const std::uint32_t id = frontier.front();
    frontier.pop();
    const Config config = configs[id];
    std::map<std::uint32_t, double> outgoing;
    double moving = 0.0;
    for (const auto& [s, count_s] : config) {
      for (const auto& [t, count_t] : config) {
        const double ways =
            static_cast<double>(count_s) *
            (s == t ? static_cast<double>(count_t) - 1.0
                    : static_cast<double>(count_t));
        if (ways <= 0.0) continue;
        const pp::Transition tr = kernel.transition(s, t);
        if (tr.initiator == s && tr.responder == t) continue;
        const Config next = apply(config, s, t, tr.initiator, tr.responder);
        const auto next_id = intern(next);
        if (!next_id.has_value()) {
          truncated = true;
          continue;
        }
        outgoing[*next_id] += ways / pairs_total;
        moving += ways / pairs_total;
      }
    }
    move_probability[id] = moving;
    for (const auto& [to, p] : outgoing) edges[id].push_back({to, p});
  }
  result.reachable = configs.size();
  if (truncated) return result;  // computed stays false

  // Absorbing = no probability of moving.
  std::vector<bool> absorbing(configs.size());
  std::vector<std::int64_t> transient_index(configs.size(), -1);
  std::vector<std::uint32_t> transients;
  for (std::uint32_t id = 0; id < configs.size(); ++id) {
    absorbing[id] = move_probability[id] == 0.0;
    if (absorbing[id]) {
      result.absorbing += 1;
    } else {
      transient_index[id] = static_cast<std::int64_t>(transients.size());
      transients.push_back(id);
    }
  }
  if (absorbing[index.at(initial)]) {
    result.computed = true;
    result.expected_interactions = 0.0;
    return result;
  }

  // Solve (I − Q') x = 1/move where Q' is the jump chain between transient
  // configs conditioned on moving: folding the geometric self-loop at i adds
  // 1/move_probability[i] expected interactions per jump and rescales each
  // outgoing probability by 1/move_probability[i].
  const std::size_t m = transients.size();
  std::vector<double> matrix(m * m, 0.0);
  std::vector<double> rhs(m, 0.0);
  for (std::size_t row = 0; row < m; ++row) {
    const std::uint32_t id = transients[row];
    matrix[row * m + row] = 1.0;
    rhs[row] = 1.0 / move_probability[id];
    for (const Edge& edge : edges[id]) {
      if (absorbing[edge.to]) continue;
      const auto col = static_cast<std::size_t>(transient_index[edge.to]);
      matrix[row * m + col] -= edge.probability / move_probability[id];
    }
  }

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < m; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < m; ++row) {
      if (std::fabs(matrix[row * m + col]) >
          std::fabs(matrix[pivot * m + col])) {
        pivot = row;
      }
    }
    if (std::fabs(matrix[pivot * m + col]) < 1e-14) {
      // Singular: some transient config cannot reach absorption — the
      // expected hitting time is infinite (protocol can livelock).
      return result;
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < m; ++j) {
        std::swap(matrix[pivot * m + j], matrix[col * m + j]);
      }
      std::swap(rhs[pivot], rhs[col]);
    }
    const double diag = matrix[col * m + col];
    for (std::size_t row = col + 1; row < m; ++row) {
      const double factor = matrix[row * m + col] / diag;
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < m; ++j) {
        matrix[row * m + j] -= factor * matrix[col * m + j];
      }
      rhs[row] -= factor * rhs[col];
    }
  }
  std::vector<double> solution(m, 0.0);
  for (std::size_t row = m; row-- > 0;) {
    double acc = rhs[row];
    for (std::size_t j = row + 1; j < m; ++j) {
      acc -= matrix[row * m + j] * solution[j];
    }
    solution[row] = acc / matrix[row * m + row];
  }

  result.computed = true;
  result.expected_interactions =
      solution[static_cast<std::size_t>(transient_index[index.at(initial)])];
  return result;
}

}  // namespace circles::mc
