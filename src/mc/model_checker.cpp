#include "mc/model_checker.hpp"

#include <algorithm>
#include <map>
#include <queue>

#include "kernel/compiled_protocol.hpp"
#include "util/check.hpp"

namespace circles::mc {

namespace {

/// Applies count deltas to a canonical config, keeping it canonical.
Config apply(const Config& config, pp::StateId remove_a, pp::StateId remove_b,
             pp::StateId add_a, pp::StateId add_b) {
  std::map<pp::StateId, std::int64_t> counts(config.begin(), config.end());
  counts[remove_a] -= 1;
  counts[remove_b] -= 1;
  counts[add_a] += 1;
  counts[add_b] += 1;
  Config out;
  out.reserve(counts.size());
  for (const auto& [state, count] : counts) {
    CIRCLES_DCHECK(count >= 0);
    if (count > 0) out.push_back({state, static_cast<std::uint32_t>(count)});
  }
  return out;
}

bool has_expected_consensus(const pp::Protocol& protocol, const Config& config,
                            pp::OutputSymbol expected) {
  for (const auto& [state, count] : config) {
    (void)count;
    if (protocol.output(state) != expected) return false;
  }
  return true;
}

}  // namespace

Config make_config(std::span<const pp::StateId> states) {
  std::map<pp::StateId, std::uint32_t> counts;
  for (const pp::StateId s : states) counts[s] += 1;
  return Config(counts.begin(), counts.end());
}

std::string config_to_string(const pp::Protocol& protocol,
                             const Config& config) {
  std::string out = "{";
  bool first = true;
  for (const auto& [state, count] : config) {
    if (!first) out += ", ";
    first = false;
    out += protocol.state_name(state);
    if (count > 1) out += " x" + std::to_string(count);
  }
  out += "}";
  return out;
}

Result check(const pp::Protocol& protocol, std::span<const pp::ColorId> colors,
             std::optional<pp::OutputSymbol> expected, Options options) {
  const kernel::CompiledProtocol kernel(protocol,
                                        kernel::CompileOptions::one_shot());
  return check(kernel, colors, expected, options);
}

Result check(const kernel::CompiledProtocol& kernel,
             std::span<const pp::ColorId> colors,
             std::optional<pp::OutputSymbol> expected, Options options) {
  const pp::Protocol& protocol = kernel.protocol();
  CIRCLES_CHECK_MSG(colors.size() >= 2, "model checking needs >= 2 agents");

  std::vector<pp::StateId> initial_states;
  initial_states.reserve(colors.size());
  for (const pp::ColorId c : colors) initial_states.push_back(kernel.input(c));
  const Config initial = make_config(initial_states);

  // Forward BFS over configurations.
  std::map<Config, std::uint32_t> index;
  std::vector<Config> configs;
  std::vector<std::vector<std::uint32_t>> successors;
  std::vector<bool> silent_flag;
  std::queue<std::uint32_t> frontier;

  Result result;

  auto intern = [&](const Config& config) -> std::optional<std::uint32_t> {
    auto it = index.find(config);
    if (it != index.end()) return it->second;
    if (configs.size() >= options.max_configurations) {
      result.explored_fully = false;
      return std::nullopt;
    }
    const auto id = static_cast<std::uint32_t>(configs.size());
    index.emplace(config, id);
    configs.push_back(config);
    successors.emplace_back();
    silent_flag.push_back(false);
    frontier.push(id);
    return id;
  };

  (void)intern(initial);
  const bool adjacency = kernel.has_adjacency();
  while (!frontier.empty()) {
    const std::uint32_t id = frontier.front();
    frontier.pop();
    const Config config = configs[id];  // copy: configs may reallocate
    bool any_change = false;
    const auto expand = [&](pp::StateId s, pp::StateId t,
                            const pp::Transition& tr) {
      any_change = true;
      const Config next = apply(config, s, t, tr.initiator, tr.responder);
      if (const auto next_id = intern(next)) {
        successors[id].push_back(*next_id);
        result.transitions += 1;
      }
    };
    for (const auto& [s, count_s] : config) {
      if (adjacency) {
        // Config and the kernel's active-responder list are both sorted by
        // state: a two-pointer walk enumerates exactly the non-null pairs,
        // in the same order the nonnull-filtered double loop would.
        const auto partners = kernel.active_responders(s);
        std::size_t pi = 0;
        for (const auto& [t, count_t] : config) {
          (void)count_t;
          while (pi < partners.size() && partners[pi] < t) ++pi;
          if (pi == partners.size()) break;
          if (partners[pi] != t) continue;
          if (s == t && count_s < 2) continue;
          expand(s, t, kernel.transition(s, t));
        }
      } else {
        for (const auto& [t, count_t] : config) {
          (void)count_t;
          if (s == t && count_s < 2) continue;
          // One lookup per pair (a saturated sparse cache computes per
          // call, so never nonnull() + transition()).
          const pp::Transition tr = kernel.transition(s, t);
          if (tr.initiator == s && tr.responder == t) continue;
          expand(s, t, tr);
        }
      }
    }
    silent_flag[id] = !any_change;
  }
  result.reachable = configs.size();

  // Classify silent configurations.
  std::vector<bool> is_target(configs.size(), false);
  for (std::uint32_t id = 0; id < configs.size(); ++id) {
    if (!silent_flag[id]) continue;
    result.silent += 1;
    const bool correct =
        !expected.has_value() ||
        has_expected_consensus(protocol, configs[id], *expected);
    if (correct) {
      is_target[id] = true;
    } else {
      result.incorrect_silent_count += 1;
      if (result.incorrect_silent.size() < options.max_examples) {
        result.incorrect_silent.push_back(configs[id]);
      }
    }
  }

  // Backward reachability from the targets: every configuration must be able
  // to reach a correct silent configuration. (On a truncated exploration the
  // stuck analysis is skipped: missing configs would fake violations.)
  if (result.explored_fully) {
    std::vector<std::vector<std::uint32_t>> predecessors(configs.size());
    for (std::uint32_t id = 0; id < configs.size(); ++id) {
      for (const std::uint32_t next : successors[id]) {
        predecessors[next].push_back(id);
      }
    }
    std::vector<bool> can_reach(configs.size(), false);
    std::queue<std::uint32_t> backward;
    for (std::uint32_t id = 0; id < configs.size(); ++id) {
      if (is_target[id]) {
        can_reach[id] = true;
        backward.push(id);
      }
    }
    while (!backward.empty()) {
      const std::uint32_t id = backward.front();
      backward.pop();
      for (const std::uint32_t prev : predecessors[id]) {
        if (!can_reach[prev]) {
          can_reach[prev] = true;
          backward.push(prev);
        }
      }
    }
    for (std::uint32_t id = 0; id < configs.size(); ++id) {
      if (!can_reach[id]) {
        result.stuck_count += 1;
        if (result.stuck.size() < options.max_examples) {
          result.stuck.push_back(configs[id]);
        }
      }
    }
  }

  return result;
}

}  // namespace circles::mc
