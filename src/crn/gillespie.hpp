// Continuous-time (chemical) semantics for population protocols.
//
// The paper frames Circles as energy minimization "in chemical settings"
// and cites the CRN literature [Doty 2014; Natale–Ramezani 2019]. A
// population protocol IS a chemical reaction network: species = states,
// bimolecular reactions = non-null transitions, well-mixed solution =
// uniform scheduler. Under standard kinetics every ordered pair of distinct
// molecules collides at rate 1/n, so interaction times follow a Poisson
// process with total rate n−1 and the expected "parallel time" of T
// interactions is T/n.
//
// GillespieResult augments the discrete engine run with exact stochastic
// simulation times; because all pair propensities are equal, the embedded
// jump chain is exactly the uniform-random scheduler, and the discrete and
// continuous semantics agree on everything but the clock (tested).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pp/engine.hpp"
#include "pp/monitor.hpp"
#include "util/rng.hpp"

namespace circles::kernel {
class CompiledProtocol;
}

namespace circles::obs {
class Recorder;
}

namespace circles::crn {

/// Accumulates exponential inter-collision times alongside a discrete run:
/// after interaction m the chemical clock reads the sum of m Exp(rate)
/// variables. Records the clock at the last state change (= stabilization
/// time) and at the last output flip (= convergence time). With a kernel
/// the output-flip predicate is the precomputed per-pair output-delta flag
/// (one load); without one it falls back to virtual output() calls.
class ExponentialClockMonitor final : public pp::Monitor {
 public:
  explicit ExponentialClockMonitor(
      std::uint64_t seed, const kernel::CompiledProtocol* kernel = nullptr);

  void on_start(const pp::Population& population,
                const pp::Protocol& protocol) override;
  void on_interaction(const pp::InteractionEvent& event,
                      const pp::Population& population) override;

  double now() const { return now_; }
  double last_change_time() const { return last_change_time_; }
  double last_output_change_time() const { return last_output_change_time_; }

 private:
  util::Rng rng_;
  const pp::Protocol* protocol_ = nullptr;
  const kernel::CompiledProtocol* kernel_ = nullptr;
  double rate_ = 1.0;  // n − 1: total collision rate of the solution
  double now_ = 0.0;
  double last_change_time_ = 0.0;
  double last_output_change_time_ = 0.0;
};

struct GillespieResult {
  pp::RunResult run;
  /// Chemical time at which the last state change happened.
  double stabilization_time = 0.0;
  /// Chemical time at which the last announced output flipped.
  double convergence_time = 0.0;
  /// Discrete proxy used throughout the PP literature: interactions / n.
  double parallel_time = 0.0;
};

/// Runs `protocol` on `colors` under chemical kinetics until silence (or the
/// engine budget). Deterministic in `seed` (a recorder never perturbs the
/// run's RNG streams). Compiles a one-shot kernel; the overload below shares
/// a prebuilt one across trials. `recorder`, when non-null, receives count
/// snapshots stamped with the exponential clock — pair it with
/// obs::RecorderOptions::Clock::kChemical for chemical-time cadence.
GillespieResult run_gillespie(const pp::Protocol& protocol,
                              std::span<const pp::ColorId> colors,
                              std::uint64_t seed,
                              pp::EngineOptions options = {},
                              obs::Recorder* recorder = nullptr);

GillespieResult run_gillespie(const kernel::CompiledProtocol& kernel,
                              std::span<const pp::ColorId> colors,
                              std::uint64_t seed,
                              pp::EngineOptions options = {},
                              obs::Recorder* recorder = nullptr);

/// The legacy virtual-dispatch path (no kernel anywhere): the baseline for
/// virtual-vs-compiled comparisons and the honest RunSpec::use_kernel=false
/// semantics for chemical-time trials. Bitwise-identical results.
GillespieResult run_gillespie_virtual(const pp::Protocol& protocol,
                                      std::span<const pp::ColorId> colors,
                                      std::uint64_t seed,
                                      pp::EngineOptions options = {},
                                      obs::Recorder* recorder = nullptr);

/// One reaction of the network induced by a protocol.
struct Reaction {
  pp::StateId in_a;
  pp::StateId in_b;
  pp::StateId out_a;
  pp::StateId out_b;

  std::string to_string(const pp::Protocol& protocol) const;
};

/// Enumerates the non-null reactions of a protocol, optionally restricted to
/// the states reachable from the given inputs (BFS closure over transitions)
/// so that large state spaces stay printable. The rate construction runs on
/// a compiled kernel (the protocol overload compiles a one-shot one), so
/// pair enumeration pays table loads, not virtual dispatch.
std::vector<Reaction> reactions(const pp::Protocol& protocol,
                                std::span<const pp::ColorId> inputs = {},
                                std::size_t max_reactions = 100000);

std::vector<Reaction> reactions(const kernel::CompiledProtocol& kernel,
                                std::span<const pp::ColorId> inputs = {},
                                std::size_t max_reactions = 100000);

}  // namespace circles::crn
