#include "crn/gillespie.hpp"

#include <cmath>
#include <optional>
#include <queue>
#include <set>
#include <vector>

#include "kernel/compiled_protocol.hpp"
#include "metrics/metrics.hpp"
#include "obs/monitor_probe.hpp"
#include "pp/scheduler.hpp"
#include "util/check.hpp"

namespace circles::crn {

ExponentialClockMonitor::ExponentialClockMonitor(
    std::uint64_t seed, const kernel::CompiledProtocol* kernel)
    : rng_(seed), kernel_(kernel) {}

void ExponentialClockMonitor::on_start(const pp::Population& population,
                                       const pp::Protocol& protocol) {
  protocol_ = &protocol;
  rate_ = static_cast<double>(population.size()) - 1.0;
  CIRCLES_CHECK_MSG(rate_ > 0.0, "chemical kinetics need at least 2 agents");
  now_ = 0.0;
  last_change_time_ = 0.0;
  last_output_change_time_ = 0.0;
}

void ExponentialClockMonitor::on_interaction(const pp::InteractionEvent& event,
                                             const pp::Population&) {
  // Inverse-CDF exponential sample; uniform01() < 1 so the log is finite.
  now_ += -std::log1p(-rng_.uniform01()) / rate_;
  if (!event.changed()) return;
  last_change_time_ = now_;
  // With a kernel the flip predicate is the precomputed per-pair
  // output-delta flag; the fallback recomputes it from four output() calls.
  const bool output_flip =
      kernel_ != nullptr
          ? kernel_->output_changes(event.initiator_before,
                                    event.responder_before)
          : protocol_->output(event.initiator_before) !=
                    protocol_->output(event.initiator_after) ||
                protocol_->output(event.responder_before) !=
                    protocol_->output(event.responder_after);
  if (output_flip) last_output_change_time_ = now_;
}

namespace {

/// Shared body: `kernel` may be null, in which case the legacy virtual
/// engine loop runs and the clock monitor recomputes output flips
/// virtually. Results are bitwise identical either way.
GillespieResult run_gillespie_impl(const pp::Protocol& protocol,
                                   const kernel::CompiledProtocol* kernel,
                                   std::span<const pp::ColorId> colors,
                                   std::uint64_t seed,
                                   pp::EngineOptions options,
                                   obs::Recorder* recorder) {
  util::Rng rng(seed);
  pp::Population population(protocol, colors);
  auto scheduler = pp::make_scheduler(
      pp::SchedulerKind::kUniformRandom,
      static_cast<std::uint32_t>(colors.size()), rng(), &protocol);
  ExponentialClockMonitor clock(rng(), kernel);
  // The clock monitor runs first so the recorder's snapshots read the
  // already-advanced chemical time of the interaction they describe.
  std::optional<obs::RecorderMonitor> recorder_monitor;
  std::vector<pp::Monitor*> monitors{&clock};
  if (recorder != nullptr) {
    recorder_monitor.emplace(*recorder, kernel,
                             [&clock]() { return clock.now(); });
    monitors.push_back(&*recorder_monitor);
  }
  const std::span<pp::Monitor* const> monitor_span(monitors.data(),
                                                   monitors.size());

  pp::Engine engine(options);
  GillespieResult result;
  result.run = kernel != nullptr
                   ? engine.run(*kernel, population, *scheduler, monitor_span)
                   : engine.run_virtual(protocol, population, *scheduler,
                                        monitor_span);
  result.stabilization_time = clock.last_change_time();
  result.convergence_time = clock.last_output_change_time();
  result.parallel_time = static_cast<double>(result.run.interactions) /
                         static_cast<double>(colors.size());

  // The engine flushed its own counters already (engine.interactions,
  // engine.monitor, ...); tag the run as chemical-time so dashboards can
  // tell the two apart.
  if (options.metrics != nullptr) {
    options.metrics->counter("crn.runs").add(1);
  }
  return result;
}

}  // namespace

GillespieResult run_gillespie(const kernel::CompiledProtocol& kernel,
                              std::span<const pp::ColorId> colors,
                              std::uint64_t seed,
                              pp::EngineOptions options,
                              obs::Recorder* recorder) {
  return run_gillespie_impl(kernel.protocol(), &kernel, colors, seed, options,
                            recorder);
}

GillespieResult run_gillespie(const pp::Protocol& protocol,
                              std::span<const pp::ColorId> colors,
                              std::uint64_t seed,
                              pp::EngineOptions options,
                              obs::Recorder* recorder) {
  const kernel::CompiledProtocol kernel(protocol,
                                        kernel::CompileOptions::one_shot());
  return run_gillespie_impl(protocol, &kernel, colors, seed, options,
                            recorder);
}

GillespieResult run_gillespie_virtual(const pp::Protocol& protocol,
                                      std::span<const pp::ColorId> colors,
                                      std::uint64_t seed,
                                      pp::EngineOptions options,
                                      obs::Recorder* recorder) {
  return run_gillespie_impl(protocol, nullptr, colors, seed, options,
                            recorder);
}

std::string Reaction::to_string(const pp::Protocol& protocol) const {
  return protocol.state_name(in_a) + " + " + protocol.state_name(in_b) +
         " -> " + protocol.state_name(out_a) + " + " +
         protocol.state_name(out_b);
}

std::vector<Reaction> reactions(const kernel::CompiledProtocol& kernel,
                                std::span<const pp::ColorId> inputs,
                                std::size_t max_reactions) {
  // Determine the state universe: either everything, or the BFS closure of
  // the input states under the transition function.
  std::vector<pp::StateId> universe;
  if (inputs.empty()) {
    universe.reserve(kernel.num_states());
    for (std::uint64_t s = 0; s < kernel.num_states(); ++s) {
      universe.push_back(static_cast<pp::StateId>(s));
    }
  } else {
    std::set<pp::StateId> seen;
    std::queue<pp::StateId> frontier;
    for (const pp::ColorId c : inputs) {
      const pp::StateId s = kernel.input(c);
      if (seen.insert(s).second) frontier.push(s);
    }
    // Closure: repeatedly try all pairs over the known set. The set grows
    // monotonically, so reprocessing the full frontier is sufficient.
    std::vector<pp::StateId> known(seen.begin(), seen.end());
    bool grew = true;
    while (grew) {
      grew = false;
      known.assign(seen.begin(), seen.end());
      for (const pp::StateId a : known) {
        for (const pp::StateId b : known) {
          const pp::Transition tr = kernel.transition(a, b);
          if (seen.insert(tr.initiator).second) grew = true;
          if (seen.insert(tr.responder).second) grew = true;
        }
      }
    }
    universe.assign(seen.begin(), seen.end());
  }

  std::vector<Reaction> out;
  for (const pp::StateId a : universe) {
    for (const pp::StateId b : universe) {
      // One lookup per pair: a sparse kernel past its cache capacity would
      // pay a fresh compute per call, so never nonnull() + transition().
      const pp::Transition tr = kernel.transition(a, b);
      if (tr.initiator == a && tr.responder == b) continue;
      out.push_back({a, b, tr.initiator, tr.responder});
      CIRCLES_CHECK_MSG(out.size() <= max_reactions,
                        "reaction network too large to enumerate");
    }
  }
  return out;
}

std::vector<Reaction> reactions(const pp::Protocol& protocol,
                                std::span<const pp::ColorId> inputs,
                                std::size_t max_reactions) {
  // Default (not one-shot) budget: enumeration touches all ordered pairs of
  // the universe, so the dense build costs exactly the virtual calls the
  // enumeration itself used to make — and every later pair is a load.
  const kernel::CompiledProtocol kernel(protocol);
  return reactions(kernel, inputs, max_reactions);
}

}  // namespace circles::crn
