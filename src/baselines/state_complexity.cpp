#include "baselines/state_complexity.hpp"

#include "baselines/pairwise_plurality.hpp"
#include "util/check.hpp"

namespace circles::baselines {

namespace {
/// k^e with saturation to 0 on overflow (0 is otherwise impossible: k >= 1).
std::uint64_t pow_or_zero(std::uint32_t k, std::uint32_t e) {
  std::uint64_t out = 1;
  for (std::uint32_t i = 0; i < e; ++i) {
    if (out > ~std::uint64_t{0} / k) return 0;
    out *= k;
  }
  return out;
}
}  // namespace

std::uint64_t circles_states(std::uint32_t k) { return pow_or_zero(k, 3); }

std::uint64_t tie_report_states(std::uint32_t k) {
  return 2 * pow_or_zero(k, 2) * (k + 1);
}

std::uint64_t ordering_states(std::uint32_t k) { return 2 * pow_or_zero(k, 2); }

std::uint64_t unordered_circles_states(std::uint32_t k) {
  return 2 * pow_or_zero(k, 4);
}

std::uint64_t ghmss_upper_bound(std::uint32_t k) { return pow_or_zero(k, 7); }

std::uint64_t plurality_lower_bound(std::uint32_t k) {
  return pow_or_zero(k, 2);
}

std::vector<StateComplexityRow> state_complexity_table(std::uint32_t k) {
  CIRCLES_CHECK(k >= 1);
  std::vector<StateComplexityRow> rows;
  rows.push_back({"circles", circles_states(k), "k^3", true, 0});
  rows.push_back({"pairwise_plurality",
                  k <= 10 ? PairwisePlurality::state_count_formula(k) : 0,
                  "k*3^(k-1)*2^((k-1)(k-2)/2)", true, 6});
  rows.push_back({"exact_majority_4state", 4, "4 (k=2 only)", true, 2});
  rows.push_back(
      {"approx_majority_3state", 3, "3 (k=2 only, w.h.p.)", false, 2});
  rows.push_back({"tie_report", tie_report_states(k), "2k^2(k+1)", true, 0});
  rows.push_back({"ordering", ordering_states(k), "2k^2", true, 0});
  rows.push_back({"unordered_circles", unordered_circles_states(k), "2k^4",
                  false, 0});
  {
    // tie_aware_pairwise: k * 5^(k-1) * 3^((k-1)(k-2)/2); overflows later
    // than the runnable cap of 5, so compute with saturation.
    std::uint64_t s = k;
    bool overflow = false;
    for (std::uint32_t i = 0; i + 1 < k && !overflow; ++i) {
      overflow = s > ~std::uint64_t{0} / 5;
      if (!overflow) s *= 5;
    }
    const std::uint64_t ternary =
        k >= 2 ? static_cast<std::uint64_t>(k - 1) * (k - 2) / 2 : 0;
    for (std::uint64_t i = 0; i < ternary && !overflow; ++i) {
      overflow = s > ~std::uint64_t{0} / 3;
      if (!overflow) s *= 3;
    }
    rows.push_back({"tie_aware_pairwise", overflow ? 0 : s,
                    "k*5^(k-1)*3^((k-1)(k-2)/2)", true, 5});
  }
  rows.push_back({"GHMSS16 upper bound (literature)", ghmss_upper_bound(k),
                  "O(k^7)", true, 0});
  rows.push_back({"lower bound (literature)", plurality_lower_bound(k),
                  "Omega(k^2)", true, 0});
  return rows;
}

}  // namespace circles::baselines
